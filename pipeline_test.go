package sintra_test

import (
	"testing"

	"sintra"
)

// TestPipelineMixedFleetEquivalence runs one seeded deployment with a
// mixed fleet — two replicas with the parallel verification pipeline
// disabled (legacy single-stage dispatch) and two with a 4-worker pool —
// and asserts the equivalence claim of the verify/apply split: every
// honest replica executes the identical (seq, state) history, so the
// pipelined path delivers exactly what the legacy path delivers.
func TestPipelineMixedFleetEquivalence(t *testing.T) {
	c := newChainCluster(t, 4, 1,
		sintra.WithSeed(42),
		sintra.WithVerifyWorkersFor(0, -1),
		sintra.WithVerifyWorkersFor(1, -1),
		sintra.WithVerifyWorkersFor(2, 4),
		sintra.WithVerifyWorkersFor(3, 4),
	)
	c.run(t, 8)
	c.assertReplicasConsistent(t)
	// The pooled replicas must actually have verified off the dispatch
	// goroutine — otherwise the test compared legacy against legacy.
	if n := c.dep.Metrics().Counter("engine.verify.messages"); n == 0 {
		t.Fatal("verification pool never ran; the pipelined path was not exercised")
	}
}

// TestPipelineVerifyPoolUnderAttack stresses the verification workers
// (race detector included when run with -race) against a corrupted party
// that both floods junk envelopes and mutates payloads: concurrent
// verifiers must neither crash nor let the fleet diverge, and degraded
// or malformed input must fall back to the serialized inline path.
func TestPipelineVerifyPoolUnderAttack(t *testing.T) {
	c := newChainCluster(t, 4, 1,
		sintra.WithSeed(4242),
		sintra.WithVerifyWorkers(4),
		sintra.WithByzantine(1, sintra.Flood(3), sintra.Mutate(0.4)),
	)
	c.run(t, 4)
	c.assertReplicasConsistent(t, 1)
	snap := c.dep.Metrics()
	if n := snap.Counter("engine.verify.messages"); n == 0 {
		t.Fatal("verification pool never ran under attack")
	}
	if n := snap.Counter("engine.verify.panics"); n != 0 {
		t.Fatalf("verify stage recovered %d panics; attacker input must not reach a panic", n)
	}
}
