package sintra_test

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"sintra"
)

// chainMachine is a deterministic state machine whose response IS its
// state: a hash chain over every (seq, request) applied so far. Replicas
// that diverge at any point return different answers forever after, and
// the machine keeps its full (seq, state) history so the suite can compare
// honest replicas' executions position by position.
type chainMachine struct {
	mu    sync.Mutex
	state [32]byte
	hist  []chainState
}

type chainState struct {
	seq   int64
	state [32]byte
}

func (m *chainMachine) Apply(seq int64, request []byte) []byte {
	m.mu.Lock()
	defer m.mu.Unlock()
	h := sha256.New()
	h.Write(m.state[:])
	var sb [8]byte
	binary.BigEndian.PutUint64(sb[:], uint64(seq))
	h.Write(sb[:])
	h.Write(request)
	copy(m.state[:], h.Sum(nil))
	m.hist = append(m.hist, chainState{seq: seq, state: m.state})
	return append([]byte(nil), m.state[:]...)
}

func (m *chainMachine) history() []chainState {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]chainState(nil), m.hist...)
}

// Snapshot/Restore implement sintra.Snapshotter: the chain state IS the
// 32-byte running hash, so the snapshot is trivially deterministic. The
// history is test instrumentation, not replicated state, and resets on
// restore (a restarted replica's history legitimately starts at the
// checkpoint, so the suite compares it to peers by sequence number, not
// by position).
func (m *chainMachine) Snapshot() []byte {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]byte(nil), m.state[:]...)
}

func (m *chainMachine) Restore(snapshot []byte) error {
	if len(snapshot) != len(m.state) {
		return fmt.Errorf("chain snapshot has %d bytes, want %d", len(snapshot), len(m.state))
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	copy(m.state[:], snapshot)
	m.hist = nil
	return nil
}

// chainCluster is a deployment over chainMachine replicas, machines[i]
// belonging to server i.
type chainCluster struct {
	dep      *sintra.SimulatedDeployment
	machines []*chainMachine
}

func newChainCluster(t *testing.T, n, f int, opts ...sintra.SimOption) *chainCluster {
	t.Helper()
	st, err := sintra.NewThresholdStructure(n, f)
	if err != nil {
		t.Fatal(err)
	}
	c := &chainCluster{}
	// Replicas are constructed in ascending server order, so creation
	// order maps machines to server indices (no servers are crashed in
	// the chaos suite).
	newService := func() sintra.StateMachine {
		m := &chainMachine{}
		c.machines = append(c.machines, m)
		return m
	}
	c.dep, err = sintra.NewDeployment(st, newService, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.dep.Stop)
	return c
}

// run drives requests through the cluster under attack and asserts the
// paper's two claims end to end.
//
// Liveness: every request completes.
//
// Safety: each answer carries a valid threshold signature over the full
// hash-chain state — a quorum of replicas attested to an identical
// execution history, and quorum intersection extends that to every honest
// replica. A Byzantine party may legitimately inject its own (garbage)
// requests into the total order, so client sequence numbers are asserted
// to be strictly increasing rather than gapless; replica-level equality is
// checked separately by assertReplicasConsistent.
func (c *chainCluster) run(t *testing.T, requests int) {
	t.Helper()
	client, err := c.dep.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	lastSeq := int64(-1)
	for i := 0; i < requests; i++ {
		req := []byte(fmt.Sprintf("chaos-request-%d", i))
		ans, err := client.Invoke(req, 120*time.Second)
		if err != nil {
			t.Fatalf("request %d: liveness lost: %v", i, err)
		}
		if err := sintra.VerifyAnswer(c.dep.Public, "service", ans.ReqID, ans.Result, ans.Signature); err != nil {
			t.Fatalf("request %d: answer does not verify: %v", i, err)
		}
		if ans.Seq <= lastSeq {
			t.Fatalf("request %d ordered at seq %d, not after %d", i, ans.Seq, lastSeq)
		}
		lastSeq = ans.Seq
		// No forged threshold output verifies: tampering one byte of the
		// result must break the signature.
		bad := append([]byte(nil), ans.Result...)
		bad[0] ^= 0xff
		if sintra.VerifyAnswer(c.dep.Public, "service", ans.ReqID, bad, ans.Signature) == nil {
			t.Fatal("tampered answer still verifies")
		}
	}
	// No replica goroutine may have panicked on attacker input, however
	// hostile the run was.
	if n := c.dep.Metrics().Counter("router.panics"); n != 0 {
		t.Fatalf("router recovered %d handler panics; attacker input must not reach a panic", n)
	}
	c.assertReplicasConsistent(t)
}

// assertReplicasConsistent compares every honest pair of replicas'
// (seq, state) histories over their common prefix: the total order must
// have driven them through identical states. Corrupted parties are
// excluded — their own transport lies to them, so their local state may
// legitimately diverge. Replicas advance at different speeds, so only the
// shared prefix is compared.
func (c *chainCluster) assertReplicasConsistent(t *testing.T, corrupted ...int) {
	t.Helper()
	bad := make(map[int]bool, len(corrupted))
	for _, i := range corrupted {
		bad[i] = true
	}
	refIdx := -1
	var ref []chainState
	for i, m := range c.machines {
		if bad[i] {
			continue
		}
		h := m.history()
		if refIdx < 0 {
			refIdx, ref = i, h
			continue
		}
		n := len(h)
		if len(ref) < n {
			n = len(ref)
		}
		for k := 0; k < n; k++ {
			if h[k] != ref[k] {
				t.Fatalf("replica %d diverged from replica %d at position %d: seq %d/%d",
					i, refIdx, k, h[k].seq, ref[k].seq)
			}
		}
	}
}

// TestChaosByzantineBehaviors runs the full stack — RBC, CBC, ABA, MVBA,
// atomic broadcast, threshold signing, client invoke — against one
// corrupted party per behavior, at the tolerance bound t=1 of n=4.
func TestChaosByzantineBehaviors(t *testing.T) {
	cases := []struct {
		name      string
		behaviors []sintra.ByzantineBehavior
	}{
		{"equivocate", []sintra.ByzantineBehavior{sintra.Equivocate()}},
		{"mutate", []sintra.ByzantineBehavior{sintra.Mutate(0.7)}},
		{"replay", []sintra.ByzantineBehavior{sintra.Replay(0.5)}},
		{"duplicate", []sintra.ByzantineBehavior{sintra.Duplicate(2)}},
		{"drop", []sintra.ByzantineBehavior{sintra.Drop(1)}},
		{"drop-selective", []sintra.ByzantineBehavior{sintra.DropTo(1, 0, 2)}},
		{"flood", []sintra.ByzantineBehavior{sintra.Flood(3)}},
	}
	for i, tc := range cases {
		tc, i := tc, i
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			c := newChainCluster(t, 4, 1,
				sintra.WithSeed(int64(100+i)),
				sintra.WithByzantine(1, tc.behaviors...),
			)
			c.run(t, 3)
			c.assertReplicasConsistent(t, 1)
			snap := c.dep.Metrics()
			if n := snap.Counter("faultsim.actions." + tc.behaviors[0].Name()); n == 0 {
				t.Fatalf("behavior %q never fired — the run attacked nothing", tc.name)
			}
			// The mutate fleet must exercise the router's malformed-input
			// guard: corrupted gob that fails to decode is counted and
			// dropped rather than crashing a replica.
			if tc.name == "mutate" {
				if n := snap.Counter("router.malformed"); n == 0 {
					t.Fatal("no malformed payloads counted under mutation")
				}
			}
		})
	}
}

// TestChaosMixedByzantineFleet corrupts a full fleet of t=2 parties out of
// n=7, each with a different attack mix, and requires safety and liveness
// to survive their combination.
func TestChaosMixedByzantineFleet(t *testing.T) {
	c := newChainCluster(t, 7, 2,
		sintra.WithSeed(42),
		sintra.WithByzantine(1, sintra.Equivocate(), sintra.Flood(2)),
		sintra.WithByzantine(3, sintra.Mutate(0.5), sintra.Duplicate(1), sintra.Replay(0.3)),
	)
	c.run(t, 3)
	c.assertReplicasConsistent(t, 1, 3)
	snap := c.dep.Metrics()
	for _, name := range []string{"equivocate", "flood", "mutate", "duplicate", "replay"} {
		if snap.Counter("faultsim.actions."+name) == 0 {
			t.Errorf("behavior %q never fired in the mixed fleet", name)
		}
	}
}

// TestChaosPartitionHeals isolates two of four parties — the remaining
// pair is NOT a quorum, so ordering requires partition-crossing traffic —
// and lets the partition heal after a fixed number of deliveries. The
// request must still complete: the scheduler stays inside the
// eventual-delivery model, and the protocols are asynchronous-safe.
func TestChaosPartitionHeals(t *testing.T) {
	sched := sintra.NewPartitionScheduler(7, 200, 0, 1)
	c := newChainCluster(t, 4, 1,
		sintra.WithSeed(7),
		sintra.WithScheduler(sched),
	)
	c.run(t, 2)
	if !sched.Healed() {
		t.Fatal("run completed without the partition ever healing")
	}
}

// TestChaosByzantineWithPartition combines an equivocating party with a
// healing partition — the adversary controls both a replica and the
// schedule, the paper's full threat model.
func TestChaosByzantineWithPartition(t *testing.T) {
	c := newChainCluster(t, 4, 1,
		sintra.WithSeed(11),
		sintra.WithScheduler(sintra.NewPartitionScheduler(11, 150, 2)),
		sintra.WithByzantine(1, sintra.Equivocate(), sintra.Duplicate(1)),
	)
	c.run(t, 2)
	c.assertReplicasConsistent(t, 1)
}

// TestChaosBeyondToleranceBoundary shows t is the boundary: with two
// silenced parties in a 4-party deployment that tolerates one fault, the
// remaining two honest parties are not a quorum and the client cannot
// complete. (Safety still holds — there is simply no answer.)
func TestChaosBeyondToleranceBoundary(t *testing.T) {
	c := newChainCluster(t, 4, 1,
		sintra.WithSeed(13),
		sintra.WithByzantine(1, sintra.Drop(1)),
		sintra.WithByzantine(2, sintra.Drop(1)),
	)
	client, err := c.dep.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	_, err = client.Invoke([]byte("doomed"), 3*time.Second)
	if !errors.Is(err, sintra.ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout: 2 > t corruptions must stall the service", err)
	}
	c.assertReplicasConsistent(t, 1, 2)
}

// TestChaosByzantineSharesInBatch drives Byzantine shares through the
// coalesced batch-verification stage: one verify worker per replica forces
// a verification backlog (so share bursts genuinely coalesce), while a
// corrupted party tampers the tails of its payloads — messages that mostly
// still decode but carry cryptographically wrong shares, landing inside
// batches next to honest ones. The random-linear-combination check must
// reject the batch, the binary split must isolate the culprits, and the
// honest remainder must still combine: every request completes with a
// verifying threshold answer, no replica panics, and honest replicas stay
// consistent. Run under -race by the chaos CI job.
func TestChaosByzantineSharesInBatch(t *testing.T) {
	c := newChainCluster(t, 4, 1,
		sintra.WithSeed(31),
		sintra.WithVerifyWorkers(1),
		sintra.WithByzantine(2, sintra.TamperTail(1)),
	)
	c.run(t, 6)
	c.assertReplicasConsistent(t, 2)
	snap := c.dep.Metrics()
	if n := snap.Counter("faultsim.actions.tamper-tail"); n == 0 {
		t.Fatal("tamper-tail never fired — the run attacked nothing")
	}
	// The backlog must have actually coalesced: at least one multi-share
	// BatchVerify call ran...
	if n := snap.Counter("engine.verify.batch.batches"); n == 0 {
		t.Fatal("no coalesced batch-verification calls — the batching stage never engaged")
	}
	// ...and tampered shares must have been caught somewhere: either
	// isolated inside a batch by the binary split, or rejected by the
	// per-message path (tampers that broke the gob framing are counted as
	// malformed instead).
	culprits := snap.Counter("engine.verify.batch.culprits")
	malformed := snap.Counter("router.malformed")
	if culprits == 0 && malformed == 0 {
		t.Fatal("no culprits isolated and no malformed payloads dropped under full tampering")
	}
	t.Logf("batches=%d batched msgs=%d culprits=%d malformed=%d",
		snap.Counter("engine.verify.batch.batches"),
		snap.Counter("engine.verify.batch.messages"), culprits, malformed)
}

// TestChaosReplicaRestartCatchUp kills one replica mid-load, keeps the
// cluster ordering requests for several checkpoint intervals, restarts
// the replica with empty state, and requires it to rejoin via checkpoint
// state transfer: fetch the certified snapshot from a peer, verify the
// threshold certificate, install, replay the retained suffix, and track
// the live frontier again.
func TestChaosReplicaRestartCatchUp(t *testing.T) {
	c := newChainCluster(t, 4, 1,
		sintra.WithSeed(23),
		sintra.WithCheckpointInterval(8),
	)
	client, err := c.dep.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	invoke := func(i int) {
		req := []byte(fmt.Sprintf("restart-request-%d", i))
		ans, err := client.Invoke(req, 120*time.Second)
		if err != nil {
			t.Fatalf("request %d: liveness lost: %v", i, err)
		}
		if err := sintra.VerifyAnswer(c.dep.Public, "service", ans.ReqID, ans.Result, ans.Signature); err != nil {
			t.Fatalf("request %d: answer does not verify: %v", i, err)
		}
	}

	// Phase 1: all four replicas live.
	for i := 0; i < 4; i++ {
		invoke(i)
	}
	c.dep.StopServer(3)
	// Phase 2: the remaining three replicas (an exact quorum at n=4, t=1)
	// keep ordering across at least two checkpoint intervals, so stable
	// checkpoints form — and garbage-collect history — while 3 is gone.
	for i := 4; i < 24; i++ {
		invoke(i)
	}
	if err := c.dep.RestartServer(3); err != nil {
		t.Fatalf("restart: %v", err)
	}
	// newService appends, so the restarted server's fresh machine is last.
	restarted := c.machines[len(c.machines)-1]
	// Phase 3: load after the restart.
	for i := 24; i < 32; i++ {
		invoke(i)
	}

	// The restarted replica must reach the live delivery frontier.
	target := c.dep.Node(0).Seq()
	deadline := time.Now().Add(60 * time.Second)
	for c.dep.Node(3).Seq() < target {
		if time.Now().After(deadline) {
			t.Fatalf("replica 3 stuck at seq %d, live frontier %d", c.dep.Node(3).Seq(), target)
		}
		time.Sleep(5 * time.Millisecond)
	}

	snap := c.dep.Metrics()
	if n := snap.Counter("checkpoint.catchup.installs"); n == 0 {
		t.Fatal("replica 3 caught up without ever installing a checkpoint")
	}
	if n := snap.Counter("checkpoint.certs"); n == 0 {
		t.Fatal("no stable checkpoint certificates formed")
	}
	if s := snap.Gauges["checkpoint.stable.seq"].Value; s == 0 {
		t.Fatal("stable checkpoint seq gauge never advanced")
	}
	if n := snap.Counter("router.panics"); n != 0 {
		t.Fatalf("router recovered %d handler panics during restart", n)
	}

	// Catch-up correctness: wherever the restarted machine and a
	// continuously-live machine applied the same sequence number, the
	// chain states must be identical — the certified snapshot plus suffix
	// replay reproduced the exact execution.
	hist := restarted.history()
	if len(hist) == 0 {
		t.Fatal("restarted replica never applied a request after catch-up")
	}
	bySeq := make(map[int64][32]byte)
	for _, e := range c.machines[0].history() {
		bySeq[e.seq] = e.state
	}
	matched := 0
	for _, e := range hist {
		ref, ok := bySeq[e.seq]
		if !ok {
			continue
		}
		if ref != e.state {
			t.Fatalf("restarted replica diverged at seq %d", e.seq)
		}
		matched++
	}
	if matched == 0 {
		t.Fatal("restarted replica shares no sequence numbers with a live replica")
	}
	// The continuously-live machines (the restarted instance is compared
	// by seq above; index 4 is that fresh instance) stay consistent.
	c.assertReplicasConsistent(t, 4)
}

// TestChaosSecureCausalUnderAttack runs the secure causal mode (threshold
// decryption on the critical path) against a corrupted party.
func TestChaosSecureCausalUnderAttack(t *testing.T) {
	c := newChainCluster(t, 4, 1,
		sintra.WithSeed(17),
		sintra.WithMode(sintra.ModeSecureCausal),
		sintra.WithByzantine(3, sintra.Mutate(0.3), sintra.Replay(0.3)),
	)
	c.run(t, 2)
	c.assertReplicasConsistent(t, 3)
}
