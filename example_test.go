package sintra_test

import (
	"context"
	"encoding/json"
	"fmt"
	"time"

	"sintra"
	"sintra/internal/service"
)

// ExampleNewDeployment shows the complete lifecycle of an in-process
// deployment: structure, dealer, replicas, client, and a
// threshold-verified answer.
func ExampleNewDeployment() {
	st, _ := sintra.NewThresholdStructure(4, 1)
	dep, err := sintra.NewDeployment(st,
		func() sintra.StateMachine { return sintra.NewDirectory() },
		sintra.WithServiceName("directory"),
		sintra.WithSeed(1),
	)
	if err != nil {
		fmt.Println("deploy:", err)
		return
	}
	defer dep.Stop()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	client, _ := dep.NewClient()
	req, _ := json.Marshal(service.DirectoryRequest{Op: service.OpPut, Key: "k", Value: "v"})
	ans, err := client.InvokeContext(ctx, req)
	if err != nil {
		fmt.Println("invoke:", err)
		return
	}
	if err := sintra.VerifyAnswer(dep.Public, "directory", ans.ReqID, ans.Result, ans.Signature); err != nil {
		fmt.Println("verify:", err)
		return
	}
	fmt.Printf("%s\n", ans.Result)
	// Output: {"ok":true,"version":1}
}

// ExampleNewThresholdStructure shows the Q³ feasibility condition.
func ExampleNewThresholdStructure() {
	good, _ := sintra.NewThresholdStructure(4, 1)
	bad, _ := sintra.NewThresholdStructure(6, 2)
	fmt.Println(good.Q3(), bad.Q3())
	// Output: true false
}

// ExampleExample2Structure reproduces the headline numbers of the paper's
// §4.3 Example 2.
func ExampleExample2Structure() {
	st := sintra.Example2Structure()
	tolerated, _ := st.MaxTolerated()
	thresholdBest := (st.N() - 1) / 3
	fmt.Printf("n=%d Q3=%v tolerates=%d threshold-best=%d\n",
		st.N(), st.Q3(), tolerated, thresholdBest)
	// Output: n=16 Q3=true tolerates=7 threshold-best=5
}

// ExampleNewClassifiedThreshold builds a custom §4.3 structure: four
// racks of three servers, tolerating one arbitrary server or a whole rack.
func ExampleNewClassifiedThreshold() {
	racks := sintra.NewClassification([]string{
		"r1", "r1", "r1", "r2", "r2", "r2",
		"r3", "r3", "r3", "r4", "r4", "r4",
	})
	st, err := sintra.NewClassifiedThreshold(racks, 1, 2)
	if err != nil {
		fmt.Println(err)
		return
	}
	wholeRack := sintra.SetOf(0, 1, 2)
	twoRacks := sintra.SetOf(0, 3)
	fmt.Println(st.Q3(), st.InAdversary(wholeRack), st.InAdversary(twoRacks))
	// Output: true true false
}

// ExampleNewHybridThreshold shows the §6 hybrid failure model: six
// servers tolerating one Byzantine corruption plus one crash, a mix
// beyond any plain threshold on six servers.
func ExampleNewHybridThreshold() {
	st, err := sintra.NewHybridThreshold(6, 1, 1)
	if err != nil {
		fmt.Println(err)
		return
	}
	tolerated, _ := st.MaxTolerated()
	fmt.Println(st, st.Q3(), tolerated)
	// Output: hybrid(n=6,byzantine=1,crash=1) true 2
}
