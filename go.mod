module sintra

go 1.22
