package sintra_test

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"sintra"
	"sintra/internal/service"
)

func TestSimulatedDeploymentQuickstart(t *testing.T) {
	st, err := sintra.NewThresholdStructure(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	dep, err := sintra.NewSimulatedDeployment(sintra.SimOptions{
		Structure:  st,
		NewService: func() sintra.StateMachine { return sintra.NewDirectory() },
		Seed:       2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Stop()
	client, err := dep.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	req, _ := json.Marshal(service.DirectoryRequest{Op: service.OpIssue, Name: "alice", PubKey: []byte{1}})
	ans, err := client.Invoke(req, 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	var resp service.DirectoryResponse
	if err := json.Unmarshal(ans.Result, &resp); err != nil || !resp.OK {
		t.Fatalf("bad response %s: %v", ans.Result, err)
	}
	msgs, total, bytes := dep.TrafficSummary()
	if total == 0 || bytes == 0 || len(msgs) == 0 {
		t.Fatal("no traffic recorded")
	}
}

func TestSimulatedDeploymentWithCrashes(t *testing.T) {
	st := sintra.Example1Structure()
	dep, err := sintra.NewSimulatedDeployment(sintra.SimOptions{
		Structure:  st,
		NewService: func() sintra.StateMachine { return sintra.NewNotary() },
		Crashed:    []int{0, 1, 2, 3}, // the whole class a
		Seed:       3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Stop()
	client, err := dep.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	req, _ := json.Marshal(service.NotaryRequest{Op: service.OpRegister, Document: []byte("doc")})
	ans, err := client.Invoke(req, 120*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	var resp service.NotaryResponse
	if err := json.Unmarshal(ans.Result, &resp); err != nil || !resp.OK || resp.Seq != 1 {
		t.Fatalf("bad response %s: %v", ans.Result, err)
	}
}

func TestSimOptionsValidation(t *testing.T) {
	if _, err := sintra.NewSimulatedDeployment(sintra.SimOptions{}); err == nil {
		t.Fatal("empty options accepted")
	}
	st, _ := sintra.NewThresholdStructure(4, 1)
	if _, err := sintra.NewSimulatedDeployment(sintra.SimOptions{Structure: st}); err == nil {
		t.Fatal("missing service factory accepted")
	}
	dep, err := sintra.NewSimulatedDeployment(sintra.SimOptions{
		Structure:  st,
		NewService: func() sintra.StateMachine { return sintra.NewNotary() },
		MaxClients: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Stop()
	if _, err := dep.NewClient(); err != nil {
		t.Fatal(err)
	}
	if _, err := dep.NewClient(); err == nil {
		t.Fatal("client limit not enforced")
	}
}

func TestDealSaveLoadRoundTrip(t *testing.T) {
	st, _ := sintra.NewThresholdStructure(4, 1)
	pub, secrets, err := sintra.Deal(sintra.DealOptions{
		Structure: st,
		GroupName: "test256",
		RSAPrimes: sintra.TestRSAPrimes,
	})
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "deploy")
	if err := sintra.SaveDeployment(dir, pub, secrets); err != nil {
		t.Fatal(err)
	}
	pub2, err := sintra.LoadPublic(dir)
	if err != nil {
		t.Fatal(err)
	}
	if pub2.Structure.N() != 4 {
		t.Fatal("bad structure after load")
	}
	sec2, err := sintra.LoadPartySecret(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	if sec2.Party != 2 {
		t.Fatal("wrong party file")
	}
	if _, err := sintra.LoadPartySecret(dir, 9); err == nil {
		t.Fatal("missing party file accepted")
	}
	// Secret files must not be world readable.
	info, err := os.Stat(filepath.Join(dir, "party-0.gob"))
	if err != nil {
		t.Fatal(err)
	}
	if info.Mode().Perm()&0o077 != 0 {
		t.Fatalf("party file mode %v too permissive", info.Mode())
	}
}

func TestStructureHelpers(t *testing.T) {
	if sintra.Example2Structure().N() != 16 {
		t.Fatal("Example2 size")
	}
	f := sintra.And(sintra.Leaf(0), sintra.Or(sintra.Leaf(1), sintra.Leaf(2)))
	if !f.Eval(sintra.SetOf(0, 2)) || f.Eval(sintra.SetOf(1, 2)) {
		t.Fatal("formula helpers broken")
	}
	st, err := sintra.NewGeneralStructure(4,
		[]sintra.PartySet{sintra.SetOf(0), sintra.SetOf(1), sintra.SetOf(2), sintra.SetOf(3)},
		sintra.ThresholdOf(2, []int{0, 1, 2, 3}))
	if err != nil {
		t.Fatal(err)
	}
	if !st.Q3() {
		t.Fatal("1-of-4 singleton structure should satisfy Q3")
	}
}

func TestDeploymentObservability(t *testing.T) {
	// The end-to-end observability path through the public API: functional
	// options, a shared tracer, the metrics snapshot, and the context-first
	// client entry point.
	st, err := sintra.NewThresholdStructure(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	col := sintra.NewCollectTracer()
	dep, err := sintra.NewDeployment(st,
		func() sintra.StateMachine { return sintra.NewDirectory() },
		sintra.WithSeed(4),
		sintra.WithTracer(col),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Stop()
	client, err := dep.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	req, _ := json.Marshal(service.DirectoryRequest{Op: service.OpPut, Key: "k", Value: "v"})
	if _, err := client.InvokeContext(ctx, req); err != nil {
		t.Fatal(err)
	}

	snap := dep.Metrics()
	// Every layer of the stack must have reported: network traffic, router
	// dispatch, broadcast instances, agreement decisions, ordered
	// deliveries, state-machine executions, and the client's own view.
	for _, counter := range []string{
		"net.delivered", "router.dispatched",
		"cbc.instances", "mvba.instances", "aba.decide", "abc.deliver",
		"node.applied", "client.requests", "client.answers",
	} {
		if snap.Counter(counter) == 0 {
			t.Errorf("counter %q never incremented", counter)
		}
	}
	for _, hist := range []string{
		"router.dispatch.latency", "abc.latency.order",
		"node.apply.latency", "client.invoke.latency",
	} {
		if snap.Histograms[hist].Count == 0 {
			t.Errorf("histogram %q never observed", hist)
		}
	}
	if len(snap.CountersWithPrefix("net.msgs.")) == 0 {
		t.Error("no per-protocol traffic counters")
	}

	// TrafficSummary is now a view of the same snapshot.
	msgs, total, bytes := dep.TrafficSummary()
	if total == 0 || bytes == 0 || len(msgs) == 0 {
		t.Fatal("TrafficSummary empty")
	}
	if int64(total) != snap.Counter("net.delivered") {
		t.Fatalf("TrafficSummary total %d != net.delivered %d",
			total, snap.Counter("net.delivered"))
	}

	// The tracer saw lifecycle events from the protocol stack.
	var starts, delivers int
	for _, ev := range col.Events() {
		switch ev.Stage {
		case sintra.StageStart:
			starts++
		case sintra.StageDeliver:
			delivers++
		}
	}
	if starts == 0 || delivers == 0 {
		t.Fatalf("tracer saw %d starts, %d delivers; want both > 0", starts, delivers)
	}

	if dep.Observer() == nil {
		t.Fatal("deployment must expose its registry")
	}
}
