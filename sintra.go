// Package sintra is a from-scratch Go implementation of the architecture
// of Christian Cachin's "Distributing Trust on the Internet" (DSN 2001) —
// secure and fault-tolerant service replication in a completely
// asynchronous network where a malicious adversary may corrupt servers
// and control all message scheduling.
//
// The library provides:
//
//   - the full asynchronous broadcast stack of the paper's §3: reliable
//     broadcast, consistent broadcast with transferable certificates,
//     randomized binary Byzantine agreement driven by a threshold
//     coin, multi-valued agreement with external validity, atomic
//     broadcast, and secure causal atomic broadcast;
//
//   - the threshold cryptography of §2.1: the Diffie-Hellman threshold
//     coin (Cachin–Kursawe–Shoup), Shoup threshold RSA signatures, the
//     TDH2 chosen-ciphertext-secure threshold cryptosystem, and linear
//     secret sharing for arbitrary monotone access structures;
//
//   - the generalized adversary structures of §4, including the paper's
//     two worked examples (nine servers in four classes; a 4×4 grid of
//     sites × operating systems tolerating seven simultaneous
//     corruptions where any threshold scheme tolerates five);
//
//   - the replicated trusted services of §5: a certification authority
//     with a secure directory, and a notary whose submissions stay
//     confidential until ordered;
//
//   - a trusted dealer, a TCP transport for multi-process deployments,
//     and an in-process simulated deployment whose network scheduler is
//     adversary-controlled, for tests and experiments.
//
// Start with NewSimulatedDeployment for an in-process cluster, or use the
// sintra-dealer / sintra-node / sintra-client commands for a multi-process
// deployment. DESIGN.md maps every paper claim to the module implementing
// it; EXPERIMENTS.md records the reproduction results.
package sintra

import (
	"io"
	"math/big"

	"sintra/internal/adversary"
	"sintra/internal/core"
	"sintra/internal/deal"
	"sintra/internal/group"
	"sintra/internal/service"
	"sintra/internal/thresig"
	"sintra/internal/trust"
	"sintra/internal/wire"
)

// Re-exported core types. Aliases keep the full method sets available
// under the public package path.
type (
	// Structure is an adversary structure: the family of server subsets
	// the adversary may corrupt, plus the compatible secret-sharing
	// access formula.
	Structure = adversary.Structure
	// Formula is a monotone threshold-gate formula over party indices.
	Formula = adversary.Formula
	// PartySet is a subset of the servers.
	PartySet = adversary.Set
	// Classification assigns an attribute value to every server (§4.3).
	Classification = adversary.Classification

	// Quorums is the observer-indexed quorum backend consulted by every
	// protocol layer; SymmetricTrust wraps a shared Structure (the
	// paper's model), AsymmetricTrust gives each party its own
	// fail-prone assumptions.
	Quorums = trust.Quorums
	// SymmetricTrust is the shared-structure quorum backend.
	SymmetricTrust = trust.Symmetric
	// AsymmetricTrust is the per-party fail-prone quorum backend.
	AsymmetricTrust = trust.Asymmetric
	// FailProne is one party's fail-prone assumption (threshold or
	// explicit maximal sets).
	FailProne = trust.FailProne
	// TrustSpec is the JSON-codable trust configuration (see
	// ParseTrustSpec and the -trust-config flag of sintra-node).
	TrustSpec = trust.Spec

	// Public is the dealer's public key material.
	Public = deal.Public
	// PartySecret is one server's private key material.
	PartySecret = deal.PartySecret

	// Node is one replica of a distributed trusted service.
	Node = core.Node
	// NodeConfig configures a replica.
	NodeConfig = core.NodeConfig
	// StateMachine is a deterministic replicated application.
	StateMachine = core.StateMachine
	// Snapshotter is the optional state-transfer extension of
	// StateMachine: services that implement it participate in
	// checkpoint/GC and replica catch-up.
	Snapshotter = core.Snapshotter
	// Client invokes a replicated trusted service.
	Client = core.Client
	// ClientOption configures a Client (see WithClientObserver).
	ClientOption = core.Option
	// Answer is a completed invocation with its threshold signature.
	Answer = core.Answer
	// Mode selects atomic or secure-causal request dissemination.
	Mode = core.Mode
	// Transport moves protocol messages for one endpoint.
	Transport = wire.Transport

	// Directory is the replicated CA + secure directory application.
	Directory = service.Directory
	// Notary is the replicated notary application.
	Notary = service.Notary
	// Auth is the replicated authentication application.
	Auth = service.Auth
	// Exchange is the replicated fair-exchange application.
	Exchange = service.Exchange
)

// Service modes.
const (
	// ModeAtomic orders requests with plain atomic broadcast.
	ModeAtomic = core.ModeAtomic
	// ModeSecureCausal additionally keeps requests confidential until
	// their position in the order is fixed.
	ModeSecureCausal = core.ModeSecureCausal
)

// NewThresholdStructure builds the classic structure tolerating any t of n
// corruptions; it satisfies Q³ iff n > 3t.
func NewThresholdStructure(n, t int) (*Structure, error) {
	return adversary.NewThreshold(n, t)
}

// NewGeneralStructure builds a generalized structure from the maximal
// corruptible sets and a compatible monotone access formula (see the
// adversary-structure discussion in DESIGN.md).
func NewGeneralStructure(n int, maxSets []PartySet, access *Formula) (*Structure, error) {
	return adversary.NewGeneral(n, maxSets, access)
}

// NewHybridThreshold builds the §6 hybrid failure structure: tolerate tb
// Byzantine corruptions PLUS tc crashes among n servers (feasible iff
// n > 3·tb + 2·tc). Crashes are cheaper than corruptions, so a hybrid
// deployment survives fault mixes no plain Byzantine threshold on the
// same n can.
func NewHybridThreshold(n, tb, tc int) (*Structure, error) {
	return adversary.NewHybridThreshold(n, tb, tc)
}

// NewClassifiedThreshold builds the paper's §4.3 classified structure for
// any attribute assignment: tolerate t arbitrary corruptions or any whole
// class; secrets need t+1 servers spanning minClasses classes.
func NewClassifiedThreshold(c *Classification, t, minClasses int) (*Structure, error) {
	return adversary.ClassifiedThreshold(c, t, minClasses)
}

// NewClassification assigns an attribute value to every server.
func NewClassification(values []string) *Classification {
	return adversary.NewClassification(values)
}

// NewSymmetricTrust wraps a shared adversary structure in the quorum
// backend interface — the paper's trust model and the default everywhere
// a Trust knob is left nil.
func NewSymmetricTrust(st *Structure) *SymmetricTrust { return trust.NewSymmetric(st) }

// NewAsymmetricTrust builds a per-party quorum backend from each party's
// fail-prone assumption, validating the B³ consistency-and-availability
// condition at construction. Use ThresholdFailProne and GeneralFailProne
// for the per-party systems.
func NewAsymmetricTrust(n int, systems []FailProne) (*AsymmetricTrust, error) {
	return trust.NewAsymmetric(n, systems)
}

// ThresholdFailProne is the fail-prone system "any t parties may fail".
func ThresholdFailProne(t int) FailProne { return trust.Threshold(t) }

// GeneralFailProne is a fail-prone system given by its maximal sets.
func GeneralFailProne(maxSets ...PartySet) FailProne { return trust.General(maxSets...) }

// ParseTrustSpec decodes a JSON trust configuration; build the backend
// with its Build method against the deployment's structure.
func ParseTrustSpec(data []byte) (*TrustSpec, error) { return trust.ParseSpec(data) }

// Example1Structure returns the paper's §4.3 Example 1: nine servers in
// four classes, tolerating two arbitrary corruptions or any whole class.
func Example1Structure() *Structure { return adversary.Example1() }

// Example2Structure returns the paper's §4.3 Example 2: sixteen servers
// classified by location × operating system, tolerating the simultaneous
// loss of one full location and one full operating system (7 servers).
func Example2Structure() *Structure { return adversary.Example2() }

// Example2Party maps an Example 2 (location, operating-system) coordinate
// to the party index.
func Example2Party(location, system int) int { return adversary.Example2Party(location, system) }

// Formula constructors, re-exported for building custom structures.
var (
	// Leaf is satisfied iff the party is present.
	Leaf = adversary.Leaf
	// Threshold is the gate Θ_k over sub-formulas.
	Threshold = adversary.Threshold
	// And and Or are the usual special cases.
	And = adversary.And
	Or  = adversary.Or
	// ThresholdOf is Θ_k over explicit party leaves.
	ThresholdOf = adversary.ThresholdOf
	// AnySubsetOf is the characteristic function χ of a party set.
	AnySubsetOf = adversary.AnySubsetOf
	// SetOf builds a PartySet from explicit members.
	SetOf = adversary.SetOf
)

// DealOptions configures the trusted dealer.
type DealOptions struct {
	// Structure is the deployment's adversary structure (required).
	Structure *Structure
	// GroupName selects the discrete-log group backend: "modp2048"
	// (default) or "p256" for real deployments, "test256"/"test512" for
	// fast experiments. P-256 shares are an order of magnitude cheaper to
	// verify and a fraction of the wire size; modp2048 keeps the original
	// Z_p* wire format. See DESIGN.md for the comparison.
	GroupName string
	// RSAPrimes optionally supplies safe primes for threshold RSA; nil
	// generates fresh 1024-bit primes (slow). Use TestRSAPrimes for
	// experiments.
	RSAPrimes func() (p, q *big.Int, err error)
	// ForceCert selects certificate signatures even for threshold
	// structures.
	ForceCert bool
	// Rand overrides the randomness source (tests only).
	Rand io.Reader
}

// TestRSAPrimes returns embedded 256-bit safe primes for fast experiments;
// never use them in real deployments.
func TestRSAPrimes() (p, q *big.Int, err error) {
	pp, qq := thresig.TestSafePrimes256()
	return pp, qq, nil
}

// Deal runs the trusted dealer: it generates every secret of the
// deployment (coin shares, signature shares, decryption shares, identity
// and link keys) once and for all (paper §2). The public output goes to
// every server and client; each PartySecret goes to exactly one server.
func Deal(opts DealOptions) (*Public, []*PartySecret, error) {
	name := opts.GroupName
	if name == "" {
		name = group.NameMODP2048
	}
	g, err := group.ByName(name)
	if err != nil {
		return nil, nil, err
	}
	return deal.New(deal.Options{
		Group:     g,
		Structure: opts.Structure,
		RSAPrimes: opts.RSAPrimes,
		ForceCert: opts.ForceCert,
		Rand:      opts.Rand,
	})
}

// SaveDeployment writes a dealing into a configuration directory
// (public.gob plus one party-<i>.gob per server).
func SaveDeployment(dir string, pub *Public, secrets []*PartySecret) error {
	return deal.SaveDir(dir, pub, secrets)
}

// LoadPublic reads the public material of a configuration directory.
func LoadPublic(dir string) (*Public, error) { return deal.LoadPublic(dir) }

// LoadPartySecret reads one server's secret material.
func LoadPartySecret(dir string, party int) (*PartySecret, error) {
	return deal.LoadParty(dir, party)
}

// NewNode builds a replica; see core.NodeConfig for the fields.
func NewNode(cfg NodeConfig) (*Node, error) { return core.NewNode(cfg) }

// VerifyAnswer checks a service's threshold-signed answer offline.
var VerifyAnswer = core.VerifyAnswer

// NewDirectory creates the CA + directory application (§5.1).
func NewDirectory() *Directory { return service.NewDirectory() }

// NewNotary creates the notary application (§5.2).
func NewNotary() *Notary { return service.NewNotary() }

// NewAuth creates the authentication application (§5): threshold-signed
// verdicts over threshold-encrypted credentials. Run it with
// ModeSecureCausal so secrets stay sealed until ordered.
func NewAuth() *Auth { return service.NewAuth() }

// NewExchange creates the fair-exchange application (§5): a replicated
// escrow that releases both parties' items in one atomic step. Run it
// with ModeSecureCausal so deposited items stay sealed until ordered.
func NewExchange() *Exchange { return service.NewExchange() }

// NewWeightedThreshold builds the §4.3 weighted threshold structure:
// party i has weight weights[i] and the adversary may corrupt any set of
// total weight at most maxWeight.
func NewWeightedThreshold(weights []int, maxWeight int) (*Structure, error) {
	return adversary.NewWeightedThreshold(weights, maxWeight)
}

// NewClientOverTransport attaches a client to an arbitrary transport
// endpoint (the TCP transport of a multi-process deployment, or a
// simulated endpoint).
func NewClientOverTransport(pub *Public, tr Transport, serviceName string, mode Mode, opts ...ClientOption) *Client {
	return core.NewClient(pub, tr, serviceName, mode, opts...)
}

// WithClientObserver reports a client's metrics — request counts,
// end-to-end invoke latency, response-share verification failures —
// through reg.
var WithClientObserver = core.WithObserver

// Client errors, re-exported for errors.Is.
var (
	// ErrTimeout marks an invocation that hit its deadline; it wraps
	// context.DeadlineExceeded.
	ErrTimeout = core.ErrTimeout
	// ErrClosed marks an invocation on (or interrupted by) a closed
	// client.
	ErrClosed = core.ErrClosed
)
