package sintra

import (
	"sintra/internal/obs"
)

// Observability re-exports. The obs package instruments every layer of
// the stack — the router, both transports, the broadcast protocols, and
// the client/replica core — with allocation-conscious counters, gauges,
// and log-scale latency histograms, plus a pluggable tracer for
// structured protocol-stage events. A nil *Registry disables everything
// at effectively zero cost, so observability is strictly opt-in outside
// the simulated deployment.
type (
	// Registry holds named metrics and an optional tracer. Pass one via
	// WithObserver (simulated deployment), NodeConfig.Observer, or
	// WithClientObserver; read it back with Snapshot.
	Registry = obs.Registry
	// MetricsSnapshot is a point-in-time copy of every metric in a
	// registry.
	MetricsSnapshot = obs.Snapshot
	// HistogramSnapshot is one latency distribution within a snapshot.
	HistogramSnapshot = obs.HistogramSnapshot
	// Tracer receives structured protocol-stage events.
	Tracer = obs.Tracer
	// TraceEvent is one protocol-stage event.
	TraceEvent = obs.Event
	// CollectTracer buffers trace events in memory (tests, experiments).
	CollectTracer = obs.CollectTracer
	// LogTracer writes trace events as text lines.
	LogTracer = obs.LogTracer
)

// Trace-event stages.
const (
	// StageStart marks a protocol instance starting.
	StageStart = obs.StageStart
	// StageDeliver marks a payload delivery.
	StageDeliver = obs.StageDeliver
	// StageDecide marks an agreement decision.
	StageDecide = obs.StageDecide
	// StageDrop marks a discarded message or payload.
	StageDrop = obs.StageDrop
)

// NewRegistry creates an empty metrics registry.
func NewRegistry() *Registry { return obs.NewRegistry() }

// Tracer constructors.
var (
	// NewLogTracer writes events as text lines to w.
	NewLogTracer = obs.NewLogTracer
	// NewCollectTracer buffers events in memory.
	NewCollectTracer = obs.NewCollectTracer
	// MultiTracer fans events out to several tracers.
	MultiTracer = obs.MultiTracer
)
