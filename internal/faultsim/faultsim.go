// Package faultsim turns a party Byzantine. It wraps the party's
// wire.Transport with composable attack behaviors — equivocation, payload
// mutation, replay, duplication, selective silence, and buffer flooding —
// so the full protocol stack can be exercised against the corrupted-party
// model of the paper (§2) rather than mere crash faults.
//
// The wrapper sits below the router: the corrupted party still runs the
// honest protocol code, but everything it puts on the wire passes through
// the behavior pipeline first. This models a real intrusion more closely
// than bespoke attack scripts — the adversary controls the channel, and
// honest parties must survive whatever arrives. Channel authentication is
// preserved by construction: the underlying transport stamps the sender
// index on every envelope, so even replayed third-party messages appear as
// traffic from the corrupted party, exactly as authenticated point-to-point
// links guarantee.
//
// All behaviors draw randomness from one seeded source per party, so chaos
// runs are reproducible.
package faultsim

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sync"

	"sintra/internal/obs"
	"sintra/internal/wire"
)

// historySize bounds the per-party ring of observed messages available to
// the replay behavior.
const historySize = 512

// Context is the per-party state a behavior draws on. Behaviors run under
// the party's lock, one outbound message at a time, so they may use the
// context without further synchronization.
type Context struct {
	// Self is the corrupted party's index.
	Self int
	// N is the number of servers.
	N int
	// Rand is the party's seeded randomness source.
	Rand *rand.Rand

	p *Party
}

// Observed returns the messages this party has seen so far — its own sends
// and everything received — oldest first. The slice is shared; treat it as
// read-only.
func (c *Context) Observed() []wire.Message { return c.p.history }

// NextSeq returns a fresh per-party sequence number, used to mint instance
// names that have never existed.
func (c *Context) NextSeq() int64 {
	c.p.seq++
	return c.p.seq
}

// Behavior rewrites one outbound message into the messages actually put on
// the wire: zero (silence), one (possibly altered), or several (injection).
type Behavior interface {
	// Name labels the behavior in metrics and test output.
	Name() string
	// Apply rewrites one outbound message. Returning the input unchanged
	// means the behavior passes this message through.
	Apply(ctx *Context, m wire.Message) []wire.Message
}

// Party wraps a wire.Transport with Byzantine behaviors. It implements
// wire.Transport itself, so it drops into any place a transport goes —
// the simulator deployment, the test cluster, the bench harness.
type Party struct {
	inner     wire.Transport
	behaviors []Behavior
	ctx       *Context

	mu      sync.Mutex
	history []wire.Message
	histPos int
	seq     int64

	// Observability (nil-safe when off).
	actions  *obs.CounterVec // faultsim.actions.<behavior>
	injected *obs.Counter    // faultsim.injected
	dropped  *obs.Counter    // faultsim.dropped
}

var _ wire.Transport = (*Party)(nil)

// Wrap corrupts the party behind inner with the given behaviors, applied
// in order: each behavior sees the output of the previous one. The seed
// makes every attack decision reproducible.
func Wrap(inner wire.Transport, seed int64, behaviors ...Behavior) *Party {
	p := &Party{inner: inner, behaviors: behaviors}
	p.ctx = &Context{
		Self: inner.Self(),
		N:    inner.N(),
		Rand: rand.New(rand.NewSource(seed)),
		p:    p,
	}
	return p
}

// SetObserver reports attack activity through reg: the counter vector
// "faultsim.actions.<behavior>" (times each behavior altered traffic),
// "faultsim.injected" (extra envelopes put on the wire), and
// "faultsim.dropped" (envelopes silently withheld). A nil registry turns
// observability off.
func (p *Party) SetObserver(reg *obs.Registry) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.actions = reg.CounterVec("faultsim.actions")
	p.injected = reg.Counter("faultsim.injected")
	p.dropped = reg.Counter("faultsim.dropped")
}

// Behaviors lists the attack names active on this party.
func (p *Party) Behaviors() []string {
	out := make([]string, len(p.behaviors))
	for i, b := range p.behaviors {
		out[i] = b.Name()
	}
	return out
}

// Self returns the corrupted party's index.
func (p *Party) Self() int { return p.inner.Self() }

// N returns the number of servers.
func (p *Party) N() int { return p.inner.N() }

// Close shuts the underlying transport down.
func (p *Party) Close() error { return p.inner.Close() }

// Recv passes inbound traffic through unchanged, recording it for the
// replay behavior.
func (p *Party) Recv() (wire.Message, bool) {
	m, ok := p.inner.Recv()
	if ok {
		p.mu.Lock()
		p.record(m)
		p.mu.Unlock()
	}
	return m, ok
}

// Send pushes the message through the behavior pipeline and sends whatever
// survives. The underlying transport re-stamps From on every envelope, so
// injected copies of other parties' messages are attributed to this party.
func (p *Party) Send(m wire.Message) {
	p.mu.Lock()
	defer p.mu.Unlock()
	msgs := []wire.Message{m}
	for _, b := range p.behaviors {
		var next []wire.Message
		acted := false
		for _, in := range msgs {
			out := b.Apply(p.ctx, in)
			if len(out) != 1 || !sameMessage(&out[0], &in) {
				acted = true
			}
			next = append(next, out...)
		}
		if acted {
			p.actions.With(b.Name()).Inc()
		}
		if d := len(next) - len(msgs); d > 0 {
			p.injected.Add(int64(d))
		} else if d < 0 {
			p.dropped.Add(int64(-d))
		}
		msgs = next
	}
	// Record after the pipeline so Observed() means strictly prior traffic.
	p.record(m)
	for i := range msgs {
		p.inner.Send(msgs[i])
	}
}

// record appends a message to the bounded observation ring.
func (p *Party) record(m wire.Message) {
	if len(p.history) < historySize {
		p.history = append(p.history, m)
		return
	}
	p.history[p.histPos] = m
	p.histPos = (p.histPos + 1) % historySize
}

// sameMessage reports whether two envelopes are identical, payload bytes
// included.
func sameMessage(a, b *wire.Message) bool {
	if a.To != b.To || a.Protocol != b.Protocol || a.Instance != b.Instance ||
		a.Type != b.Type || len(a.Payload) != len(b.Payload) {
		return false
	}
	for i := range a.Payload {
		if a.Payload[i] != b.Payload[i] {
			return false
		}
	}
	return true
}

// flipByte returns a copy of payload with one byte inverted at a position
// derived from the payload itself, so the same input always flips the same
// way (deterministic equivocation).
func flipByte(payload []byte) []byte {
	h := fnv.New32a()
	h.Write(payload)
	out := append([]byte(nil), payload...)
	out[int(h.Sum32())%len(out)] ^= 0xff
	return out
}

// ---------------------------------------------------------------------------
// Behaviors

// equivocate sends different payloads of the same (protocol, instance,
// type) to different recipients: odd-indexed recipients receive a
// deterministically corrupted copy, even-indexed ones the original.
type equivocate struct{}

// Equivocate makes the party two-faced: for every broadcast step, half the
// recipients see a different payload than the other half. Honest parties
// with an even index still receive consistent traffic, which is what lets
// quorum-based protocols survive the attack — and what the chaos suite
// verifies.
func Equivocate() Behavior { return equivocate{} }

func (equivocate) Name() string { return "equivocate" }

func (equivocate) Apply(ctx *Context, m wire.Message) []wire.Message {
	if len(m.Payload) == 0 || m.To%2 == 0 {
		return []wire.Message{m}
	}
	m.Payload = flipByte(m.Payload)
	return []wire.Message{m}
}

// mutate flips random payload bytes.
type mutate struct{ rate float64 }

// Mutate corrupts each outbound payload with the given probability by
// inverting one randomly chosen byte — garbage that usually fails to
// decode and must be absorbed by the router's malformed-input guard.
func Mutate(rate float64) Behavior { return mutate{rate: rate} }

func (mutate) Name() string { return "mutate" }

func (b mutate) Apply(ctx *Context, m wire.Message) []wire.Message {
	if len(m.Payload) > 0 && ctx.Rand.Float64() < b.rate {
		out := append([]byte(nil), m.Payload...)
		out[ctx.Rand.Intn(len(out))] ^= 0xff
		m.Payload = out
	}
	return []wire.Message{m}
}

// tamperTail flips one bit late in the payload.
type tamperTail struct{ rate float64 }

// TamperTail corrupts each outbound payload with the given probability by
// flipping a single bit in its final quarter — where gob keeps the
// trailing value bytes, e.g. the group elements and proof scalars of a
// share burst. Unlike Mutate's byte inversion anywhere (which usually
// breaks the gob framing outright), a tail bit-flip tends to survive
// decoding: the recipient sees a structurally valid share whose proof is
// cryptographically wrong, the input that coalesced batch verification
// must isolate by binary split rather than let poison the whole batch.
func TamperTail(rate float64) Behavior { return tamperTail{rate: rate} }

func (tamperTail) Name() string { return "tamper-tail" }

func (b tamperTail) Apply(ctx *Context, m wire.Message) []wire.Message {
	if len(m.Payload) == 0 || ctx.Rand.Float64() >= b.rate {
		return []wire.Message{m}
	}
	out := append([]byte(nil), m.Payload...)
	start := len(out) * 3 / 4
	out[start+ctx.Rand.Intn(len(out)-start)] ^= 0x01
	m.Payload = out
	return []wire.Message{m}
}

// replay re-sends previously observed messages.
type replay struct{ rate float64 }

// Replay makes the party re-send, with the given probability per outbound
// message, a message it observed earlier — its own or another party's —
// retargeted at the current recipient. The transport's sender stamp means
// the copy arrives attributed to the corrupted party, as channel
// authentication dictates.
func Replay(rate float64) Behavior { return replay{rate: rate} }

func (replay) Name() string { return "replay" }

func (b replay) Apply(ctx *Context, m wire.Message) []wire.Message {
	out := []wire.Message{m}
	if hist := ctx.Observed(); len(hist) > 0 && ctx.Rand.Float64() < b.rate {
		old := hist[ctx.Rand.Intn(len(hist))]
		old.To = m.To
		out = append(out, old)
	}
	return out
}

// duplicate sends extra identical copies.
type duplicate struct{ copies int }

// Duplicate sends the given number of extra identical copies of every
// outbound message, probing idempotence of protocol handlers.
func Duplicate(copies int) Behavior { return duplicate{copies: copies} }

func (duplicate) Name() string { return "duplicate" }

func (b duplicate) Apply(ctx *Context, m wire.Message) []wire.Message {
	out := make([]wire.Message, 1+b.copies)
	for i := range out {
		out[i] = m
	}
	return out
}

// drop withholds outbound messages.
type drop struct {
	rate   float64
	to     map[int]bool // nil means every recipient
}

// Drop silences the party's outbound traffic with the given probability.
// Drop(1) is a full crash of the sending side while Recv keeps running —
// a "zombie" replica that listens but never answers.
func Drop(rate float64) Behavior { return drop{rate: rate} }

// DropTo silences only traffic to the given recipients, modelling targeted
// denial: the victim sees the party as crashed while everyone else sees it
// as live.
func DropTo(rate float64, to ...int) Behavior {
	victims := make(map[int]bool, len(to))
	for _, id := range to {
		victims[id] = true
	}
	return drop{rate: rate, to: victims}
}

func (drop) Name() string { return "drop" }

func (b drop) Apply(ctx *Context, m wire.Message) []wire.Message {
	if b.to != nil && !b.to[m.To] {
		return []wire.Message{m}
	}
	if ctx.Rand.Float64() < b.rate {
		return nil
	}
	return []wire.Message{m}
}

// flood injects fresh-instance junk alongside real traffic.
type flood struct{ burst int }

// Flood attaches a burst of junk envelopes to every outbound message, each
// aimed at a fresh instance name and an unknown message type — the
// buffer-exhaustion attack the router's per-sender quotas exist to stop.
func Flood(burst int) Behavior { return flood{burst: burst} }

func (flood) Name() string { return "flood" }

func (b flood) Apply(ctx *Context, m wire.Message) []wire.Message {
	out := []wire.Message{m}
	for i := 0; i < b.burst; i++ {
		out = append(out, wire.Message{
			To:       ctx.Rand.Intn(ctx.N),
			Protocol: m.Protocol,
			Instance: fmt.Sprintf("flood-%d-%d", ctx.Self, ctx.NextSeq()),
			Type:     "JUNK",
			Payload:  []byte{0xff, 0x00, 0xff},
		})
	}
	return out
}
