package faultsim

import (
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
)

// ErrNoWAL reports that a disk-fault helper found no WAL segment to
// damage under the given directory.
var ErrNoWAL = errors.New("faultsim: no WAL segment found")

// newestSegment finds the lexically last *.wal file under dir (segments
// are named by their first LSN in fixed-width hex, so lexical order is
// log order). The search recurses so callers can hand either the node's
// data directory or the wal subdirectory itself.
func newestSegment(dir string) (string, error) {
	var segs []string
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && filepath.Ext(path) == ".wal" {
			segs = append(segs, path)
		}
		return nil
	})
	if err != nil {
		return "", err
	}
	if len(segs) == 0 {
		return "", ErrNoWAL
	}
	sort.Strings(segs)
	return segs[len(segs)-1], nil
}

// CorruptWALTail flips one byte near the end of the newest WAL segment
// under dir — the bit-rot / partially-flushed-sector fault. Recovery must
// detect the damage via the frame checksum and truncate the tail rather
// than replay a corrupted commitment.
func CorruptWALTail(dir string) error {
	path, err := newestSegment(dir)
	if err != nil {
		return err
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if len(data) == 0 {
		return nil // empty segment: nothing to corrupt, recovery is trivial
	}
	data[len(data)-1] ^= 0xff
	return os.WriteFile(path, data, 0o644)
}

// TruncateWALTail chops n bytes off the newest WAL segment under dir —
// the power-fail partial write. Recovery must discard the torn frame and
// resume appending at the last complete record.
func TruncateWALTail(dir string, n int64) error {
	path, err := newestSegment(dir)
	if err != nil {
		return err
	}
	st, err := os.Stat(path)
	if err != nil {
		return err
	}
	size := st.Size() - n
	if size < 0 {
		size = 0
	}
	return os.Truncate(path, size)
}
