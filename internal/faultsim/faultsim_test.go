package faultsim_test

import (
	"bytes"
	"fmt"
	"testing"

	"sintra/internal/faultsim"
	"sintra/internal/obs"
	"sintra/internal/wire"
)

// capture is a wire.Transport that records sends and serves a scripted
// inbox, mimicking the netsim endpoint's From-stamping.
type capture struct {
	self, n int
	sent    []wire.Message
	inbox   []wire.Message
}

func (c *capture) Self() int { return c.self }
func (c *capture) N() int    { return c.n }
func (c *capture) Send(m wire.Message) {
	m.From = c.self
	c.sent = append(c.sent, m)
}
func (c *capture) Recv() (wire.Message, bool) {
	if len(c.inbox) == 0 {
		return wire.Message{}, false
	}
	m := c.inbox[0]
	c.inbox = c.inbox[1:]
	return m, true
}
func (c *capture) Close() error { return nil }

func msg(to int, payload []byte) wire.Message {
	return wire.Message{To: to, Protocol: "p", Instance: "i", Type: "T", Payload: payload}
}

func TestEquivocateSplitsRecipients(t *testing.T) {
	inner := &capture{self: 0, n: 4}
	p := faultsim.Wrap(inner, 1, faultsim.Equivocate())
	payload := []byte{1, 2, 3, 4}
	for to := 0; to < 4; to++ {
		p.Send(msg(to, payload))
	}
	if len(inner.sent) != 4 {
		t.Fatalf("sent %d messages, want 4", len(inner.sent))
	}
	for _, m := range inner.sent {
		same := bytes.Equal(m.Payload, payload)
		if m.To%2 == 0 && !same {
			t.Fatalf("even recipient %d got altered payload %x", m.To, m.Payload)
		}
		if m.To%2 == 1 && same {
			t.Fatalf("odd recipient %d got the original payload", m.To)
		}
		if m.Protocol != "p" || m.Instance != "i" || m.Type != "T" {
			t.Fatalf("equivocation changed the envelope: %v", m.String())
		}
	}
	// The two faces must themselves be consistent: both odd recipients see
	// the SAME altered payload — equivocation, not noise.
	if !bytes.Equal(inner.sent[1].Payload, inner.sent[3].Payload) {
		t.Fatal("odd recipients disagree with each other")
	}
}

func TestMutateIsSeededAndDeterministic(t *testing.T) {
	run := func(seed int64) []wire.Message {
		inner := &capture{self: 0, n: 4}
		p := faultsim.Wrap(inner, seed, faultsim.Mutate(0.5))
		for k := 0; k < 32; k++ {
			p.Send(msg(k%4, []byte{byte(k), 1, 2, 3}))
		}
		return inner.sent
	}
	a, b := run(7), run(7)
	for i := range a {
		if !bytes.Equal(a[i].Payload, b[i].Payload) {
			t.Fatalf("same seed diverged at message %d", i)
		}
	}
	mutated := 0
	for k, m := range a {
		if !bytes.Equal(m.Payload, []byte{byte(k), 1, 2, 3}) {
			mutated++
		}
	}
	if mutated == 0 || mutated == len(a) {
		t.Fatalf("mutated %d/%d at rate 0.5 — rate not applied", mutated, len(a))
	}
}

func TestReplayResendsObserved(t *testing.T) {
	inner := &capture{self: 0, n: 4, inbox: []wire.Message{
		{From: 2, To: 0, Protocol: "rbc", Instance: "x", Type: "ECHO", Payload: []byte{9}},
	}}
	p := faultsim.Wrap(inner, 3, faultsim.Replay(1))
	if _, ok := p.Recv(); !ok {
		t.Fatal("recv failed")
	}
	p.Send(msg(1, []byte{1}))
	if len(inner.sent) != 2 {
		t.Fatalf("sent %d messages, want original + replay", len(inner.sent))
	}
	rep := inner.sent[1]
	if rep.To != 1 {
		t.Fatalf("replay not retargeted: To = %d", rep.To)
	}
	if rep.From != 0 {
		t.Fatalf("replay forged sender %d — transport must re-stamp From", rep.From)
	}
	if rep.Protocol != "rbc" || rep.Type != "ECHO" || !bytes.Equal(rep.Payload, []byte{9}) {
		t.Fatalf("replayed wrong message: %s", rep.String())
	}
}

func TestDuplicateSendsCopies(t *testing.T) {
	inner := &capture{self: 0, n: 4}
	p := faultsim.Wrap(inner, 1, faultsim.Duplicate(2))
	p.Send(msg(1, []byte{5}))
	if len(inner.sent) != 3 {
		t.Fatalf("sent %d, want 3 identical copies", len(inner.sent))
	}
	for _, m := range inner.sent {
		if m.To != 1 || !bytes.Equal(m.Payload, []byte{5}) {
			t.Fatalf("duplicate altered the message: %s", m.String())
		}
	}
}

func TestDropAndDropTo(t *testing.T) {
	inner := &capture{self: 0, n: 4}
	p := faultsim.Wrap(inner, 1, faultsim.Drop(1))
	for to := 0; to < 4; to++ {
		p.Send(msg(to, []byte{1}))
	}
	if len(inner.sent) != 0 {
		t.Fatalf("Drop(1) let %d messages through", len(inner.sent))
	}

	inner = &capture{self: 0, n: 4}
	p = faultsim.Wrap(inner, 1, faultsim.DropTo(1, 2))
	for to := 0; to < 4; to++ {
		p.Send(msg(to, []byte{1}))
	}
	if len(inner.sent) != 3 {
		t.Fatalf("DropTo silenced %d recipients, want only party 2", 4-len(inner.sent))
	}
	for _, m := range inner.sent {
		if m.To == 2 {
			t.Fatal("victim 2 still received a message")
		}
	}
}

func TestFloodMintsFreshInstances(t *testing.T) {
	inner := &capture{self: 3, n: 4}
	p := faultsim.Wrap(inner, 1, faultsim.Flood(3))
	p.Send(msg(1, []byte{1}))
	p.Send(msg(2, []byte{2}))
	if len(inner.sent) != 8 {
		t.Fatalf("sent %d, want 2 real + 6 junk", len(inner.sent))
	}
	seen := map[string]bool{}
	junk := 0
	for _, m := range inner.sent {
		if m.Instance == "i" {
			continue
		}
		junk++
		if m.Type != "JUNK" {
			t.Fatalf("flood used known type %q", m.Type)
		}
		if seen[m.Instance] {
			t.Fatalf("flood reused instance %q", m.Instance)
		}
		seen[m.Instance] = true
	}
	if junk != 6 {
		t.Fatalf("junk messages = %d, want 6", junk)
	}
}

func TestBehaviorsCompose(t *testing.T) {
	// Duplicate then equivocate: three copies, each equivocated per its
	// recipient — the pipeline order is the declaration order.
	inner := &capture{self: 0, n: 4}
	p := faultsim.Wrap(inner, 1, faultsim.Duplicate(2), faultsim.Equivocate())
	p.Send(msg(1, []byte{1, 2, 3}))
	if len(inner.sent) != 3 {
		t.Fatalf("sent %d, want 3", len(inner.sent))
	}
	for _, m := range inner.sent {
		if bytes.Equal(m.Payload, []byte{1, 2, 3}) {
			t.Fatal("odd recipient saw the original payload through the pipeline")
		}
	}
}

func TestAttackMetrics(t *testing.T) {
	inner := &capture{self: 0, n: 4}
	reg := obs.NewRegistry()
	p := faultsim.Wrap(inner, 1, faultsim.Duplicate(1), faultsim.DropTo(1, 2))
	p.SetObserver(reg)
	p.Send(msg(1, nil)) // duplicated, not dropped
	p.Send(msg(2, nil)) // duplicated, both copies dropped
	snap := reg.Snapshot()
	if n := snap.Counter("faultsim.actions.duplicate"); n != 2 {
		t.Fatalf("actions.duplicate = %d, want 2", n)
	}
	if n := snap.Counter("faultsim.actions.drop"); n != 1 {
		t.Fatalf("actions.drop = %d, want 1", n)
	}
	if n := snap.Counter("faultsim.injected"); n != 2 {
		t.Fatalf("faultsim.injected = %d, want 2", n)
	}
	if n := snap.Counter("faultsim.dropped"); n != 2 {
		t.Fatalf("faultsim.dropped = %d, want 2", n)
	}
	if got := fmt.Sprint(p.Behaviors()); got != "[duplicate drop]" {
		t.Fatalf("Behaviors() = %s", got)
	}
}
