package service

import (
	"encoding/hex"
	"encoding/json"
	"errors"
	"sort"

	"sintra/internal/core"
)

// Snapshot/Restore make the bundled applications checkpointable
// (core.Snapshotter): a deterministic, canonical JSON encoding of the
// full state — map entries serialize as sorted lists, so every replica
// at the same sequence number produces byte-identical snapshots, which
// is what the checkpoint certificate's state hash requires.

var (
	_ core.Snapshotter = (*Directory)(nil)
	_ core.Snapshotter = (*Notary)(nil)
)

type dirSnapEntry struct {
	Key     string `json:"key"`
	Value   string `json:"value"`
	Version int64  `json:"version"`
}

type dirSnapshot struct {
	NextSerial int64          `json:"nextSerial"`
	Entries    []dirSnapEntry `json:"entries"`
	Issued     []dirSnapCert  `json:"issued"`
}

type dirSnapCert struct {
	Name   string `json:"name"`
	Serial int64  `json:"serial"`
}

// Snapshot implements core.Snapshotter.
func (d *Directory) Snapshot() []byte {
	snap := dirSnapshot{NextSerial: d.nextSerial}
	for k, e := range d.entries {
		snap.Entries = append(snap.Entries, dirSnapEntry{Key: k, Value: e.value, Version: e.version})
	}
	sort.Slice(snap.Entries, func(i, j int) bool { return snap.Entries[i].Key < snap.Entries[j].Key })
	for name, serial := range d.issued {
		snap.Issued = append(snap.Issued, dirSnapCert{Name: name, Serial: serial})
	}
	sort.Slice(snap.Issued, func(i, j int) bool { return snap.Issued[i].Name < snap.Issued[j].Name })
	out, err := json.Marshal(snap)
	if err != nil {
		return nil
	}
	return out
}

// Restore implements core.Snapshotter.
func (d *Directory) Restore(snapshot []byte) error {
	var snap dirSnapshot
	if err := json.Unmarshal(snapshot, &snap); err != nil {
		return err
	}
	d.nextSerial = snap.NextSerial
	d.entries = make(map[string]dirEntry, len(snap.Entries))
	for _, e := range snap.Entries {
		d.entries[e.Key] = dirEntry{value: e.Value, version: e.Version}
	}
	d.issued = make(map[string]int64, len(snap.Issued))
	for _, c := range snap.Issued {
		d.issued[c.Name] = c.Serial
	}
	return nil
}

type notarySnapEntry struct {
	Digest string `json:"digest"` // hex of the document digest
	Seq    int64  `json:"seq"`
}

type notarySnapshot struct {
	Next       int64             `json:"next"`
	Registered []notarySnapEntry `json:"registered"`
}

// Snapshot implements core.Snapshotter.
func (n *Notary) Snapshot() []byte {
	snap := notarySnapshot{Next: n.next}
	for d, seq := range n.registered {
		snap.Registered = append(snap.Registered, notarySnapEntry{Digest: hex.EncodeToString(d[:]), Seq: seq})
	}
	sort.Slice(snap.Registered, func(i, j int) bool { return snap.Registered[i].Digest < snap.Registered[j].Digest })
	out, err := json.Marshal(snap)
	if err != nil {
		return nil
	}
	return out
}

// Restore implements core.Snapshotter.
func (n *Notary) Restore(snapshot []byte) error {
	var snap notarySnapshot
	if err := json.Unmarshal(snapshot, &snap); err != nil {
		return err
	}
	n.next = snap.Next
	n.registered = make(map[[32]byte]int64, len(snap.Registered))
	for _, e := range snap.Registered {
		raw, err := hex.DecodeString(e.Digest)
		if err != nil || len(raw) != 32 {
			return errors.New("service: malformed notary snapshot digest")
		}
		var d [32]byte
		copy(d[:], raw)
		n.registered[d] = e.Seq
	}
	return nil
}
