package service

import (
	"crypto/sha256"
	"crypto/subtle"
	"encoding/json"
	"fmt"
)

// Auth operations. The paper's §5 points to an authentication service as a
// further application of the architecture; this one stores credential
// digests and answers verification queries with threshold-signed verdicts.
// Run it over secure causal atomic broadcast: enrollment and verification
// requests carry secrets, which then stay sealed until ordered.
const (
	// OpEnroll registers (or rotates) a principal's credential.
	OpEnroll = "enroll"
	// OpVerify checks a credential and returns a signed verdict.
	OpVerify = "verify"
	// OpRevoke removes a principal.
	OpRevoke = "revoke"
)

// AuthRequest is the JSON request body of the authentication service.
type AuthRequest struct {
	Op     string `json:"op"`
	User   string `json:"user"`
	Secret []byte `json:"secret,omitempty"`
}

// AuthResponse is the JSON response body; the threshold signature over it
// is a portable authentication token: any relying party holding the
// service's public key can check it offline.
type AuthResponse struct {
	OK       bool   `json:"ok"`
	Error    string `json:"error,omitempty"`
	User     string `json:"user,omitempty"`
	Verified bool   `json:"verified,omitempty"`
	Seq      int64  `json:"seq,omitempty"` // order position: token freshness
}

// Auth is the replicated authentication state machine.
type Auth struct {
	credentials map[string][32]byte
}

// NewAuth creates an empty authentication service.
func NewAuth() *Auth {
	return &Auth{credentials: make(map[string][32]byte)}
}

// Apply implements core.StateMachine.
func (a *Auth) Apply(seq int64, request []byte) []byte {
	var req AuthRequest
	if err := json.Unmarshal(request, &req); err != nil {
		return marshalAuth(AuthResponse{Error: "malformed request"})
	}
	if req.User == "" {
		return marshalAuth(AuthResponse{Error: "user required"})
	}
	switch req.Op {
	case OpEnroll:
		if len(req.Secret) == 0 {
			return marshalAuth(AuthResponse{Error: "secret required"})
		}
		a.credentials[req.User] = sha256.Sum256(req.Secret)
		return marshalAuth(AuthResponse{OK: true, User: req.User, Seq: seq})
	case OpVerify:
		stored, ok := a.credentials[req.User]
		if !ok {
			return marshalAuth(AuthResponse{OK: true, User: req.User, Verified: false, Seq: seq})
		}
		presented := sha256.Sum256(req.Secret)
		verified := subtle.ConstantTimeCompare(stored[:], presented[:]) == 1
		return marshalAuth(AuthResponse{OK: true, User: req.User, Verified: verified, Seq: seq})
	case OpRevoke:
		delete(a.credentials, req.User)
		return marshalAuth(AuthResponse{OK: true, User: req.User, Seq: seq})
	default:
		return marshalAuth(AuthResponse{Error: fmt.Sprintf("unknown op %q", req.Op)})
	}
}

func marshalAuth(resp AuthResponse) []byte {
	out, err := json.Marshal(resp)
	if err != nil {
		return []byte(`{"ok":false,"error":"encoding failure"}`)
	}
	return out
}
