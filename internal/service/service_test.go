package service_test

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"sintra/internal/adversary"
	"sintra/internal/core"
	"sintra/internal/service"
	"sintra/internal/testutil"
)

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	out, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func dirApply(t *testing.T, d *service.Directory, seq int64, req service.DirectoryRequest) service.DirectoryResponse {
	t.Helper()
	var resp service.DirectoryResponse
	if err := json.Unmarshal(d.Apply(seq, mustJSON(t, req)), &resp); err != nil {
		t.Fatal(err)
	}
	return resp
}

func notaryApply(t *testing.T, n *service.Notary, seq int64, req service.NotaryRequest) service.NotaryResponse {
	t.Helper()
	var resp service.NotaryResponse
	if err := json.Unmarshal(n.Apply(seq, mustJSON(t, req)), &resp); err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestDirectoryIssue(t *testing.T) {
	d := service.NewDirectory()
	resp := dirApply(t, d, 7, service.DirectoryRequest{Op: service.OpIssue, Name: "alice", PubKey: []byte{1, 2, 3}})
	if !resp.OK || resp.Certificate == nil {
		t.Fatalf("issue failed: %+v", resp)
	}
	if resp.Certificate.Serial != 1 || resp.Certificate.Name != "alice" || resp.Certificate.Seq != 7 {
		t.Fatalf("bad certificate: %+v", resp.Certificate)
	}
	// Serials increase.
	resp2 := dirApply(t, d, 8, service.DirectoryRequest{Op: service.OpIssue, Name: "bob", PubKey: []byte{4}})
	if resp2.Certificate.Serial != 2 {
		t.Fatalf("serial = %d", resp2.Certificate.Serial)
	}
}

func TestDirectoryIssueValidation(t *testing.T) {
	d := service.NewDirectory()
	if resp := dirApply(t, d, 1, service.DirectoryRequest{Op: service.OpIssue}); resp.OK {
		t.Fatal("issue without name accepted")
	}
	if resp := dirApply(t, d, 1, service.DirectoryRequest{Op: "bogus"}); resp.OK {
		t.Fatal("unknown op accepted")
	}
	var resp service.DirectoryResponse
	if err := json.Unmarshal(d.Apply(1, []byte("{{{")), &resp); err != nil || resp.OK {
		t.Fatal("malformed request accepted")
	}
}

func TestDirectoryPutGet(t *testing.T) {
	d := service.NewDirectory()
	if resp := dirApply(t, d, 1, service.DirectoryRequest{Op: service.OpPut, Key: "dns:example", Value: "10.0.0.1"}); !resp.OK || resp.Version != 1 {
		t.Fatalf("put: %+v", resp)
	}
	if resp := dirApply(t, d, 2, service.DirectoryRequest{Op: service.OpPut, Key: "dns:example", Value: "10.0.0.2"}); resp.Version != 2 {
		t.Fatalf("version = %d", resp.Version)
	}
	resp := dirApply(t, d, 3, service.DirectoryRequest{Op: service.OpGet, Key: "dns:example"})
	if !resp.Found || resp.Value != "10.0.0.2" || resp.Version != 2 {
		t.Fatalf("get: %+v", resp)
	}
	if resp := dirApply(t, d, 4, service.DirectoryRequest{Op: service.OpGet, Key: "missing"}); resp.Found {
		t.Fatal("missing key found")
	}
	if resp := dirApply(t, d, 5, service.DirectoryRequest{Op: service.OpPut}); resp.OK {
		t.Fatal("put without key accepted")
	}
}

func TestDirectoryDeterminism(t *testing.T) {
	// Two replicas applying the same request sequence produce identical
	// responses — the foundation of state machine replication.
	reqs := [][]byte{
		mustJSON(t, service.DirectoryRequest{Op: service.OpIssue, Name: "a", PubKey: []byte{1}}),
		mustJSON(t, service.DirectoryRequest{Op: service.OpPut, Key: "k", Value: "v"}),
		mustJSON(t, service.DirectoryRequest{Op: service.OpGet, Key: "k"}),
		[]byte("junk"),
		mustJSON(t, service.DirectoryRequest{Op: service.OpIssue, Name: "b", PubKey: []byte{2}}),
	}
	d1, d2 := service.NewDirectory(), service.NewDirectory()
	for i, req := range reqs {
		r1 := d1.Apply(int64(i), req)
		r2 := d2.Apply(int64(i), req)
		if !bytes.Equal(r1, r2) {
			t.Fatalf("replicas diverged at %d: %s vs %s", i, r1, r2)
		}
	}
}

func TestNotaryRegisterAndLookup(t *testing.T) {
	n := service.NewNotary()
	doc := []byte("patent application: perpetual motion")
	resp := notaryApply(t, n, 1, service.NotaryRequest{Op: service.OpRegister, Document: doc})
	if !resp.OK || resp.Seq != 1 || resp.Existing {
		t.Fatalf("register: %+v", resp)
	}
	// Re-registering returns the ORIGINAL sequence number.
	resp2 := notaryApply(t, n, 2, service.NotaryRequest{Op: service.OpRegister, Document: doc})
	if !resp2.Existing || resp2.Seq != 1 {
		t.Fatalf("re-register: %+v", resp2)
	}
	// A different document gets the next number.
	resp3 := notaryApply(t, n, 3, service.NotaryRequest{Op: service.OpRegister, Document: []byte("other")})
	if resp3.Seq != 2 {
		t.Fatalf("second doc seq = %d", resp3.Seq)
	}
	look := notaryApply(t, n, 4, service.NotaryRequest{Op: service.OpLookup, Document: doc})
	if !look.Found || look.Seq != 1 {
		t.Fatalf("lookup: %+v", look)
	}
	if missing := notaryApply(t, n, 5, service.NotaryRequest{Op: service.OpLookup, Document: []byte("never")}); missing.Found {
		t.Fatal("unregistered doc found")
	}
}

func TestNotaryValidation(t *testing.T) {
	n := service.NewNotary()
	if resp := notaryApply(t, n, 1, service.NotaryRequest{Op: service.OpRegister}); resp.OK {
		t.Fatal("empty document accepted")
	}
	if resp := notaryApply(t, n, 1, service.NotaryRequest{Op: "bad", Document: []byte("x")}); resp.OK {
		t.Fatal("unknown op accepted")
	}
}

// TestCAEndToEnd runs the CA over the full stack: four replicas, a client
// obtaining a certificate whose threshold signature verifies.
func TestCAEndToEnd(t *testing.T) {
	st := adversary.MustThreshold(4, 1)
	all := []int{0, 1, 2, 3}
	c := testutil.NewCluster(t, st, testutil.Options{Seed: 2, Corrupted: all, Clients: 1})
	nodes := make([]*core.Node, 4)
	for i := 0; i < 4; i++ {
		n, err := core.NewNode(core.NodeConfig{
			Public:      c.Pub,
			Secret:      c.Secrets[i],
			Transport:   c.Net.Endpoint(i),
			ServiceName: "ca",
			Service:     service.NewDirectory(),
			Mode:        core.ModeAtomic,
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = n
		go n.Run()
	}
	t.Cleanup(func() {
		c.Net.Stop()
		for _, n := range nodes {
			n.Stop()
		}
	})
	client := core.NewClient(c.Pub, c.Net.Endpoint(4), "ca", core.ModeAtomic)
	defer client.Close()

	req := mustJSON(t, service.DirectoryRequest{Op: service.OpIssue, Name: "alice", PubKey: []byte("alice-pk")})
	ans, err := client.Invoke(req, 90*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	var resp service.DirectoryResponse
	if err := json.Unmarshal(ans.Result, &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.OK || resp.Certificate == nil || resp.Certificate.Name != "alice" {
		t.Fatalf("bad certificate: %s", ans.Result)
	}
	if len(ans.Signature) == 0 {
		t.Fatal("no threshold signature on the certificate")
	}
}
