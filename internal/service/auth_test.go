package service_test

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"sintra/internal/adversary"
	"sintra/internal/core"
	"sintra/internal/service"
	"sintra/internal/testutil"
)

func authApply(t *testing.T, a *service.Auth, seq int64, req service.AuthRequest) service.AuthResponse {
	t.Helper()
	var resp service.AuthResponse
	if err := json.Unmarshal(a.Apply(seq, mustJSON(t, req)), &resp); err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestAuthEnrollVerifyRevoke(t *testing.T) {
	a := service.NewAuth()
	if resp := authApply(t, a, 1, service.AuthRequest{Op: service.OpEnroll, User: "alice", Secret: []byte("hunter2")}); !resp.OK {
		t.Fatalf("enroll: %+v", resp)
	}
	if resp := authApply(t, a, 2, service.AuthRequest{Op: service.OpVerify, User: "alice", Secret: []byte("hunter2")}); !resp.Verified {
		t.Fatalf("correct secret rejected: %+v", resp)
	}
	if resp := authApply(t, a, 3, service.AuthRequest{Op: service.OpVerify, User: "alice", Secret: []byte("wrong")}); resp.Verified {
		t.Fatal("wrong secret verified")
	}
	if resp := authApply(t, a, 4, service.AuthRequest{Op: service.OpVerify, User: "nobody", Secret: []byte("x")}); resp.Verified || !resp.OK {
		t.Fatalf("unknown user: %+v", resp)
	}
	// Rotation replaces the credential.
	authApply(t, a, 5, service.AuthRequest{Op: service.OpEnroll, User: "alice", Secret: []byte("new-secret")})
	if resp := authApply(t, a, 6, service.AuthRequest{Op: service.OpVerify, User: "alice", Secret: []byte("hunter2")}); resp.Verified {
		t.Fatal("old secret still verifies after rotation")
	}
	// Revocation removes the principal.
	authApply(t, a, 7, service.AuthRequest{Op: service.OpRevoke, User: "alice"})
	if resp := authApply(t, a, 8, service.AuthRequest{Op: service.OpVerify, User: "alice", Secret: []byte("new-secret")}); resp.Verified {
		t.Fatal("revoked user verified")
	}
}

func TestAuthValidation(t *testing.T) {
	a := service.NewAuth()
	if resp := authApply(t, a, 1, service.AuthRequest{Op: service.OpEnroll, User: "x"}); resp.OK {
		t.Fatal("enroll without secret accepted")
	}
	if resp := authApply(t, a, 1, service.AuthRequest{Op: service.OpEnroll, Secret: []byte("s")}); resp.OK {
		t.Fatal("enroll without user accepted")
	}
	if resp := authApply(t, a, 1, service.AuthRequest{Op: "bogus", User: "x"}); resp.OK {
		t.Fatal("unknown op accepted")
	}
	var resp service.AuthResponse
	if err := json.Unmarshal(a.Apply(1, []byte("{")), &resp); err != nil || resp.OK {
		t.Fatal("malformed accepted")
	}
}

func TestAuthDeterminism(t *testing.T) {
	reqs := [][]byte{
		mustJSON(t, service.AuthRequest{Op: service.OpEnroll, User: "u", Secret: []byte("s")}),
		mustJSON(t, service.AuthRequest{Op: service.OpVerify, User: "u", Secret: []byte("s")}),
		mustJSON(t, service.AuthRequest{Op: service.OpVerify, User: "u", Secret: []byte("t")}),
		mustJSON(t, service.AuthRequest{Op: service.OpRevoke, User: "u"}),
	}
	a1, a2 := service.NewAuth(), service.NewAuth()
	for i, req := range reqs {
		if !bytes.Equal(a1.Apply(int64(i), req), a2.Apply(int64(i), req)) {
			t.Fatalf("replicas diverged at %d", i)
		}
	}
}

// TestAuthEndToEndConfidential runs the authentication service over
// secure causal atomic broadcast: credentials are threshold-encrypted by
// the client and the verdict carries the service's threshold signature —
// a portable, offline-verifiable token.
func TestAuthEndToEndConfidential(t *testing.T) {
	st := adversary.MustThreshold(4, 1)
	all := []int{0, 1, 2, 3}
	c := testutil.NewCluster(t, st, testutil.Options{Seed: 3, Corrupted: all, Clients: 1})
	nodes := make([]*core.Node, 4)
	for i := 0; i < 4; i++ {
		n, err := core.NewNode(core.NodeConfig{
			Public:      c.Pub,
			Secret:      c.Secrets[i],
			Transport:   c.Net.Endpoint(i),
			ServiceName: "auth",
			Service:     service.NewAuth(),
			Mode:        core.ModeSecureCausal,
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = n
		go n.Run()
	}
	t.Cleanup(func() {
		c.Net.Stop()
		for _, n := range nodes {
			n.Stop()
		}
	})
	client := core.NewClient(c.Pub, c.Net.Endpoint(4), "auth", core.ModeSecureCausal)
	defer client.Close()

	enroll := mustJSON(t, service.AuthRequest{Op: service.OpEnroll, User: "alice", Secret: []byte("s3cr3t")})
	if _, err := client.Invoke(enroll, 90*time.Second); err != nil {
		t.Fatal(err)
	}
	verify := mustJSON(t, service.AuthRequest{Op: service.OpVerify, User: "alice", Secret: []byte("s3cr3t")})
	ans, err := client.Invoke(verify, 90*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	var resp service.AuthResponse
	if err := json.Unmarshal(ans.Result, &resp); err != nil || !resp.Verified {
		t.Fatalf("verdict: %s (%v)", ans.Result, err)
	}
	if err := core.VerifyAnswer(c.Pub, "auth", ans.ReqID, ans.Result, ans.Signature); err != nil {
		t.Fatalf("token signature: %v", err)
	}
}
