package service

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"fmt"
)

// Exchange is the "trusted party for fair exchange" the paper's §5 points
// to: two parties each want the other's item, and neither trusts the
// other to go first. The replicated service acts as the escrow — an offer
// names the digest of the item it wants in return; the matching accept
// releases both items in one atomic step. Run it over secure causal
// atomic broadcast so items stay sealed until the exchange is decided,
// and nobody can take an item without releasing theirs.
const (
	// OpOffer deposits an item and names the wanted counter-item digest.
	OpOffer = "offer"
	// OpAccept deposits the counter-item for an open offer.
	OpAccept = "accept"
	// OpStatus queries an exchange.
	OpStatus = "status"
)

// ExchangeRequest is the JSON request body of the exchange service.
type ExchangeRequest struct {
	Op string `json:"op"`
	// ID names the exchange (chosen by the offering party).
	ID string `json:"id"`
	// Item is the deposited data.
	Item []byte `json:"item,omitempty"`
	// WantDigest is the SHA-256 of the item wanted in return (offer only).
	WantDigest []byte `json:"wantDigest,omitempty"`
}

// ExchangeResponse is the JSON response body; on completion it carries
// BOTH items, released atomically, under the service's threshold
// signature.
type ExchangeResponse struct {
	OK        bool   `json:"ok"`
	Error     string `json:"error,omitempty"`
	ID        string `json:"id,omitempty"`
	State     string `json:"state,omitempty"` // "open" | "completed"
	ItemA     []byte `json:"itemA,omitempty"`
	ItemB     []byte `json:"itemB,omitempty"`
	Completed bool   `json:"completed,omitempty"`
}

type exchangeState struct {
	itemA      []byte
	wantDigest []byte
	itemB      []byte
	completed  bool
}

// Exchange is the replicated fair-exchange state machine.
type Exchange struct {
	exchanges map[string]*exchangeState
}

// NewExchange creates an empty exchange service.
func NewExchange() *Exchange {
	return &Exchange{exchanges: make(map[string]*exchangeState)}
}

// Apply implements core.StateMachine.
func (e *Exchange) Apply(_ int64, request []byte) []byte {
	var req ExchangeRequest
	if err := json.Unmarshal(request, &req); err != nil {
		return marshalExchange(ExchangeResponse{Error: "malformed request"})
	}
	if req.ID == "" {
		return marshalExchange(ExchangeResponse{Error: "exchange id required"})
	}
	switch req.Op {
	case OpOffer:
		if len(req.Item) == 0 || len(req.WantDigest) != sha256.Size {
			return marshalExchange(ExchangeResponse{Error: "offer requires item and a SHA-256 wantDigest"})
		}
		if _, exists := e.exchanges[req.ID]; exists {
			return marshalExchange(ExchangeResponse{Error: fmt.Sprintf("exchange %q already exists", req.ID)})
		}
		e.exchanges[req.ID] = &exchangeState{
			itemA:      req.Item,
			wantDigest: req.WantDigest,
		}
		return marshalExchange(ExchangeResponse{OK: true, ID: req.ID, State: "open"})
	case OpAccept:
		ex, exists := e.exchanges[req.ID]
		if !exists {
			return marshalExchange(ExchangeResponse{Error: "no such exchange"})
		}
		if ex.completed {
			// Idempotent: re-accepting a completed exchange re-releases.
			return marshalExchange(ExchangeResponse{
				OK: true, ID: req.ID, State: "completed", Completed: true,
				ItemA: ex.itemA, ItemB: ex.itemB,
			})
		}
		d := sha256.Sum256(req.Item)
		if !bytes.Equal(d[:], ex.wantDigest) {
			return marshalExchange(ExchangeResponse{Error: "item does not match the wanted digest"})
		}
		ex.itemB = req.Item
		ex.completed = true
		// Both items released in the same atomic step: fairness.
		return marshalExchange(ExchangeResponse{
			OK: true, ID: req.ID, State: "completed", Completed: true,
			ItemA: ex.itemA, ItemB: ex.itemB,
		})
	case OpStatus:
		ex, exists := e.exchanges[req.ID]
		if !exists {
			return marshalExchange(ExchangeResponse{OK: true, ID: req.ID, State: "unknown"})
		}
		resp := ExchangeResponse{OK: true, ID: req.ID, State: "open"}
		if ex.completed {
			resp.State = "completed"
			resp.Completed = true
			resp.ItemA = ex.itemA
			resp.ItemB = ex.itemB
		}
		return marshalExchange(resp)
	default:
		return marshalExchange(ExchangeResponse{Error: fmt.Sprintf("unknown op %q", req.Op)})
	}
}

func marshalExchange(resp ExchangeResponse) []byte {
	out, err := json.Marshal(resp)
	if err != nil {
		return []byte(`{"ok":false,"error":"encoding failure"}`)
	}
	return out
}
