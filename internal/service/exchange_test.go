package service_test

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"testing"

	"sintra/internal/service"
)

func exApply(t *testing.T, e *service.Exchange, req service.ExchangeRequest) service.ExchangeResponse {
	t.Helper()
	var resp service.ExchangeResponse
	if err := json.Unmarshal(e.Apply(0, mustJSON(t, req)), &resp); err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestFairExchangeHappyPath(t *testing.T) {
	e := service.NewExchange()
	itemA := []byte("signed contract from A")
	itemB := []byte("payment authorization from B")
	dB := sha256.Sum256(itemB)

	offer := exApply(t, e, service.ExchangeRequest{Op: service.OpOffer, ID: "deal-1", Item: itemA, WantDigest: dB[:]})
	if !offer.OK || offer.State != "open" {
		t.Fatalf("offer: %+v", offer)
	}
	// Before acceptance, nobody gets anything.
	status := exApply(t, e, service.ExchangeRequest{Op: service.OpStatus, ID: "deal-1"})
	if status.Completed || status.ItemA != nil {
		t.Fatalf("items leaked before completion: %+v", status)
	}
	// The matching accept releases BOTH items atomically.
	done := exApply(t, e, service.ExchangeRequest{Op: service.OpAccept, ID: "deal-1", Item: itemB})
	if !done.Completed || !bytes.Equal(done.ItemA, itemA) || !bytes.Equal(done.ItemB, itemB) {
		t.Fatalf("accept: %+v", done)
	}
	// Status now shows completion for everyone (A fetches B's item).
	status = exApply(t, e, service.ExchangeRequest{Op: service.OpStatus, ID: "deal-1"})
	if !status.Completed || !bytes.Equal(status.ItemB, itemB) {
		t.Fatalf("status after completion: %+v", status)
	}
}

func TestFairExchangeRejectsWrongItem(t *testing.T) {
	e := service.NewExchange()
	want := sha256.Sum256([]byte("the right thing"))
	exApply(t, e, service.ExchangeRequest{Op: service.OpOffer, ID: "d", Item: []byte("a"), WantDigest: want[:]})
	resp := exApply(t, e, service.ExchangeRequest{Op: service.OpAccept, ID: "d", Item: []byte("the WRONG thing")})
	if resp.OK {
		t.Fatal("mismatched item accepted")
	}
	// The offer stays open; the right item still completes it.
	done := exApply(t, e, service.ExchangeRequest{Op: service.OpAccept, ID: "d", Item: []byte("the right thing")})
	if !done.Completed {
		t.Fatalf("correct item rejected: %+v", done)
	}
}

func TestFairExchangeValidation(t *testing.T) {
	e := service.NewExchange()
	if resp := exApply(t, e, service.ExchangeRequest{Op: service.OpOffer, ID: "d"}); resp.OK {
		t.Fatal("offer without item accepted")
	}
	if resp := exApply(t, e, service.ExchangeRequest{Op: service.OpOffer, ID: "d", Item: []byte("x"), WantDigest: []byte("short")}); resp.OK {
		t.Fatal("bad digest length accepted")
	}
	if resp := exApply(t, e, service.ExchangeRequest{Op: service.OpAccept, ID: "missing", Item: []byte("x")}); resp.OK {
		t.Fatal("accept on unknown exchange accepted")
	}
	if resp := exApply(t, e, service.ExchangeRequest{Op: service.OpOffer, Item: []byte("x")}); resp.OK {
		t.Fatal("missing id accepted")
	}
	d := sha256.Sum256([]byte("y"))
	exApply(t, e, service.ExchangeRequest{Op: service.OpOffer, ID: "dup", Item: []byte("x"), WantDigest: d[:]})
	if resp := exApply(t, e, service.ExchangeRequest{Op: service.OpOffer, ID: "dup", Item: []byte("x"), WantDigest: d[:]}); resp.OK {
		t.Fatal("duplicate offer id accepted")
	}
}

func TestFairExchangeDeterminism(t *testing.T) {
	d := sha256.Sum256([]byte("b"))
	reqs := [][]byte{
		mustJSON(t, service.ExchangeRequest{Op: service.OpOffer, ID: "x", Item: []byte("a"), WantDigest: d[:]}),
		mustJSON(t, service.ExchangeRequest{Op: service.OpAccept, ID: "x", Item: []byte("b")}),
		mustJSON(t, service.ExchangeRequest{Op: service.OpStatus, ID: "x"}),
		[]byte("garbage"),
	}
	e1, e2 := service.NewExchange(), service.NewExchange()
	for i, req := range reqs {
		if !bytes.Equal(e1.Apply(int64(i), req), e2.Apply(int64(i), req)) {
			t.Fatalf("replicas diverged at request %d", i)
		}
	}
}
