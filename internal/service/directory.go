// Package service implements the paper's trusted applications (§5) as
// deterministic state machines for the core runtime:
//
//   - Directory — a certification authority plus secure directory (§5.1):
//     it issues certificates binding names to public keys and serves
//     signed lookups. The service's "digital signature" is the threshold
//     signature the client recovers from the answer shares, exactly as
//     the paper prescribes ("in the server code, computing the digital
//     signature is replaced by generating a signature share").
//
//   - Notary — a digital notary / time-stamping service (§5.2): it assigns
//     consecutive sequence numbers to submitted documents and certifies
//     them by its signature. Run it over secure causal atomic broadcast so
//     submissions stay confidential until they are scheduled, which is
//     what defeats the front-running competitor of the paper's patent
//     scenario.
//
// Requests and responses are JSON, so clients in any language can talk to
// a deployment.
package service

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"

	"sintra/internal/core"
)

// Directory operations.
const (
	// OpIssue requests a certificate binding Name to PubKey.
	OpIssue = "issue"
	// OpPut stores a directory entry.
	OpPut = "put"
	// OpGet looks a directory entry up.
	OpGet = "get"
)

// DirectoryRequest is the JSON request body of the directory service.
type DirectoryRequest struct {
	Op     string `json:"op"`
	Name   string `json:"name,omitempty"`
	PubKey []byte `json:"pubKey,omitempty"`
	Key    string `json:"key,omitempty"`
	Value  string `json:"value,omitempty"`
}

// Certificate is the content of an issued certificate; the threshold
// signature over the service response makes it verifiable.
type Certificate struct {
	Serial int64  `json:"serial"`
	Name   string `json:"name"`
	PubKey []byte `json:"pubKey"`
	Seq    int64  `json:"seq"` // position in the service's total order
}

// DirectoryResponse is the JSON response body of the directory service.
type DirectoryResponse struct {
	OK          bool         `json:"ok"`
	Error       string       `json:"error,omitempty"`
	Certificate *Certificate `json:"certificate,omitempty"`
	Value       string       `json:"value,omitempty"`
	Version     int64        `json:"version,omitempty"`
	Found       bool         `json:"found,omitempty"`
}

type dirEntry struct {
	value   string
	version int64
}

// Directory is the replicated CA + directory state machine.
type Directory struct {
	nextSerial int64
	entries    map[string]dirEntry
	issued     map[string]int64 // name -> serial of the latest certificate
}

var _ core.StateMachine = (*Directory)(nil)

// NewDirectory creates an empty directory.
func NewDirectory() *Directory {
	return &Directory{
		nextSerial: 1,
		entries:    make(map[string]dirEntry),
		issued:     make(map[string]int64),
	}
}

// Apply implements core.StateMachine.
func (d *Directory) Apply(seq int64, request []byte) []byte {
	var req DirectoryRequest
	if err := json.Unmarshal(request, &req); err != nil {
		return marshalDir(DirectoryResponse{Error: "malformed request"})
	}
	switch req.Op {
	case OpIssue:
		if req.Name == "" || len(req.PubKey) == 0 {
			return marshalDir(DirectoryResponse{Error: "issue requires name and pubKey"})
		}
		serial := d.nextSerial
		d.nextSerial++
		d.issued[req.Name] = serial
		return marshalDir(DirectoryResponse{
			OK: true,
			Certificate: &Certificate{
				Serial: serial,
				Name:   req.Name,
				PubKey: req.PubKey,
				Seq:    seq,
			},
		})
	case OpPut:
		if req.Key == "" {
			return marshalDir(DirectoryResponse{Error: "put requires key"})
		}
		e := d.entries[req.Key]
		e.value = req.Value
		e.version++
		d.entries[req.Key] = e
		return marshalDir(DirectoryResponse{OK: true, Version: e.version})
	case OpGet:
		e, ok := d.entries[req.Key]
		return marshalDir(DirectoryResponse{OK: true, Found: ok, Value: e.value, Version: e.version})
	default:
		return marshalDir(DirectoryResponse{Error: fmt.Sprintf("unknown op %q", req.Op)})
	}
}

func marshalDir(resp DirectoryResponse) []byte {
	out, err := json.Marshal(resp)
	if err != nil {
		// Cannot happen for this struct; keep determinism regardless.
		return []byte(`{"ok":false,"error":"encoding failure"}`)
	}
	return out
}

// Notary operations.
const (
	// OpRegister registers a document and assigns it the next sequence
	// number.
	OpRegister = "register"
	// OpLookup checks whether (and when) a document was registered.
	OpLookup = "lookup"
)

// NotaryRequest is the JSON request body of the notary service.
type NotaryRequest struct {
	Op       string `json:"op"`
	Document []byte `json:"document"`
}

// NotaryResponse is the JSON response body of the notary service; the
// threshold signature over it is the client's receipt.
type NotaryResponse struct {
	OK       bool   `json:"ok"`
	Error    string `json:"error,omitempty"`
	Seq      int64  `json:"seq"`
	Digest   []byte `json:"digest,omitempty"`
	Existing bool   `json:"existing,omitempty"`
	Found    bool   `json:"found,omitempty"`
}

// Notary is the replicated notary state machine.
type Notary struct {
	next       int64
	registered map[[32]byte]int64
}

var _ core.StateMachine = (*Notary)(nil)

// NewNotary creates an empty notary.
func NewNotary() *Notary {
	return &Notary{next: 1, registered: make(map[[32]byte]int64)}
}

// Apply implements core.StateMachine.
func (n *Notary) Apply(_ int64, request []byte) []byte {
	var req NotaryRequest
	if err := json.Unmarshal(request, &req); err != nil {
		return marshalNotary(NotaryResponse{Error: "malformed request"})
	}
	if len(req.Document) == 0 {
		return marshalNotary(NotaryResponse{Error: "document required"})
	}
	d := sha256.Sum256(req.Document)
	switch req.Op {
	case OpRegister:
		if seq, ok := n.registered[d]; ok {
			// First registration wins; the receipt names the original
			// sequence number (the paper's anti-front-running semantics).
			return marshalNotary(NotaryResponse{OK: true, Seq: seq, Digest: d[:], Existing: true})
		}
		seq := n.next
		n.next++
		n.registered[d] = seq
		return marshalNotary(NotaryResponse{OK: true, Seq: seq, Digest: d[:]})
	case OpLookup:
		seq, ok := n.registered[d]
		return marshalNotary(NotaryResponse{OK: true, Found: ok, Seq: seq, Digest: d[:]})
	default:
		return marshalNotary(NotaryResponse{Error: fmt.Sprintf("unknown op %q", req.Op)})
	}
}

func marshalNotary(resp NotaryResponse) []byte {
	out, err := json.Marshal(resp)
	if err != nil {
		return []byte(`{"ok":false,"error":"encoding failure"}`)
	}
	return out
}
