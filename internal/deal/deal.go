// Package deal implements the trusted dealer of the paper's model (§2):
// a one-time setup authority that generates and distributes all secret
// values — coin-tossing shares, threshold-signature shares, threshold-
// decryption shares, identity keys, and pairwise link keys — after which
// the system processes an unlimited number of requests with no further
// trusted involvement.
package deal

import (
	"crypto/rand"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"math/big"
	"os"
	"path/filepath"

	"sintra/internal/adversary"
	"sintra/internal/coin"
	"sintra/internal/group"
	"sintra/internal/identity"
	"sintra/internal/threnc"
	"sintra/internal/thresig"
)

// Signature-scheme role tags.
const (
	tagQuorum = "cbc-quorum"
	tagAnswer = "svc-answer"
)

// linkKeySize is the byte length of pairwise HMAC link keys.
const linkKeySize = 32

// Public is the dealer's public output, identical on every party and
// available to clients.
type Public struct {
	// GroupName selects the discrete-log group.
	GroupName string
	// Structure is the deployment's adversary structure.
	Structure *adversary.Structure
	// Coin is the threshold coin-tossing public key.
	Coin *coin.Params
	// Enc is the TDH2 threshold encryption public key.
	Enc *threnc.Params
	// Identity registers every party's individual signature key.
	Identity *identity.Registry

	// Exactly one of each RSA/Cert pair is non-nil, depending on whether
	// the deployment uses Shoup threshold RSA (threshold structures) or
	// certificate signatures (generalized structures).
	QuorumRSA  *thresig.RSAScheme
	QuorumCert *thresig.CertScheme
	AnswerRSA  *thresig.RSAScheme
	AnswerCert *thresig.CertScheme
}

// PartySecret is one party's private key material.
type PartySecret struct {
	// Party is the owner's index.
	Party int
	// Coin is the party's coin key.
	Coin *coin.SecretKey
	// Enc is the party's decryption key.
	Enc *threnc.SecretKey
	// Identity is the party's individual signing key.
	Identity *identity.Key
	// SigQuorum and SigAnswer are the party's threshold-signature keys.
	SigQuorum *thresig.SecretKey
	SigAnswer *thresig.SecretKey
	// LinkKeys[j] is the symmetric key authenticating the link to party j
	// (LinkKeys[self] is unused).
	LinkKeys [][]byte
}

// Options configures a dealing.
type Options struct {
	// Group selects the discrete-log group (required).
	Group group.Group
	// Structure is the adversary structure (required).
	Structure *adversary.Structure
	// RSAPrimes supplies the safe primes for threshold RSA; nil generates
	// fresh 1024-bit primes (slow). Ignored when ForceCert is set or the
	// structure is generalized.
	RSAPrimes func() (p, q *big.Int, err error)
	// ForceCert selects certificate signatures even for threshold
	// structures (useful to compare the two schemes).
	ForceCert bool
	// Rand is the randomness source; nil means crypto/rand.
	Rand io.Reader
}

// New runs the dealer and returns the public output plus one secret per
// party.
func New(opts Options) (*Public, []*PartySecret, error) {
	if opts.Group == nil || opts.Structure == nil {
		return nil, nil, errors.New("deal: group and structure are required")
	}
	if err := opts.Structure.Validate(); err != nil {
		return nil, nil, fmt.Errorf("deal: %w", err)
	}
	if !opts.Structure.Q3() {
		return nil, nil, errors.New("deal: adversary structure violates the Q3 condition")
	}
	rnd := opts.Rand
	if rnd == nil {
		rnd = rand.Reader
	}
	st := opts.Structure
	n := st.N()

	pub := &Public{GroupName: opts.Group.Name(), Structure: st}
	secrets := make([]*PartySecret, n)
	for i := range secrets {
		secrets[i] = &PartySecret{Party: i, LinkKeys: make([][]byte, n)}
	}

	coinPub, coinKeys, err := coin.Deal(opts.Group, st, rnd)
	if err != nil {
		return nil, nil, fmt.Errorf("deal: coin: %w", err)
	}
	pub.Coin = coinPub
	for i, k := range coinKeys {
		secrets[i].Coin = k
	}

	encPub, encKeys, err := threnc.Deal(opts.Group, st, rnd)
	if err != nil {
		return nil, nil, fmt.Errorf("deal: threnc: %w", err)
	}
	pub.Enc = encPub
	for i, k := range encKeys {
		secrets[i].Enc = k
	}

	idReg, idKeys, err := identity.Generate(n, rnd)
	if err != nil {
		return nil, nil, fmt.Errorf("deal: %w", err)
	}
	pub.Identity = idReg
	for i, k := range idKeys {
		secrets[i].Identity = k
	}

	sigQuorum, sigAnswer, countBased := st.SigSizes()
	useRSA := countBased && !opts.ForceCert
	if useRSA {
		var p, q *big.Int
		if opts.RSAPrimes != nil {
			if p, q, err = opts.RSAPrimes(); err != nil {
				return nil, nil, fmt.Errorf("deal: rsa primes: %w", err)
			}
		} else {
			if p, err = thresig.GenerateSafePrime(512, rnd); err != nil {
				return nil, nil, fmt.Errorf("deal: %w", err)
			}
			if q, err = thresig.GenerateSafePrime(512, rnd); err != nil {
				return nil, nil, fmt.Errorf("deal: %w", err)
			}
		}
		quorum, qKeys, err := thresig.NewRSAScheme(tagQuorum, p, q, n, sigQuorum, rnd)
		if err != nil {
			return nil, nil, fmt.Errorf("deal: %w", err)
		}
		answer, aKeys, err := thresig.NewRSAScheme(tagAnswer, p, q, n, sigAnswer, rnd)
		if err != nil {
			return nil, nil, fmt.Errorf("deal: %w", err)
		}
		pub.QuorumRSA, pub.AnswerRSA = quorum, answer
		for i := range secrets {
			secrets[i].SigQuorum = qKeys[i]
			secrets[i].SigAnswer = aKeys[i]
		}
	} else {
		quorum, qKeys, err := thresig.NewCertScheme(tagQuorum, st, thresig.RuleQuorum, rnd)
		if err != nil {
			return nil, nil, fmt.Errorf("deal: %w", err)
		}
		answer, aKeys, err := thresig.NewCertScheme(tagAnswer, st, thresig.RuleHasHonest, rnd)
		if err != nil {
			return nil, nil, fmt.Errorf("deal: %w", err)
		}
		pub.QuorumCert, pub.AnswerCert = quorum, answer
		for i := range secrets {
			secrets[i].SigQuorum = qKeys[i]
			secrets[i].SigAnswer = aKeys[i]
		}
	}

	// Pairwise symmetric link keys for transport authentication.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			key := make([]byte, linkKeySize)
			if _, err := io.ReadFull(rnd, key); err != nil {
				return nil, nil, fmt.Errorf("deal: link keys: %w", err)
			}
			secrets[i].LinkKeys[j] = key
			secrets[j].LinkKeys[i] = key
		}
	}

	return pub, secrets, nil
}

// QuorumSig returns the quorum-rule threshold signature scheme, or nil if
// the material is incomplete (avoid the typed-nil interface trap).
func (p *Public) QuorumSig() thresig.Scheme {
	if p.QuorumRSA != nil {
		return p.QuorumRSA
	}
	if p.QuorumCert != nil {
		return p.QuorumCert
	}
	return nil
}

// AnswerSig returns the service-answer threshold signature scheme, or nil.
func (p *Public) AnswerSig() thresig.Scheme {
	if p.AnswerRSA != nil {
		return p.AnswerRSA
	}
	if p.AnswerCert != nil {
		return p.AnswerCert
	}
	return nil
}

// Init rebuilds runtime caches after deserialization.
func (p *Public) Init() error {
	if p.Structure == nil || p.Coin == nil || p.Enc == nil || p.Identity == nil {
		return errors.New("deal: incomplete public material")
	}
	if err := p.Coin.Init(); err != nil {
		return fmt.Errorf("deal: %w", err)
	}
	if err := p.Enc.Init(); err != nil {
		return fmt.Errorf("deal: %w", err)
	}
	if p.QuorumSig() == nil || p.AnswerSig() == nil {
		return errors.New("deal: missing signature schemes")
	}
	return nil
}

// TestPrimes256 adapts the embedded 256-bit safe primes to Options.RSAPrimes
// for fast tests and examples.
func TestPrimes256() func() (*big.Int, *big.Int, error) {
	return func() (*big.Int, *big.Int, error) {
		p, q := thresig.TestSafePrimes256()
		return p, q, nil
	}
}

// File names inside a configuration directory.
const (
	publicFile = "public.gob"
)

func partyFile(i int) string { return fmt.Sprintf("party-%d.gob", i) }

// SaveDir writes the dealing into a configuration directory: public.gob
// plus party-<i>.gob for each party (secret files are mode 0600).
func SaveDir(dir string, pub *Public, secrets []*PartySecret) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("deal: %w", err)
	}
	f, err := os.OpenFile(filepath.Join(dir, publicFile), os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("deal: %w", err)
	}
	if err := gob.NewEncoder(f).Encode(pub); err != nil {
		f.Close()
		return fmt.Errorf("deal: encode public: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("deal: %w", err)
	}
	for i, sec := range secrets {
		f, err := os.OpenFile(filepath.Join(dir, partyFile(i)), os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o600)
		if err != nil {
			return fmt.Errorf("deal: %w", err)
		}
		if err := gob.NewEncoder(f).Encode(sec); err != nil {
			f.Close()
			return fmt.Errorf("deal: encode party %d: %w", i, err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("deal: %w", err)
		}
	}
	return nil
}

// LoadPublic reads and initializes the public material of a configuration
// directory.
func LoadPublic(dir string) (*Public, error) {
	f, err := os.Open(filepath.Join(dir, publicFile))
	if err != nil {
		return nil, fmt.Errorf("deal: %w", err)
	}
	defer f.Close()
	var pub Public
	if err := gob.NewDecoder(f).Decode(&pub); err != nil {
		return nil, fmt.Errorf("deal: decode public: %w", err)
	}
	if err := pub.Init(); err != nil {
		return nil, err
	}
	return &pub, nil
}

// LoadParty reads one party's secret material.
func LoadParty(dir string, party int) (*PartySecret, error) {
	f, err := os.Open(filepath.Join(dir, partyFile(party)))
	if err != nil {
		return nil, fmt.Errorf("deal: %w", err)
	}
	defer f.Close()
	var sec PartySecret
	if err := gob.NewDecoder(f).Decode(&sec); err != nil {
		return nil, fmt.Errorf("deal: decode party %d: %w", party, err)
	}
	if sec.Party != party {
		return nil, fmt.Errorf("deal: party file %d holds keys of party %d", party, sec.Party)
	}
	return &sec, nil
}
