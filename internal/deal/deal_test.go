package deal_test

import (
	"crypto/rand"
	"testing"

	"sintra/internal/adversary"
	"sintra/internal/deal"
	"sintra/internal/group"
	"sintra/internal/thresig"
)

func dealThreshold(t *testing.T, n, tt int, force bool) (*deal.Public, []*deal.PartySecret) {
	t.Helper()
	st, err := adversary.NewThreshold(n, tt)
	if err != nil {
		t.Fatal(err)
	}
	pub, secrets, err := deal.New(deal.Options{
		Group:     group.Test256(),
		Structure: st,
		RSAPrimes: deal.TestPrimes256(),
		ForceCert: force,
	})
	if err != nil {
		t.Fatal(err)
	}
	return pub, secrets
}

func TestDealThresholdUsesRSA(t *testing.T) {
	pub, secrets := dealThreshold(t, 4, 1, false)
	if pub.QuorumRSA == nil || pub.AnswerRSA == nil {
		t.Fatal("threshold deployment should use Shoup RSA")
	}
	if pub.QuorumCert != nil || pub.AnswerCert != nil {
		t.Fatal("unexpected cert schemes")
	}
	if pub.QuorumRSA.K != 3 || pub.AnswerRSA.K != 2 {
		t.Fatalf("rsa thresholds: quorum K=%d answer K=%d", pub.QuorumRSA.K, pub.AnswerRSA.K)
	}
	// Keys are usable end to end.
	msg := []byte("statement")
	var shares []thresig.Share
	for i := 0; i < 3; i++ {
		sh, err := pub.QuorumSig().SignShare(secrets[i].SigQuorum, msg, rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		shares = append(shares, sh)
	}
	sig, err := pub.QuorumSig().Combine(msg, shares)
	if err != nil {
		t.Fatal(err)
	}
	if err := pub.QuorumSig().Verify(msg, sig); err != nil {
		t.Fatal(err)
	}
}

func TestDealForceCert(t *testing.T) {
	pub, _ := dealThreshold(t, 4, 1, true)
	if pub.QuorumCert == nil || pub.AnswerCert == nil {
		t.Fatal("ForceCert ignored")
	}
	if pub.QuorumRSA != nil {
		t.Fatal("RSA dealt despite ForceCert")
	}
}

func TestDealGeneralUsesCert(t *testing.T) {
	st := adversary.Example1()
	pub, secrets, err := deal.New(deal.Options{
		Group:     group.Test256(),
		Structure: st,
		RSAPrimes: deal.TestPrimes256(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if pub.QuorumCert == nil {
		t.Fatal("general structure must use certificate signatures")
	}
	if len(secrets) != 9 {
		t.Fatalf("%d secrets", len(secrets))
	}
}

func TestDealRejectsNonQ3(t *testing.T) {
	st, err := adversary.NewThreshold(3, 1) // 3 <= 3t: not Q3
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := deal.New(deal.Options{
		Group:     group.Test256(),
		Structure: st,
		RSAPrimes: deal.TestPrimes256(),
	}); err == nil {
		t.Fatal("non-Q3 structure dealt")
	}
}

func TestDealRejectsMissingInputs(t *testing.T) {
	if _, _, err := deal.New(deal.Options{}); err == nil {
		t.Fatal("empty options accepted")
	}
}

func TestLinkKeysSymmetricAndDistinct(t *testing.T) {
	_, secrets := dealThreshold(t, 4, 1, false)
	seen := make(map[string]bool)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if i == j {
				continue
			}
			ki := secrets[i].LinkKeys[j]
			kj := secrets[j].LinkKeys[i]
			if len(ki) != 32 || string(ki) != string(kj) {
				t.Fatalf("link key (%d,%d) not symmetric", i, j)
			}
			if i < j {
				if seen[string(ki)] {
					t.Fatal("link key reused across pairs")
				}
				seen[string(ki)] = true
			}
		}
	}
}

func TestSaveLoadDir(t *testing.T) {
	pub, secrets := dealThreshold(t, 4, 1, false)
	dir := t.TempDir()
	if err := deal.SaveDir(dir, pub, secrets); err != nil {
		t.Fatal(err)
	}
	pub2, err := deal.LoadPublic(dir)
	if err != nil {
		t.Fatal(err)
	}
	// The reloaded public material must be fully functional: verify a
	// signature produced with the original secrets.
	msg := []byte("cross-check")
	var shares []thresig.Share
	for i := 0; i < 2; i++ {
		sh, err := pub2.AnswerSig().SignShare(secrets[i].SigAnswer, msg, rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		shares = append(shares, sh)
	}
	sig, err := pub2.AnswerSig().Combine(msg, shares)
	if err != nil {
		t.Fatal(err)
	}
	if err := pub.AnswerSig().Verify(msg, sig); err != nil {
		t.Fatal(err)
	}
	// Coin params survive the round trip.
	if err := pub2.Coin.Init(); err != nil {
		t.Fatal(err)
	}
	sec, err := deal.LoadParty(dir, 3)
	if err != nil || sec.Party != 3 {
		t.Fatalf("LoadParty: %v", err)
	}
	if _, err := deal.LoadParty(dir, 8); err == nil {
		t.Fatal("missing party loaded")
	}
	if _, err := deal.LoadPublic(t.TempDir()); err == nil {
		t.Fatal("empty dir loaded")
	}
}

func TestInitDetectsIncompleteness(t *testing.T) {
	pub, _ := dealThreshold(t, 4, 1, false)
	bad := *pub
	bad.Coin = nil
	if err := bad.Init(); err == nil {
		t.Fatal("missing coin accepted")
	}
	bad = *pub
	bad.QuorumRSA = nil
	if err := bad.Init(); err == nil {
		t.Fatal("missing signature scheme accepted")
	}
}
