package netsim

import (
	"sync"
	"testing"
	"time"

	"sintra/internal/wire"
)

func TestDeliveryAllToAll(t *testing.T) {
	const n = 4
	nw := New(n, 0, NewRandomScheduler(1))
	defer nw.Stop()
	var wg sync.WaitGroup
	received := make([]int, n)
	for i := 0; i < n; i++ {
		i := i
		ep := nw.Endpoint(i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < n; r++ {
				if _, ok := ep.Recv(); !ok {
					t.Errorf("party %d: network stopped early", i)
					return
				}
				received[i]++
			}
		}()
	}
	for i := 0; i < n; i++ {
		ep := nw.Endpoint(i)
		for j := 0; j < n; j++ {
			ep.Send(wire.Message{To: j, Protocol: "test", Type: "PING"})
		}
	}
	wg.Wait()
	for i, c := range received {
		if c != n {
			t.Fatalf("party %d received %d, want %d", i, c, n)
		}
	}
}

func TestSenderStamped(t *testing.T) {
	nw := New(2, 0, NewRandomScheduler(1))
	defer nw.Stop()
	nw.Endpoint(1).Send(wire.Message{From: 99, To: 0, Protocol: "p"})
	m, ok := nw.Endpoint(0).Recv()
	if !ok || m.From != 1 {
		t.Fatalf("From = %d, want 1", m.From)
	}
}

func TestStopUnblocksRecv(t *testing.T) {
	nw := New(2, 0, NewRandomScheduler(1))
	done := make(chan bool, 1)
	go func() {
		_, ok := nw.Endpoint(0).Recv()
		done <- ok
	}()
	time.Sleep(10 * time.Millisecond)
	nw.Stop()
	select {
	case ok := <-done:
		if ok {
			t.Fatal("Recv returned a message after Stop")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Recv did not unblock")
	}
	// Stop is idempotent.
	nw.Stop()
}

func TestStats(t *testing.T) {
	nw := New(2, 0, NewRandomScheduler(1))
	defer nw.Stop()
	ep := nw.Endpoint(0)
	ep.Send(wire.Message{To: 1, Protocol: "rbc", Payload: []byte("abcd")})
	ep.Send(wire.Message{To: 1, Protocol: "aba"})
	other := nw.Endpoint(1)
	other.Recv()
	other.Recv()
	st := nw.Stats()
	if st.Messages["rbc"] != 1 || st.Messages["aba"] != 1 {
		t.Fatalf("Messages = %v", st.Messages)
	}
	if st.Bytes["rbc"] <= st.Bytes["aba"] {
		t.Fatal("payload bytes not counted")
	}
	msgs, bytes := st.Total()
	if msgs != 2 || bytes == 0 {
		t.Fatalf("Total = %d, %d", msgs, bytes)
	}
	if got := st.Protocols(); len(got) != 2 || got[0] != "aba" || got[1] != "rbc" {
		t.Fatalf("Protocols = %v", got)
	}
	nw.ResetStats()
	if m, _ := nw.Stats().Total(); m != 0 {
		t.Fatal("ResetStats did not clear")
	}
}

func TestClientEndpoints(t *testing.T) {
	nw := New(2, 1, NewRandomScheduler(1))
	defer nw.Stop()
	client := nw.Endpoint(2)
	if client.N() != 2 {
		t.Fatalf("client N = %d", client.N())
	}
	client.Send(wire.Message{To: 0, Protocol: "req"})
	m, ok := nw.Endpoint(0).Recv()
	if !ok || m.From != 2 {
		t.Fatalf("server got From=%d ok=%v", m.From, ok)
	}
	nw.Endpoint(0).Send(wire.Message{To: 2, Protocol: "resp"})
	if m, ok := client.Recv(); !ok || m.Protocol != "resp" {
		t.Fatal("client did not get response")
	}
}

func TestDelaySchedulerEventualDelivery(t *testing.T) {
	// Starve all messages to party 0; they must still arrive once no
	// other traffic is pending.
	sched := NewDelayScheduler(7, func(m *wire.Message) bool { return m.To == 0 })
	nw := New(3, 0, sched)
	defer nw.Stop()
	nw.Endpoint(1).Send(wire.Message{To: 0, Protocol: "starved"})
	for i := 0; i < 10; i++ {
		nw.Endpoint(1).Send(wire.Message{To: 2, Protocol: "noise"})
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 10; i++ {
			nw.Endpoint(2).Recv()
		}
	}()
	if m, ok := nw.Endpoint(0).Recv(); !ok || m.Protocol != "starved" {
		t.Fatal("starved message never delivered")
	}
	<-done
}

func TestDeterministicUnderSeed(t *testing.T) {
	run := func() []string {
		nw := New(3, 0, NewRandomScheduler(42))
		defer nw.Stop()
		for i := 0; i < 3; i++ {
			ep := nw.Endpoint(i)
			for j := 0; j < 3; j++ {
				if j != i {
					ep.Send(wire.Message{To: j, Protocol: "p", Type: string(rune('A' + i))})
				}
			}
		}
		var order []string
		for i := 0; i < 3; i++ {
			ep := nw.Endpoint(i)
			for j := 0; j < 2; j++ {
				m, _ := ep.Recv()
				order = append(order, m.String())
			}
		}
		return order
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("different lengths")
	}
	// Note: per-party Recv interleavings are goroutine-free here, so the
	// global delivery order is fully determined by the seed.
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run differs at %d: %s vs %s", i, a[i], b[i])
		}
	}
}

func TestMarshalBodyRoundTrip(t *testing.T) {
	type body struct {
		A int
		B []byte
	}
	in := body{A: 7, B: []byte("xyz")}
	data, err := wire.MarshalBody(in)
	if err != nil {
		t.Fatal(err)
	}
	var out body
	if err := wire.UnmarshalBody(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.A != in.A || string(out.B) != string(in.B) {
		t.Fatal("round trip broken")
	}
	if err := wire.UnmarshalBody([]byte{1, 2}, &out); err == nil {
		t.Fatal("garbage decoded")
	}
}

func BenchmarkNetworkThroughput(b *testing.B) {
	nw := New(2, 0, NewRandomScheduler(1))
	defer nw.Stop()
	ep0, ep1 := nw.Endpoint(0), nw.Endpoint(1)
	payload := make([]byte, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ep0.Send(wire.Message{To: 1, Protocol: "bench", Payload: payload})
		if _, ok := ep1.Recv(); !ok {
			b.Fatal("stopped")
		}
	}
}

func TestEndpointCloseUnblocksRecv(t *testing.T) {
	nw := New(2, 1, NewRandomScheduler(1))
	defer nw.Stop()
	ep := nw.Endpoint(2)
	done := make(chan bool, 1)
	go func() {
		_, ok := ep.Recv()
		done <- ok
	}()
	time.Sleep(20 * time.Millisecond)
	if err := ep.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case ok := <-done:
		if ok {
			t.Fatal("Recv returned a message after endpoint close")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("endpoint Close did not unblock Recv")
	}
	// Other endpoints keep working.
	nw.Endpoint(0).Send(wire.Message{To: 1, Protocol: "p"})
	if _, ok := nw.Endpoint(1).Recv(); !ok {
		t.Fatal("network broken after endpoint close")
	}
}

// holdAllScheduler returns -1 until at least want messages are pending,
// then latches open and delivers in FIFO order — exercising the hold-all
// protocol of the Scheduler contract directly.
type holdAllScheduler struct {
	want     int
	released bool
}

func (s *holdAllScheduler) Next(pending []wire.Message) int {
	if !s.released && len(pending) < s.want {
		return -1
	}
	s.released = true
	return 0
}

func TestSchedulerHoldAll(t *testing.T) {
	nw := New(2, 0, &holdAllScheduler{want: 3})
	defer nw.Stop()
	ep := nw.Endpoint(0)
	// Two messages: held. The third releases the flood.
	ep.Send(wire.Message{To: 1, Protocol: "p", Type: "A"})
	ep.Send(wire.Message{To: 1, Protocol: "p", Type: "B"})
	got := make(chan wire.Message, 4)
	go func() {
		for i := 0; i < 3; i++ {
			if m, ok := nw.Endpoint(1).Recv(); ok {
				got <- m
			}
		}
	}()
	select {
	case m := <-got:
		t.Fatalf("message %v delivered while held", m.Type)
	case <-time.After(200 * time.Millisecond):
	}
	ep.Send(wire.Message{To: 1, Protocol: "p", Type: "C"})
	for i := 0; i < 3; i++ {
		select {
		case <-got:
		case <-time.After(5 * time.Second):
			t.Fatal("held messages never released")
		}
	}
}

func TestPartitionSchedulerStarvesCrossingTraffic(t *testing.T) {
	// Partition {0,1} | {2,3}, healing after 100 deliveries. While a
	// same-side message is pending, crossing messages must never be chosen.
	s := NewPartitionScheduler(1, 100, 0, 1)
	pending := []wire.Message{
		{From: 0, To: 2}, // crossing
		{From: 2, To: 1}, // crossing
		{From: 0, To: 1}, // inside the minority island
		{From: 2, To: 3}, // inside the majority
	}
	for k := 0; k < 50; k++ {
		idx := s.Next(pending)
		if idx != 2 && idx != 3 {
			t.Fatalf("delivery %d chose crossing message %d before heal", k, idx)
		}
	}
	if s.Healed() {
		t.Fatal("healed after only 50 deliveries, configured 100")
	}
}

func TestPartitionSchedulerNeverBlocksForever(t *testing.T) {
	// Only crossing traffic pending: the scheduler must deliver anyway
	// (oldest first), preserving eventual delivery inside the partition.
	s := NewPartitionScheduler(1, 1000, 0)
	pending := []wire.Message{{From: 0, To: 1}, {From: 1, To: 0}}
	if idx := s.Next(pending); idx != 0 {
		t.Fatalf("with only crossing traffic, Next = %d, want 0 (oldest)", idx)
	}
}

func TestPartitionSchedulerHeals(t *testing.T) {
	s := NewPartitionScheduler(1, 10, 3)
	inside := wire.Message{From: 0, To: 1}
	crossing := wire.Message{From: 3, To: 0}
	pending := []wire.Message{crossing, inside}
	for k := 0; k < 10; k++ {
		if idx := s.Next(pending); idx != 1 {
			t.Fatalf("delivery %d chose crossing message before heal", k)
		}
	}
	if !s.Healed() {
		t.Fatal("not healed after the configured deliveries")
	}
	// After healing the scheduler is fair: the crossing message must be
	// chosen within a bounded number of draws.
	for k := 0; k < 1000; k++ {
		if s.Next(pending) == 0 {
			return
		}
	}
	t.Fatal("crossing message still starved after heal")
}

func TestPartitionSchedulerEndToEnd(t *testing.T) {
	// Run a real network under a partition that heals almost immediately:
	// all traffic must still arrive.
	const n = 4
	nw := New(n, 0, NewPartitionScheduler(5, 8, 0))
	defer nw.Stop()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		ep := nw.Endpoint(i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < n; r++ {
				if _, ok := ep.Recv(); !ok {
					t.Error("network stopped early")
					return
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		ep := nw.Endpoint(i)
		for j := 0; j < n; j++ {
			ep.Send(wire.Message{To: j, Protocol: "test", Type: "PING"})
		}
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(20 * time.Second):
		t.Fatal("partition prevented delivery")
	}
}
