// Package netsim simulates a completely asynchronous message-passing
// network whose delivery schedule is chosen by an adversary — the paper's
// model in which "the network is the adversary" (§2): the scheduler may
// reorder and delay messages arbitrarily, subject only to eventual
// delivery. It is strictly stronger than any real WAN, so liveness and
// safety observed here transfer to deployments.
//
// The simulator is deterministic under a seed, collects per-protocol
// traffic metrics for the experiment harness, and hands each party (and
// each client) a wire.Transport endpoint.
package netsim

import (
	"math/rand"
	"sort"
	"sync"

	"sintra/internal/obs"
	"sintra/internal/wire"
)

// Scheduler picks which pending message is delivered next. Implementations
// MUST guarantee eventual delivery: every pending message must be chosen
// after finitely many calls, or the run leaves the asynchronous model.
//
// Next may return -1 to hold ALL pending messages until new traffic is
// enqueued — the adversary "waiting out" the protocol. This is still
// within the asynchronous model for any finite experiment: the held
// messages would be delivered after the observation window.
type Scheduler interface {
	// Next returns the index of the message to deliver from pending, or
	// -1 to wait for more traffic. pending is never empty.
	Next(pending []wire.Message) int
}

// RandomScheduler delivers a uniformly random pending message — a fair but
// unordered network.
type RandomScheduler struct {
	rng *rand.Rand
}

// NewRandomScheduler builds a fair scheduler with a deterministic seed.
func NewRandomScheduler(seed int64) *RandomScheduler {
	return &RandomScheduler{rng: rand.New(rand.NewSource(seed))}
}

// Next picks a uniformly random pending message.
func (s *RandomScheduler) Next(pending []wire.Message) int {
	return s.rng.Intn(len(pending))
}

// DelayScheduler adversarially starves messages matching Victim for as
// long as any other message is pending, modelling an attacker that delays
// traffic to or from chosen parties without breaking eventual delivery.
type DelayScheduler struct {
	rng *rand.Rand
	// Victim reports whether the adversary wants the message starved.
	Victim func(m *wire.Message) bool
}

// NewDelayScheduler builds an adversarial scheduler with the given victim
// predicate.
func NewDelayScheduler(seed int64, victim func(m *wire.Message) bool) *DelayScheduler {
	return &DelayScheduler{rng: rand.New(rand.NewSource(seed)), Victim: victim}
}

// Next delivers a random non-victim message if any exists, else the oldest
// victim (eventual delivery).
func (s *DelayScheduler) Next(pending []wire.Message) int {
	var free []int
	for i := range pending {
		if !s.Victim(&pending[i]) {
			free = append(free, i)
		}
	}
	if len(free) == 0 {
		return 0
	}
	return free[s.rng.Intn(len(free))]
}

// PartitionScheduler isolates a set of parties: while the partition holds,
// messages crossing the boundary are starved whenever any same-side message
// is pending. After healAfter deliveries the partition heals and the
// scheduler becomes fair. If only crossing traffic is pending, the oldest
// crossing message is delivered anyway — the partition bends rather than
// break eventual delivery, keeping the run inside the asynchronous model.
//
// Endpoints not named in isolated (including clients, whose indices are
// >= N) sit on the majority side.
type PartitionScheduler struct {
	rng       *rand.Rand
	isolated  map[int]bool
	healAfter int
	delivered int
}

// NewPartitionScheduler builds a scheduler that cuts the isolated parties
// off from everyone else for the first healAfter deliveries.
func NewPartitionScheduler(seed int64, healAfter int, isolated ...int) *PartitionScheduler {
	cut := make(map[int]bool, len(isolated))
	for _, id := range isolated {
		cut[id] = true
	}
	return &PartitionScheduler{
		rng:       rand.New(rand.NewSource(seed)),
		isolated:  cut,
		healAfter: healAfter,
	}
}

// Healed reports whether the partition has healed.
func (s *PartitionScheduler) Healed() bool { return s.delivered >= s.healAfter }

// Next starves crossing messages until the partition heals.
func (s *PartitionScheduler) Next(pending []wire.Message) int {
	s.delivered++
	if s.delivered > s.healAfter {
		return s.rng.Intn(len(pending))
	}
	var free []int
	for i := range pending {
		if s.isolated[pending[i].From] == s.isolated[pending[i].To] {
			free = append(free, i)
		}
	}
	if len(free) == 0 {
		return 0
	}
	return free[s.rng.Intn(len(free))]
}

// Stats aggregates traffic per protocol layer.
type Stats struct {
	// Messages counts delivered envelopes per protocol.
	Messages map[string]int
	// Bytes counts delivered payload volume per protocol.
	Bytes map[string]int
}

// Total returns the total message count across protocols.
func (s Stats) Total() (msgs, bytes int) {
	for _, v := range s.Messages {
		msgs += v
	}
	for _, v := range s.Bytes {
		bytes += v
	}
	return msgs, bytes
}

// Protocols lists the protocols seen, sorted.
func (s Stats) Protocols() []string {
	out := make([]string, 0, len(s.Messages))
	for k := range s.Messages {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Network is the simulated asynchronous network.
type Network struct {
	n         int // servers; endpoints beyond n are clients
	endpoints int

	mu        sync.Mutex
	cond      *sync.Cond
	pending   []wire.Message
	inboxes   [][]wire.Message
	inboxCond []*sync.Cond
	epClosed  []bool
	scheduler Scheduler
	stopped   bool
	msgCount  map[string]int
	byteCount map[string]int

	// Observability (nil when off): per-protocol delivered messages and
	// bytes, plus the depth of the adversary's pending pool.
	obsMsgs      *obs.CounterVec
	obsBytes     *obs.CounterVec
	obsPending   *obs.Gauge
	obsDelivered *obs.Counter

	pumpDone chan struct{}
}

// New creates a network with n server endpoints and extra client
// endpoints, pumping deliveries in the order chosen by the scheduler.
func New(n, clients int, sched Scheduler) *Network {
	total := n + clients
	nw := &Network{
		n:         n,
		endpoints: total,
		inboxes:   make([][]wire.Message, total),
		inboxCond: make([]*sync.Cond, total),
		epClosed:  make([]bool, total),
		scheduler: sched,
		msgCount:  make(map[string]int),
		byteCount: make(map[string]int),
		pumpDone:  make(chan struct{}),
	}
	nw.cond = sync.NewCond(&nw.mu)
	for i := range nw.inboxCond {
		nw.inboxCond[i] = sync.NewCond(&nw.mu)
	}
	go nw.pump()
	return nw
}

// N returns the number of server endpoints.
func (nw *Network) N() int { return nw.n }

// SetObserver reports the simulator's traffic through reg: counters
// "net.msgs.<protocol>" / "net.bytes.<protocol>", the total
// "net.delivered", and the gauge "net.pending.depth" (the adversary's
// in-flight pool). A nil registry turns observability off.
func (nw *Network) SetObserver(reg *obs.Registry) {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	if reg == nil {
		nw.obsMsgs, nw.obsBytes, nw.obsPending, nw.obsDelivered = nil, nil, nil, nil
		return
	}
	nw.obsMsgs = reg.CounterVec("net.msgs")
	nw.obsBytes = reg.CounterVec("net.bytes")
	nw.obsPending = reg.Gauge("net.pending.depth")
	nw.obsDelivered = reg.Counter("net.delivered")
}

// pump moves messages from the pending pool to inboxes, one at a time, in
// scheduler order.
func (nw *Network) pump() {
	defer close(nw.pumpDone)
	nw.mu.Lock()
	defer nw.mu.Unlock()
	for {
		for len(nw.pending) == 0 && !nw.stopped {
			nw.cond.Wait()
		}
		if nw.stopped {
			return
		}
		idx := nw.scheduler.Next(nw.pending)
		if idx < 0 {
			// The scheduler holds everything; wait for new traffic.
			before := len(nw.pending)
			for len(nw.pending) == before && !nw.stopped {
				nw.cond.Wait()
			}
			continue
		}
		if idx >= len(nw.pending) {
			idx = 0
		}
		m := nw.pending[idx]
		nw.pending = append(nw.pending[:idx], nw.pending[idx+1:]...)
		if m.To >= 0 && m.To < nw.endpoints && !nw.epClosed[m.To] {
			// Closed endpoints drop traffic instead of accumulating an
			// inbox nobody will ever drain (a crashed replica must not
			// leak the cluster's ongoing chatter).
			nw.inboxes[m.To] = append(nw.inboxes[m.To], m)
			nw.msgCount[m.Protocol]++
			nw.byteCount[m.Protocol] += m.Size()
			if nw.obsDelivered != nil {
				nw.obsDelivered.Inc()
				nw.obsMsgs.With(m.Protocol).Inc()
				nw.obsBytes.With(m.Protocol).Add(int64(m.Size()))
				nw.obsPending.Set(int64(len(nw.pending)))
			}
			nw.inboxCond[m.To].Signal()
		}
	}
}

// send enqueues a message into the pending pool.
func (nw *Network) send(m wire.Message) {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	if nw.stopped {
		return
	}
	nw.pending = append(nw.pending, m)
	nw.cond.Signal()
}

// Reopen revives a closed endpoint so a restarted replica can rejoin the
// simulation: the closed flag clears and any stale queued traffic is
// discarded (a real restarted process starts with an empty socket too).
func (nw *Network) Reopen(id int) {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	if id < 0 || id >= nw.endpoints {
		return
	}
	nw.epClosed[id] = false
	nw.inboxes[id] = nil
}

// recv blocks until a message arrives for the endpoint or the network
// stops.
func (nw *Network) recv(id int) (wire.Message, bool) {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	for len(nw.inboxes[id]) == 0 && !nw.stopped && !nw.epClosed[id] {
		nw.inboxCond[id].Wait()
	}
	if len(nw.inboxes[id]) == 0 || nw.epClosed[id] {
		return wire.Message{}, false
	}
	m := nw.inboxes[id][0]
	nw.inboxes[id] = nw.inboxes[id][1:]
	return m, true
}

// Stop shuts the network down, unblocking every Recv.
func (nw *Network) Stop() {
	nw.mu.Lock()
	if nw.stopped {
		nw.mu.Unlock()
		<-nw.pumpDone
		return
	}
	nw.stopped = true
	nw.cond.Broadcast()
	for _, c := range nw.inboxCond {
		c.Broadcast()
	}
	nw.mu.Unlock()
	<-nw.pumpDone
}

// Stats snapshots the per-protocol traffic counters.
func (nw *Network) Stats() Stats {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	st := Stats{
		Messages: make(map[string]int, len(nw.msgCount)),
		Bytes:    make(map[string]int, len(nw.byteCount)),
	}
	for k, v := range nw.msgCount {
		st.Messages[k] = v
	}
	for k, v := range nw.byteCount {
		st.Bytes[k] = v
	}
	return st
}

// ResetStats clears the traffic counters (between experiment phases).
func (nw *Network) ResetStats() {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	nw.msgCount = make(map[string]int)
	nw.byteCount = make(map[string]int)
}

// Endpoint returns the transport handle of one endpoint. Server endpoints
// are 0..N-1; client endpoints follow.
func (nw *Network) Endpoint(id int) wire.Transport {
	return &endpoint{nw: nw, id: id}
}

// endpoint adapts the network to wire.Transport for one party.
type endpoint struct {
	nw *Network
	id int
}

var _ wire.Transport = (*endpoint)(nil)

func (e *endpoint) Self() int { return e.id }
func (e *endpoint) N() int    { return e.nw.n }

func (e *endpoint) Send(m wire.Message) {
	m.From = e.id
	e.nw.send(m)
}

func (e *endpoint) Recv() (wire.Message, bool) { return e.nw.recv(e.id) }

// Close shuts this endpoint down, unblocking its Recv; the rest of the
// network keeps running.
func (e *endpoint) Close() error {
	e.nw.mu.Lock()
	defer e.nw.mu.Unlock()
	if !e.nw.epClosed[e.id] {
		e.nw.epClosed[e.id] = true
		e.nw.inboxCond[e.id].Broadcast()
	}
	return nil
}
