package thresig

import (
	"crypto/rand"
	"io"
	"math/big"
	"sort"

	"sintra/internal/modexp"
)

// rsaBatchItem is one parsed signature share plus the commitments
// carried in Aux, ready for the folded product test.
type rsaBatchItem struct {
	party          int
	xi, c, z       *big.Int
	xi2            *big.Int
	vPrime, xPrime *big.Int
}

// BatchVerifyShares checks k signature shares on one message with a
// random-linear-combination product test and returns the indexes of
// the invalid shares (nil when all verify). Per item it recomputes the
// Fiat-Shamir challenge over the carried commitments — a hash — and
// folds the two verification equations
//
//	v^{z_j} = v'_j · vk_j^{c_j}     x̃^{z_j} = x'_j · (x_j²)^{c_j}
//
// of every item, each raised to an independent 128-bit randomizer and
// squared, into one equality of two multi-exponentiations. The message
// digest and x̃ = x̂^{4Δ} are computed once per batch instead of once
// per share, and the common bases v and x̃ aggregate their exponents
// into single terms — together the bulk of the batch saving.
//
// Squaring moves the check into QR_N, the cyclic odd-order subgroup
// where the small-exponent soundness argument holds: Z_N* also has
// elements of order 2, whose contribution a linear combination cannot
// bound. The squared test therefore accepts a share whose proof is off
// by a square root of unity where strict VerifyShare would reject —
// harmless, because Combine raises every share to an even power 2λ_j,
// which erases exactly that order-2 component, and the combined
// signature is verified against the public key regardless (Shoup's own
// squaring argument; see DESIGN.md). On product failure the batch is
// binary-split with fresh randomizers, ending in deterministic
// per-share checks, so Byzantine shares are isolated and honest ones
// still combine. Shares without Aux (from pre-batching peers) are
// verified individually.
func (s *RSAScheme) BatchVerifyShares(msg []byte, shares []Share) []int {
	s.precompute()
	x := s.digest(msg)
	xTilde := new(big.Int).Exp(x, new(big.Int).Lsh(s.Delta, 2), s.N)

	var bad, cand []int
	items := make([]*rsaBatchItem, len(shares))
	for i, sh := range shares {
		it, ok := s.parseBatchItem(sh, xTilde)
		if !ok {
			bad = append(bad, i)
			continue
		}
		if it.vPrime == nil {
			// Legacy share without commitments: check it individually.
			if s.verifyParsed(it, xTilde) {
				continue
			}
			bad = append(bad, i)
			continue
		}
		items[i] = it
		cand = append(cand, i)
	}
	bad = append(bad, s.splitVerify(items, cand, xTilde, rand.Reader)...)
	if len(bad) == 0 {
		return nil
	}
	sort.Ints(bad)
	return bad
}

// parseBatchItem decodes and range-checks one share. A share with no
// Aux parses with nil commitments (the legacy marker); a share whose
// Aux is present but malformed, or whose challenge does not match the
// carried commitments, fails outright.
func (s *RSAScheme) parseBatchItem(sh Share, xTilde *big.Int) (*rsaBatchItem, bool) {
	if sh.Party < 0 || sh.Party >= s.NParties {
		return nil, false
	}
	parts, err := decodeBigs(sh.Data, 3)
	if err != nil {
		return nil, false
	}
	it := &rsaBatchItem{party: sh.Party, xi: parts[0], c: parts[1], z: parts[2]}
	if it.xi.Sign() <= 0 || it.xi.Cmp(s.N) >= 0 ||
		it.c.BitLen() > rsaProofHashBits ||
		it.z.Sign() < 0 || it.z.BitLen() > s.zBits() {
		return nil, false
	}
	it.xi2 = new(big.Int).Mul(it.xi, it.xi)
	it.xi2.Mod(it.xi2, s.N)
	if len(sh.Aux) == 0 {
		return it, true
	}
	aux, err := decodeBigs(sh.Aux, 2)
	if err != nil {
		return nil, false
	}
	it.vPrime, it.xPrime = aux[0], aux[1]
	if it.vPrime.Sign() <= 0 || it.vPrime.Cmp(s.N) >= 0 ||
		it.xPrime.Sign() <= 0 || it.xPrime.Cmp(s.N) >= 0 {
		return nil, false
	}
	if s.challenge(s.VKeys[it.party], xTilde, it.xi2, it.vPrime, it.xPrime).Cmp(it.c) != 0 {
		return nil, false
	}
	return it, true
}

// verifyParsed is the strict per-share check (VerifyShare's equations)
// over an already-parsed item, reusing the per-batch x̃.
func (s *RSAScheme) verifyParsed(it *rsaBatchItem, xTilde *big.Int) bool {
	vkC := s.vkTabs[it.party].Exp(it.c)
	vkCInv := new(big.Int).ModInverse(vkC, s.N)
	if vkCInv == nil {
		return false
	}
	xi2Inv := new(big.Int).ModInverse(it.xi2, s.N)
	if xi2Inv == nil {
		return false
	}
	vPrime := s.vTab.Exp(it.z)
	vPrime.Mul(vPrime, vkCInv).Mod(vPrime, s.N)
	xPrime := new(big.Int).Exp(xTilde, it.z, s.N)
	xPrime.Mul(xPrime, new(big.Int).Exp(xi2Inv, it.c, s.N)).Mod(xPrime, s.N)
	return s.challenge(s.VKeys[it.party], xTilde, it.xi2, vPrime, xPrime).Cmp(it.c) == 0
}

// splitVerify checks the items at the given indexes with one folded
// product test, recursively halving (with fresh randomizers) on
// failure until per-share verification isolates the culprits.
func (s *RSAScheme) splitVerify(items []*rsaBatchItem, idx []int, xTilde *big.Int, rnd io.Reader) []int {
	switch len(idx) {
	case 0:
		return nil
	case 1:
		if !s.verifyParsed(items[idx[0]], xTilde) {
			return idx
		}
		return nil
	}
	ok, err := s.foldedCheck(items, idx, xTilde, rnd)
	if err != nil {
		// Randomness failure: deterministic per-share fallback.
		var bad []int
		for _, i := range idx {
			if !s.verifyParsed(items[i], xTilde) {
				bad = append(bad, i)
			}
		}
		return bad
	}
	if ok {
		return nil
	}
	mid := len(idx) / 2
	bad := s.splitVerify(items, idx[:mid], xTilde, rnd)
	return append(bad, s.splitVerify(items, idx[mid:], xTilde, rnd)...)
}

// foldedCheck evaluates the squared random-linear-combination product
// for the items at the given indexes:
//
//	v^{2Σδ_j z_j} · x̃^{2Σδ'_j z_j}
//	    == Π_j v'_j^{2δ_j} · vk_j^{2c_jδ_j} · x'_j^{2δ'_j} · (x_j²)^{2c_jδ'_j}
//
// All exponents are positive integers (the group order is unknown, so
// nothing reduces), v rides its deployment-lifetime fixed-base table
// and so do the verification keys; the remaining per-item terms share
// one interleaved multi-exponentiation chain.
func (s *RSAScheme) foldedCheck(items []*rsaBatchItem, idx []int, xTilde *big.Int, rnd io.Reader) (bool, error) {
	const db = rsaProofHashBits / 8
	buf := make([]byte, 2*len(idx)*db)
	if _, err := io.ReadFull(rnd, buf); err != nil {
		return false, err
	}
	nextDelta := func() *big.Int {
		d := new(big.Int).SetBytes(buf[:db])
		buf = buf[db:]
		return d
	}
	sumV, sumX := new(big.Int), new(big.Int)
	bases := make([]*big.Int, 0, 3*len(idx))
	exps := make([]*big.Int, 0, 3*len(idx))
	rhs := big.NewInt(1)
	tmp := new(big.Int)
	for _, i := range idx {
		it := items[i]
		d1, d2 := nextDelta(), nextDelta()
		sumV.Add(sumV, tmp.Mul(d1, it.z))
		sumX.Add(sumX, tmp.Mul(d2, it.z))
		// vk_j^{2c_jδ_j} on the fixed-base table, straight into rhs.
		e := new(big.Int).Mul(it.c, d1)
		rhs.Mul(rhs, s.vkTabs[it.party].Exp(e.Lsh(e, 1))).Mod(rhs, s.N)
		bases = append(bases, it.vPrime, it.xPrime, it.xi2)
		exps = append(exps,
			new(big.Int).Lsh(d1, 1),
			new(big.Int).Lsh(d2, 1),
			new(big.Int).Lsh(new(big.Int).Mul(it.c, d2), 1),
		)
	}
	rhs.Mul(rhs, modexp.MultiExp(s.N, bases, exps)).Mod(rhs, s.N)
	lhs := s.vTab.Exp(sumV.Lsh(sumV, 1))
	lhs.Mul(lhs, new(big.Int).Exp(xTilde, sumX.Lsh(sumX, 1), s.N)).Mod(lhs, s.N)
	return lhs.Cmp(rhs) == 0, nil
}
