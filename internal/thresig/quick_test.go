package thresig

import (
	"bytes"
	"crypto/rand"
	"testing"
	"testing/quick"

	"sintra/internal/adversary"
)

// Property: for random messages, sign→verify round-trips and any K-subset
// combines to the same verifying signature.
func TestQuickRSASignAnyMessage(t *testing.T) {
	s, keys := newTestRSA(t, 4, 2)
	f := func(msg []byte) bool {
		sh0, err := s.SignShare(keys[0], msg, rand.Reader)
		if err != nil || s.VerifyShare(msg, sh0) != nil {
			return false
		}
		sh2, err := s.SignShare(keys[2], msg, rand.Reader)
		if err != nil {
			return false
		}
		sig, err := s.Combine(msg, []Share{sh0, sh2})
		if err != nil {
			return false
		}
		return s.Verify(msg, sig) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// Property: certificates verify for the exact message only.
func TestQuickCertMessageBinding(t *testing.T) {
	st := adversary.MustThreshold(4, 1)
	s, keys := newTestCert(t, st, RuleQuorum)
	f := func(msg, other []byte) bool {
		var shares []Share
		for i := 0; i < 3; i++ {
			sh, err := s.SignShare(keys[i], msg, rand.Reader)
			if err != nil {
				return false
			}
			shares = append(shares, sh)
		}
		sig, err := s.Combine(msg, shares)
		if err != nil {
			return false
		}
		if s.Verify(msg, sig) != nil {
			return false
		}
		if !bytes.Equal(msg, other) && s.Verify(other, sig) == nil {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// Property: share encodings survive arbitrary prefix corruption without
// panics, and never verify.
func TestQuickRSAShareFuzz(t *testing.T) {
	s, keys := newTestRSA(t, 4, 2)
	msg := []byte("fuzzed")
	good, err := s.SignShare(keys[1], msg, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	f := func(idx uint16, b byte) bool {
		data := append([]byte(nil), good.Data...)
		if len(data) == 0 {
			return true
		}
		i := int(idx) % len(data)
		if data[i] == b {
			b ^= 0xFF
		}
		data[i] = b
		bad := Share{Party: good.Party, Data: data}
		return s.VerifyShare(msg, bad) != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
