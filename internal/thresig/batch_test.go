package thresig

import (
	"crypto/rand"
	"fmt"
	"math/big"
	"reflect"
	"testing"
)

// batchScheme deals a 4-of-7 RSA scheme over the embedded test primes
// and signs one share per party on msg.
func batchScheme(t testing.TB, msg []byte) (*RSAScheme, []Share) {
	t.Helper()
	p, q := TestSafePrimes256()
	scheme, keys, err := NewRSAScheme("batch-test", p, q, 7, 4, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	shares := make([]Share, len(keys))
	for i, sk := range keys {
		sh, err := scheme.SignShare(sk, msg, rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		shares[i] = sh
	}
	return scheme, shares
}

func TestRSABatchVerifyAllValid(t *testing.T) {
	msg := []byte("batch message")
	scheme, shares := batchScheme(t, msg)
	for _, k := range []int{0, 1, 2, 7} {
		if bad := scheme.BatchVerifyShares(msg, shares[:k]); bad != nil {
			t.Fatalf("k=%d: valid batch flagged %v", k, bad)
		}
	}
}

func TestRSABatchIsolatesCulprits(t *testing.T) {
	msg := []byte("batch message")
	for _, culprits := range [][]int{{0}, {6}, {2, 5}, {0, 3, 6}, {0, 1, 2, 3, 4, 5, 6}} {
		scheme, shares := batchScheme(t, msg)
		for _, c := range culprits {
			// A share for the wrong message: commitments and challenge
			// are self-consistent, only the equations fail — the case
			// the folded product test exists to catch.
			parts, err := decodeBigs(shares[c].Data, 3)
			if err != nil {
				t.Fatal(err)
			}
			xi := new(big.Int).Mul(parts[0], parts[0])
			xi.Mod(xi, scheme.N)
			shares[c].Data = encodeBigs(xi, parts[1], parts[2])
			shares[c].Aux = nil // keep the challenge binding parseable
		}
		bad := scheme.BatchVerifyShares(msg, shares)
		if !reflect.DeepEqual(bad, culprits) {
			t.Fatalf("culprits %v: batch flagged %v", culprits, bad)
		}
	}
}

// TestRSABatchForgedCommitments covers Aux-carrying forgeries: shares
// whose carried commitments disagree with the challenge or equations.
func TestRSABatchForgedCommitments(t *testing.T) {
	msg := []byte("batch message")
	scheme, shares := batchScheme(t, msg)
	// Swapped commitments break the challenge binding.
	aux, err := decodeBigs(shares[1].Aux, 2)
	if err != nil {
		t.Fatal(err)
	}
	shares[1].Aux = encodeBigs(aux[1], aux[0])
	// A bumped response breaks the folded equations.
	parts, err := decodeBigs(shares[4].Data, 3)
	if err != nil {
		t.Fatal(err)
	}
	z := new(big.Int).Add(parts[2], big.NewInt(1))
	shares[4].Data = encodeBigs(parts[0], parts[1], z)
	// Malformed Aux encoding.
	shares[5].Aux = []byte{0, 0, 0}
	bad := scheme.BatchVerifyShares(msg, shares)
	if !reflect.DeepEqual(bad, []int{1, 4, 5}) {
		t.Fatalf("forged batch flagged %v", bad)
	}
}

// TestRSABatchLegacyShares strips Aux from a subset — the shape of
// shares from pre-batching peers — and checks the per-share fallback.
func TestRSABatchLegacyShares(t *testing.T) {
	msg := []byte("batch message")
	scheme, shares := batchScheme(t, msg)
	shares[2].Aux = nil
	shares[5].Aux = nil
	if bad := scheme.BatchVerifyShares(msg, shares); bad != nil {
		t.Fatalf("legacy-mixed valid batch flagged %v", bad)
	}
	parts, err := decodeBigs(shares[5].Data, 3)
	if err != nil {
		t.Fatal(err)
	}
	shares[5].Data = encodeBigs(parts[0], parts[1], new(big.Int).Add(parts[2], big.NewInt(1)))
	if bad := scheme.BatchVerifyShares(msg, shares); !reflect.DeepEqual(bad, []int{5}) {
		t.Fatalf("bad legacy share: batch flagged %v", bad)
	}
}

// TestRSABatchMatchesVerifyShare cross-checks the batch verdicts
// against per-share VerifyShare over mixed corruption patterns. The
// one permitted divergence — a proof off by a square root of unity
// passing the squared batch test — cannot be produced by the
// corruptions here (they perturb values, not order-2 components).
func TestRSABatchMatchesVerifyShare(t *testing.T) {
	msg := []byte("batch message")
	for trial := 0; trial < 4; trial++ {
		scheme, shares := batchScheme(t, msg)
		for i := range shares {
			switch (trial + i) % 3 {
			case 1:
				parts, err := decodeBigs(shares[i].Data, 3)
				if err != nil {
					t.Fatal(err)
				}
				z := new(big.Int).Add(parts[2], big.NewInt(1))
				shares[i].Data = encodeBigs(parts[0], parts[1], z)
			}
		}
		var want []int
		for i, sh := range shares {
			if scheme.VerifyShare(msg, sh) != nil {
				want = append(want, i)
			}
		}
		got := scheme.BatchVerifyShares(msg, shares)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: batch flagged %v, per-share %v", trial, got, want)
		}
	}
}

// TestRSABatchSharesStillCombine checks end-to-end compatibility: the
// Aux-carrying shares pass strict VerifyShare, survive a gob-style
// Aux strip, and combine into a signature that verifies.
func TestRSABatchSharesStillCombine(t *testing.T) {
	msg := []byte("batch message")
	scheme, shares := batchScheme(t, msg)
	for _, sh := range shares {
		if err := scheme.VerifyShare(msg, sh); err != nil {
			t.Fatalf("party %d: %v", sh.Party, err)
		}
	}
	sig, err := scheme.Combine(msg, shares[:4])
	if err != nil {
		t.Fatal(err)
	}
	if err := scheme.Verify(msg, sig); err != nil {
		t.Fatal(err)
	}
}

// TestBatchVerifyHelperFallsBack drives the scheme-generic helper over
// a CertScheme, which has no batch path.
func TestBatchVerifyHelperFallsBack(t *testing.T) {
	msg := []byte("batch message")
	scheme, shares := batchScheme(t, msg)
	if bad := BatchVerify(scheme, msg, shares); bad != nil {
		t.Fatalf("helper flagged %v", bad)
	}
	shares[3].Data = shares[3].Data[:len(shares[3].Data)-1]
	shares[3].Aux = nil
	if bad := BatchVerify(scheme, msg, shares); !reflect.DeepEqual(bad, []int{3}) {
		t.Fatalf("helper flagged %v", bad)
	}
}

// BenchmarkRSABatchVerify compares k per-share verifications against
// one folded batch check (EXPERIMENTS.md).
func BenchmarkRSABatchVerify(b *testing.B) {
	msg := []byte("benchmark message")
	scheme, shares := batchScheme(b, msg)
	for _, k := range []int{4, 7} {
		batch := shares[:k]
		// Warm the fixed-base tables outside the timed loops.
		if bad := scheme.BatchVerifyShares(msg, batch); bad != nil {
			b.Fatal("valid batch rejected")
		}
		b.Run(fmt.Sprintf("k=%d/pershare", k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for _, sh := range batch {
					if err := scheme.VerifyShare(msg, sh); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
		b.Run(fmt.Sprintf("k=%d/batch", k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if bad := scheme.BatchVerifyShares(msg, batch); bad != nil {
					b.Fatal("valid batch rejected")
				}
			}
		})
	}
}
