package thresig

import (
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"math/big"
	"sync"

	"sintra/internal/adversary"
	"sintra/internal/modexp"
)

// RSAScheme is Shoup's practical threshold RSA signature scheme
// (EUROCRYPT 2000). A trusted dealer shares the RSA signing exponent d
// with a degree K-1 polynomial over Z_m (m = p'q' for safe primes
// p = 2p'+1, q = 2q'+1); any K valid signature shares combine into a
// standard RSA signature y with y^E = H(M)² mod N.
//
// All fields are public values identical on every party; they are exported
// for serialization and must be treated as read-only.
type RSAScheme struct {
	// InstanceTag domain-separates this instance.
	InstanceTag string
	// N is the RSA modulus, E the public exponent.
	N, E *big.Int
	// K is the number of shares needed to combine.
	K int
	// NParties is the number of share holders.
	NParties int
	// V is the verification base (a quadratic residue mod N) and
	// VKeys[i] = V^{s_i} the per-party verification keys.
	V     *big.Int
	VKeys []*big.Int
	// Delta is NParties! — Shoup's denominator-clearing factor.
	Delta *big.Int

	// Fixed-base exponentiation tables for V and the verification keys:
	// every share signature and verification exponentiates them, and the
	// scheme lives for the whole deployment. Built lazily on first use so
	// deserialized schemes need no explicit init.
	precompOnce sync.Once
	vTab        *modexp.Table
	vkTabs      []*modexp.Table
}

var _ Scheme = (*RSAScheme)(nil)

// rsaProofHashBits is the bit length of the Fiat-Shamir challenge (L1).
const rsaProofHashBits = 128

// zBits bounds the proof response z = s_i·c + r: r has |N|+2·L1+64 bits
// and s_i·c at most |N|+L1, so the sum fits in |N|+2·L1+65 bits. Honest
// provers never exceed it; VerifyShare rejects anything longer.
func (s *RSAScheme) zBits() int { return s.N.BitLen() + 2*rsaProofHashBits + 65 }

// precompute builds the fixed-base tables (idempotent, concurrency-safe).
// The tables are sized past the per-share exponent widths so the batch
// path's aggregated exponents (Σ 2δ_j z_j over up to 2^8 shares, and
// doubled c·δ products) stay on the fixed-base fast path; the window
// choice, and with it the per-share cost, is unchanged.
func (s *RSAScheme) precompute() {
	s.precompOnce.Do(func() {
		s.vTab = modexp.NewTable(s.V, s.N, s.zBits()+rsaProofHashBits+10)
		s.vkTabs = make([]*modexp.Table, len(s.VKeys))
		for i, vk := range s.VKeys {
			s.vkTabs[i] = modexp.NewTable(vk, s.N, 2*rsaProofHashBits+2)
		}
	})
}

// NewRSAScheme deals a fresh Shoup threshold RSA key over the safe primes
// p and q: K-of-n opening, public exponent 65537. It returns the public
// scheme and one secret key per party.
func NewRSAScheme(tag string, p, q *big.Int, n, k int, rnd io.Reader) (*RSAScheme, []*SecretKey, error) {
	if k < 1 || k > n || n < 1 {
		return nil, nil, fmt.Errorf("thresig: bad rsa parameters k=%d n=%d", k, n)
	}
	one := big.NewInt(1)
	pp := new(big.Int).Rsh(new(big.Int).Sub(p, one), 1) // p' = (p-1)/2
	qq := new(big.Int).Rsh(new(big.Int).Sub(q, one), 1)
	if !p.ProbablyPrime(20) || !q.ProbablyPrime(20) || !pp.ProbablyPrime(20) || !qq.ProbablyPrime(20) {
		return nil, nil, fmt.Errorf("thresig: p and q must be safe primes")
	}
	bigN := new(big.Int).Mul(p, q)
	m := new(big.Int).Mul(pp, qq)
	e := big.NewInt(65537)
	if new(big.Int).GCD(nil, nil, e, m).Cmp(one) != 0 {
		return nil, nil, fmt.Errorf("thresig: gcd(e, m) != 1")
	}
	d := new(big.Int).ModInverse(e, m)

	// Polynomial over Z_m with f(0) = d.
	coeffs := make([]*big.Int, k)
	coeffs[0] = d
	for i := 1; i < k; i++ {
		c, err := rand.Int(rnd, m)
		if err != nil {
			return nil, nil, fmt.Errorf("thresig: %w", err)
		}
		coeffs[i] = c
	}
	shares := make([]*big.Int, n)
	for i := 0; i < n; i++ {
		x := big.NewInt(int64(i + 1))
		acc := new(big.Int)
		for j := len(coeffs) - 1; j >= 0; j-- {
			acc.Mul(acc, x)
			acc.Add(acc, coeffs[j])
			acc.Mod(acc, m)
		}
		shares[i] = acc
	}

	// Verification base: a random quadratic residue.
	r, err := rand.Int(rnd, bigN)
	if err != nil {
		return nil, nil, fmt.Errorf("thresig: %w", err)
	}
	v := new(big.Int).Mod(new(big.Int).Mul(r, r), bigN)
	vkeys := make([]*big.Int, n)
	for i := range vkeys {
		vkeys[i] = new(big.Int).Exp(v, shares[i], bigN)
	}

	delta := big.NewInt(1)
	for i := 2; i <= n; i++ {
		delta.Mul(delta, big.NewInt(int64(i)))
	}

	scheme := &RSAScheme{
		InstanceTag: tag,
		N:           bigN,
		E:           e,
		K:           k,
		NParties:    n,
		V:           v,
		VKeys:       vkeys,
		Delta:       delta,
	}
	keys := make([]*SecretKey, n)
	for i := range keys {
		keys[i] = &SecretKey{Party: i, RSAShare: shares[i].Bytes()}
	}
	return scheme, keys, nil
}

// GenerateRSAScheme deals a fresh key over newly generated safe primes of
// the given modulus size. Safe-prime generation is slow; use the embedded
// test primes (TestSafePrimes256) in tests.
func GenerateRSAScheme(tag string, modulusBits, n, k int, rnd io.Reader) (*RSAScheme, []*SecretKey, error) {
	p, err := GenerateSafePrime(modulusBits/2, rnd)
	if err != nil {
		return nil, nil, err
	}
	q, err := GenerateSafePrime(modulusBits/2, rnd)
	if err != nil {
		return nil, nil, err
	}
	return NewRSAScheme(tag, p, q, n, k, rnd)
}

// GenerateSafePrime finds a prime p = 2p'+1 with p' prime, of the given
// bit length.
func GenerateSafePrime(bits int, rnd io.Reader) (*big.Int, error) {
	one := big.NewInt(1)
	for {
		pp, err := rand.Prime(rnd, bits-1)
		if err != nil {
			return nil, fmt.Errorf("thresig: safe prime: %w", err)
		}
		p := new(big.Int).Lsh(pp, 1)
		p.Add(p, one)
		if p.ProbablyPrime(32) {
			return p, nil
		}
	}
}

// Tag returns the instance tag.
func (s *RSAScheme) Tag() string { return s.InstanceTag }

// modLen returns the modulus size in bytes.
func (s *RSAScheme) modLen() int { return (s.N.BitLen() + 7) / 8 }

// digest maps a message into the quadratic residues of Z_N*:
// x̂ = (H*(tag||msg) mod N)² mod N, where H* is a counter-expanded SHA-256.
func (s *RSAScheme) digest(msg []byte) *big.Int {
	want := s.modLen() + 16
	out := make([]byte, 0, want+sha256.Size)
	var ctr uint32
	for len(out) < want {
		h := sha256.New()
		var cb [4]byte
		binary.BigEndian.PutUint32(cb[:], ctr)
		h.Write(cb[:])
		h.Write([]byte("sintra/thresig/rsa/"))
		h.Write([]byte(s.InstanceTag))
		h.Write([]byte{0})
		h.Write(msg)
		out = h.Sum(out)
		ctr++
	}
	x := new(big.Int).SetBytes(out[:want])
	x.Mod(x, s.N)
	return x.Mul(x, x).Mod(x, s.N)
}

// challenge computes the Fiat-Shamir challenge of a share proof.
func (s *RSAScheme) challenge(vk, xTilde, xi2, vPrime, xPrime *big.Int) *big.Int {
	h := sha256.New()
	h.Write([]byte("sintra/thresig/rsa/chal/"))
	h.Write([]byte(s.InstanceTag))
	for _, b := range []*big.Int{s.V, vk, xTilde, xi2, vPrime, xPrime} {
		buf := b.Bytes()
		var lb [4]byte
		binary.BigEndian.PutUint32(lb[:], uint32(len(buf)))
		h.Write(lb[:])
		h.Write(buf)
	}
	sum := h.Sum(nil)
	return new(big.Int).SetBytes(sum[:rsaProofHashBits/8])
}

// SignShare produces x_i = x̂^{2Δ s_i} with Shoup's proof of correctness.
func (s *RSAScheme) SignShare(sk *SecretKey, msg []byte, rnd io.Reader) (Share, error) {
	if sk == nil || len(sk.RSAShare) == 0 || sk.Party < 0 || sk.Party >= s.NParties {
		return Share{}, ErrWrongKey
	}
	si := new(big.Int).SetBytes(sk.RSAShare)
	x := s.digest(msg)
	exp := new(big.Int).Lsh(s.Delta, 1) // 2Δ
	exp.Mul(exp, si)
	xi := new(big.Int).Exp(x, exp, s.N)

	// Proof: log_v(v_i) = log_{x̃}(x_i²) = s_i, with x̃ = x̂^{4Δ}.
	xTilde := new(big.Int).Exp(x, new(big.Int).Lsh(s.Delta, 2), s.N)
	xi2 := new(big.Int).Mod(new(big.Int).Mul(xi, xi), s.N)
	// r ∈ [0, 2^{|N| + 2·L1 + 64})
	bound := new(big.Int).Lsh(big.NewInt(1), uint(s.N.BitLen()+2*rsaProofHashBits+64))
	r, err := rand.Int(rnd, bound)
	if err != nil {
		return Share{}, fmt.Errorf("thresig: %w", err)
	}
	s.precompute()
	vPrime := s.vTab.Exp(r)
	xPrime := new(big.Int).Exp(xTilde, r, s.N)
	c := s.challenge(s.VKeys[sk.Party], xTilde, xi2, vPrime, xPrime)
	z := new(big.Int).Mul(si, c)
	z.Add(z, r)

	// Aux ships the commitments so BatchVerifyShares can fold many
	// proofs into one product check; VerifyShare recomputes them from
	// (c, z) and never reads Aux, keeping Data's legacy encoding.
	return Share{
		Party: sk.Party,
		Data:  encodeBigs(xi, c, z),
		Aux:   encodeBigs(vPrime, xPrime),
	}, nil
}

// VerifyShare checks a signature share's proof of correctness.
func (s *RSAScheme) VerifyShare(msg []byte, sh Share) error {
	if sh.Party < 0 || sh.Party >= s.NParties {
		return ErrInvalidShare
	}
	parts, err := decodeBigs(sh.Data, 3)
	if err != nil {
		return ErrInvalidShare
	}
	xi, c, z := parts[0], parts[1], parts[2]
	if xi.Sign() <= 0 || xi.Cmp(s.N) >= 0 {
		return ErrInvalidShare
	}
	if z.Sign() < 0 || z.BitLen() > s.zBits() {
		return ErrInvalidShare
	}
	s.precompute()
	x := s.digest(msg)
	xTilde := new(big.Int).Exp(x, new(big.Int).Lsh(s.Delta, 2), s.N)
	xi2 := new(big.Int).Mod(new(big.Int).Mul(xi, xi), s.N)
	vk := s.VKeys[sh.Party]

	// v' = v^z · (v_i^c)^{-1}, x' = x̃^z · (x_i²)^{-c}; v^z and v_i^c
	// take the fixed-base tables, inverting after the exponentiation.
	vkC := s.vkTabs[sh.Party].Exp(c)
	vkCInv := new(big.Int).ModInverse(vkC, s.N)
	if vkCInv == nil {
		return ErrInvalidShare
	}
	xi2Inv := new(big.Int).ModInverse(xi2, s.N)
	if xi2Inv == nil {
		return ErrInvalidShare
	}
	vPrime := s.vTab.Exp(z)
	vPrime.Mul(vPrime, vkCInv).Mod(vPrime, s.N)
	xPrime := new(big.Int).Exp(xTilde, z, s.N)
	xPrime.Mul(xPrime, new(big.Int).Exp(xi2Inv, c, s.N)).Mod(xPrime, s.N)

	if s.challenge(vk, xTilde, xi2, vPrime, xPrime).Cmp(c) != 0 {
		return ErrInvalidShare
	}
	return nil
}

// Sufficient reports whether the parties meet the K-of-n opening rule.
func (s *RSAScheme) Sufficient(parties adversary.Set) bool {
	return parties.Count() >= s.K
}

// Combine assembles a standard RSA signature from K verified shares:
// w = Π x_i^{2λ_i} with integer Lagrange coefficients λ_i = Δ·Π j/(j−i),
// then y = w^a · x̂^b for ea + 4Δ²b = 1, so that y^E = x̂ mod N.
func (s *RSAScheme) Combine(msg []byte, shares []Share) ([]byte, error) {
	// Deduplicate by party, keep the first K.
	var chosen []rsaPoint
	seen := make(map[int]bool, len(shares))
	for _, sh := range shares {
		if seen[sh.Party] || sh.Party < 0 || sh.Party >= s.NParties {
			continue
		}
		parts, err := decodeBigs(sh.Data, 3)
		if err != nil {
			continue
		}
		seen[sh.Party] = true
		chosen = append(chosen, rsaPoint{x: sh.Party + 1, xi: parts[0]})
		if len(chosen) == s.K {
			break
		}
	}
	if len(chosen) < s.K {
		return nil, ErrInsufficient
	}

	w := big.NewInt(1)
	for i, p := range chosen {
		lam := s.lagrange(chosen, i)
		exp := new(big.Int).Lsh(lam, 1) // 2λ
		base := p.xi
		if exp.Sign() < 0 {
			base = new(big.Int).ModInverse(p.xi, s.N)
			if base == nil {
				return nil, ErrInvalidShare
			}
			exp.Neg(exp)
		}
		w.Mul(w, new(big.Int).Exp(base, exp, s.N)).Mod(w, s.N)
	}

	// ea + 4Δ²b = 1, so y = w^b · x̂^a satisfies
	// y^e = (x̂^{4Δ²})^b · x̂^{ea} = x̂.
	fourDelta2 := new(big.Int).Mul(s.Delta, s.Delta)
	fourDelta2.Lsh(fourDelta2, 2)
	a, b := new(big.Int), new(big.Int)
	g := new(big.Int).GCD(a, b, s.E, fourDelta2)
	if g.Cmp(big.NewInt(1)) != 0 {
		return nil, fmt.Errorf("thresig: gcd(e, 4Δ²) != 1")
	}
	x := s.digest(msg)
	y := modExpSigned(w, b, s.N)
	y.Mul(y, modExpSigned(x, a, s.N)).Mod(y, s.N)

	if new(big.Int).Exp(y, s.E, s.N).Cmp(x) != 0 {
		return nil, ErrInvalidSignature
	}
	return y.FillBytes(make([]byte, s.modLen())), nil
}

// rsaPoint is one parsed signature share for combination.
type rsaPoint struct {
	x  int // Shamir x-coordinate (party+1)
	xi *big.Int
}

// lagrange computes λ = Δ · Π_{j≠i} x_j / (x_j − x_i), an exact integer.
func (s *RSAScheme) lagrange(chosen []rsaPoint, i int) *big.Int {
	num := new(big.Int).Set(s.Delta)
	den := big.NewInt(1)
	xi := chosen[i].x
	for j, p := range chosen {
		if j == i {
			continue
		}
		num.Mul(num, big.NewInt(int64(p.x)))
		den.Mul(den, big.NewInt(int64(p.x-xi)))
	}
	q, r := new(big.Int).QuoRem(num, den, new(big.Int))
	if r.Sign() != 0 {
		// Cannot happen: Δ clears every denominator of k <= n points.
		panic("thresig: non-integer Lagrange coefficient")
	}
	return q
}

// modExpSigned computes base^exp mod n for possibly negative exp.
func modExpSigned(base, exp, n *big.Int) *big.Int {
	if exp.Sign() >= 0 {
		return new(big.Int).Exp(base, exp, n)
	}
	inv := new(big.Int).ModInverse(base, n)
	return new(big.Int).Exp(inv, new(big.Int).Neg(exp), n)
}

// Verify checks y^E = x̂ mod N.
func (s *RSAScheme) Verify(msg []byte, sig []byte) error {
	if len(sig) != s.modLen() {
		return ErrInvalidSignature
	}
	y := new(big.Int).SetBytes(sig)
	if y.Sign() <= 0 || y.Cmp(s.N) >= 0 {
		return ErrInvalidSignature
	}
	if new(big.Int).Exp(y, s.E, s.N).Cmp(s.digest(msg)) != 0 {
		return ErrInvalidSignature
	}
	return nil
}

// encodeBigs serializes big integers with 4-byte length prefixes.
func encodeBigs(vals ...*big.Int) []byte {
	size := 0
	for _, v := range vals {
		size += 4 + len(v.Bytes())
	}
	out := make([]byte, 0, size)
	for _, v := range vals {
		b := v.Bytes()
		var lb [4]byte
		binary.BigEndian.PutUint32(lb[:], uint32(len(b)))
		out = append(out, lb[:]...)
		out = append(out, b...)
	}
	return out
}

// decodeBigs parses exactly n length-prefixed big integers.
func decodeBigs(data []byte, n int) ([]*big.Int, error) {
	out := make([]*big.Int, 0, n)
	for i := 0; i < n; i++ {
		if len(data) < 4 {
			return nil, fmt.Errorf("thresig: truncated encoding")
		}
		l := binary.BigEndian.Uint32(data[:4])
		data = data[4:]
		if uint32(len(data)) < l {
			return nil, fmt.Errorf("thresig: truncated encoding")
		}
		out = append(out, new(big.Int).SetBytes(data[:l]))
		data = data[l:]
	}
	if len(data) != 0 {
		return nil, fmt.Errorf("thresig: trailing bytes")
	}
	return out, nil
}
