package thresig

import (
	"bytes"
	"crypto/ed25519"
	"encoding/binary"
	"fmt"
	"io"
	"sort"

	"sintra/internal/adversary"
)

// Rule names the opening condition of a CertScheme, expressed in terms of
// the deployment's adversary structure (paper §4.2 substitution rules).
type Rule string

// The supported opening rules.
const (
	// RuleQuorum requires signatures from a quorum (the n−t rule).
	RuleQuorum Rule = "quorum"
	// RuleCore requires signatures from a core set (the 2t+1 rule).
	RuleCore Rule = "core"
	// RuleHasHonest requires signatures from a set outside the adversary
	// structure (the t+1 rule).
	RuleHasHonest Rule = "honest"
	// RuleQualified requires signatures from a set qualified under the
	// secret-sharing access formula.
	RuleQualified Rule = "qualified"
)

// CertScheme is a threshold signature realized as a certificate: a set of
// individual Ed25519 signatures from enough parties to satisfy the opening
// rule under the adversary structure. It supports arbitrary generalized
// structures, trading the constant signature size of RSAScheme for full
// generality (see DESIGN.md, substitution 2).
type CertScheme struct {
	// InstanceTag domain-separates this instance.
	InstanceTag string
	// Structure is the deployment's adversary structure.
	Structure *adversary.Structure
	// OpenRule selects the opening condition.
	OpenRule Rule
	// PubKeys holds each party's Ed25519 public key.
	PubKeys [][]byte
}

var _ Scheme = (*CertScheme)(nil)

// NewCertScheme generates fresh Ed25519 keys for every party and returns
// the public scheme plus the per-party secret keys.
func NewCertScheme(tag string, st *adversary.Structure, rule Rule, rnd io.Reader) (*CertScheme, []*SecretKey, error) {
	switch rule {
	case RuleQuorum, RuleCore, RuleHasHonest, RuleQualified:
	default:
		return nil, nil, fmt.Errorf("thresig: unknown rule %q", rule)
	}
	n := st.N()
	scheme := &CertScheme{
		InstanceTag: tag,
		Structure:   st,
		OpenRule:    rule,
		PubKeys:     make([][]byte, n),
	}
	keys := make([]*SecretKey, n)
	for i := 0; i < n; i++ {
		pub, priv, err := ed25519.GenerateKey(rnd)
		if err != nil {
			return nil, nil, fmt.Errorf("thresig: %w", err)
		}
		scheme.PubKeys[i] = pub
		keys[i] = &SecretKey{Party: i, Ed25519Seed: priv.Seed()}
	}
	return scheme, keys, nil
}

// Tag returns the instance tag.
func (s *CertScheme) Tag() string { return s.InstanceTag }

// frame prefixes the message with the domain and instance tag.
func (s *CertScheme) frame(msg []byte) []byte {
	out := make([]byte, 0, len(s.InstanceTag)+len(msg)+24)
	out = append(out, "sintra/thresig/cert/"...)
	out = append(out, s.InstanceTag...)
	out = append(out, 0)
	return append(out, msg...)
}

// SignShare signs msg with the party's Ed25519 key.
func (s *CertScheme) SignShare(sk *SecretKey, msg []byte, _ io.Reader) (Share, error) {
	if sk == nil || len(sk.Ed25519Seed) != ed25519.SeedSize || sk.Party < 0 || sk.Party >= len(s.PubKeys) {
		return Share{}, ErrWrongKey
	}
	priv := ed25519.NewKeyFromSeed(sk.Ed25519Seed)
	if !bytes.Equal(priv.Public().(ed25519.PublicKey), s.PubKeys[sk.Party]) {
		return Share{}, ErrWrongKey
	}
	return Share{Party: sk.Party, Data: ed25519.Sign(priv, s.frame(msg))}, nil
}

// VerifyShare checks one party's signature.
func (s *CertScheme) VerifyShare(msg []byte, sh Share) error {
	if sh.Party < 0 || sh.Party >= len(s.PubKeys) || len(sh.Data) != ed25519.SignatureSize {
		return ErrInvalidShare
	}
	if !ed25519.Verify(s.PubKeys[sh.Party], s.frame(msg), sh.Data) {
		return ErrInvalidShare
	}
	return nil
}

// ruleSatisfied evaluates the opening rule on a party set.
func (s *CertScheme) ruleSatisfied(parties adversary.Set) bool {
	switch s.OpenRule {
	case RuleQuorum:
		return s.Structure.IsQuorum(parties)
	case RuleCore:
		return s.Structure.IsCore(parties)
	case RuleHasHonest:
		return s.Structure.HasHonest(parties)
	case RuleQualified:
		return s.Structure.Access.Eval(parties)
	default:
		return false
	}
}

// Sufficient reports whether the parties satisfy the opening rule.
func (s *CertScheme) Sufficient(parties adversary.Set) bool {
	return s.ruleSatisfied(parties)
}

// Combine concatenates verified shares into a certificate once the opening
// rule is met. The certificate layout is:
//
//	count:uint16, then count × (party:uint16, sig:64 bytes)
//
// sorted by party for a canonical encoding.
func (s *CertScheme) Combine(msg []byte, shares []Share) ([]byte, error) {
	byParty := make(map[int][]byte, len(shares))
	var parties adversary.Set
	for _, sh := range shares {
		if _, ok := byParty[sh.Party]; ok {
			continue
		}
		if err := s.VerifyShare(msg, sh); err != nil {
			continue // robustness: skip invalid shares
		}
		byParty[sh.Party] = sh.Data
		parties = parties.Add(sh.Party)
		if s.ruleSatisfied(parties) {
			break
		}
	}
	if !s.ruleSatisfied(parties) {
		return nil, ErrInsufficient
	}
	members := parties.Members()
	sort.Ints(members)
	out := make([]byte, 2, 2+len(members)*(2+ed25519.SignatureSize))
	binary.BigEndian.PutUint16(out, uint16(len(members)))
	for _, p := range members {
		var pb [2]byte
		binary.BigEndian.PutUint16(pb[:], uint16(p))
		out = append(out, pb[:]...)
		out = append(out, byParty[p]...)
	}
	return out, nil
}

// Verify checks a certificate: every signature valid, parties distinct,
// and the signer set satisfies the opening rule.
func (s *CertScheme) Verify(msg []byte, sig []byte) error {
	if len(sig) < 2 {
		return ErrInvalidSignature
	}
	count := int(binary.BigEndian.Uint16(sig[:2]))
	rest := sig[2:]
	if len(rest) != count*(2+ed25519.SignatureSize) {
		return ErrInvalidSignature
	}
	framed := s.frame(msg)
	var parties adversary.Set
	for i := 0; i < count; i++ {
		off := i * (2 + ed25519.SignatureSize)
		p := int(binary.BigEndian.Uint16(rest[off : off+2]))
		if p >= len(s.PubKeys) || parties.Has(p) {
			return ErrInvalidSignature
		}
		sigBytes := rest[off+2 : off+2+ed25519.SignatureSize]
		if !ed25519.Verify(s.PubKeys[p], framed, sigBytes) {
			return ErrInvalidSignature
		}
		parties = parties.Add(p)
	}
	if !s.ruleSatisfied(parties) {
		return ErrInvalidSignature
	}
	return nil
}
