package thresig

import "math/big"

// Pre-generated safe primes for tests and examples. Safe-prime generation
// takes seconds even at 256 bits, which would dominate test time; these
// constants let tests deal fresh threshold RSA keys instantly. They MUST
// NOT be used in real deployments — anyone can read them here.
const (
	testSafePrimeA256 = "f66b4943261a5028929e92bbd6ccbebcdcffc0f2487d31f36725663ed264641f"
	testSafePrimeB256 = "c6f1953e75bdf815f9a756802717236bd3c08178ef8a18ca8b8220a250c75ef7"
	testSafePrimeA512 = "ec1e909717dc6e7bdf229eecfa6773e72b50818c89a47c87e038138b5d2f3276" +
		"7bb947a44e2c2ae36401df39d812ba37da46b7fe24b4f3ebc2a1127cc0d343e7"
	testSafePrimeB512 = "fb1ba400b78710213fbc33136cdac0abdc2b04ceaa9675d811d262676d0b3628" +
		"2f47b182f6e99301419a79fecdd1a266254a77895bb97e95a7d41245b8032c03"
)

func mustHex(s string) *big.Int {
	v, ok := new(big.Int).SetString(s, 16)
	if !ok {
		panic("thresig: bad embedded prime")
	}
	return v
}

// TestSafePrimes256 returns two embedded 256-bit safe primes (a 512-bit
// RSA modulus) for fast tests.
func TestSafePrimes256() (*big.Int, *big.Int) {
	return mustHex(testSafePrimeA256), mustHex(testSafePrimeB256)
}

// TestSafePrimes512 returns two embedded 512-bit safe primes (a 1024-bit
// RSA modulus) for benchmarks that want more realistic key sizes.
func TestSafePrimes512() (*big.Int, *big.Int) {
	return mustHex(testSafePrimeA512), mustHex(testSafePrimeB512)
}
