package thresig

import (
	"bytes"
	"crypto/rand"
	"encoding/gob"
	"testing"

	"sintra/internal/adversary"
)

func newTestCert(t testing.TB, st *adversary.Structure, rule Rule) (*CertScheme, []*SecretKey) {
	t.Helper()
	s, keys, err := NewCertScheme("test", st, rule, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	return s, keys
}

func TestCertSignCombineVerify(t *testing.T) {
	st := adversary.MustThreshold(4, 1)
	s, keys := newTestCert(t, st, RuleQuorum)
	msg := []byte("hello cert")
	shares := signAll(t, s, keys, msg, []int{0, 1, 3})
	for _, sh := range shares {
		if err := s.VerifyShare(msg, sh); err != nil {
			t.Fatal(err)
		}
	}
	sig, err := s.Combine(msg, shares)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Verify(msg, sig); err != nil {
		t.Fatal(err)
	}
	if err := s.Verify([]byte("other"), sig); err == nil {
		t.Fatal("certificate verified for wrong message")
	}
}

func TestCertRules(t *testing.T) {
	st := adversary.MustThreshold(4, 1)
	cases := []struct {
		rule Rule
		ok   adversary.Set
		bad  adversary.Set
	}{
		{RuleQuorum, adversary.SetOf(0, 1, 2), adversary.SetOf(0, 1)},
		{RuleCore, adversary.SetOf(0, 1, 2), adversary.SetOf(0, 1)},
		{RuleHasHonest, adversary.SetOf(0, 1), adversary.SetOf(3)},
		{RuleQualified, adversary.SetOf(0, 2), adversary.SetOf(2)},
	}
	for _, c := range cases {
		s, keys := newTestCert(t, st, c.rule)
		msg := []byte("m")
		if !s.Sufficient(c.ok) || s.Sufficient(c.bad) {
			t.Fatalf("rule %s: Sufficient broken", c.rule)
		}
		sig, err := s.Combine(msg, signAll(t, s, keys, msg, c.ok.Members()))
		if err != nil {
			t.Fatalf("rule %s: %v", c.rule, err)
		}
		if err := s.Verify(msg, sig); err != nil {
			t.Fatalf("rule %s: %v", c.rule, err)
		}
		if _, err := s.Combine(msg, signAll(t, s, keys, msg, c.bad.Members())); err == nil {
			t.Fatalf("rule %s: combined below rule", c.rule)
		}
	}
}

func TestCertWithExample2(t *testing.T) {
	st := adversary.Example2()
	s, keys := newTestCert(t, st, RuleQuorum)
	msg := []byte("general adversary certificate")
	// Quorum = complement of one maximal adversary set (site 1 + OS 2).
	var corrupted adversary.Set
	for i := 0; i < 4; i++ {
		corrupted = corrupted.Add(adversary.Example2Party(1, i))
		corrupted = corrupted.Add(adversary.Example2Party(i, 2))
	}
	honest := corrupted.Complement(16)
	sig, err := s.Combine(msg, signAll(t, s, keys, msg, honest.Members()))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Verify(msg, sig); err != nil {
		t.Fatal(err)
	}
	// The corrupted seven alone are not a quorum.
	if _, err := s.Combine(msg, signAll(t, s, keys, msg, corrupted.Members())); err == nil {
		t.Fatal("corruptible set formed a quorum certificate")
	}
}

func TestCertVerifyRejectsForgery(t *testing.T) {
	st := adversary.MustThreshold(4, 1)
	s, keys := newTestCert(t, st, RuleQuorum)
	msg := []byte("m")
	sig, err := s.Combine(msg, signAll(t, s, keys, msg, []int{0, 1, 2}))
	if err != nil {
		t.Fatal(err)
	}
	// Bit flip.
	bad := append([]byte(nil), sig...)
	bad[10] ^= 1
	if err := s.Verify(msg, bad); err == nil {
		t.Fatal("mangled certificate verified")
	}
	// Truncated.
	if err := s.Verify(msg, sig[:len(sig)-1]); err == nil {
		t.Fatal("truncated certificate verified")
	}
	if err := s.Verify(msg, nil); err == nil {
		t.Fatal("nil certificate verified")
	}
	// A certificate claiming duplicate parties must be rejected: craft one
	// by repeating the first entry.
	entry := sig[2 : 2+2+64]
	forged := make([]byte, 2)
	forged[1] = 3
	forged = append(forged, entry...)
	forged = append(forged, entry...)
	forged = append(forged, entry...)
	if err := s.Verify(msg, forged); err == nil {
		t.Fatal("duplicate-party certificate verified")
	}
}

func TestCertShareForgery(t *testing.T) {
	st := adversary.MustThreshold(4, 1)
	s, keys := newTestCert(t, st, RuleQuorum)
	msg := []byte("m")
	good := signAll(t, s, keys, msg, []int{0})[0]
	bad := good
	bad.Party = 1
	if err := s.VerifyShare(msg, bad); err == nil {
		t.Fatal("share verified under wrong party")
	}
	bad = good
	bad.Data = good.Data[:32]
	if err := s.VerifyShare(msg, bad); err == nil {
		t.Fatal("truncated share verified")
	}
}

func TestCertDomainSeparation(t *testing.T) {
	st := adversary.MustThreshold(4, 1)
	s1, keys, err := NewCertScheme("one", st, RuleQuorum, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	s2 := &CertScheme{InstanceTag: "two", Structure: st, OpenRule: RuleQuorum, PubKeys: s1.PubKeys}
	msg := []byte("m")
	sig, err := s1.Combine(msg, signAll(t, s1, keys, msg, []int{0, 1, 2}))
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Verify(msg, sig); err == nil {
		t.Fatal("certificate transferred across tags")
	}
}

func TestCertCombineSkipsInvalidShares(t *testing.T) {
	st := adversary.MustThreshold(4, 1)
	s, keys := newTestCert(t, st, RuleQuorum)
	msg := []byte("m")
	shares := signAll(t, s, keys, msg, []int{0, 1, 2})
	// Poison one share; combine must still succeed using the others plus
	// a fourth honest share.
	shares[1].Data = bytes.Repeat([]byte{0}, 64)
	shares = append(shares, signAll(t, s, keys, msg, []int{3})...)
	sig, err := s.Combine(msg, shares)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Verify(msg, sig); err != nil {
		t.Fatal(err)
	}
}

func TestCertUnknownRule(t *testing.T) {
	st := adversary.MustThreshold(4, 1)
	if _, _, err := NewCertScheme("t", st, Rule("bogus"), rand.Reader); err == nil {
		t.Fatal("unknown rule accepted")
	}
}

func TestCertGobRoundTrip(t *testing.T) {
	st := adversary.Example1()
	s, keys := newTestCert(t, st, RuleQuorum)
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(s); err != nil {
		t.Fatal(err)
	}
	var back CertScheme
	if err := gob.NewDecoder(&buf).Decode(&back); err != nil {
		t.Fatal(err)
	}
	msg := []byte("round trip")
	sig, err := back.Combine(msg, signAll(t, &back, keys, msg, []int{4, 5, 6, 7, 8}))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Verify(msg, sig); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCertSignShare(b *testing.B) {
	st := adversary.MustThreshold(4, 1)
	s, keys := newTestCert(b, st, RuleQuorum)
	msg := []byte("bench")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.SignShare(keys[0], msg, rand.Reader); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCertVerify(b *testing.B) {
	st := adversary.MustThreshold(4, 1)
	s, keys := newTestCert(b, st, RuleQuorum)
	msg := []byte("bench")
	sig, err := s.Combine(msg, signAll(b, s, keys, msg, []int{0, 1, 2}))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Verify(msg, sig); err != nil {
			b.Fatal(err)
		}
	}
}
