package thresig

import (
	"bytes"
	"crypto/rand"
	"encoding/gob"
	"testing"

	"sintra/internal/adversary"
)

func newTestRSA(t testing.TB, n, k int) (*RSAScheme, []*SecretKey) {
	t.Helper()
	p, q := TestSafePrimes256()
	s, keys, err := NewRSAScheme("test", p, q, n, k, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	return s, keys
}

func signAll(t testing.TB, s Scheme, keys []*SecretKey, msg []byte, parties []int) []Share {
	t.Helper()
	out := make([]Share, 0, len(parties))
	for _, i := range parties {
		sh, err := s.SignShare(keys[i], msg, rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, sh)
	}
	return out
}

func TestRSASignCombineVerify(t *testing.T) {
	s, keys := newTestRSA(t, 4, 3)
	msg := []byte("hello sintra")
	shares := signAll(t, s, keys, msg, []int{0, 1, 2})
	for _, sh := range shares {
		if err := s.VerifyShare(msg, sh); err != nil {
			t.Fatalf("share %d rejected: %v", sh.Party, err)
		}
	}
	sig, err := s.Combine(msg, shares)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Verify(msg, sig); err != nil {
		t.Fatalf("combined signature rejected: %v", err)
	}
	if err := s.Verify([]byte("other message"), sig); err == nil {
		t.Fatal("signature verified for wrong message")
	}
}

func TestRSACombineFromDifferentSubsets(t *testing.T) {
	s, keys := newTestRSA(t, 5, 3)
	msg := []byte("subset independence")
	sig1, err := s.Combine(msg, signAll(t, s, keys, msg, []int{0, 1, 2}))
	if err != nil {
		t.Fatal(err)
	}
	sig2, err := s.Combine(msg, signAll(t, s, keys, msg, []int{2, 3, 4}))
	if err != nil {
		t.Fatal(err)
	}
	// RSA signatures are unique: y^e = x̂ has one solution per x̂ in QR.
	if !bytes.Equal(sig1, sig2) {
		t.Fatal("different subsets produced different RSA signatures")
	}
}

func TestRSAInsufficientShares(t *testing.T) {
	s, keys := newTestRSA(t, 4, 3)
	msg := []byte("m")
	if _, err := s.Combine(msg, signAll(t, s, keys, msg, []int{0, 1})); err == nil {
		t.Fatal("combined below threshold")
	}
	// Duplicates of one party do not count twice.
	sh := signAll(t, s, keys, msg, []int{0})[0]
	if _, err := s.Combine(msg, []Share{sh, sh, sh}); err == nil {
		t.Fatal("duplicate shares counted")
	}
	if s.Sufficient(adversary.SetOf(0, 1)) || !s.Sufficient(adversary.SetOf(0, 1, 2)) {
		t.Fatal("Sufficient broken")
	}
}

func TestRSAVerifyShareRejectsForgery(t *testing.T) {
	s, keys := newTestRSA(t, 4, 3)
	msg := []byte("m")
	good := signAll(t, s, keys, msg, []int{1})[0]
	// Wrong message.
	if err := s.VerifyShare([]byte("n"), good); err == nil {
		t.Fatal("share verified for wrong message")
	}
	// Wrong claimed party.
	bad := good
	bad.Party = 2
	if err := s.VerifyShare(msg, bad); err == nil {
		t.Fatal("share verified for wrong party")
	}
	// Mangled data.
	bad = good
	bad.Data = append([]byte(nil), good.Data...)
	bad.Data[7] ^= 0xFF
	if err := s.VerifyShare(msg, bad); err == nil {
		t.Fatal("mangled share verified")
	}
	bad.Data = []byte{1, 2, 3}
	if err := s.VerifyShare(msg, bad); err == nil {
		t.Fatal("truncated share verified")
	}
	bad = good
	bad.Party = 99
	if err := s.VerifyShare(msg, bad); err == nil {
		t.Fatal("out-of-range party verified")
	}
}

func TestRSAVerifyRejectsGarbage(t *testing.T) {
	s, _ := newTestRSA(t, 4, 3)
	msg := []byte("m")
	if err := s.Verify(msg, nil); err == nil {
		t.Fatal("nil signature verified")
	}
	if err := s.Verify(msg, make([]byte, s.modLen())); err == nil {
		t.Fatal("zero signature verified")
	}
	junk := bytes.Repeat([]byte{0x5A}, s.modLen())
	if err := s.Verify(msg, junk); err == nil {
		t.Fatal("junk signature verified")
	}
}

func TestRSADomainSeparationByTag(t *testing.T) {
	p, q := TestSafePrimes256()
	s1, keys, err := NewRSAScheme("tag-one", p, q, 4, 2, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	s2 := &RSAScheme{
		InstanceTag: "tag-two",
		N:           s1.N, E: s1.E, K: s1.K, NParties: s1.NParties,
		V: s1.V, VKeys: s1.VKeys, Delta: s1.Delta,
	}
	msg := []byte("m")
	sig, err := s1.Combine(msg, signAll(t, s1, keys, msg, []int{0, 1}))
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Verify(msg, sig); err == nil {
		t.Fatal("signature transferred across instance tags")
	}
}

func TestRSASecretKeyMismatch(t *testing.T) {
	s, _ := newTestRSA(t, 4, 2)
	if _, err := s.SignShare(&SecretKey{Party: 0}, []byte("m"), rand.Reader); err == nil {
		t.Fatal("empty key accepted")
	}
	if _, err := s.SignShare(&SecretKey{Party: 9, RSAShare: []byte{1}}, []byte("m"), rand.Reader); err == nil {
		t.Fatal("out-of-range party accepted")
	}
	if _, err := s.SignShare(nil, []byte("m"), rand.Reader); err == nil {
		t.Fatal("nil key accepted")
	}
}

func TestRSAGobRoundTrip(t *testing.T) {
	s, keys := newTestRSA(t, 4, 2)
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(s); err != nil {
		t.Fatal(err)
	}
	var back RSAScheme
	if err := gob.NewDecoder(&buf).Decode(&back); err != nil {
		t.Fatal(err)
	}
	msg := []byte("round trip")
	sig, err := back.Combine(msg, signAll(t, &back, keys, msg, []int{1, 3}))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Verify(msg, sig); err != nil {
		t.Fatal(err)
	}
}

func TestNewRSASchemeRejectsBadParams(t *testing.T) {
	p, q := TestSafePrimes256()
	if _, _, err := NewRSAScheme("t", p, q, 4, 0, rand.Reader); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, _, err := NewRSAScheme("t", p, q, 4, 5, rand.Reader); err == nil {
		t.Fatal("k>n accepted")
	}
	notSafe := mustHex("10001") // 65537 is prime but not safe
	if _, _, err := NewRSAScheme("t", notSafe, q, 4, 2, rand.Reader); err == nil {
		t.Fatal("non-safe prime accepted")
	}
}

func TestEncodeDecodeBigs(t *testing.T) {
	a, b := mustHex("deadbeef"), mustHex("0")
	enc := encodeBigs(a, b)
	out, err := decodeBigs(enc, 2)
	if err != nil {
		t.Fatal(err)
	}
	if out[0].Cmp(a) != 0 || out[1].Sign() != 0 {
		t.Fatal("round trip broken")
	}
	if _, err := decodeBigs(enc, 3); err == nil {
		t.Fatal("over-read not detected")
	}
	if _, err := decodeBigs(enc[:3], 1); err == nil {
		t.Fatal("truncation not detected")
	}
	if _, err := decodeBigs(append(enc, 0), 2); err == nil {
		t.Fatal("trailing bytes not detected")
	}
}

func BenchmarkRSASignShare(b *testing.B) {
	s, keys := newTestRSA(b, 4, 3)
	msg := []byte("bench")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.SignShare(keys[0], msg, rand.Reader); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRSAVerifyShare(b *testing.B) {
	s, keys := newTestRSA(b, 4, 3)
	msg := []byte("bench")
	sh, _ := s.SignShare(keys[0], msg, rand.Reader)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.VerifyShare(msg, sh); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRSACombine(b *testing.B) {
	s, keys := newTestRSA(b, 4, 3)
	msg := []byte("bench")
	shares := signAll(b, s, keys, msg, []int{0, 1, 2})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Combine(msg, shares); err != nil {
			b.Fatal(err)
		}
	}
}
