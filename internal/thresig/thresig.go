// Package thresig implements robust threshold signatures, the primitive
// the paper's architecture uses to compress protocol messages to constant
// size and to let replicated services answer with a single service
// signature (Cachin, DSN 2001, §2.1, §5.1).
//
// Two schemes are provided behind one interface:
//
//   - RSAScheme — Shoup's practical threshold RSA signatures
//     (EUROCRYPT 2000): non-interactive, robust (shares carry validity
//     proofs), with constant-size combined signatures. It requires a plain
//     k-out-of-n opening rule, so it serves threshold deployments.
//
//   - CertScheme — a qualified-set certificate of Ed25519 signatures,
//     validated against an arbitrary generalized adversary structure. It
//     has the same unforgeability and robustness semantics (a certificate
//     exists iff a rule-satisfying set signed) at the cost of non-constant
//     signature size. It serves generalized-structure deployments, as
//     documented in DESIGN.md.
//
// Both schemes domain-separate instances with a Tag, so a share released
// for one protocol role can never be replayed in another.
package thresig

import (
	"errors"
	"io"

	"sintra/internal/adversary"
)

// Errors shared by the schemes.
var (
	// ErrInvalidShare is returned for signature shares that fail to verify.
	ErrInvalidShare = errors.New("thresig: invalid signature share")
	// ErrInvalidSignature is returned for combined signatures that fail.
	ErrInvalidSignature = errors.New("thresig: invalid signature")
	// ErrInsufficient is returned by Combine when the shares do not meet
	// the opening rule.
	ErrInsufficient = errors.New("thresig: insufficient shares")
	// ErrWrongKey is returned when a secret key does not belong to the
	// scheme it is used with.
	ErrWrongKey = errors.New("thresig: secret key does not match scheme")
)

// Share is one party's signature share on a message.
type Share struct {
	// Party is the signer.
	Party int
	// Data is the scheme-specific share encoding.
	Data []byte
	// Aux carries optional batch-verification material — for RSAScheme
	// the proof commitments (v', x') that VerifyShare otherwise
	// recomputes. Per-share verification and Combine ignore it, and
	// Data keeps its exact legacy encoding, so shares with and without
	// Aux interoperate in both directions across protocol versions
	// (gob drops the field on old decoders and zeroes it on new ones).
	Aux []byte
}

// BatchVerifier is implemented by schemes that can check many shares
// on one message with a single folded product test, returning the
// indexes of the invalid shares (nil when all verify).
type BatchVerifier interface {
	BatchVerifyShares(msg []byte, shares []Share) []int
}

// BatchVerify checks every share on msg, taking the scheme's batch
// path when it has one and falling back to per-share verification
// otherwise, so callers can batch unconditionally.
func BatchVerify(s Scheme, msg []byte, shares []Share) []int {
	if bv, ok := s.(BatchVerifier); ok {
		return bv.BatchVerifyShares(msg, shares)
	}
	var bad []int
	for i, sh := range shares {
		if s.VerifyShare(msg, sh) != nil {
			bad = append(bad, i)
		}
	}
	return bad
}

// SecretKey is a party's signing key for either scheme. Exactly one of the
// scheme-specific fields is set; the struct is gob-friendly so the dealer
// can ship it in a config file.
type SecretKey struct {
	// Party is the owner.
	Party int
	// RSAShare is the Shoup share of the RSA exponent (RSAScheme only).
	RSAShare []byte
	// Ed25519Seed is the Ed25519 private seed (CertScheme only).
	Ed25519Seed []byte
}

// Scheme is the public side of a threshold signature scheme, identical on
// every party and on clients.
type Scheme interface {
	// Tag returns the instance's domain-separation tag.
	Tag() string
	// SignShare produces the calling party's share on msg.
	SignShare(sk *SecretKey, msg []byte, rnd io.Reader) (Share, error)
	// VerifyShare checks a single share (robustness).
	VerifyShare(msg []byte, sh Share) error
	// Sufficient reports whether shares from the given parties meet the
	// opening rule.
	Sufficient(parties adversary.Set) bool
	// Combine assembles a full signature from verified shares; shares
	// from duplicate parties are ignored.
	Combine(msg []byte, shares []Share) ([]byte, error)
	// Verify checks a combined signature.
	Verify(msg []byte, sig []byte) error
}
