package coin

import (
	"bytes"
	"crypto/rand"
	"encoding/gob"
	"testing"
	"testing/quick"

	"sintra/internal/adversary"
	"sintra/internal/group"
)

func dealTest(t testing.TB, st *adversary.Structure) (*Params, []*SecretKey) {
	t.Helper()
	p, keys, err := Deal(group.TestDefault(), st, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	return p, keys
}

func releaseAll(t testing.TB, p *Params, keys []*SecretKey, name string, parties []int) []Share {
	t.Helper()
	var out []Share
	for _, i := range parties {
		shares, err := p.ReleaseShares(keys[i], name, rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, shares...)
	}
	return out
}

func combineFrom(t testing.TB, p *Params, shares []Share, name string) Value {
	t.Helper()
	c := NewCombiner(p, name)
	for _, sh := range shares {
		if err := c.Add(sh); err != nil {
			t.Fatal(err)
		}
	}
	if !c.Ready() {
		t.Fatal("combiner not ready")
	}
	v, err := c.Value()
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestCoinDeterministicAcrossSubsets(t *testing.T) {
	st := adversary.MustThreshold(4, 1)
	p, keys := dealTest(t, st)
	v1 := combineFrom(t, p, releaseAll(t, p, keys, "round-1", []int{0, 1}), "round-1")
	v2 := combineFrom(t, p, releaseAll(t, p, keys, "round-1", []int{2, 3}), "round-1")
	if !bytes.Equal(v1.Bytes(), v2.Bytes()) {
		t.Fatal("different qualified subsets produced different coin values")
	}
}

func TestCoinVariesWithName(t *testing.T) {
	st := adversary.MustThreshold(4, 1)
	p, keys := dealTest(t, st)
	seen := make(map[uint64]bool)
	names := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	for _, n := range names {
		v := combineFrom(t, p, releaseAll(t, p, keys, n, []int{0, 1, 2}), n)
		seen[v.Uint64()] = true
	}
	if len(seen) < len(names) {
		t.Fatalf("coin values collide: %d distinct of %d", len(seen), len(names))
	}
	// Bits should not be constant over many coins.
	ones := 0
	for i := 0; i < 64; i++ {
		n := "bit-" + string(rune('a'+i%26)) + string(rune('0'+i/26))
		if combineFrom(t, p, releaseAll(t, p, keys, n, []int{0, 1}), n).Bit() {
			ones++
		}
	}
	if ones == 0 || ones == 64 {
		t.Fatalf("coin bit constant over 64 coins (ones=%d)", ones)
	}
}

func TestCombinerNotReadyBelowQuorum(t *testing.T) {
	st := adversary.MustThreshold(4, 1)
	p, keys := dealTest(t, st)
	c := NewCombiner(p, "x")
	for _, sh := range releaseAll(t, p, keys, "x", []int{2}) {
		if err := c.Add(sh); err != nil {
			t.Fatal(err)
		}
	}
	if c.Ready() {
		t.Fatal("ready with one share of a 2-of-4 coin")
	}
	if _, err := c.Value(); err == nil {
		t.Fatal("Value succeeded before ready")
	}
}

func TestVerifyShareRejectsForgeries(t *testing.T) {
	st := adversary.MustThreshold(4, 1)
	p, keys := dealTest(t, st)
	good := releaseAll(t, p, keys, "x", []int{0})[0]

	// Wrong value.
	bad := good
	bad.Value = p.Group().Mul(good.Value, p.Group().Generator())
	if err := p.VerifyShare("x", bad); err == nil {
		t.Fatal("tampered value accepted")
	}
	// Replay under a different coin name.
	if err := p.VerifyShare("y", good); err == nil {
		t.Fatal("share replayed across coin names")
	}
	// Claiming somebody else's share ID.
	bad = good
	bad.Party = 1
	if err := p.VerifyShare("x", bad); err == nil {
		t.Fatal("share accepted for wrong party")
	}
	// Out-of-range ID.
	bad = good
	bad.ID = 99
	if err := p.VerifyShare("x", bad); err == nil {
		t.Fatal("out-of-range id accepted")
	}
}

func TestCombinerIgnoresDuplicates(t *testing.T) {
	st := adversary.MustThreshold(4, 1)
	p, keys := dealTest(t, st)
	shares := releaseAll(t, p, keys, "x", []int{0, 1})
	c := NewCombiner(p, "x")
	for _, sh := range shares {
		if err := c.Add(sh); err != nil {
			t.Fatal(err)
		}
	}
	// Re-adding (even a tampered duplicate) must not disturb the value.
	dup := shares[0]
	dup.Value = p.Group().Generator()
	if err := c.Add(dup); err != nil {
		t.Fatal("duplicate add errored")
	}
	if _, err := c.Value(); err != nil {
		t.Fatal(err)
	}
}

func TestCoinWithExample1Structure(t *testing.T) {
	st := adversary.Example1()
	p, keys := dealTest(t, st)
	// Honest survivors after corrupting all of class a.
	v1 := combineFrom(t, p, releaseAll(t, p, keys, "r", []int{4, 5, 6, 7, 8}), "r")
	// A different minimal qualified set.
	v2 := combineFrom(t, p, releaseAll(t, p, keys, "r", []int{0, 4, 6}), "r")
	if !bytes.Equal(v1.Bytes(), v2.Bytes()) {
		t.Fatal("coin value differs across qualified sets")
	}
	// Class a alone must not suffice.
	c := NewCombiner(p, "r")
	for _, sh := range releaseAll(t, p, keys, "r", []int{0, 1, 2, 3}) {
		if err := c.Add(sh); err != nil {
			t.Fatal(err)
		}
	}
	if c.Ready() {
		t.Fatal("corruptible class-a coalition can open the coin")
	}
}

func TestCoinWithExample2Structure(t *testing.T) {
	st := adversary.Example2()
	p, keys := dealTest(t, st)
	// Survivors of site-0 + OS-0 corruption.
	var corrupted adversary.Set
	for i := 0; i < 4; i++ {
		corrupted = corrupted.Add(adversary.Example2Party(0, i))
		corrupted = corrupted.Add(adversary.Example2Party(i, 0))
	}
	honest := corrupted.Complement(16).Members()
	v1 := combineFrom(t, p, releaseAll(t, p, keys, "r", honest), "r")
	if len(v1.Bytes()) != 32 {
		t.Fatal("bad digest length")
	}
	// The corrupted seven cannot open the coin.
	c := NewCombiner(p, "r")
	for _, sh := range releaseAll(t, p, keys, "r", corrupted.Members()) {
		if err := c.Add(sh); err != nil {
			t.Fatal(err)
		}
	}
	if c.Ready() {
		t.Fatal("site+OS coalition can open the coin")
	}
}

func TestParamsGobRoundTrip(t *testing.T) {
	st := adversary.Example1()
	p, keys := dealTest(t, st)
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(p); err != nil {
		t.Fatal(err)
	}
	var back Params
	if err := gob.NewDecoder(&buf).Decode(&back); err != nil {
		t.Fatal(err)
	}
	if err := back.Init(); err != nil {
		t.Fatal(err)
	}
	shares := releaseAll(t, p, keys, "x", []int{0, 4, 6})
	v1 := combineFrom(t, p, shares, "x")
	v2 := combineFrom(t, &back, shares, "x")
	if !bytes.Equal(v1.Bytes(), v2.Bytes()) {
		t.Fatal("deserialized params disagree")
	}
}

func TestValueIndexRange(t *testing.T) {
	var v Value
	copy(v.digest[:], bytes.Repeat([]byte{0xAB}, 32))
	for _, n := range []int{1, 3, 7, 16} {
		idx := v.Index(n)
		if idx < 0 || idx >= n {
			t.Fatalf("Index(%d) = %d out of range", n, idx)
		}
	}
	if v.Index(0) != 0 {
		t.Fatal("Index(0) should clamp to 0")
	}
}

func TestInitValidation(t *testing.T) {
	st := adversary.MustThreshold(4, 1)
	p, _ := dealTest(t, st)
	bad := &Params{GroupName: "nope", Structure: st, VerifyKeys: p.VerifyKeys}
	if err := bad.Init(); err == nil {
		t.Fatal("unknown group accepted")
	}
	bad = &Params{GroupName: p.GroupName, Structure: st, VerifyKeys: p.VerifyKeys[:2]}
	if err := bad.Init(); err == nil {
		t.Fatal("key count mismatch accepted")
	}
}

func TestShareValueUnpredictableAcrossIDs(t *testing.T) {
	// Shares from different parties for the same coin must differ (they
	// carry different exponents) — a sanity check against key reuse.
	st := adversary.MustThreshold(4, 1)
	p, keys := dealTest(t, st)
	shares := releaseAll(t, p, keys, "x", []int{0, 1, 2, 3})
	seen := make(map[string]bool)
	for _, sh := range shares {
		k := sh.Value.String()
		if seen[k] {
			t.Fatal("two parties produced identical coin shares")
		}
		seen[k] = true
	}
}

func BenchmarkReleaseShare(b *testing.B) {
	p, keys := dealTest(b, adversary.MustThreshold(4, 1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.ReleaseShares(keys[0], "bench", rand.Reader); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVerifyShare(b *testing.B) {
	p, keys := dealTest(b, adversary.MustThreshold(4, 1))
	sh, err := p.ReleaseShares(keys[0], "bench", rand.Reader)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.VerifyShare("bench", sh[0]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCombine(b *testing.B) {
	p, keys := dealTest(b, adversary.MustThreshold(4, 1))
	var shares []Share
	for i := 0; i < 2; i++ {
		sh, err := p.ReleaseShares(keys[i], "bench", rand.Reader)
		if err != nil {
			b.Fatal(err)
		}
		shares = append(shares, sh...)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := NewCombiner(p, "bench")
		for _, sh := range shares {
			if err := c.Add(sh); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := c.Value(); err != nil {
			b.Fatal(err)
		}
	}
}

func TestQuickCoinNameDeterminism(t *testing.T) {
	// Property: for any coin name, any qualified subset reconstructs the
	// same value, and the value is stable across combiners.
	st := adversary.MustThreshold(4, 1)
	p, keys := dealTest(t, st)
	f := func(name string) bool {
		v1 := combineFrom(t, p, releaseAll(t, p, keys, name, []int{0, 3}), name)
		v2 := combineFrom(t, p, releaseAll(t, p, keys, name, []int{1, 2}), name)
		return bytes.Equal(v1.Bytes(), v2.Bytes())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

func TestProductionGroupCoin(t *testing.T) {
	// One full share/verify/combine round at the 2048-bit production
	// group: slow (seconds), so skipped under -short.
	if testing.Short() {
		t.Skip("production-size group: slow")
	}
	st := adversary.MustThreshold(4, 1)
	p, keys, err := Deal(group.MODP2048(), st, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	v1 := combineFrom(t, p, releaseAll(t, p, keys, "prod", []int{0, 1}), "prod")
	v2 := combineFrom(t, p, releaseAll(t, p, keys, "prod", []int{2, 3}), "prod")
	if !bytes.Equal(v1.Bytes(), v2.Bytes()) {
		t.Fatal("production group coin disagrees across subsets")
	}
}
