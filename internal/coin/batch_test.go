package coin

import (
	"crypto/rand"
	"reflect"
	"testing"

	"sintra/internal/adversary"
)

func TestCoinBatchVerifyAllValid(t *testing.T) {
	st := adversary.MustThreshold(4, 1)
	p, keys := dealTest(t, st)
	shares := releaseAll(t, p, keys, "round-1", []int{0, 1, 2, 3})
	if bad := p.BatchVerifyShares("round-1", shares); bad != nil {
		t.Fatalf("valid batch flagged %v", bad)
	}
}

func TestCoinBatchIsolatesCulprits(t *testing.T) {
	st := adversary.MustThreshold(4, 1)
	p, keys := dealTest(t, st)
	shares := releaseAll(t, p, keys, "round-1", []int{0, 1, 2, 3})
	// A value consistent with nothing: the proof equations fail while
	// every structural check passes.
	shares[1].Value = p.g.Exp(shares[1].Value, p.g.NewScalar(2))
	// A share claimed for an ID the sender does not own.
	shares[3].Party = shares[0].Party
	bad := p.BatchVerifyShares("round-1", shares)
	if !reflect.DeepEqual(bad, []int{1, 3}) {
		t.Fatalf("batch flagged %v, want [1 3]", bad)
	}
	// The honest shares must still combine despite the Byzantine ones.
	var honest []Share
	for i, sh := range shares {
		if i != 1 && i != 3 {
			honest = append(honest, sh)
		}
	}
	combineFrom(t, p, honest, "round-1")
}

func TestCoinBatchMatchesVerifyShare(t *testing.T) {
	st := adversary.MustThreshold(4, 1)
	p, keys := dealTest(t, st)
	shares := releaseAll(t, p, keys, "round-1", []int{0, 1, 2, 3})
	shares[0].Proof.Z = p.g.AddScalar(shares[0].Proof.Z, p.g.NewScalar(1))
	shares[2].ID = len(p.VerifyKeys) + 7
	var want []int
	for i, sh := range shares {
		if p.VerifyShare("round-1", sh) != nil {
			want = append(want, i)
		}
	}
	got := p.BatchVerifyShares("round-1", shares)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("batch flagged %v, per-share %v", got, want)
	}
}

// TestCoinBatchAcrossNames drives one BatchVerifier over shares of two
// different coins — the shape of an agreement instance draining a
// backlog that spans rounds.
func TestCoinBatchAcrossNames(t *testing.T) {
	st := adversary.MustThreshold(4, 1)
	p, keys := dealTest(t, st)
	bv := p.NewBatchVerifier()
	var want []bool
	for _, name := range []string{"round-1", "round-2"} {
		shares := releaseAll(t, p, keys, name, []int{0, 1, 2, 3})
		shares[2].Value = p.g.Exp(shares[2].Value, p.g.NewScalar(2))
		for i, sh := range shares {
			bv.Add(name, sh)
			want = append(want, i != 2)
		}
	}
	// A share verified under the wrong coin name must fail even though
	// its proof is internally valid.
	wrong, err := p.ReleaseShares(keys[0], "round-3", rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	bv.Add("round-1", wrong[0])
	want = append(want, false)
	if got := bv.Verify(); !reflect.DeepEqual(got, want) {
		t.Fatalf("batch verdicts %v, want %v", got, want)
	}
}
