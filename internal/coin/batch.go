package coin

import (
	"sintra/internal/dleq"
	"sintra/internal/group"
)

// BatchVerifier collects coin shares — possibly for several named coins
// at once, as when an agreement instance drains a backlog spanning
// rounds — and checks them together with one folded DLEQ batch: one
// random-linear-combination multi-exponentiation instead of four
// exponentiations per share (see dleq.BatchVerify for the soundness
// argument). The coin-specific base G(name) is derived once per name
// and shared by every item that uses it, so its exponents aggregate
// into a single term of the product.
//
// Add performs the same structural checks as VerifyShare (share ID
// range, sender ownership, group membership of the value); Verify runs
// the batch and reports per-share validity. A BatchVerifier is for one
// use by one goroutine; the Params it came from may be shared.
type BatchVerifier struct {
	p     *Params
	bases map[string]*group.Point
	items []dleq.BatchItem
	// slot maps add order to batch item index; -1 marks shares that
	// failed the structural checks and skip the batch.
	slot []int
}

// NewBatchVerifier starts an empty batch over the dealing.
func (p *Params) NewBatchVerifier() *BatchVerifier {
	return &BatchVerifier{p: p, bases: make(map[string]*group.Point)}
}

// Add queues one share of the named coin for verification.
func (b *BatchVerifier) Add(name string, sh Share) {
	p := b.p
	ok := sh.ID >= 0 && sh.ID < len(p.VerifyKeys)
	if ok {
		owner, err := p.scheme.PartyOf(sh.ID)
		ok = err == nil && owner == sh.Party && p.g.IsElement(sh.Value)
	}
	if !ok {
		b.slot = append(b.slot, -1)
		return
	}
	base, cached := b.bases[name]
	if !cached {
		// base returns a fresh value per call; caching it both saves the
		// hash-to-element work and lets the batch aggregate exponents of
		// same-coin shares on one pointer.
		base = p.base(name)
		b.bases[name] = base
	}
	b.slot = append(b.slot, len(b.items))
	b.items = append(b.items, dleq.BatchItem{
		St: dleq.Statement{
			G1: p.g.Generator(), H1: p.VerifyKeys[sh.ID],
			G2: base, H2: sh.Value,
			Trusted: true,
		},
		P:       sh.Proof,
		Context: proofContext(name, sh.ID),
	})
}

// Verify checks every added share; out[i] reports whether the i-th Add
// verified. Byzantine shares are isolated by the batch's binary split,
// so they never taint honest shares.
func (b *BatchVerifier) Verify() []bool {
	bad := dleq.BatchVerify(b.p.g, b.items, nil)
	badSet := make(map[int]bool, len(bad))
	for _, i := range bad {
		badSet[i] = true
	}
	out := make([]bool, len(b.slot))
	for i, s := range b.slot {
		out[i] = s >= 0 && !badSet[s]
	}
	return out
}

// BatchVerifyShares checks the shares of one named coin together and
// returns the indexes of the invalid ones (nil when all verify) —
// equivalent to calling VerifyShare on each, at batch cost.
func (p *Params) BatchVerifyShares(name string, shares []Share) []int {
	bv := p.NewBatchVerifier()
	for _, sh := range shares {
		bv.Add(name, sh)
	}
	var bad []int
	for i, ok := range bv.Verify() {
		if !ok {
			bad = append(bad, i)
		}
	}
	return bad
}
