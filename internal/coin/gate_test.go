package coin

import (
	"crypto/rand"
	"errors"
	"testing"

	"sintra/internal/adversary"
	"sintra/internal/group"
	"sintra/internal/trust"
)

// asymGateSystem mirrors the wise/naive system of the reliable-broadcast
// tests: parties 0–2 assume any one party can fail; party 3 assumes only
// {0,2} can fail together, so its every quorum contains party 1.
func asymGateSystem(t *testing.T) *trust.Asymmetric {
	t.Helper()
	q, err := trust.NewAsymmetric(4, []trust.FailProne{
		trust.Threshold(1),
		trust.Threshold(1),
		trust.Threshold(1),
		trust.General(adversary.SetOf(0, 2)),
	})
	if err != nil {
		t.Fatalf("NewAsymmetric: %v", err)
	}
	return q
}

// TestAsymmetricCoinGating checks the common coin's share-threshold
// gating under per-party trust: a gated combiner releases the coin only
// once the contributing parties form a quorum of its own observer, so a
// wise party's coin completes from the honest parties' shares while a
// naive party — whose quorums all contain the corrupted party — keeps
// waiting. The gate never changes the reconstructed value.
func TestAsymmetricCoinGating(t *testing.T) {
	st := adversary.MustThreshold(4, 1)
	p, keys, err := Deal(group.TestDefault(), st, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	q := asymGateSystem(t)
	// Setup-time compatibility: every observer has a quorum the dealt
	// sharing scheme can reconstruct from, so gates cannot starve when
	// the observer's own fail-prone assumption holds.
	if err := q.CompatibleWithAccess(p.Qualified); err != nil {
		t.Fatalf("CompatibleWithAccess: %v", err)
	}

	const name = "gate/corrupt1"
	combiner := func(observer int) *Combiner {
		c := NewCombiner(p, name)
		c.SetGate(trust.CoinGate(q, observer))
		return c
	}
	// Corruption {1}: parties 0, 2, 3 release shares. Wise observers 0
	// and 2 see a quorum ({1} is in their fail-prone system); naive
	// observer 3 does not ({1} is not covered by its assumption {0,2}).
	combiners := map[int]*Combiner{0: combiner(0), 2: combiner(2), 3: combiner(3)}
	ungated := NewCombiner(p, name)
	for _, i := range []int{0, 2, 3} {
		shares, err := p.ReleaseShares(keys[i], name, rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		for _, sh := range shares {
			for _, c := range combiners {
				if err := c.Add(sh); err != nil {
					t.Fatal(err)
				}
			}
			if err := ungated.Add(sh); err != nil {
				t.Fatal(err)
			}
		}
	}
	if !combiners[0].Ready() || !combiners[2].Ready() {
		t.Fatal("wise combiners not ready from honest shares")
	}
	if combiners[3].Ready() {
		t.Fatal("naive combiner ready although its gate is not satisfied")
	}
	if _, err := combiners[3].Value(); !errors.Is(err, ErrNotReady) {
		t.Fatalf("naive combiner Value: got %v, want ErrNotReady", err)
	}
	v0, err := combiners[0].Value()
	if err != nil {
		t.Fatal(err)
	}
	v2, err := combiners[2].Value()
	if err != nil {
		t.Fatal(err)
	}
	ref, err := ungated.Value()
	if err != nil {
		t.Fatal(err)
	}
	if v0 != v2 || v0 != ref {
		t.Fatal("gated coin values disagree with the ungated reconstruction")
	}

	// Corruption {3}: parties 0, 1, 2 release shares; every one of them
	// is wise for this corruption, so all their gates open.
	const name2 = "gate/corrupt3"
	combiners2 := make(map[int]*Combiner, 3)
	for _, i := range []int{0, 1, 2} {
		c := NewCombiner(p, name2)
		c.SetGate(trust.CoinGate(q, i))
		combiners2[i] = c
	}
	for _, i := range []int{0, 1, 2} {
		shares, err := p.ReleaseShares(keys[i], name2, rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		for _, sh := range shares {
			for _, c := range combiners2 {
				if err := c.Add(sh); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	var prev Value
	for i, c := range combiners2 {
		if !c.Ready() {
			t.Fatalf("wise combiner %d not ready under corruption {3}", i)
		}
		v, err := c.Value()
		if err != nil {
			t.Fatal(err)
		}
		if prev != (Value{}) && v != prev {
			t.Fatal("wise coin values diverge")
		}
		prev = v
	}
}

// TestSymmetricCoinGateNil checks that symmetric trust installs no gate
// at all, keeping the original access-structure-only behavior.
func TestSymmetricCoinGateNil(t *testing.T) {
	st := adversary.MustThreshold(4, 1)
	if g := trust.CoinGate(trust.NewSymmetric(st), 2); g != nil {
		t.Fatal("symmetric backend produced a coin gate")
	}
	if g := trust.CoinGate(nil, 0); g != nil {
		t.Fatal("nil backend produced a coin gate")
	}
}
