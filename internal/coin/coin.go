// Package coin implements the robust threshold coin-tossing scheme used by
// the randomized Byzantine agreement protocol of Cachin, Kursawe, and Shoup
// ("Random oracles in Constantinople", PODC 2000), referenced throughout
// the paper as the source of "arbitrarily many unpredictable random bits"
// (§2.1, §3).
//
// A trusted dealer shares a secret exponent s with the linear secret
// sharing scheme of the deployment's adversary structure and publishes
// per-share verification keys g^{s_id}. A coin with name N has the value
// derived from G(N)^s where G is a hash onto the group: party i releases
// the coin shares G(N)^{s_id} for its share IDs together with a DLEQ proof
// of consistency with the verification key, and any qualified set of
// verified shares reconstructs G(N)^s by interpolation in the exponent.
// Nobody learns anything about coin N before a qualified set releases
// shares — under the DDH assumption the coin is unpredictable — and
// invalid shares from corrupted parties are detected by the proofs
// (robustness).
package coin

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sintra/internal/adversary"
	"sintra/internal/dleq"
	"sintra/internal/group"
	"sintra/internal/sharing"
)

// Errors reported by the scheme.
var (
	// ErrInvalidShare is returned for coin shares whose proof fails.
	ErrInvalidShare = errors.New("coin: invalid coin share")
	// ErrNotReady is returned when combining before a qualified set of
	// shares is available.
	ErrNotReady = errors.New("coin: not enough verified shares")
	// ErrWrongParty is returned when a share is presented for an ID the
	// sender does not own.
	ErrWrongParty = errors.New("coin: share id not owned by sender")
)

// Params is the public part of a coin dealing, identical on every party.
type Params struct {
	// GroupName selects the group parameters.
	GroupName string
	// Structure is the deployment's adversary structure.
	Structure *adversary.Structure
	// VerifyKeys holds g^{s_id} for every share ID of the access formula.
	VerifyKeys []*group.Point

	g      group.Group
	scheme *sharing.Scheme
}

// SecretKey is party i's private coin key: its shares of the master secret.
type SecretKey struct {
	// Party is the owner's index.
	Party int
	// Shares are the owner's atomic shares.
	Shares []sharing.Share
}

// Share is one released coin share with its validity proof.
type Share struct {
	// Party is the sender.
	Party int
	// ID is the share ID the value corresponds to.
	ID int
	// Value is G(name)^{s_ID}.
	Value *group.Point
	// Proof shows log_g(VerifyKeys[ID]) = log_{G(name)}(Value).
	Proof *dleq.Proof
}

// Deal generates a fresh coin key for the given structure, returning the
// public parameters and each party's secret key.
func Deal(g group.Group, st *adversary.Structure, rnd io.Reader) (*Params, []*SecretKey, error) {
	scheme, err := sharing.ForStructure(g, st)
	if err != nil {
		return nil, nil, fmt.Errorf("coin: %w", err)
	}
	secret, err := g.RandomScalar(rnd)
	if err != nil {
		return nil, nil, fmt.Errorf("coin: %w", err)
	}
	shares, err := scheme.Deal(secret, rnd)
	if err != nil {
		return nil, nil, fmt.Errorf("coin: %w", err)
	}
	params := &Params{
		GroupName:  g.Name(),
		Structure:  st,
		VerifyKeys: scheme.VerificationKeys(shares),
		g:          g,
		scheme:     scheme,
	}
	keys := make([]*SecretKey, st.N())
	for i := range keys {
		keys[i] = &SecretKey{Party: i}
	}
	for _, sh := range shares {
		keys[sh.Party].Shares = append(keys[sh.Party].Shares, sh)
	}
	return params, keys, nil
}

// Init rebuilds the runtime caches after deserialization.
func (p *Params) Init() error {
	g, err := group.ByName(p.GroupName)
	if err != nil {
		return err
	}
	scheme, err := sharing.ForStructure(g, p.Structure)
	if err != nil {
		return err
	}
	if len(p.VerifyKeys) != scheme.NumShares() {
		return errors.New("coin: verification key count mismatch")
	}
	p.g = g
	p.scheme = scheme
	p.Precompute()
	return nil
}

// Precompute registers fixed-base exponentiation tables for the dealt
// verification keys: every DLEQ share verification exponentiates each
// key, and the dealing lives for the whole deployment. Init calls this;
// Deal-created params may call it explicitly.
func (p *Params) Precompute() {
	for _, vk := range p.VerifyKeys {
		p.g.Precompute(vk)
	}
}

// Group returns the group of the dealing.
func (p *Params) Group() group.Group { return p.g }

// Qualified reports whether the party set can reconstruct coins under
// the dealing's secret-sharing access structure. Asymmetric deployments
// check every observer's quorums against this predicate at setup
// (trust.Asymmetric.CompatibleWithAccess) so gated combiners cannot
// starve.
func (p *Params) Qualified(parties adversary.Set) bool { return p.scheme.Qualified(parties) }

// base derives the coin-specific generator G(name).
func (p *Params) base(name string) *group.Point {
	return p.g.HashToPoint("sintra/coin/base", []byte(name))
}

func proofContext(name string, id int) string {
	return fmt.Sprintf("coin|%s|%d", name, id)
}

// ReleaseShares produces the owner's coin shares for the named coin.
func (p *Params) ReleaseShares(sk *SecretKey, name string, rnd io.Reader) ([]Share, error) {
	base := p.base(name)
	out := make([]Share, 0, len(sk.Shares))
	for _, sh := range sk.Shares {
		value := p.g.Exp(base, sh.Value)
		st := dleq.Statement{
			G1: p.g.Generator(), H1: p.VerifyKeys[sh.ID],
			G2: base, H2: value,
		}
		proof, err := dleq.Prove(p.g, st, sh.Value, proofContext(name, sh.ID), rnd)
		if err != nil {
			return nil, fmt.Errorf("coin: %w", err)
		}
		out = append(out, Share{Party: sk.Party, ID: sh.ID, Value: value, Proof: proof})
	}
	return out, nil
}

// VerifyShare checks one coin share against the public parameters.
func (p *Params) VerifyShare(name string, sh Share) error {
	if sh.ID < 0 || sh.ID >= len(p.VerifyKeys) {
		return ErrInvalidShare
	}
	owner, err := p.scheme.PartyOf(sh.ID)
	if err != nil || owner != sh.Party {
		return ErrWrongParty
	}
	// The share value is the only statement element taken from the
	// network: check its group membership here, then mark the statement
	// trusted — generator, dealt verification key, and locally derived
	// base need no re-check.
	if !p.g.IsElement(sh.Value) {
		return ErrInvalidShare
	}
	st := dleq.Statement{
		G1: p.g.Generator(), H1: p.VerifyKeys[sh.ID],
		G2: p.base(name), H2: sh.Value,
		Trusted: true,
	}
	if err := dleq.Verify(p.g, st, sh.Proof, proofContext(name, sh.ID)); err != nil {
		return ErrInvalidShare
	}
	return nil
}

// Value is a combined coin outcome; it exposes the derived randomness in
// the forms the protocols need.
type Value struct {
	digest [32]byte
}

// Bit returns a uniform bit of the coin.
func (v Value) Bit() bool { return v.digest[0]&1 == 1 }

// Uint64 returns 64 uniform bits of the coin.
func (v Value) Uint64() uint64 { return binary.BigEndian.Uint64(v.digest[8:16]) }

// Index returns a near-uniform index in [0, n) for leader election.
func (v Value) Index(n int) int {
	if n <= 0 {
		return 0
	}
	return int(v.Uint64() % uint64(n))
}

// Bytes returns the full 32-byte coin digest.
func (v Value) Bytes() []byte { return append([]byte(nil), v.digest[:]...) }

// Combiner accumulates verified coin shares for one named coin until a
// qualified set is present, then reconstructs the coin value.
type Combiner struct {
	params  *Params
	name    string
	values  map[int]*group.Point
	parties adversary.Set
	gate    func(adversary.Set) bool
}

// NewCombiner starts collecting shares for the named coin.
func NewCombiner(p *Params, name string) *Combiner {
	return &Combiner{params: p, name: name, values: make(map[int]*group.Point)}
}

// SetGate installs an additional readiness predicate over the set of
// parties whose shares back the coin: Ready and Value then require the
// contributing parties to satisfy the gate on top of the sharing
// scheme's qualification. Asymmetric-trust deployments pass
// trust.CoinGate so a party only accepts a coin value vouched for by
// one of its own quorums; a nil gate (the default) keeps the access
// structure as the only condition. Must be set before shares arrive.
func (c *Combiner) SetGate(gate func(adversary.Set) bool) { c.gate = gate }

func (c *Combiner) gateOpen(parties adversary.Set) bool {
	return c.gate == nil || c.gate(parties)
}

// Add verifies and stores a coin share. Adding a second share for the same
// ID is a no-op. Invalid shares are rejected with ErrInvalidShare and do
// not affect progress (robustness).
func (c *Combiner) Add(sh Share) error {
	if _, ok := c.values[sh.ID]; ok {
		return nil
	}
	if err := c.params.VerifyShare(c.name, sh); err != nil {
		return err
	}
	c.values[sh.ID] = sh.Value
	c.parties = c.parties.Add(sh.Party)
	return nil
}

// AddVerified stores a coin share that the caller has already checked
// with VerifyShare — the engine's parallel Verify stage does exactly
// that — skipping re-verification. Duplicates are ignored.
func (c *Combiner) AddVerified(sh Share) {
	if _, ok := c.values[sh.ID]; ok {
		return
	}
	c.values[sh.ID] = sh.Value
	c.parties = c.parties.Add(sh.Party)
}

// partiesWithAllShares returns the parties for which every owned share has
// been verified; interpolation plans may pick any owned share of a listed
// party, so partial parties must not be offered to the plan.
func (c *Combiner) partiesWithAllShares() adversary.Set {
	var out adversary.Set
	for _, party := range c.parties.Members() {
		complete := true
		for _, id := range c.params.scheme.SharesOf(party) {
			if _, ok := c.values[id]; !ok {
				complete = false
				break
			}
		}
		if complete {
			out = out.Add(party)
		}
	}
	return out
}

// Ready reports whether a qualified set of shares has been collected
// (and, with a gate installed, whether the contributing parties pass it).
func (c *Combiner) Ready() bool {
	parties := c.partiesWithAllShares()
	return c.params.scheme.Qualified(parties) && c.gateOpen(parties)
}

// Value reconstructs the coin once Ready; it is deterministic in the coin
// name and independent of which qualified subset supplied the shares.
func (c *Combiner) Value() (Value, error) {
	parties := c.partiesWithAllShares()
	if !c.params.scheme.Qualified(parties) || !c.gateOpen(parties) {
		return Value{}, ErrNotReady
	}
	g0, err := c.params.scheme.ReconstructExponent(parties, c.values)
	if err != nil {
		return Value{}, fmt.Errorf("coin: %w", err)
	}
	var v Value
	h := sha256.New()
	h.Write([]byte("sintra/coin/value"))
	h.Write([]byte(c.name))
	h.Write(c.params.g.EncodeElement(g0))
	h.Sum(v.digest[:0])
	return v, nil
}
