// Package rs implements a systematic Reed–Solomon erasure code over
// GF(2^8) together with Merkle-tree fragment commitments — the coding
// substrate of bandwidth-optimal dissemination (AVID-style coded
// reliable broadcast, after Cachin–Tessaro). A payload split into k data
// shards and extended with m parity shards can be reconstructed from any
// k of the n = k+m shards; the Merkle tree over the shards commits the
// sender to one consistent encoding, and a per-shard branch lets every
// party verify its fragment against the root without seeing the payload.
//
// The codec is self-contained (no dependencies beyond the standard
// library): GF(2^8) arithmetic uses log/exp tables over the AES field
// polynomial x^8+x^4+x^3+x^2+1 (0x11d), and the encoding matrix is the
// systematic transform of a Vandermonde matrix, so every k×k submatrix
// is invertible and reconstruction is a small Gaussian elimination.
package rs

import "fmt"

// fieldPoly is the reducing polynomial of GF(2^8).
const fieldPoly = 0x11d

// MaxShards bounds k+m: the field has 255 distinct non-zero evaluation
// points.
const MaxShards = 255

var (
	expTable [512]byte // generator powers, doubled to skip mod-255 reductions
	logTable [256]byte
)

func init() {
	x := 1
	for i := 0; i < 255; i++ {
		expTable[i] = byte(x)
		logTable[x] = byte(i)
		x <<= 1
		if x&0x100 != 0 {
			x ^= fieldPoly
		}
	}
	for i := 255; i < 512; i++ {
		expTable[i] = expTable[i-255]
	}
}

func gfMul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return expTable[int(logTable[a])+int(logTable[b])]
}

func gfDiv(a, b byte) byte {
	if b == 0 {
		panic("rs: division by zero in GF(2^8)")
	}
	if a == 0 {
		return 0
	}
	return expTable[int(logTable[a])+255-int(logTable[b])]
}

func gfPow(a byte, e int) byte {
	if e == 0 {
		return 1
	}
	if a == 0 {
		return 0
	}
	return expTable[(int(logTable[a])*e)%255]
}

// Codec encodes k data shards into n = k+m total shards such that any k
// shards reconstruct the data. Codecs are immutable and safe for
// concurrent use.
type Codec struct {
	k, m int
	// matrix is the n×k systematic encoding matrix: the top k rows are
	// the identity, the bottom m rows generate parity. Every k-row
	// submatrix is invertible (it is a Vandermonde matrix times the
	// inverse of its own top square).
	matrix [][]byte
}

// New creates a codec with k data shards and m parity shards.
func New(k, m int) (*Codec, error) {
	if k < 1 || m < 0 || k+m > MaxShards {
		return nil, fmt.Errorf("rs: invalid shard counts k=%d m=%d", k, m)
	}
	n := k + m
	// Vandermonde rows over the distinct points 0..n-1 (0^0 = 1).
	vm := make([][]byte, n)
	for i := 0; i < n; i++ {
		vm[i] = make([]byte, k)
		for j := 0; j < k; j++ {
			vm[i][j] = gfPow(byte(i), j)
		}
	}
	top := make([][]byte, k)
	for i := range top {
		top[i] = append([]byte(nil), vm[i]...)
	}
	inv, err := invertMatrix(top)
	if err != nil {
		return nil, fmt.Errorf("rs: vandermonde top square singular: %w", err)
	}
	c := &Codec{k: k, m: m, matrix: matMul(vm, inv)}
	return c, nil
}

// K returns the number of data shards.
func (c *Codec) K() int { return c.k }

// N returns the total number of shards.
func (c *Codec) N() int { return c.k + c.m }

// ShardLen returns the shard length used for a payload of the given size.
func (c *Codec) ShardLen(payloadLen int) int {
	return (payloadLen + c.k - 1) / c.k
}

// Split pads the payload and cuts it into k equal data shards. The
// original length must be carried out of band (see Join).
func (c *Codec) Split(payload []byte) [][]byte {
	shardLen := c.ShardLen(len(payload))
	if shardLen == 0 {
		shardLen = 1 // k shards of one zero byte for the empty payload
	}
	buf := make([]byte, c.k*shardLen)
	copy(buf, payload)
	shards := make([][]byte, c.k)
	for i := range shards {
		shards[i] = buf[i*shardLen : (i+1)*shardLen]
	}
	return shards
}

// Join reassembles the payload of the given original length from the k
// data shards.
func (c *Codec) Join(data [][]byte, payloadLen int) ([]byte, error) {
	if len(data) != c.k {
		return nil, fmt.Errorf("rs: join needs %d data shards, have %d", c.k, len(data))
	}
	var shardLen int
	for _, s := range data {
		if s == nil {
			return nil, fmt.Errorf("rs: join with missing data shard")
		}
		if shardLen == 0 {
			shardLen = len(s)
		} else if len(s) != shardLen {
			return nil, fmt.Errorf("rs: join with ragged shards")
		}
	}
	if payloadLen < 0 || payloadLen > c.k*shardLen {
		return nil, fmt.Errorf("rs: payload length %d outside shard capacity %d", payloadLen, c.k*shardLen)
	}
	out := make([]byte, 0, payloadLen)
	for _, s := range data {
		take := min(len(s), payloadLen-len(out))
		out = append(out, s[:take]...)
		if len(out) == payloadLen {
			break
		}
	}
	// The padding the sender added must be zero, or the shard set encodes
	// more than the declared payload (an inconsistent fragment header).
	rest := payloadLen
	for _, s := range data {
		for i := range s {
			if rest > 0 {
				rest--
				continue
			}
			if s[i] != 0 {
				return nil, fmt.Errorf("rs: nonzero padding beyond declared payload length")
			}
		}
	}
	return out[:payloadLen], nil
}

// Encode computes the m parity shards for k equal-length data shards and
// returns the full n-shard vector (data shards are aliased, not copied).
func (c *Codec) Encode(data [][]byte) ([][]byte, error) {
	if len(data) != c.k {
		return nil, fmt.Errorf("rs: encode needs %d data shards, have %d", c.k, len(data))
	}
	shardLen := -1
	for _, s := range data {
		if s == nil {
			return nil, fmt.Errorf("rs: encode with missing data shard")
		}
		if shardLen == -1 {
			shardLen = len(s)
		} else if len(s) != shardLen {
			return nil, fmt.Errorf("rs: encode with ragged shards")
		}
	}
	shards := make([][]byte, c.N())
	copy(shards, data)
	for p := 0; p < c.m; p++ {
		row := c.matrix[c.k+p]
		out := make([]byte, shardLen)
		for j, coef := range row {
			if coef == 0 {
				continue
			}
			src := data[j]
			mulAdd(out, src, coef)
		}
		shards[c.k+p] = out
	}
	return shards, nil
}

// Reconstruct recovers the k data shards from any k present shards of
// the n-shard vector (nil entries are missing) and returns them. The
// input slice is not modified.
func (c *Codec) Reconstruct(shards [][]byte) ([][]byte, error) {
	n := c.N()
	if len(shards) != n {
		return nil, fmt.Errorf("rs: reconstruct needs %d shard slots, have %d", n, len(shards))
	}
	present := make([]int, 0, c.k)
	shardLen := -1
	for i, s := range shards {
		if s == nil {
			continue
		}
		if shardLen == -1 {
			shardLen = len(s)
		} else if len(s) != shardLen {
			return nil, fmt.Errorf("rs: reconstruct with ragged shards")
		}
		if len(present) < c.k {
			present = append(present, i)
		}
	}
	if len(present) < c.k {
		return nil, fmt.Errorf("rs: reconstruct needs %d shards, have %d", c.k, len(present))
	}
	// Fast path: all data shards present.
	allData := true
	for i := 0; i < c.k; i++ {
		if shards[i] == nil {
			allData = false
			break
		}
	}
	if allData {
		data := make([][]byte, c.k)
		copy(data, shards[:c.k])
		return data, nil
	}
	sub := make([][]byte, c.k)
	for r, i := range present {
		sub[r] = append([]byte(nil), c.matrix[i]...)
	}
	dec, err := invertMatrix(sub)
	if err != nil {
		return nil, fmt.Errorf("rs: decode submatrix singular: %w", err)
	}
	data := make([][]byte, c.k)
	for r := 0; r < c.k; r++ {
		out := make([]byte, shardLen)
		for j, coef := range dec[r] {
			if coef == 0 {
				continue
			}
			mulAdd(out, shards[present[j]], coef)
		}
		data[r] = out
	}
	return data, nil
}

// mulAdd adds coef·src into dst (GF(2^8) multiply-accumulate). The inner
// loop indexes a per-coefficient 256-entry product table, turning the
// field multiply into a lookup — the codec's hot path.
func mulAdd(dst, src []byte, coef byte) {
	if coef == 1 {
		for i := range dst {
			dst[i] ^= src[i]
		}
		return
	}
	logC := int(logTable[coef])
	var table [256]byte
	for v := 1; v < 256; v++ {
		table[v] = expTable[logC+int(logTable[v])]
	}
	for i := range dst {
		dst[i] ^= table[src[i]]
	}
}

// matMul multiplies an n×k by a k×k matrix.
func matMul(a, b [][]byte) [][]byte {
	n, k := len(a), len(b)
	out := make([][]byte, n)
	for i := 0; i < n; i++ {
		out[i] = make([]byte, k)
		for j := 0; j < k; j++ {
			var acc byte
			for l := 0; l < k; l++ {
				acc ^= gfMul(a[i][l], b[l][j])
			}
			out[i][j] = acc
		}
	}
	return out
}

// invertMatrix inverts a square matrix by Gauss–Jordan elimination. The
// input is consumed as scratch space.
func invertMatrix(m [][]byte) ([][]byte, error) {
	k := len(m)
	inv := make([][]byte, k)
	for i := range inv {
		inv[i] = make([]byte, k)
		inv[i][i] = 1
	}
	for col := 0; col < k; col++ {
		pivot := -1
		for r := col; r < k; r++ {
			if m[r][col] != 0 {
				pivot = r
				break
			}
		}
		if pivot == -1 {
			return nil, fmt.Errorf("rs: singular matrix")
		}
		m[col], m[pivot] = m[pivot], m[col]
		inv[col], inv[pivot] = inv[pivot], inv[col]
		if p := m[col][col]; p != 1 {
			for j := 0; j < k; j++ {
				m[col][j] = gfDiv(m[col][j], p)
				inv[col][j] = gfDiv(inv[col][j], p)
			}
		}
		for r := 0; r < k; r++ {
			if r == col || m[r][col] == 0 {
				continue
			}
			f := m[r][col]
			for j := 0; j < k; j++ {
				m[r][j] ^= gfMul(f, m[col][j])
				inv[r][j] ^= gfMul(f, inv[col][j])
			}
		}
	}
	return inv, nil
}
