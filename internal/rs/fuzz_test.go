package rs

import (
	"bytes"
	"testing"
)

// FuzzReconstruct drives the decoder with adversarial shard vectors: an
// arbitrary payload is encoded honestly, then the fuzzer chooses which
// shards survive and which bytes get flipped. The decoder must never
// panic; and whenever at least k uncorrupted shards survive with no
// corrupted shard among the ones it reads, the payload round-trips.
func FuzzReconstruct(f *testing.F) {
	f.Add([]byte("seed payload"), uint8(3), uint8(4), uint16(0b1011011), uint16(0))
	f.Add([]byte{}, uint8(1), uint8(2), uint16(0b111), uint16(1))
	f.Add(bytes.Repeat([]byte{0xab}, 257), uint8(5), uint8(2), uint16(0b1111100), uint16(0b10))
	f.Fuzz(func(t *testing.T, payload []byte, k8, m8 uint8, keepMask, flipMask uint16) {
		k := int(k8%8) + 1
		m := int(m8 % 8)
		c, err := New(k, m)
		if err != nil {
			t.Fatalf("New(%d,%d): %v", k, m, err)
		}
		shards, err := c.Encode(c.Split(payload))
		if err != nil {
			t.Fatalf("Encode: %v", err)
		}
		partial := make([][]byte, c.N())
		kept, clean := 0, true
		for i := range shards {
			if keepMask&(1<<i) == 0 {
				continue
			}
			s := append([]byte(nil), shards[i]...)
			if flipMask&(1<<i) != 0 {
				s[0] ^= 0xff
				if kept < k {
					clean = false // a corrupted shard lands in the decode set
				}
			}
			partial[i] = s
			kept++
		}
		data, err := c.Reconstruct(partial)
		if kept < k {
			if err == nil {
				t.Fatalf("reconstructed from %d < %d shards", kept, k)
			}
			return
		}
		if err != nil {
			t.Fatalf("Reconstruct with %d shards: %v", kept, err)
		}
		if !clean {
			return // garbage in, garbage out — only no-panic is promised
		}
		got, err := c.Join(data, len(payload))
		if err != nil {
			t.Fatalf("Join: %v", err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatal("clean reconstruction does not match payload")
		}
	})
}
