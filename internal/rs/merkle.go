// Merkle-tree commitments over erasure-coded fragments: the sender
// commits to one consistent encoding by the root hash, and each party
// verifies its fragment against the root with a logarithmic branch.
// Leaf and interior hashes are domain-separated so an interior node can
// never be replayed as a leaf.

package rs

import "crypto/sha256"

// Tree is a Merkle tree over a fixed ordered leaf set. A level with an
// odd number of nodes promotes its last node unchanged; with the leaf
// count fixed by the protocol (one fragment per party), the shape is
// unambiguous to every verifier.
type Tree struct {
	levels [][][32]byte // levels[0] = leaf hashes, last level = root
}

func leafHash(leaf []byte) [32]byte {
	h := sha256.New()
	h.Write([]byte{0x00})
	h.Write(leaf)
	var out [32]byte
	h.Sum(out[:0])
	return out
}

func nodeHash(left, right [32]byte) [32]byte {
	h := sha256.New()
	h.Write([]byte{0x01})
	h.Write(left[:])
	h.Write(right[:])
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// NewTree builds the tree over the given leaves (at least one).
func NewTree(leaves [][]byte) *Tree {
	level := make([][32]byte, len(leaves))
	for i, l := range leaves {
		level[i] = leafHash(l)
	}
	t := &Tree{levels: [][][32]byte{level}}
	for len(level) > 1 {
		next := make([][32]byte, 0, (len(level)+1)/2)
		for i := 0; i < len(level); i += 2 {
			if i+1 < len(level) {
				next = append(next, nodeHash(level[i], level[i+1]))
			} else {
				next = append(next, level[i])
			}
		}
		t.levels = append(t.levels, next)
		level = next
	}
	return t
}

// Root returns the root commitment.
func (t *Tree) Root() [32]byte {
	top := t.levels[len(t.levels)-1]
	return top[0]
}

// Branch returns the authentication path for leaf i: the sibling hash at
// each level that has one (levels where the node is a promoted odd tail
// contribute nothing).
func (t *Tree) Branch(i int) [][32]byte {
	var branch [][32]byte
	for _, level := range t.levels[:len(t.levels)-1] {
		sib := i ^ 1
		if sib < len(level) {
			branch = append(branch, level[sib])
		}
		i /= 2
	}
	return branch
}

// VerifyBranch checks that leaf sits at index i of an n-leaf tree with
// the given root, using the authentication branch.
func VerifyBranch(root [32]byte, i, n int, leaf []byte, branch [][32]byte) bool {
	if i < 0 || i >= n || n < 1 {
		return false
	}
	h := leafHash(leaf)
	width := n
	for width > 1 {
		sib := i ^ 1
		if sib < width {
			if len(branch) == 0 {
				return false
			}
			if i&1 == 0 {
				h = nodeHash(h, branch[0])
			} else {
				h = nodeHash(branch[0], h)
			}
			branch = branch[1:]
		}
		i /= 2
		width = (width + 1) / 2
	}
	return len(branch) == 0 && h == root
}
