package rs

import (
	"bytes"
	"math/rand"
	"testing"
)

// subsets enumerates all k-element subsets of 0..n-1.
func subsets(n, k int) [][]int {
	var out [][]int
	var rec func(start int, cur []int)
	rec = func(start int, cur []int) {
		if len(cur) == k {
			out = append(out, append([]int(nil), cur...))
			return
		}
		for i := start; i < n; i++ {
			rec(i+1, append(cur, i))
		}
	}
	rec(0, nil)
	return out
}

// TestAnyKOfNReconstructs is the core property: for every k-subset of
// the n shards, reconstruction recovers the exact payload.
func TestAnyKOfNReconstructs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, cfg := range []struct{ k, m int }{{1, 2}, {2, 2}, {3, 4}, {4, 3}, {5, 2}} {
		c, err := New(cfg.k, cfg.m)
		if err != nil {
			t.Fatalf("New(%d,%d): %v", cfg.k, cfg.m, err)
		}
		for _, size := range []int{0, 1, cfg.k - 1, cfg.k, cfg.k + 1, 300, 1023} {
			if size < 0 {
				continue
			}
			payload := make([]byte, size)
			rng.Read(payload)
			shards, err := c.Encode(c.Split(payload))
			if err != nil {
				t.Fatalf("Encode: %v", err)
			}
			for _, keep := range subsets(c.N(), c.k) {
				partial := make([][]byte, c.N())
				for _, i := range keep {
					partial[i] = shards[i]
				}
				data, err := c.Reconstruct(partial)
				if err != nil {
					t.Fatalf("k=%d m=%d size=%d keep=%v: %v", cfg.k, cfg.m, size, keep, err)
				}
				got, err := c.Join(data, size)
				if err != nil {
					t.Fatalf("Join: %v", err)
				}
				if !bytes.Equal(got, payload) {
					t.Fatalf("k=%d m=%d size=%d keep=%v: payload mismatch", cfg.k, cfg.m, size, keep)
				}
			}
		}
	}
}

// TestReencodeMatches: reconstructing from parity-heavy subsets and
// re-encoding reproduces the identical shard vector — the consistency
// check coded broadcast relies on.
func TestReencodeMatches(t *testing.T) {
	c, err := New(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 500)
	rand.New(rand.NewSource(7)).Read(payload)
	shards, _ := c.Encode(c.Split(payload))
	partial := make([][]byte, c.N())
	for _, i := range []int{4, 5, 6} { // parity only
		partial[i] = shards[i]
	}
	data, err := c.Reconstruct(partial)
	if err != nil {
		t.Fatal(err)
	}
	again, err := c.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	for i := range shards {
		if !bytes.Equal(shards[i], again[i]) {
			t.Fatalf("shard %d differs after reconstruct+re-encode", i)
		}
	}
}

// TestCorruptedShardDetected: flipping any byte of any shard makes its
// Merkle branch verification fail, and an honest branch never fails.
func TestCorruptedShardDetected(t *testing.T) {
	c, err := New(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 700)
	rand.New(rand.NewSource(3)).Read(payload)
	shards, _ := c.Encode(c.Split(payload))
	tree := NewTree(shards)
	root := tree.Root()
	for i, s := range shards {
		if !VerifyBranch(root, i, len(shards), s, tree.Branch(i)) {
			t.Fatalf("honest branch %d rejected", i)
		}
		for _, pos := range []int{0, len(s) / 2, len(s) - 1} {
			bad := append([]byte(nil), s...)
			bad[pos] ^= 0x40
			if VerifyBranch(root, i, len(shards), bad, tree.Branch(i)) {
				t.Fatalf("corrupted shard %d (byte %d) accepted", i, pos)
			}
		}
		// A valid fragment presented at the wrong index must also fail.
		wrong := (i + 1) % len(shards)
		if VerifyBranch(root, wrong, len(shards), s, tree.Branch(i)) {
			t.Fatalf("shard %d accepted at index %d", i, wrong)
		}
	}
}

// TestMerkleShapes covers odd leaf counts, single leaves, and branch
// length truncation.
func TestMerkleShapes(t *testing.T) {
	for n := 1; n <= 12; n++ {
		leaves := make([][]byte, n)
		for i := range leaves {
			leaves[i] = []byte{byte(i), byte(n)}
		}
		tree := NewTree(leaves)
		root := tree.Root()
		for i := range leaves {
			br := tree.Branch(i)
			if !VerifyBranch(root, i, n, leaves[i], br) {
				t.Fatalf("n=%d leaf %d rejected", n, i)
			}
			if len(br) > 0 && VerifyBranch(root, i, n, leaves[i], br[:len(br)-1]) {
				t.Fatalf("n=%d leaf %d accepted with truncated branch", n, i)
			}
			if VerifyBranch(root, i, n, leaves[i], append(append([][32]byte(nil), br...), [32]byte{})) {
				t.Fatalf("n=%d leaf %d accepted with extended branch", n, i)
			}
		}
		if VerifyBranch(root, n, n, leaves[0], tree.Branch(0)) {
			t.Fatalf("n=%d out-of-range index accepted", n)
		}
	}
}

// TestJoinRejectsDirtyPadding: a shard set whose padding bytes are not
// zero (an inconsistent declared length) is rejected.
func TestJoinRejectsDirtyPadding(t *testing.T) {
	c, err := New(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	data := c.Split([]byte("hello world"))
	// Claim a shorter payload so real bytes land in the padding region.
	if _, err := c.Join(data, 4); err == nil {
		t.Fatal("Join accepted nonzero padding")
	}
	if got, err := c.Join(data, 11); err != nil || string(got) != "hello world" {
		t.Fatalf("Join honest: %q %v", got, err)
	}
}

func TestNewRejectsBadParams(t *testing.T) {
	for _, cfg := range []struct{ k, m int }{{0, 1}, {-1, 2}, {3, -1}, {200, 100}} {
		if _, err := New(cfg.k, cfg.m); err == nil {
			t.Fatalf("New(%d,%d) accepted", cfg.k, cfg.m)
		}
	}
	if _, err := New(128, 127); err != nil {
		t.Fatalf("New(128,127): %v", err)
	}
}

func TestReconstructErrors(t *testing.T) {
	c, _ := New(3, 2)
	shards, _ := c.Encode(c.Split([]byte("payload bytes here")))
	// Too few shards.
	partial := make([][]byte, c.N())
	partial[0], partial[3] = shards[0], shards[3]
	if _, err := c.Reconstruct(partial); err == nil {
		t.Fatal("accepted k-1 shards")
	}
	// Ragged shards.
	partial[1] = shards[1][:len(shards[1])-1]
	if _, err := c.Reconstruct(partial); err == nil {
		t.Fatal("accepted ragged shards")
	}
	// Wrong slot count.
	if _, err := c.Reconstruct(shards[:3]); err == nil {
		t.Fatal("accepted short slot vector")
	}
}

func BenchmarkEncode64KiB(b *testing.B) {
	c, _ := New(3, 4)
	payload := make([]byte, 64<<10)
	rand.New(rand.NewSource(9)).Read(payload)
	data := c.Split(payload)
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Encode(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReconstruct64KiB(b *testing.B) {
	c, _ := New(3, 4)
	payload := make([]byte, 64<<10)
	rand.New(rand.NewSource(9)).Read(payload)
	shards, _ := c.Encode(c.Split(payload))
	partial := make([][]byte, c.N())
	for _, i := range []int{1, 4, 6} {
		partial[i] = shards[i]
	}
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Reconstruct(partial); err != nil {
			b.Fatal(err)
		}
	}
}
