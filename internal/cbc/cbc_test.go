package cbc_test

import (
	"bytes"
	"testing"
	"time"

	"sintra/internal/adversary"
	"sintra/internal/cbc"
	"sintra/internal/testutil"
	"sintra/internal/thresig"
	"sintra/internal/wire"
)

type delivery struct {
	party   int
	payload []byte
	cert    []byte
}

func newCBC(cfg cbc.Config) *cbc.CBC {
	var inst *cbc.CBC
	cfg.Router.DoSync(func() { inst = cbc.New(cfg) })
	return inst
}

func spawnAll(c *testutil.Cluster, sender int, tag string, parties []int, ch chan delivery, pred func([]byte) bool) map[int]*cbc.CBC {
	out := make(map[int]*cbc.CBC, len(parties))
	for _, i := range parties {
		i := i
		out[i] = newCBC(cbc.Config{
			Router:    c.Routers[i],
			Struct:    c.Struct,
			Instance:  cbc.InstanceID(sender, tag),
			Sender:    sender,
			Scheme:    c.Pub.QuorumSig(),
			Key:       c.Secrets[i].SigQuorum,
			Predicate: pred,
			Deliver: func(p, cert []byte) {
				ch <- delivery{party: i, payload: p, cert: cert}
			},
		})
	}
	return out
}

func waitDeliveries(t *testing.T, ch chan delivery, want int) []delivery {
	t.Helper()
	var out []delivery
	deadline := time.After(30 * time.Second)
	for len(out) < want {
		select {
		case d := <-ch:
			out = append(out, d)
		case <-deadline:
			t.Fatalf("timeout: %d of %d deliveries", len(out), want)
		}
	}
	return out
}

func TestConsistentBroadcastDelivers(t *testing.T) {
	st := adversary.MustThreshold(4, 1)
	c := testutil.NewCluster(t, st, testutil.Options{})
	ch := make(chan delivery, 16)
	insts := spawnAll(c, 0, "m", []int{0, 1, 2, 3}, ch, nil)
	msg := []byte("consistent broadcast payload")
	if err := insts[0].Start(msg); err != nil {
		t.Fatal(err)
	}
	got := waitDeliveries(t, ch, 4)
	for _, d := range got {
		if !bytes.Equal(d.payload, msg) {
			t.Fatalf("party %d delivered wrong payload", d.party)
		}
		// The certificate must be transferable: any third party can check it.
		if err := cbc.VerifyCertificate(c.Pub.QuorumSig(), cbc.InstanceID(0, "m"), d.payload, d.cert); err != nil {
			t.Fatalf("certificate not transferable: %v", err)
		}
	}
}

func TestCertificateRejectsWrongPayload(t *testing.T) {
	st := adversary.MustThreshold(4, 1)
	c := testutil.NewCluster(t, st, testutil.Options{})
	ch := make(chan delivery, 16)
	insts := spawnAll(c, 0, "m", []int{0, 1, 2, 3}, ch, nil)
	if err := insts[0].Start([]byte("real")); err != nil {
		t.Fatal(err)
	}
	d := waitDeliveries(t, ch, 1)[0]
	if err := cbc.VerifyCertificate(c.Pub.QuorumSig(), cbc.InstanceID(0, "m"), []byte("fake"), d.cert); err == nil {
		t.Fatal("certificate verified for a different payload")
	}
	if err := cbc.VerifyCertificate(c.Pub.QuorumSig(), cbc.InstanceID(0, "other"), d.payload, d.cert); err == nil {
		t.Fatal("certificate verified for a different instance")
	}
}

func TestUniquenessAgainstEquivocatingSender(t *testing.T) {
	// A corrupted sender sends payload A to parties 1,2 and payload B to
	// party 3, then tries to finalize both. Honest parties sign only the
	// first payload they see, so at most one certificate can form; all
	// deliveries must agree.
	st := adversary.MustThreshold(4, 1)
	c := testutil.NewCluster(t, st, testutil.Options{Seed: 9, Corrupted: []int{0}})
	ch := make(chan delivery, 16)
	spawnAll(c, 0, "eq", []int{1, 2, 3}, ch, nil)
	instance := cbc.InstanceID(0, "eq")
	sendRaw := func(to int, payload []byte) {
		c.Net.Endpoint(0).Send(wire.Message{
			To: to, Protocol: cbc.Protocol, Instance: instance,
			Type: "SEND", Payload: wire.MustMarshalBody(struct{ Payload []byte }{payload}),
		})
	}
	sendRaw(1, []byte("payload-A"))
	sendRaw(2, []byte("payload-A"))
	sendRaw(3, []byte("payload-B"))
	// Collect the shares the honest parties send back and try to combine
	// them as the corrupted sender would.
	scheme := c.Pub.QuorumSig()
	var sharesA, sharesB []thresig.Share
	deadline := time.After(20 * time.Second)
	for len(sharesA)+len(sharesB) < 3 {
		var m wire.Message
		var ok bool
		done := make(chan struct{})
		go func() { m, ok = c.Net.Endpoint(0).Recv(); close(done) }()
		select {
		case <-done:
		case <-deadline:
			t.Fatal("timeout collecting shares")
		}
		if !ok {
			t.Fatal("network stopped")
		}
		if m.Type != "SHARE" {
			continue
		}
		var body struct{ Share thresig.Share }
		if err := wire.UnmarshalBody(m.Payload, &body); err != nil {
			t.Fatal(err)
		}
		if m.From == 3 {
			sharesB = append(sharesB, body.Share)
		} else {
			sharesA = append(sharesA, body.Share)
		}
	}
	// B can never finalize: only one share exists for it (needs 3 of 4).
	if _, err := scheme.Combine([]byte("anything"), sharesB); err == nil {
		t.Fatal("combined a certificate from a single share")
	}
	if !scheme.Sufficient(adversary.SetOf(1, 2)) {
		// Shares from parties 1 and 2 alone are not a quorum in 4/1.
		t.Log("as expected: two shares are insufficient for a quorum of 3")
	}
}

func TestPredicateBlocksSigning(t *testing.T) {
	st := adversary.MustThreshold(4, 1)
	c := testutil.NewCluster(t, st, testutil.Options{})
	ch := make(chan delivery, 16)
	insts := spawnAll(c, 0, "p", []int{0, 1, 2, 3}, ch, func(p []byte) bool {
		return len(p) < 4
	})
	if err := insts[0].Start([]byte("payload violating the predicate")); err != nil {
		t.Fatal(err)
	}
	select {
	case d := <-ch:
		t.Fatalf("party %d delivered an invalid payload", d.party)
	case <-time.After(400 * time.Millisecond):
	}
}

func TestFetchAfterDelivery(t *testing.T) {
	// Party 3 does not participate in the broadcast but later fetches the
	// certified payload from its peers.
	st := adversary.MustThreshold(4, 1)
	c := testutil.NewCluster(t, st, testutil.Options{})
	ch := make(chan delivery, 16)
	insts := spawnAll(c, 0, "f", []int{0, 1, 2}, ch, nil)
	msg := []byte("fetch me")
	if err := insts[0].Start(msg); err != nil {
		t.Fatal(err)
	}
	waitDeliveries(t, ch, 3)
	late := spawnAll(c, 0, "f", []int{3}, ch, nil)
	late[3].Fetch([]int{0, 1, 2})
	d := waitDeliveries(t, ch, 1)[0]
	if d.party != 3 || !bytes.Equal(d.payload, msg) {
		t.Fatalf("late fetch delivered wrong result: party %d", d.party)
	}
}

func TestCBCWithCertScheme(t *testing.T) {
	// Same protocol over a generalized adversary structure using the
	// certificate signature scheme.
	st := adversary.Example1()
	c := testutil.NewCluster(t, st, testutil.Options{Seed: 5})
	ch := make(chan delivery, 32)
	honest := []int{4, 5, 6, 7, 8} // class a (4 servers) is crashed
	insts := spawnAll(c, 4, "g", honest, ch, nil)
	msg := []byte("general adversary echo broadcast")
	if err := insts[4].Start(msg); err != nil {
		t.Fatal(err)
	}
	got := waitDeliveries(t, ch, len(honest))
	for _, d := range got {
		if !bytes.Equal(d.payload, msg) {
			t.Fatal("wrong payload")
		}
		if err := cbc.VerifyCertificate(c.Pub.QuorumSig(), cbc.InstanceID(4, "g"), d.payload, d.cert); err != nil {
			t.Fatal(err)
		}
	}
}

func TestNonSenderCannotStart(t *testing.T) {
	st := adversary.MustThreshold(4, 1)
	c := testutil.NewCluster(t, st, testutil.Options{})
	inst := newCBC(cbc.Config{
		Router:   c.Routers[1],
		Struct:   c.Struct,
		Instance: cbc.InstanceID(0, "m"),
		Sender:   0,
		Scheme:   c.Pub.QuorumSig(),
		Key:      c.Secrets[1].SigQuorum,
	})
	if err := inst.Start([]byte("x")); err == nil {
		t.Fatal("non-sender started")
	}
}

func TestInstanceIDRoundTrip(t *testing.T) {
	id := cbc.InstanceID(3, "mvba/7")
	s, err := cbc.SenderOf(id)
	if err != nil || s != 3 {
		t.Fatalf("SenderOf = %d, %v", s, err)
	}
	if _, err := cbc.SenderOf("zz"); err == nil {
		t.Fatal("malformed accepted")
	}
}
