// Package cbc implements consistent broadcast (echo broadcast with a
// threshold-signature certificate), the variation of reliable broadcast
// the paper highlights (§3): it guarantees uniqueness of the delivered
// message but relaxes totality — a party may instead learn of the message
// by other means and fetch it, presenting the transferable delivery
// certificate. The protocol goes back to Reiter's echo multicast and is
// the workhorse of the multi-valued agreement protocol, where proposals
// are c-broadcast and their certificates serve as evidence.
//
// Flow: the sender SENDs the payload; every party that accepts it (the
// external-validity predicate) returns a signature share on the payload
// digest to the sender; the sender combines a quorum of shares into a
// certificate and FINALs (payload, certificate); parties deliver on a
// valid certificate. Since two quorums intersect in an honest party and
// honest parties sign at most one digest per instance, at most one payload
// can ever carry a valid certificate: uniqueness.
package cbc

import (
	"crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"

	"sintra/internal/adversary"
	"sintra/internal/engine"
	"sintra/internal/obs"
	"sintra/internal/thresig"
	"sintra/internal/trust"
	"sintra/internal/wire"
)

// Protocol is the wire protocol name of consistent broadcast.
const Protocol = "cbc"

// Message types.
const (
	typeSend  = "SEND"
	typeShare = "SHARE"
	typeFinal = "FINAL"
	typeReq   = "REQ"
	typeAns   = "ANS"
)

type sendBody struct {
	Payload []byte
}

type shareBody struct {
	Share thresig.Share
}

type finalBody struct {
	Payload []byte
	Cert    []byte
}

type emptyBody struct{}

// InstanceID builds the canonical instance identifier, binding the sender.
func InstanceID(sender int, tag string) string {
	return strconv.Itoa(sender) + "/" + tag
}

// SenderOf parses the sender out of an instance identifier.
func SenderOf(instance string) (int, error) {
	head, _, ok := strings.Cut(instance, "/")
	if !ok {
		return 0, fmt.Errorf("cbc: malformed instance %q", instance)
	}
	sender, err := strconv.Atoi(head)
	if err != nil {
		return 0, fmt.Errorf("cbc: malformed instance %q", instance)
	}
	return sender, nil
}

// signedStatement is the string whose threshold signature certifies a
// delivery: it binds instance and payload digest.
func signedStatement(instance string, digest [32]byte) []byte {
	return []byte("cbc|" + instance + "|" + hex.EncodeToString(digest[:]))
}

// VerifyCertificate checks a transferable delivery certificate for the
// given instance and payload.
func VerifyCertificate(scheme thresig.Scheme, instance string, payload, cert []byte) error {
	d := sha256.Sum256(payload)
	if err := scheme.Verify(signedStatement(instance, d), cert); err != nil {
		return fmt.Errorf("cbc: certificate: %w", err)
	}
	return nil
}

// Config wires one consistent-broadcast instance.
type Config struct {
	// Router is the party's protocol router.
	Router *engine.Router
	// Struct is the adversary structure.
	Struct *adversary.Structure
	// Trust optionally overrides the quorum backend: the sender combines
	// a certificate only from a share set that is a quorum in its own
	// view, on top of the scheme's sufficiency rule. nil wraps Struct in
	// the symmetric backend, for which the two rules coincide.
	Trust trust.Quorums
	// Instance is the instance identifier (use InstanceID).
	Instance string
	// Sender is the broadcasting party.
	Sender int
	// Scheme is the quorum-rule threshold signature scheme.
	Scheme thresig.Scheme
	// Key is this party's signing key for Scheme.
	Key *thresig.SecretKey
	// Deliver is called exactly once with the payload and its
	// transferable certificate.
	Deliver func(payload, cert []byte)
	// Predicate optionally rejects payloads (external validity).
	Predicate func(payload []byte) bool
}

// CBC is one consistent-broadcast instance; dispatch-goroutine only.
type CBC struct {
	cfg   Config
	trust trust.Quorums

	signedDigest *[32]byte // the digest this party signed, if any
	pendingSend  []byte    // SEND payload whose predicate hasn't passed yet
	delivered    bool
	payload      []byte
	cert         []byte

	// Sender-side state.
	sentPayload []byte
	shares      []thresig.Share
	shareFrom   adversary.Set
	finalSent   bool

	// stmt is the signed statement snapshot for the Verify stage: written
	// once by the sender's START apply, read by verify workers checking
	// SHARE messages. nil until the local payload is known.
	stmt atomic.Pointer[[]byte]

	answered adversary.Set

	span *obs.Span
}

// New creates and registers an instance on the router (dispatch goroutine
// or pre-Run only).
func New(cfg Config) *CBC {
	c := &CBC{
		cfg:  cfg,
		span: obs.StartSpan(cfg.Router.Observer(), cfg.Router.Self(), Protocol, cfg.Instance),
	}
	if c.trust = cfg.Trust; c.trust == nil {
		c.trust = trust.NewSymmetric(cfg.Struct)
	}
	cfg.Router.RegisterSplit(Protocol, cfg.Instance, engine.SplitHandler{
		Verify:      c.verifyMsg,
		BatchVerify: c.batchVerify,
		Apply:       c.apply,
		VerifyTypes: []string{typeShare, typeFinal, typeAns},
	})
	return c
}

// shareVerdict is the Verify-stage result for a SHARE message, checked
// against the statement snapshot published by the sender's START.
type shareVerdict struct {
	share thresig.Share
	valid bool
}

// finalVerdict is the Verify-stage result for FINAL and ANS messages:
// the decoded body and whether its certificate checks out. Certificate
// verification needs no protocol state, so the verdict is authoritative.
type finalVerdict struct {
	payload, cert []byte
	valid         bool
}

// verifyMsg is the parallel Verify stage: signature-share checks (SHARE)
// and certificate checks (FINAL/ANS) — the instance's dominant
// public-key costs — run here, off the dispatch goroutine.
func (c *CBC) verifyMsg(from int, msgType string, payload []byte) any {
	switch msgType {
	case typeShare:
		stmt := c.stmt.Load()
		if stmt == nil {
			// The local START has not applied yet; defer to inline
			// verification (the share would be dropped anyway).
			return nil
		}
		var body shareBody
		if wire.UnmarshalBody(payload, &body) != nil {
			return nil
		}
		return &shareVerdict{
			share: body.Share,
			valid: c.cfg.Scheme.VerifyShare(*stmt, body.Share) == nil,
		}
	case typeFinal, typeAns:
		var body finalBody
		if wire.UnmarshalBody(payload, &body) != nil {
			return nil
		}
		return &finalVerdict{
			payload: body.Payload,
			cert:    body.Cert,
			valid:   VerifyCertificate(c.cfg.Scheme, c.cfg.Instance, body.Payload, body.Cert) == nil,
		}
	}
	return nil
}

// batchVerify is the coalescing Verify stage. A SHARE burst — the
// sender collecting one signature share from every party — folds into
// one thresig batch check against the published statement. FINAL and
// ANS certificates have no share structure to fold and are verified
// per message.
func (c *CBC) batchVerify(msgs []*wire.Message) ([]any, int) {
	if msgs[0].Type != typeShare {
		verdicts := make([]any, len(msgs))
		for i, m := range msgs {
			verdicts[i] = c.verifyMsg(m.From, m.Type, m.Payload)
		}
		return verdicts, 0
	}
	stmt := c.stmt.Load()
	if stmt == nil {
		// The local START has not applied yet; defer to inline
		// verification (the shares would be dropped anyway).
		return make([]any, len(msgs)), 0
	}
	verdicts := make([]any, len(msgs))
	shares := make([]thresig.Share, 0, len(msgs))
	slots := make([]int, 0, len(msgs))
	for i, m := range msgs {
		var body shareBody
		if wire.UnmarshalBody(m.Payload, &body) != nil {
			continue
		}
		verdicts[i] = &shareVerdict{share: body.Share}
		slots = append(slots, i)
		shares = append(shares, body.Share)
	}
	bad := thresig.BatchVerify(c.cfg.Scheme, *stmt, shares)
	badSet := make(map[int]bool, len(bad))
	for _, j := range bad {
		badSet[j] = true
	}
	for j, i := range slots {
		verdicts[i].(*shareVerdict).valid = !badSet[j]
	}
	return verdicts, len(bad)
}

// Start c-broadcasts the payload; sender only. Safe from any goroutine
// (routed through a loopback message).
func (c *CBC) Start(payload []byte) error {
	if c.cfg.Router.Self() != c.cfg.Sender {
		return fmt.Errorf("cbc: party %d cannot start instance of sender %d", c.cfg.Router.Self(), c.cfg.Sender)
	}
	return c.cfg.Router.Loopback(Protocol, c.cfg.Instance, "START", sendBody{Payload: payload})
}

// Delivered reports whether the instance has delivered.
func (c *CBC) Delivered() bool { return c.delivered }

func (c *CBC) valid(payload []byte) bool {
	return c.cfg.Predicate == nil || c.cfg.Predicate(payload)
}

// Handle processes one protocol message without a pipeline verdict (the
// legacy single-stage entry point, kept for tests and direct callers).
func (c *CBC) Handle(from int, msgType string, payload []byte) {
	c.apply(from, msgType, payload, nil)
}

// apply is the serialized Apply stage; a non-nil verdict carries the
// Verify stage's result and skips re-verification.
func (c *CBC) apply(from int, msgType string, payload []byte, verdict any) {
	switch msgType {
	case "START":
		var body sendBody
		if from != c.cfg.Router.Self() || !c.cfg.Router.Decode(payload, &body) {
			return
		}
		if c.sentPayload != nil {
			return
		}
		c.sentPayload = body.Payload
		d := sha256.Sum256(body.Payload)
		stmt := signedStatement(c.cfg.Instance, d)
		c.stmt.Store(&stmt) // expose the statement to verify workers
		_ = c.cfg.Router.BroadcastJournaled("send", Protocol, c.cfg.Instance, typeSend, sendBody{Payload: body.Payload})
	case typeSend:
		var body sendBody
		if from != c.cfg.Sender || !c.cfg.Router.Decode(payload, &body) {
			return
		}
		c.onSend(body.Payload)
	case typeShare:
		if v, ok := verdict.(*shareVerdict); ok {
			if v.valid {
				c.onShare(from, v.share, true)
			}
			return
		}
		var body shareBody
		if !c.cfg.Router.Decode(payload, &body) {
			return
		}
		c.onShare(from, body.Share, false)
	case typeFinal, typeAns:
		if v, ok := verdict.(*finalVerdict); ok {
			if v.valid {
				c.onFinalVerified(v.payload, v.cert)
			}
			return
		}
		var body finalBody
		if !c.cfg.Router.Decode(payload, &body) {
			return
		}
		c.onFinal(body.Payload, body.Cert)
	case typeReq:
		c.onReq(from)
	}
}

// onSend: sign the digest once and return the share to the sender. A
// payload failing the predicate is stashed, not discarded: predicates
// gated on local availability (the ABC coded mode validates proposal
// headers against batches that arrive on a separate coded broadcast)
// can start holding and later pass — Reeval retries the stash.
func (c *CBC) onSend(payload []byte) {
	if c.signedDigest != nil {
		return
	}
	if !c.valid(payload) {
		if c.pendingSend == nil {
			c.pendingSend = payload
		}
		return
	}
	c.signAndShare(payload)
}

// Reeval re-runs the external-validity predicate on a stashed SEND whose
// first evaluation failed. Call from the dispatch goroutine whenever
// local state the predicate depends on has changed.
func (c *CBC) Reeval() {
	if c.signedDigest != nil || c.pendingSend == nil || !c.valid(c.pendingSend) {
		return
	}
	payload := c.pendingSend
	c.pendingSend = nil
	c.signAndShare(payload)
}

// signAndShare signs the payload digest and returns the share to the
// sender; the caller has already established external validity.
func (c *CBC) signAndShare(payload []byte) {
	c.pendingSend = nil
	d := sha256.Sum256(payload)
	c.signedDigest = &d
	share, err := c.cfg.Scheme.SignShare(c.cfg.Key, signedStatement(c.cfg.Instance, d), rand.Reader)
	if err != nil {
		return
	}
	// The signature share is the commitment CBC's consistency rests on:
	// a recovered replica must never sign a second digest for this
	// instance.
	_ = c.cfg.Router.SendJournaled("share", c.cfg.Sender, Protocol, c.cfg.Instance, typeShare, shareBody{Share: share})
}

// onShare: sender collects shares until the quorum rule is met.
// preVerified shares passed the Verify stage against the published
// statement and skip re-verification.
func (c *CBC) onShare(from int, share thresig.Share, preVerified bool) {
	if c.cfg.Router.Self() != c.cfg.Sender || c.finalSent || c.sentPayload == nil {
		return
	}
	if share.Party != from || c.shareFrom.Has(from) {
		return
	}
	d := sha256.Sum256(c.sentPayload)
	stmt := signedStatement(c.cfg.Instance, d)
	if !preVerified {
		if err := c.cfg.Scheme.VerifyShare(stmt, share); err != nil {
			return
		}
	}
	c.shareFrom = c.shareFrom.Add(from)
	c.shares = append(c.shares, share)
	if !c.cfg.Scheme.Sufficient(c.shareFrom) || !c.trust.IsQuorum(c.cfg.Sender, c.shareFrom) {
		return
	}
	cert, err := c.cfg.Scheme.Combine(stmt, c.shares)
	if err != nil {
		return
	}
	c.finalSent = true
	_ = c.cfg.Router.Broadcast(Protocol, c.cfg.Instance, typeFinal, finalBody{Payload: c.sentPayload, Cert: cert})
}

// onFinal: verify the certificate and deliver.
func (c *CBC) onFinal(payload, cert []byte) {
	if c.delivered {
		return
	}
	if VerifyCertificate(c.cfg.Scheme, c.cfg.Instance, payload, cert) != nil {
		return
	}
	c.onFinalVerified(payload, cert)
}

// onFinalVerified delivers a payload whose certificate already checked
// out (in onFinal or in the Verify stage).
func (c *CBC) onFinalVerified(payload, cert []byte) {
	if c.delivered {
		return
	}
	c.delivered = true
	c.payload = payload
	c.cert = cert
	c.span.End(obs.StageDeliver, -1)
	if c.cfg.Deliver != nil {
		c.cfg.Deliver(payload, cert)
	}
}

// onReq: serve the certified payload to a party that learned of the
// message by other means (at most once per requester).
func (c *CBC) onReq(from int) {
	if !c.delivered || c.answered.Has(from) {
		return
	}
	c.answered = c.answered.Add(from)
	_ = c.cfg.Router.Send(from, Protocol, c.cfg.Instance, typeAns, finalBody{Payload: c.payload, Cert: c.cert})
}

// Fetch asks the given parties for the certified payload (used by parties
// that learned about the broadcast out of band). Safe from any goroutine.
func (c *CBC) Fetch(parties []int) {
	for _, j := range parties {
		if j != c.cfg.Router.Self() {
			_ = c.cfg.Router.Send(j, Protocol, c.cfg.Instance, typeReq, emptyBody{})
		}
	}
}
