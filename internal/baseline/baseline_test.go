package baseline_test

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"sintra/internal/adversary"
	"sintra/internal/baseline"
	"sintra/internal/netsim"
	"sintra/internal/testutil"
)

type harness struct {
	nodes map[int]*baseline.Node
	mu    sync.Mutex
	logs  map[int][][]byte
	cond  *sync.Cond
}

func newHarness(t *testing.T, c *testutil.Cluster, parties []int, timeout time.Duration) *harness {
	t.Helper()
	h := &harness{
		nodes: make(map[int]*baseline.Node, len(parties)),
		logs:  make(map[int][][]byte, len(parties)),
	}
	h.cond = sync.NewCond(&h.mu)
	for _, i := range parties {
		i := i
		h.nodes[i] = baseline.New(baseline.Config{
			Router:   c.Routers[i],
			Struct:   c.Struct,
			Instance: "b",
			Timeout:  timeout,
			Deliver: func(seq int64, payload []byte) {
				h.mu.Lock()
				defer h.mu.Unlock()
				h.logs[i] = append(h.logs[i], payload)
				h.cond.Broadcast()
			},
		})
	}
	t.Cleanup(func() {
		for _, n := range h.nodes {
			n.Stop()
		}
	})
	return h
}

func (h *harness) wait(t *testing.T, parties []int, want int, timeout time.Duration) {
	t.Helper()
	done := make(chan struct{})
	go func() {
		defer close(done)
		h.mu.Lock()
		defer h.mu.Unlock()
		for {
			ok := true
			for _, p := range parties {
				if len(h.logs[p]) < want {
					ok = false
					break
				}
			}
			if ok {
				return
			}
			h.cond.Wait()
		}
	}()
	select {
	case <-done:
	case <-time.After(timeout):
		t.Fatalf("timeout waiting for %d deliveries", want)
	}
}

func TestBaselineDeliversInFriendlyNetwork(t *testing.T) {
	st := adversary.MustThreshold(4, 1)
	c := testutil.NewCluster(t, st, testutil.Options{Seed: 2})
	parties := []int{0, 1, 2, 3}
	h := newHarness(t, c, parties, 200*time.Millisecond)
	const total = 3
	for k := 0; k < total; k++ {
		if err := h.nodes[1].Submit([]byte(fmt.Sprintf("req-%d", k))); err != nil {
			t.Fatal(err)
		}
	}
	h.wait(t, parties, total, 30*time.Second)
	// Total order between parties.
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, p := range parties[1:] {
		n := len(h.logs[0])
		if len(h.logs[p]) < n {
			n = len(h.logs[p])
		}
		for k := 0; k < n; k++ {
			if !bytes.Equal(h.logs[0][k], h.logs[p][k]) {
				t.Fatalf("order differs at %d", k)
			}
		}
	}
}

func TestLeaderStalkerStopsBaseline(t *testing.T) {
	// The paper's liveness attack: the adversary delays the current
	// leader's messages just beyond the timeout, forever. The baseline
	// must keep changing views without delivering anything.
	st := adversary.MustThreshold(4, 1)
	sched := baseline.NewLeaderStalker(st, netsim.NewRandomScheduler(3))
	c := testutil.NewCluster(t, st, testutil.Options{Scheduler: sched})
	parties := []int{0, 1, 2, 3}
	h := newHarness(t, c, parties, 30*time.Millisecond)
	if err := h.nodes[1].Submit([]byte("never delivered")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(1500 * time.Millisecond)
	deliveredTotal := int64(0)
	viewsMax := int64(0)
	for _, n := range h.nodes {
		d, v := n.Stats()
		deliveredTotal += d
		if v > viewsMax {
			viewsMax = v
		}
	}
	if deliveredTotal != 0 {
		t.Fatalf("baseline delivered %d requests under the leader stalker", deliveredTotal)
	}
	if viewsMax < 3 {
		t.Fatalf("expected many view changes, saw %d", viewsMax)
	}
	t.Logf("liveness attack: 0 deliveries, %d view changes", viewsMax)
}

func TestBaselineSurvivesCrashedLeaderViaViewChange(t *testing.T) {
	// With the initial leader crashed, the timeout rotates to a live
	// leader and requests are delivered — the failure detector works as
	// intended for crash faults (the model it was designed for).
	st := adversary.MustThreshold(4, 1)
	c := testutil.NewCluster(t, st, testutil.Options{Seed: 5, Corrupted: []int{0}})
	parties := []int{1, 2, 3}
	h := newHarness(t, c, parties, 50*time.Millisecond)
	if err := h.nodes[1].Submit([]byte("after view change")); err != nil {
		t.Fatal(err)
	}
	h.wait(t, parties, 1, 30*time.Second)
	for _, p := range parties {
		h.mu.Lock()
		got := h.logs[p][0]
		h.mu.Unlock()
		if !bytes.Equal(got, []byte("after view change")) {
			t.Fatal("wrong payload")
		}
	}
}
