// Package baseline implements a deterministic, failure-detector-style
// atomic broadcast — the protocol family of Figure 1's comparison rows
// (Rampart, SecureRing, CL99): a rotating leader sequences requests in a
// PBFT-like pre-prepare/prepare/commit pattern, and followers whose
// timeout expires vote the leader out with a view change.
//
// It exists to reproduce the paper's central argument (§2.2): a malicious
// network scheduler can delay the current leader's messages just beyond
// the timeout, over and over, so the deterministic protocol keeps changing
// views and never delivers anything — liveness is lost — while the
// randomized, coin-based stack of this repository terminates under the
// same adversary. The LeaderStalker scheduler implements exactly that
// attack.
//
// The implementation is deliberately reduced: view changes carry no
// new-view certificates, so unlike CL99 it does not maintain safety under
// Byzantine leaders across views. It is a liveness baseline, not a
// production protocol; see DESIGN.md (experiment F1).
package baseline

import (
	"crypto/sha256"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"sintra/internal/adversary"
	"sintra/internal/engine"
	"sintra/internal/netsim"
	"sintra/internal/wire"
)

// Protocol is the wire protocol name of the baseline broadcast.
const Protocol = "fdabc"

// Message types.
const (
	typeSubmit     = "SUBMIT"
	typeRequest    = "REQUEST"
	typePrePrepare = "PREPREPARE"
	typePrepare    = "PREPARE"
	typeCommit     = "COMMIT"
	typeViewChange = "VIEWCHANGE"
	typeTick       = "TICK"
)

type requestBody struct {
	Payload []byte
}

type orderBody struct {
	Slot    int64
	Payload []byte
}

type digestBody struct {
	Slot   int64
	Digest [32]byte
}

type viewChangeBody struct {
	NewView int64
}

// viewInstance encodes the view into the engine instance so that a
// network-level adversary can read it — the paper's point that prudent
// security engineering gives the adversary full protocol knowledge.
func viewInstance(tag string, view int64) string {
	return tag + "/v" + strconv.FormatInt(view, 10)
}

// viewOf parses the view out of an instance identifier.
func viewOf(instance string) (int64, bool) {
	idx := strings.LastIndex(instance, "/v")
	if idx < 0 {
		return 0, false
	}
	v, err := strconv.ParseInt(instance[idx+2:], 10, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// Config wires one baseline node.
type Config struct {
	// Router is the party's protocol router.
	Router *engine.Router
	// Struct is the adversary structure (quorum sizes).
	Struct *adversary.Structure
	// Instance tags the replicated service.
	Instance string
	// Timeout is the failure-detector timeout before a view change.
	Timeout time.Duration
	// Deliver receives totally-ordered payloads.
	Deliver func(seq int64, payload []byte)
}

type slotState struct {
	payload  []byte
	digest   [32]byte
	proposed bool
	prepared bool
	prepares map[[32]byte]adversary.Set
	commits  map[[32]byte]adversary.Set
	myCommit bool
}

// Node is one baseline replica; protocol state is dispatch-goroutine only.
type Node struct {
	cfg Config

	view       int64
	viewVotes  map[int64]adversary.Set
	nextSlot   int64             // leader: next slot to assign
	proposed   map[[32]byte]bool // leader: digests assigned a slot this view
	slots      map[int64]*slotState
	delivered  map[[32]byte]bool
	nextOut    int64
	out        map[int64][]byte
	pending    map[[32]byte][]byte
	viewCount  int64
	timerEpoch int64

	mu        sync.Mutex
	seq       int64
	views     int64
	stopTimer chan struct{}
	timerOnce sync.Once
}

// New creates and registers a baseline node (pre-Run or dispatch
// goroutine). The view-change timer starts immediately.
func New(cfg Config) *Node {
	n := &Node{
		cfg:       cfg,
		viewVotes: make(map[int64]adversary.Set),
		proposed:  make(map[[32]byte]bool),
		slots:     make(map[int64]*slotState),
		delivered: make(map[[32]byte]bool),
		out:       make(map[int64][]byte),
		pending:   make(map[[32]byte][]byte),
		stopTimer: make(chan struct{}),
	}
	cfg.Router.SetFactory(Protocol, func(instance string) engine.Handler {
		if !strings.HasPrefix(instance, cfg.Instance+"/v") {
			return nil
		}
		return func(from int, msgType string, payload []byte) {
			n.handle(instance, from, msgType, payload)
		}
	})
	go n.timerLoop()
	return n
}

// Stop halts the view-change timer.
func (n *Node) Stop() {
	n.timerOnce.Do(func() { close(n.stopTimer) })
}

// Stats returns delivered-count and view-change count (thread safe).
func (n *Node) Stats() (delivered, views int64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.seq, n.views
}

// Submit hands a request to the node. Safe from any goroutine.
func (n *Node) Submit(payload []byte) error {
	return n.cfg.Router.Loopback(Protocol, viewInstance(n.cfg.Instance, 0), typeSubmit, requestBody{Payload: payload})
}

// timerLoop injects periodic TICK events; a tick with undelivered pending
// requests triggers a view-change vote (the "failure detector").
func (n *Node) timerLoop() {
	t := time.NewTicker(n.cfg.Timeout)
	defer t.Stop()
	for {
		select {
		case <-n.stopTimer:
			return
		case <-t.C:
			n.cfg.Router.Do(func() {
				n.onTick()
			})
		}
	}
}

func (n *Node) leaderOf(view int64) int {
	return int(view % int64(n.cfg.Router.N()))
}

// handle processes one message addressed to any view instance.
func (n *Node) handle(instance string, from int, msgType string, payload []byte) {
	view, ok := viewOf(instance)
	if !ok {
		return
	}
	switch msgType {
	case typeSubmit:
		var body requestBody
		if from != n.cfg.Router.Self() || !n.cfg.Router.Decode(payload, &body) {
			return
		}
		n.onRequest(body.Payload)
		_ = n.broadcast(typeRequest, requestBody{Payload: body.Payload})
	case typeRequest:
		var body requestBody
		if !n.cfg.Router.Decode(payload, &body) {
			return
		}
		n.onRequest(body.Payload)
	case typePrePrepare:
		var body orderBody
		if !n.cfg.Router.Decode(payload, &body) {
			return
		}
		n.onPrePrepare(view, from, body)
	case typePrepare:
		var body digestBody
		if !n.cfg.Router.Decode(payload, &body) {
			return
		}
		n.onPrepare(view, from, body)
	case typeCommit:
		var body digestBody
		if !n.cfg.Router.Decode(payload, &body) {
			return
		}
		n.onCommit(view, from, body)
	case typeViewChange:
		var body viewChangeBody
		if !n.cfg.Router.Decode(payload, &body) {
			return
		}
		n.onViewChange(from, body.NewView)
	}
}

// broadcast sends in the CURRENT view's instance.
func (n *Node) broadcast(msgType string, body any) error {
	return n.cfg.Router.Broadcast(Protocol, viewInstance(n.cfg.Instance, n.view), msgType, body)
}

func (n *Node) onRequest(payload []byte) {
	d := sha256.Sum256(payload)
	if n.delivered[d] {
		return
	}
	if _, ok := n.pending[d]; !ok {
		n.pending[d] = payload
	}
	n.proposePending()
}

// proposePending lets the current leader assign slots to pending requests.
func (n *Node) proposePending() {
	if n.leaderOf(n.view) != n.cfg.Router.Self() {
		return
	}
	digests := make([]string, 0, len(n.pending))
	byKey := make(map[string][]byte, len(n.pending))
	for d, p := range n.pending {
		digests = append(digests, string(d[:]))
		byKey[string(d[:])] = p
	}
	sort.Strings(digests)
	for _, k := range digests {
		payload := byKey[k]
		d := sha256.Sum256(payload)
		if n.proposed[d] {
			continue // already assigned a slot in this view
		}
		n.proposed[d] = true
		slot := n.nextSlot
		n.nextSlot++
		_ = n.broadcast(typePrePrepare, orderBody{Slot: slot, Payload: payload})
	}
}

func (n *Node) slot(s int64) *slotState {
	st, ok := n.slots[s]
	if !ok {
		st = &slotState{
			prepares: make(map[[32]byte]adversary.Set),
			commits:  make(map[[32]byte]adversary.Set),
		}
		n.slots[s] = st
	}
	return st
}

func (n *Node) onPrePrepare(view int64, from int, body orderBody) {
	if view != n.view || from != n.leaderOf(view) {
		return
	}
	st := n.slot(body.Slot)
	if st.proposed {
		return
	}
	st.proposed = true
	st.payload = body.Payload
	st.digest = sha256.Sum256(body.Payload)
	_ = n.broadcast(typePrepare, digestBody{Slot: body.Slot, Digest: st.digest})
}

func (n *Node) onPrepare(view int64, from int, body digestBody) {
	if view != n.view {
		return
	}
	st := n.slot(body.Slot)
	st.prepares[body.Digest] = st.prepares[body.Digest].Add(from)
	if !st.prepared && n.cfg.Struct.IsQuorum(st.prepares[body.Digest]) {
		st.prepared = true
		_ = n.broadcast(typeCommit, digestBody{Slot: body.Slot, Digest: body.Digest})
	}
}

func (n *Node) onCommit(view int64, from int, body digestBody) {
	if view != n.view {
		return
	}
	st := n.slot(body.Slot)
	st.commits[body.Digest] = st.commits[body.Digest].Add(from)
	if st.payload == nil || st.digest != body.Digest {
		return
	}
	if !n.cfg.Struct.IsQuorum(st.commits[body.Digest]) || n.delivered[st.digest] {
		return
	}
	n.delivered[st.digest] = true
	delete(n.pending, st.digest)
	n.out[body.Slot] = st.payload
	n.flush()
}

func (n *Node) flush() {
	for {
		p, ok := n.out[n.nextOut]
		if !ok {
			return
		}
		delete(n.out, n.nextOut)
		seq := n.nextOut
		n.nextOut++
		n.mu.Lock()
		n.seq++
		n.mu.Unlock()
		if n.cfg.Deliver != nil {
			n.cfg.Deliver(seq, p)
		}
	}
}

// onTick is the failure detector: pending-but-undelivered requests after a
// timeout mean "the leader looks faulty" — vote for the next view.
func (n *Node) onTick() {
	if len(n.pending) == 0 {
		return
	}
	// Re-announce pending requests so a new leader learns them, then
	// suspect the current leader.
	for _, p := range n.pending {
		_ = n.broadcast(typeRequest, requestBody{Payload: p})
	}
	_ = n.broadcast(typeViewChange, viewChangeBody{NewView: n.view + 1})
}

func (n *Node) onViewChange(from int, newView int64) {
	if newView <= n.view {
		return
	}
	n.viewVotes[newView] = n.viewVotes[newView].Add(from)
	if !n.cfg.Struct.IsQuorum(n.viewVotes[newView]) {
		return
	}
	// Adopt the new view; reset per-view ordering state (slots restart —
	// delivered requests are deduplicated by digest).
	n.view = newView
	n.mu.Lock()
	n.views++
	n.mu.Unlock()
	n.slots = make(map[int64]*slotState)
	n.out = make(map[int64][]byte)
	n.proposed = make(map[[32]byte]bool)
	n.nextSlot = n.nextOut
	n.proposePending()
}

// LeaderStalker is the adversarial scheduler of the paper's liveness
// attack (§2.2): it reads the view number off the wire (the adversary
// knows the protocol, including its timeouts) and holds every message SENT
// BY the current leader until a later view has begun — i.e. it delays the
// leader "just longer than the timeout". Every message is eventually
// delivered (when it has become stale), so the run stays inside the
// asynchronous model, yet the deterministic protocol never delivers
// anything.
type LeaderStalker struct {
	st       *adversary.Structure
	fallback netsim.Scheduler
	// votes[v][receiver] is the set of senders whose VIEWCHANGE into view
	// v has been DELIVERED to the receiver; once every receiver holds a
	// quorum, the whole system has provably adopted view >= v and the old
	// leaders' messages are stale.
	votes   map[int64][]adversary.Set
	sysView int64
}

// NewLeaderStalker builds the attack scheduler; non-baseline traffic is
// scheduled by the fallback.
func NewLeaderStalker(st *adversary.Structure, fallback netsim.Scheduler) *LeaderStalker {
	return &LeaderStalker{st: st, fallback: fallback, votes: make(map[int64][]adversary.Set)}
}

var _ netsim.Scheduler = (*LeaderStalker)(nil)

// Next implements netsim.Scheduler.
func (s *LeaderStalker) Next(pending []wire.Message) int {
	n := s.st.N()
	var free []int
	for i := range pending {
		m := &pending[i]
		v, ok := viewOf(m.Instance)
		if ok && m.From == int(v%int64(n)) && v >= s.sysView {
			continue // an unretired leader's message: hold it
		}
		free = append(free, i)
	}
	if len(free) == 0 {
		return -1 // hold the leader's traffic until something else moves
	}
	sub := make([]wire.Message, len(free))
	for i, idx := range free {
		sub[i] = pending[idx]
	}
	chosen := free[s.fallback.Next(sub)]
	s.observe(&pending[chosen])
	return chosen
}

// observe records a delivered VIEWCHANGE vote and advances the system
// view once every party verifiably adopted it.
func (s *LeaderStalker) observe(m *wire.Message) {
	if m.Type != typeViewChange {
		return
	}
	v, ok := viewOf(m.Instance)
	if !ok {
		return
	}
	target := v + 1 // a VIEWCHANGE sent in view v votes for view v+1
	if target <= s.sysView {
		return
	}
	n := s.st.N()
	if m.To < 0 || m.To >= n {
		return
	}
	if s.votes[target] == nil {
		s.votes[target] = make([]adversary.Set, n)
	}
	s.votes[target][m.To] = s.votes[target][m.To].Add(m.From)
	for _, recv := range s.votes[target] {
		if !s.st.IsQuorum(recv) {
			return
		}
	}
	s.sysView = target
	delete(s.votes, target)
}

// String describes the scheduler.
func (s *LeaderStalker) String() string {
	return fmt.Sprintf("leader-stalker(n=%d,view=%d)", s.st.N(), s.sysView)
}
