package engine_test

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sintra/internal/engine"
	"sintra/internal/netsim"
	"sintra/internal/obs"
	"sintra/internal/wire"
)

// pair builds a two-party network with running routers.
func pair(t *testing.T) (*netsim.Network, *engine.Router, *engine.Router, func()) {
	t.Helper()
	nw := netsim.New(2, 0, netsim.NewRandomScheduler(1))
	r0 := engine.NewRouter(nw.Endpoint(0))
	r1 := engine.NewRouter(nw.Endpoint(1))
	var wg sync.WaitGroup
	for _, r := range []*engine.Router{r0, r1} {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			r.Run()
		}()
	}
	stop := func() {
		nw.Stop()
		wg.Wait()
	}
	t.Cleanup(stop)
	return nw, r0, r1, stop
}

type recorded struct {
	from    int
	msgType string
}

func TestSendAndDispatch(t *testing.T) {
	_, r0, r1, _ := pair(t)
	got := make(chan recorded, 4)
	r1.DoSync(func() {
		r1.Register("p", "i", func(from int, msgType string, payload []byte) {
			got <- recorded{from, msgType}
		})
	})
	if err := r0.Send(1, "p", "i", "PING", struct{}{}); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-got:
		if m.from != 0 || m.msgType != "PING" {
			t.Fatalf("got %+v", m)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("message never dispatched")
	}
}

func TestBufferedReplayOnRegister(t *testing.T) {
	_, r0, r1, _ := pair(t)
	// Send before the handler exists; the message must be buffered.
	if err := r0.Send(1, "p", "late", "EARLY", struct{ X int }{7}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	got := make(chan recorded, 1)
	r1.DoSync(func() {
		r1.Register("p", "late", func(from int, msgType string, payload []byte) {
			got <- recorded{from, msgType}
		})
	})
	select {
	case m := <-got:
		if m.msgType != "EARLY" {
			t.Fatalf("got %+v", m)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("buffered message not replayed")
	}
}

func TestUnregisterTombstones(t *testing.T) {
	_, r0, r1, _ := pair(t)
	got := make(chan recorded, 8)
	r1.DoSync(func() {
		r1.Register("p", "i", func(from int, msgType string, payload []byte) {
			got <- recorded{from, msgType}
		})
	})
	r0.Send(1, "p", "i", "ONE", struct{}{})
	<-got
	r1.DoSync(func() { r1.Unregister("p", "i") })
	r0.Send(1, "p", "i", "TWO", struct{}{})
	select {
	case m := <-got:
		t.Fatalf("tombstoned instance received %+v", m)
	case <-time.After(200 * time.Millisecond):
	}
	// Re-registering a tombstoned instance is a no-op.
	r1.DoSync(func() {
		r1.Register("p", "i", func(from int, msgType string, payload []byte) {
			got <- recorded{from, msgType}
		})
	})
	r0.Send(1, "p", "i", "THREE", struct{}{})
	select {
	case m := <-got:
		t.Fatalf("tombstone resurrected: %+v", m)
	case <-time.After(200 * time.Millisecond):
	}
}

func TestFactoryCreatesOnDemand(t *testing.T) {
	_, r0, r1, _ := pair(t)
	got := make(chan string, 4)
	r1.SetFactory("auto", func(instance string) engine.Handler {
		return func(from int, msgType string, payload []byte) {
			got <- instance + "/" + msgType
		}
	})
	r0.Send(1, "auto", "x1", "A", struct{}{})
	r0.Send(1, "auto", "x2", "B", struct{}{})
	want := map[string]bool{"x1/A": true, "x2/B": true}
	for i := 0; i < 2; i++ {
		select {
		case s := <-got:
			if !want[s] {
				t.Fatalf("unexpected %q", s)
			}
			delete(want, s)
		case <-time.After(5 * time.Second):
			t.Fatal("factory instance never handled message")
		}
	}
}

func TestFactoryReturningNilBuffers(t *testing.T) {
	_, r0, r1, _ := pair(t)
	r1.SetFactory("picky", func(instance string) engine.Handler {
		return nil // refuse
	})
	r0.Send(1, "picky", "i", "A", struct{}{})
	time.Sleep(50 * time.Millisecond)
	got := make(chan string, 1)
	r1.DoSync(func() {
		r1.Register("picky", "i", func(from int, msgType string, payload []byte) {
			got <- msgType
		})
	})
	select {
	case s := <-got:
		if s != "A" {
			t.Fatalf("got %q", s)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("message lost after factory refusal")
	}
}

func TestBroadcastIncludesSelf(t *testing.T) {
	_, r0, _, _ := pair(t)
	got := make(chan int, 4)
	r0.DoSync(func() {
		r0.Register("p", "b", func(from int, msgType string, payload []byte) {
			got <- from
		})
	})
	if err := r0.Broadcast("p", "b", "HELLO", struct{}{}); err != nil {
		t.Fatal(err)
	}
	select {
	case from := <-got:
		if from != 0 {
			t.Fatalf("self-delivery from %d", from)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no loopback delivery")
	}
}

func TestDoSyncAfterShutdown(t *testing.T) {
	_, r0, _, stop := pair(t)
	stop()
	if r0.DoSync(func() {}) {
		t.Fatal("DoSync succeeded after shutdown")
	}
	if r0.Do(func() {}) {
		t.Fatal("Do succeeded after shutdown")
	}
}

func TestDoRunsOnDispatchGoroutine(t *testing.T) {
	_, r0, _, _ := pair(t)
	// Tasks and handlers interleave on one goroutine: mutate shared state
	// without locks from both paths and rely on the race detector.
	counter := 0
	r0.DoSync(func() {
		r0.Register("p", "c", func(int, string, []byte) { counter++ })
	})
	for i := 0; i < 10; i++ {
		r0.Send(0, "p", "c", "T", struct{}{})
		r0.DoSync(func() { counter++ })
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		var c int
		r0.DoSync(func() { c = counter })
		if c == 20 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("counter = %d, want 20", c)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestSendMarshalsBody(t *testing.T) {
	_, r0, r1, _ := pair(t)
	type body struct{ V string }
	got := make(chan string, 1)
	r1.DoSync(func() {
		r1.Register("p", "m", func(from int, msgType string, payload []byte) {
			var b body
			if err := wire.UnmarshalBody(payload, &b); err != nil {
				t.Errorf("unmarshal: %v", err)
				return
			}
			got <- b.V
		})
	})
	if err := r0.Send(1, "p", "m", "T", body{V: "hello"}); err != nil {
		t.Fatal(err)
	}
	select {
	case v := <-got:
		if v != "hello" {
			t.Fatalf("got %q", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no delivery")
	}
	// Unencodable bodies error immediately.
	if err := r0.Send(1, "p", "m", "T", make(chan int)); err == nil {
		t.Fatal("channel body accepted")
	}
}

func TestBufferCapDropsOldest(t *testing.T) {
	// Flood an unregistered instance beyond one sender's buffer share; on
	// register, only the sender's newest messages replay, contiguously.
	nw, r0, r1, _ := pair(t)
	const quota = 4096 / 2 // maxBufferedPerInstance split across n=2 senders
	const flood = 5000
	for k := 0; k < flood; k++ {
		if err := r0.Send(1, "p", "cap", "M", struct{ K int }{k}); err != nil {
			t.Fatal(err)
		}
	}
	// Wait until the network delivered the whole flood to party 1's inbox,
	// then give the dispatcher time to drain the inbox into the buffer.
	deadline := time.Now().Add(20 * time.Second)
	for nw.Stats().Messages["p"] < flood {
		if time.Now().After(deadline) {
			t.Fatalf("flood stuck at %d", nw.Stats().Messages["p"])
		}
		time.Sleep(20 * time.Millisecond)
	}
	// The inbox is FIFO per destination once the scheduler delivered, so a
	// sentinel enqueued after the flood fences the dispatcher: when it is
	// handled, every flood message has been buffered.
	fence := make(chan struct{})
	r1.DoSync(func() {
		r1.Register("p", "fence", func(int, string, []byte) { close(fence) })
	})
	if err := r0.Send(1, "p", "fence", "F", struct{}{}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-fence:
	case <-time.After(20 * time.Second):
		t.Fatal("fence never dispatched")
	}

	var replayed []int
	done := make(chan struct{})
	r1.DoSync(func() {
		r1.Register("p", "cap", func(from int, msgType string, payload []byte) {
			var b struct{ K int }
			if wire.UnmarshalBody(payload, &b) == nil {
				replayed = append(replayed, b.K)
			}
		})
		close(done)
	})
	<-done
	var snapshot []int
	r1.DoSync(func() { snapshot = append([]int(nil), replayed...) })
	// The network randomizes delivery order, so the surviving messages are
	// the sender's last `quota` ARRIVALS: exactly its share, all distinct.
	if len(snapshot) != quota {
		t.Fatalf("replayed %d, want exactly the %d per-sender share", len(snapshot), quota)
	}
	seen := make(map[int]bool, len(snapshot))
	for _, k := range snapshot {
		if seen[k] || k < 0 || k >= flood {
			t.Fatalf("replay corrupted at value %d", k)
		}
		seen[k] = true
	}
}

func TestRouterMetrics(t *testing.T) {
	_, r0, r1, _ := pair(t)
	reg := obs.NewRegistry()
	// SetObserver is documented pre-Run, but the router only reads mx on
	// the dispatch goroutine, so install it there.
	r1.DoSync(func() { r1.SetObserver(reg) })
	if r1.Observer() != reg {
		t.Fatal("Observer() must return the installed registry")
	}
	got := make(chan struct{}, 8)
	r1.DoSync(func() {
		r1.Register("p", "i", func(int, string, []byte) { got <- struct{}{} })
	})
	const sends = 5
	for k := 0; k < sends; k++ {
		if err := r0.Send(1, "p", "i", "PING", struct{}{}); err != nil {
			t.Fatal(err)
		}
	}
	for k := 0; k < sends; k++ {
		select {
		case <-got:
		case <-time.After(5 * time.Second):
			t.Fatal("message never dispatched")
		}
	}
	snap := reg.Snapshot()
	if n := snap.Counter("router.recv.p.PING"); n != sends {
		t.Fatalf("router.recv.p.PING = %d, want %d", n, sends)
	}
	if n := snap.Counter("router.dispatched"); n != sends {
		t.Fatalf("router.dispatched = %d, want %d", n, sends)
	}
	if h := snap.Histograms["router.dispatch.latency"]; h.Count != sends {
		t.Fatalf("dispatch latency observations = %d, want %d", h.Count, sends)
	}
}

func TestBufferOverflowDropMetrics(t *testing.T) {
	// Flood an unregistered instance beyond one sender's buffer share with
	// an observer installed: the drop counter and the drop trace events
	// must account for every evicted message.
	nw, r0, r1, _ := pair(t)
	reg := obs.NewRegistry()
	col := obs.NewCollectTracer()
	reg.SetTracer(col)
	r1.DoSync(func() { r1.SetObserver(reg) })

	const quota = 4096 / 2 // per-sender share on n=2
	const flood = 4200
	for k := 0; k < flood; k++ {
		if err := r0.Send(1, "p", "over", "M", struct{ K int }{k}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(20 * time.Second)
	for nw.Stats().Messages["p"] < flood {
		if time.Now().After(deadline) {
			t.Fatalf("flood stuck at %d", nw.Stats().Messages["p"])
		}
		time.Sleep(20 * time.Millisecond)
	}
	// Fence the dispatcher (see TestBufferCapDropsOldest).
	fence := make(chan struct{})
	r1.DoSync(func() {
		r1.Register("p", "fence", func(int, string, []byte) { close(fence) })
	})
	if err := r0.Send(1, "p", "fence", "F", struct{}{}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-fence:
	case <-time.After(20 * time.Second):
		t.Fatal("fence never dispatched")
	}

	snap := reg.Snapshot()
	wantDrops := int64(flood - quota)
	if n := snap.Counter("router.buffered.drops"); n != wantDrops {
		t.Fatalf("router.buffered.drops = %d, want %d", n, wantDrops)
	}
	if g := snap.Gauges["router.buffered.depth"]; g.Max != quota {
		t.Fatalf("buffer depth high-water = %d, want %d", g.Max, quota)
	}
	var dropEvents int64
	for _, ev := range col.Events() {
		if ev.Stage == obs.StageDrop && ev.Protocol == "p" && ev.Instance == "over" {
			dropEvents++
			if !strings.Contains(ev.Note, "(from 0)") {
				t.Fatalf("drop trace note %q does not name the sender", ev.Note)
			}
		}
	}
	if dropEvents != wantDrops {
		t.Fatalf("drop trace events = %d, want %d", dropEvents, wantDrops)
	}
}

// TestBufferPerSenderQuota floods one instance from a corrupted party
// while an honest party's early messages trickle in: the flooder must
// exhaust only its own share, and every honest message must survive to
// replay.
func TestBufferPerSenderQuota(t *testing.T) {
	nw := netsim.New(4, 0, netsim.NewRandomScheduler(7))
	t.Cleanup(nw.Stop)
	r := engine.NewRouter(nw.Endpoint(0))
	go r.Run()
	flooder, honest := nw.Endpoint(3), nw.Endpoint(1)

	const flood = 3000 // far beyond the 4096/4 = 1024 per-sender share
	const honestMsgs = 5
	for k := 0; k < flood; k++ {
		flooder.Send(wire.Message{To: 0, Protocol: "p", Instance: "q", Type: "M",
			Payload: wire.MustMarshalBody(struct{ K int }{k})})
		if k < honestMsgs {
			honest.Send(wire.Message{To: 0, Protocol: "p", Instance: "q", Type: "H",
				Payload: wire.MustMarshalBody(struct{ K int }{k})})
		}
	}
	deadline := time.Now().Add(20 * time.Second)
	for nw.Stats().Messages["p"] < flood+honestMsgs {
		if time.Now().After(deadline) {
			t.Fatalf("flood stuck at %d", nw.Stats().Messages["p"])
		}
		time.Sleep(20 * time.Millisecond)
	}
	fence := make(chan struct{})
	r.DoSync(func() {
		r.Register("p", "fence", func(int, string, []byte) { close(fence) })
	})
	flooder.Send(wire.Message{To: 0, Protocol: "p", Instance: "fence", Type: "F"})
	select {
	case <-fence:
	case <-time.After(20 * time.Second):
		t.Fatal("fence never dispatched")
	}

	var fromHonest, fromFlooder int
	r.DoSync(func() {
		r.Register("p", "q", func(from int, msgType string, payload []byte) {
			switch from {
			case 1:
				fromHonest++
			case 3:
				fromFlooder++
			}
		})
	})
	var gotHonest, gotFlooder int
	r.DoSync(func() { gotHonest, gotFlooder = fromHonest, fromFlooder })
	if gotHonest != honestMsgs {
		t.Fatalf("honest messages replayed = %d, want all %d", gotHonest, honestMsgs)
	}
	if gotFlooder != 4096/4 {
		t.Fatalf("flooder messages replayed = %d, want its %d share", gotFlooder, 4096/4)
	}
}

// TestBufferRouterWideSenderCap spams fresh instances from one sender: the
// router-wide budget must bound the total buffered regardless of how many
// instance names the flooder invents.
func TestBufferRouterWideSenderCap(t *testing.T) {
	nw := netsim.New(2, 0, netsim.NewRandomScheduler(9))
	t.Cleanup(nw.Stop)
	reg := obs.NewRegistry()
	r := engine.NewRouter(nw.Endpoint(0))
	r.SetObserver(reg)
	go r.Run()
	flooder := nw.Endpoint(1)

	const budget = 4 * 4096 // maxBufferedPerSenderTotal
	const flood = budget + 500
	for k := 0; k < flood; k++ {
		flooder.Send(wire.Message{To: 0, Protocol: "p",
			Instance: fmt.Sprintf("fresh-%d", k), Type: "M"})
	}
	deadline := time.Now().Add(30 * time.Second)
	for nw.Stats().Messages["p"] < flood {
		if time.Now().After(deadline) {
			t.Fatalf("flood stuck at %d", nw.Stats().Messages["p"])
		}
		time.Sleep(20 * time.Millisecond)
	}
	fence := make(chan struct{})
	r.DoSync(func() {
		r.Register("p", "fence", func(int, string, []byte) { close(fence) })
	})
	flooder.Send(wire.Message{To: 0, Protocol: "p", Instance: "fence", Type: "F"})
	select {
	case <-fence:
	case <-time.After(20 * time.Second):
		t.Fatal("fence never dispatched")
	}
	if n := reg.Snapshot().Counter("router.buffered.drops"); n != flood-budget {
		t.Fatalf("router.buffered.drops = %d, want %d", n, flood-budget)
	}
}

// TestDecodeMalformedCounted: the router-level decode guard must count
// malformed payloads and report failure without disturbing dispatch.
func TestDecodeMalformedCounted(t *testing.T) {
	nw, r0, r1, _ := pair(t)
	reg := obs.NewRegistry()
	r1.DoSync(func() { r1.SetObserver(reg) })
	got := make(chan bool, 4)
	r1.DoSync(func() {
		r1.Register("p", "i", func(from int, msgType string, payload []byte) {
			var v struct{ K int }
			got <- r1.Decode(payload, &v)
		})
	})
	if err := r0.Send(1, "p", "i", "OK", struct{ K int }{7}); err != nil {
		t.Fatal(err)
	}
	// Garbage bytes straight onto the wire, bypassing Send's marshalling.
	nw.Endpoint(0).Send(wire.Message{To: 1, Protocol: "p", Instance: "i",
		Type: "EVIL", Payload: []byte{0xde, 0xad, 0xbe, 0xef}})
	results := map[bool]int{}
	for i := 0; i < 2; i++ {
		select {
		case ok := <-got:
			results[ok]++
		case <-time.After(5 * time.Second):
			t.Fatal("message never dispatched")
		}
	}
	if results[true] != 1 || results[false] != 1 {
		t.Fatalf("decode results %v, want one success and one failure", results)
	}
	if n := reg.Snapshot().Counter("router.malformed"); n != 1 {
		t.Fatalf("router.malformed = %d, want 1", n)
	}
}

// TestRouterSurvivesHandlerPanic: a handler panic on attacker input is
// recovered, counted, and the router keeps dispatching.
func TestRouterSurvivesHandlerPanic(t *testing.T) {
	_, r0, r1, _ := pair(t)
	reg := obs.NewRegistry()
	r1.DoSync(func() { r1.SetObserver(reg) })
	got := make(chan string, 4)
	r1.DoSync(func() {
		r1.Register("p", "i", func(from int, msgType string, payload []byte) {
			if msgType == "BOOM" {
				panic("attacker payload")
			}
			got <- msgType
		})
	})
	if err := r0.Send(1, "p", "i", "BOOM", struct{}{}); err != nil {
		t.Fatal(err)
	}
	if err := r0.Send(1, "p", "i", "AFTER", struct{}{}); err != nil {
		t.Fatal(err)
	}
	select {
	case mt := <-got:
		if mt != "AFTER" {
			t.Fatalf("got %q, want AFTER", mt)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("router died after handler panic")
	}
	if n := reg.Snapshot().Counter("router.panics"); n != 1 {
		t.Fatalf("router.panics = %d, want 1", n)
	}
}

// feedTransport hands the router a fixed number of identical pre-marshaled
// messages with no network in between — the dispatch hot path in isolation.
type feedTransport struct {
	remaining int
	msg       wire.Message
}

func (f *feedTransport) Self() int         { return 0 }
func (f *feedTransport) N() int            { return 4 }
func (f *feedTransport) Send(wire.Message) {}
func (f *feedTransport) Recv() (wire.Message, bool) {
	if f.remaining == 0 {
		return wire.Message{}, false
	}
	f.remaining--
	return f.msg, true
}
func (f *feedTransport) Close() error { return nil }

// benchmarkDispatch measures end-to-end dispatch of b.N messages into a
// registered no-op handler, with or without an observer.
func benchmarkDispatch(b *testing.B, reg *obs.Registry) {
	payload, _ := wire.MarshalBody(struct{ X int }{1})
	r := engine.NewRouter(&feedTransport{
		remaining: b.N,
		msg:       wire.Message{From: 1, To: 0, Protocol: "p", Instance: "i", Type: "T", Payload: payload},
	})
	r.SetObserver(reg)
	r.Register("p", "i", func(int, string, []byte) {})
	b.ReportAllocs()
	b.ResetTimer()
	r.Run() // returns once the feed is exhausted
}

// BenchmarkRouterDispatch guards the zero-overhead contract: the Off case
// must not regress, and Off vs On shows the full cost of observability.
// CI runs both as a smoke check.
func BenchmarkRouterDispatch(b *testing.B) {
	b.Run("Off", func(b *testing.B) { benchmarkDispatch(b, nil) })
	b.Run("On", func(b *testing.B) { benchmarkDispatch(b, obs.NewRegistry()) })
}

// splitPair is pair() with explicit verify-pool sizing on r1.
func splitPair(t *testing.T, workers int) (*netsim.Network, *engine.Router, *engine.Router) {
	t.Helper()
	nw := netsim.New(2, 0, netsim.NewRandomScheduler(1))
	r0 := engine.NewRouter(nw.Endpoint(0))
	r1 := engine.NewRouter(nw.Endpoint(1))
	r1.SetVerifyWorkers(workers)
	var wg sync.WaitGroup
	for _, r := range []*engine.Router{r0, r1} {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			r.Run()
		}()
	}
	t.Cleanup(func() {
		nw.Stop()
		wg.Wait()
	})
	return nw, r0, r1
}

// TestSplitHandlerVerdictFlows: the Verify stage's verdict must reach
// Apply for listed types, and unlisted types must skip Verify with a nil
// verdict.
func TestSplitHandlerVerdictFlows(t *testing.T) {
	_, r0, r1 := splitPair(t, 2)
	type seen struct {
		msgType string
		verdict any
	}
	got := make(chan seen, 8)
	r1.DoSync(func() {
		r1.RegisterSplit("p", "i", engine.SplitHandler{
			Verify: func(from int, msgType string, payload []byte) any {
				return "verified:" + msgType
			},
			Apply: func(from int, msgType string, payload []byte, verdict any) {
				got <- seen{msgType, verdict}
			},
			VerifyTypes: []string{"HEAVY"},
		})
	})
	r0.Send(1, "p", "i", "HEAVY", struct{}{})
	r0.Send(1, "p", "i", "LIGHT", struct{}{})
	want := map[string]any{"HEAVY": "verified:HEAVY", "LIGHT": nil}
	for len(want) > 0 {
		select {
		case s := <-got:
			w, ok := want[s.msgType]
			if !ok {
				t.Fatalf("unexpected type %q", s.msgType)
			}
			if s.verdict != w {
				t.Fatalf("%s: verdict %v, want %v", s.msgType, s.verdict, w)
			}
			delete(want, s.msgType)
		case <-time.After(5 * time.Second):
			t.Fatalf("still waiting for %v", want)
		}
	}
}

// TestSplitHandlerDisabledPoolNilVerdict: with the pool off, Verify must
// never run and Apply sees nil verdicts (the inline-verification path).
func TestSplitHandlerDisabledPoolNilVerdict(t *testing.T) {
	_, r0, r1 := splitPair(t, 0)
	got := make(chan any, 4)
	r1.DoSync(func() {
		r1.RegisterSplit("p", "i", engine.SplitHandler{
			Verify: func(int, string, []byte) any {
				t.Error("Verify ran with pool disabled")
				return "bad"
			},
			Apply: func(_ int, _ string, _ []byte, verdict any) {
				got <- verdict
			},
			VerifyTypes: []string{"HEAVY"},
		})
	})
	r0.Send(1, "p", "i", "HEAVY", struct{}{})
	select {
	case v := <-got:
		if v != nil {
			t.Fatalf("verdict %v, want nil", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("message never applied")
	}
}

// seqFeedTransport hands the router `count` numbered messages in strict
// sequence — a deterministic arrival order, unlike the randomized netsim
// schedulers.
type seqFeedTransport struct {
	next, count int
}

func (f *seqFeedTransport) Self() int         { return 0 }
func (f *seqFeedTransport) N() int            { return 4 }
func (f *seqFeedTransport) Send(wire.Message) {}
func (f *seqFeedTransport) Recv() (wire.Message, bool) {
	if f.next == f.count {
		return wire.Message{}, false
	}
	k := f.next
	f.next++
	return wire.Message{From: 1, To: 0, Protocol: "p", Instance: "i", Type: "M",
		Payload: wire.MustMarshalBody(struct{ K int }{k})}, true
}
func (f *seqFeedTransport) Close() error { return nil }

// TestSplitApplyPreservesArrivalOrder: slow verifications must not
// reorder applies — the pipeline's core ordering contract. The feed
// closes after the last message, so this also covers the shutdown drain.
func TestSplitApplyPreservesArrivalOrder(t *testing.T) {
	const msgs = 64
	r := engine.NewRouter(&seqFeedTransport{count: msgs})
	r.SetVerifyWorkers(4)
	var order []int
	r.RegisterSplit("p", "i", engine.SplitHandler{
		Verify: func(from int, msgType string, payload []byte) any {
			var b struct{ K int }
			if !r.Decode(payload, &b) {
				return nil
			}
			// Early messages verify slowest: without the ordered apply
			// queue they would finish (and apply) last.
			time.Sleep(time.Duration(msgs-b.K) * 100 * time.Microsecond)
			return b.K
		},
		Apply: func(_ int, _ string, _ []byte, verdict any) {
			order = append(order, verdict.(int))
		},
		VerifyTypes: []string{"M"},
	})
	r.Run() // returns after draining every admitted message
	if len(order) != msgs {
		t.Fatalf("applied %d messages, want %d", len(order), msgs)
	}
	for i, k := range order {
		if i != k {
			t.Fatalf("apply order %v diverges from arrival order at %d", order[:i+1], i)
		}
	}
}

// TestSplitVerifyPanicFallsBack: a panic in Verify must leave the router
// alive and hand Apply a nil verdict.
func TestSplitVerifyPanicFallsBack(t *testing.T) {
	_, r0, r1 := splitPair(t, 2)
	reg := obs.NewRegistry()
	r1.DoSync(func() { r1.SetObserver(reg) })
	got := make(chan any, 4)
	r1.DoSync(func() {
		r1.RegisterSplit("p", "i", engine.SplitHandler{
			Verify: func(int, string, []byte) any { panic("attacker bytes") },
			Apply: func(_ int, _ string, _ []byte, verdict any) {
				got <- verdict
			},
			VerifyTypes: []string{"BOOM"},
		})
	})
	r0.Send(1, "p", "i", "BOOM", struct{}{})
	select {
	case v := <-got:
		if v != nil {
			t.Fatalf("verdict %v after verify panic, want nil", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("message lost after verify panic")
	}
	snap := reg.Snapshot()
	if n := snap.Counter("engine.verify.panics"); n != 1 {
		t.Fatalf("engine.verify.panics = %d, want 1", n)
	}
	if n := snap.Counter("router.panics"); n != 0 {
		t.Fatalf("router.panics = %d, want 0 (verify panics are counted separately)", n)
	}
}

// TestSplitUnregisterDropsPending: tombstoning an instance while messages
// wait for verdicts must drop those applies.
func TestSplitUnregisterDropsPending(t *testing.T) {
	_, r0, r1 := splitPair(t, 1)
	release := make(chan struct{})
	applied := make(chan string, 8)
	r1.DoSync(func() {
		r1.RegisterSplit("p", "i", engine.SplitHandler{
			Verify: func(_ int, msgType string, _ []byte) any {
				<-release
				return msgType
			},
			Apply: func(_ int, msgType string, _ []byte, _ any) {
				applied <- msgType
			},
			VerifyTypes: []string{"SLOW"},
		})
	})
	r0.Send(1, "p", "i", "SLOW", struct{}{})
	time.Sleep(50 * time.Millisecond) // let the message reach the verify stage
	r1.DoSync(func() { r1.Unregister("p", "i") })
	close(release)
	select {
	case mt := <-applied:
		t.Fatalf("tombstoned instance applied %q", mt)
	case <-time.After(300 * time.Millisecond):
	}
}

// TestSplitPipelineMetrics: the engine.verify.* instruments must account
// for every verified message, and dispatch latency must still be observed
// exactly once per message.
func TestSplitPipelineMetrics(t *testing.T) {
	_, r0, r1 := splitPair(t, 2)
	reg := obs.NewRegistry()
	r1.DoSync(func() { r1.SetObserver(reg) })
	got := make(chan struct{}, 16)
	r1.DoSync(func() {
		r1.RegisterSplit("p", "i", engine.SplitHandler{
			Verify: func(int, string, []byte) any {
				time.Sleep(2 * time.Millisecond)
				return true
			},
			Apply:       func(int, string, []byte, any) { got <- struct{}{} },
			VerifyTypes: []string{"V"},
		})
	})
	const sends = 10
	for k := 0; k < sends; k++ {
		if err := r0.Send(1, "p", "i", "V", struct{}{}); err != nil {
			t.Fatal(err)
		}
	}
	for k := 0; k < sends; k++ {
		select {
		case <-got:
		case <-time.After(5 * time.Second):
			t.Fatal("message never applied")
		}
	}
	snap := reg.Snapshot()
	if n := snap.Counter("engine.verify.messages"); n != sends {
		t.Fatalf("engine.verify.messages = %d, want %d", n, sends)
	}
	if h := snap.Histograms["engine.verify.latency"]; h.Count != sends {
		t.Fatalf("verify latency observations = %d, want %d", h.Count, sends)
	}
	if h := snap.Histograms["engine.apply.latency"]; h.Count != sends {
		t.Fatalf("apply latency observations = %d, want %d", h.Count, sends)
	}
	if h := snap.Histograms["router.dispatch.latency"]; h.Count != sends {
		t.Fatalf("dispatch latency observations = %d, want %d", h.Count, sends)
	}
	if g := snap.Gauges["engine.verify.parallelism"]; g.Max < 1 {
		t.Fatalf("engine.verify.parallelism high-water = %d, want >= 1", g.Max)
	}
}

// batchPair builds a two-party network whose receiving router runs one
// verify worker with the given coalescing cap — a single worker makes
// the backlog (and therefore the batch drain) controllable from tests.
func batchPair(t *testing.T, batch int) (*engine.Router, *engine.Router, *obs.Registry) {
	t.Helper()
	nw := netsim.New(2, 0, netsim.NewRandomScheduler(1))
	r0 := engine.NewRouter(nw.Endpoint(0))
	r1 := engine.NewRouter(nw.Endpoint(1))
	r1.SetVerifyWorkers(1)
	r1.SetVerifyBatch(batch)
	reg := obs.NewRegistry()
	r1.SetObserver(reg)
	var wg sync.WaitGroup
	for _, r := range []*engine.Router{r0, r1} {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			r.Run()
		}()
	}
	t.Cleanup(func() {
		nw.Stop()
		wg.Wait()
	})
	return r0, r1, reg
}

// batchBody is the payload of the coalescing tests.
type batchBody struct{ K int }

// waitCounter polls a registry counter until it reaches want.
func waitCounter(t *testing.T, reg *obs.Registry, name string, want int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for reg.Snapshot().Counter(name) < want {
		if time.Now().After(deadline) {
			t.Fatalf("%s = %d, want >= %d", name, reg.Snapshot().Counter(name), want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestBatchVerifyCoalescesBacklog: while the single verify worker is
// stuck in message 0's Verify, the following same-type messages pile up
// and must drain as one BatchVerify call, with the batch metrics
// accounting for every coalesced message and reported culprit.
func TestBatchVerifyCoalescesBacklog(t *testing.T) {
	r0, r1, reg := batchPair(t, 0)
	release := make(chan struct{})
	type seen struct {
		k       int
		verdict any
	}
	got := make(chan seen, 16)
	var mu sync.Mutex
	var batchSizes []int
	r1.DoSync(func() {
		r1.RegisterSplit("p", "i", engine.SplitHandler{
			Verify: func(_ int, _ string, payload []byte) any {
				var b batchBody
				if !r1.Decode(payload, &b) {
					return nil
				}
				if b.K == 0 {
					<-release
				}
				return fmt.Sprintf("single:%d", b.K)
			},
			BatchVerify: func(msgs []*wire.Message) ([]any, int) {
				mu.Lock()
				batchSizes = append(batchSizes, len(msgs))
				mu.Unlock()
				verdicts := make([]any, len(msgs))
				for i, m := range msgs {
					var b batchBody
					if !r1.Decode(m.Payload, &b) {
						continue
					}
					verdicts[i] = fmt.Sprintf("batch:%d", b.K)
				}
				return verdicts, 1 // one pretend culprit per call
			},
			Apply: func(_ int, _ string, payload []byte, verdict any) {
				var b batchBody
				if !r1.Decode(payload, &b) {
					return
				}
				got <- seen{b.K, verdict}
			},
			VerifyTypes: []string{"V"},
		})
	})
	const sends = 7
	r0.Send(1, "p", "i", "V", batchBody{K: 0})
	waitCounter(t, reg, "engine.verify.messages", 0) // r1 running
	for k := 1; k < sends; k++ {
		r0.Send(1, "p", "i", "V", batchBody{K: k})
	}
	// All trailing sends must be admitted (queued behind the blocked
	// worker) before it wakes up and drains them in one pass.
	waitCounter(t, reg, "router.dispatched", sends)
	time.Sleep(20 * time.Millisecond)
	close(release)
	for k := 0; k < sends; k++ {
		select {
		case s := <-got:
			single := fmt.Sprintf("single:%d", s.k)
			batched := fmt.Sprintf("batch:%d", s.k)
			if s.verdict != single && s.verdict != batched {
				t.Fatalf("message %d: verdict %v", s.k, s.verdict)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("message never applied")
		}
	}
	mu.Lock()
	calls, total := len(batchSizes), 0
	for _, n := range batchSizes {
		total += n
	}
	mu.Unlock()
	if calls == 0 {
		t.Fatal("backlog never coalesced into a BatchVerify call")
	}
	snap := reg.Snapshot()
	if n := snap.Counter("engine.verify.batch.batches"); n != int64(calls) {
		t.Fatalf("engine.verify.batch.batches = %d, want %d", n, calls)
	}
	if n := snap.Counter("engine.verify.batch.messages"); n != int64(total) {
		t.Fatalf("engine.verify.batch.messages = %d, want %d", n, total)
	}
	if n := snap.Counter("engine.verify.batch.culprits"); n != int64(calls) {
		t.Fatalf("engine.verify.batch.culprits = %d, want %d", n, calls)
	}
	if n := snap.Counter("engine.verify.messages"); n != sends {
		t.Fatalf("engine.verify.messages = %d, want %d", n, sends)
	}
}

// TestBatchVerifyDisabledKnob: SetVerifyBatch(-1) must route every
// message through per-message Verify even under a backlog.
func TestBatchVerifyDisabledKnob(t *testing.T) {
	r0, r1, reg := batchPair(t, -1)
	release := make(chan struct{})
	got := make(chan any, 16)
	r1.DoSync(func() {
		r1.RegisterSplit("p", "i", engine.SplitHandler{
			Verify: func(_ int, _ string, payload []byte) any {
				var b batchBody
				if !r1.Decode(payload, &b) {
					return nil
				}
				if b.K == 0 {
					<-release
				}
				return b.K
			},
			BatchVerify: func(msgs []*wire.Message) ([]any, int) {
				t.Error("BatchVerify ran with batching disabled")
				return make([]any, len(msgs)), 0
			},
			Apply: func(_ int, _ string, _ []byte, verdict any) {
				got <- verdict
			},
			VerifyTypes: []string{"V"},
		})
	})
	const sends = 5
	for k := 0; k < sends; k++ {
		r0.Send(1, "p", "i", "V", batchBody{K: k})
	}
	waitCounter(t, reg, "router.dispatched", sends)
	time.Sleep(20 * time.Millisecond)
	close(release)
	for k := 0; k < sends; k++ {
		select {
		case v := <-got:
			if v == nil {
				t.Fatal("nil verdict on the per-message path")
			}
		case <-time.After(5 * time.Second):
			t.Fatal("message never applied")
		}
	}
	if n := reg.Snapshot().Counter("engine.verify.batch.batches"); n != 0 {
		t.Fatalf("engine.verify.batch.batches = %d, want 0", n)
	}
}

// TestBatchVerifyPanicFallsBack: a panic inside BatchVerify must leave
// the router alive and every coalesced message applying with a nil
// verdict (the inline-verification fallback), counted like a verify
// panic — router.panics stays 0.
func TestBatchVerifyPanicFallsBack(t *testing.T) {
	r0, r1, reg := batchPair(t, 0)
	release := make(chan struct{})
	type seen struct {
		k       int
		verdict any
	}
	got := make(chan seen, 16)
	r1.DoSync(func() {
		r1.RegisterSplit("p", "i", engine.SplitHandler{
			Verify: func(_ int, _ string, payload []byte) any {
				var b batchBody
				if !r1.Decode(payload, &b) {
					return nil
				}
				if b.K == 0 {
					<-release
				}
				return fmt.Sprintf("single:%d", b.K)
			},
			BatchVerify: func(msgs []*wire.Message) ([]any, int) {
				panic("attacker bytes in a batch")
			},
			Apply: func(_ int, _ string, payload []byte, verdict any) {
				var b batchBody
				if !r1.Decode(payload, &b) {
					return
				}
				got <- seen{b.K, verdict}
			},
			VerifyTypes: []string{"V"},
		})
	})
	const sends = 6
	r0.Send(1, "p", "i", "V", batchBody{K: 0})
	for k := 1; k < sends; k++ {
		r0.Send(1, "p", "i", "V", batchBody{K: k})
	}
	waitCounter(t, reg, "router.dispatched", sends)
	time.Sleep(20 * time.Millisecond)
	close(release)
	sawNil := false
	for k := 0; k < sends; k++ {
		select {
		case s := <-got:
			if s.verdict == nil {
				sawNil = true
			} else if s.verdict != fmt.Sprintf("single:%d", s.k) {
				t.Fatalf("message %d: verdict %v", s.k, s.verdict)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("message lost after batch-verify panic")
		}
	}
	snap := reg.Snapshot()
	if snap.Counter("engine.verify.panics") >= 1 && !sawNil {
		t.Fatal("batch panicked but no message fell back to a nil verdict")
	}
	if n := snap.Counter("router.panics"); n != 0 {
		t.Fatalf("router.panics = %d, want 0", n)
	}
}

// TestBatchVerifyWrongVerdictCount: a BatchVerify returning the wrong
// number of verdicts must degrade every message of the batch to the
// nil-verdict fallback rather than misassigning verdicts.
func TestBatchVerifyWrongVerdictCount(t *testing.T) {
	r0, r1, reg := batchPair(t, 0)
	release := make(chan struct{})
	got := make(chan any, 16)
	var batched int64
	r1.DoSync(func() {
		r1.RegisterSplit("p", "i", engine.SplitHandler{
			Verify: func(_ int, _ string, payload []byte) any {
				var b batchBody
				if !r1.Decode(payload, &b) {
					return nil
				}
				if b.K == 0 {
					<-release
				}
				return "single"
			},
			BatchVerify: func(msgs []*wire.Message) ([]any, int) {
				atomic.AddInt64(&batched, 1)
				return []any{"only-one"}, 0 // wrong length on purpose
			},
			Apply: func(_ int, _ string, _ []byte, verdict any) {
				got <- verdict
			},
			VerifyTypes: []string{"V"},
		})
	})
	const sends = 6
	r0.Send(1, "p", "i", "V", batchBody{K: 0})
	for k := 1; k < sends; k++ {
		r0.Send(1, "p", "i", "V", batchBody{K: k})
	}
	waitCounter(t, reg, "router.dispatched", sends)
	time.Sleep(20 * time.Millisecond)
	close(release)
	for k := 0; k < sends; k++ {
		select {
		case v := <-got:
			if v != nil && v != "single" {
				t.Fatalf("verdict %v leaked from a mismatched batch", v)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("message never applied")
		}
	}
	if atomic.LoadInt64(&batched) > 0 {
		if n := reg.Snapshot().Counter("engine.verify.batch.culprits"); n != 0 {
			t.Fatalf("culprits = %d from a discarded batch result", n)
		}
	}
}

// TestTombstonesBounded is the regression test for the unbounded
// Unregister leak: before the bounded tombstone set, every finished
// instance kept its full state struct alive forever. 10k register/
// unregister cycles must leave both the instance map and the tombstone
// set bounded.
func TestTombstonesBounded(t *testing.T) {
	_, _, r1, _ := pair(t)
	const cycles = 10000
	var instances, tombstones int
	r1.DoSync(func() {
		for i := 0; i < cycles; i++ {
			inst := fmt.Sprintf("cycle-%d", i)
			r1.Register("leak", inst, func(int, string, []byte) {})
			r1.Unregister("leak", inst)
		}
		instances, tombstones = r1.Sizes()
	})
	if instances != 0 {
		t.Fatalf("instance map holds %d entries after unregistering all", instances)
	}
	if tombstones > 4096 {
		t.Fatalf("tombstone set grew to %d entries (want bounded)", tombstones)
	}
	// Compaction below a GC horizon empties the set entirely.
	r1.DoSync(func() {
		r1.CompactTombstones(func(protocol, instance string) bool { return true })
		_, tombstones = r1.Sizes()
	})
	if tombstones != 0 {
		t.Fatalf("tombstones after full compaction: %d", tombstones)
	}
}
