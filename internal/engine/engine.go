// Package engine provides the per-party protocol runtime: a Router that
// multiplexes one transport among many protocol instances.
//
// Every protocol execution (one reliable broadcast, one binary agreement,
// one atomic-broadcast round, ...) is addressed by (protocol, instance).
// All protocol code of one party — message handlers, buffered-message
// replay, instance construction, and cross-instance callbacks (a binary
// agreement deciding into its parent multi-valued agreement, for example)
// — executes on a single dispatch goroutine, so protocol instances are
// plain single-threaded state machines with no internal locking. Outbound
// sends go through the thread-safe transport.
//
// # Verification pipeline
//
// Message processing is split into two stages. The Verify stage is a pure
// function of the message bytes and public key material — decode, check a
// DLEQ proof, a threshold signature share, a ciphertext consistency proof
// — and runs on a pool of worker goroutines, so the expensive public-key
// operations of concurrent protocol instances overlap on multicore
// hardware. The Apply stage consumes the Verify stage's verdict and
// mutates protocol state; it runs on the single dispatch goroutine, in
// arrival order, preserving the single-threaded state machine model.
// Handlers registered through Register are single-stage (Apply only);
// RegisterSplit installs a two-stage handler for the message types whose
// verification dominates. When the pool is disabled (SetVerifyWorkers(0))
// every message is applied with a nil verdict and split handlers fall
// back to verifying inline — the two paths are behaviorally identical,
// which the equivalence tests at the repository root assert.
//
// External goroutines (clients, tests) interact with protocol state only
// through Do/DoSync, which run a closure on the dispatch goroutine.
// Messages that arrive before their instance is registered are buffered
// and replayed on registration, which is essential in an asynchronous
// network where a fast party's messages may overtake the event that
// creates the instance locally.
package engine

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"sintra/internal/obs"
	"sintra/internal/wire"
)

// maxBufferedPerInstance bounds the early-arrival buffer of one instance.
// Honest traffic never comes close: it exists to stop corrupted parties
// from exhausting memory with messages for instances that never start.
//
// The budget is split into per-sender quotas (maxBufferedPerInstance / n),
// so one flooding party exhausts only its own share and cannot evict
// honest parties' buffered messages. A sender over quota loses its own
// oldest message; a sender over the instance total (possible only with
// more distinct sender ids than servers, e.g. forged client ids) evicts
// from whichever sender holds the most.
const maxBufferedPerInstance = 4096

// maxBufferedPerSenderTotal bounds one sender's buffered messages across
// ALL unregistered instances of the router, so a corrupted party cannot
// sidestep the per-instance quota by spamming fresh instance names.
const maxBufferedPerSenderTotal = 4 * maxBufferedPerInstance

// verifyQueueCap bounds the number of messages waiting for a verify
// worker. When the pool falls this far behind, further messages degrade
// to apply-time verification instead of blocking the dispatch goroutine
// (counted by engine.verify.degraded).
const verifyQueueCap = 1024

// Handler processes one inbound message of an instance, on the dispatch
// goroutine.
type Handler func(from int, msgType string, payload []byte)

// VerifyFunc is the parallel first stage of a split handler. It must be a
// pure function of the message and immutable key material: it runs on a
// worker goroutine, concurrently with the dispatch goroutine and with
// other verifications, and must not touch protocol state. It returns an
// opaque verdict for the Apply stage; returning nil means "no verdict"
// and obliges Apply to verify the message itself.
type VerifyFunc func(from int, msgType string, payload []byte) any

// ApplyFunc is the serialized second stage: it consumes the verdict and
// mutates protocol state on the dispatch goroutine, in arrival order.
// verdict is nil whenever the Verify stage did not run — replayed
// early-arrival messages, a disabled or saturated worker pool, a panic in
// Verify — so Apply must treat nil as "verify inline", never as valid.
type ApplyFunc func(from int, msgType string, payload []byte, verdict any)

// BatchVerifyFunc is the coalescing variant of VerifyFunc: it checks a
// burst of same-type messages of one instance in a single call — e.g.
// one folded product test over k coin shares instead of k independent
// proof verifications. It returns one verdict per message (parallel to
// msgs, nil = "no verdict, Apply verifies inline") plus the number of
// invalid messages found, which feeds the engine.verify.batch.culprits
// metric. The same purity rules as VerifyFunc apply.
type BatchVerifyFunc func(msgs []*wire.Message) ([]any, int)

// SplitHandler is a two-stage handler: Verify runs in parallel for the
// message types listed in VerifyTypes, Apply runs serialized for every
// message of the instance. Types not in VerifyTypes skip straight to
// Apply with a nil verdict. An optional BatchVerify lets a verify
// worker coalesce a backlog burst of one type into a single call;
// handlers must remain correct without it (single messages and
// saturated or disabled batching still go through Verify or inline
// apply-time verification).
type SplitHandler struct {
	Verify      VerifyFunc
	BatchVerify BatchVerifyFunc
	Apply       ApplyFunc
	VerifyTypes []string
}

// Factory creates a handler on demand for an instance that receives its
// first message before being registered explicitly. Factories run on the
// dispatch goroutine; the router registers the returned handler itself.
type Factory func(instance string) Handler

type instanceKey struct {
	protocol string
	instance string
}

// boundHandler is the installed form of a handler: single-stage handlers
// have only apply; split handlers add verify and the type set.
type boundHandler struct {
	apply       ApplyFunc
	verify      VerifyFunc
	batchVerify BatchVerifyFunc
	verifyTypes map[string]bool
}

// instanceState is the per-instance bookkeeping (dispatch goroutine only).
type instanceState struct {
	handler  *boundHandler
	buffered []wire.Message
	// perSender counts buffered messages by sender, enforcing the
	// per-sender share of maxBufferedPerInstance.
	perSender map[int]int
}

// maxTombstones bounds the set of remembered finished instances. Older
// tombstones fall off FIFO: a straggler message for a forgotten instance
// merely re-enters the early-arrival buffer under its sender's quota, so
// eviction trades a little buffered memory for a hard bound here.
const maxTombstones = 4096

// applyCell is one admitted message waiting for its serialized apply.
// done is closed when the verdict is available; cells that skip the
// Verify stage share a pre-closed channel and allocate nothing extra.
type applyCell struct {
	m       wire.Message
	key     instanceKey
	verify  VerifyFunc
	bh      *boundHandler // for batch grouping by (handler, type)
	verdict any
	done    chan struct{}
	start   time.Time
}

// closedCh is the shared done channel of cells with no Verify stage.
var closedCh = func() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}()

// Router multiplexes a party's transport among protocol instances.
type Router struct {
	tr wire.Transport

	// Dispatch-goroutine state; no lock needed.
	instances map[instanceKey]*instanceState
	// tombstones remembers finished instances so their late traffic is
	// dropped, without keeping the full instanceState alive. tombOrder and
	// tombHead implement bounded FIFO eviction (maxTombstones).
	tombstones map[instanceKey]struct{}
	tombOrder  []instanceKey
	tombHead   int
	// bufferedBySender counts buffered early-arrival messages per sender
	// across all instances (the maxBufferedPerSenderTotal guard).
	bufferedBySender map[int]int
	// applyQ is the FIFO of admitted messages whose apply is pending;
	// the head is applied as soon as its verdict is ready, so arrival
	// order is preserved no matter how verifications reorder.
	applyQ []*applyCell

	factoryMu sync.Mutex
	factories map[string]Factory

	tasks chan func()
	inCh  chan wire.Message
	done  chan struct{}

	// verifyWorkers is the Verify-stage pool size; 0 disables the pool.
	// Set before Run (SetVerifyWorkers); read only by Run.
	verifyWorkers int
	// verifyBatch is the coalescing cap of one verify-worker drain
	// (SetVerifyBatch); immutable once the workers start.
	verifyBatch int
	verifyCh    chan *applyCell
	workerWg    sync.WaitGroup

	mx *routerMetrics // nil when observability is off

	// journal, when set, durably records slot-keyed outbound messages
	// before first transmission (SendJournaled/BroadcastJournaled). Set
	// before Run; the implementation must be safe from any goroutine.
	journal Journal
}

// Journal durably records protocol-critical outbound messages before
// their first transmission. RecordOutbound returns the bytes to
// actually put on the wire: for a fresh slot the given payload (now
// durable); for a slot already journaled — a recovered replica
// re-deciding the same step — the original bytes, so the replica can
// only repeat itself, never contradict itself. An error means the
// record is not durable and the message must not be sent at all.
type Journal interface {
	RecordOutbound(protocol, instance, msgType, slot string, payload []byte) (send []byte, replayed bool, err error)
}

// routerMetrics holds the router's instruments. The per-(protocol,type)
// counter cache is touched only on the dispatch goroutine, so it needs no
// lock; the counters themselves are atomic and read from anywhere.
type routerMetrics struct {
	reg             *obs.Registry
	dispatchLatency *obs.Histogram
	verifyLatency   *obs.Histogram
	applyLatency    *obs.Histogram
	parallelism     *obs.Gauge
	dispatched      *obs.Counter
	verified        *obs.Counter
	degraded        *obs.Counter
	verifyPanics    *obs.Counter
	batchBatches    *obs.Counter
	batchMessages   *obs.Counter
	batchCulprits   *obs.Counter
	taskDepth       *obs.Gauge
	bufferDepth     *obs.Gauge
	bufferDrops     *obs.Counter
	malformed       *obs.Counter
	panics          *obs.Counter
	tombstones      *obs.Gauge
	journalRecords  *obs.Counter
	journalReplayed *obs.Counter
	journalDrops    *obs.Counter

	counts map[ptKey]*obs.Counter
}

type ptKey struct{ protocol, msgType string }

// count bumps the per-(protocol,type) message counter. Dispatch goroutine
// only.
func (m *routerMetrics) count(protocol, msgType string) {
	k := ptKey{protocol, msgType}
	c, ok := m.counts[k]
	if !ok {
		c = m.reg.Counter("router.recv." + protocol + "." + msgType)
		m.counts[k] = c
	}
	c.Inc()
}

// SetObserver wires the router's metrics into reg. Call before Run (a nil
// registry leaves observability off).
//
// router.dispatch.latency spans admission to apply-completion of one
// message; engine.verify.latency and engine.apply.latency time the two
// pipeline stages separately, and the high-water mark of the
// engine.verify.parallelism gauge records how many verifications actually
// overlapped.
func (r *Router) SetObserver(reg *obs.Registry) {
	if reg == nil {
		r.mx = nil
		return
	}
	r.mx = &routerMetrics{
		reg:             reg,
		dispatchLatency: reg.Histogram("router.dispatch.latency"),
		verifyLatency:   reg.Histogram("engine.verify.latency"),
		applyLatency:    reg.Histogram("engine.apply.latency"),
		parallelism:     reg.Gauge("engine.verify.parallelism"),
		dispatched:      reg.Counter("router.dispatched"),
		verified:        reg.Counter("engine.verify.messages"),
		degraded:        reg.Counter("engine.verify.degraded"),
		verifyPanics:    reg.Counter("engine.verify.panics"),
		batchBatches:    reg.Counter("engine.verify.batch.batches"),
		batchMessages:   reg.Counter("engine.verify.batch.messages"),
		batchCulprits:   reg.Counter("engine.verify.batch.culprits"),
		taskDepth:       reg.Gauge("router.tasks.depth"),
		bufferDepth:     reg.Gauge("router.buffered.depth"),
		bufferDrops:     reg.Counter("router.buffered.drops"),
		malformed:       reg.Counter("router.malformed"),
		panics:          reg.Counter("router.panics"),
		tombstones:      reg.Gauge("engine.tombstones"),
		journalRecords:  reg.Counter("wal.records"),
		journalReplayed: reg.Counter("wal.replayed"),
		journalDrops:    reg.Counter("wal.dropped"),
		counts:          make(map[ptKey]*obs.Counter),
	}
}

// SetJournal installs the outbound-message journal. Call before Run.
// With a journal installed, SendJournaled/BroadcastJournaled enforce
// the journal-before-send invariant; without one they degrade to plain
// Send/Broadcast (volatile deployments, tests).
func (r *Router) SetJournal(j Journal) { r.journal = j }

// NewRouter wraps a transport. Call Run (usually in a goroutine) to start
// dispatching. The Verify-stage worker pool defaults to GOMAXPROCS when
// at least two processors are available; on a single processor the pool
// cannot run verifications in parallel with dispatch, so its handoff
// overhead buys nothing and the default is the inline (disabled) path.
func NewRouter(tr wire.Transport) *Router {
	return &Router{
		tr:               tr,
		instances:        make(map[instanceKey]*instanceState),
		tombstones:       make(map[instanceKey]struct{}),
		bufferedBySender: make(map[int]int),
		factories:        make(map[string]Factory),
		tasks:            make(chan func(), 256),
		inCh:             make(chan wire.Message, 1),
		done:             make(chan struct{}),
		verifyWorkers:    defaultVerifyWorkers(),
	}
}

// defaultVerifyWorkers sizes the pool off the available parallelism.
func defaultVerifyWorkers() int {
	if n := runtime.GOMAXPROCS(0); n > 1 {
		return n
	}
	return 0
}

// SetVerifyWorkers sizes the Verify-stage worker pool; 0 disables it, in
// which case split handlers verify inline during Apply. Call before Run.
func (r *Router) SetVerifyWorkers(n int) {
	if n < 0 {
		n = 0
	}
	r.verifyWorkers = n
}

// defaultVerifyBatch caps one verify-worker drain. Under queue pressure
// a worker coalesces up to this many pending messages into one pass;
// bursts in the protocols here are share floods of n-party instances,
// so the default comfortably covers realistic n while bounding how much
// work one batch holds back from the other workers.
const defaultVerifyBatch = 16

// SetVerifyBatch sets how many queued messages one verify worker may
// coalesce into a single BatchVerify call: 0 selects the default,
// a negative value disables coalescing (every message verifies
// individually — the always-correct fallback path), and a positive
// value caps the batch. Call before Run.
func (r *Router) SetVerifyBatch(n int) {
	switch {
	case n == 0:
		r.verifyBatch = 0
	case n < 0:
		r.verifyBatch = 1
	default:
		r.verifyBatch = n
	}
}

// verifyBatchCap resolves the knob at Run time.
func (r *Router) verifyBatchCap() int {
	if r.verifyBatch == 0 {
		return defaultVerifyBatch
	}
	return r.verifyBatch
}

// Self returns the local party index.
func (r *Router) Self() int { return r.tr.Self() }

// Observer returns the registry installed by SetObserver — the hook the
// protocol layers use to report through the router they already hold. It
// is nil (the no-op default) when observability is off.
func (r *Router) Observer() *obs.Registry {
	if r.mx == nil {
		return nil
	}
	return r.mx.reg
}

// N returns the number of servers.
func (r *Router) N() int { return r.tr.N() }

// state returns (creating if needed) the instance state. Dispatch
// goroutine only.
func (r *Router) state(key instanceKey) *instanceState {
	st, ok := r.instances[key]
	if !ok {
		st = &instanceState{}
		r.instances[key] = st
	}
	return st
}

// Register installs a single-stage handler for one instance and replays
// any buffered messages for it. It must run on the dispatch goroutine
// (inside a handler, a factory, or a Do task) or before Run starts.
func (r *Router) Register(protocol, instance string, h Handler) {
	r.register(protocol, instance, &boundHandler{
		apply: func(from int, msgType string, payload []byte, _ any) {
			h(from, msgType, payload)
		},
	})
}

// RegisterSplit installs a two-stage handler: h.Verify runs on the worker
// pool for the message types in h.VerifyTypes, h.Apply runs serialized on
// the dispatch goroutine for every message. Buffered messages replay
// through Apply with a nil verdict. Same calling rules as Register.
func (r *Router) RegisterSplit(protocol, instance string, h SplitHandler) {
	bh := &boundHandler{apply: h.Apply, verify: h.Verify, batchVerify: h.BatchVerify}
	if h.Verify != nil && len(h.VerifyTypes) > 0 {
		bh.verifyTypes = make(map[string]bool, len(h.VerifyTypes))
		for _, t := range h.VerifyTypes {
			bh.verifyTypes[t] = true
		}
	}
	r.register(protocol, instance, bh)
}

func (r *Router) register(protocol, instance string, bh *boundHandler) {
	key := instanceKey{protocol, instance}
	if _, dead := r.tombstones[key]; dead {
		return
	}
	st := r.state(key)
	st.handler = bh
	replay := st.buffered
	r.releaseBuffered(st)
	for i := range replay {
		m := &replay[i]
		bh.apply(m.From, m.Type, m.Payload, nil)
	}
}

// Unregister tombstones an instance; further messages for it are dropped,
// which garbage-collects finished protocol executions. The full per-
// instance state (handler, buffers) is released immediately — only the
// instance key survives, in a bounded tombstone set. Dispatch goroutine
// only.
func (r *Router) Unregister(protocol, instance string) {
	key := instanceKey{protocol, instance}
	if st, ok := r.instances[key]; ok {
		r.releaseBuffered(st)
		delete(r.instances, key)
	}
	r.addTombstone(key)
}

// addTombstone records a finished instance, evicting the oldest
// tombstones past maxTombstones. Dispatch goroutine only.
func (r *Router) addTombstone(key instanceKey) {
	if _, ok := r.tombstones[key]; ok {
		return
	}
	r.tombstones[key] = struct{}{}
	r.tombOrder = append(r.tombOrder, key)
	for len(r.tombstones) > maxTombstones {
		delete(r.tombstones, r.tombOrder[r.tombHead])
		r.tombHead++
	}
	// Compact the FIFO backing array once the dead prefix dominates, so
	// the slice itself stays bounded too.
	if r.tombHead > 1024 && r.tombHead*2 >= len(r.tombOrder) {
		r.tombOrder = append(r.tombOrder[:0:0], r.tombOrder[r.tombHead:]...)
		r.tombHead = 0
	}
	if r.mx != nil {
		r.mx.tombstones.Set(int64(len(r.tombstones)))
	}
}

// CompactTombstones drops every tombstone the caller proves obsolete —
// typically instances of rounds entirely below a checkpointed GC horizon,
// whose traffic can no longer arrive from honest parties (a straggler
// merely re-buffers under its sender's quota). Dispatch goroutine only.
func (r *Router) CompactTombstones(obsolete func(protocol, instance string) bool) {
	if obsolete == nil {
		return
	}
	kept := r.tombOrder[:0]
	for _, key := range r.tombOrder[r.tombHead:] {
		if _, live := r.tombstones[key]; !live {
			continue
		}
		if obsolete(key.protocol, key.instance) {
			delete(r.tombstones, key)
		} else {
			kept = append(kept, key)
		}
	}
	r.tombOrder = kept
	r.tombHead = 0
	if r.mx != nil {
		r.mx.tombstones.Set(int64(len(r.tombstones)))
	}
}

// Sizes reports the live-instance and tombstone map sizes (dispatch
// goroutine or pre-Run; regression tests assert both stay bounded).
func (r *Router) Sizes() (instances, tombstones int) {
	return len(r.instances), len(r.tombstones)
}

// releaseBuffered empties an instance's early-arrival buffer, returning
// the messages' slots to their senders' router-wide budgets. Dispatch
// goroutine only.
func (r *Router) releaseBuffered(st *instanceState) {
	for _, m := range st.buffered {
		r.creditSender(m.From)
	}
	st.buffered = nil
	st.perSender = nil
}

func (r *Router) creditSender(from int) {
	if n := r.bufferedBySender[from] - 1; n > 0 {
		r.bufferedBySender[from] = n
	} else {
		delete(r.bufferedBySender, from)
	}
}

// SetFactory installs an on-demand constructor for a protocol: the first
// message of an unknown instance creates its handler. Safe from any
// goroutine.
func (r *Router) SetFactory(protocol string, f Factory) {
	r.factoryMu.Lock()
	defer r.factoryMu.Unlock()
	r.factories[protocol] = f
}

// Do schedules a closure on the dispatch goroutine. It must NOT be called
// from the dispatch goroutine itself (handlers act directly instead). It
// returns false if the router has shut down.
func (r *Router) Do(f func()) bool {
	select {
	case <-r.done:
		return false
	default:
	}
	select {
	case r.tasks <- f:
		return true
	case <-r.done:
		return false
	}
}

// DoSync runs a closure on the dispatch goroutine and waits for it to
// finish. It must NOT be called from the dispatch goroutine (it would
// deadlock). It returns false if the router has shut down.
func (r *Router) DoSync(f func()) bool {
	doneCh := make(chan struct{})
	if !r.Do(func() {
		defer close(doneCh)
		f()
	}) {
		return false
	}
	select {
	case <-doneCh:
		return true
	case <-r.done:
		return false
	}
}

// Send transmits one message to a party. Safe from any goroutine.
func (r *Router) Send(to int, protocol, instance, msgType string, body any) error {
	payload, err := wire.MarshalBody(body)
	if err != nil {
		return err
	}
	r.tr.Send(wire.Message{
		To:       to,
		Protocol: protocol,
		Instance: instance,
		Type:     msgType,
		Payload:  payload,
	})
	return nil
}

// Loopback sends a message to the local party itself — the entry point for
// externally-triggered protocol actions (Start, Submit). Safe from any
// goroutine.
func (r *Router) Loopback(protocol, instance, msgType string, body any) error {
	return r.Send(r.Self(), protocol, instance, msgType, body)
}

// Broadcast transmits one message to every server, including the sender
// itself (loopback), so protocols treat their own messages uniformly.
// Safe from any goroutine.
func (r *Router) Broadcast(protocol, instance, msgType string, body any) error {
	payload, err := wire.MarshalBody(body)
	if err != nil {
		return err
	}
	for to := 0; to < r.tr.N(); to++ {
		r.tr.Send(wire.Message{
			To:       to,
			Protocol: protocol,
			Instance: instance,
			Type:     msgType,
			Payload:  payload,
		})
	}
	return nil
}

// journalPayload runs one outbound payload through the journal. It
// returns the bytes to transmit, or an error when the record could not
// be made durable — in which case the caller must NOT transmit: a
// replica whose log is wedged goes mute (a benign crash) instead of
// risking an unjournaled message it could later contradict.
func (r *Router) journalPayload(protocol, instance, msgType, slot string, payload []byte) ([]byte, error) {
	out, replayed, err := r.journal.RecordOutbound(protocol, instance, msgType, slot, payload)
	if err != nil {
		if r.mx != nil {
			r.mx.journalDrops.Inc()
		}
		return nil, err
	}
	if r.mx != nil {
		if replayed {
			r.mx.journalReplayed.Inc()
		} else {
			r.mx.journalRecords.Inc()
		}
	}
	return out, nil
}

// SendJournaled is Send for protocol-critical messages: with a journal
// installed the payload is durably recorded under (protocol, instance,
// slot) before transmission, and a slot already journaled re-sends the
// recorded bytes verbatim. The slot must uniquely identify a protocol
// commitment an honest party never makes twice with different content
// (e.g. "bval/3/1", "prop/17"). Safe from any goroutine.
func (r *Router) SendJournaled(slot string, to int, protocol, instance, msgType string, body any) error {
	if r.journal == nil {
		return r.Send(to, protocol, instance, msgType, body)
	}
	payload, err := wire.MarshalBody(body)
	if err != nil {
		return err
	}
	if payload, err = r.journalPayload(protocol, instance, msgType, slot, payload); err != nil {
		return err
	}
	r.tr.Send(wire.Message{
		To:       to,
		Protocol: protocol,
		Instance: instance,
		Type:     msgType,
		Payload:  payload,
	})
	return nil
}

// BroadcastJournaled is Broadcast under the journal-before-send
// invariant; see SendJournaled. Safe from any goroutine.
func (r *Router) BroadcastJournaled(slot string, protocol, instance, msgType string, body any) error {
	if r.journal == nil {
		return r.Broadcast(protocol, instance, msgType, body)
	}
	payload, err := wire.MarshalBody(body)
	if err != nil {
		return err
	}
	if payload, err = r.journalPayload(protocol, instance, msgType, slot, payload); err != nil {
		return err
	}
	for to := 0; to < r.tr.N(); to++ {
		r.tr.Send(wire.Message{
			To:       to,
			Protocol: protocol,
			Instance: instance,
			Type:     msgType,
			Payload:  payload,
		})
	}
	return nil
}

// JournalCommitment durably records a protocol commitment under
// (protocol, instance, slot) without transmitting anything — for
// commitments that are not themselves wire messages, such as the Merkle
// root a coded-broadcast sender binds itself to before fanning out
// fragments. It returns the recorded bytes for the slot: the caller's
// payload on a fresh record, or the previously journaled bytes with
// replayed=true — a recovered caller must compare and repeat (or go
// mute), never contradict. With no journal installed the payload echoes
// back unrecorded. An error means the record is not durable and the
// caller must not act on the commitment. Safe from any goroutine.
func (r *Router) JournalCommitment(protocol, instance, msgType, slot string, payload []byte) (recorded []byte, replayed bool, err error) {
	if r.journal == nil {
		return payload, false, nil
	}
	out, replayed, err := r.journal.RecordOutbound(protocol, instance, msgType, slot, payload)
	if err != nil {
		if r.mx != nil {
			r.mx.journalDrops.Inc()
		}
		return nil, false, err
	}
	if r.mx != nil {
		if replayed {
			r.mx.journalReplayed.Inc()
		} else {
			r.mx.journalRecords.Inc()
		}
	}
	return out, replayed, nil
}

// Run dispatches inbound messages and scheduled tasks until the transport
// closes. It must be called exactly once.
func (r *Router) Run() {
	defer close(r.done)
	if r.verifyWorkers > 0 {
		r.verifyCh = make(chan *applyCell, verifyQueueCap)
		for i := 0; i < r.verifyWorkers; i++ {
			r.workerWg.Add(1)
			go r.verifyWorker()
		}
		defer r.workerWg.Wait()
		defer close(r.verifyCh)
	}
	go func() {
		defer close(r.inCh)
		for {
			m, ok := r.tr.Recv()
			if !ok {
				return
			}
			r.inCh <- m
		}
	}()
	for {
		// The apply queue's head gates the select: the moment its verdict
		// is ready the message is applied, while later arrivals keep
		// being admitted (and verified) behind it.
		var headDone chan struct{}
		if len(r.applyQ) > 0 {
			headDone = r.applyQ[0].done
		}
		select {
		case m, ok := <-r.inCh:
			if !ok {
				r.drainApplyQueue()
				return
			}
			r.safely(func() { r.admit(m) })
			r.applyReady()
		case f := <-r.tasks:
			if r.mx != nil {
				r.mx.taskDepth.Set(int64(len(r.tasks)) + 1)
			}
			r.safely(f)
			r.applyReady()
		case <-headDone:
			r.applyReady()
		}
	}
}

// applyReady applies queued messages from the head while their verdicts
// are ready, preserving arrival order. Dispatch goroutine only.
func (r *Router) applyReady() {
	for len(r.applyQ) > 0 {
		c := r.applyQ[0]
		select {
		case <-c.done:
		default:
			return
		}
		r.popApply(c)
	}
}

// drainApplyQueue waits out and applies every pending message; it runs at
// shutdown so no admitted message is silently lost mid-pipeline.
func (r *Router) drainApplyQueue() {
	for len(r.applyQ) > 0 {
		c := r.applyQ[0]
		<-c.done
		r.popApply(c)
	}
}

func (r *Router) popApply(c *applyCell) {
	if len(r.applyQ) == 1 {
		r.applyQ = nil // release the backing array between bursts
	} else {
		r.applyQ = r.applyQ[1:]
	}
	// Re-resolve the instance: it may have been tombstoned while the
	// message waited for its verdict.
	st, ok := r.instances[c.key]
	if !ok || st.handler == nil {
		if r.mx != nil {
			r.mx.dispatchLatency.ObserveSince(c.start)
		}
		return
	}
	r.applyNow(st.handler, &c.m, c.verdict, c.start)
}

// applyNow runs the Apply stage of one message and closes out its
// metrics. Dispatch goroutine only.
func (r *Router) applyNow(bh *boundHandler, m *wire.Message, verdict any, start time.Time) {
	var t0 time.Time
	if r.mx != nil {
		t0 = time.Now()
	}
	r.safely(func() { bh.apply(m.From, m.Type, m.Payload, verdict) })
	if r.mx != nil {
		r.mx.applyLatency.ObserveSince(t0)
		r.mx.dispatchLatency.ObserveSince(start)
	}
}

// verifyWorker drains the verify queue until shutdown. With coalescing
// enabled, a worker that finds a backlog pulls up to verifyBatch more
// cells without blocking — batching is purely adaptive: an idle system
// verifies every message individually at minimum latency, while queue
// pressure grows the drained bursts toward the cap, exactly when the
// per-batch saving matters.
func (r *Router) verifyWorker() {
	defer r.workerWg.Done()
	limit := r.verifyBatchCap()
	for c := range r.verifyCh {
		if limit <= 1 {
			r.runVerify(c)
			continue
		}
		cells := []*applyCell{c}
		for len(cells) < limit {
			var c2 *applyCell
			var ok bool
			select {
			case c2, ok = <-r.verifyCh:
			default:
			}
			if !ok || c2 == nil {
				break
			}
			cells = append(cells, c2)
		}
		r.verifyGroups(cells)
	}
}

// verifyGroups partitions one drained burst by (handler, message type)
// and runs each group of 2+ same-kind messages through the handler's
// BatchVerify; everything else takes the per-message path. Verdict
// completion order is irrelevant — the apply queue replays in arrival
// order regardless.
func (r *Router) verifyGroups(cells []*applyCell) {
	if len(cells) == 1 {
		r.runVerify(cells[0])
		return
	}
	type groupKey struct {
		bh  *boundHandler
		typ string
	}
	var groups map[groupKey][]*applyCell
	for _, c := range cells {
		if c.bh == nil || c.bh.batchVerify == nil {
			r.runVerify(c)
			continue
		}
		if groups == nil {
			groups = make(map[groupKey][]*applyCell, 4)
		}
		k := groupKey{c.bh, c.m.Type}
		groups[k] = append(groups[k], c)
	}
	for _, g := range groups {
		if len(g) == 1 {
			r.runVerify(g[0])
		} else {
			r.runVerifyBatch(g)
		}
	}
}

// runVerifyBatch executes one coalesced BatchVerify call on a worker
// goroutine. Panics and malformed results (wrong verdict count) leave
// every verdict nil, so Apply falls back to inline verification — the
// same containment contract as runVerify, batched.
func (r *Router) runVerifyBatch(cells []*applyCell) {
	var verdicts []any
	culprits := 0
	func() {
		defer func() {
			if p := recover(); p != nil {
				verdicts = nil
				if r.mx != nil {
					r.mx.verifyPanics.Inc()
					r.mx.reg.Trace(obs.Event{
						Party: r.Self(), Protocol: cells[0].key.protocol, Instance: cells[0].key.instance,
						Stage: obs.StageDrop, Seq: -1,
						Note: fmt.Sprint("recovered batch-verify panic: ", p),
					})
				}
			}
		}()
		var t0 time.Time
		if r.mx != nil {
			t0 = time.Now()
			r.mx.parallelism.Add(1)
			defer func() {
				r.mx.parallelism.Add(-1)
				r.mx.verifyLatency.ObserveSince(t0)
			}()
		}
		msgs := make([]*wire.Message, len(cells))
		for i, c := range cells {
			msgs[i] = &c.m
		}
		verdicts, culprits = cells[0].bh.batchVerify(msgs)
	}()
	if len(verdicts) != len(cells) {
		verdicts, culprits = nil, 0
	}
	for i, c := range cells {
		if verdicts != nil {
			c.verdict = verdicts[i]
		}
		close(c.done)
	}
	if r.mx != nil {
		r.mx.verified.Add(int64(len(cells)))
		r.mx.batchBatches.Inc()
		r.mx.batchMessages.Add(int64(len(cells)))
		r.mx.batchCulprits.Add(int64(culprits))
	}
}

// runVerify executes one cell's Verify stage on a worker goroutine. A
// panic — attacker bytes slipping past a decode guard — leaves the
// verdict nil, so Apply falls back to inline verification and the replica
// stays alive.
func (r *Router) runVerify(c *applyCell) {
	defer close(c.done)
	defer func() {
		if p := recover(); p != nil {
			c.verdict = nil
			if r.mx != nil {
				r.mx.verifyPanics.Inc()
				r.mx.reg.Trace(obs.Event{
					Party: r.Self(), Protocol: c.key.protocol, Instance: c.key.instance,
					Stage: obs.StageDrop, Seq: -1,
					Note: fmt.Sprint("recovered verify panic: ", p),
				})
			}
		}
	}()
	var t0 time.Time
	if r.mx != nil {
		t0 = time.Now()
		r.mx.parallelism.Add(1)
	}
	c.verdict = c.verify(c.m.From, c.m.Type, c.m.Payload)
	if r.mx != nil {
		r.mx.parallelism.Add(-1)
		r.mx.verifyLatency.ObserveSince(t0)
		r.mx.verified.Inc()
	}
}

// safely runs f on the dispatch goroutine, converting a panic — a protocol
// handler tripped by attacker-supplied bytes — into a counted, traced
// event instead of a dead replica. The Decode guards below make this a
// backstop, not a crutch: the chaos suite asserts router.panics stays 0.
func (r *Router) safely(f func()) {
	defer func() {
		if p := recover(); p != nil {
			if r.mx != nil {
				r.mx.panics.Inc()
				r.mx.reg.Trace(obs.Event{
					Party: r.Self(), Protocol: "router", Stage: obs.StageDrop,
					Seq: -1, Note: fmt.Sprint("recovered handler panic: ", p),
				})
			}
		}
	}()
	f()
}

// Decode unmarshals an attacker-controlled message body on behalf of a
// protocol handler. On failure — malformed bytes from a corrupted party —
// it bumps the router.malformed counter and returns false; the handler
// simply drops the message. Every protocol layer routes its payload
// unmarshalling through this guard.
func (r *Router) Decode(payload []byte, v any) bool {
	if wire.UnmarshalBody(payload, v) == nil {
		return true
	}
	if r.mx != nil {
		r.mx.malformed.Inc()
	}
	return false
}

// Done is closed when Run returns.
func (r *Router) Done() <-chan struct{} { return r.done }

// admit routes one inbound message: straight to Apply when possible,
// through the verify pipeline when its handler asks for it, into the
// early-arrival buffer when no handler exists yet. Dispatch goroutine
// only.
func (r *Router) admit(m wire.Message) {
	var start time.Time
	if r.mx != nil {
		start = time.Now()
		r.mx.count(m.Protocol, m.Type)
		r.mx.dispatched.Inc()
	}
	key := instanceKey{m.Protocol, m.Instance}
	if _, dead := r.tombstones[key]; dead {
		// Finished instance: drop without resurrecting any state for it.
		return
	}
	st := r.state(key)
	if st.handler == nil {
		// No handler yet: buffer the message so a factory-created handler
		// (or a later Register) replays it in arrival order.
		r.buffer(st, m)
		r.factoryMu.Lock()
		f, ok := r.factories[m.Protocol]
		r.factoryMu.Unlock()
		if ok {
			if h := f(m.Instance); h != nil {
				r.Register(m.Protocol, m.Instance, h)
			}
		}
		if r.mx != nil {
			r.mx.dispatchLatency.ObserveSince(start)
		}
		return
	}
	bh := st.handler
	needsVerify := r.verifyCh != nil && bh.verifyTypes != nil && bh.verifyTypes[m.Type]
	if !needsVerify && len(r.applyQ) == 0 {
		// Fast path: nothing queued ahead, nothing to verify — apply in
		// place with no cell allocation (the pre-pipeline hot path).
		r.applyNow(bh, &m, nil, start)
		return
	}
	c := &applyCell{m: m, key: key, start: start, done: closedCh}
	if needsVerify {
		c.verify = bh.verify
		c.bh = bh
		c.done = make(chan struct{})
		select {
		case r.verifyCh <- c:
		default:
			// Pool saturated: degrade this message to apply-time inline
			// verification rather than blocking admission.
			c.verify = nil
			c.done = closedCh
			if r.mx != nil {
				r.mx.degraded.Inc()
			}
		}
	}
	r.applyQ = append(r.applyQ, c)
}

// buffer queues one early-arrival message under the per-sender quotas.
// Dispatch goroutine only.
func (r *Router) buffer(st *instanceState, m wire.Message) {
	if r.bufferedBySender[m.From] >= maxBufferedPerSenderTotal {
		// The sender exhausted its router-wide budget (a flooder spamming
		// fresh instances); its new message is dropped on arrival.
		r.traceBufferDrop(&m, "router-wide early-arrival quota")
		return
	}
	quota := maxBufferedPerInstance / r.tr.N()
	if quota < 1 {
		quota = 1
	}
	if st.perSender == nil {
		st.perSender = make(map[int]int)
	}
	if st.perSender[m.From] >= quota {
		// Over the per-sender share: the sender loses its own oldest
		// message, never another party's.
		r.evictOldest(st, m.From)
	} else if len(st.buffered) >= maxBufferedPerInstance {
		// Possible only with more distinct sender ids than servers (forged
		// client ids): evict from whichever sender holds the most.
		worst, worstN := m.From, 0
		for s, c := range st.perSender {
			if c > worstN {
				worst, worstN = s, c
			}
		}
		r.evictOldest(st, worst)
	}
	st.buffered = append(st.buffered, m)
	st.perSender[m.From]++
	r.bufferedBySender[m.From]++
	if r.mx != nil {
		r.mx.bufferDepth.Set(int64(len(st.buffered)))
	}
}

// evictOldest drops the sender's oldest buffered message of one instance.
// Dispatch goroutine only.
func (r *Router) evictOldest(st *instanceState, sender int) {
	for i := range st.buffered {
		if st.buffered[i].From == sender {
			m := st.buffered[i]
			st.buffered = append(st.buffered[:i], st.buffered[i+1:]...)
			st.perSender[sender]--
			r.creditSender(sender)
			r.traceBufferDrop(&m, "per-sender early-arrival quota")
			return
		}
	}
}

// traceBufferDrop counts one buffered-message drop, noting the offending
// sender in the trace event.
func (r *Router) traceBufferDrop(m *wire.Message, reason string) {
	if r.mx == nil {
		return
	}
	r.mx.bufferDrops.Inc()
	if r.mx.reg.Tracing() {
		r.mx.reg.Trace(obs.Event{
			Party: r.Self(), Protocol: m.Protocol, Instance: m.Instance,
			Stage: obs.StageDrop, Seq: -1,
			Note: fmt.Sprintf("%s (from %d)", reason, m.From),
		})
	}
}
