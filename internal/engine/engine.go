// Package engine provides the per-party protocol runtime: a Router that
// multiplexes one transport among many protocol instances.
//
// Every protocol execution (one reliable broadcast, one binary agreement,
// one atomic-broadcast round, ...) is addressed by (protocol, instance).
// All protocol code of one party — message handlers, buffered-message
// replay, instance construction, and cross-instance callbacks (a binary
// agreement deciding into its parent multi-valued agreement, for example)
// — executes on a single dispatch goroutine, so protocol instances are
// plain single-threaded state machines with no internal locking. Outbound
// sends go through the thread-safe transport.
//
// External goroutines (clients, tests) interact with protocol state only
// through Do/DoSync, which run a closure on the dispatch goroutine.
// Messages that arrive before their instance is registered are buffered
// and replayed on registration, which is essential in an asynchronous
// network where a fast party's messages may overtake the event that
// creates the instance locally.
package engine

import (
	"fmt"
	"sync"
	"time"

	"sintra/internal/obs"
	"sintra/internal/wire"
)

// maxBufferedPerInstance bounds the early-arrival buffer of one instance.
// Honest traffic never comes close: it exists to stop corrupted parties
// from exhausting memory with messages for instances that never start.
//
// The budget is split into per-sender quotas (maxBufferedPerInstance / n),
// so one flooding party exhausts only its own share and cannot evict
// honest parties' buffered messages. A sender over quota loses its own
// oldest message; a sender over the instance total (possible only with
// more distinct sender ids than servers, e.g. forged client ids) evicts
// from whichever sender holds the most.
const maxBufferedPerInstance = 4096

// maxBufferedPerSenderTotal bounds one sender's buffered messages across
// ALL unregistered instances of the router, so a corrupted party cannot
// sidestep the per-instance quota by spamming fresh instance names.
const maxBufferedPerSenderTotal = 4 * maxBufferedPerInstance

// Handler processes one inbound message of an instance, on the dispatch
// goroutine.
type Handler func(from int, msgType string, payload []byte)

// Factory creates a handler on demand for an instance that receives its
// first message before being registered explicitly. Factories run on the
// dispatch goroutine; the router registers the returned handler itself.
type Factory func(instance string) Handler

type instanceKey struct {
	protocol string
	instance string
}

// instanceState is the per-instance bookkeeping (dispatch goroutine only).
type instanceState struct {
	handler  Handler
	buffered []wire.Message
	// perSender counts buffered messages by sender, enforcing the
	// per-sender share of maxBufferedPerInstance.
	perSender map[int]int
	dead      bool // tombstone: finished instance, drop further traffic
}

// Router multiplexes a party's transport among protocol instances.
type Router struct {
	tr wire.Transport

	// Dispatch-goroutine state; no lock needed.
	instances map[instanceKey]*instanceState
	// bufferedBySender counts buffered early-arrival messages per sender
	// across all instances (the maxBufferedPerSenderTotal guard).
	bufferedBySender map[int]int

	factoryMu sync.Mutex
	factories map[string]Factory

	tasks chan func()
	inCh  chan wire.Message
	done  chan struct{}

	mx *routerMetrics // nil when observability is off
}

// routerMetrics holds the router's instruments. The per-(protocol,type)
// counter cache is touched only on the dispatch goroutine, so it needs no
// lock; the counters themselves are atomic and read from anywhere.
type routerMetrics struct {
	reg             *obs.Registry
	dispatchLatency *obs.Histogram
	dispatched      *obs.Counter
	taskDepth       *obs.Gauge
	bufferDepth     *obs.Gauge
	bufferDrops     *obs.Counter
	malformed       *obs.Counter
	panics          *obs.Counter

	counts map[ptKey]*obs.Counter
}

type ptKey struct{ protocol, msgType string }

// count bumps the per-(protocol,type) message counter. Dispatch goroutine
// only.
func (m *routerMetrics) count(protocol, msgType string) {
	k := ptKey{protocol, msgType}
	c, ok := m.counts[k]
	if !ok {
		c = m.reg.Counter("router.recv." + protocol + "." + msgType)
		m.counts[k] = c
	}
	c.Inc()
}

// SetObserver wires the router's metrics into reg. Call before Run (a nil
// registry leaves observability off).
func (r *Router) SetObserver(reg *obs.Registry) {
	if reg == nil {
		r.mx = nil
		return
	}
	r.mx = &routerMetrics{
		reg:             reg,
		dispatchLatency: reg.Histogram("router.dispatch.latency"),
		dispatched:      reg.Counter("router.dispatched"),
		taskDepth:       reg.Gauge("router.tasks.depth"),
		bufferDepth:     reg.Gauge("router.buffered.depth"),
		bufferDrops:     reg.Counter("router.buffered.drops"),
		malformed:       reg.Counter("router.malformed"),
		panics:          reg.Counter("router.panics"),
		counts:          make(map[ptKey]*obs.Counter),
	}
}

// NewRouter wraps a transport. Call Run (usually in a goroutine) to start
// dispatching.
func NewRouter(tr wire.Transport) *Router {
	return &Router{
		tr:               tr,
		instances:        make(map[instanceKey]*instanceState),
		bufferedBySender: make(map[int]int),
		factories:        make(map[string]Factory),
		tasks:            make(chan func(), 256),
		inCh:             make(chan wire.Message, 1),
		done:             make(chan struct{}),
	}
}

// Self returns the local party index.
func (r *Router) Self() int { return r.tr.Self() }

// Observer returns the registry installed by SetObserver — the hook the
// protocol layers use to report through the router they already hold. It
// is nil (the no-op default) when observability is off.
func (r *Router) Observer() *obs.Registry {
	if r.mx == nil {
		return nil
	}
	return r.mx.reg
}

// N returns the number of servers.
func (r *Router) N() int { return r.tr.N() }

// state returns (creating if needed) the instance state. Dispatch
// goroutine only.
func (r *Router) state(key instanceKey) *instanceState {
	st, ok := r.instances[key]
	if !ok {
		st = &instanceState{}
		r.instances[key] = st
	}
	return st
}

// Register installs the handler for one instance and replays any buffered
// messages for it. It must run on the dispatch goroutine (inside a
// handler, a factory, or a Do task) or before Run starts.
func (r *Router) Register(protocol, instance string, h Handler) {
	st := r.state(instanceKey{protocol, instance})
	if st.dead {
		return
	}
	st.handler = h
	replay := st.buffered
	r.releaseBuffered(st)
	for i := range replay {
		m := &replay[i]
		h(m.From, m.Type, m.Payload)
	}
}

// Unregister tombstones an instance; further messages for it are dropped,
// which garbage-collects finished protocol executions. Dispatch goroutine
// only.
func (r *Router) Unregister(protocol, instance string) {
	st := r.state(instanceKey{protocol, instance})
	st.handler = nil
	r.releaseBuffered(st)
	st.dead = true
}

// releaseBuffered empties an instance's early-arrival buffer, returning
// the messages' slots to their senders' router-wide budgets. Dispatch
// goroutine only.
func (r *Router) releaseBuffered(st *instanceState) {
	for _, m := range st.buffered {
		r.creditSender(m.From)
	}
	st.buffered = nil
	st.perSender = nil
}

func (r *Router) creditSender(from int) {
	if n := r.bufferedBySender[from] - 1; n > 0 {
		r.bufferedBySender[from] = n
	} else {
		delete(r.bufferedBySender, from)
	}
}

// SetFactory installs an on-demand constructor for a protocol: the first
// message of an unknown instance creates its handler. Safe from any
// goroutine.
func (r *Router) SetFactory(protocol string, f Factory) {
	r.factoryMu.Lock()
	defer r.factoryMu.Unlock()
	r.factories[protocol] = f
}

// Do schedules a closure on the dispatch goroutine. It must NOT be called
// from the dispatch goroutine itself (handlers act directly instead). It
// returns false if the router has shut down.
func (r *Router) Do(f func()) bool {
	select {
	case <-r.done:
		return false
	default:
	}
	select {
	case r.tasks <- f:
		return true
	case <-r.done:
		return false
	}
}

// DoSync runs a closure on the dispatch goroutine and waits for it to
// finish. It must NOT be called from the dispatch goroutine (it would
// deadlock). It returns false if the router has shut down.
func (r *Router) DoSync(f func()) bool {
	doneCh := make(chan struct{})
	if !r.Do(func() {
		defer close(doneCh)
		f()
	}) {
		return false
	}
	select {
	case <-doneCh:
		return true
	case <-r.done:
		return false
	}
}

// Send transmits one message to a party. Safe from any goroutine.
func (r *Router) Send(to int, protocol, instance, msgType string, body any) error {
	payload, err := wire.MarshalBody(body)
	if err != nil {
		return err
	}
	r.tr.Send(wire.Message{
		To:       to,
		Protocol: protocol,
		Instance: instance,
		Type:     msgType,
		Payload:  payload,
	})
	return nil
}

// Loopback sends a message to the local party itself — the entry point for
// externally-triggered protocol actions (Start, Submit). Safe from any
// goroutine.
func (r *Router) Loopback(protocol, instance, msgType string, body any) error {
	return r.Send(r.Self(), protocol, instance, msgType, body)
}

// Broadcast transmits one message to every server, including the sender
// itself (loopback), so protocols treat their own messages uniformly.
// Safe from any goroutine.
func (r *Router) Broadcast(protocol, instance, msgType string, body any) error {
	payload, err := wire.MarshalBody(body)
	if err != nil {
		return err
	}
	for to := 0; to < r.tr.N(); to++ {
		r.tr.Send(wire.Message{
			To:       to,
			Protocol: protocol,
			Instance: instance,
			Type:     msgType,
			Payload:  payload,
		})
	}
	return nil
}

// Run dispatches inbound messages and scheduled tasks until the transport
// closes. It must be called exactly once.
func (r *Router) Run() {
	defer close(r.done)
	go func() {
		defer close(r.inCh)
		for {
			m, ok := r.tr.Recv()
			if !ok {
				return
			}
			r.inCh <- m
		}
	}()
	for {
		select {
		case m, ok := <-r.inCh:
			if !ok {
				return
			}
			r.safely(func() { r.dispatch(m) })
		case f := <-r.tasks:
			if r.mx != nil {
				r.mx.taskDepth.Set(int64(len(r.tasks)) + 1)
			}
			r.safely(f)
		}
	}
}

// safely runs f on the dispatch goroutine, converting a panic — a protocol
// handler tripped by attacker-supplied bytes — into a counted, traced
// event instead of a dead replica. The Decode guards below make this a
// backstop, not a crutch: the chaos suite asserts router.panics stays 0.
func (r *Router) safely(f func()) {
	defer func() {
		if p := recover(); p != nil {
			if r.mx != nil {
				r.mx.panics.Inc()
				r.mx.reg.Trace(obs.Event{
					Party: r.Self(), Protocol: "router", Stage: obs.StageDrop,
					Seq: -1, Note: fmt.Sprint("recovered handler panic: ", p),
				})
			}
		}
	}()
	f()
}

// Decode unmarshals an attacker-controlled message body on behalf of a
// protocol handler. On failure — malformed bytes from a corrupted party —
// it bumps the router.malformed counter and returns false; the handler
// simply drops the message. Every protocol layer routes its payload
// unmarshalling through this guard.
func (r *Router) Decode(payload []byte, v any) bool {
	if wire.UnmarshalBody(payload, v) == nil {
		return true
	}
	if r.mx != nil {
		r.mx.malformed.Inc()
	}
	return false
}

// Done is closed when Run returns.
func (r *Router) Done() <-chan struct{} { return r.done }

// dispatch routes one message. Dispatch goroutine only.
func (r *Router) dispatch(m wire.Message) {
	var start time.Time
	if r.mx != nil {
		start = time.Now()
		r.mx.count(m.Protocol, m.Type)
		r.mx.dispatched.Inc()
	}
	key := instanceKey{m.Protocol, m.Instance}
	st := r.state(key)
	if st.dead {
		return
	}
	if st.handler != nil {
		st.handler(m.From, m.Type, m.Payload)
		if r.mx != nil {
			r.mx.dispatchLatency.ObserveSince(start)
		}
		return
	}
	// No handler yet: buffer the message so a factory-created handler (or
	// a later Register) replays it in arrival order.
	r.buffer(st, m)
	r.factoryMu.Lock()
	f, ok := r.factories[m.Protocol]
	r.factoryMu.Unlock()
	if ok {
		if h := f(m.Instance); h != nil {
			r.Register(m.Protocol, m.Instance, h)
		}
	}
	if r.mx != nil {
		r.mx.dispatchLatency.ObserveSince(start)
	}
}

// buffer queues one early-arrival message under the per-sender quotas.
// Dispatch goroutine only.
func (r *Router) buffer(st *instanceState, m wire.Message) {
	if r.bufferedBySender[m.From] >= maxBufferedPerSenderTotal {
		// The sender exhausted its router-wide budget (a flooder spamming
		// fresh instances); its new message is dropped on arrival.
		r.traceBufferDrop(&m, "router-wide early-arrival quota")
		return
	}
	quota := maxBufferedPerInstance / r.tr.N()
	if quota < 1 {
		quota = 1
	}
	if st.perSender == nil {
		st.perSender = make(map[int]int)
	}
	if st.perSender[m.From] >= quota {
		// Over the per-sender share: the sender loses its own oldest
		// message, never another party's.
		r.evictOldest(st, m.From)
	} else if len(st.buffered) >= maxBufferedPerInstance {
		// Possible only with more distinct sender ids than servers (forged
		// client ids): evict from whichever sender holds the most.
		worst, worstN := m.From, 0
		for s, c := range st.perSender {
			if c > worstN {
				worst, worstN = s, c
			}
		}
		r.evictOldest(st, worst)
	}
	st.buffered = append(st.buffered, m)
	st.perSender[m.From]++
	r.bufferedBySender[m.From]++
	if r.mx != nil {
		r.mx.bufferDepth.Set(int64(len(st.buffered)))
	}
}

// evictOldest drops the sender's oldest buffered message of one instance.
// Dispatch goroutine only.
func (r *Router) evictOldest(st *instanceState, sender int) {
	for i := range st.buffered {
		if st.buffered[i].From == sender {
			m := st.buffered[i]
			st.buffered = append(st.buffered[:i], st.buffered[i+1:]...)
			st.perSender[sender]--
			r.creditSender(sender)
			r.traceBufferDrop(&m, "per-sender early-arrival quota")
			return
		}
	}
}

// traceBufferDrop counts one buffered-message drop, noting the offending
// sender in the trace event.
func (r *Router) traceBufferDrop(m *wire.Message, reason string) {
	if r.mx == nil {
		return
	}
	r.mx.bufferDrops.Inc()
	if r.mx.reg.Tracing() {
		r.mx.reg.Trace(obs.Event{
			Party: r.Self(), Protocol: m.Protocol, Instance: m.Instance,
			Stage: obs.StageDrop, Seq: -1,
			Note: fmt.Sprintf("%s (from %d)", reason, m.From),
		})
	}
}
