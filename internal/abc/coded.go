// Coded proposals: above a size threshold a party's signed proposal
// carries only a digest commitment to its batch, and the batch bytes
// travel once by coded (AVID-style) reliable broadcast instead of being
// embedded in the proposal and then again in every multi-valued
// agreement value. The n-party agreement ferries n² copies of its value
// in the worst case; moving the bulk into per-proposer dispersal cuts
// the bandwidth of a large round from O(n²·B) toward O(n·B/k) per party.
//
// Validity is availability-gated: a coded header counts toward the
// proposal quorum, and a list containing one passes external validity,
// only once the referenced batch has been reliably delivered here and
// matches the signed digest. The gate cannot cost liveness — external
// validity of the decided value was checked by at least one honest
// party, so that party holds the batch, and reliable-broadcast totality
// carries it to everyone; a decide that arrives before the bytes is
// parked in pendingDecide and retried on blob arrival.

package abc

import (
	"crypto/sha256"
	"fmt"

	"sintra/internal/rbc"
	"sintra/internal/wire"
)

// DefaultCodedThreshold is the batch-size threshold (in payload bytes)
// above which proposals go coded when Config.CodedThreshold is zero.
const DefaultCodedThreshold = 4096

type batchKey struct {
	round int64
	party int
}

// batchBlob is the wire wrapper for a coded proposal's batch bytes; the
// signed BatchDigest commits to the marshaled blob.
type batchBlob struct {
	Batch [][]byte
}

// batchBytes is the payload volume of a batch, the quantity the coded
// threshold compares against.
func batchBytes(batch [][]byte) int {
	total := 0
	for _, p := range batch {
		total += len(p)
	}
	return total
}

// batchInstance names the reliable-broadcast instance dispersing one
// proposer's round batch. The name embeds "<service>/r<round>" so the
// core layer's journal GC matcher treats it like any other per-round
// instance.
func (a *ABC) batchInstance(round int64, proposer int) string {
	return rbc.InstanceID(proposer, fmt.Sprintf("%s/r%d/batch", a.cfg.Instance, round))
}

// ensureBatchRBC creates (once) the coded broadcast instance for one
// proposer's round batch. Dispatch goroutine only.
func (a *ABC) ensureBatchRBC(round int64, proposer int) *rbc.RBC {
	k := batchKey{round: round, party: proposer}
	if inst, ok := a.batchRBCs[k]; ok {
		return inst
	}
	inst := rbc.New(rbc.Config{
		Router:         a.cfg.Router,
		Struct:         a.cfg.Struct,
		Trust:          a.trust,
		Instance:       a.batchInstance(round, proposer),
		Sender:         proposer,
		CodedThreshold: a.codedThreshold,
		Deliver:        func(blob []byte) { a.onBatchBlob(round, proposer, blob) },
	})
	a.batchRBCs[k] = inst
	return inst
}

// onBatchBlob consumes a reliably-delivered batch blob: it may complete
// the proposal quorum, unblock deferred agreement evidence, or release a
// parked decide.
func (a *ABC) onBatchBlob(round int64, proposer int, blob []byte) {
	a.batches[batchKey{round: round, party: proposer}] = blob
	if round == a.round.Load() {
		a.maybeAgree()
	}
	if mv, ok := a.mvbas[round]; ok {
		mv.Reeval()
	}
	if v, ok := a.pendingDecide[round]; ok && round == a.round.Load() {
		delete(a.pendingDecide, round)
		a.onDecide(round, v)
	}
}

// batchAvailable reports whether a proposal's batch is locally resolvable:
// trivially for inline batches, and for coded headers only once the
// reliably-broadcast blob is here and matches the signed digest.
func (a *ABC) batchAvailable(p *SignedProposal) bool {
	if !p.Coded {
		return true
	}
	blob, ok := a.batches[batchKey{round: p.Round, party: p.Party}]
	return ok && sha256.Sum256(blob) == p.BatchDigest
}

// resolveBatch returns the payloads a proposal contributes to a decided
// round, or ok=false when a coded batch has not arrived yet.
func (a *ABC) resolveBatch(p *SignedProposal) ([][]byte, bool) {
	if !p.Coded {
		return p.Batch, true
	}
	a.ensureBatchRBC(p.Round, p.Party)
	blob, ok := a.batches[batchKey{round: p.Round, party: p.Party}]
	if !ok || sha256.Sum256(blob) != p.BatchDigest {
		return nil, false
	}
	var bb batchBlob
	if wire.UnmarshalBody(blob, &bb) != nil {
		// The proposer signed a digest of bytes that do not decode. The
		// verdict is a pure function of the digest-bound bytes, hence
		// identical everywhere: treat it as an empty batch rather than
		// let a Byzantine proposer park the round forever.
		return nil, true
	}
	return bb.Batch, true
}

// gcCoded retires coded-dispersal state once its round is settled; the
// two-round lag mirrors the agreement GC so stragglers can still fetch
// a just-decided batch over REQ/ANS.
func (a *ABC) gcCoded(decided int64) {
	for k := range a.batchRBCs {
		if k.round <= decided-2 {
			a.cfg.Router.Unregister(rbc.Protocol, a.batchInstance(k.round, k.party))
			delete(a.batchRBCs, k)
		}
	}
	for k := range a.batches {
		if k.round <= decided-2 {
			delete(a.batches, k)
		}
	}
	for r := range a.pendingDecide {
		if r < decided {
			delete(a.pendingDecide, r)
		}
	}
}
