package abc_test

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"
	"time"

	"sintra/internal/abc"
	"sintra/internal/adversary"
	"sintra/internal/testutil"
)

// TestCodedProposalsDeliver: batches over the coded threshold travel as
// digest headers plus one coded reliable broadcast, and the total order
// still comes out identical — with the coded path demonstrably taken.
func TestCodedProposalsDeliver(t *testing.T) {
	st := adversary.MustThreshold(4, 1)
	c := testutil.NewCluster(t, st, testutil.Options{Seed: 21, Observe: true})
	parties := []int{0, 1, 2, 3}
	h := newHarnessCfg(t, c, parties, func(cfg *abc.Config) {
		cfg.CodedThreshold = 1024
	})
	rng := rand.New(rand.NewSource(40))
	const total = 3
	sent := make([][]byte, total)
	for k := 0; k < total; k++ {
		sent[k] = make([]byte, 4096)
		rng.Read(sent[k])
		if err := h.insts[0].Broadcast(sent[k]); err != nil {
			t.Fatal(err)
		}
	}
	h.waitLogs(t, parties, total, 90*time.Second)
	h.assertSameOrder(t, parties, total)
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, msg := range sent {
		found := false
		for _, p := range h.logs[0] {
			if bytes.Equal(p, msg) {
				found = true
				break
			}
		}
		if !found {
			t.Fatal("submitted payload missing from the delivered log")
		}
	}
	if v := c.Regs[0].Counter("abc.coded.proposals").Value(); v < 1 {
		t.Fatalf("submitter never went coded (abc.coded.proposals=%d)", v)
	}
	if v := c.Regs[0].Counter("rs.encodes").Value(); v < 1 {
		t.Fatalf("coded proposal was never erasure-coded (rs.encodes=%d)", v)
	}
}

// TestCodedBatchMixedSubmitters: several parties exceed the threshold in
// the same rounds; headers and blobs interleave and every party delivers
// the same history.
func TestCodedBatchMixedSubmitters(t *testing.T) {
	st := adversary.MustThreshold(4, 1)
	c := testutil.NewCluster(t, st, testutil.Options{Seed: 23, Observe: true})
	parties := []int{0, 1, 2, 3}
	h := newHarnessCfg(t, c, parties, func(cfg *abc.Config) {
		cfg.CodedThreshold = 512
	})
	rng := rand.New(rand.NewSource(41))
	total := 0
	for i := 0; i < 4; i++ {
		for k := 0; k < 2; k++ {
			msg := make([]byte, 700+rng.Intn(2048))
			rng.Read(msg)
			if err := h.insts[i].Broadcast(msg); err != nil {
				t.Fatal(err)
			}
			total++
		}
	}
	h.waitLogs(t, parties, total, 120*time.Second)
	h.assertSameOrder(t, parties, total)
}

// TestChunkedSubmitReassembles: a payload far above the chunk size is
// split into frames, ordered, and reassembled into the original bytes at
// every party.
func TestChunkedSubmitReassembles(t *testing.T) {
	st := adversary.MustThreshold(4, 1)
	c := testutil.NewCluster(t, st, testutil.Options{Seed: 22, Observe: true})
	parties := []int{0, 1, 2, 3}
	var mu sync.Mutex
	got := make(map[int][][]byte)
	h := newHarnessCfg(t, c, parties, func(cfg *abc.Config) {
		cfg.ChunkSize = 1024
		cfg.CodedThreshold = 2048
		i := cfg.Router.Self()
		// Frames consume sequence numbers without reaching the app, so
		// the harness's seq==len(log) Deliver cannot be used here.
		cfg.Deliver = func(seq int64, payload []byte) {
			mu.Lock()
			defer mu.Unlock()
			got[i] = append(got[i], payload)
		}
	})
	msg := make([]byte, 10_000)
	rand.New(rand.NewSource(42)).Read(msg)
	if err := h.insts[0].Broadcast(msg); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(90 * time.Second)
	for {
		mu.Lock()
		done := true
		for _, p := range parties {
			if len(got[p]) == 0 {
				done = false
			}
		}
		mu.Unlock()
		if done {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("timeout waiting for reassembled deliveries")
		}
		time.Sleep(20 * time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	for _, p := range parties {
		if len(got[p]) != 1 || !bytes.Equal(got[p][0], msg) {
			t.Fatalf("party %d did not deliver the reassembled payload", p)
		}
	}
	if v := c.Regs[0].Counter("abc.chunks.split").Value(); v < 1 {
		t.Fatal("submitter never chunked")
	}
	for _, p := range parties {
		if v := c.Regs[p].Counter("abc.chunks.assembled").Value(); v != 1 {
			t.Fatalf("party %d assembled %d payloads", p, v)
		}
	}
}
