// Chunked submission: a single oversized client payload is split into
// deterministic frames that ride the normal proposal/agreement path as
// independent payloads, and the ordering layer reassembles them after
// delivery. Without this, one huge payload wedges a whole round behind
// a single proposal; with it, the payload streams across as many rounds
// (and as many parties' batches) as the scheduler allows.
//
// Determinism is the load-bearing property. Every replica that submits
// the same client payload must produce byte-identical frames — the frame
// identifier is a digest prefix of the payload, never a random nonce —
// so the n copies submitted by n replicas dedup down to one delivery
// per frame. Reassembly state advances only on delivered frames, in
// delivery order, so it is identical across honest replicas at every
// sequence number and belongs to the checkpointed state (the core layer
// folds ChunkState into its snapshots).

package abc

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"fmt"

	"sintra/internal/wire"
)

// DefaultChunkSize is the chunking threshold and frame body size when
// Config.ChunkSize is zero.
const DefaultChunkSize = 64 << 10

// maxChunksPerPayload bounds how many frames one payload may split into.
const maxChunksPerPayload = 4096

// maxChunkGroups bounds concurrent reassembly groups; beyond it the
// oldest incomplete group is evicted (deterministically: groups are
// ordered by first-frame delivery order).
const maxChunkGroups = 64

// chunkMagic prefixes every frame. Honest submissions below the chunk
// threshold are passed through untouched; a client payload that happens
// to begin with the magic and parse as a frame is treated as one — the
// interpretation is identical on every replica, so determinism holds.
var chunkMagic = [8]byte{'s', 'n', 't', 'r', 'C', 'H', 'K', '1'}

// chunkHeaderLen is magic(8) + id(16) + index(4) + total(4).
const chunkHeaderLen = 32

type chunkKey struct {
	id    [16]byte
	total int
}

type chunkGroup struct {
	have   int
	chunks [][]byte
}

// chunkID is the deterministic frame identifier: a digest prefix of the
// whole payload, so it doubles as the reassembly self-check.
func chunkID(payload []byte) [16]byte {
	d := sha256.Sum256(payload)
	var id [16]byte
	copy(id[:], d[:16])
	return id
}

// chunkCount returns how many frames a payload of the given length
// splits into.
func chunkCount(payloadLen, size int) int {
	return (payloadLen + size - 1) / size
}

// chunkFrames splits a payload into its frames.
func chunkFrames(payload []byte, size int) [][]byte {
	id := chunkID(payload)
	total := chunkCount(len(payload), size)
	frames := make([][]byte, 0, total)
	for i := 0; i < total; i++ {
		lo, hi := i*size, min((i+1)*size, len(payload))
		f := make([]byte, chunkHeaderLen+hi-lo)
		copy(f, chunkMagic[:])
		copy(f[8:], id[:])
		binary.BigEndian.PutUint32(f[24:], uint32(i))
		binary.BigEndian.PutUint32(f[28:], uint32(total))
		copy(f[chunkHeaderLen:], payload[lo:hi])
		frames = append(frames, f)
	}
	return frames
}

// parseFrame recognizes a chunk frame. ok is false for ordinary
// payloads, which pass through delivery untouched.
func parseFrame(p []byte) (id [16]byte, index, total int, chunk []byte, ok bool) {
	if len(p) <= chunkHeaderLen || !bytes.Equal(p[:8], chunkMagic[:]) {
		return id, 0, 0, nil, false
	}
	copy(id[:], p[8:24])
	index = int(binary.BigEndian.Uint32(p[24:]))
	total = int(binary.BigEndian.Uint32(p[28:]))
	if total < 2 || total > maxChunksPerPayload || index < 0 || index >= total {
		return id, 0, 0, nil, false
	}
	return id, index, total, p[chunkHeaderLen:], true
}

// feedFrame advances the reassembler with one delivered frame and
// returns the assembled payload when the frame completes its group.
// Dispatch goroutine only; all transitions are deterministic in the
// delivery order.
func (a *ABC) feedFrame(id [16]byte, index, total int, chunk []byte) ([]byte, bool) {
	k := chunkKey{id: id, total: total}
	g, ok := a.chunkGroups[k]
	if !ok {
		if len(a.chunkGroups) >= maxChunkGroups {
			a.evictOldestGroup()
		}
		g = &chunkGroup{chunks: make([][]byte, total)}
		a.chunkGroups[k] = g
		a.chunkOrder = append(a.chunkOrder, k)
	}
	if g.chunks[index] != nil {
		return nil, false // first frame per slot wins, deterministically
	}
	g.chunks[index] = chunk
	g.have++
	if a.chunkGauge != nil {
		a.chunkGauge.Set(int64(len(a.chunkGroups)))
	}
	if g.have < total {
		return nil, false
	}
	a.dropGroup(k)
	assembled := bytes.Join(g.chunks, nil)
	// Self-certification: the group id must be the payload's digest
	// prefix. A forged frame squatting on an (id, total, index) slot
	// poisons the group — every replica drops it identically.
	if chunkID(assembled) != id {
		if a.chunksDropped != nil {
			a.chunksDropped.Inc()
		}
		return nil, false
	}
	return assembled, true
}

// evictOldestGroup removes the oldest incomplete group.
func (a *ABC) evictOldestGroup() {
	if len(a.chunkOrder) == 0 {
		return
	}
	k := a.chunkOrder[0]
	a.dropGroup(k)
	if a.chunksDropped != nil {
		a.chunksDropped.Inc()
	}
}

func (a *ABC) dropGroup(k chunkKey) {
	delete(a.chunkGroups, k)
	for i, ok := range a.chunkOrder {
		if ok == k {
			a.chunkOrder = append(a.chunkOrder[:i], a.chunkOrder[i+1:]...)
			break
		}
	}
	if a.chunkGauge != nil {
		a.chunkGauge.Set(int64(len(a.chunkGroups)))
	}
}

// chunkGroupSnap is one group's serialized reassembly state: present
// chunk slots listed explicitly so absence survives the codec.
type chunkGroupSnap struct {
	ID    [16]byte
	Total int
	Index []int
	Chunk [][]byte
}

type chunkSnapshot struct {
	Groups []chunkGroupSnap
}

// ChunkState serializes the in-flight reassembly state, in group
// insertion order — deterministic across replicas at the same delivery
// frontier, as checkpointed state must be. Dispatch goroutine only.
func (a *ABC) ChunkState() []byte {
	snap := chunkSnapshot{Groups: make([]chunkGroupSnap, 0, len(a.chunkOrder))}
	for _, k := range a.chunkOrder {
		g, ok := a.chunkGroups[k]
		if !ok {
			continue
		}
		gs := chunkGroupSnap{ID: k.id, Total: k.total}
		for i, c := range g.chunks {
			if c != nil {
				gs.Index = append(gs.Index, i)
				gs.Chunk = append(gs.Chunk, c)
			}
		}
		snap.Groups = append(snap.Groups, gs)
	}
	enc, err := wire.MarshalBody(snap)
	if err != nil {
		return nil
	}
	return enc
}

// RestoreChunkState replaces the reassembly state wholesale (checkpoint
// install). Dispatch goroutine only.
func (a *ABC) RestoreChunkState(enc []byte) error {
	groups := make(map[chunkKey]*chunkGroup)
	var order []chunkKey
	if len(enc) > 0 {
		var snap chunkSnapshot
		if err := wire.UnmarshalBody(enc, &snap); err != nil {
			return fmt.Errorf("abc: chunk state: %w", err)
		}
		for _, gs := range snap.Groups {
			if gs.Total < 2 || gs.Total > maxChunksPerPayload || len(gs.Index) != len(gs.Chunk) {
				return fmt.Errorf("abc: chunk state: malformed group")
			}
			g := &chunkGroup{chunks: make([][]byte, gs.Total)}
			for i, idx := range gs.Index {
				if idx < 0 || idx >= gs.Total || g.chunks[idx] != nil {
					return fmt.Errorf("abc: chunk state: bad slot")
				}
				g.chunks[idx] = gs.Chunk[i]
				g.have++
			}
			k := chunkKey{id: gs.ID, total: gs.Total}
			groups[k] = g
			order = append(order, k)
		}
	}
	a.chunkGroups = groups
	a.chunkOrder = order
	if a.chunkGauge != nil {
		a.chunkGauge.Set(int64(len(a.chunkGroups)))
	}
	return nil
}
