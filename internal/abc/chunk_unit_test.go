package abc

import (
	"bytes"
	"math/rand"
	"testing"
)

func newChunkABC() *ABC {
	return &ABC{
		chunkSize:   1024,
		chunkGroups: make(map[chunkKey]*chunkGroup),
	}
}

func feedAll(t *testing.T, a *ABC, frames [][]byte) ([]byte, bool) {
	t.Helper()
	var out []byte
	var done bool
	for _, f := range frames {
		id, idx, total, chunk, ok := parseFrame(f)
		if !ok {
			t.Fatal("generated frame failed to parse")
		}
		if assembled, fin := a.feedFrame(id, idx, total, chunk); fin {
			out, done = assembled, true
		}
	}
	return out, done
}

// TestChunkFrameRoundtrip: frames reassemble to the original payload
// regardless of delivery order.
func TestChunkFrameRoundtrip(t *testing.T) {
	payload := make([]byte, 10_000)
	rand.New(rand.NewSource(7)).Read(payload)
	frames := chunkFrames(payload, 1024)
	if len(frames) != 10 {
		t.Fatalf("expected 10 frames, got %d", len(frames))
	}
	// Reverse delivery order.
	rev := make([][]byte, len(frames))
	for i, f := range frames {
		rev[len(frames)-1-i] = f
	}
	a := newChunkABC()
	out, done := feedAll(t, a, rev)
	if !done || !bytes.Equal(out, payload) {
		t.Fatal("reassembly did not reproduce the payload")
	}
	if len(a.chunkGroups) != 0 {
		t.Fatal("completed group not dropped")
	}
}

// TestChunkForgedFrameDropsGroup: a frame squatting on a slot with wrong
// bytes poisons the group — the completion self-check drops it and
// nothing is delivered.
func TestChunkForgedFrameDropsGroup(t *testing.T) {
	payload := make([]byte, 4_000)
	rand.New(rand.NewSource(8)).Read(payload)
	frames := chunkFrames(payload, 1024)
	frames[2][chunkHeaderLen] ^= 0xff // corrupt one chunk's content
	a := newChunkABC()
	if _, done := feedAll(t, a, frames); done {
		t.Fatal("poisoned group assembled")
	}
	if len(a.chunkGroups) != 0 {
		t.Fatal("poisoned group not dropped at completion")
	}
}

// TestChunkStateRoundtrip: serialized reassembly state restores into a
// fresh instance and the remaining frames complete the payload — the
// property checkpoint install relies on.
func TestChunkStateRoundtrip(t *testing.T) {
	payload := make([]byte, 6_000)
	rand.New(rand.NewSource(9)).Read(payload)
	frames := chunkFrames(payload, 1024)
	a := newChunkABC()
	if _, done := feedAll(t, a, frames[:3]); done {
		t.Fatal("incomplete group assembled")
	}
	b := newChunkABC()
	if err := b.RestoreChunkState(a.ChunkState()); err != nil {
		t.Fatal(err)
	}
	out, done := feedAll(t, b, frames[3:])
	if !done || !bytes.Equal(out, payload) {
		t.Fatal("restored state did not complete the payload")
	}
}

// TestChunkGroupEviction: the group table is bounded; overflow evicts the
// oldest incomplete group deterministically.
func TestChunkGroupEviction(t *testing.T) {
	a := newChunkABC()
	rng := rand.New(rand.NewSource(10))
	var first chunkKey
	for g := 0; g < maxChunkGroups+4; g++ {
		payload := make([]byte, 3_000)
		rng.Read(payload)
		frames := chunkFrames(payload, 1024)
		id, idx, total, chunk, _ := parseFrame(frames[0])
		if g == 0 {
			first = chunkKey{id: id, total: total}
		}
		a.feedFrame(id, idx, total, chunk)
	}
	if len(a.chunkGroups) != maxChunkGroups {
		t.Fatalf("group table not bounded: %d", len(a.chunkGroups))
	}
	if _, ok := a.chunkGroups[first]; ok {
		t.Fatal("oldest group survived eviction")
	}
}
