package abc_test

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"sintra/internal/adversary"
	"sintra/internal/testutil"
	"sintra/internal/wire"
)

// TestRandomBytesAgainstEveryLayer feeds pseudorandom garbage at every
// protocol namespace of the stack — malformed bodies, random types,
// random instances, spoofed rounds — from a corrupted party, and then
// requires a completely normal atomic-broadcast run on top of the noise.
// No handler may panic, wedge, or corrupt the total order.
func TestRandomBytesAgainstEveryLayer(t *testing.T) {
	st := adversary.MustThreshold(4, 1)
	c := testutil.NewCluster(t, st, testutil.Options{Seed: 71, Corrupted: []int{3}})
	parties := []int{0, 1, 2}
	h := newHarness(t, c, parties)

	rng := rand.New(rand.NewSource(99))
	protocols := []string{"rbc", "cbc", "aba", "mvba", "abc", "scabc", "client", "fdabc"}
	types := []string{
		"SEND", "ECHO", "READY", "REQ", "ANS", "SHARE", "FINAL", "START",
		"BVAL", "AUX", "COIN", "DECIDED", "VOTE", "LEADCOIN", "RECOVER",
		"RECANS", "PROPOSAL", "SUBMIT", "SHARES", "REQUEST", "RESPONSE", "ZZZ",
	}
	instances := []string{
		"svc", "svc/r1", "svc/r2", "0/m/svc/r1", "1/m/svc/r1", "svc/r1/t1",
		"", "////", "0/", "x/y/z", "svc/v3",
	}
	ep := c.Net.Endpoint(3)
	for i := 0; i < 400; i++ {
		payload := make([]byte, rng.Intn(64))
		rng.Read(payload)
		ep.Send(wire.Message{
			To:       rng.Intn(3),
			Protocol: protocols[rng.Intn(len(protocols))],
			Instance: instances[rng.Intn(len(instances))],
			Type:     types[rng.Intn(len(types))],
			Payload:  payload,
		})
	}

	const total = 3
	for k := 0; k < total; k++ {
		if err := h.insts[parties[k%3]].Broadcast([]byte(fmt.Sprintf("fuzz-%d", k))); err != nil {
			t.Fatal(err)
		}
	}
	h.waitLogs(t, parties, total, 180*time.Second)
	h.assertSameOrder(t, parties, total)
}
