package abc

import "testing"

func TestAdaptBatch(t *testing.T) {
	const floor, cap = 8, 64
	cases := []struct {
		name        string
		cur, queued int
		want        int
	}{
		{"grows under pressure", 8, 20, 16},
		{"growth saturates at cap", 64, 1000, 64},
		{"growth step clamps to cap", 48, 100, 64},
		{"holds in the comfortable band", 16, 12, 16},
		{"holds at exactly the bound", 16, 16, 16},
		{"shrinks when idle", 32, 4, 16},
		{"shrinks on empty queue", 16, 0, 8},
		{"shrink stops at floor", 8, 0, 8},
	}
	for _, tc := range cases {
		if got := adaptBatch(tc.cur, tc.queued, floor, cap); got != tc.want {
			t.Errorf("%s: adaptBatch(%d, %d) = %d, want %d", tc.name, tc.cur, tc.queued, got, tc.want)
		}
	}
	// A sustained backlog walks the bound from floor to cap...
	cur := floor
	for i := 0; i < 10; i++ {
		cur = adaptBatch(cur, 1000, floor, cap)
	}
	if cur != cap {
		t.Errorf("sustained pressure reached %d, want cap %d", cur, cap)
	}
	// ...and a drained queue walks it back to the floor.
	for i := 0; i < 10; i++ {
		cur = adaptBatch(cur, 0, floor, cap)
	}
	if cur != floor {
		t.Errorf("sustained idle reached %d, want floor %d", cur, floor)
	}
}
