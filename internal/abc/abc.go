// Package abc implements atomic broadcast: total ordering of client
// requests, the service layer of the paper's architecture (§3). The
// protocol follows the round structure the paper describes (after the
// atomic broadcast of Chandra–Toueg, lifted to the Byzantine model):
//
//	The parties proceed in global rounds. In each round every party
//	digitally signs the batch of messages it proposes and sends it to
//	all others; every party then proposes a quorum of properly signed
//	batches to multi-valued Byzantine agreement, whose external validity
//	condition checks the signatures; all messages in the decided list
//	are delivered in a fixed deterministic order.
//
// Because the decided list carries a quorum of signed proposals, messages
// from honest parties cannot be forged, and a message known to enough
// honest parties cannot be delayed forever (fairness). Atomic broadcast
// is equivalent to Byzantine agreement in this model and correspondingly
// more expensive than reliable broadcast — the architecture uses it
// exactly where total order is required.
package abc

import (
	"crypto/sha256"
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"sintra/internal/adversary"
	"sintra/internal/coin"
	"sintra/internal/engine"
	"sintra/internal/identity"
	"sintra/internal/mvba"
	"sintra/internal/obs"
	"sintra/internal/rbc"
	"sintra/internal/thresig"
	"sintra/internal/trust"
	"sintra/internal/wire"
)

// Protocol is the wire protocol name of atomic broadcast.
const Protocol = "abc"

// DefaultBatchSize bounds how many queued payloads one proposal carries.
const DefaultBatchSize = 8

// DefaultMaxBatchFactor is the default adaptive headroom: under queue
// pressure the batch bound may grow up to this multiple of BatchSize.
const DefaultMaxBatchFactor = 8

// DefaultRetentionWindow is the default dedup-history bound: delivered
// digests more than this many deliveries below the frontier are pruned
// at round boundaries even without a checkpoint certificate. The prune
// rule reads only decided values and the deterministic delivered map, so
// identically configured honest replicas prune identically.
const DefaultRetentionWindow = 8192

// roundWindow bounds how far ahead of the current round a proposal may
// be buffered; beyond it the proposals map would grow without bound
// under a Byzantine future-round flood.
const roundWindow = 32

// submittedTTL expires submit timestamps of payloads that never deliver
// (e.g. dropped under a Byzantine flood), bounding the latency map.
const submittedTTL = 2 * time.Minute

// maxRecent caps the retained post-checkpoint suffix log; a gap simply
// downgrades catch-up replies to snapshot-only.
const maxRecent = 8192

// Message types.
const (
	typeSubmit   = "SUBMIT"
	typeProposal = "PROPOSAL"
)

type submitBody struct {
	Payload []byte
}

// SignedProposal is one party's signed batch for a round; lists of these
// are the values fed to multi-valued agreement.
type SignedProposal struct {
	// Party is the proposer.
	Party int
	// Round is the atomic-broadcast round.
	Round int64
	// Batch holds the proposed payloads (possibly empty for parties that
	// join a round without pending requests). Empty when Coded is set.
	Batch [][]byte
	// Coded marks a header-only proposal: Batch is empty and the batch
	// bytes travel separately by coded reliable broadcast.
	Coded bool
	// BatchDigest binds a coded proposal to its reliably-broadcast batch
	// blob (sha256 of the marshaled blob).
	BatchDigest [32]byte
	// Ckpt optionally piggybacks the proposer's latest stable checkpoint
	// certificate (wire-encoded). Folding it into the decided value makes
	// the garbage-collection horizon part of the agreed round output, so
	// every honest replica prunes at the same point.
	Ckpt []byte
	// Sig is the proposer's individual signature over (round, batch,
	// checkpoint).
	Sig []byte
}

type proposalList struct {
	Proposals []SignedProposal
}

// Config wires one atomic-broadcast instance.
type Config struct {
	// Router is the party's protocol router.
	Router *engine.Router
	// Struct is the adversary structure.
	Struct *adversary.Structure
	// Trust optionally overrides the quorum backend, threaded down
	// through the embedded multi-valued agreements to every layer below
	// and used for the proposal-quorum rules here; nil wraps Struct in
	// the symmetric backend, preserving the original behavior.
	Trust trust.Quorums
	// Instance is the instance identifier (one per replicated service).
	Instance string
	// Identity is the registry of individual signature keys; IDKey the
	// party's own key.
	Identity *identity.Registry
	IDKey    *identity.Key
	// Coin and CoinKey drive the embedded agreement protocols.
	Coin    *coin.Params
	CoinKey *coin.SecretKey
	// Scheme and Key are the quorum-rule threshold signature scheme used
	// by the embedded consistent broadcasts.
	Scheme thresig.Scheme
	Key    *thresig.SecretKey
	// Deliver is called with a monotonically increasing sequence number
	// for every a-delivered payload, in the same order on every honest
	// party.
	Deliver func(seq int64, payload []byte)
	// BatchSize bounds proposal batches (default DefaultBatchSize). It
	// is the floor of the adaptive bound: a backlog grows the bound
	// toward MaxBatchSize, an idle queue shrinks it back to BatchSize.
	BatchSize int
	// MaxBatchSize caps adaptive batch growth (default
	// DefaultMaxBatchFactor × BatchSize; values below BatchSize clamp
	// to BatchSize, fixing the batch bound).
	MaxBatchSize int
	// RetentionWindow bounds the delivered-digest dedup history: entries
	// more than this many deliveries below the frontier are pruned at
	// round boundaries. 0 selects DefaultRetentionWindow; negative
	// disables retention pruning (checkpoint certificates still prune).
	// Must be configured identically on every replica — the prune rule is
	// deterministic only under a uniform window. A payload replayed after
	// its digest ages out is delivered again (at-most-once within the
	// window, the standard watermark trade-off).
	RetentionWindow int64
	// ProvideCheckpoint, if set, returns the encoded latest stable
	// checkpoint certificate to piggyback on this party's proposals (nil
	// when none yet).
	ProvideCheckpoint func() []byte
	// VerifyCheckpoint validates a piggybacked certificate and returns
	// the checkpointed sequence number. It must be deterministic in the
	// bytes alone; the maximum over a decided round's valid certificates
	// advances the GC horizon identically on every honest replica.
	VerifyCheckpoint func(enc []byte) (seq int64, ok bool)
	// RoundEnd, if set, fires after each round's deliveries with the new
	// frontier, the round about to open, and the GC horizon — the hook
	// the checkpoint tracker and request bookkeeping hang off.
	RoundEnd func(seq, nextRound, horizon int64)
	// CodedThreshold switches proposals whose batch payloads total at
	// least this many bytes to coded dissemination: the proposal carries
	// a digest and the batch travels once by coded reliable broadcast.
	// 0 selects DefaultCodedThreshold; negative disables the coded path.
	// Must be configured identically on every replica.
	CodedThreshold int
	// ChunkSize splits submitted payloads larger than this many bytes
	// into deterministic frames that reassemble after delivery, so one
	// huge payload cannot wedge a round. 0 selects DefaultChunkSize;
	// negative disables chunking. Must be configured identically on
	// every replica.
	ChunkSize int
}

// ABC is one atomic-broadcast instance; dispatch-goroutine only, except
// for the atomic progress metrics Round and Seq.
type ABC struct {
	cfg   Config
	trust trust.Quorums
	self  int

	// round and seq are written on the dispatch goroutine but read by
	// Round/Seq from harness and experiment goroutines, so they are
	// atomics rather than plain fields.
	round  atomic.Int64
	seq    atomic.Int64
	active bool

	proposals map[int64]map[int]SignedProposal
	mvbas     map[int64]*mvba.MVBA

	// Coded-dissemination state: resolved threshold (0 = disabled),
	// reliably-delivered batch blobs, the per-(round, proposer) coded
	// broadcast instances, and decides parked on a missing batch.
	codedThreshold int
	batches        map[batchKey][]byte
	batchRBCs      map[batchKey]*rbc.RBC
	pendingDecide  map[int64][]byte

	// Chunking state: resolved frame size (0 = disabled) and the
	// reassembly groups in first-frame delivery order.
	chunkSize   int
	chunkGroups map[chunkKey]*chunkGroup
	chunkOrder  []chunkKey

	queue  [][]byte
	queued map[[32]byte]bool
	// delivered maps each delivered payload digest to its sequence
	// number; entries below the GC horizon are pruned.
	delivered map[[32]byte]int64
	// gcHorizon is the stable prune point: every delivered digest below
	// it has been dropped. Advances deterministically at round ends.
	gcHorizon int64
	// recent retains the (seq, payload) delivery suffix above the GC
	// horizon for serving checkpoint catch-up; nil unless checkpointing
	// is wired (VerifyCheckpoint set).
	recent []recentEntry
	// curBatch is the adaptive batch bound, in [BatchSize, MaxBatchSize].
	curBatch int

	span *obs.Span
	// submitted stamps locally submitted payloads so their submit-to-
	// deliver ordering latency can be measured (observer on only);
	// entries expire after submittedTTL so payloads that never deliver
	// cannot grow it without bound.
	submitted    map[[32]byte]time.Time
	submitsSince int
	orderLat     *obs.Histogram
	batchSize    *obs.Gauge

	gcFreed       *obs.Counter
	deliveredSize *obs.Gauge
	horizonGauge  *obs.Gauge

	codedProposals  *obs.Counter
	codedDeferred   *obs.Counter
	chunksSplit     *obs.Counter
	chunksAssembled *obs.Counter
	chunksDropped   *obs.Counter
	chunkGauge      *obs.Gauge
}

type recentEntry struct {
	seq     int64
	payload []byte
}

// New creates and registers an instance (dispatch goroutine or pre-Run).
func New(cfg Config) *ABC {
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = DefaultBatchSize
	}
	if cfg.MaxBatchSize <= 0 {
		cfg.MaxBatchSize = DefaultMaxBatchFactor * cfg.BatchSize
	}
	cfg.MaxBatchSize = max(cfg.MaxBatchSize, cfg.BatchSize)
	if cfg.RetentionWindow == 0 {
		cfg.RetentionWindow = DefaultRetentionWindow
	}
	a := &ABC{
		cfg:           cfg,
		trust:         cfg.Trust,
		self:          cfg.Router.Self(),
		curBatch:      cfg.BatchSize,
		proposals:     make(map[int64]map[int]SignedProposal),
		mvbas:         make(map[int64]*mvba.MVBA),
		queued:        make(map[[32]byte]bool),
		delivered:     make(map[[32]byte]int64),
		batches:       make(map[batchKey][]byte),
		batchRBCs:     make(map[batchKey]*rbc.RBC),
		pendingDecide: make(map[int64][]byte),
		chunkGroups:   make(map[chunkKey]*chunkGroup),
		span:          obs.StartSpan(cfg.Router.Observer(), cfg.Router.Self(), Protocol, cfg.Instance),
	}
	if a.trust == nil {
		a.trust = trust.NewSymmetric(cfg.Struct)
	}
	switch {
	case cfg.CodedThreshold > 0:
		a.codedThreshold = cfg.CodedThreshold
	case cfg.CodedThreshold == 0:
		a.codedThreshold = DefaultCodedThreshold
	}
	switch {
	case cfg.ChunkSize > 0:
		a.chunkSize = cfg.ChunkSize
	case cfg.ChunkSize == 0:
		a.chunkSize = DefaultChunkSize
	}
	a.round.Store(1)
	if reg := a.span.Registry(); reg != nil {
		a.submitted = make(map[[32]byte]time.Time)
		a.orderLat = reg.Histogram(Protocol + ".latency.order")
		a.batchSize = reg.Gauge(Protocol + ".batch.size")
		a.batchSize.Set(int64(a.curBatch))
		a.gcFreed = reg.Counter("checkpoint.gc.freed")
		a.deliveredSize = reg.Gauge(Protocol + ".delivered.size")
		a.horizonGauge = reg.Gauge(Protocol + ".gc.horizon")
		a.codedProposals = reg.Counter(Protocol + ".coded.proposals")
		a.codedDeferred = reg.Counter(Protocol + ".coded.decides.deferred")
		a.chunksSplit = reg.Counter(Protocol + ".chunks.split")
		a.chunksAssembled = reg.Counter(Protocol + ".chunks.assembled")
		a.chunksDropped = reg.Counter(Protocol + ".chunks.dropped")
		a.chunkGauge = reg.Gauge(Protocol + ".chunks.groups")
	}
	cfg.Router.RegisterSplit(Protocol, cfg.Instance, engine.SplitHandler{
		Verify:      a.verifyMsg,
		Apply:       a.apply,
		VerifyTypes: []string{typeProposal},
	})
	return a
}

// Broadcast a-broadcasts a payload: it will eventually be delivered, in
// the same total order, by every honest party. Safe from any goroutine.
func (a *ABC) Broadcast(payload []byte) error {
	if a.chunkSize > 0 && chunkCount(len(payload), a.chunkSize) > maxChunksPerPayload {
		return fmt.Errorf("abc: payload of %d bytes exceeds %d chunks of %d bytes",
			len(payload), maxChunksPerPayload, a.chunkSize)
	}
	return a.cfg.Router.Loopback(Protocol, a.cfg.Instance, typeSubmit, submitBody{Payload: payload})
}

// Seq returns the number of payloads delivered so far (progress metric).
// Safe from any goroutine.
func (a *ABC) Seq() int64 { return a.seq.Load() }

// Round returns the current round (progress metric). Safe from any
// goroutine.
func (a *ABC) Round() int64 { return a.round.Load() }

// signStatement is the byte string a proposal signature covers.
func (a *ABC) signStatement(p *SignedProposal) []byte {
	h := sha256.New()
	fmt.Fprintf(h, "abc|%s|%d|%d|%d|%d|", a.cfg.Instance, p.Party, p.Round, len(p.Batch), len(p.Ckpt))
	for _, m := range p.Batch {
		d := sha256.Sum256(m)
		h.Write(d[:])
	}
	if len(p.Ckpt) > 0 {
		d := sha256.Sum256(p.Ckpt)
		h.Write(d[:])
	}
	if p.Coded {
		h.Write([]byte("|coded|"))
		h.Write(p.BatchDigest[:])
	}
	return h.Sum(nil)
}

// proposalVerdict is the Verify-stage result for PROPOSAL messages: the
// decoded proposal and whether the proposer's signature checked out.
// Round-window and duplicate checks are stateful and stay in Apply.
type proposalVerdict struct {
	p     SignedProposal
	valid bool
}

// verifyMsg is the parallel Verify stage: proposal signature checks only
// read the immutable identity registry and the instance name, so they are
// safe off the dispatch goroutine.
func (a *ABC) verifyMsg(from int, msgType string, payload []byte) any {
	if msgType != typeProposal {
		return nil
	}
	var p SignedProposal
	// Plain unmarshal, not Router.Decode: the nil-verdict fallback would
	// decode again and double-count router.malformed.
	if wire.UnmarshalBody(payload, &p) != nil {
		return nil
	}
	valid := p.Party == from &&
		a.cfg.Identity.Verify(from, "abc-prop", a.signStatement(&p), p.Sig) == nil
	return &proposalVerdict{p: p, valid: valid}
}

// Handle processes one protocol message without a pipeline verdict (the
// legacy single-stage entry point, kept for tests and direct callers).
func (a *ABC) Handle(from int, msgType string, payload []byte) {
	a.apply(from, msgType, payload, nil)
}

// apply is the serialized Apply stage; a non-nil verdict carries a
// pre-checked proposal signature.
func (a *ABC) apply(from int, msgType string, payload []byte, verdict any) {
	switch msgType {
	case typeSubmit:
		var body submitBody
		if from != a.cfg.Router.Self() || !a.cfg.Router.Decode(payload, &body) {
			return
		}
		a.onSubmit(body.Payload)
	case typeProposal:
		if v, ok := verdict.(*proposalVerdict); ok {
			if v.valid {
				a.onProposalVerified(from, v.p)
			}
			return
		}
		var p SignedProposal
		if !a.cfg.Router.Decode(payload, &p) {
			return
		}
		a.onProposal(from, p)
	}
}

func (a *ABC) onSubmit(payload []byte) {
	if a.chunkSize > 0 && len(payload) > a.chunkSize {
		// Split into deterministic frames: every replica submitting the
		// same payload produces identical frames, so they dedup to one
		// delivery each just like whole payloads do.
		for _, f := range chunkFrames(payload, a.chunkSize) {
			a.enqueue(f)
		}
		if a.chunksSplit != nil {
			a.chunksSplit.Inc()
		}
		return
	}
	a.enqueue(payload)
}

func (a *ABC) enqueue(payload []byte) {
	d := sha256.Sum256(payload)
	if _, done := a.delivered[d]; done || a.queued[d] {
		return
	}
	a.queued[d] = true
	a.queue = append(a.queue, payload)
	if a.submitted != nil {
		a.submitted[d] = time.Now()
		// Sweep periodically on the submit path too: under a flood of
		// payloads that never deliver, no round boundary would otherwise
		// expire the stamps.
		if a.submitsSince++; a.submitsSince >= 256 {
			a.submitsSince = 0
			a.sweepSubmitted(time.Now())
		}
	}
	a.maybeActivate()
}

// sweepSubmitted drops latency stamps older than submittedTTL — payloads
// that never a-delivered (dropped under Byzantine pressure) must not
// grow the map without bound.
func (a *ABC) sweepSubmitted(now time.Time) {
	for d, at := range a.submitted {
		if now.Sub(at) > submittedTTL {
			delete(a.submitted, d)
		}
	}
}

// maybeActivate enters the current round by broadcasting a signed
// proposal, either because this party has pending requests or because
// another party has already opened the round.
func (a *ABC) maybeActivate() {
	if a.active {
		return
	}
	round := a.round.Load()
	if len(a.queue) == 0 && len(a.proposals[round]) == 0 {
		return
	}
	a.active = true
	a.curBatch = adaptBatch(a.curBatch, len(a.queue), a.cfg.BatchSize, a.cfg.MaxBatchSize)
	if a.batchSize != nil {
		a.batchSize.Set(int64(a.curBatch))
	}
	batch := a.queue
	if len(batch) > a.curBatch {
		batch = batch[:a.curBatch]
	}
	p := SignedProposal{
		Party: a.cfg.Router.Self(),
		Round: round,
		Batch: batch,
	}
	if a.cfg.ProvideCheckpoint != nil {
		p.Ckpt = a.cfg.ProvideCheckpoint()
	}
	if a.codedThreshold > 0 && batchBytes(batch) >= a.codedThreshold {
		if blob, err := wire.MarshalBody(batchBlob{Batch: batch}); err == nil {
			p.Coded = true
			p.BatchDigest = sha256.Sum256(blob)
			p.Batch = nil
			// Store our own blob before broadcasting the header, so the
			// loopback proposal counts as available immediately, then
			// disperse the bytes once by coded reliable broadcast.
			a.batches[batchKey{round: round, party: a.self}] = blob
			_ = a.ensureBatchRBC(round, a.self).Start(blob)
			if a.codedProposals != nil {
				a.codedProposals.Inc()
			}
		}
	}
	p.Sig = a.cfg.IDKey.Sign("abc-prop", a.signStatement(&p))
	// A signed proposal is the canonical equivocation surface: one slot
	// per round so a recovered replica re-sends the identical proposal.
	_ = a.cfg.Router.BroadcastJournaled(fmt.Sprintf("prop/%d", round),
		Protocol, a.cfg.Instance, typeProposal, p)
}

func (a *ABC) onProposal(from int, p SignedProposal) {
	if p.Party != from || !a.roundInWindow(p.Round) {
		return
	}
	if _, dup := a.proposals[p.Round][from]; dup {
		return
	}
	if a.cfg.Identity.Verify(from, "abc-prop", a.signStatement(&p), p.Sig) != nil {
		return
	}
	a.acceptProposal(from, p)
}

// onProposalVerified consumes a proposal whose signature the Verify stage
// already checked; only the stateful round/duplicate filters remain.
func (a *ABC) onProposalVerified(from int, p SignedProposal) {
	if !a.roundInWindow(p.Round) {
		return
	}
	if _, dup := a.proposals[p.Round][from]; dup {
		return
	}
	a.acceptProposal(from, p)
}

func (a *ABC) acceptProposal(from int, p SignedProposal) {
	if p.Coded && len(p.Batch) > 0 {
		return // malformed: a coded header must not carry inline payloads
	}
	if a.proposals[p.Round] == nil {
		a.proposals[p.Round] = make(map[int]SignedProposal)
	}
	a.proposals[p.Round][from] = p
	if p.Coded {
		// Open the dispersal instance now so buffered fragments flow.
		a.ensureBatchRBC(p.Round, from)
	}
	if p.Round == a.round.Load() {
		a.maybeActivate()
		a.maybeAgree()
	}
}

// maybeAgree starts the round's multi-valued agreement once a quorum of
// signed proposals has been collected.
func (a *ABC) maybeAgree() {
	round := a.round.Load()
	if !a.active {
		return
	}
	if _, started := a.mvbas[round]; started {
		return
	}
	var parties adversary.Set
	for j := range a.proposals[round] {
		p := a.proposals[round][j]
		// Availability gate: a coded header joins our proposed list only
		// once its batch blob has arrived, so our own agreement value
		// always passes our own external-validity predicate.
		if !a.batchAvailable(&p) {
			continue
		}
		parties = parties.Add(j)
	}
	if !a.trust.IsQuorum(a.self, parties) {
		return
	}
	list := proposalList{Proposals: make([]SignedProposal, 0, len(a.proposals[round]))}
	for _, j := range parties.Members() {
		list.Proposals = append(list.Proposals, a.proposals[round][j])
	}
	value, err := wire.MarshalBody(list)
	if err != nil {
		return
	}
	inst := mvba.New(mvba.Config{
		Router:    a.cfg.Router,
		Struct:    a.cfg.Struct,
		Trust:     a.trust,
		Instance:  fmt.Sprintf("%s/r%d", a.cfg.Instance, round),
		Coin:      a.cfg.Coin,
		CoinKey:   a.cfg.CoinKey,
		Scheme:    a.cfg.Scheme,
		Key:       a.cfg.Key,
		Predicate: func(v []byte) bool { return a.validList(round, v) },
		Decide:    func(v []byte) { a.onDecide(round, v) },
	})
	a.mvbas[round] = inst
	_ = inst.Start(value)
}

// validList is the external validity condition of the paper: the value
// must be a list of properly signed round-r proposals from a quorum of
// distinct parties.
func (a *ABC) validList(round int64, value []byte) bool {
	var list proposalList
	if !a.cfg.Router.Decode(value, &list) {
		return false
	}
	var parties adversary.Set
	for i := range list.Proposals {
		p := &list.Proposals[i]
		if p.Round != round || p.Party < 0 || p.Party >= a.cfg.Router.N() || parties.Has(p.Party) {
			return false
		}
		if p.Coded && len(p.Batch) > 0 {
			return false
		}
		if a.cfg.Identity.Verify(p.Party, "abc-prop", a.signStatement(p), p.Sig) != nil {
			return false
		}
		if p.Coded {
			a.ensureBatchRBC(p.Round, p.Party)
			// Availability gate: we vouch for a list only when every coded
			// batch it references has reached us. A failing check is not
			// final — the agreement layer re-evaluates on blob arrival.
			if !a.batchAvailable(p) {
				return false
			}
		}
		parties = parties.Add(p.Party)
	}
	return a.trust.IsQuorum(a.self, parties)
}

// roundInWindow accepts proposals for the current round up to roundWindow
// rounds ahead: older rounds are settled, and buffering arbitrarily far
// futures would let a Byzantine flood grow the proposals map without
// bound.
func (a *ABC) roundInWindow(round int64) bool {
	cur := a.round.Load()
	return round >= cur && round <= cur+roundWindow
}

// onDecide delivers the decided round's payloads in a deterministic order
// and advances to the next round.
func (a *ABC) onDecide(round int64, value []byte) {
	if round != a.round.Load() {
		return // stale (cannot happen: rounds are sequential)
	}
	var list proposalList
	if !a.cfg.Router.Decode(value, &list) {
		return // cannot happen: the predicate validated the value
	}
	// Resolve coded headers to their batches first. A decide can outrun
	// a batch blob (external validity was checked elsewhere); park it and
	// retry when the blob arrives by reliable-broadcast totality.
	batches := make([][][]byte, len(list.Proposals))
	for i := range list.Proposals {
		b, ok := a.resolveBatch(&list.Proposals[i])
		if !ok {
			a.pendingDecide[round] = value
			if a.codedDeferred != nil {
				a.codedDeferred.Inc()
			}
			return
		}
		batches[i] = b
	}
	delete(a.pendingDecide, round)
	// Collect the union of batches, dedup by digest, order by digest.
	type item struct {
		digest  [32]byte
		payload []byte
	}
	var items []item
	seen := make(map[[32]byte]bool)
	for i := range list.Proposals {
		for _, payload := range batches[i] {
			d := sha256.Sum256(payload)
			if _, done := a.delivered[d]; done || seen[d] {
				continue
			}
			seen[d] = true
			items = append(items, item{digest: d, payload: payload})
		}
	}
	sort.Slice(items, func(i, j int) bool {
		return string(items[i].digest[:]) < string(items[j].digest[:])
	})
	for _, it := range items {
		a.deliverPayload(it.digest, it.payload)
	}
	// Advance the GC horizon: the maximum certified checkpoint carried by
	// the decided proposals, floored by the retention window. Both inputs
	// are functions of the decided value and the (deterministic) local
	// frontier, so every honest replica prunes identically.
	horizon := a.gcHorizon
	if a.cfg.VerifyCheckpoint != nil {
		for i := range list.Proposals {
			if ck := list.Proposals[i].Ckpt; len(ck) > 0 {
				if s, ok := a.cfg.VerifyCheckpoint(ck); ok && s > horizon {
					horizon = s
				}
			}
		}
	}
	seq := a.seq.Load()
	if w := a.cfg.RetentionWindow; w >= 0 && seq-w > horizon {
		horizon = seq - w
	}
	if horizon > a.gcHorizon {
		a.pruneBelow(horizon)
	}
	if a.submitted != nil {
		a.sweepSubmitted(time.Now())
	}
	// Garbage-collect an old round's agreement, then open the next round
	// if there is anything to do.
	delete(a.proposals, round)
	if old, ok := a.mvbas[round-2]; ok {
		old.Halt()
		delete(a.mvbas, round-2)
	}
	a.gcCoded(round)
	a.round.Store(round + 1)
	a.active = false
	// Payloads left over from this round (submitted but not in the decided
	// union) are re-proposed next round in digest order, so retransmission
	// order is deterministic across replicas regardless of arrival order.
	a.sortQueueByDigest()
	if a.cfg.RoundEnd != nil {
		a.cfg.RoundEnd(a.seq.Load(), round+1, a.gcHorizon)
	}
	a.maybeActivate()
	a.maybeAgree()
}

// deliverPayload hands one payload to the application at the next
// sequence number, maintaining the dedup and suffix bookkeeping.
func (a *ABC) deliverPayload(digest [32]byte, payload []byte) {
	seq := a.seq.Add(1) - 1
	a.delivered[digest] = seq
	if a.queued[digest] {
		delete(a.queued, digest)
		a.removeFromQueue(digest)
	}
	if a.cfg.VerifyCheckpoint != nil {
		a.recent = append(a.recent, recentEntry{seq: seq, payload: payload})
		if len(a.recent) > maxRecent {
			a.recent = a.recent[len(a.recent)-maxRecent:]
		}
	}
	a.span.Event(obs.StageDeliver, seq, "")
	if a.submitted != nil {
		if start, ok := a.submitted[digest]; ok {
			delete(a.submitted, digest)
			a.orderLat.ObserveSince(start)
		}
	}
	if a.deliveredSize != nil {
		a.deliveredSize.Set(int64(len(a.delivered)))
	}
	if a.cfg.Deliver == nil {
		return
	}
	if a.chunkSize > 0 {
		if id, idx, total, chunk, ok := parseFrame(payload); ok {
			// A chunk frame feeds the reassembler instead of the app; the
			// assembled payload delivers at the completing frame's seq.
			if assembled, done := a.feedFrame(id, idx, total, chunk); done {
				if a.chunksAssembled != nil {
					a.chunksAssembled.Inc()
				}
				a.cfg.Deliver(seq, assembled)
			}
			return
		}
	}
	a.cfg.Deliver(seq, payload)
}

// pruneBelow advances the GC horizon, dropping delivered-digest history
// and retained suffix entries below it.
func (a *ABC) pruneBelow(horizon int64) {
	a.gcHorizon = horizon
	freed := 0
	for d, s := range a.delivered {
		if s < horizon {
			delete(a.delivered, d)
			freed++
		}
	}
	cut := 0
	for cut < len(a.recent) && a.recent[cut].seq < horizon {
		cut++
	}
	if cut > 0 {
		a.recent = append(a.recent[:0:0], a.recent[cut:]...)
	}
	if a.gcFreed != nil {
		a.gcFreed.Add(int64(freed))
		a.deliveredSize.Set(int64(len(a.delivered)))
		a.horizonGauge.Set(horizon)
	}
}

// SuffixSince returns the retained payloads delivered at sequences
// [from, Seq()) and the current round, or nil when the retention log no
// longer reaches back to from. Dispatch goroutine only.
func (a *ABC) SuffixSince(from int64) ([][]byte, int64) {
	round := a.round.Load()
	if from >= a.seq.Load() {
		return nil, round
	}
	if len(a.recent) == 0 || a.recent[0].seq > from {
		return nil, round
	}
	var payloads [][]byte
	for _, e := range a.recent {
		if e.seq >= from {
			payloads = append(payloads, e.payload)
		}
	}
	return payloads, round
}

// Install adopts a certified checkpoint fetched from a peer: install (if
// non-nil) replaces the application state at sequence base, the suffix
// payloads then re-deliver in order through the normal Deliver path, and
// the round jumps forward to liveRound. A nil install means the local
// state already covers base and only the missing suffix tail replays.
// Returns false when nothing advanced. Dispatch goroutine only.
func (a *ABC) Install(base int64, install func() bool, suffix [][]byte, liveRound int64) bool {
	cur := a.seq.Load()
	live := base + int64(len(suffix))
	if live <= cur && liveRound <= a.round.Load() {
		return false
	}
	skip := int64(0)
	if install != nil {
		if base < cur {
			return false // would rewind state
		}
		if !install() {
			return false
		}
		// The snapshot subsumes all history below base: reset the dedup
		// and suffix bookkeeping wholesale.
		a.delivered = make(map[[32]byte]int64)
		a.recent = nil
		a.seq.Store(base)
		a.gcHorizon = base
		if a.horizonGauge != nil {
			a.horizonGauge.Set(base)
			a.deliveredSize.Set(0)
		}
	} else {
		if base > cur {
			return false // gap: suffix does not reach our frontier
		}
		skip = cur - base
		if skip >= int64(len(suffix)) && liveRound <= a.round.Load() {
			return false
		}
	}
	for _, payload := range suffix[min(skip, int64(len(suffix))):] {
		d := sha256.Sum256(payload)
		if _, done := a.delivered[d]; done {
			continue
		}
		a.deliverPayload(d, payload)
	}
	a.adoptRound(liveRound)
	return true
}

// adoptRound jumps the round counter forward after a checkpoint install,
// discarding agreement state of the skipped rounds. The pending queue is
// re-sorted into ascending-digest order first, so the retransmission of
// still-undelivered payloads proposes them in a deterministic order —
// reproducible across runs under a fixed sim seed.
func (a *ABC) adoptRound(round int64) {
	if round <= a.round.Load() {
		a.maybeActivate()
		a.maybeAgree()
		return
	}
	for r, inst := range a.mvbas {
		if r < round {
			inst.Halt()
			delete(a.mvbas, r)
		}
	}
	for r := range a.proposals {
		if r < round {
			delete(a.proposals, r)
		}
	}
	a.gcCoded(round)
	a.sortQueueByDigest()
	a.round.Store(round)
	a.active = false
	a.maybeActivate()
	a.maybeAgree()
}

// sortQueueByDigest orders the pending queue by payload digest, the same
// order deliveries use.
func (a *ABC) sortQueueByDigest() {
	sort.Slice(a.queue, func(i, j int) bool {
		di, dj := sha256.Sum256(a.queue[i]), sha256.Sum256(a.queue[j])
		return string(di[:]) < string(dj[:])
	})
}

// adaptBatch moves the adaptive batch bound one step per round opening:
// a backlog beyond the current bound doubles it toward the cap (fewer
// agreement rounds per request under load), while a queue that no
// longer fills half the bound halves it back toward the configured
// floor (no oversized bound lingering after a burst). In between, the
// bound holds steady.
func adaptBatch(cur, queued, floor, cap int) int {
	switch {
	case queued > cur:
		return min(2*cur, cap)
	case queued <= cur/2:
		return max(cur/2, floor)
	}
	return cur
}

func (a *ABC) removeFromQueue(d [32]byte) {
	for i, payload := range a.queue {
		if sha256.Sum256(payload) == d {
			a.queue = append(a.queue[:i], a.queue[i+1:]...)
			return
		}
	}
}
