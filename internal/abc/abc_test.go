package abc_test

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"sintra/internal/abc"
	"sintra/internal/adversary"
	"sintra/internal/netsim"
	"sintra/internal/testutil"
	"sintra/internal/wire"
)

// harness runs one atomic-broadcast instance per (honest) party and
// records each party's delivery log.
type harness struct {
	c     *testutil.Cluster
	insts map[int]*abc.ABC

	mu   sync.Mutex
	logs map[int][][]byte
	cond *sync.Cond
}

func newHarness(t *testing.T, c *testutil.Cluster, parties []int) *harness {
	return newHarnessCfg(t, c, parties, nil)
}

// newHarnessCfg is newHarness with a hook to adjust each party's config
// (e.g. batch-size knobs) before the instance is created.
func newHarnessCfg(t *testing.T, c *testutil.Cluster, parties []int, adjust func(*abc.Config)) *harness {
	t.Helper()
	h := &harness{
		c:     c,
		insts: make(map[int]*abc.ABC, len(parties)),
		logs:  make(map[int][][]byte, len(parties)),
	}
	h.cond = sync.NewCond(&h.mu)
	for _, i := range parties {
		i := i
		c.Routers[i].DoSync(func() {
			cfg := abc.Config{
				Router:   c.Routers[i],
				Struct:   c.Struct,
				Instance: "svc",
				Identity: c.Pub.Identity,
				IDKey:    c.Secrets[i].Identity,
				Coin:     c.Pub.Coin,
				CoinKey:  c.Secrets[i].Coin,
				Scheme:   c.Pub.QuorumSig(),
				Key:      c.Secrets[i].SigQuorum,
				Deliver: func(seq int64, payload []byte) {
					h.mu.Lock()
					defer h.mu.Unlock()
					if int64(len(h.logs[i])) != seq {
						t.Errorf("party %d: seq %d but log has %d entries", i, seq, len(h.logs[i]))
					}
					h.logs[i] = append(h.logs[i], payload)
					h.cond.Broadcast()
				},
			}
			if adjust != nil {
				adjust(&cfg)
			}
			h.insts[i] = abc.New(cfg)
		})
	}
	return h
}

// waitLogs blocks until every listed party delivered at least want
// payloads.
func (h *harness) waitLogs(t *testing.T, parties []int, want int, timeout time.Duration) {
	t.Helper()
	done := make(chan struct{})
	go func() {
		defer close(done)
		h.mu.Lock()
		defer h.mu.Unlock()
		for {
			ok := true
			for _, p := range parties {
				if len(h.logs[p]) < want {
					ok = false
					break
				}
			}
			if ok {
				return
			}
			h.cond.Wait()
		}
	}()
	select {
	case <-done:
	case <-time.After(timeout):
		h.mu.Lock()
		counts := make(map[int]int)
		for _, p := range parties {
			counts[p] = len(h.logs[p])
		}
		h.mu.Unlock()
		h.cond.Broadcast()
		t.Fatalf("timeout waiting for %d deliveries: %v", want, counts)
	}
}

// assertSameOrder verifies all listed parties delivered identical logs
// (up to the shortest length, which must be at least want).
func (h *harness) assertSameOrder(t *testing.T, parties []int, want int) {
	t.Helper()
	h.mu.Lock()
	defer h.mu.Unlock()
	ref := h.logs[parties[0]]
	if len(ref) < want {
		t.Fatalf("party %d delivered only %d", parties[0], len(ref))
	}
	for _, p := range parties[1:] {
		log := h.logs[p]
		n := len(ref)
		if len(log) < n {
			n = len(log)
		}
		for k := 0; k < n; k++ {
			if !bytes.Equal(ref[k], log[k]) {
				t.Fatalf("total order violated at position %d between parties %d and %d: %q vs %q",
					k, parties[0], p, ref[k], log[k])
			}
		}
	}
}

func TestTotalOrderSingleSubmitter(t *testing.T) {
	st := adversary.MustThreshold(4, 1)
	c := testutil.NewCluster(t, st, testutil.Options{Seed: 2})
	parties := []int{0, 1, 2, 3}
	h := newHarness(t, c, parties)
	const total = 6
	for k := 0; k < total; k++ {
		if err := h.insts[0].Broadcast([]byte(fmt.Sprintf("req-%d", k))); err != nil {
			t.Fatal(err)
		}
	}
	h.waitLogs(t, parties, total, 90*time.Second)
	h.assertSameOrder(t, parties, total)
}

func TestTotalOrderConcurrentSubmitters(t *testing.T) {
	st := adversary.MustThreshold(4, 1)
	c := testutil.NewCluster(t, st, testutil.Options{Seed: 3})
	parties := []int{0, 1, 2, 3}
	h := newHarness(t, c, parties)
	const per = 3
	for i := 0; i < 4; i++ {
		for k := 0; k < per; k++ {
			if err := h.insts[i].Broadcast([]byte(fmt.Sprintf("req-%d-%d", i, k))); err != nil {
				t.Fatal(err)
			}
		}
	}
	total := 4 * per
	h.waitLogs(t, parties, total, 120*time.Second)
	h.assertSameOrder(t, parties, total)
	// Every submitted request must appear exactly once.
	h.mu.Lock()
	defer h.mu.Unlock()
	seen := make(map[string]int)
	for _, p := range h.logs[0] {
		seen[string(p)]++
	}
	for i := 0; i < 4; i++ {
		for k := 0; k < per; k++ {
			key := fmt.Sprintf("req-%d-%d", i, k)
			if seen[key] != 1 {
				t.Fatalf("request %q delivered %d times", key, seen[key])
			}
		}
	}
}

func TestDuplicateSubmissionsDelivered0nce(t *testing.T) {
	st := adversary.MustThreshold(4, 1)
	c := testutil.NewCluster(t, st, testutil.Options{Seed: 5})
	parties := []int{0, 1, 2, 3}
	h := newHarness(t, c, parties)
	// The same payload submitted at every party must be delivered once.
	msg := []byte("idempotent request")
	for i := 0; i < 4; i++ {
		if err := h.insts[i].Broadcast(msg); err != nil {
			t.Fatal(err)
		}
	}
	marker := []byte("marker")
	if err := h.insts[1].Broadcast(marker); err != nil {
		t.Fatal(err)
	}
	h.waitLogs(t, parties, 2, 90*time.Second)
	h.assertSameOrder(t, parties, 2)
	h.mu.Lock()
	defer h.mu.Unlock()
	count := 0
	for _, p := range h.logs[0] {
		if bytes.Equal(p, msg) {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("duplicate payload delivered %d times", count)
	}
}

func TestProgressWithCrashedParty(t *testing.T) {
	st := adversary.MustThreshold(4, 1)
	c := testutil.NewCluster(t, st, testutil.Options{Seed: 7, Corrupted: []int{3}})
	parties := []int{0, 1, 2}
	h := newHarness(t, c, parties)
	const total = 4
	for k := 0; k < total; k++ {
		if err := h.insts[k%3].Broadcast([]byte(fmt.Sprintf("c-%d", k))); err != nil {
			t.Fatal(err)
		}
	}
	h.waitLogs(t, parties, total, 120*time.Second)
	h.assertSameOrder(t, parties, total)
}

func TestProgressUnderAdversarialScheduler(t *testing.T) {
	// Starve one party's inbound traffic; the others must keep ordering,
	// and the starved party must deliver the same prefix eventually.
	st := adversary.MustThreshold(4, 1)
	sched := netsim.NewDelayScheduler(11, func(m *wire.Message) bool { return m.To == 2 })
	c := testutil.NewCluster(t, st, testutil.Options{Scheduler: sched})
	parties := []int{0, 1, 2, 3}
	h := newHarness(t, c, parties)
	const total = 3
	for k := 0; k < total; k++ {
		if err := h.insts[0].Broadcast([]byte(fmt.Sprintf("s-%d", k))); err != nil {
			t.Fatal(err)
		}
	}
	h.waitLogs(t, []int{0, 1, 3}, total, 120*time.Second)
	h.waitLogs(t, []int{2}, total, 120*time.Second)
	h.assertSameOrder(t, parties, total)
}

func TestGeneralAdversaryAtomicBroadcast(t *testing.T) {
	// Example 1 with all of class a crashed: 5 of 9 servers order requests.
	st := adversary.Example1()
	c := testutil.NewCluster(t, st, testutil.Options{Seed: 13, Corrupted: []int{0, 1, 2, 3}})
	parties := []int{4, 5, 6, 7, 8}
	h := newHarness(t, c, parties)
	const total = 3
	for k := 0; k < total; k++ {
		if err := h.insts[parties[k%len(parties)]].Broadcast([]byte(fmt.Sprintf("g-%d", k))); err != nil {
			t.Fatal(err)
		}
	}
	h.waitLogs(t, parties, total, 180*time.Second)
	h.assertSameOrder(t, parties, total)
}

func TestSequenceNumbersAreDense(t *testing.T) {
	st := adversary.MustThreshold(4, 1)
	c := testutil.NewCluster(t, st, testutil.Options{Seed: 17})
	parties := []int{0, 1, 2, 3}
	h := newHarness(t, c, parties)
	const total = 5
	for k := 0; k < total; k++ {
		if err := h.insts[1].Broadcast([]byte(fmt.Sprintf("d-%d", k))); err != nil {
			t.Fatal(err)
		}
	}
	h.waitLogs(t, parties, total, 90*time.Second)
	// Density is asserted inside the Deliver callback (seq == len(log)).
	for _, i := range parties {
		if got := h.insts[i].Seq(); got < total {
			t.Fatalf("party %d Seq = %d", i, got)
		}
	}
}

func TestSustainedLoad(t *testing.T) {
	// Soak: 40 requests across all parties with small batches, checking
	// the log stays dense, identical, and complete.
	if testing.Short() {
		t.Skip("soak test")
	}
	st := adversary.MustThreshold(4, 1)
	c := testutil.NewCluster(t, st, testutil.Options{Seed: 61})
	parties := []int{0, 1, 2, 3}
	h := newHarness(t, c, parties)
	const total = 40
	for k := 0; k < total; k++ {
		if err := h.insts[k%4].Broadcast([]byte(fmt.Sprintf("soak-%03d", k))); err != nil {
			t.Fatal(err)
		}
	}
	h.waitLogs(t, parties, total, 300*time.Second)
	h.assertSameOrder(t, parties, total)
	h.mu.Lock()
	defer h.mu.Unlock()
	seen := make(map[string]bool, total)
	for _, p := range h.logs[0] {
		if seen[string(p)] {
			t.Fatalf("duplicate %q", p)
		}
		seen[string(p)] = true
	}
	if len(seen) < total {
		t.Fatalf("only %d distinct of %d", len(seen), total)
	}
}

func TestAdaptiveBatchBurst(t *testing.T) {
	// A burst far beyond BatchSize on one party: the adaptive bound must
	// grow toward MaxBatchSize to drain it, and every payload still
	// delivers exactly once in the same total order. Round() being read
	// here while the dispatch goroutines advance rounds also exercises
	// the atomic progress metrics under the race detector.
	st := adversary.MustThreshold(4, 1)
	c := testutil.NewCluster(t, st, testutil.Options{Seed: 29})
	parties := []int{0, 1, 2, 3}
	h := newHarnessCfg(t, c, parties, func(cfg *abc.Config) {
		cfg.BatchSize = 2
		cfg.MaxBatchSize = 16
	})
	const total = 24
	for k := 0; k < total; k++ {
		if err := h.insts[0].Broadcast([]byte(fmt.Sprintf("burst-%03d", k))); err != nil {
			t.Fatal(err)
		}
		if k%5 == 0 {
			_ = h.insts[0].Round() // cross-goroutine read during the run
		}
	}
	h.waitLogs(t, parties, total, 300*time.Second)
	h.assertSameOrder(t, parties, total)
	h.mu.Lock()
	defer h.mu.Unlock()
	seen := make(map[string]bool, total)
	for _, p := range h.logs[0] {
		if seen[string(p)] {
			t.Fatalf("duplicate %q", p)
		}
		seen[string(p)] = true
	}
	if len(seen) != total {
		t.Fatalf("delivered %d distinct of %d", len(seen), total)
	}
	// With a fixed bound of 2 the burst needs >= 12 rounds; adaptation
	// must have finished in strictly fewer.
	for _, i := range parties {
		if r := h.insts[i].Round(); r >= 12 {
			t.Fatalf("party %d still at round %d: batch bound did not grow", i, r)
		}
	}
}
