package abc_test

import (
	"fmt"
	"testing"
	"time"

	"sintra/internal/abc"
	"sintra/internal/adversary"
	"sintra/internal/testutil"
	"sintra/internal/wire"
)

// TestForgedProposalsRejected lets a corrupted party broadcast proposals
// with invalid signatures and proposals claiming another party's identity;
// the honest parties must never deliver forged batches and must keep
// ordering their own requests.
func TestForgedProposalsRejected(t *testing.T) {
	st := adversary.MustThreshold(4, 1)
	c := testutil.NewCluster(t, st, testutil.Options{Seed: 31, Corrupted: []int{3}})
	parties := []int{0, 1, 2}
	h := newHarness(t, c, parties)

	ep := c.Net.Endpoint(3)
	forged := abc.SignedProposal{
		Party: 3,
		Round: 1,
		Batch: [][]byte{[]byte("FORGED PAYLOAD")},
		Sig:   []byte("garbage signature"),
	}
	impersonating := abc.SignedProposal{
		Party: 1, // claims to be party 1
		Round: 1,
		Batch: [][]byte{[]byte("IMPERSONATED")},
		Sig:   []byte("garbage signature"),
	}
	for to := 0; to < 3; to++ {
		for _, p := range []abc.SignedProposal{forged, impersonating} {
			ep.Send(wire.Message{
				To: to, Protocol: abc.Protocol, Instance: "svc",
				Type: "PROPOSAL", Payload: wire.MustMarshalBody(p),
			})
		}
	}

	const total = 3
	for k := 0; k < total; k++ {
		if err := h.insts[k%3].Broadcast([]byte(fmt.Sprintf("honest-%d", k))); err != nil {
			t.Fatal(err)
		}
	}
	h.waitLogs(t, parties, total, 120*time.Second)
	h.assertSameOrder(t, parties, total)
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, p := range h.logs[0] {
		if string(p) == "FORGED PAYLOAD" || string(p) == "IMPERSONATED" {
			t.Fatalf("forged payload delivered: %q", p)
		}
	}
}

// TestByzantineBatchInsideMVBA has the corrupted party participate just
// enough to get garbage into the agreement inputs: it sends a VALIDLY
// structured proposal carrying an empty batch plus junk messages; honest
// requests must still be ordered identically.
func TestByzantineNoiseDoesNotBreakOrder(t *testing.T) {
	st := adversary.MustThreshold(4, 1)
	c := testutil.NewCluster(t, st, testutil.Options{Seed: 33, Corrupted: []int{0}})
	parties := []int{1, 2, 3}
	h := newHarness(t, c, parties)
	ep := c.Net.Endpoint(0)
	// Junk traffic across the abc instance.
	for i := 0; i < 30; i++ {
		ep.Send(wire.Message{
			To: 1 + i%3, Protocol: abc.Protocol, Instance: "svc",
			Type: "PROPOSAL", Payload: []byte{0x01, byte(i)},
		})
	}
	const total = 4
	for k := 0; k < total; k++ {
		if err := h.insts[parties[k%3]].Broadcast([]byte(fmt.Sprintf("r-%d", k))); err != nil {
			t.Fatal(err)
		}
	}
	h.waitLogs(t, parties, total, 120*time.Second)
	h.assertSameOrder(t, parties, total)
}

// TestCertSchemeAtomicBroadcast exercises the certificate signature path
// (the generalized-structure scheme) on a plain threshold structure via
// ForceCert — the ablation twin of the Shoup RSA default.
func TestCertSchemeAtomicBroadcast(t *testing.T) {
	st := adversary.MustThreshold(4, 1)
	c := testutil.NewCluster(t, st, testutil.Options{Seed: 35, ForceCert: true})
	parties := []int{0, 1, 2, 3}
	h := newHarness(t, c, parties)
	const total = 3
	for k := 0; k < total; k++ {
		if err := h.insts[k%4].Broadcast([]byte(fmt.Sprintf("cert-%d", k))); err != nil {
			t.Fatal(err)
		}
	}
	h.waitLogs(t, parties, total, 120*time.Second)
	h.assertSameOrder(t, parties, total)
}

// TestHybridFailureStructure runs the §6 extension end to end: six
// servers under the hybrid structure tolerating 1 Byzantine corruption
// PLUS 1 crash (n > 3·1 + 2·1). A plain Byzantine threshold on six
// servers tolerates only one fault in total, so this run — party 5 lying,
// party 4 silent — is beyond the classical model's reach.
func TestHybridFailureStructure(t *testing.T) {
	st, err := adversary.NewHybridThreshold(6, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	c := testutil.NewCluster(t, st, testutil.Options{Seed: 51, Corrupted: []int{4, 5}})
	parties := []int{0, 1, 2, 3}
	h := newHarness(t, c, parties)

	// Party 4 is crashed (fully silent). Party 5 is Byzantine: it floods
	// forged proposals and junk.
	ep := c.Net.Endpoint(5)
	forged := abc.SignedProposal{
		Party: 5, Round: 1,
		Batch: [][]byte{[]byte("HYBRID FORGERY")},
		Sig:   []byte("nope"),
	}
	for to := 0; to < 4; to++ {
		ep.Send(wire.Message{
			To: to, Protocol: abc.Protocol, Instance: "svc",
			Type: "PROPOSAL", Payload: wire.MustMarshalBody(forged),
		})
		ep.Send(wire.Message{
			To: to, Protocol: "aba", Instance: "junk",
			Type: "BVAL", Payload: []byte{1, 2, 3},
		})
	}

	const total = 3
	for k := 0; k < total; k++ {
		if err := h.insts[k%4].Broadcast([]byte(fmt.Sprintf("hy-%d", k))); err != nil {
			t.Fatal(err)
		}
	}
	h.waitLogs(t, parties, total, 120*time.Second)
	h.assertSameOrder(t, parties, total)
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, p := range h.logs[0] {
		if string(p) == "HYBRID FORGERY" {
			t.Fatal("forged payload ordered")
		}
	}
}

// TestExample1ActiveByzantineClass corrupts the WHOLE class a of the
// paper's Example 1 with actively malicious servers (not mere crashes):
// all four flood forged proposals, junk agreement traffic, and
// impersonation attempts while the five honest servers order requests.
func TestExample1ActiveByzantineClass(t *testing.T) {
	st := adversary.Example1()
	liars := []int{0, 1, 2, 3}
	c := testutil.NewCluster(t, st, testutil.Options{Seed: 53, Corrupted: liars})
	honest := []int{4, 5, 6, 7, 8}
	h := newHarness(t, c, honest)

	for _, liar := range liars {
		ep := c.Net.Endpoint(liar)
		forged := abc.SignedProposal{
			Party: liar, Round: 1,
			Batch: [][]byte{[]byte("CLASS-A FORGERY")},
			Sig:   []byte("invalid"),
		}
		impersonated := abc.SignedProposal{
			Party: 4, Round: 1, // claims to be honest server 4
			Batch: [][]byte{[]byte("IMPERSONATION")},
			Sig:   []byte("invalid"),
		}
		for _, to := range honest {
			for _, p := range []abc.SignedProposal{forged, impersonated} {
				ep.Send(wire.Message{
					To: to, Protocol: abc.Protocol, Instance: "svc",
					Type: "PROPOSAL", Payload: wire.MustMarshalBody(p),
				})
			}
			// Junk across the sub-protocol namespaces.
			ep.Send(wire.Message{
				To: to, Protocol: "mvba", Instance: "svc/r1",
				Type: "VOTE", Payload: []byte{0xde, 0xad},
			})
			ep.Send(wire.Message{
				To: to, Protocol: "aba", Instance: "svc/r1/t1",
				Type: "BVAL", Payload: []byte{0xbe, 0xef},
			})
		}
	}

	const total = 3
	for k := 0; k < total; k++ {
		if err := h.insts[honest[k%len(honest)]].Broadcast([]byte(fmt.Sprintf("e1-%d", k))); err != nil {
			t.Fatal(err)
		}
	}
	h.waitLogs(t, honest, total, 180*time.Second)
	h.assertSameOrder(t, honest, total)
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, p := range h.logs[4] {
		if string(p) == "CLASS-A FORGERY" || string(p) == "IMPERSONATION" {
			t.Fatalf("forged payload ordered: %q", p)
		}
	}
}
