// Package mvba implements multi-valued validated Byzantine agreement, the
// layer between binary agreement and atomic broadcast in the paper's
// architecture (§3). Parties agree on one proposed value from an
// arbitrary domain; the new "external validity" condition — a global
// predicate every honest party can evaluate — guarantees the decided
// value is acceptable to honest parties, ruling out agreement on a value
// nobody proposed.
//
// The protocol follows Cachin–Kursawe–Petzold–Shoup (CKPS01):
//
//  1. Every party consistent-broadcasts its (externally valid) proposal;
//     the CBC certificate is transferable evidence of the proposal.
//  2. After c-delivering a quorum of proposals, parties run trials: the
//     threshold coin elects a random leader; everybody votes whether it
//     holds the leader's certified proposal (yes-votes carry proposal and
//     certificate); a binary agreement decides whether to adopt the
//     leader.
//  3. On a 1-decision, parties that miss the winning proposal recover it
//     from the yes-voters — binary validity guarantees at least one
//     honest party voted yes and thus holds payload and certificate.
//
// Because the leader is drawn after the proposals are fixed, a constant
// expected number of trials suffices, giving constant expected rounds
// overall.
package mvba

import (
	"crypto/rand"
	"fmt"

	"sintra/internal/aba"
	"sintra/internal/adversary"
	"sintra/internal/cbc"
	"sintra/internal/coin"
	"sintra/internal/engine"
	"sintra/internal/obs"
	"sintra/internal/thresig"
	"sintra/internal/trust"
	"sintra/internal/wire"
)

// Protocol is the wire protocol name of multi-valued agreement.
const Protocol = "mvba"

// Message types.
const (
	typeStart    = "START"
	typeLeadCoin = "LEADCOIN"
	typeVote     = "VOTE"
	typeRecover  = "RECOVER"
	typeRecAns   = "RECANS"
)

type startBody struct {
	Proposal []byte
}

type leadCoinBody struct {
	Trial  int
	Shares []coin.Share
}

type voteBody struct {
	Trial   int
	HasCert bool
	Payload []byte
	Cert    []byte
}

type recoverBody struct {
	Trial int
}

// Config wires one multi-valued agreement instance.
type Config struct {
	// Router is the party's protocol router.
	Router *engine.Router
	// Struct is the adversary structure.
	Struct *adversary.Structure
	// Trust optionally overrides the quorum backend, threaded down to
	// the embedded consistent broadcasts and binary agreements and used
	// for the phase and vote quorums; nil wraps Struct in the symmetric
	// backend, preserving the original behavior.
	Trust trust.Quorums
	// Instance is the instance identifier.
	Instance string
	// Coin is the threshold coin; CoinKey the party's shares.
	Coin    *coin.Params
	CoinKey *coin.SecretKey
	// Scheme is the quorum-rule threshold signature scheme (for CBC
	// certificates); Key the party's signing key.
	Scheme thresig.Scheme
	Key    *thresig.SecretKey
	// Predicate is the external validity condition; nil accepts all.
	Predicate func(payload []byte) bool
	// Decide is called exactly once with the decided value.
	Decide func(value []byte)
}

type voteRec struct {
	from int
	body voteBody
}

type trialState struct {
	coinCombiner *coin.Combiner
	coinShared   bool
	leader       int
	leaderKnown  bool

	voted        bool
	votesFrom    adversary.Set
	pendingVotes []voteRec
	// deferred holds yes-evidence whose certificate verified but whose
	// external-validity predicate failed at evaluation time. Predicates
	// gated on local availability (ABC's coded mode) can pass later;
	// Reeval retries these without re-verifying the certificates.
	deferred []voteBody

	hasYes     bool
	yesPayload []byte
	yesCert    []byte

	abaStarted bool
	abaDone    bool
	abaValue   bool

	recoverAsked adversary.Set
	recoverSent  bool
}

// MVBA is one multi-valued agreement instance; dispatch-goroutine only.
type MVBA struct {
	cfg   Config
	trust trust.Quorums
	self  int

	started  bool
	proposal []byte

	cbcs         map[int]*cbc.CBC
	delivered    map[int][]byte // sender -> payload
	certs        map[int][]byte // sender -> certificate
	deliveredSet adversary.Set

	phase2 bool
	trial  int
	trials map[int]*trialState

	decided  bool
	decision []byte
	halted   bool

	span *obs.Span
}

// New creates and registers an instance, including the consistent
// broadcasts of all parties' proposals (dispatch goroutine or pre-Run).
func New(cfg Config) *MVBA {
	m := &MVBA{
		cfg:       cfg,
		trust:     cfg.Trust,
		self:      cfg.Router.Self(),
		cbcs:      make(map[int]*cbc.CBC, cfg.Router.N()),
		delivered: make(map[int][]byte),
		certs:     make(map[int][]byte),
		trials:    make(map[int]*trialState),
		span:      obs.StartSpan(cfg.Router.Observer(), cfg.Router.Self(), Protocol, cfg.Instance),
	}
	if m.trust == nil {
		m.trust = trust.NewSymmetric(cfg.Struct)
	}
	cfg.Router.RegisterSplit(Protocol, cfg.Instance, engine.SplitHandler{
		Verify:      m.verifyMsg,
		BatchVerify: m.batchVerify,
		Apply:       m.apply,
		VerifyTypes: []string{typeLeadCoin},
	})
	for j := 0; j < cfg.Router.N(); j++ {
		j := j
		m.cbcs[j] = cbc.New(cbc.Config{
			Router:    cfg.Router,
			Struct:    cfg.Struct,
			Trust:     m.trust,
			Instance:  m.cbcInstance(j),
			Sender:    j,
			Scheme:    cfg.Scheme,
			Key:       cfg.Key,
			Predicate: cfg.Predicate,
			Deliver:   func(p, cert []byte) { m.onCBCDeliver(j, p, cert) },
		})
	}
	return m
}

func (m *MVBA) cbcInstance(sender int) string {
	return cbc.InstanceID(sender, "m/"+m.cfg.Instance)
}

func (m *MVBA) abaInstance(trial int) string {
	return fmt.Sprintf("%s/t%d", m.cfg.Instance, trial)
}

func (m *MVBA) coinName(trial int) string {
	return fmt.Sprintf("mvba|%s|lead|%d", m.cfg.Instance, trial)
}

// Start proposes a value. Safe from any goroutine (loopback).
func (m *MVBA) Start(proposal []byte) error {
	if m.cfg.Predicate != nil && !m.cfg.Predicate(proposal) {
		return fmt.Errorf("mvba: own proposal fails the validity predicate")
	}
	return m.cfg.Router.Loopback(Protocol, m.cfg.Instance, typeStart, startBody{Proposal: proposal})
}

// Decided returns the decision, if reached.
func (m *MVBA) Decided() ([]byte, bool) { return m.decision, m.decided }

// Trial returns the current trial number (progress metric).
func (m *MVBA) Trial() int { return m.trial }

// Halt unregisters the instance and its consistent broadcasts. Call only
// when the whole system has moved on (e.g. two atomic-broadcast rounds
// later); dispatch goroutine only.
func (m *MVBA) Halt() {
	if m.halted {
		return
	}
	m.halted = true
	m.cfg.Router.Unregister(Protocol, m.cfg.Instance)
	for j := range m.cbcs {
		m.cfg.Router.Unregister(cbc.Protocol, m.cbcInstance(j))
	}
	m.trials = nil
}

func (m *MVBA) trialState(a int) *trialState {
	ts, ok := m.trials[a]
	if !ok {
		ts = &trialState{coinCombiner: coin.NewCombiner(m.cfg.Coin, m.coinName(a))}
		ts.coinCombiner.SetGate(trust.CoinGate(m.trust, m.self))
		m.trials[a] = ts
	}
	return ts
}

func (m *MVBA) valid(payload []byte) bool {
	return m.cfg.Predicate == nil || m.cfg.Predicate(payload)
}

// leadCoinVerdict is the Verify-stage result for LEADCOIN messages: the
// decoded trial and the subset of shares whose DLEQ proofs checked out.
type leadCoinVerdict struct {
	trial  int
	shares []coin.Share
}

// verifyMsg is the parallel Verify stage: leader-election coin shares —
// the instance's own dominant public-key cost (vote certificates depend
// on the elected leader and stay inline) — are checked off the dispatch
// goroutine.
func (m *MVBA) verifyMsg(from int, msgType string, payload []byte) any {
	if msgType != typeLeadCoin {
		return nil
	}
	var body leadCoinBody
	// Plain unmarshal, not Router.Decode: the nil-verdict fallback would
	// decode again and double-count router.malformed.
	if wire.UnmarshalBody(payload, &body) != nil || body.Trial < 1 {
		return nil
	}
	name := m.coinName(body.Trial)
	valid := make([]coin.Share, 0, len(body.Shares))
	for _, sh := range body.Shares {
		if m.cfg.Coin.VerifyShare(name, sh) == nil {
			valid = append(valid, sh)
		}
	}
	return &leadCoinVerdict{trial: body.Trial, shares: valid}
}

// batchVerify is the coalescing Verify stage for LEADCOIN bursts: the
// shares of all drained messages fold into one DLEQ batch, with each
// trial's coin base derived once. Messages that fail to decode keep a
// nil verdict and fall back to inline apply-time handling.
func (m *MVBA) batchVerify(msgs []*wire.Message) ([]any, int) {
	verdicts := make([]any, len(msgs))
	bodies := make([]*leadCoinBody, len(msgs))
	bv := m.cfg.Coin.NewBatchVerifier()
	for i, msg := range msgs {
		var body leadCoinBody
		if wire.UnmarshalBody(msg.Payload, &body) != nil || body.Trial < 1 {
			continue
		}
		bodies[i] = &body
		name := m.coinName(body.Trial)
		for _, sh := range body.Shares {
			bv.Add(name, sh)
		}
	}
	ok := bv.Verify()
	culprits, k := 0, 0
	for i, body := range bodies {
		if body == nil {
			continue
		}
		valid := make([]coin.Share, 0, len(body.Shares))
		for _, sh := range body.Shares {
			if ok[k] {
				valid = append(valid, sh)
			} else {
				culprits++
			}
			k++
		}
		verdicts[i] = &leadCoinVerdict{trial: body.Trial, shares: valid}
	}
	return verdicts, culprits
}

// Handle processes one protocol message without a pipeline verdict (the
// legacy single-stage entry point, kept for tests and direct callers).
func (m *MVBA) Handle(from int, msgType string, payload []byte) {
	m.apply(from, msgType, payload, nil)
}

// apply is the serialized Apply stage; a non-nil verdict carries
// pre-verified coin shares for LEADCOIN messages.
func (m *MVBA) apply(from int, msgType string, payload []byte, verdict any) {
	if m.halted {
		return
	}
	switch msgType {
	case typeStart:
		var body startBody
		if from != m.cfg.Router.Self() || !m.cfg.Router.Decode(payload, &body) {
			return
		}
		m.onStart(body.Proposal)
	case typeLeadCoin:
		if v, ok := verdict.(*leadCoinVerdict); ok {
			m.onLeadCoinVerified(v.trial, v.shares)
			return
		}
		var body leadCoinBody
		if !m.cfg.Router.Decode(payload, &body) || body.Trial < 1 {
			return
		}
		m.onLeadCoin(body.Trial, body.Shares)
	case typeVote:
		var body voteBody
		if !m.cfg.Router.Decode(payload, &body) || body.Trial < 1 {
			return
		}
		m.onVote(from, body)
	case typeRecover:
		var body recoverBody
		if !m.cfg.Router.Decode(payload, &body) || body.Trial < 1 {
			return
		}
		m.onRecover(from, body.Trial)
	case typeRecAns:
		var body voteBody
		if !m.cfg.Router.Decode(payload, &body) || body.Trial < 1 {
			return
		}
		m.onRecAns(body)
	}
}

func (m *MVBA) onStart(proposal []byte) {
	if m.started {
		return
	}
	m.started = true
	m.proposal = proposal
	_ = m.cbcs[m.cfg.Router.Self()].Start(proposal)
	m.checkPhase2()
}

func (m *MVBA) onCBCDeliver(sender int, payload, cert []byte) {
	if m.halted {
		return
	}
	m.delivered[sender] = payload
	m.certs[sender] = cert
	m.deliveredSet = m.deliveredSet.Add(sender)
	m.checkPhase2()
	// A pending 1-decision may have been waiting for the leader's payload.
	if ts, ok := m.trials[m.trial]; ok && ts.leaderKnown && ts.leader == sender {
		m.evalVotes(m.trial)
		m.tryFinish(m.trial)
	}
}

func (m *MVBA) checkPhase2() {
	if m.phase2 || !m.started || !m.trust.IsQuorum(m.self, m.deliveredSet) {
		return
	}
	m.phase2 = true
	m.startTrial(1)
}

func (m *MVBA) startTrial(a int) {
	m.trial = a
	ts := m.trialState(a)
	if !ts.coinShared {
		ts.coinShared = true
		shares, err := m.cfg.Coin.ReleaseShares(m.cfg.CoinKey, m.coinName(a), rand.Reader)
		if err == nil {
			_ = m.cfg.Router.BroadcastJournaled(fmt.Sprintf("leadcoin/%d", a),
				Protocol, m.cfg.Instance, typeLeadCoin, leadCoinBody{Trial: a, Shares: shares})
		}
	}
	// Earlier-arrived coin shares may already complete the coin — and the
	// leader may even be known already (fast peers revealed it while we
	// were still collecting proposals), in which case maybeElect's
	// idempotence guard would skip the vote: cast it explicitly.
	m.maybeElect(a)
	m.sendVote(a)
	m.evalVotes(a)
}

func (m *MVBA) onLeadCoin(a int, shares []coin.Share) {
	ts := m.trialState(a)
	for _, sh := range shares {
		_ = ts.coinCombiner.Add(sh)
	}
	m.maybeElect(a)
}

// onLeadCoinVerified consumes shares whose proofs the Verify stage
// already checked, skipping re-verification on the dispatch goroutine.
func (m *MVBA) onLeadCoinVerified(a int, shares []coin.Share) {
	ts := m.trialState(a)
	for _, sh := range shares {
		ts.coinCombiner.AddVerified(sh)
	}
	m.maybeElect(a)
}

func (m *MVBA) maybeElect(a int) {
	ts := m.trialState(a)
	if ts.leaderKnown || !ts.coinCombiner.Ready() {
		return
	}
	v, err := ts.coinCombiner.Value()
	if err != nil {
		return
	}
	ts.leaderKnown = true
	ts.leader = v.Index(m.cfg.Router.N())
	m.sendVote(a)
	m.evalVotes(a)
}

// sendVote casts this party's vote for trial a once phase 2 has begun and
// the leader is known.
func (m *MVBA) sendVote(a int) {
	ts := m.trialState(a)
	if ts.voted || !ts.leaderKnown || !m.phase2 {
		return
	}
	ts.voted = true
	// One vote per trial is a commitment: a recovered replica must not
	// flip between the with-cert and abstain forms.
	slot := fmt.Sprintf("vote/%d", a)
	if p, ok := m.delivered[ts.leader]; ok {
		_ = m.cfg.Router.BroadcastJournaled(slot, Protocol, m.cfg.Instance, typeVote, voteBody{
			Trial: a, HasCert: true, Payload: p, Cert: m.certs[ts.leader],
		})
		return
	}
	_ = m.cfg.Router.BroadcastJournaled(slot, Protocol, m.cfg.Instance, typeVote, voteBody{Trial: a})
}

func (m *MVBA) onVote(from int, body voteBody) {
	ts := m.trialState(body.Trial)
	if ts.votesFrom.Has(from) {
		return
	}
	ts.votesFrom = ts.votesFrom.Add(from)
	ts.pendingVotes = append(ts.pendingVotes, voteRec{from: from, body: body})
	m.evalVotes(body.Trial)
}

// evalVotes processes stored votes once the leader is known, extracting
// yes-evidence and starting the binary agreement when the input is
// determined.
func (m *MVBA) evalVotes(a int) {
	ts := m.trialState(a)
	if !ts.leaderKnown {
		return
	}
	if !ts.hasYes {
		if p, ok := m.delivered[ts.leader]; ok {
			ts.hasYes = true
			ts.yesPayload = p
			ts.yesCert = m.certs[ts.leader]
		}
	}
	for _, v := range ts.pendingVotes {
		if !v.body.HasCert || ts.hasYes {
			continue
		}
		// Certificate first: once it checks out the evidence is real and
		// worth retaining even if the predicate cannot pass yet.
		if cbc.VerifyCertificate(m.cfg.Scheme, m.cbcInstance(ts.leader), v.body.Payload, v.body.Cert) != nil {
			continue
		}
		if !m.valid(v.body.Payload) {
			ts.deferred = append(ts.deferred, v.body)
			continue
		}
		ts.hasYes = true
		ts.yesPayload = v.body.Payload
		ts.yesCert = v.body.Cert
	}
	ts.pendingVotes = nil
	if ts.hasYes {
		ts.deferred = nil
	}

	if !ts.abaStarted && m.phase2 && (ts.hasYes || m.trust.IsQuorum(m.self, ts.votesFrom)) {
		ts.abaStarted = true
		inst := aba.New(aba.Config{
			Router:   m.cfg.Router,
			Struct:   m.cfg.Struct,
			Trust:    m.trust,
			Instance: m.abaInstance(a),
			Coin:     m.cfg.Coin,
			CoinKey:  m.cfg.CoinKey,
			Decide:   func(v bool) { m.onABADecide(a, v) },
		})
		_ = inst.Start(ts.hasYes)
	}
	m.tryFinish(a)
}

func (m *MVBA) onABADecide(a int, v bool) {
	if m.halted {
		return
	}
	ts := m.trialState(a)
	ts.abaDone = true
	ts.abaValue = v
	m.tryFinish(a)
}

// tryFinish concludes a trial whose binary agreement has decided.
func (m *MVBA) tryFinish(a int) {
	ts := m.trialState(a)
	if !ts.abaDone || m.decided || a != m.trial {
		return
	}
	if !ts.abaValue {
		m.startTrial(a + 1)
		return
	}
	if ts.hasYes {
		m.decide(ts.yesPayload)
		return
	}
	// Binary validity guarantees an honest yes-voter exists; fetch the
	// winning proposal from the others.
	if !ts.recoverSent {
		ts.recoverSent = true
		_ = m.cfg.Router.Broadcast(Protocol, m.cfg.Instance, typeRecover, recoverBody{Trial: a})
	}
}

func (m *MVBA) onRecover(from, a int) {
	ts := m.trialState(a)
	if !ts.hasYes || ts.recoverAsked.Has(from) {
		return
	}
	ts.recoverAsked = ts.recoverAsked.Add(from)
	_ = m.cfg.Router.Send(from, Protocol, m.cfg.Instance, typeRecAns, voteBody{
		Trial: a, HasCert: true, Payload: ts.yesPayload, Cert: ts.yesCert,
	})
}

func (m *MVBA) onRecAns(body voteBody) {
	a := body.Trial
	ts := m.trialState(a)
	if m.decided || !ts.leaderKnown || !body.HasCert {
		return
	}
	if cbc.VerifyCertificate(m.cfg.Scheme, m.cbcInstance(ts.leader), body.Payload, body.Cert) != nil {
		return
	}
	if !m.valid(body.Payload) {
		// Certified but not yet locally valid (availability-gated
		// predicate): keep it for Reeval instead of dropping it.
		if !ts.hasYes {
			ts.deferred = append(ts.deferred, body)
		}
		return
	}
	if !ts.hasYes {
		ts.hasYes = true
		ts.yesPayload = body.Payload
		ts.yesCert = body.Cert
	}
	m.tryFinish(a)
}

// Reeval re-runs the external-validity predicate over every stash whose
// first evaluation failed: the embedded consistent broadcasts' pending
// SENDs and this instance's deferred (certificate-verified) votes and
// recovery answers. Call from the dispatch goroutine whenever local
// state the predicate depends on has changed — the ABC coded mode calls
// it each time a proposal batch finishes its coded broadcast. Safe to
// call at any time; a no-op when nothing is pending.
func (m *MVBA) Reeval() {
	if m.halted {
		return
	}
	for _, c := range m.cbcs {
		c.Reeval()
	}
	if m.decided {
		return
	}
	trials := make([]int, 0, len(m.trials))
	for a := range m.trials {
		trials = append(trials, a)
	}
	for _, a := range trials {
		ts := m.trials[a]
		if ts == nil || ts.hasYes {
			continue
		}
		kept := ts.deferred[:0]
		progress := false
		for _, v := range ts.deferred {
			if !ts.hasYes && m.valid(v.Payload) {
				ts.hasYes = true
				ts.yesPayload = v.Payload
				ts.yesCert = v.Cert
				progress = true
			} else if !ts.hasYes {
				kept = append(kept, v)
			}
		}
		ts.deferred = kept
		if ts.hasYes {
			ts.deferred = nil
		}
		if progress {
			m.evalVotes(a)
			m.tryFinish(a)
		}
	}
}

func (m *MVBA) decide(value []byte) {
	if m.decided {
		return
	}
	m.decided = true
	m.decision = value
	m.span.End(obs.StageDecide, int64(m.trial))
	if m.cfg.Decide != nil {
		m.cfg.Decide(value)
	}
}
