package mvba_test

import (
	"fmt"
	"testing"

	"sintra/internal/adversary"
	"sintra/internal/cbc"
	"sintra/internal/coin"
	"sintra/internal/mvba"
	"sintra/internal/testutil"
	"sintra/internal/wire"
)

// TestByzantineProposerAndVoter drives an actively malicious party 0
// against three honest parties: it equivocates in its consistent
// broadcast, floods garbage votes with forged certificates, and sends
// malformed recovery answers. The honest parties must still agree on an
// honest proposal.
func TestByzantineProposerAndVoter(t *testing.T) {
	st := adversary.MustThreshold(4, 1)
	c := testutil.NewCluster(t, st, testutil.Options{Seed: 21, Corrupted: []int{0}})
	ep := c.Net.Endpoint(0)

	// The adversary's raw sender.
	sendRaw := func(to int, protocol, instance, msgType string, body any) {
		ep.Send(wire.Message{
			To: to, Protocol: protocol, Instance: instance,
			Type: msgType, Payload: wire.MustMarshalBody(body),
		})
	}

	tag := "byz"
	// Equivocating CBC SENDs for the adversary's own proposal slot.
	ownCBC := cbc.InstanceID(0, "m/"+tag)
	type sendBody struct{ Payload []byte }
	sendRaw(1, cbc.Protocol, ownCBC, "SEND", sendBody{Payload: []byte("evil-A")})
	sendRaw(2, cbc.Protocol, ownCBC, "SEND", sendBody{Payload: []byte("evil-B")})
	sendRaw(3, cbc.Protocol, ownCBC, "SEND", sendBody{Payload: []byte("evil-C")})

	// Garbage votes for several trials, claiming certificates that cannot
	// verify.
	type voteBody struct {
		Trial   int
		HasCert bool
		Payload []byte
		Cert    []byte
	}
	for trial := 1; trial <= 3; trial++ {
		for to := 1; to < 4; to++ {
			sendRaw(to, mvba.Protocol, tag, "VOTE", voteBody{
				Trial: trial, HasCert: true,
				Payload: []byte("forged"), Cert: []byte("not a certificate"),
			})
		}
	}
	// Bogus coin shares (must be rejected by the DLEQ proofs).
	type leadCoinBody struct {
		Trial  int
		Shares []coin.Share
	}
	for to := 1; to < 4; to++ {
		sendRaw(to, mvba.Protocol, tag, "LEADCOIN", leadCoinBody{Trial: 1})
	}
	// Malformed recovery answers.
	for to := 1; to < 4; to++ {
		sendRaw(to, mvba.Protocol, tag, "RECANS", voteBody{Trial: 1, HasCert: true, Payload: []byte("x"), Cert: []byte("y")})
	}

	proposals := map[int][]byte{
		1: []byte("honest-1"),
		2: []byte("honest-2"),
		3: []byte("honest-3"),
	}
	got := runMVBA(t, c, tag, proposals, nil)
	decided := assertAgreementOnProposal(t, got, proposals)
	t.Logf("decided %q despite the byzantine party", decided)
}

// TestByzantineCannotForgeDecision checks that a flood of malformed
// protocol messages across many instances never crashes honest parties or
// causes disagreement.
func TestByzantineCannotForgeDecision(t *testing.T) {
	st := adversary.MustThreshold(4, 1)
	c := testutil.NewCluster(t, st, testutil.Options{Seed: 23, Corrupted: []int{3}})
	ep := c.Net.Endpoint(3)
	// Fuzz-ish garbage across protocols and instances.
	for i := 0; i < 50; i++ {
		ep.Send(wire.Message{
			To:       i % 3,
			Protocol: []string{"mvba", "aba", "cbc", "rbc"}[i%4],
			Instance: fmt.Sprintf("fz/%d", i%5),
			Type:     []string{"VOTE", "BVAL", "SEND", "FINAL", "RECOVER", "XXX"}[i%6],
			Payload:  []byte{byte(i), 0xFF, 0x00, byte(i * 7)},
		})
	}
	proposals := map[int][]byte{
		0: []byte("p0"),
		1: []byte("p1"),
		2: []byte("p2"),
	}
	got := runMVBA(t, c, "fz/0", proposals, nil)
	assertAgreementOnProposal(t, got, proposals)
}
