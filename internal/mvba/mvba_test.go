package mvba_test

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"sintra/internal/adversary"
	"sintra/internal/mvba"
	"sintra/internal/netsim"
	"sintra/internal/testutil"
	"sintra/internal/wire"
)

type decision struct {
	party int
	value []byte
}

// runMVBA spawns instances on the given parties with per-party proposals
// and waits for all of them to decide.
func runMVBA(t *testing.T, c *testutil.Cluster, tag string, proposals map[int][]byte, pred func([]byte) bool) map[int][]byte {
	t.Helper()
	ch := make(chan decision, len(proposals)*2)
	insts := make(map[int]*mvba.MVBA, len(proposals))
	for i := range proposals {
		i := i
		c.Routers[i].DoSync(func() {
			insts[i] = mvba.New(mvba.Config{
				Router:    c.Routers[i],
				Struct:    c.Struct,
				Instance:  tag,
				Coin:      c.Pub.Coin,
				CoinKey:   c.Secrets[i].Coin,
				Scheme:    c.Pub.QuorumSig(),
				Key:       c.Secrets[i].SigQuorum,
				Predicate: pred,
				Decide:    func(v []byte) { ch <- decision{party: i, value: v} },
			})
		})
	}
	for i, p := range proposals {
		if err := insts[i].Start(p); err != nil {
			t.Fatal(err)
		}
	}
	got := make(map[int][]byte, len(proposals))
	deadline := time.After(120 * time.Second)
	for len(got) < len(proposals) {
		select {
		case d := <-ch:
			if _, dup := got[d.party]; dup {
				t.Fatalf("party %d decided twice", d.party)
			}
			got[d.party] = d.value
		case <-deadline:
			t.Fatalf("timeout: %d of %d decisions", len(got), len(proposals))
		}
	}
	return got
}

// assertAgreementOnProposal checks all parties decided the same value and
// that it is one of the proposals.
func assertAgreementOnProposal(t *testing.T, got map[int][]byte, proposals map[int][]byte) []byte {
	t.Helper()
	var first []byte
	for _, v := range got {
		first = v
		break
	}
	for p, v := range got {
		if !bytes.Equal(v, first) {
			t.Fatalf("agreement violated at party %d", p)
		}
	}
	for _, p := range proposals {
		if bytes.Equal(first, p) {
			return first
		}
	}
	t.Fatalf("decided value %q was never proposed", first)
	return nil
}

func TestAgreementOnSomeProposal(t *testing.T) {
	st := adversary.MustThreshold(4, 1)
	c := testutil.NewCluster(t, st, testutil.Options{Seed: 2})
	proposals := map[int][]byte{}
	for i := 0; i < 4; i++ {
		proposals[i] = []byte(fmt.Sprintf("proposal-of-%d", i))
	}
	got := runMVBA(t, c, "basic", proposals, nil)
	v := assertAgreementOnProposal(t, got, proposals)
	t.Logf("decided %q", v)
}

func TestUnanimousProposalWins(t *testing.T) {
	st := adversary.MustThreshold(4, 1)
	c := testutil.NewCluster(t, st, testutil.Options{Seed: 3})
	proposals := map[int][]byte{}
	for i := 0; i < 4; i++ {
		proposals[i] = []byte("the only proposal")
	}
	got := runMVBA(t, c, "unanimous", proposals, nil)
	if !bytes.Equal(assertAgreementOnProposal(t, got, proposals), []byte("the only proposal")) {
		t.Fatal("wrong decision")
	}
}

func TestExternalValidity(t *testing.T) {
	// Predicate only accepts values with an "ok:" prefix; the decided
	// value must satisfy it even though one party proposes garbage via the
	// raw network (a corrupted proposer).
	st := adversary.MustThreshold(4, 1)
	c := testutil.NewCluster(t, st, testutil.Options{Seed: 5, Corrupted: []int{3}})
	pred := func(p []byte) bool { return bytes.HasPrefix(p, []byte("ok:")) }
	proposals := map[int][]byte{
		0: []byte("ok:zero"),
		1: []byte("ok:one"),
		2: []byte("ok:two"),
	}
	got := runMVBA(t, c, "validity", proposals, pred)
	v := assertAgreementOnProposal(t, got, proposals)
	if !pred(v) {
		t.Fatalf("decided invalid value %q", v)
	}
}

func TestCrashedPartyProgress(t *testing.T) {
	st := adversary.MustThreshold(4, 1)
	c := testutil.NewCluster(t, st, testutil.Options{Seed: 7, Corrupted: []int{2}})
	proposals := map[int][]byte{
		0: []byte("a"),
		1: []byte("b"),
		3: []byte("c"),
	}
	got := runMVBA(t, c, "crash", proposals, nil)
	assertAgreementOnProposal(t, got, proposals)
}

func TestSequentialInstances(t *testing.T) {
	st := adversary.MustThreshold(4, 1)
	c := testutil.NewCluster(t, st, testutil.Options{Seed: 9})
	for k := 0; k < 3; k++ {
		proposals := map[int][]byte{}
		for i := 0; i < 4; i++ {
			proposals[i] = []byte(fmt.Sprintf("r%d-p%d", k, i))
		}
		got := runMVBA(t, c, fmt.Sprintf("seq-%d", k), proposals, nil)
		assertAgreementOnProposal(t, got, proposals)
	}
}

func TestGeneralAdversaryMVBA(t *testing.T) {
	// Example 1 with the whole class a crashed.
	st := adversary.Example1()
	c := testutil.NewCluster(t, st, testutil.Options{Seed: 11, Corrupted: []int{0, 1, 2, 3}})
	proposals := map[int][]byte{}
	for _, i := range []int{4, 5, 6, 7, 8} {
		proposals[i] = []byte(fmt.Sprintf("general-%d", i))
	}
	got := runMVBA(t, c, "ex1", proposals, nil)
	assertAgreementOnProposal(t, got, proposals)
}

func TestAdversarialSchedulerProgress(t *testing.T) {
	// Starve party 1 entirely; the rest must still decide, and party 1
	// must catch up afterwards.
	st := adversary.MustThreshold(4, 1)
	sched := netsim.NewDelayScheduler(13, func(m *wire.Message) bool {
		return m.To == 1
	})
	c := testutil.NewCluster(t, st, testutil.Options{Scheduler: sched})
	proposals := map[int][]byte{}
	for i := 0; i < 4; i++ {
		proposals[i] = []byte(fmt.Sprintf("slow-%d", i))
	}
	got := runMVBA(t, c, "starved", proposals, nil)
	assertAgreementOnProposal(t, got, proposals)
}
