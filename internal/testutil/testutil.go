// Package testutil provides the in-process cluster harness used by the
// protocol integration tests and the experiment harness: it runs the
// trusted dealer, builds a simulated asynchronous network, and starts one
// router per party.
package testutil

import (
	"sync"
	"testing"

	"sintra/internal/adversary"
	"sintra/internal/deal"
	"sintra/internal/engine"
	"sintra/internal/group"
	"sintra/internal/netsim"
	"sintra/internal/obs"
)

// Options configures a test cluster.
type Options struct {
	// Scheduler overrides the default fair random scheduler.
	Scheduler netsim.Scheduler
	// Seed seeds the default scheduler (default 1).
	Seed int64
	// Clients adds client endpoints beyond the n servers.
	Clients int
	// ForceCert uses certificate signatures even for threshold structures.
	ForceCert bool
	// Group overrides the default test group (group.TestDefault(), which
	// honors the SINTRA_GROUP environment variable for the CI backend
	// matrix).
	Group group.Group
	// Corrupted lists parties for which NO router is started: the test
	// drives their endpoints directly (byzantine behaviour) or leaves
	// them silent (crash).
	Corrupted []int
	// Observe installs a fresh obs.Registry per router (exposed as
	// Cluster.Regs) so tests can assert on protocol counters.
	Observe bool
}

// Cluster is a dealt, running set of parties over a simulated network.
type Cluster struct {
	Struct  *adversary.Structure
	Net     *netsim.Network
	Routers []*engine.Router
	Regs    []*obs.Registry // per-party registries when Options.Observe
	Pub     *deal.Public
	Secrets []*deal.PartySecret

	stopOnce sync.Once
	wg       sync.WaitGroup
}

// NewCluster deals keys for the structure and starts n routers. The
// cluster is stopped automatically at test cleanup.
func NewCluster(tb testing.TB, st *adversary.Structure, opts Options) *Cluster {
	tb.Helper()
	g := opts.Group
	if g == nil {
		g = group.TestDefault()
	}
	pub, secrets, err := deal.New(deal.Options{
		Group:     g,
		Structure: st,
		RSAPrimes: deal.TestPrimes256(),
		ForceCert: opts.ForceCert,
	})
	if err != nil {
		tb.Fatalf("dealer: %v", err)
	}
	sched := opts.Scheduler
	if sched == nil {
		seed := opts.Seed
		if seed == 0 {
			seed = 1
		}
		sched = netsim.NewRandomScheduler(seed)
	}
	c := &Cluster{
		Struct:  st,
		Net:     netsim.New(st.N(), opts.Clients, sched),
		Pub:     pub,
		Secrets: secrets,
	}
	corrupted := make(map[int]bool, len(opts.Corrupted))
	for _, i := range opts.Corrupted {
		corrupted[i] = true
	}
	c.Routers = make([]*engine.Router, st.N())
	if opts.Observe {
		c.Regs = make([]*obs.Registry, st.N())
	}
	for i := 0; i < st.N(); i++ {
		if corrupted[i] {
			continue
		}
		r := engine.NewRouter(c.Net.Endpoint(i))
		if opts.Observe {
			c.Regs[i] = obs.NewRegistry()
			r.SetObserver(c.Regs[i])
		}
		c.Routers[i] = r
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			r.Run()
		}()
	}
	tb.Cleanup(c.Stop)
	return c
}

// N returns the number of parties.
func (c *Cluster) N() int { return c.Struct.N() }

// Stop shuts the network down and waits for every router to exit.
func (c *Cluster) Stop() {
	c.stopOnce.Do(func() {
		c.Net.Stop()
		c.wg.Wait()
	})
}
