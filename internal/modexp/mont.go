package modexp

import (
	"math/big"
	"math/bits"
)

// mont implements word-level Montgomery multiplication (CIOS) for a
// fixed odd modulus. big.Int's Exp uses the same representation
// internally but does not export it, and every externally-structured
// algorithm in this package — windowed fixed-base tables, the
// interleaved multi-exponentiation — otherwise pays for a full
// reduction (division or Barrett) per step, several times the cost of
// the multiplication itself. Operating on raw little-endian uint64
// words keeps each chain step at ~2·n² word multiplications with no
// allocation.
//
// The struct is immutable after construction; callers supply scratch,
// so one mont may be shared by concurrent goroutines.
type mont struct {
	n      int      // modulus length in words
	m      []uint64 // modulus, little-endian
	modInt *big.Int // the modulus as a big.Int (not retained from caller)
	k0     uint64   // -m^{-1} mod 2^64
	rr     []uint64 // R² mod m, R = 2^{64n}: toMont multiplier
	one    []uint64 // R mod m: Montgomery form of 1
	unit   []uint64 // plain 1: fromMont multiplier
}

// newMont prepares Montgomery constants for mod, or returns nil when
// the representation does not apply (even, zero or negative modulus,
// or a platform without 64-bit words).
func newMont(mod *big.Int) *mont {
	if bits.UintSize != 64 || mod.Sign() <= 0 || mod.Bit(0) == 0 {
		return nil
	}
	n := (mod.BitLen() + 63) / 64
	mt := &mont{n: n, m: make([]uint64, n), modInt: new(big.Int).Set(mod)}
	for i, w := range mod.Bits() {
		mt.m[i] = uint64(w)
	}
	// k0 = -m[0]^{-1} mod 2^64 by Newton iteration (5 steps double
	// the valid bits from the seed's 3 to beyond 64).
	inv := mt.m[0]
	for i := 0; i < 5; i++ {
		inv *= 2 - mt.m[0]*inv
	}
	mt.k0 = -inv
	r := new(big.Int).Lsh(bigOne, uint(64*n))
	mt.one = mt.words(new(big.Int).Mod(r, mod))
	mt.rr = mt.words(new(big.Int).Mod(new(big.Int).Mul(r, r), mod))
	mt.unit = make([]uint64, n)
	mt.unit[0] = 1
	return mt
}

// words converts x (which must be in [0, m)) to fixed-width
// little-endian words.
func (mt *mont) words(x *big.Int) []uint64 {
	out := make([]uint64, mt.n)
	for i, w := range x.Bits() {
		out[i] = uint64(w)
	}
	return out
}

// toInt converts fixed-width words back to a big.Int.
func (mt *mont) toInt(x []uint64) *big.Int {
	words := make([]big.Word, len(x))
	for i, w := range x {
		words[i] = big.Word(w)
	}
	return new(big.Int).SetBits(words)
}

// mul sets z = x·y·R^{-1} mod m (CIOS). z may alias x or y; t is
// caller scratch of at least n+2 words.
func (mt *mont) mul(z, x, y, t []uint64) {
	if mt.n == 4 {
		mt.mul4(z, x, y)
		return
	}
	n := mt.n
	t = t[:n+2]
	for i := range t {
		t[i] = 0
	}
	for i := 0; i < n; i++ {
		// t += x[i] · y
		var c uint64
		xi := x[i]
		for j := 0; j < n; j++ {
			hi, lo := bits.Mul64(xi, y[j])
			var carry uint64
			lo, carry = bits.Add64(lo, t[j], 0)
			hi += carry
			lo, carry = bits.Add64(lo, c, 0)
			hi += carry
			t[j] = lo
			c = hi
		}
		var carry uint64
		t[n], carry = bits.Add64(t[n], c, 0)
		t[n+1] += carry

		// Add u·m with u chosen so the low word cancels; the one-word
		// right shift is fused into the loop by writing each result a
		// word lower (a memmove here would dominate at small n).
		u := t[0] * mt.k0
		hi, lo := bits.Mul64(u, mt.m[0])
		_, carry = bits.Add64(lo, t[0], 0)
		c = hi + carry
		for j := 1; j < n; j++ {
			hi, lo = bits.Mul64(u, mt.m[j])
			lo, carry = bits.Add64(lo, t[j], 0)
			hi += carry
			lo, carry = bits.Add64(lo, c, 0)
			hi += carry
			t[j-1] = lo
			c = hi
		}
		t[n-1], carry = bits.Add64(t[n], c, 0)
		t[n], _ = bits.Add64(t[n+1], 0, carry)
		t[n+1] = 0
	}
	// t[:n+1] < 2m: subtract m once if needed.
	if t[n] != 0 || !lessThan(t[:n], mt.m) {
		var borrow uint64
		for j := 0; j < n; j++ {
			t[j], borrow = bits.Sub64(t[j], mt.m[j], borrow)
		}
	}
	copy(z, t[:n])
}

// mul4 is mul unrolled for 4-word (≤256-bit) moduli — the width of
// the simulation groups, where loop and bounds-check overhead is a
// third of the generic routine's time. All state lives in registers;
// no scratch is needed and z may alias x or y.
func (mt *mont) mul4(z, x, y []uint64) {
	y0, y1, y2, y3 := y[0], y[1], y[2], y[3]
	m0, m1, m2, m3 := mt.m[0], mt.m[1], mt.m[2], mt.m[3]
	k0 := mt.k0
	var t0, t1, t2, t3, t4, t5 uint64
	for i := 0; i < 4; i++ {
		xi := x[i]
		var c, hi, lo, carry uint64
		// t += xi · y
		hi, lo = bits.Mul64(xi, y0)
		t0, carry = bits.Add64(t0, lo, 0)
		c = hi + carry
		hi, lo = bits.Mul64(xi, y1)
		lo, carry = bits.Add64(lo, c, 0)
		hi += carry
		t1, carry = bits.Add64(t1, lo, 0)
		c = hi + carry
		hi, lo = bits.Mul64(xi, y2)
		lo, carry = bits.Add64(lo, c, 0)
		hi += carry
		t2, carry = bits.Add64(t2, lo, 0)
		c = hi + carry
		hi, lo = bits.Mul64(xi, y3)
		lo, carry = bits.Add64(lo, c, 0)
		hi += carry
		t3, carry = bits.Add64(t3, lo, 0)
		c = hi + carry
		t4, carry = bits.Add64(t4, c, 0)
		t5 += carry

		// t = (t + u·m) >> 64 with the shift fused in
		u := t0 * k0
		hi, lo = bits.Mul64(u, m0)
		_, carry = bits.Add64(t0, lo, 0)
		c = hi + carry
		hi, lo = bits.Mul64(u, m1)
		lo, carry = bits.Add64(lo, c, 0)
		hi += carry
		t0, carry = bits.Add64(t1, lo, 0)
		c = hi + carry
		hi, lo = bits.Mul64(u, m2)
		lo, carry = bits.Add64(lo, c, 0)
		hi += carry
		t1, carry = bits.Add64(t2, lo, 0)
		c = hi + carry
		hi, lo = bits.Mul64(u, m3)
		lo, carry = bits.Add64(lo, c, 0)
		hi += carry
		t2, carry = bits.Add64(t3, lo, 0)
		c = hi + carry
		t3, carry = bits.Add64(t4, c, 0)
		t4 = t5 + carry
		t5 = 0
	}
	// t < 2m: subtract m and keep the difference unless it borrowed
	// without a spare top word.
	r0, b := bits.Sub64(t0, m0, 0)
	r1, b2 := bits.Sub64(t1, m1, b)
	r2, b3 := bits.Sub64(t2, m2, b2)
	r3, b4 := bits.Sub64(t3, m3, b3)
	if t4 != 0 || b4 == 0 {
		t0, t1, t2, t3 = r0, r1, r2, r3
	}
	z[0], z[1], z[2], z[3] = t0, t1, t2, t3
}

// expWords converts a non-negative exponent to little-endian uint64
// words for cheap window extraction (per-bit Int.Bit calls add up to a
// measurable slice of an exponentiation at these operand sizes).
func expWords(e *big.Int) []uint64 {
	bw := e.Bits()
	out := make([]uint64, len(bw))
	for i, w := range bw {
		out[i] = uint64(w)
	}
	return out
}

// expDigit extracts the w-bit window of e whose low bit is at position
// p. Bits past the top of e read as zero.
func expDigit(e []uint64, p, w int) uint64 {
	i, off := p>>6, uint(p&63)
	if i >= len(e) {
		return 0
	}
	d := e[i] >> off
	if off+uint(w) > 64 && i+1 < len(e) {
		d |= e[i+1] << (64 - off)
	}
	return d & (1<<uint(w) - 1)
}

// lessThan reports x < y for equal-length little-endian words.
func lessThan(x, y []uint64) bool {
	for i := len(x) - 1; i >= 0; i-- {
		if x[i] != y[i] {
			return x[i] < y[i]
		}
	}
	return false
}

// toMont converts x (in [0, m)) into Montgomery form.
func (mt *mont) toMont(z, x, t []uint64) {
	mt.mul(z, x, mt.rr, t)
}

// fromMont converts out of Montgomery form.
func (mt *mont) fromMont(z, x, t []uint64) {
	mt.mul(z, x, mt.unit, t)
}
