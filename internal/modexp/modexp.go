// Package modexp provides fixed-base windowed precomputation for
// modular exponentiation with arbitrary (odd) moduli. It backs the
// fast paths in internal/group (Schnorr-group elements mod P) and
// internal/thresig (RSA share verification mod N): any base that is
// fixed for the lifetime of a deployment — a generator, a dealt
// verification key — trades memory for dropping every squaring from
// the exponentiation ladder.
//
// The representation is table[i][j] = base^(j·2^(i·w)) mod M for j in
// [1, 2^w), so base^e is one table multiply per w-bit window of e:
// ~|e|/w modular multiplications and no squarings, versus ~|e|
// squarings plus ~|e|/4 multiplications for the generic ladder.
// Measured on amd64, the crossover leaves math/big's internal
// Montgomery ladder behind once the window is wide enough that the
// step count drops below roughly a third of the generic operation
// count; the window is therefore chosen adaptively from the exponent
// width (8 bits for ≤320-bit exponents, 6 up to 768, else 5 — about
// 260 KiB, 350 KiB and 3.3 MiB of table per base respectively).
//
// Tables are built lazily on first use and immutable afterwards;
// Table is safe for concurrent use and never mutates its operands,
// which the engine's parallel verify workers rely on.
package modexp

import (
	"math/big"
	"sync"
)

// Table holds the windowed precomputation for one (base, modulus)
// pair, covering exponents up to a fixed bit width.
type Table struct {
	mod     *big.Int
	base    *big.Int
	window  int
	maxBits int

	once  sync.Once
	red   *reducer
	table [][]*big.Int // generic-path rows (even moduli, 32-bit words)
	mt    *mont
	mtab  [][][]uint64 // Montgomery-form rows: mtab[i][j] = base^(j·2^(i·w))·R
}

// windowFor picks the window width for a given exponent bit width —
// wide enough to beat the generic ladder, narrow enough to keep the
// table build and memory cost sane.
func windowFor(expBits int) int {
	switch {
	case expBits <= 320:
		return 8
	case expBits <= 768:
		return 6
	default:
		return 5
	}
}

// NewTable prepares a fixed-base table for base mod mod, sized for
// exponents of up to expBits bits. The table itself is built on first
// Exp call. Both arguments are copied; the originals are never
// retained or mutated.
func NewTable(base, mod *big.Int, expBits int) *Table {
	w := windowFor(expBits)
	windows := (expBits + w - 1) / w
	return &Table{
		mod:     new(big.Int).Set(mod),
		base:    new(big.Int).Mod(base, mod),
		window:  w,
		maxBits: windows * w,
	}
}

// Base returns a copy of the base the table was built for.
func (t *Table) Base() *big.Int { return new(big.Int).Set(t.base) }

func (t *Table) build() {
	w := t.window
	windows := t.maxBits / w
	if t.mt = newMont(t.mod); t.mt != nil {
		mt := t.mt
		scratch := make([]uint64, mt.n+2)
		cur := make([]uint64, mt.n)
		mt.toMont(cur, mt.words(t.base), scratch)
		t.mtab = make([][][]uint64, windows)
		// One backing array per row keeps entries cache-adjacent.
		for i := 0; i < windows; i++ {
			flat := make([]uint64, mt.n<<w)
			row := make([][]uint64, 1<<w)
			for j := 1; j < 1<<w; j++ {
				row[j] = flat[j*mt.n : (j+1)*mt.n]
				if j == 1 {
					copy(row[j], cur)
				} else {
					mt.mul(row[j], row[j-1], cur, scratch)
				}
			}
			t.mtab[i] = row
			for k := 0; k < w; k++ {
				mt.mul(cur, cur, cur, scratch)
			}
		}
		return
	}
	t.red = newReducer(t.mod)
	t.table = make([][]*big.Int, windows)
	cur := new(big.Int).Set(t.base)
	q, tmp := new(big.Int), new(big.Int)
	for i := 0; i < windows; i++ {
		row := make([]*big.Int, 1<<w)
		row[1] = new(big.Int).Set(cur)
		for j := 2; j < 1<<w; j++ {
			nxt := new(big.Int).Mul(row[j-1], cur)
			t.red.reduce(nxt, q, tmp)
			row[j] = nxt
		}
		t.table[i] = row
		for k := 0; k < w; k++ {
			cur.Mul(cur, cur)
			t.red.reduce(cur, q, tmp)
		}
	}
}

// multiExpWindow picks the per-term window width for MultiExp. The
// tables here are transient — built per call, not amortized over a
// deployment — so the windows are much narrower than windowFor's:
// the build cost of 2^w−2 multiplications has to pay for itself
// within a single exponent.
func multiExpWindow(expBits int) int {
	switch {
	case expBits <= 64:
		return 3
	case expBits <= 320:
		return 4
	default:
		return 5
	}
}

// reducer performs division-free Barrett reduction modulo a fixed
// modulus (HAC 14.42): with µ = ⌊2^{2n}/m⌋ precomputed once, reducing
// any x < 2^{2n} costs two multiplications, two shifts and at most two
// subtractions — where a Mod call pays a full division several times
// that price. math/big's Exp hides the same economics behind its
// internal Montgomery representation; Barrett recovers them for the
// externally-structured algorithms math/big does not offer (the
// windowed tables and the interleaved multi-exponentiation here).
// The struct holds only immutable constants; callers pass their own
// scratch, so one reducer may be shared by concurrent goroutines.
type reducer struct {
	m  *big.Int
	mu *big.Int
	n  uint
}

func newReducer(m *big.Int) *reducer {
	n := uint(m.BitLen())
	mu := new(big.Int).Lsh(bigOne, 2*n)
	return &reducer{m: m, mu: mu.Quo(mu, m), n: n}
}

// reduce sets x to x mod m using q and t as scratch; x must be in
// [0, 2^{2n}) and must not alias the scratch.
func (r *reducer) reduce(x, q, t *big.Int) {
	q.Rsh(x, r.n-1)
	q.Mul(q, r.mu)
	q.Rsh(q, r.n+1)
	x.Sub(x, t.Mul(q, r.m))
	for x.Cmp(r.m) >= 0 {
		x.Sub(x, r.m)
	}
}

var bigOne = big.NewInt(1)

// MultiExp returns Π bases[i]^exps[i] mod M with one shared squaring
// chain: the dominant cost of a product of k independent
// exponentiations is the k·|e| squarings, and interleaving the
// fixed-window evaluations lets all terms ride a single chain of
// max|e| squarings, with Barrett reduction keeping each chain step at
// multiplication cost. This is what makes random-linear-combination
// batch verification (internal/dleq, internal/thresig) cheaper than
// k separate checks: the per-term work collapses to table
// multiplications while the squarings are paid once.
//
// Exponents must be non-negative; nil or negative exponents (and
// nil bases) make the call fall back to sequential generic
// exponentiation. Operands are never mutated.
func MultiExp(mod *big.Int, bases, exps []*big.Int) *big.Int {
	if len(bases) != len(exps) {
		panic("modexp: MultiExp length mismatch")
	}
	acc := big.NewInt(1)
	for i := range bases {
		if bases[i] == nil || exps[i] == nil || exps[i].Sign() < 0 {
			// Degenerate input: do the whole product the slow,
			// always-correct way.
			tmp := new(big.Int)
			for j := range bases {
				acc.Mod(tmp.Mul(acc, new(big.Int).Exp(bases[j], exps[j], mod)), mod)
			}
			return acc
		}
	}
	if mt := newMont(mod); mt != nil {
		return multiExpMont(mt, bases, exps)
	}
	red := newReducer(mod)
	q, tmp := new(big.Int), new(big.Int)
	type term struct {
		w   int
		e   *big.Int
		tab []*big.Int // tab[d] = base^d mod M for d in [1, 2^w)
	}
	var terms []term
	maxBits := 0
	for i := range bases {
		e := exps[i]
		if e.Sign() == 0 {
			continue
		}
		w := multiExpWindow(e.BitLen())
		tab := make([]*big.Int, 1<<w)
		b := new(big.Int).Mod(bases[i], mod)
		tab[1] = b
		for d := 2; d < 1<<w; d++ {
			nxt := new(big.Int).Mul(tab[d-1], b)
			red.reduce(nxt, q, tmp)
			tab[d] = nxt
		}
		terms = append(terms, term{w: w, e: e, tab: tab})
		if bl := e.BitLen(); bl > maxBits {
			maxBits = bl
		}
	}
	// Scan the shared chain MSB-first. A term's window with low bit p
	// is multiplied in when the scan reaches p; the remaining p
	// squarings then raise that contribution to digit·2^p, so every
	// aligned window of every exponent lands exactly once.
	for p := maxBits - 1; p >= 0; p-- {
		if acc.BitLen() > 1 { // skip squaring the initial 1
			acc.Mul(acc, acc)
			red.reduce(acc, q, tmp)
		}
		for _, t := range terms {
			if p%t.w != 0 || p >= t.e.BitLen() {
				continue
			}
			var d uint
			for k := t.w - 1; k >= 0; k-- {
				d = d<<1 | t.e.Bit(p+k)
			}
			if d != 0 {
				acc.Mul(acc, t.tab[d])
				red.reduce(acc, q, tmp)
			}
		}
	}
	return acc
}

// multiExpMont is the interleaved chain over word-level Montgomery
// arithmetic: same windowing as the generic path, with every chain
// step a single CIOS multiplication and all per-term tables packed in
// one backing array.
func multiExpMont(mt *mont, bases, exps []*big.Int) *big.Int {
	type term struct {
		w     int
		ebits int
		ew    []uint64
		tab   [][]uint64 // Montgomery form: tab[d] = base^d · R
	}
	scratch := make([]uint64, mt.n+2)
	var terms []term
	maxBits := 0
	b := new(big.Int)
	for i := range bases {
		e := exps[i]
		if e.Sign() == 0 {
			continue
		}
		w := multiExpWindow(e.BitLen())
		flat := make([]uint64, mt.n<<w)
		tab := make([][]uint64, 1<<w)
		bw := mt.words(b.Mod(bases[i], mt.modInt))
		for d := 1; d < 1<<w; d++ {
			tab[d] = flat[d*mt.n : (d+1)*mt.n]
			if d == 1 {
				mt.toMont(tab[1], bw, scratch)
			} else {
				mt.mul(tab[d], tab[d-1], tab[1], scratch)
			}
		}
		terms = append(terms, term{w: w, ebits: e.BitLen(), ew: expWords(e), tab: tab})
		if bl := e.BitLen(); bl > maxBits {
			maxBits = bl
		}
	}
	acc := make([]uint64, mt.n)
	copy(acc, mt.one)
	started := false
	for p := maxBits - 1; p >= 0; p-- {
		if started {
			mt.mul(acc, acc, acc, scratch)
		}
		for i := range terms {
			t := &terms[i]
			if p%t.w != 0 || p >= t.ebits {
				continue
			}
			if d := expDigit(t.ew, p, t.w); d != 0 {
				mt.mul(acc, acc, t.tab[d], scratch)
				started = true
			}
		}
	}
	mt.fromMont(acc, acc, scratch)
	return mt.toInt(acc)
}

// Exp returns base^e mod M. Exponents that are negative or wider than
// the table fall back to the generic ladder.
func (t *Table) Exp(e *big.Int) *big.Int {
	if e == nil || e.Sign() < 0 || e.BitLen() > t.maxBits {
		return new(big.Int).Exp(t.base, e, t.mod)
	}
	t.once.Do(t.build)
	w := t.window
	if mt := t.mt; mt != nil {
		scratch := make([]uint64, mt.n+2)
		acc := make([]uint64, mt.n)
		copy(acc, mt.one)
		ew, ebits := expWords(e), e.BitLen()
		for i, row := range t.mtab {
			if i*w >= ebits {
				break
			}
			if d := expDigit(ew, i*w, w); d != 0 {
				mt.mul(acc, acc, row[d], scratch)
			}
		}
		mt.fromMont(acc, acc, scratch)
		return mt.toInt(acc)
	}
	acc := big.NewInt(1)
	q, tmp := new(big.Int), new(big.Int)
	for i, row := range t.table {
		var d uint
		for k := w - 1; k >= 0; k-- {
			d = d<<1 | e.Bit(i*w+k)
		}
		if d != 0 {
			acc.Mul(acc, row[d])
			t.red.reduce(acc, q, tmp)
		}
	}
	return acc
}
