// Package modexp provides fixed-base windowed precomputation for
// modular exponentiation with arbitrary (odd) moduli. It backs the
// fast paths in internal/group (Schnorr-group elements mod P) and
// internal/thresig (RSA share verification mod N): any base that is
// fixed for the lifetime of a deployment — a generator, a dealt
// verification key — trades memory for dropping every squaring from
// the exponentiation ladder.
//
// The representation is table[i][j] = base^(j·2^(i·w)) mod M for j in
// [1, 2^w), so base^e is one table multiply per w-bit window of e:
// ~|e|/w modular multiplications and no squarings, versus ~|e|
// squarings plus ~|e|/4 multiplications for the generic ladder.
// Measured on amd64, the crossover leaves math/big's internal
// Montgomery ladder behind once the window is wide enough that the
// step count drops below roughly a third of the generic operation
// count; the window is therefore chosen adaptively from the exponent
// width (8 bits for ≤320-bit exponents, 6 up to 768, else 5 — about
// 260 KiB, 350 KiB and 3.3 MiB of table per base respectively).
//
// Tables are built lazily on first use and immutable afterwards;
// Table is safe for concurrent use and never mutates its operands,
// which the engine's parallel verify workers rely on.
package modexp

import (
	"math/big"
	"sync"
)

// Table holds the windowed precomputation for one (base, modulus)
// pair, covering exponents up to a fixed bit width.
type Table struct {
	mod     *big.Int
	base    *big.Int
	window  int
	maxBits int

	once  sync.Once
	table [][]*big.Int
}

// windowFor picks the window width for a given exponent bit width —
// wide enough to beat the generic ladder, narrow enough to keep the
// table build and memory cost sane.
func windowFor(expBits int) int {
	switch {
	case expBits <= 320:
		return 8
	case expBits <= 768:
		return 6
	default:
		return 5
	}
}

// NewTable prepares a fixed-base table for base mod mod, sized for
// exponents of up to expBits bits. The table itself is built on first
// Exp call. Both arguments are copied; the originals are never
// retained or mutated.
func NewTable(base, mod *big.Int, expBits int) *Table {
	w := windowFor(expBits)
	windows := (expBits + w - 1) / w
	return &Table{
		mod:     new(big.Int).Set(mod),
		base:    new(big.Int).Mod(base, mod),
		window:  w,
		maxBits: windows * w,
	}
}

// Base returns a copy of the base the table was built for.
func (t *Table) Base() *big.Int { return new(big.Int).Set(t.base) }

func (t *Table) build() {
	w := t.window
	windows := t.maxBits / w
	t.table = make([][]*big.Int, windows)
	cur := new(big.Int).Set(t.base)
	tmp := new(big.Int)
	for i := 0; i < windows; i++ {
		row := make([]*big.Int, 1<<w)
		row[1] = new(big.Int).Set(cur)
		for j := 2; j < 1<<w; j++ {
			row[j] = new(big.Int).Mod(tmp.Mul(row[j-1], cur), t.mod)
		}
		t.table[i] = row
		for k := 0; k < w; k++ {
			cur.Mod(tmp.Mul(cur, cur), t.mod)
		}
	}
}

// Exp returns base^e mod M. Exponents that are negative or wider than
// the table fall back to the generic ladder.
func (t *Table) Exp(e *big.Int) *big.Int {
	if e == nil || e.Sign() < 0 || e.BitLen() > t.maxBits {
		return new(big.Int).Exp(t.base, e, t.mod)
	}
	t.once.Do(t.build)
	w := t.window
	acc := big.NewInt(1)
	tmp := new(big.Int)
	for i, row := range t.table {
		var d uint
		for k := w - 1; k >= 0; k-- {
			d = d<<1 | e.Bit(i*w+k)
		}
		if d != 0 {
			acc.Mod(tmp.Mul(acc, row[d]), t.mod)
		}
	}
	return acc
}
