package modexp

import (
	"crypto/rand"
	"math/big"
	"sync"
	"testing"
)

func TestTableMatchesGenericLadder(t *testing.T) {
	mods := []string{
		"f9dd6f1cb24a78a4ee9083323dd56189b2c5b0d4cabe82493b01bb22301345a3", // 256-bit prime
		"e3a1b2c5d4f60789", // small odd modulus
	}
	for _, mh := range mods {
		m, _ := new(big.Int).SetString(mh, 16)
		base, _ := rand.Int(rand.Reader, m)
		for _, bits := range []int{64, 256, 700, 1100} {
			tab := NewTable(base, m, bits)
			exps := []*big.Int{
				big.NewInt(0), big.NewInt(1), big.NewInt(255), big.NewInt(256),
				new(big.Int).Lsh(big.NewInt(1), uint(bits-1)),
				new(big.Int).Lsh(big.NewInt(1), uint(bits+8)), // over-wide: fallback
			}
			for i := 0; i < 12; i++ {
				e, _ := rand.Int(rand.Reader, new(big.Int).Lsh(big.NewInt(1), uint(bits)))
				exps = append(exps, e)
			}
			for _, e := range exps {
				want := new(big.Int).Exp(base, e, m)
				if got := tab.Exp(e); got.Cmp(want) != 0 {
					t.Fatalf("bits=%d: base^%v mod %s mismatch", bits, e, mh)
				}
			}
		}
	}
}

func TestMultiExpMatchesSequential(t *testing.T) {
	m, _ := new(big.Int).SetString("f9dd6f1cb24a78a4ee9083323dd56189b2c5b0d4cabe82493b01bb22301345a3", 16)
	for _, k := range []int{0, 1, 2, 3, 7, 14} {
		for _, bits := range []int{1, 64, 128, 256, 700} {
			bases := make([]*big.Int, k)
			exps := make([]*big.Int, k)
			want := big.NewInt(1)
			for i := 0; i < k; i++ {
				bases[i], _ = rand.Int(rand.Reader, m)
				exps[i], _ = rand.Int(rand.Reader, new(big.Int).Lsh(big.NewInt(1), uint(bits)))
				if i == 0 {
					exps[i].SetInt64(0) // exercise the zero-exponent skip
				}
				want.Mul(want, new(big.Int).Exp(bases[i], exps[i], m)).Mod(want, m)
			}
			if got := MultiExp(m, bases, exps); got.Cmp(want) != 0 {
				t.Fatalf("k=%d bits=%d: MultiExp mismatch", k, bits)
			}
		}
	}
}

func TestMultiExpMixedWidths(t *testing.T) {
	m, _ := new(big.Int).SetString("f9dd6f1cb24a78a4ee9083323dd56189b2c5b0d4cabe82493b01bb22301345a3", 16)
	bases := make([]*big.Int, 4)
	exps := make([]*big.Int, 4)
	want := big.NewInt(1)
	for i, bits := range []int{3, 130, 257, 900} {
		bases[i], _ = rand.Int(rand.Reader, m)
		exps[i], _ = rand.Int(rand.Reader, new(big.Int).Lsh(big.NewInt(1), uint(bits)))
		want.Mul(want, new(big.Int).Exp(bases[i], exps[i], m)).Mod(want, m)
	}
	if got := MultiExp(m, bases, exps); got.Cmp(want) != 0 {
		t.Fatal("MultiExp mismatch across mixed exponent widths")
	}
}

func TestMultiExpNegativeFallback(t *testing.T) {
	m := big.NewInt(0x1_0001)
	bases := []*big.Int{big.NewInt(3), big.NewInt(5)}
	exps := []*big.Int{big.NewInt(-7), big.NewInt(11)}
	want := new(big.Int).Exp(bases[0], exps[0], m)
	want.Mul(want, new(big.Int).Exp(bases[1], exps[1], m)).Mod(want, m)
	if got := MultiExp(m, bases, exps); got.Cmp(want) != 0 {
		t.Fatal("MultiExp negative-exponent fallback mismatch")
	}
}

func TestMultiExpDoesNotMutateOperands(t *testing.T) {
	m, _ := new(big.Int).SetString("f9dd6f1cb24a78a4ee9083323dd56189b2c5b0d4cabe82493b01bb22301345a3", 16)
	bases := make([]*big.Int, 3)
	exps := make([]*big.Int, 3)
	snaps := make([]*big.Int, 6)
	for i := range bases {
		bases[i], _ = rand.Int(rand.Reader, m)
		exps[i], _ = rand.Int(rand.Reader, m)
		snaps[i] = new(big.Int).Set(bases[i])
		snaps[3+i] = new(big.Int).Set(exps[i])
	}
	MultiExp(m, bases, exps)
	for i := range bases {
		if bases[i].Cmp(snaps[i]) != 0 || exps[i].Cmp(snaps[3+i]) != 0 {
			t.Fatal("MultiExp mutated an operand")
		}
	}
}

func TestTableDoesNotMutateOperands(t *testing.T) {
	m, _ := new(big.Int).SetString("f9dd6f1cb24a78a4ee9083323dd56189b2c5b0d4cabe82493b01bb22301345a3", 16)
	base, _ := rand.Int(rand.Reader, m)
	e, _ := rand.Int(rand.Reader, m)
	baseSnap, eSnap, mSnap := new(big.Int).Set(base), new(big.Int).Set(e), new(big.Int).Set(m)
	tab := NewTable(base, m, 256)
	tab.Exp(e)
	if base.Cmp(baseSnap) != 0 || e.Cmp(eSnap) != 0 || m.Cmp(mSnap) != 0 {
		t.Fatal("Table.Exp mutated an operand")
	}
}

func TestTableConcurrentFirstUse(t *testing.T) {
	m, _ := new(big.Int).SetString("f9dd6f1cb24a78a4ee9083323dd56189b2c5b0d4cabe82493b01bb22301345a3", 16)
	base, _ := rand.Int(rand.Reader, m)
	e, _ := rand.Int(rand.Reader, m)
	want := new(big.Int).Exp(base, e, m)
	tab := NewTable(base, m, 256)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if tab.Exp(e).Cmp(want) != 0 {
				panic("concurrent table exp diverged")
			}
		}()
	}
	wg.Wait()
}
