// Package identity provides each party's individual digital signature
// identity (Ed25519). The broadcast protocols use individual signatures
// wherever evidence must be transferable beyond an authenticated link —
// most prominently the signed client requests that atomic broadcast
// proposes for agreement (paper §3: "every party digitally signs the
// message it proposes ... the external validity condition ensures that all
// messages in the decided list come with valid signatures").
package identity

import (
	"crypto/ed25519"
	"errors"
	"fmt"
	"io"
)

// Errors reported by the registry.
var (
	// ErrBadSignature is returned when verification fails.
	ErrBadSignature = errors.New("identity: bad signature")
	// ErrUnknownParty is returned for out-of-range party indices.
	ErrUnknownParty = errors.New("identity: unknown party")
)

// Registry holds the public identity keys of all parties. It is part of
// the dealer's public output.
type Registry struct {
	// PubKeys[i] is party i's Ed25519 public key.
	PubKeys [][]byte
}

// Key is one party's private identity key.
type Key struct {
	// Party is the owner.
	Party int
	// Seed is the Ed25519 private seed.
	Seed []byte
}

// Generate creates identity keys for n parties.
func Generate(n int, rnd io.Reader) (*Registry, []*Key, error) {
	reg := &Registry{PubKeys: make([][]byte, n)}
	keys := make([]*Key, n)
	for i := 0; i < n; i++ {
		pub, priv, err := ed25519.GenerateKey(rnd)
		if err != nil {
			return nil, nil, fmt.Errorf("identity: %w", err)
		}
		reg.PubKeys[i] = pub
		keys[i] = &Key{Party: i, Seed: priv.Seed()}
	}
	return reg, keys, nil
}

// N returns the number of registered parties.
func (r *Registry) N() int { return len(r.PubKeys) }

func frame(domain string, msg []byte) []byte {
	out := make([]byte, 0, len(domain)+len(msg)+20)
	out = append(out, "sintra/identity/"...)
	out = append(out, domain...)
	out = append(out, 0)
	return append(out, msg...)
}

// Sign produces the party's signature on msg under the given domain.
func (k *Key) Sign(domain string, msg []byte) []byte {
	priv := ed25519.NewKeyFromSeed(k.Seed)
	return ed25519.Sign(priv, frame(domain, msg))
}

// Verify checks a party's signature on msg under the given domain.
func (r *Registry) Verify(party int, domain string, msg, sig []byte) error {
	if party < 0 || party >= len(r.PubKeys) {
		return ErrUnknownParty
	}
	if len(sig) != ed25519.SignatureSize ||
		!ed25519.Verify(r.PubKeys[party], frame(domain, msg), sig) {
		return ErrBadSignature
	}
	return nil
}
