package identity_test

import (
	"crypto/rand"
	"testing"

	"sintra/internal/identity"
)

func TestSignVerify(t *testing.T) {
	reg, keys, err := identity.Generate(3, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if reg.N() != 3 {
		t.Fatalf("N = %d", reg.N())
	}
	msg := []byte("proposal bytes")
	sig := keys[1].Sign("abc-prop", msg)
	if err := reg.Verify(1, "abc-prop", msg, sig); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyRejects(t *testing.T) {
	reg, keys, err := identity.Generate(3, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("m")
	sig := keys[0].Sign("d", msg)
	if err := reg.Verify(1, "d", msg, sig); err == nil {
		t.Fatal("signature verified under wrong party")
	}
	if err := reg.Verify(0, "other-domain", msg, sig); err == nil {
		t.Fatal("signature transferred across domains")
	}
	if err := reg.Verify(0, "d", []byte("n"), sig); err == nil {
		t.Fatal("signature verified for wrong message")
	}
	bad := append([]byte(nil), sig...)
	bad[3] ^= 1
	if err := reg.Verify(0, "d", msg, bad); err == nil {
		t.Fatal("mangled signature verified")
	}
	if err := reg.Verify(0, "d", msg, sig[:10]); err == nil {
		t.Fatal("truncated signature verified")
	}
	if err := reg.Verify(9, "d", msg, sig); err == nil {
		t.Fatal("out-of-range party verified")
	}
	if err := reg.Verify(-1, "d", msg, sig); err == nil {
		t.Fatal("negative party verified")
	}
}

func TestKeysAreDistinct(t *testing.T) {
	reg, keys, err := identity.Generate(4, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("same message")
	seen := make(map[string]bool)
	for i, k := range keys {
		sig := k.Sign("d", msg)
		if seen[string(sig)] {
			t.Fatal("two parties produced identical signatures")
		}
		seen[string(sig)] = true
		if err := reg.Verify(i, "d", msg, sig); err != nil {
			t.Fatal(err)
		}
	}
}
