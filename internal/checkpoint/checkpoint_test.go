package checkpoint_test

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"sync"
	"testing"
	"time"

	"sintra/internal/adversary"
	"sintra/internal/checkpoint"
	"sintra/internal/engine"
	"sintra/internal/obs"
	"sintra/internal/testutil"
	"sintra/internal/wire"
)

// harness holds one replica's tracker plus the fake service state the
// tracker checkpoints: a byte-slice snapshot, a delivery frontier, and a
// retained suffix log.
type harness struct {
	tracker *checkpoint.Tracker

	state   []byte
	seq     int64
	round   int64
	suffix  [][]byte // payloads delivered at [suffixBase, seq)
	base    int64
	stables []checkpoint.Checkpoint
	install struct {
		count    int
		snapshot []byte
		suffix   [][]byte
	}
}

func newHarnesses(t *testing.T, c *testutil.Cluster, interval int64) []*harness {
	t.Helper()
	hs := make([]*harness, c.N())
	for i := 0; i < c.N(); i++ {
		h := &harness{}
		hs[i] = h
		r := c.Routers[i]
		if r == nil {
			continue
		}
		ok := r.DoSync(func() {
			h.tracker = checkpoint.New(checkpoint.Config{
				Router:     r,
				Instance:   "svc/test",
				Scheme:     c.Pub.AnswerSig(),
				Key:        c.Secrets[i].SigAnswer,
				Interval:   interval,
				Snapshot:   func() []byte { return append([]byte(nil), h.state...) },
				CurrentSeq: func() int64 { return h.seq },
				Suffix: func(from int64) ([][]byte, int64) {
					if from < h.base || from > h.seq {
						return nil, h.round
					}
					return append([][]byte(nil), h.suffix[from-h.base:]...), h.round
				},
				Install: func(cp checkpoint.Checkpoint, snapshot []byte, suffix [][]byte, liveRound int64) bool {
					if cp.Seq < h.seq {
						return false
					}
					h.state = append([]byte(nil), snapshot...)
					h.seq = cp.Seq + int64(len(suffix))
					h.round = liveRound
					h.install.count++
					h.install.snapshot = append([]byte(nil), snapshot...)
					h.install.suffix = suffix
					for _, p := range suffix {
						h.state = append(h.state, p...)
					}
					return true
				},
				OnStable: func(cp checkpoint.Checkpoint) { h.stables = append(h.stables, cp) },
			})
		})
		if !ok {
			t.Fatalf("router %d not running", i)
		}
	}
	return hs
}

// deliver advances one replica's fake service by a payload.
func (h *harness) deliver(p []byte) {
	h.state = append(h.state, p...)
	h.suffix = append(h.suffix, p)
	h.seq++
}

func waitStable(t *testing.T, c *testutil.Cluster, hs []*harness, i int, seq int64) checkpoint.Checkpoint {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		var cp checkpoint.Checkpoint
		c.Routers[i].DoSync(func() { cp = hs[i].tracker.Stable() })
		if cp.Seq >= seq {
			return cp
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("replica %d: stable checkpoint never reached seq %d", i, seq)
	return checkpoint.Checkpoint{}
}

// TestCertificateFormation drives all four replicas to the same round
// boundary and asserts a stable certificate forms and verifies.
func TestCertificateFormation(t *testing.T) {
	st, err := adversary.NewThreshold(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	c := testutil.NewCluster(t, st, testutil.Options{})
	hs := newHarnesses(t, c, 4)

	for i := 0; i < c.N(); i++ {
		h := hs[i]
		c.Routers[i].DoSync(func() {
			for s := 0; s < 4; s++ {
				h.deliver(fmt.Appendf(nil, "payload-%d", s))
			}
			h.round = 2
			h.tracker.RoundEnd(h.seq, h.round)
		})
	}
	for i := 0; i < c.N(); i++ {
		cp := waitStable(t, c, hs, i, 4)
		if cp.Seq != 4 || cp.Round != 2 {
			t.Fatalf("replica %d: stable = (%d,%d), want (4,2)", i, cp.Seq, cp.Round)
		}
		wantHash := sha256.Sum256(hs[i].state)
		if cp.Hash != wantHash {
			t.Fatalf("replica %d: certified hash does not match local state", i)
		}
		if err := c.Pub.AnswerSig().Verify(
			checkpoint.Statement("svc/test", cp.Seq, cp.Round, cp.Hash), cp.Cert); err != nil {
			t.Fatalf("replica %d: certificate does not verify: %v", i, err)
		}
		if len(hs[i].stables) == 0 {
			t.Fatalf("replica %d: OnStable never fired", i)
		}
	}

	// The encoded form round-trips through VerifyEncoded; tampering with
	// any byte of the certificate must be rejected.
	c.Routers[0].DoSync(func() {
		enc := hs[0].tracker.EncodedStable()
		if enc == nil {
			t.Error("EncodedStable is nil after a certificate formed")
			return
		}
		if seq, ok := hs[0].tracker.VerifyEncoded(enc); !ok || seq != 4 {
			t.Errorf("VerifyEncoded(valid) = (%d,%v), want (4,true)", seq, ok)
		}
		bad := append([]byte(nil), enc...)
		bad[len(bad)-1] ^= 0xff
		if _, ok := hs[0].tracker.VerifyEncoded(bad); ok {
			t.Error("VerifyEncoded accepted a tampered encoding")
		}
	})
}

// TestCatchUpInstall lets three replicas certify a checkpoint while the
// fourth stays empty, then has the laggard fetch and install the
// certified snapshot plus suffix.
func TestCatchUpInstall(t *testing.T) {
	st, err := adversary.NewThreshold(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	c := testutil.NewCluster(t, st, testutil.Options{})
	hs := newHarnesses(t, c, 4)

	// Replicas 0-2 deliver six payloads and checkpoint at seq 4; replica 3
	// saw nothing (crashed). The extra two payloads form the live suffix.
	for i := 0; i < 3; i++ {
		h := hs[i]
		c.Routers[i].DoSync(func() {
			for s := 0; s < 4; s++ {
				h.deliver(fmt.Appendf(nil, "p%d", s))
			}
			h.round = 3
			h.tracker.RoundEnd(h.seq, h.round)
			h.deliver([]byte("p4"))
			h.deliver([]byte("p5"))
		})
	}
	waitStable(t, c, hs, 0, 4)

	// Replica 3 rejoins: its shares-driven lag detection needs a SHARE it
	// never saw, so it uses the explicit restart path.
	c.Routers[3].DoSync(func() { hs[3].tracker.RequestCatchUp() })

	deadline := time.Now().Add(10 * time.Second)
	for {
		var n int
		c.Routers[3].DoSync(func() { n = hs[3].install.count })
		if n > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("replica 3 never installed a checkpoint")
		}
		time.Sleep(2 * time.Millisecond)
	}
	c.Routers[3].DoSync(func() {
		h := hs[3]
		if h.seq != 6 {
			t.Errorf("replica 3 frontier = %d, want 6 (checkpoint 4 + suffix 2)", h.seq)
		}
		if !bytes.Equal(h.state, hs[0].state) {
			t.Error("replica 3 state does not match a live replica after catch-up")
		}
		if len(h.install.suffix) != 2 {
			t.Errorf("installed suffix has %d payloads, want 2", len(h.install.suffix))
		}
		if !h.tracker.Tentative() {
			t.Error("state installed from an unaudited suffix should be tentative")
		}
		if h.tracker.Stable().Seq != 4 {
			t.Errorf("replica 3 stable seq = %d, want 4", h.tracker.Stable().Seq)
		}
	})

	// The next checkpoint (two more deliveries complete the interval)
	// audits the tentative state: all four replicas hash identical state
	// at seq 8, so the fresh certificate clears the tentative flag and
	// replica 3 contributes its share again.
	for i := 0; i < c.N(); i++ {
		h := hs[i]
		c.Routers[i].DoSync(func() {
			h.deliver([]byte("p6"))
			h.deliver([]byte("p7"))
			h.round = 5
			h.tracker.RoundEnd(h.seq, h.round)
		})
	}
	waitStable(t, c, hs, 3, 8)
	c.Routers[3].DoSync(func() {
		if hs[3].tracker.Tentative() {
			t.Error("audit against the seq-8 certificate should clear the tentative flag")
		}
	})
}

// TestFetchBeforeStable covers the restart race: the FETCH arrives
// before any peer holds a stable checkpoint; peers must remember the
// want and serve the state as soon as the first certificate forms.
func TestFetchBeforeStable(t *testing.T) {
	st, err := adversary.NewThreshold(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	c := testutil.NewCluster(t, st, testutil.Options{})
	hs := newHarnesses(t, c, 4)

	c.Routers[3].DoSync(func() { hs[3].tracker.RequestCatchUp() })
	time.Sleep(20 * time.Millisecond) // let the FETCH land pre-certificate

	for i := 0; i < 3; i++ {
		h := hs[i]
		c.Routers[i].DoSync(func() {
			for s := 0; s < 4; s++ {
				h.deliver(fmt.Appendf(nil, "q%d", s))
			}
			h.round = 2
			h.tracker.RoundEnd(h.seq, h.round)
		})
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		var n int
		c.Routers[3].DoSync(func() { n = hs[3].install.count })
		if n > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("deferred FETCH was never answered after the certificate formed")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// lossyTransport swallows inbound messages of one type while enabled — a
// lossy link the netsim scheduler cannot model (it reorders, but always
// delivers).
type lossyTransport struct {
	wire.Transport
	dropType string

	mu       sync.Mutex
	dropping bool
	dropped  int
}

func (l *lossyTransport) setDropping(v bool) {
	l.mu.Lock()
	l.dropping = v
	l.mu.Unlock()
}

func (l *lossyTransport) Recv() (wire.Message, bool) {
	for {
		m, ok := l.Transport.Recv()
		if !ok {
			return m, ok
		}
		l.mu.Lock()
		drop := l.dropping && m.Protocol == checkpoint.Protocol && m.Type == l.dropType
		if drop {
			l.dropped++
		}
		l.mu.Unlock()
		if !drop {
			return m, true
		}
	}
}

// lossyLaggard builds a cluster whose replica 3 runs over a lossy link
// that swallows STATE replies, plus a tracker for it with the given
// retry interval. It returns everything the catch-up retry tests need.
func lossyLaggard(t *testing.T, retry time.Duration) (*testutil.Cluster, []*harness, *harness, *engine.Router, *lossyTransport, *obs.Registry) {
	t.Helper()
	st, err := adversary.NewThreshold(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	c := testutil.NewCluster(t, st, testutil.Options{Corrupted: []int{3}})
	lossy := &lossyTransport{Transport: c.Net.Endpoint(3), dropType: "STATE", dropping: true}
	r3 := engine.NewRouter(lossy)
	reg := obs.NewRegistry()
	r3.SetObserver(reg)
	done := make(chan struct{})
	go func() { defer close(done); r3.Run() }()
	t.Cleanup(func() { lossy.Close(); <-done })

	h3 := &harness{}
	ok := r3.DoSync(func() {
		h3.tracker = checkpoint.New(checkpoint.Config{
			Router:        r3,
			Instance:      "svc/test",
			Scheme:        c.Pub.AnswerSig(),
			Key:           c.Secrets[3].SigAnswer,
			Interval:      4,
			RetryInterval: retry,
			Snapshot:      func() []byte { return append([]byte(nil), h3.state...) },
			CurrentSeq:    func() int64 { return h3.seq },
			Suffix:        func(int64) ([][]byte, int64) { return nil, h3.round },
			Install: func(cp checkpoint.Checkpoint, snapshot []byte, suffix [][]byte, liveRound int64) bool {
				h3.state = append([]byte(nil), snapshot...)
				h3.seq = cp.Seq + int64(len(suffix))
				h3.round = liveRound
				h3.install.count++
				for _, p := range suffix {
					h3.state = append(h3.state, p...)
				}
				return true
			},
		})
	})
	if !ok {
		t.Fatal("router 3 not running")
	}
	hs := newHarnesses(t, c, 4)

	// Replicas 0-2 certify a checkpoint at seq 4; their SHARE broadcasts
	// reach replica 3, whose frontier of 0 marks it a full interval
	// behind, so it FETCHes — and every STATE reply vanishes on its link.
	for i := 0; i < 3; i++ {
		h := hs[i]
		c.Routers[i].DoSync(func() {
			for s := 0; s < 4; s++ {
				h.deliver(fmt.Appendf(nil, "r%d", s))
			}
			h.round = 2
			h.tracker.RoundEnd(h.seq, h.round)
		})
	}
	waitStable(t, c, hs, 0, 4)
	return c, hs, h3, r3, lossy, reg
}

// TestCatchUpStallsWithoutRetry documents the regression the retry timer
// fixes: lastFetch dedups FETCH broadcasts per observed stable sequence,
// so once the (lost) initial round of STATE replies is spent, a laggard
// with retries disabled waits forever — no peer ever hears from it again
// until a NEW checkpoint forms.
func TestCatchUpStallsWithoutRetry(t *testing.T) {
	c, _, h3, r3, lossy, reg := lossyLaggard(t, -1)

	// Give the initial FETCH every chance, then heal the link. With no
	// retry timer nothing is ever re-sent, so healing changes nothing.
	time.Sleep(80 * time.Millisecond)
	lossy.setDropping(false)
	time.Sleep(250 * time.Millisecond)

	var installs int
	c.Routers[0].DoSync(func() {}) // flush peers
	if ok := r3.DoSync(func() { installs = h3.install.count }); !ok {
		t.Fatal("router 3 died")
	}
	if installs != 0 {
		t.Fatalf("laggard installed %d checkpoints with retries disabled — the stall this test documents is gone, update it", installs)
	}
	if lossy.dropped == 0 {
		t.Fatal("no STATE reply was ever dropped: the scenario never exercised the lossy link")
	}
	if n := reg.Snapshot().Counter("checkpoint.catchup.retries"); n != 0 {
		t.Fatalf("%d retries fired with RetryInterval < 0", n)
	}
}

// TestCatchUpRetryRecoversLostState is the regression test for the
// catch-up stall: STATE replies to the laggard's FETCH are lost, and the
// retry timer must keep re-FETCHing — one peer per tick, rotating — until
// the link heals and a reply lands. Without the timer this scenario
// deadlocks (see TestCatchUpStallsWithoutRetry).
func TestCatchUpRetryRecoversLostState(t *testing.T) {
	c, hs, h3, r3, lossy, reg := lossyLaggard(t, 40*time.Millisecond)

	// Let several retry ticks burn against the lossy link.
	time.Sleep(90 * time.Millisecond)
	var installs int
	r3.DoSync(func() { installs = h3.install.count })
	if installs != 0 {
		t.Fatal("laggard installed while every STATE reply was dropped")
	}
	lossy.setDropping(false)

	deadline := time.Now().Add(10 * time.Second)
	for {
		r3.DoSync(func() { installs = h3.install.count })
		if installs > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("laggard never installed after the link healed: retry FETCH not re-sent")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if lossy.dropped == 0 {
		t.Fatal("no STATE reply was ever dropped: the retry was never needed")
	}
	if n := reg.Snapshot().Counter("checkpoint.catchup.retries"); n == 0 {
		t.Fatal("checkpoint.catchup.retries never incremented")
	}
	// The laggard's recovered state must match a live replica's.
	r3.DoSync(func() {
		if h3.seq < 4 {
			t.Errorf("laggard frontier %d after install, want >= 4", h3.seq)
		}
	})
	c.Routers[0].DoSync(func() {
		if !bytes.Equal(h3.state, hs[0].state[:len(h3.state)]) {
			t.Error("laggard state does not match the live replica prefix")
		}
	})
}
