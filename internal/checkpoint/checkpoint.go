// Package checkpoint implements checkpoint-based garbage collection and
// state transfer for the replicated services. Every CheckpointInterval
// a-delivered payloads, each replica threshold-signs a digest of
// (sequence number, round, service-state hash); a combined certificate
// of signature shares establishes a *stable checkpoint*, below which the
// ordering layers prune their history and above which a lagging or
// restarted replica can rejoin by fetching the certified snapshot plus
// the post-checkpoint delivery suffix from any single peer.
//
// The certificate reuses the service's answer-signature scheme (its
// statement space is domain-separated by the "ckpt|" prefix), so state
// transfer needs no trust assumptions beyond those the service's signed
// answers already rest on: a certificate proves that parties beyond the
// adversary structure's reach — hence at least one honest replica —
// attested the state hash, and sha256 binds the transferred snapshot
// bytes to it. The post-checkpoint suffix cannot carry a certificate
// yet; it is installed tentatively and audited against the next stable
// checkpoint (see Tracker.RoundEnd), so a poisoned suffix is detected
// and re-fetched rather than silently signed for.
package checkpoint

import (
	"crypto/rand"
	"crypto/sha256"
	"fmt"
	"time"

	"sintra/internal/adversary"
	"sintra/internal/engine"
	"sintra/internal/obs"
	"sintra/internal/thresig"
	"sintra/internal/trust"
	"sintra/internal/wire"
)

// Protocol is the wire protocol name of the checkpoint subsystem.
const Protocol = "ckpt"

// Message types.
const (
	typeShare = "SHARE" // one replica's signature share on a checkpoint
	typeFetch = "FETCH" // catch-up request from a lagging replica
	typeState = "STATE" // certificate + snapshot + delivery suffix
)

const (
	// maxPendingCheckpoints bounds the uncertified (seq, round, hash)
	// candidates a tracker collects shares for; beyond it, the candidate
	// with the fewest shares is evicted (Byzantine replicas flooding
	// fabricated checkpoint hashes cannot grow the map).
	maxPendingCheckpoints = 16
	// maxVerifiedCache bounds the certificate-verification memo
	// (VerifyEncoded is called for every piggybacked proposal, usually
	// with the same bytes).
	maxVerifiedCache = 128
	// maxRoundSlack bounds how far beyond what the suffix length can
	// explain a peer may claim the live round has advanced (empty rounds
	// deliver nothing but still advance the round counter).
	maxRoundSlack = 64
)

// Checkpoint is a certified service state position: after the first Seq
// a-delivered payloads, at the end of round Round, the service state
// hashed to Hash; Cert is the threshold signature over Statement.
type Checkpoint struct {
	Seq   int64
	Round int64
	Hash  [32]byte
	Cert  []byte
}

// Statement is the byte string a checkpoint certificate signs. The
// "ckpt|" prefix domain-separates it from the "svcresp|" answer
// statements signed with the same keys.
func Statement(instance string, seq, round int64, hash [32]byte) []byte {
	return fmt.Appendf(nil, "ckpt|%s|%d|%d|%x", instance, seq, round, hash)
}

type shareBody struct {
	Seq   int64
	Round int64
	Hash  [32]byte
	Share thresig.Share
}

type fetchBody struct {
	// HaveSeq is the requester's current delivery frontier; peers only
	// answer with a strictly newer stable checkpoint.
	HaveSeq int64
}

type stateBody struct {
	Seq      int64
	Round    int64
	Hash     [32]byte
	Cert     []byte
	Snapshot []byte
	// Suffix holds the payloads a-delivered at sequences
	// [Seq, Seq+len(Suffix)), letting the fetcher catch up past the
	// checkpoint to the peer's live frontier. Empty when the peer's
	// retained suffix no longer reaches back to Seq.
	Suffix [][]byte
	// LiveRound is the peer's current round at serve time.
	LiveRound int64
}

// Config wires one checkpoint tracker.
type Config struct {
	// Router is the party's protocol router.
	Router *engine.Router
	// Instance names the replicated service (same instance string as the
	// ordering layer).
	Instance string
	// Scheme and Key are the answer-signature threshold scheme and this
	// party's share key (deal.Public.AnswerSig / PartySecret.SigAnswer).
	Scheme thresig.Scheme
	Key    *thresig.SecretKey
	// Trust, when set, additionally requires the share senders behind a
	// combined checkpoint certificate to contain an honest party in this
	// party's own view (trust.Quorums.HasHonest). Under symmetric trust
	// this coincides with the answer-signature scheme's opening rule, so
	// nil — the default — changes nothing; asymmetric deployments pass
	// their backend so certificates reflect each party's own assumptions.
	Trust trust.Quorums
	// Interval is the checkpoint period in delivered payloads.
	Interval int64
	// Snapshot captures the deterministic service state (called on the
	// dispatch goroutine at a round boundary).
	Snapshot func() []byte
	// CurrentSeq reports the local delivery frontier.
	CurrentSeq func() int64
	// Suffix returns the retained payloads delivered at sequences
	// [from, liveSeq) together with the current round, or nil when the
	// retention log no longer reaches back to from.
	Suffix func(from int64) (payloads [][]byte, liveRound int64)
	// Install adopts a fetched checkpoint: certified snapshot, the
	// (tentative) delivery suffix, and the serving peer's round. It
	// returns false when the local state is already ahead. Nil disables
	// catch-up (the tracker still certifies and serves checkpoints).
	Install func(cp Checkpoint, snapshot []byte, suffix [][]byte, liveRound int64) bool
	// OnStable fires whenever the stable checkpoint advances — the GC
	// hook for the layers above.
	OnStable func(cp Checkpoint)
	// RetryInterval re-arms catch-up while the replica remains a full
	// interval behind the newest observed stable checkpoint: each tick
	// re-sends the FETCH to one peer, rotating through the membership,
	// so a serving peer that dies mid-transfer cannot stall the lagging
	// replica forever. Zero selects the default (2s); negative disables
	// retries.
	RetryInterval time.Duration
}

// defaultRetryInterval is the catch-up retry period when the
// configuration leaves RetryInterval zero.
const defaultRetryInterval = 2 * time.Second

// maxServesPerCheckpoint bounds how many STATE replies one requester
// can draw for the same stable checkpoint — enough that lost replies
// and retries converge, small enough that a Byzantine requester cannot
// turn retries into a snapshot flood.
const maxServesPerCheckpoint = 3

// trustedAnswer applies the optional trust-backend gate to the senders
// behind a candidate certificate; a nil backend keeps the scheme's
// opening rule as the only condition.
func (t *Tracker) trustedAnswer(parties adversary.Set) bool {
	return t.cfg.Trust == nil || t.cfg.Trust.HasHonest(t.cfg.Router.Self(), parties)
}

// pendKey identifies one uncertified checkpoint candidate.
type pendKey struct {
	seq   int64
	round int64
	hash  [32]byte
}

type pendShares struct {
	parties adversary.Set
	shares  []thresig.Share
}

// Tracker runs the checkpoint protocol for one service instance. All
// state is dispatch-goroutine only.
type Tracker struct {
	cfg Config

	stable    Checkpoint
	stableEnc []byte
	// snap is the snapshot matching stable (nil when the stable
	// certificate arrived without one, e.g. via piggyback).
	snap []byte

	// own* record the replica's latest locally taken checkpoint, pending
	// certification (and auditing the certified hash against our own).
	ownSeq   int64
	ownRound int64
	ownHash  [32]byte
	ownSnap  []byte

	lastTaken int64
	// tentative marks state installed from an unaudited delivery suffix:
	// the tracker withholds its own checkpoint shares until a stable
	// certificate confirms the local hash, so a poisoned suffix can never
	// contribute to a quorum certifying wrong state.
	tentative bool
	// lastFetch dedups FETCH broadcasts per observed stable seq;
	// distrust remembers the peer that served a suffix we later found
	// divergent, so its next STATE is skipped once.
	lastFetch       int64
	lastInstallFrom int
	distrust        int
	// retryArmed marks a pending catch-up retry timer; retryPeer is the
	// rotation cursor over peers for retry FETCHes.
	retryArmed bool
	retryPeer  int

	pend map[pendKey]*pendShares
	// served bounds STATE replies per requester and stable seq
	// (maxServesPerCheckpoint); wanting remembers fetches that arrived
	// before a servable checkpoint existed, answered as soon as one
	// does.
	served  map[int]serveRec
	wanting map[int]int64

	verified      map[[32]byte]int64
	verifiedOrder [][32]byte

	stableSeq  *obs.Gauge
	certs      *obs.Counter
	sharesSent *obs.Counter
	sharesRecv *obs.Counter
	fetches    *obs.Counter
	retries    *obs.Counter
	installs   *obs.Counter
	diverged   *obs.Counter
}

// serveRec is the per-requester serve bookkeeping: how many STATE
// replies went out for which stable checkpoint.
type serveRec struct {
	seq   int64
	count int
}

// New creates and registers a tracker (dispatch goroutine or pre-Run).
func New(cfg Config) *Tracker {
	if cfg.RetryInterval == 0 {
		cfg.RetryInterval = defaultRetryInterval
	}
	t := &Tracker{
		cfg:             cfg,
		pend:            make(map[pendKey]*pendShares),
		served:          make(map[int]serveRec),
		wanting:         make(map[int]int64),
		verified:        make(map[[32]byte]int64),
		lastInstallFrom: -1,
		distrust:        -1,
		retryPeer:       cfg.Router.Self(),
	}
	if reg := cfg.Router.Observer(); reg != nil {
		t.stableSeq = reg.Gauge("checkpoint.stable.seq")
		t.certs = reg.Counter("checkpoint.certs")
		t.sharesSent = reg.Counter("checkpoint.shares.sent")
		t.sharesRecv = reg.Counter("checkpoint.shares.recv")
		t.fetches = reg.Counter("checkpoint.catchup.fetches")
		t.retries = reg.Counter("checkpoint.catchup.retries")
		t.installs = reg.Counter("checkpoint.catchup.installs")
		t.diverged = reg.Counter("checkpoint.diverged")
	}
	cfg.Router.Register(Protocol, cfg.Instance, t.handle)
	return t
}

// Stable returns the latest stable checkpoint (dispatch goroutine only).
func (t *Tracker) Stable() Checkpoint { return t.stable }

// Tentative reports whether the local state came from an unaudited
// delivery suffix (dispatch goroutine only; tests).
func (t *Tracker) Tentative() bool { return t.tentative }

// EncodedStable returns the wire encoding of the latest stable
// checkpoint for piggybacking on ordering-layer proposals, or nil before
// the first certificate forms. Dispatch goroutine only.
func (t *Tracker) EncodedStable() []byte { return t.stableEnc }

// VerifyEncoded checks a piggybacked checkpoint encoding and returns its
// sequence number. Verification is memoized (the same certificate
// arrives once per proposer per round), and a valid certificate newer
// than the local stable checkpoint is adopted on the spot — piggybacking
// thus propagates stability to replicas that missed the share exchange.
// Dispatch goroutine only. The result depends only on the bytes, never
// on tracker state, so it is deterministic across replicas (the ordering
// layer folds it into the decided GC horizon).
func (t *Tracker) VerifyEncoded(enc []byte) (seq int64, ok bool) {
	if len(enc) == 0 {
		return 0, false
	}
	key := sha256.Sum256(enc)
	if s, hit := t.verified[key]; hit {
		return s, true
	}
	var cp Checkpoint
	if wire.UnmarshalBody(enc, &cp) != nil {
		return 0, false
	}
	if t.cfg.Scheme.Verify(Statement(t.cfg.Instance, cp.Seq, cp.Round, cp.Hash), cp.Cert) != nil {
		return 0, false
	}
	t.verified[key] = cp.Seq
	t.verifiedOrder = append(t.verifiedOrder, key)
	if len(t.verifiedOrder) > maxVerifiedCache {
		delete(t.verified, t.verifiedOrder[0])
		t.verifiedOrder = t.verifiedOrder[1:]
	}
	t.setStable(cp, nil)
	return cp.Seq, true
}

// RoundEnd drives the tracker from the ordering layer's round boundary:
// when Interval deliveries have accumulated since the last checkpoint,
// it snapshots the service, signs the checkpoint statement, and
// broadcasts the share. Dispatch goroutine only.
func (t *Tracker) RoundEnd(seq, round int64) {
	if t.cfg.Interval <= 0 || seq-t.lastTaken < t.cfg.Interval {
		return
	}
	t.lastTaken = seq
	snap := t.cfg.Snapshot()
	if snap == nil {
		return
	}
	t.ownSeq, t.ownRound, t.ownHash, t.ownSnap = seq, round, sha256.Sum256(snap), snap
	if t.tentative {
		// State from an unaudited suffix: record the hash for the audit
		// but do not sign — a diverged replica must not help certify.
		return
	}
	share, err := t.cfg.Scheme.SignShare(t.cfg.Key,
		Statement(t.cfg.Instance, seq, round, t.ownHash), rand.Reader)
	if err != nil {
		return
	}
	if t.sharesSent != nil {
		t.sharesSent.Inc()
	}
	// One signed share per checkpoint seq: two different hashes for the
	// same seq from one replica would poison certificate assembly.
	_ = t.cfg.Router.BroadcastJournaled(fmt.Sprintf("share/%d", seq),
		Protocol, t.cfg.Instance, typeShare, shareBody{
			Seq: seq, Round: round, Hash: t.ownHash, Share: share,
		})
}

// RequestCatchUp asks every peer for its latest stable checkpoint — the
// entry point for a restarted replica. Safe before Run.
func (t *Tracker) RequestCatchUp() {
	if t.cfg.Install == nil {
		return
	}
	t.broadcastFetch()
}

func (t *Tracker) broadcastFetch() {
	if t.fetches != nil {
		t.fetches.Inc()
	}
	body := fetchBody{HaveSeq: t.cfg.CurrentSeq()}
	self := t.cfg.Router.Self()
	for j := 0; j < t.cfg.Router.N(); j++ {
		if j != self {
			_ = t.cfg.Router.Send(j, Protocol, t.cfg.Instance, typeFetch, body)
		}
	}
	t.scheduleRetry()
}

// scheduleRetry arms the catch-up retry timer (at most one pending).
// The timer hops back onto the dispatch goroutine via Router.Do, so
// all tracker state stays single-threaded.
func (t *Tracker) scheduleRetry() {
	if t.cfg.RetryInterval < 0 || t.cfg.Install == nil || t.retryArmed {
		return
	}
	t.retryArmed = true
	time.AfterFunc(t.cfg.RetryInterval, func() {
		t.cfg.Router.Do(t.retryFetch)
	})
}

// retryFetch re-sends the FETCH while the replica is still a full
// interval behind the newest observed stable sequence. Unlike the
// initial broadcast it targets a single peer per tick, rotating
// through the membership: if the peer that should have answered died
// mid-transfer, the next tick tries its neighbour instead of hammering
// everyone.
func (t *Tracker) retryFetch() {
	t.retryArmed = false
	if t.cfg.Interval <= 0 || t.lastFetch < t.cfg.CurrentSeq()+t.cfg.Interval {
		return // caught up (or nothing observed): stand down
	}
	if t.retries != nil {
		t.retries.Inc()
	}
	self := t.cfg.Router.Self()
	n := t.cfg.Router.N()
	for i := 0; i < n; i++ {
		t.retryPeer = (t.retryPeer + 1) % n
		if t.retryPeer != self {
			break
		}
	}
	_ = t.cfg.Router.Send(t.retryPeer, Protocol, t.cfg.Instance, typeFetch,
		fetchBody{HaveSeq: t.cfg.CurrentSeq()})
	t.scheduleRetry()
}

func (t *Tracker) handle(from int, msgType string, payload []byte) {
	if from < 0 || from >= t.cfg.Router.N() {
		return // servers only
	}
	switch msgType {
	case typeShare:
		var body shareBody
		if t.cfg.Router.Decode(payload, &body) {
			t.onShare(from, body)
		}
	case typeFetch:
		var body fetchBody
		if t.cfg.Router.Decode(payload, &body) {
			t.onFetch(from, body)
		}
	case typeState:
		var body stateBody
		if t.cfg.Router.Decode(payload, &body) {
			t.onState(from, body)
		}
	}
}

func (t *Tracker) onShare(from int, body shareBody) {
	if body.Seq <= t.stable.Seq || body.Share.Party != from {
		return
	}
	stmt := Statement(t.cfg.Instance, body.Seq, body.Round, body.Hash)
	if t.cfg.Scheme.VerifyShare(stmt, body.Share) != nil {
		return
	}
	if t.sharesRecv != nil {
		t.sharesRecv.Inc()
	}
	key := pendKey{body.Seq, body.Round, body.Hash}
	ps := t.pend[key]
	if ps == nil {
		t.evictPending()
		ps = &pendShares{}
		t.pend[key] = ps
	}
	if ps.parties.Has(from) {
		return
	}
	ps.parties = ps.parties.Add(from)
	ps.shares = append(ps.shares, body.Share)
	if t.cfg.Scheme.Sufficient(ps.parties) && t.trustedAnswer(ps.parties) {
		cert, err := t.cfg.Scheme.Combine(stmt, ps.shares)
		if err != nil {
			return
		}
		t.setStable(Checkpoint{Seq: body.Seq, Round: body.Round, Hash: body.Hash, Cert: cert}, nil)
	}
	// A checkpoint a full interval ahead of the local frontier means this
	// replica is lagging: ask for a state transfer.
	t.maybeFetch(body.Seq)
}

// evictPending makes room for a new candidate by dropping the pending
// entry with the fewest shares (Byzantine floods of fabricated hashes
// lose to candidates honest shares accumulate on).
func (t *Tracker) evictPending() {
	if len(t.pend) < maxPendingCheckpoints {
		return
	}
	var victim pendKey
	fewest := -1
	for k, ps := range t.pend {
		if fewest < 0 || len(ps.shares) < fewest {
			victim, fewest = k, len(ps.shares)
		}
	}
	delete(t.pend, victim)
}

func (t *Tracker) onFetch(from int, body fetchBody) {
	if t.stable.Seq <= body.HaveSeq || t.snap == nil {
		// Nothing servable yet: remember the want and answer the moment
		// a newer stable checkpoint (with its snapshot) exists — a
		// restarted replica often fetches before the first certificate.
		t.wanting[from] = body.HaveSeq
		return
	}
	t.serveState(from)
}

// serveState sends the stable checkpoint, its snapshot, and the
// retained delivery suffix to one requester (a bounded number of times
// per stable checkpoint, so catch-up retries can recover lost replies
// without opening a snapshot-flood amplifier).
func (t *Tracker) serveState(from int) {
	rec := t.served[from]
	if rec.seq > t.stable.Seq {
		return
	}
	if rec.seq == t.stable.Seq && rec.count >= maxServesPerCheckpoint {
		return // retry budget for this checkpoint exhausted
	}
	if rec.seq < t.stable.Seq {
		rec = serveRec{seq: t.stable.Seq}
	}
	rec.count++
	t.served[from] = rec
	delete(t.wanting, from)
	reply := stateBody{
		Seq: t.stable.Seq, Round: t.stable.Round, Hash: t.stable.Hash,
		Cert: t.stable.Cert, Snapshot: t.snap,
	}
	if t.cfg.Suffix != nil {
		reply.Suffix, reply.LiveRound = t.cfg.Suffix(t.stable.Seq)
	}
	if reply.LiveRound == 0 {
		reply.LiveRound = t.stable.Round
	}
	_ = t.cfg.Router.Send(from, Protocol, t.cfg.Instance, typeState, reply)
}

func (t *Tracker) onState(from int, body stateBody) {
	if t.cfg.Install == nil {
		return
	}
	if from == t.distrust {
		// This peer served the suffix behind the last detected
		// divergence: skip one reply so another peer gets the install.
		t.distrust = -1
		return
	}
	live := body.Seq + int64(len(body.Suffix))
	if live <= t.cfg.CurrentSeq() {
		return
	}
	if body.LiveRound > body.Round+int64(len(body.Suffix))+maxRoundSlack {
		return // implausible round claim
	}
	if t.cfg.Scheme.Verify(Statement(t.cfg.Instance, body.Seq, body.Round, body.Hash), body.Cert) != nil {
		return
	}
	if sha256.Sum256(body.Snapshot) != body.Hash {
		return
	}
	cp := Checkpoint{Seq: body.Seq, Round: body.Round, Hash: body.Hash, Cert: body.Cert}
	if !t.cfg.Install(cp, body.Snapshot, body.Suffix, body.LiveRound) {
		return
	}
	if t.installs != nil {
		t.installs.Inc()
	}
	t.lastInstallFrom = from
	if len(body.Suffix) > 0 {
		t.tentative = true
	}
	t.setStable(cp, body.Snapshot)
}

// maybeFetch broadcasts one FETCH per newly observed checkpoint seq that
// leaves the local frontier a full interval behind.
func (t *Tracker) maybeFetch(seq int64) {
	if t.cfg.Install == nil || t.cfg.Interval <= 0 {
		return
	}
	if seq < t.cfg.CurrentSeq()+t.cfg.Interval || seq <= t.lastFetch {
		return
	}
	t.lastFetch = seq
	t.broadcastFetch()
}

// setStable adopts a newer stable checkpoint and runs the audit: if this
// replica took its own checkpoint at the same sequence with a different
// state hash, its state diverged (a poisoned catch-up suffix) and a
// fresh state transfer is requested.
func (t *Tracker) setStable(cp Checkpoint, snapshot []byte) {
	if cp.Seq <= t.stable.Seq {
		return
	}
	audited := false
	if t.ownSeq == cp.Seq {
		if t.ownHash == cp.Hash {
			audited = true
		} else {
			if t.diverged != nil {
				t.diverged.Inc()
			}
			t.tentative = true
			t.distrust = t.lastInstallFrom
			t.ownSnap = nil
		}
	}
	t.stable = cp
	switch {
	case snapshot != nil:
		t.snap = snapshot
	case audited:
		t.snap = t.ownSnap
	default:
		t.snap = nil
	}
	if audited && t.tentative {
		// The certified network hash matches ours: the suffix that got us
		// here was honest, resume contributing checkpoint shares.
		t.tentative = false
	}
	if enc, err := wire.MarshalBody(cp); err == nil {
		t.stableEnc = enc
	}
	if t.snap != nil {
		// Answer fetches that arrived before this checkpoint existed.
		for from, have := range t.wanting {
			if cp.Seq > have {
				t.serveState(from)
			}
		}
	}
	for k := range t.pend {
		if k.seq <= cp.Seq {
			delete(t.pend, k)
		}
	}
	if t.certs != nil {
		t.certs.Inc()
		t.stableSeq.Set(cp.Seq)
	}
	if t.cfg.OnStable != nil {
		t.cfg.OnStable(cp)
	}
	if t.tentative && t.ownSeq == cp.Seq {
		// Audit failed at this very checkpoint: re-fetch certified state.
		t.broadcastFetch()
	} else {
		t.maybeFetch(cp.Seq)
	}
}
