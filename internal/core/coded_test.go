package core_test

import (
	"crypto/sha256"
	"math/rand"
	"testing"
	"time"

	"sintra/internal/adversary"
	"sintra/internal/core"
	"sintra/internal/testutil"
)

// digestService answers with the digest of the applied request, keeping
// responses small while proving the full request bytes arrived intact.
type digestService struct{}

func (digestService) Apply(seq int64, request []byte) []byte {
	d := sha256.Sum256(request)
	return d[:]
}

// TestLargeRequestCodedAndChunked drives a large client request through
// the full stack with aggressive coded-dissemination and chunking
// thresholds: the request splits into frames, the oversized batches go
// out as digest headers plus coded reliable broadcast, and the client
// still receives a threshold-signed answer over the intact bytes.
func TestLargeRequestCodedAndChunked(t *testing.T) {
	st := adversary.MustThreshold(4, 1)
	c := coreCluster(t, st, testutil.Options{Seed: 61})
	parties := []int{0, 1, 2, 3}
	nodes := make(map[int]*core.Node, len(parties))
	for _, i := range parties {
		n, err := core.NewNode(core.NodeConfig{
			Public:         c.Pub,
			Secret:         c.Secrets[i],
			Transport:      c.Net.Endpoint(i),
			ServiceName:    "test",
			Service:        digestService{},
			Mode:           core.ModeAtomic,
			CodedThreshold: 512,
			ChunkSize:      1024,
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = n
		go n.Run()
	}
	t.Cleanup(func() {
		c.Net.Stop()
		for _, n := range nodes {
			n.Stop()
		}
	})

	client := core.NewClient(c.Pub, c.Net.Endpoint(4), "test", core.ModeAtomic)
	defer client.Close()

	req := make([]byte, 10_000)
	rand.New(rand.NewSource(62)).Read(req)
	ans, err := client.Invoke(req, 120*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	want := sha256.Sum256(req)
	if string(ans.Result) != string(want[:]) {
		t.Fatal("service answered over different bytes than submitted")
	}
	if err := core.VerifyAnswer(c.Pub, "test", ans.ReqID, ans.Result, ans.Signature); err != nil {
		t.Fatalf("answer signature: %v", err)
	}
}
