package core

import (
	"bytes"
	"context"
	"crypto/rand"
	"errors"
	"fmt"
	"sync"
	"time"

	"sintra/internal/adversary"
	"sintra/internal/deal"
	"sintra/internal/obs"
	"sintra/internal/scabc"
	"sintra/internal/thresig"
	"sintra/internal/trust"
	"sintra/internal/wire"
)

// Client errors. InvokeContext wraps them so errors.Is works on both the
// client-level cause (ErrTimeout, ErrClosed) and the context cause
// (context.DeadlineExceeded, context.Canceled).
var (
	// ErrTimeout is returned when not enough consistent answers arrived
	// before the context deadline.
	ErrTimeout = errors.New("core: request timed out")
	// ErrClosed is returned for requests on (or interrupted by) a closed
	// client.
	ErrClosed = errors.New("core: client closed")
)

// Answer is a completed service invocation.
type Answer struct {
	// ReqID is the request's correlation ID; VerifyAnswer needs it.
	ReqID [16]byte
	// Result is the service's response body.
	Result []byte
	// Seq is the request's position in the service's total order.
	Seq int64
	// Signature is the service's threshold signature over the answer;
	// verify with VerifyAnswer. It proves the answer to third parties —
	// a certificate, a notary receipt.
	Signature []byte
}

// Client invokes a replicated trusted service: it sends each request to
// all servers and accepts an answer once a set of servers outside the
// adversary structure returned the same result, recovering the service's
// threshold signature from the response shares (paper §5).
type Client struct {
	pub      *deal.Public
	tr       wire.Transport
	service  string
	mode     Mode
	trust    trust.Quorums
	trustObs int

	mu      sync.Mutex
	pending map[[16]byte]*call
	closed  bool

	done chan struct{}
	once sync.Once

	// Observability (nil instruments when off).
	obsReg       *obs.Registry
	invokeLat    *obs.Histogram
	reqCount     *obs.Counter
	okCount      *obs.Counter
	badShares    *obs.Counter
	timeoutCount *obs.Counter
	malformed    *obs.Counter
}

type call struct {
	responses map[int]responseBody // by responding server
	ch        chan Answer
}

// Option configures a Client.
type Option func(*Client)

// WithObserver reports the client's metrics through reg: request counts,
// end-to-end invoke latency, response-share verification failures, and
// malformed responses from corrupted servers.
func WithObserver(reg *obs.Registry) Option {
	return func(c *Client) {
		if reg == nil {
			return
		}
		c.obsReg = reg
		c.invokeLat = reg.Histogram("client.invoke.latency")
		c.reqCount = reg.Counter("client.requests")
		c.okCount = reg.Counter("client.answers")
		c.badShares = reg.Counter("client.responses.badshare")
		c.timeoutCount = reg.Counter("client.timeouts")
		c.malformed = reg.Counter("client.malformed")
	}
}

// WithTrust makes the client judge answers under the given quorum
// backend through the eyes of the given observer: an answer is accepted
// once the agreeing servers contain an honest party under that
// observer's fail-prone assumptions. The default is the symmetric
// backend over the deployment's adversary structure (the paper's trust
// model, observer irrelevant); a client of an asymmetric deployment
// passes the backend and the index of the party whose assumptions it
// adopts.
func WithTrust(q trust.Quorums, observer int) Option {
	return func(c *Client) {
		if q != nil {
			c.trust = q
			c.trustObs = observer
		}
	}
}

// NewClient wraps a client transport endpoint. Close releases it.
func NewClient(pub *deal.Public, tr wire.Transport, service string, mode Mode, opts ...Option) *Client {
	c := &Client{
		pub:     pub,
		tr:      tr,
		service: service,
		mode:    mode,
		pending: make(map[[16]byte]*call),
		done:    make(chan struct{}),
	}
	for _, opt := range opts {
		opt(c)
	}
	if c.trust == nil {
		c.trust = trust.NewSymmetric(pub.Structure)
	}
	go c.recvLoop()
	return c
}

// Close shuts the client down.
func (c *Client) Close() {
	c.once.Do(func() {
		c.mu.Lock()
		c.closed = true
		c.mu.Unlock()
		_ = c.tr.Close()
		<-c.done
	})
}

// InvokeContext executes one request against the service and waits for a
// trustworthy answer. It is the primary entry point: the context carries
// the deadline and cancellation, so errors.Is(err,
// context.DeadlineExceeded) and errors.Is(err, context.Canceled) report
// the cause precisely; a deadline additionally matches ErrTimeout, and a
// client closed mid-flight always reports ErrClosed.
func (c *Client) InvokeContext(ctx context.Context, body []byte) (Answer, error) {
	c.reqCount.Inc()
	start := time.Now()
	a, err := c.invoke(ctx, body)
	if err == nil {
		c.okCount.Inc()
		c.invokeLat.ObserveSince(start)
	}
	return a, err
}

// Invoke executes one request with a plain timeout.
//
// Deprecated: Invoke survives as a thin compatibility wrapper around
// InvokeContext; new code should pass a context instead of a timeout.
func (c *Client) Invoke(body []byte, timeout time.Duration) (Answer, error) {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	return c.InvokeContext(ctx, body)
}

func (c *Client) invoke(ctx context.Context, body []byte) (Answer, error) {
	var reqID [16]byte
	if _, err := rand.Read(reqID[:]); err != nil {
		return Answer{}, fmt.Errorf("core: %w", err)
	}
	env := envelope{ReqID: reqID, Body: body}
	plain, err := wire.MarshalBody(env)
	if err != nil {
		return Answer{}, err
	}
	payload := plain
	if c.mode == ModeSecureCausal {
		// Encrypt under the service key: servers see the request content
		// only after its position in the order is fixed.
		payload, err = scabc.Encrypt(c.pub.Enc, "svc/"+c.service, plain)
		if err != nil {
			return Answer{}, fmt.Errorf("core: encrypt request: %w", err)
		}
	}

	cl := &call{responses: make(map[int]responseBody), ch: make(chan Answer, 1)}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return Answer{}, ErrClosed
	}
	c.pending[reqID] = cl
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		delete(c.pending, reqID)
		c.mu.Unlock()
	}()

	// Send to all servers: corrupted servers could ignore the request, so
	// more than a corruptible set must receive it (paper §5).
	req, err := wire.MarshalBody(requestBody{ReqID: reqID, Payload: payload})
	if err != nil {
		return Answer{}, err
	}
	for s := 0; s < c.tr.N(); s++ {
		c.tr.Send(wire.Message{
			To:       s,
			Protocol: clientProtocol,
			Instance: c.service,
			Type:     typeRequest,
			Payload:  req,
		})
	}

	select {
	case a := <-cl.ch:
		return a, nil
	case <-ctx.Done():
		// A concurrently closed client wins deterministically: closing is
		// the more fundamental state, and reporting ErrTimeout for a dead
		// client would send the caller into a pointless retry.
		select {
		case <-c.done:
			return Answer{}, ErrClosed
		default:
		}
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			c.timeoutCount.Inc()
			return Answer{}, fmt.Errorf("%w: %w", ErrTimeout, ctx.Err())
		}
		return Answer{}, fmt.Errorf("core: request canceled: %w", ctx.Err())
	case <-c.done:
		return Answer{}, ErrClosed
	}
}

// recvLoop processes RESPONSE messages until the transport closes.
func (c *Client) recvLoop() {
	defer close(c.done)
	for {
		m, ok := c.tr.Recv()
		if !ok {
			return
		}
		if m.Protocol != clientProtocol || m.Type != typeResponse {
			continue
		}
		var resp responseBody
		if wire.UnmarshalBody(m.Payload, &resp) != nil {
			// A corrupted server sent bytes that don't decode; drop and
			// count, mirroring the replica-side router.malformed guard.
			c.malformed.Inc()
			continue
		}
		c.onResponse(m.From, resp)
	}
}

func (c *Client) onResponse(from int, resp responseBody) {
	if from < 0 || from >= c.tr.N() || resp.Share.Party != from {
		return
	}
	stmt := answerStatement(c.service, resp.ReqID, resp.Result)
	scheme := c.pub.AnswerSig()
	if scheme.VerifyShare(stmt, resp.Share) != nil {
		// Corrupted server: invalid share. The counter is the client-side
		// view of server misbehavior.
		c.badShares.Inc()
		c.obsReg.Trace(obs.Event{Party: from, Protocol: clientProtocol,
			Instance: c.service, Stage: obs.StageDrop, Seq: -1,
			Note: "invalid response share"})
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	cl, ok := c.pending[resp.ReqID]
	if !ok {
		return
	}
	if _, dup := cl.responses[from]; dup {
		return
	}
	cl.responses[from] = resp

	// Group responders by identical result; accept once a group that
	// cannot be entirely corrupted agrees.
	var agreeing adversary.Set
	shares := make([]thresig.Share, 0, len(cl.responses))
	for s, r := range cl.responses {
		if bytes.Equal(r.Result, resp.Result) {
			agreeing = agreeing.Add(s)
			shares = append(shares, r.Share)
		}
	}
	if !c.trust.HasHonest(c.trustObs, agreeing) || !scheme.Sufficient(agreeing) {
		return
	}
	sig, err := scheme.Combine(stmt, shares)
	if err != nil {
		return // wait for more shares
	}
	select {
	case cl.ch <- Answer{ReqID: resp.ReqID, Result: resp.Result, Seq: resp.Seq, Signature: sig}:
	default:
	}
}
