package core

import (
	"bytes"
	"crypto/rand"
	"errors"
	"fmt"
	"sync"
	"time"

	"sintra/internal/adversary"
	"sintra/internal/deal"
	"sintra/internal/scabc"
	"sintra/internal/thresig"
	"sintra/internal/wire"
)

// Client errors.
var (
	// ErrTimeout is returned when not enough consistent answers arrived in
	// time.
	ErrTimeout = errors.New("core: request timed out")
	// ErrClosed is returned after Close.
	ErrClosed = errors.New("core: client closed")
)

// Answer is a completed service invocation.
type Answer struct {
	// ReqID is the request's correlation ID; VerifyAnswer needs it.
	ReqID [16]byte
	// Result is the service's response body.
	Result []byte
	// Seq is the request's position in the service's total order.
	Seq int64
	// Signature is the service's threshold signature over the answer;
	// verify with VerifyAnswer. It proves the answer to third parties —
	// a certificate, a notary receipt.
	Signature []byte
}

// Client invokes a replicated trusted service: it sends each request to
// all servers and accepts an answer once a set of servers outside the
// adversary structure returned the same result, recovering the service's
// threshold signature from the response shares (paper §5).
type Client struct {
	pub     *deal.Public
	tr      wire.Transport
	service string
	mode    Mode

	mu      sync.Mutex
	pending map[[16]byte]*call
	closed  bool

	done chan struct{}
	once sync.Once
}

type call struct {
	responses map[int]responseBody // by responding server
	ch        chan Answer
}

// NewClient wraps a client transport endpoint. Close releases it.
func NewClient(pub *deal.Public, tr wire.Transport, service string, mode Mode) *Client {
	c := &Client{
		pub:     pub,
		tr:      tr,
		service: service,
		mode:    mode,
		pending: make(map[[16]byte]*call),
		done:    make(chan struct{}),
	}
	go c.recvLoop()
	return c
}

// Close shuts the client down.
func (c *Client) Close() {
	c.once.Do(func() {
		c.mu.Lock()
		c.closed = true
		c.mu.Unlock()
		_ = c.tr.Close()
		<-c.done
	})
}

// Invoke executes one request against the service and waits for a
// trustworthy answer.
func (c *Client) Invoke(body []byte, timeout time.Duration) (Answer, error) {
	var reqID [16]byte
	if _, err := rand.Read(reqID[:]); err != nil {
		return Answer{}, fmt.Errorf("core: %w", err)
	}
	env := envelope{ReqID: reqID, Body: body}
	plain, err := wire.MarshalBody(env)
	if err != nil {
		return Answer{}, err
	}
	payload := plain
	if c.mode == ModeSecureCausal {
		// Encrypt under the service key: servers see the request content
		// only after its position in the order is fixed.
		payload, err = scabc.Encrypt(c.pub.Enc, "svc/"+c.service, plain)
		if err != nil {
			return Answer{}, fmt.Errorf("core: encrypt request: %w", err)
		}
	}

	cl := &call{responses: make(map[int]responseBody), ch: make(chan Answer, 1)}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return Answer{}, ErrClosed
	}
	c.pending[reqID] = cl
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		delete(c.pending, reqID)
		c.mu.Unlock()
	}()

	// Send to all servers: corrupted servers could ignore the request, so
	// more than a corruptible set must receive it (paper §5).
	req, err := wire.MarshalBody(requestBody{ReqID: reqID, Payload: payload})
	if err != nil {
		return Answer{}, err
	}
	for s := 0; s < c.tr.N(); s++ {
		c.tr.Send(wire.Message{
			To:       s,
			Protocol: clientProtocol,
			Instance: c.service,
			Type:     typeRequest,
			Payload:  req,
		})
	}

	select {
	case a := <-cl.ch:
		return a, nil
	case <-time.After(timeout):
		return Answer{}, ErrTimeout
	case <-c.done:
		return Answer{}, ErrClosed
	}
}

// recvLoop processes RESPONSE messages until the transport closes.
func (c *Client) recvLoop() {
	defer close(c.done)
	for {
		m, ok := c.tr.Recv()
		if !ok {
			return
		}
		if m.Protocol != clientProtocol || m.Type != typeResponse {
			continue
		}
		var resp responseBody
		if wire.UnmarshalBody(m.Payload, &resp) != nil {
			continue
		}
		c.onResponse(m.From, resp)
	}
}

func (c *Client) onResponse(from int, resp responseBody) {
	if from < 0 || from >= c.tr.N() || resp.Share.Party != from {
		return
	}
	stmt := answerStatement(c.service, resp.ReqID, resp.Result)
	scheme := c.pub.AnswerSig()
	if scheme.VerifyShare(stmt, resp.Share) != nil {
		return // corrupted server: invalid share
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	cl, ok := c.pending[resp.ReqID]
	if !ok {
		return
	}
	if _, dup := cl.responses[from]; dup {
		return
	}
	cl.responses[from] = resp

	// Group responders by identical result; accept once a group that
	// cannot be entirely corrupted agrees.
	var agreeing adversary.Set
	shares := make([]thresig.Share, 0, len(cl.responses))
	for s, r := range cl.responses {
		if bytes.Equal(r.Result, resp.Result) {
			agreeing = agreeing.Add(s)
			shares = append(shares, r.Share)
		}
	}
	if !c.pub.Structure.HasHonest(agreeing) || !scheme.Sufficient(agreeing) {
		return
	}
	sig, err := scheme.Combine(stmt, shares)
	if err != nil {
		return // wait for more shares
	}
	select {
	case cl.ch <- Answer{ReqID: resp.ReqID, Result: resp.Result, Seq: resp.Seq, Signature: sig}:
	default:
	}
}
