package core_test

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"sintra/internal/adversary"
	"sintra/internal/core"
	"sintra/internal/netsim"
	"sintra/internal/testutil"
	"sintra/internal/wire"
)

// echoService is a deterministic state machine that prefixes each request
// with its sequence number.
type echoService struct {
	mu      sync.Mutex
	applied []string
}

func (e *echoService) Apply(seq int64, request []byte) []byte {
	e.mu.Lock()
	e.applied = append(e.applied, string(request))
	e.mu.Unlock()
	return []byte(fmt.Sprintf("%d:%s", seq, request))
}

// counterService returns a running counter, exercising state dependence.
type counterService struct {
	count int64
}

func (c *counterService) Apply(seq int64, request []byte) []byte {
	c.count += int64(len(request))
	return []byte(fmt.Sprintf("count=%d", c.count))
}

// nodesFor builds and runs a node on each listed party over the cluster's
// simulated network.
func nodesFor(t *testing.T, c *testutil.Cluster, parties []int, mode core.Mode, svc func() core.StateMachine) map[int]*core.Node {
	t.Helper()
	nodes := make(map[int]*core.Node, len(parties))
	for _, i := range parties {
		n, err := core.NewNode(core.NodeConfig{
			Public:      c.Pub,
			Secret:      c.Secrets[i],
			Transport:   c.Net.Endpoint(i),
			ServiceName: "test",
			Service:     svc(),
			Mode:        mode,
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = n
		go n.Run()
	}
	t.Cleanup(func() {
		// Stop the simulated network first: Node.Stop waits for its
		// dispatch loop, which only exits once its endpoint's Recv fails.
		c.Net.Stop()
		for _, n := range nodes {
			n.Stop()
		}
	})
	return nodes
}

// Cluster routers collide with Node routers on the same endpoints, so core
// tests build clusters with no routers started (all parties "corrupted"
// from testutil's perspective) and attach Nodes instead.
func coreCluster(t *testing.T, st *adversary.Structure, opts testutil.Options) *testutil.Cluster {
	t.Helper()
	all := make([]int, st.N())
	for i := range all {
		all[i] = i
	}
	opts.Corrupted = all
	if opts.Clients == 0 {
		opts.Clients = 2
	}
	return testutil.NewCluster(t, st, opts)
}

func TestClientInvokeAtomic(t *testing.T) {
	st := adversary.MustThreshold(4, 1)
	c := coreCluster(t, st, testutil.Options{Seed: 2})
	nodesFor(t, c, []int{0, 1, 2, 3}, core.ModeAtomic, func() core.StateMachine { return &echoService{} })
	client := core.NewClient(c.Pub, c.Net.Endpoint(4), "test", core.ModeAtomic)
	defer client.Close()

	ans, err := client.Invoke([]byte("hello"), 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(string(ans.Result), ":hello") {
		t.Fatalf("Result = %q", ans.Result)
	}
	if len(ans.Signature) == 0 {
		t.Fatal("answer carries no threshold signature")
	}
}

func TestSequentialStateEvolution(t *testing.T) {
	st := adversary.MustThreshold(4, 1)
	c := coreCluster(t, st, testutil.Options{Seed: 3})
	nodesFor(t, c, []int{0, 1, 2, 3}, core.ModeAtomic, func() core.StateMachine { return &counterService{} })
	client := core.NewClient(c.Pub, c.Net.Endpoint(4), "test", core.ModeAtomic)
	defer client.Close()

	// Because requests mutate shared state, every client answer must
	// reflect the same replica history: counts strictly increase.
	last := int64(-1)
	for k := 0; k < 3; k++ {
		ans, err := client.Invoke([]byte("xx"), 60*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		var count int64
		if _, err := fmt.Sscanf(string(ans.Result), "count=%d", &count); err != nil {
			t.Fatalf("Result %q: %v", ans.Result, err)
		}
		if count <= last {
			t.Fatalf("count did not advance: %d after %d", count, last)
		}
		last = count
	}
}

func TestClientSurvivesCrashedServer(t *testing.T) {
	st := adversary.MustThreshold(4, 1)
	c := coreCluster(t, st, testutil.Options{Seed: 5})
	nodesFor(t, c, []int{0, 1, 2}, core.ModeAtomic, func() core.StateMachine { return &echoService{} })
	client := core.NewClient(c.Pub, c.Net.Endpoint(4), "test", core.ModeAtomic)
	defer client.Close()
	ans, err := client.Invoke([]byte("crash-tolerant"), 90*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(ans.Result), "crash-tolerant") {
		t.Fatalf("Result = %q", ans.Result)
	}
}

func TestSecureCausalMode(t *testing.T) {
	st := adversary.MustThreshold(4, 1)
	c := coreCluster(t, st, testutil.Options{Seed: 7})
	nodesFor(t, c, []int{0, 1, 2, 3}, core.ModeSecureCausal, func() core.StateMachine { return &echoService{} })
	client := core.NewClient(c.Pub, c.Net.Endpoint(4), "test", core.ModeSecureCausal)
	defer client.Close()
	ans, err := client.Invoke([]byte("confidential"), 90*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(ans.Result), "confidential") {
		t.Fatalf("Result = %q", ans.Result)
	}
}

func TestTwoClientsConcurrently(t *testing.T) {
	st := adversary.MustThreshold(4, 1)
	c := coreCluster(t, st, testutil.Options{Seed: 9, Clients: 2})
	nodesFor(t, c, []int{0, 1, 2, 3}, core.ModeAtomic, func() core.StateMachine { return &echoService{} })
	c1 := core.NewClient(c.Pub, c.Net.Endpoint(4), "test", core.ModeAtomic)
	defer c1.Close()
	c2 := core.NewClient(c.Pub, c.Net.Endpoint(5), "test", core.ModeAtomic)
	defer c2.Close()

	var wg sync.WaitGroup
	errs := make([]error, 2)
	results := make([]core.Answer, 2)
	for i, cl := range []*core.Client{c1, c2} {
		i, cl := i, cl
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i], errs[i] = cl.Invoke([]byte(fmt.Sprintf("client-%d", i)), 90*time.Second)
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
		if !strings.Contains(string(results[i].Result), fmt.Sprintf("client-%d", i)) {
			t.Fatalf("client %d got %q", i, results[i].Result)
		}
	}
}

func TestGeneralStructureService(t *testing.T) {
	// Example 1 with all of class a crashed: the trusted service keeps
	// answering although four of nine servers are gone.
	st := adversary.Example1()
	c := coreCluster(t, st, testutil.Options{Seed: 11})
	nodesFor(t, c, []int{4, 5, 6, 7, 8}, core.ModeAtomic, func() core.StateMachine { return &echoService{} })
	client := core.NewClient(c.Pub, c.Net.Endpoint(9), "test", core.ModeAtomic)
	defer client.Close()
	ans, err := client.Invoke([]byte("class-a-is-down"), 120*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(ans.Result), "class-a-is-down") {
		t.Fatalf("Result = %q", ans.Result)
	}
}

func TestByzantineResponderCannotFoolClient(t *testing.T) {
	// Server 3 is replaced by a liar that answers garbage immediately with
	// an invalid share; the client must still converge on the honest
	// answer.
	st := adversary.MustThreshold(4, 1)
	c := coreCluster(t, st, testutil.Options{Seed: 13})
	nodesFor(t, c, []int{0, 1, 2}, core.ModeAtomic, func() core.StateMachine { return &echoService{} })

	// The liar listens on endpoint 3 and answers any REQUEST at once.
	liar := c.Net.Endpoint(3)
	go func() {
		for {
			m, ok := liar.Recv()
			if !ok {
				return
			}
			if m.Protocol != "client" || m.Type != "REQUEST" {
				continue
			}
			var req struct {
				ReqID   [16]byte
				Payload []byte
			}
			if wire.UnmarshalBody(m.Payload, &req) != nil {
				continue
			}
			resp := struct {
				ReqID  [16]byte
				Seq    int64
				Result []byte
				Share  struct {
					Party int
					Data  []byte
				}
			}{ReqID: req.ReqID, Result: []byte("LIES")}
			resp.Share.Party = 3
			resp.Share.Data = []byte("garbage")
			liar.Send(wire.Message{
				To: m.From, Protocol: "client", Instance: "test",
				Type: "RESPONSE", Payload: wire.MustMarshalBody(resp),
			})
		}
	}()

	client := core.NewClient(c.Pub, c.Net.Endpoint(4), "test", core.ModeAtomic)
	defer client.Close()
	ans, err := client.Invoke([]byte("truth"), 90*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(ans.Result, []byte("LIES")) {
		t.Fatal("client accepted the liar's answer")
	}
}

func TestNodeConfigValidation(t *testing.T) {
	st := adversary.MustThreshold(4, 1)
	c := coreCluster(t, st, testutil.Options{})
	if _, err := core.NewNode(core.NodeConfig{}); err == nil {
		t.Fatal("empty config accepted")
	}
	if _, err := core.NewNode(core.NodeConfig{
		Public: c.Pub, Secret: c.Secrets[0], Transport: c.Net.Endpoint(0),
		Service: &echoService{}, Mode: core.ModeAtomic,
	}); err == nil {
		t.Fatal("missing service name accepted")
	}
	if _, err := core.NewNode(core.NodeConfig{
		Public: c.Pub, Secret: c.Secrets[0], Transport: c.Net.Endpoint(0),
		ServiceName: "x", Service: &echoService{}, Mode: core.Mode(9),
	}); err == nil {
		t.Fatal("bad mode accepted")
	}
}

func TestModeString(t *testing.T) {
	if core.ModeAtomic.String() != "atomic" || core.ModeSecureCausal.String() != "secure-causal" {
		t.Fatal("mode names broken")
	}
	if core.Mode(9).String() == "" {
		t.Fatal("unknown mode must still render")
	}
}

var _ netsim.Scheduler = (*netsim.RandomScheduler)(nil) // compile-time reference

func TestClientTimeoutWhenServersDown(t *testing.T) {
	// No nodes run at all: the client must time out, not hang. The error
	// carries both the client-level cause and the context cause.
	st := adversary.MustThreshold(4, 1)
	c := coreCluster(t, st, testutil.Options{Seed: 15})
	client := core.NewClient(c.Pub, c.Net.Endpoint(4), "test", core.ModeAtomic)
	defer client.Close()
	_, err := client.Invoke([]byte("void"), 300*time.Millisecond)
	if !errors.Is(err, core.ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want it to wrap context.DeadlineExceeded", err)
	}
	if errors.Is(err, core.ErrClosed) || errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, must not match ErrClosed or Canceled", err)
	}
}

func TestClientInvokeContextCanceled(t *testing.T) {
	// Cancellation (not a deadline) must surface context.Canceled and must
	// NOT be reported as a timeout.
	st := adversary.MustThreshold(4, 1)
	c := coreCluster(t, st, testutil.Options{Seed: 25})
	client := core.NewClient(c.Pub, c.Net.Endpoint(4), "test", core.ModeAtomic)
	defer client.Close()
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := client.InvokeContext(ctx, []byte("never answered"))
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	err := <-errc
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if errors.Is(err, core.ErrTimeout) {
		t.Fatalf("err = %v, cancellation must not look like a timeout", err)
	}
}

func TestClientClosed(t *testing.T) {
	st := adversary.MustThreshold(4, 1)
	c := coreCluster(t, st, testutil.Options{Seed: 16})
	client := core.NewClient(c.Pub, c.Net.Endpoint(4), "test", core.ModeAtomic)
	client.Close()
	if _, err := client.Invoke([]byte("x"), time.Second); !errors.Is(err, core.ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	client.Close() // idempotent
}

func TestClientClosedBeatsTimeout(t *testing.T) {
	// Regression: a client closed while a request is in flight must report
	// ErrClosed even when the context fires at the same moment. Close
	// always happens before the context here, so whichever ready select
	// case wakes invoke, the answer must be ErrClosed — without the nested
	// closed check the context branch would sometimes win and misreport.
	st := adversary.MustThreshold(4, 1)
	const rounds = 20
	c := coreCluster(t, st, testutil.Options{Seed: 26, Clients: rounds})
	for i := 0; i < rounds; i++ {
		client := core.NewClient(c.Pub, c.Net.Endpoint(4+i), "test", core.ModeAtomic)
		ctx, cancel := context.WithCancel(context.Background())
		errc := make(chan error, 1)
		go func() {
			_, err := client.InvokeContext(ctx, []byte("racing"))
			errc <- err
		}()
		time.Sleep(time.Millisecond) // let the request register and block
		client.Close()
		cancel()
		err := <-errc
		if !errors.Is(err, core.ErrClosed) {
			t.Fatalf("iteration %d: err = %v, want ErrClosed to beat the context", i, err)
		}
	}
}

func TestVerifyAnswerRejectsForgery(t *testing.T) {
	st := adversary.MustThreshold(4, 1)
	c := coreCluster(t, st, testutil.Options{Seed: 17})
	nodesFor(t, c, []int{0, 1, 2, 3}, core.ModeAtomic, func() core.StateMachine { return &echoService{} })
	client := core.NewClient(c.Pub, c.Net.Endpoint(4), "test", core.ModeAtomic)
	defer client.Close()
	ans, err := client.Invoke([]byte("real"), 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := core.VerifyAnswer(c.Pub, "test", ans.ReqID, ans.Result, ans.Signature); err != nil {
		t.Fatal(err)
	}
	forged := append([]byte(nil), ans.Result...)
	forged[0] ^= 1
	if err := core.VerifyAnswer(c.Pub, "test", ans.ReqID, forged, ans.Signature); err == nil {
		t.Fatal("forged result verified")
	}
	if err := core.VerifyAnswer(c.Pub, "other-service", ans.ReqID, ans.Result, ans.Signature); err == nil {
		t.Fatal("signature transferred across services")
	}
	var otherID [16]byte
	otherID[5] = 9
	if err := core.VerifyAnswer(c.Pub, "test", otherID, ans.Result, ans.Signature); err == nil {
		t.Fatal("signature transferred across requests")
	}
}

func TestRequestFloodBounded(t *testing.T) {
	// A single replica (no quorum, so nothing ever delivers or answers)
	// is flooded with distinct undeliverable requests. Before the
	// bounded-memory work, every request grew reqClients forever; now the
	// bookkeeping must cap at the hard pending-request bound, evicting
	// oldest entries.
	st := adversary.MustThreshold(4, 1)
	c := coreCluster(t, st, testutil.Options{Seed: 21})
	nodes := nodesFor(t, c, []int{0}, core.ModeAtomic, func() core.StateMachine { return &echoService{} })
	node := nodes[0]

	const flood = 6000
	ep := c.Net.Endpoint(4)
	for i := 0; i < flood; i++ {
		var reqID [16]byte
		binary.BigEndian.PutUint64(reqID[:8], uint64(i)+1)
		ep.Send(wire.Message{
			To: 0, Protocol: "client", Instance: "test", Type: "REQUEST",
			Payload: wire.MustMarshalBody(struct {
				ReqID   [16]byte
				Payload []byte
			}{ReqID: reqID, Payload: []byte("flood")}),
		})
	}

	// Wait until the node has chewed through the flood (pending plateaus),
	// then assert the cap held.
	var pending, last int
	deadline := time.Now().Add(30 * time.Second)
	for {
		pending = node.PendingRequests()
		if pending == last && pending > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("flood never settled: %d pending", pending)
		}
		last = pending
		time.Sleep(100 * time.Millisecond)
	}
	if pending > 4096 {
		t.Fatalf("pending requests = %d, hard bound is 4096", pending)
	}
	if pending < 1000 {
		t.Fatalf("pending requests = %d: the flood never reached the node", pending)
	}
}

func TestLargerClusterService(t *testing.T) {
	// Full service stack at n=7, t=2, with two crashed replicas.
	if testing.Short() {
		t.Skip("larger cluster")
	}
	st := adversary.MustThreshold(7, 2)
	c := coreCluster(t, st, testutil.Options{Seed: 19})
	nodesFor(t, c, []int{0, 1, 2, 3, 4}, core.ModeAtomic, func() core.StateMachine { return &echoService{} })
	client := core.NewClient(c.Pub, c.Net.Endpoint(7), "test", core.ModeAtomic)
	defer client.Close()
	for k := 0; k < 2; k++ {
		ans, err := client.Invoke([]byte(fmt.Sprintf("big-%d", k)), 120*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(string(ans.Result), fmt.Sprintf("big-%d", k)) {
			t.Fatalf("Result = %q", ans.Result)
		}
	}
}
