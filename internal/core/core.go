// Package core assembles the paper's architecture into a replicated
// trusted service (§5): deterministic state machines replicated on all
// servers, initialized to the same state, with client requests delivered
// by atomic broadcast (or secure causal atomic broadcast for confidential
// services) so every honest server performs the same sequence of
// operations.
//
// Clients send a request to all servers and accept an answer once servers
// that cannot all be corrupted (a set outside the adversary structure)
// returned the same result — the generalized form of the paper's
// "wait for 2t+1 values and take the majority". If the application's
// answers are signed, each response carries a threshold-signature share
// and the client recovers the service's single signature from them, so a
// certificate or notary receipt looks exactly like one from a centralized
// service.
package core

import (
	"fmt"

	"sintra/internal/thresig"
)

// Mode selects the request dissemination protocol of a service.
type Mode int

// Service modes.
const (
	// ModeAtomic delivers requests by plain atomic broadcast: total order,
	// request content visible to servers before ordering.
	ModeAtomic Mode = iota + 1
	// ModeSecureCausal delivers requests by secure causal atomic
	// broadcast: clients encrypt requests under the service key and
	// servers decrypt only after the order is fixed (input causality).
	ModeSecureCausal
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeAtomic:
		return "atomic"
	case ModeSecureCausal:
		return "secure-causal"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// StateMachine is a deterministic replicated application. Apply is called
// with dense sequence numbers, in the same order with the same arguments
// on every honest server, and must be a pure function of the sequence of
// requests applied so far.
type StateMachine interface {
	// Apply executes one ordered request and returns the response sent
	// back to the client.
	Apply(seq int64, request []byte) (response []byte)
}

// Snapshotter is the optional state-transfer extension of StateMachine:
// services that implement it participate in checkpointing and can be
// caught up (or restarted) from a certified peer snapshot. Snapshot must
// be a deterministic encoding of the state — every honest replica at the
// same sequence number must produce byte-identical snapshots, since the
// checkpoint certificate signs their hash. Restore replaces the state
// wholesale with a decoded snapshot.
type Snapshotter interface {
	Snapshot() []byte
	Restore(snapshot []byte) error
}

// envelope is the unit a client submits: a request body plus the client's
// correlation ID. It travels in plaintext for ModeAtomic and inside a
// TDH2 ciphertext for ModeSecureCausal.
type envelope struct {
	ReqID [16]byte
	Body  []byte
}

// Client/server message bodies for the "client" wire protocol.
type requestBody struct {
	ReqID   [16]byte
	Payload []byte
}

type responseBody struct {
	ReqID  [16]byte
	Seq    int64
	Result []byte
	Share  thresig.Share
}

// clientProtocol is the wire protocol between clients and servers.
const clientProtocol = "client"

// Message types of the client protocol.
const (
	typeRequest  = "REQUEST"
	typeResponse = "RESPONSE"
)

// answerStatement is the byte string whose threshold signature certifies a
// service answer.
func answerStatement(service string, reqID [16]byte, result []byte) []byte {
	out := make([]byte, 0, len(service)+len(result)+32)
	out = append(out, "svcresp|"...)
	out = append(out, service...)
	out = append(out, '|')
	out = append(out, reqID[:]...)
	out = append(out, '|')
	return append(out, result...)
}
