package core

import (
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"sintra/internal/abc"
	"sintra/internal/checkpoint"
	"sintra/internal/deal"
	"sintra/internal/engine"
	"sintra/internal/obs"
	"sintra/internal/scabc"
	"sintra/internal/trust"
	"sintra/internal/wal"
	"sintra/internal/wire"
)

// DefaultCheckpointInterval is the checkpoint period (in delivered
// payloads) used when the service implements Snapshotter and no explicit
// interval is configured.
const DefaultCheckpointInterval = 256

// defaultRequestTTL is the fallback expiry for request bookkeeping of
// payloads that never a-deliver; the stable-checkpoint horizon usually
// clears them first.
const defaultRequestTTL = 2 * time.Minute

// maxPendingRequests hard-caps the request-bookkeeping map; beyond it
// the oldest entries are evicted (a flood of undeliverable requests
// costs the flooder its own response routing, never memory).
const maxPendingRequests = 4096

// NodeConfig configures one replica.
type NodeConfig struct {
	// Public is the dealer's public output; Secret this party's keys.
	Public *deal.Public
	Secret *deal.PartySecret
	// Transport connects the replica to the network.
	Transport wire.Transport
	// ServiceName tags the replicated service (protocol instance).
	ServiceName string
	// Service is the deterministic application.
	Service StateMachine
	// Mode selects atomic or secure-causal request dissemination.
	Mode Mode
	// Trust optionally overrides the quorum backend for the whole
	// protocol stack (atomic broadcast down to reliable broadcast and
	// the common coin). Nil wraps the deployment's adversary structure
	// in the symmetric backend — the paper's trust model and the
	// default. Asymmetric deployments build a backend from a trust.Spec
	// (see trust.ParseSpec) and must pass the same per-party fail-prone
	// systems on every replica.
	Trust trust.Quorums
	// BatchSize tunes the atomic broadcast batches (the adaptive floor).
	BatchSize int
	// MaxBatchSize caps the atomic broadcast's adaptive batch growth:
	// 0 defaults to 8x the batch size; values below BatchSize clamp to
	// BatchSize, pinning the batch (adaptation off).
	MaxBatchSize int
	// Observer optionally wires the replica — its router, the whole
	// broadcast stack beneath it, and the state-machine execution — into
	// an observability registry. Nil leaves observability off.
	Observer *obs.Registry
	// Tracer optionally receives structured protocol-stage events; it is
	// installed on Observer (and ignored when Observer is nil).
	Tracer obs.Tracer
	// VerifyWorkers sizes the router's parallel message-verification
	// pool: 0 keeps the engine default (GOMAXPROCS), a negative value
	// disables the pool (all verification inline on the dispatch
	// goroutine), a positive value sets the worker count.
	VerifyWorkers int
	// VerifyBatch caps how many queued same-kind messages one verify
	// worker coalesces into a single batch-verification call: 0 keeps
	// the engine default, a negative value disables coalescing (every
	// share proof checked individually), a positive value sets the cap.
	VerifyBatch int
	// CheckpointInterval is the checkpoint/GC period in delivered
	// payloads: 0 selects DefaultCheckpointInterval, negative disables
	// checkpointing. Effective only in ModeAtomic with a Service that
	// implements Snapshotter; otherwise the node falls back to the
	// ordering layer's deterministic retention-window pruning.
	CheckpointInterval int64
	// RetentionWindow overrides the ordering layer's delivered-digest
	// dedup bound (see abc.Config.RetentionWindow). Must be identical on
	// every replica.
	RetentionWindow int64
	// RequestTTL overrides the fallback expiry of request bookkeeping
	// for payloads that never deliver (0 selects defaultRequestTTL).
	RequestTTL time.Duration
	// CodedThreshold switches ordering-layer proposals whose batches
	// reach this many bytes to coded dissemination (digest header plus
	// one erasure-coded reliable broadcast). 0 selects
	// abc.DefaultCodedThreshold, negative disables. Must be identical on
	// every replica.
	CodedThreshold int
	// ChunkSize splits oversized client payloads into deterministic
	// frames reassembled after ordering, so one huge request cannot
	// wedge a round. 0 selects abc.DefaultChunkSize, negative disables.
	// Atomic mode only (the secure-causal pipeline needs dense sequence
	// numbers); must be identical on every replica.
	ChunkSize int
	// DataDir, when non-empty, enables the durable write-ahead log under
	// this directory: every protocol-critical outbound message (RBC
	// echoes, ABA votes, coin shares, signed proposals, ...) is journaled
	// durably before its first transmission and the delivery frontier is
	// logged at apply time, so a crash-restarted replica re-sends
	// byte-identical messages — never conflicting ones. Empty keeps the
	// replica memoryless (a restart is amnesiac, as before this knob).
	DataDir string
	// WALSyncInterval is the journal's group-commit latency cap: 0
	// selects the WAL default, negative disables fsync (tests).
	WALSyncInterval time.Duration
	// WALFailAppend is a crash-injection hook forwarded to the WAL: the
	// first append whose LSN it accepts fails and wedges the journal,
	// muting the replica mid-protocol (kill-at-record-N testing).
	WALFailAppend func(lsn uint64) bool
}

// Node is one replica of a distributed trusted service.
type Node struct {
	cfg    NodeConfig
	router *engine.Router

	// reqClients maps a request correlation ID to the client endpoints
	// that asked for it, plus enough position/age bookkeeping to expire
	// entries whose request never delivers (dispatch goroutine only).
	reqClients map[[16]byte]*reqEntry
	// reqOrder is the FIFO of live correlation IDs (head-indexed), the
	// eviction order of the maxPendingRequests cap.
	reqOrder     [][16]byte
	reqHead      int
	reqSinceScan int
	reqTTL       time.Duration

	applied int64 // requests applied (dispatch goroutine only)

	// Atomic-mode checkpointing (nil when disabled or not applicable).
	abc      *abc.ABC
	ckpt     *checkpoint.Tracker
	snapper  Snapshotter
	interval int64

	// journal is the durability journal (nil without DataDir). Opened —
	// and replayed — before any protocol instance exists, so recovered
	// commitments are in force before the replica can emit a message.
	journal *wal.Journal
	walSize *obs.Gauge

	appliedCount *obs.Counter
	applyLat     *obs.Histogram
	reqSize      *obs.Gauge

	runOnce  sync.Once
	stopOnce sync.Once
}

// reqEntry records who to answer for one in-flight request.
type reqEntry struct {
	clients []int
	seq     int64 // delivery frontier when the request was first seen
	at      time.Time
}

// NewNode builds a replica. Call Run to start serving; Stop to shut down.
func NewNode(cfg NodeConfig) (*Node, error) {
	if cfg.Public == nil || cfg.Secret == nil || cfg.Transport == nil || cfg.Service == nil {
		return nil, errors.New("core: incomplete node configuration")
	}
	if cfg.ServiceName == "" {
		return nil, errors.New("core: service name required")
	}
	if cfg.Mode != ModeAtomic && cfg.Mode != ModeSecureCausal {
		return nil, fmt.Errorf("core: unknown mode %v", cfg.Mode)
	}
	n := &Node{
		cfg:        cfg,
		router:     engine.NewRouter(cfg.Transport),
		reqClients: make(map[[16]byte]*reqEntry),
		reqTTL:     cfg.RequestTTL,
	}
	if n.reqTTL <= 0 {
		n.reqTTL = defaultRequestTTL
	}
	if cfg.VerifyWorkers != 0 {
		workers := cfg.VerifyWorkers
		if workers < 0 {
			workers = 0
		}
		n.router.SetVerifyWorkers(workers)
	}
	if cfg.VerifyBatch != 0 {
		n.router.SetVerifyBatch(cfg.VerifyBatch)
	}
	if cfg.Observer != nil {
		if cfg.Tracer != nil {
			cfg.Observer.SetTracer(cfg.Tracer)
		}
		n.router.SetObserver(cfg.Observer)
		n.appliedCount = cfg.Observer.Counter("node.applied")
		n.applyLat = cfg.Observer.Histogram("node.apply.latency")
		n.reqSize = cfg.Observer.Gauge("node.reqclients.size")
	}

	// Durability journal: open (and replay) before any protocol instance
	// is constructed, so every commitment recovered from disk is already
	// in force when the first message could be sent.
	if cfg.DataDir != "" {
		j, err := wal.OpenJournal(filepath.Join(cfg.DataDir, "wal"), wal.Options{
			SyncInterval: cfg.WALSyncInterval,
			FailAppend:   cfg.WALFailAppend,
		})
		if err != nil {
			return nil, fmt.Errorf("core: open journal: %w", err)
		}
		n.journal = j
		n.router.SetJournal(j)
		if cfg.Observer != nil {
			n.walSize = cfg.Observer.Gauge("wal.size.bytes")
			n.walSize.Set(j.Size())
			cfg.Observer.Gauge("wal.recovered.records").Set(int64(j.Recovered()))
		}
	}

	// Checkpointing engages in atomic mode when the service can snapshot
	// itself and the interval is not explicitly disabled.
	n.interval = cfg.CheckpointInterval
	if n.interval == 0 {
		n.interval = DefaultCheckpointInterval
	}
	snapper, canSnap := cfg.Service.(Snapshotter)
	useCkpt := cfg.Mode == ModeAtomic && canSnap && n.interval > 0

	qtrust := cfg.Trust
	if qtrust == nil {
		qtrust = trust.NewSymmetric(cfg.Public.Structure)
	}
	if qtrust.N() != cfg.Public.Structure.N() {
		return nil, fmt.Errorf("core: trust backend is for %d parties, deployment has %d", qtrust.N(), cfg.Public.Structure.N())
	}
	if a, ok := qtrust.(*trust.Asymmetric); ok {
		// Gated coin combiners must not starve: every observer needs a
		// quorum the dealt sharing scheme can reconstruct from.
		if err := a.CompatibleWithAccess(cfg.Public.Coin.Qualified); err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
	}

	switch cfg.Mode {
	case ModeAtomic:
		abcCfg := abc.Config{
			Router:          n.router,
			Struct:          cfg.Public.Structure,
			Trust:           qtrust,
			Instance:        "svc/" + cfg.ServiceName,
			Identity:        cfg.Public.Identity,
			IDKey:           cfg.Secret.Identity,
			Coin:            cfg.Public.Coin,
			CoinKey:         cfg.Secret.Coin,
			Scheme:          cfg.Public.QuorumSig(),
			Key:             cfg.Secret.SigQuorum,
			BatchSize:       cfg.BatchSize,
			MaxBatchSize:    cfg.MaxBatchSize,
			RetentionWindow: cfg.RetentionWindow,
			CodedThreshold:  cfg.CodedThreshold,
			ChunkSize:       cfg.ChunkSize,
			Deliver:         n.onAtomicDeliver,
			RoundEnd:        n.onRoundEnd,
		}
		if useCkpt {
			// Late binding through the node fields: the tracker needs the
			// abc frontier and the abc needs the tracker's certificates.
			abcCfg.ProvideCheckpoint = func() []byte {
				if n.ckpt == nil {
					return nil
				}
				return n.ckpt.EncodedStable()
			}
			abcCfg.VerifyCheckpoint = func(enc []byte) (int64, bool) {
				if n.ckpt == nil {
					return 0, false
				}
				return n.ckpt.VerifyEncoded(enc)
			}
		}
		n.abc = abc.New(abcCfg)
		if useCkpt {
			n.snapper = snapper
			n.ckpt = checkpoint.New(checkpoint.Config{
				Router:     n.router,
				Trust:      cfg.Trust,
				Instance:   "svc/" + cfg.ServiceName,
				Scheme:     cfg.Public.AnswerSig(),
				Key:        cfg.Secret.SigAnswer,
				Interval:   n.interval,
				Snapshot:   n.checkpointSnapshot,
				CurrentSeq: n.abc.Seq,
				Suffix:     n.abc.SuffixSince,
				Install:    n.installCheckpoint,
				OnStable:   n.onStableCheckpoint,
			})
		}
	case ModeSecureCausal:
		scabc.New(scabc.Config{
			Router:          n.router,
			Struct:          cfg.Public.Structure,
			Trust:           qtrust,
			Instance:        "svc/" + cfg.ServiceName,
			Identity:        cfg.Public.Identity,
			IDKey:           cfg.Secret.Identity,
			Coin:            cfg.Public.Coin,
			CoinKey:         cfg.Secret.Coin,
			Scheme:          cfg.Public.QuorumSig(),
			Key:             cfg.Secret.SigQuorum,
			Enc:             cfg.Public.Enc,
			EncKey:          cfg.Secret.Enc,
			BatchSize:       cfg.BatchSize,
			MaxBatchSize:    cfg.MaxBatchSize,
			RetentionWindow: cfg.RetentionWindow,
			CodedThreshold:  cfg.CodedThreshold,
			Deliver:         n.onCausalDeliver,
		})
	}
	n.router.Register(clientProtocol, cfg.ServiceName, n.onClientMessage)
	if n.ckpt != nil {
		// A (re)started replica immediately asks peers for the latest
		// stable checkpoint; live peers simply won't have a newer one.
		n.ckpt.RequestCatchUp()
	}
	return n, nil
}

// Run starts the replica's dispatch loop (blocking). Usually invoked in a
// goroutine; returns when the transport closes.
func (n *Node) Run() {
	n.runOnce.Do(n.router.Run)
}

// Stop shuts the replica down and waits for the dispatch loop to exit.
func (n *Node) Stop() {
	n.stopOnce.Do(func() {
		_ = n.cfg.Transport.Close()
		<-n.router.Done()
		if n.journal != nil {
			_ = n.journal.Close()
		}
	})
}

// Router exposes the protocol router (used by the experiment harness).
func (n *Node) Router() *engine.Router { return n.router }

// Journal exposes the durability journal (nil without DataDir); the
// crash-recovery harness inspects recovery and wedge state through it.
func (n *Node) Journal() *wal.Journal { return n.journal }

// Applied returns how many requests this replica has executed. Must be
// read via Router().DoSync from outside the dispatch loop; the experiment
// harness uses it as a progress metric.
func (n *Node) Applied() int64 { return n.applied }

// Seq reports the atomic-broadcast delivery frontier (0 in secure-causal
// mode). Safe from any goroutine; the restart/catch-up harness polls it.
func (n *Node) Seq() int64 {
	if n.abc == nil {
		return 0
	}
	return n.abc.Seq()
}

// PendingRequests reports the request-bookkeeping map size (blocking
// DoSync; tests and the soak harness assert it stays bounded).
func (n *Node) PendingRequests() int {
	var size int
	n.router.DoSync(func() { size = len(n.reqClients) })
	return size
}

// submitter resolves the ordering layer's submit entry point.
func (n *Node) submit(payload []byte) error {
	switch n.cfg.Mode {
	case ModeAtomic:
		return n.router.Loopback(abc.Protocol, "svc/"+n.cfg.ServiceName, "SUBMIT",
			struct{ Payload []byte }{payload})
	case ModeSecureCausal:
		return n.router.Loopback(abc.Protocol, "svc/"+n.cfg.ServiceName+"/ord", "SUBMIT",
			struct{ Payload []byte }{payload})
	}
	return fmt.Errorf("core: unknown mode")
}

// onClientMessage handles REQUEST messages from clients (and ignores
// stray RESPONSE echoes).
func (n *Node) onClientMessage(from int, msgType string, payload []byte) {
	if msgType != typeRequest {
		return
	}
	var req requestBody
	if !n.router.Decode(payload, &req) {
		return
	}
	if from >= n.cfg.Transport.N() {
		// Remember which client endpoint to answer (bounded fan-in).
		e := n.reqClients[req.ReqID]
		if e == nil {
			n.sweepRequests()
			e = &reqEntry{seq: n.Seq(), at: time.Now()}
			n.reqClients[req.ReqID] = e
			n.reqOrder = append(n.reqOrder, req.ReqID)
			if n.reqSize != nil {
				n.reqSize.Set(int64(len(n.reqClients)))
			}
		}
		seen := false
		for _, c := range e.clients {
			if c == from {
				seen = true
				break
			}
		}
		if !seen && len(e.clients) < 8 {
			e.clients = append(e.clients, from)
		}
	}
	_ = n.submit(req.Payload)
}

// sweepRequests bounds the request bookkeeping on the insert path: a
// periodic TTL scan expires entries whose request never delivered (the
// checkpoint horizon usually clears them first, but a flood of
// undeliverable requests sees no round progress), and a hard cap evicts
// oldest-first. Dispatch goroutine only.
func (n *Node) sweepRequests() {
	if n.reqSinceScan++; n.reqSinceScan >= 256 {
		n.reqSinceScan = 0
		now := time.Now()
		for id, e := range n.reqClients {
			if now.Sub(e.at) > n.reqTTL {
				delete(n.reqClients, id)
			}
		}
	}
	for len(n.reqClients) >= maxPendingRequests && n.reqHead < len(n.reqOrder) {
		id := n.reqOrder[n.reqHead]
		n.reqHead++
		delete(n.reqClients, id) // no-op when already answered
	}
	n.compactReqOrder()
}

// compactReqOrder rebuilds the eviction FIFO once its consumed-or-dead
// prefix dominates, keeping the backing array bounded. Dispatch
// goroutine only.
func (n *Node) compactReqOrder() {
	if len(n.reqOrder)-n.reqHead > 2*len(n.reqClients)+1024 || (n.reqHead > 1024 && n.reqHead*2 >= len(n.reqOrder)) {
		kept := n.reqOrder[:0]
		for _, id := range n.reqOrder[n.reqHead:] {
			if _, live := n.reqClients[id]; live {
				kept = append(kept, id)
			}
		}
		n.reqOrder = kept
		n.reqHead = 0
	}
}

// onRoundEnd is the ordering layer's round-boundary hook: it drives the
// checkpoint tracker and expires request bookkeeping below the GC
// horizon. Dispatch goroutine only.
func (n *Node) onRoundEnd(seq, nextRound, horizon int64) {
	if n.ckpt != nil {
		n.ckpt.RoundEnd(seq, nextRound)
	}
	if horizon <= 0 {
		return
	}
	// Entries whose request was first seen a full interval below the
	// horizon have had every chance to deliver; expire them. The age
	// guard keeps a just-inserted entry alive when the horizon races
	// right up to the frontier.
	grace := n.interval
	if grace <= 0 {
		grace = DefaultCheckpointInterval
	}
	now := time.Now()
	removed := false
	for id, e := range n.reqClients {
		if e.seq+grace <= horizon && now.Sub(e.at) > 5*time.Second {
			delete(n.reqClients, id)
			removed = true
		}
	}
	if removed {
		n.compactReqOrder()
		if n.reqSize != nil {
			n.reqSize.Set(int64(len(n.reqClients)))
		}
	}
}

// snapWrap is the checkpointed state: the service snapshot plus the
// ordering layer's in-flight chunk-reassembly state. Both inputs are
// deterministic at a given sequence number, so the wrapped bytes are
// identical across honest replicas and certify as before. Without the
// chunk state, a replica installing a snapshot mid-group would replay
// only the suffix frames, never complete the payload, and diverge from
// replicas that were live for the whole group.
type snapWrap struct {
	Svc    []byte
	Chunks []byte
}

// checkpointSnapshot produces the wrapped checkpoint state. Dispatch
// goroutine only (called by the tracker at round boundaries).
func (n *Node) checkpointSnapshot() []byte {
	enc, err := wire.MarshalBody(snapWrap{Svc: n.snapper.Snapshot(), Chunks: n.abc.ChunkState()})
	if err != nil {
		return nil
	}
	return enc
}

// installCheckpoint adopts a certified checkpoint fetched from a peer:
// restore the service snapshot when it is ahead of the local frontier,
// then replay the delivery suffix through the ordering layer so dedup
// bookkeeping, sequence numbers, and client answers all take the normal
// path. Dispatch goroutine only (called by the tracker's STATE handler).
func (n *Node) installCheckpoint(cp checkpoint.Checkpoint, snapshot []byte, suffix [][]byte, liveRound int64) bool {
	var install func() bool
	if cp.Seq >= n.abc.Seq() {
		install = func() bool {
			var w snapWrap
			if wire.UnmarshalBody(snapshot, &w) != nil {
				return false
			}
			if n.snapper.Restore(w.Svc) != nil {
				return false
			}
			if n.abc.RestoreChunkState(w.Chunks) != nil {
				return false
			}
			n.applied = cp.Seq
			return true
		}
	}
	return n.abc.Install(cp.Seq, install, suffix, liveRound)
}

// onStableCheckpoint reacts to a newly certified checkpoint: tombstoned
// protocol instances of rounds entirely below the certified round are
// compacted away. Dispatch goroutine only.
func (n *Node) onStableCheckpoint(cp checkpoint.Checkpoint) {
	prefix := "svc/" + n.cfg.ServiceName + "/r"
	n.router.CompactTombstones(func(protocol, instance string) bool {
		// roundIn, not roundOf: sub-protocol instances embed the round
		// marker mid-name (MVBA's "<sender>/m/svc/<name>/r<round>" CBCs,
		// the coded batch dispersals "<proposer>/svc/<name>/r<round>/batch").
		r, ok := roundIn(instance, prefix)
		return ok && r < cp.Round
	})
	if n.journal == nil {
		return
	}
	// Checkpoint stability bounds the journal: commitments of rounds (or
	// checkpoint sequences) entirely below the certified horizon can never
	// be re-sent meaningfully, so drop them and rewrite the live ledger
	// into a fresh segment, truncating everything older.
	n.journal.Forget(func(protocol, instance, slot string) bool {
		// The round marker can sit mid-name: MVBA's per-proposer CBC
		// instances look like "<sender>/m/svc/<name>/r<round>".
		if r, ok := roundIn(instance, prefix); ok {
			return r < cp.Round
		}
		switch protocol {
		case abc.Protocol:
			if r, ok := slotSuffix(slot, "prop/"); ok {
				return r < cp.Round
			}
		case checkpoint.Protocol:
			if s, ok := slotSuffix(slot, "share/"); ok {
				return s < cp.Seq
			}
		}
		return false
	})
	if err := n.journal.Compact(); err == nil && n.walSize != nil {
		n.walSize.Set(n.journal.Size())
	}
}

// slotSuffix parses the numeric tail of a journal slot name such as
// "prop/<round>" or "share/<seq>".
func slotSuffix(slot, prefix string) (int64, bool) {
	if !strings.HasPrefix(slot, prefix) {
		return 0, false
	}
	v, err := strconv.ParseInt(slot[len(prefix):], 10, 64)
	return v, err == nil
}

// roundIn finds the round marker anywhere in the instance name, covering
// sub-protocol instances whose name embeds the per-round parent (e.g.
// MVBA's "<sender>/m/svc/<name>/r<round>" CBC instances).
func roundIn(instance, prefix string) (int64, bool) {
	i := strings.Index(instance, prefix)
	if i < 0 {
		return 0, false
	}
	return roundAfter(instance[i+len(prefix):])
}

func roundAfter(rest string) (int64, bool) {
	if i := strings.IndexByte(rest, '/'); i >= 0 {
		rest = rest[:i]
	}
	r, err := strconv.ParseInt(rest, 10, 64)
	if err != nil {
		return 0, false
	}
	return r, true
}

// onAtomicDeliver executes a plaintext envelope delivered by atomic
// broadcast.
func (n *Node) onAtomicDeliver(seq int64, payload []byte) {
	var env envelope
	if !n.router.Decode(payload, &env) {
		return // malformed request: deterministic skip on every replica
	}
	n.apply(seq, env)
}

// onCausalDeliver executes a decrypted envelope delivered by secure
// causal atomic broadcast.
func (n *Node) onCausalDeliver(seq int64, request []byte) {
	var env envelope
	if !n.router.Decode(request, &env) {
		return
	}
	n.apply(seq, env)
}

// apply runs the state machine and answers the requesting clients.
func (n *Node) apply(seq int64, env envelope) {
	var start time.Time
	if n.applyLat != nil {
		start = time.Now()
	}
	result := n.cfg.Service.Apply(seq, env.Body)
	n.applied++
	n.appliedCount.Inc()
	n.applyLat.ObserveSince(start)
	if n.journal != nil {
		// Log the delivery frontier at apply time (async append; the
		// group-commit fsync of subsequent outbound traffic covers it).
		d := sha256.Sum256(env.Body)
		_ = n.journal.RecordDeliver(seq, d[:])
		n.walSize.Set(n.journal.Size())
	}

	scheme := n.cfg.Public.AnswerSig()
	share, err := scheme.SignShare(n.cfg.Secret.SigAnswer,
		answerStatement(n.cfg.ServiceName, env.ReqID, result), rand.Reader)
	if err != nil {
		return
	}
	resp := responseBody{
		ReqID:  env.ReqID,
		Seq:    seq,
		Result: result,
		Share:  share,
	}
	if e := n.reqClients[env.ReqID]; e != nil {
		for _, client := range e.clients {
			_ = n.router.Send(client, clientProtocol, n.cfg.ServiceName, typeResponse, resp)
		}
		delete(n.reqClients, env.ReqID)
		if n.reqSize != nil {
			n.reqSize.Set(int64(len(n.reqClients)))
		}
	}
}

// VerifyAnswer lets anyone check a service's threshold-signed answer: the
// signature proves that servers beyond the adversary structure's reach
// attested the result for this request ID.
func VerifyAnswer(pub *deal.Public, service string, reqID [16]byte, result, sig []byte) error {
	return pub.AnswerSig().Verify(answerStatement(service, reqID, result), sig)
}
