package core

import (
	"crypto/rand"
	"errors"
	"fmt"
	"sync"
	"time"

	"sintra/internal/abc"
	"sintra/internal/deal"
	"sintra/internal/engine"
	"sintra/internal/obs"
	"sintra/internal/scabc"
	"sintra/internal/wire"
)

// NodeConfig configures one replica.
type NodeConfig struct {
	// Public is the dealer's public output; Secret this party's keys.
	Public *deal.Public
	Secret *deal.PartySecret
	// Transport connects the replica to the network.
	Transport wire.Transport
	// ServiceName tags the replicated service (protocol instance).
	ServiceName string
	// Service is the deterministic application.
	Service StateMachine
	// Mode selects atomic or secure-causal request dissemination.
	Mode Mode
	// BatchSize tunes the atomic broadcast batches (the adaptive floor).
	BatchSize int
	// MaxBatchSize caps the atomic broadcast's adaptive batch growth:
	// 0 defaults to 8x the batch size; values below BatchSize clamp to
	// BatchSize, pinning the batch (adaptation off).
	MaxBatchSize int
	// Observer optionally wires the replica — its router, the whole
	// broadcast stack beneath it, and the state-machine execution — into
	// an observability registry. Nil leaves observability off.
	Observer *obs.Registry
	// Tracer optionally receives structured protocol-stage events; it is
	// installed on Observer (and ignored when Observer is nil).
	Tracer obs.Tracer
	// VerifyWorkers sizes the router's parallel message-verification
	// pool: 0 keeps the engine default (GOMAXPROCS), a negative value
	// disables the pool (all verification inline on the dispatch
	// goroutine), a positive value sets the worker count.
	VerifyWorkers int
	// VerifyBatch caps how many queued same-kind messages one verify
	// worker coalesces into a single batch-verification call: 0 keeps
	// the engine default, a negative value disables coalescing (every
	// share proof checked individually), a positive value sets the cap.
	VerifyBatch int
}

// Node is one replica of a distributed trusted service.
type Node struct {
	cfg    NodeConfig
	router *engine.Router

	// reqClients maps a request correlation ID to the client endpoints
	// that asked for it (dispatch goroutine only).
	reqClients map[[16]byte][]int

	applied int64 // requests applied (dispatch goroutine only)

	appliedCount *obs.Counter
	applyLat     *obs.Histogram

	runOnce  sync.Once
	stopOnce sync.Once
}

// NewNode builds a replica. Call Run to start serving; Stop to shut down.
func NewNode(cfg NodeConfig) (*Node, error) {
	if cfg.Public == nil || cfg.Secret == nil || cfg.Transport == nil || cfg.Service == nil {
		return nil, errors.New("core: incomplete node configuration")
	}
	if cfg.ServiceName == "" {
		return nil, errors.New("core: service name required")
	}
	if cfg.Mode != ModeAtomic && cfg.Mode != ModeSecureCausal {
		return nil, fmt.Errorf("core: unknown mode %v", cfg.Mode)
	}
	n := &Node{
		cfg:        cfg,
		router:     engine.NewRouter(cfg.Transport),
		reqClients: make(map[[16]byte][]int),
	}
	if cfg.VerifyWorkers != 0 {
		workers := cfg.VerifyWorkers
		if workers < 0 {
			workers = 0
		}
		n.router.SetVerifyWorkers(workers)
	}
	if cfg.VerifyBatch != 0 {
		n.router.SetVerifyBatch(cfg.VerifyBatch)
	}
	if cfg.Observer != nil {
		if cfg.Tracer != nil {
			cfg.Observer.SetTracer(cfg.Tracer)
		}
		n.router.SetObserver(cfg.Observer)
		n.appliedCount = cfg.Observer.Counter("node.applied")
		n.applyLat = cfg.Observer.Histogram("node.apply.latency")
	}

	switch cfg.Mode {
	case ModeAtomic:
		abc.New(abc.Config{
			Router:       n.router,
			Struct:       cfg.Public.Structure,
			Instance:     "svc/" + cfg.ServiceName,
			Identity:     cfg.Public.Identity,
			IDKey:        cfg.Secret.Identity,
			Coin:         cfg.Public.Coin,
			CoinKey:      cfg.Secret.Coin,
			Scheme:       cfg.Public.QuorumSig(),
			Key:          cfg.Secret.SigQuorum,
			BatchSize:    cfg.BatchSize,
			MaxBatchSize: cfg.MaxBatchSize,
			Deliver:      n.onAtomicDeliver,
		})
	case ModeSecureCausal:
		scabc.New(scabc.Config{
			Router:       n.router,
			Struct:       cfg.Public.Structure,
			Instance:     "svc/" + cfg.ServiceName,
			Identity:     cfg.Public.Identity,
			IDKey:        cfg.Secret.Identity,
			Coin:         cfg.Public.Coin,
			CoinKey:      cfg.Secret.Coin,
			Scheme:       cfg.Public.QuorumSig(),
			Key:          cfg.Secret.SigQuorum,
			Enc:          cfg.Public.Enc,
			EncKey:       cfg.Secret.Enc,
			BatchSize:    cfg.BatchSize,
			MaxBatchSize: cfg.MaxBatchSize,
			Deliver:      n.onCausalDeliver,
		})
	}
	n.router.Register(clientProtocol, cfg.ServiceName, n.onClientMessage)
	return n, nil
}

// Run starts the replica's dispatch loop (blocking). Usually invoked in a
// goroutine; returns when the transport closes.
func (n *Node) Run() {
	n.runOnce.Do(n.router.Run)
}

// Stop shuts the replica down and waits for the dispatch loop to exit.
func (n *Node) Stop() {
	n.stopOnce.Do(func() {
		_ = n.cfg.Transport.Close()
		<-n.router.Done()
	})
}

// Router exposes the protocol router (used by the experiment harness).
func (n *Node) Router() *engine.Router { return n.router }

// Applied returns how many requests this replica has executed. Must be
// read via Router().DoSync from outside the dispatch loop; the experiment
// harness uses it as a progress metric.
func (n *Node) Applied() int64 { return n.applied }

// submitter resolves the ordering layer's submit entry point.
func (n *Node) submit(payload []byte) error {
	switch n.cfg.Mode {
	case ModeAtomic:
		return n.router.Loopback(abc.Protocol, "svc/"+n.cfg.ServiceName, "SUBMIT",
			struct{ Payload []byte }{payload})
	case ModeSecureCausal:
		return n.router.Loopback(abc.Protocol, "svc/"+n.cfg.ServiceName+"/ord", "SUBMIT",
			struct{ Payload []byte }{payload})
	}
	return fmt.Errorf("core: unknown mode")
}

// onClientMessage handles REQUEST messages from clients (and ignores
// stray RESPONSE echoes).
func (n *Node) onClientMessage(from int, msgType string, payload []byte) {
	if msgType != typeRequest {
		return
	}
	var req requestBody
	if !n.router.Decode(payload, &req) {
		return
	}
	if from >= n.cfg.Transport.N() {
		// Remember which client endpoint to answer (bounded fan-in).
		clients := n.reqClients[req.ReqID]
		seen := false
		for _, c := range clients {
			if c == from {
				seen = true
				break
			}
		}
		if !seen && len(clients) < 8 {
			n.reqClients[req.ReqID] = append(clients, from)
		}
	}
	_ = n.submit(req.Payload)
}

// onAtomicDeliver executes a plaintext envelope delivered by atomic
// broadcast.
func (n *Node) onAtomicDeliver(seq int64, payload []byte) {
	var env envelope
	if !n.router.Decode(payload, &env) {
		return // malformed request: deterministic skip on every replica
	}
	n.apply(seq, env)
}

// onCausalDeliver executes a decrypted envelope delivered by secure
// causal atomic broadcast.
func (n *Node) onCausalDeliver(seq int64, request []byte) {
	var env envelope
	if !n.router.Decode(request, &env) {
		return
	}
	n.apply(seq, env)
}

// apply runs the state machine and answers the requesting clients.
func (n *Node) apply(seq int64, env envelope) {
	var start time.Time
	if n.applyLat != nil {
		start = time.Now()
	}
	result := n.cfg.Service.Apply(seq, env.Body)
	n.applied++
	n.appliedCount.Inc()
	n.applyLat.ObserveSince(start)

	scheme := n.cfg.Public.AnswerSig()
	share, err := scheme.SignShare(n.cfg.Secret.SigAnswer,
		answerStatement(n.cfg.ServiceName, env.ReqID, result), rand.Reader)
	if err != nil {
		return
	}
	resp := responseBody{
		ReqID:  env.ReqID,
		Seq:    seq,
		Result: result,
		Share:  share,
	}
	for _, client := range n.reqClients[env.ReqID] {
		_ = n.router.Send(client, clientProtocol, n.cfg.ServiceName, typeResponse, resp)
	}
	delete(n.reqClients, env.ReqID)
}

// VerifyAnswer lets anyone check a service's threshold-signed answer: the
// signature proves that servers beyond the adversary structure's reach
// attested the result for this request ID.
func VerifyAnswer(pub *deal.Public, service string, reqID [16]byte, result, sig []byte) error {
	return pub.AnswerSig().Verify(answerStatement(service, reqID, result), sig)
}
