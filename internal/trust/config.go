package trust

import (
	"bytes"
	"encoding/json"
	"fmt"

	"sintra/internal/adversary"
)

// Spec is the operator-facing trust configuration, decoded from JSON
// (the sintra-node -trust-config flag). The zero spec selects the
// symmetric backend over the dealt adversary structure — the default of
// every existing deployment.
//
// Asymmetric example, one entry per party (thresholds and explicit
// maximal fail-prone sets may be mixed):
//
//	{"mode": "asymmetric",
//	 "parties": [{"thresh": 1}, {"thresh": 1},
//	             {"sets": [[0, 1], [3]]}, {"thresh": 1}]}
type Spec struct {
	// Mode is "symmetric" (default when empty) or "asymmetric".
	Mode string `json:"mode,omitempty"`
	// Parties gives each party's fail-prone system (asymmetric only).
	Parties []PartySpec `json:"parties,omitempty"`
}

// PartySpec is one party's fail-prone system in a Spec: exactly one of
// Thresh and Sets must be present.
type PartySpec struct {
	// Thresh declares "any set of at most this many parties may fail".
	Thresh *int `json:"thresh,omitempty"`
	// Sets lists the maximal fail-prone sets as party index lists.
	Sets [][]int `json:"sets,omitempty"`
}

// ParseSpec decodes a trust spec, rejecting unknown fields and trailing
// garbage so configuration typos fail loudly.
func ParseSpec(data []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var sp Spec
	if err := dec.Decode(&sp); err != nil {
		return nil, fmt.Errorf("trust: bad spec: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("trust: trailing data after spec")
	}
	return &sp, nil
}

// Encode serializes the spec back to JSON.
func (sp *Spec) Encode() ([]byte, error) { return json.Marshal(sp) }

// Build resolves the spec against the deployment's dealt structure into
// a trust backend. The structure fixes n; an asymmetric spec must list
// exactly one fail-prone system per party.
func (sp *Spec) Build(st *adversary.Structure) (Quorums, error) {
	switch sp.Mode {
	case "", "symmetric":
		if len(sp.Parties) != 0 {
			return nil, fmt.Errorf("trust: symmetric spec must not list parties")
		}
		return NewSymmetric(st), nil
	case "asymmetric":
		n := st.N()
		if len(sp.Parties) != n {
			return nil, fmt.Errorf("trust: spec lists %d parties, deployment has %d", len(sp.Parties), n)
		}
		systems := make([]FailProne, n)
		for i, ps := range sp.Parties {
			sys, err := ps.failProne(n)
			if err != nil {
				return nil, fmt.Errorf("trust: party %d: %w", i, err)
			}
			systems[i] = sys
		}
		return NewAsymmetric(n, systems)
	default:
		return nil, fmt.Errorf("trust: unknown mode %q", sp.Mode)
	}
}

func (ps *PartySpec) failProne(n int) (FailProne, error) {
	switch {
	case ps.Thresh != nil && ps.Sets != nil:
		return FailProne{}, fmt.Errorf("both thresh and sets given")
	case ps.Thresh != nil:
		if *ps.Thresh < 0 || *ps.Thresh >= n {
			return FailProne{}, fmt.Errorf("thresh %d out of range [0,%d)", *ps.Thresh, n)
		}
		return Threshold(*ps.Thresh), nil
	case ps.Sets != nil:
		sets := make([]adversary.Set, len(ps.Sets))
		for k, members := range ps.Sets {
			var s adversary.Set
			for _, m := range members {
				if m < 0 || m >= n {
					return FailProne{}, fmt.Errorf("party index %d out of range [0,%d)", m, n)
				}
				s = s.Add(m)
			}
			sets[k] = s
		}
		return General(sets...), nil
	default:
		return FailProne{}, fmt.Errorf("neither thresh nor sets given")
	}
}
