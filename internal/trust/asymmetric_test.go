package trust

import (
	"strings"
	"testing"

	"sintra/internal/adversary"
)

func set(members ...int) adversary.Set {
	var s adversary.Set
	for _, m := range members {
		s = s.Add(m)
	}
	return s
}

// wiseNaiveSystem is the running example of the asymmetric tests:
// n = 4, parties 0–2 assume any single failure, party 3 instead bets
// that only {0,2} (or subsets) can fail. B³ holds. With actual
// corruption {1}, parties 0 and 2 are wise and party 3 is naive.
func wiseNaiveSystem(t testing.TB) *Asymmetric {
	t.Helper()
	a, err := NewAsymmetric(4, []FailProne{
		Threshold(1), Threshold(1), Threshold(1), General(set(0, 2)),
	})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestAsymmetricPredicates(t *testing.T) {
	a := wiseNaiveSystem(t)
	if a.N() != 4 {
		t.Fatalf("N=%d", a.N())
	}
	// Threshold observer 0: quorums are any 3 parties.
	if !a.IsQuorum(0, set(0, 2, 3)) || a.IsQuorum(0, set(0, 2)) {
		t.Fatal("threshold observer quorum rule wrong")
	}
	// Observer 3's canonical quorums contain P∖{0,2} = {1,3}.
	if !a.IsQuorum(3, set(1, 3)) {
		t.Fatal("observer 3 must accept {1,3} as a quorum")
	}
	if a.IsQuorum(3, set(0, 2, 3)) {
		t.Fatal("observer 3 accepted a set missing its quorum core {1,3}")
	}
	// HasHonest/Blocks: a set inside F_i has no guaranteed honest member
	// and misses some quorum.
	if a.HasHonest(3, set(0, 2)) || a.Blocks(3, set(0, 2)) {
		t.Fatal("{0,2} is fail-prone for observer 3")
	}
	if !a.HasHonest(3, set(0, 1)) || !a.Blocks(3, set(0, 1)) {
		t.Fatal("{0,1} escapes observer 3's fail-prone system")
	}
	if a.HasHonest(0, set(1)) || !a.HasHonest(0, set(1, 2)) {
		t.Fatal("threshold observer honest-witness rule wrong")
	}
	// Asymmetric delivery rule is the quorum rule.
	for obs := 0; obs < 4; obs++ {
		for v := adversary.Set(0); v < 1<<4; v++ {
			if a.IsStrong(obs, v) != a.IsQuorum(obs, v) {
				t.Fatalf("IsStrong(%d,%v) != IsQuorum", obs, v)
			}
		}
	}
}

func TestAsymmetricWiseNaiveGuild(t *testing.T) {
	a := wiseNaiveSystem(t)
	corrupted := set(1)
	if !a.Wise(0, corrupted) || !a.Wise(2, corrupted) {
		t.Fatal("threshold-1 parties must be wise under a single corruption")
	}
	if a.Wise(3, corrupted) {
		t.Fatal("party 3 bet on {0,2} and must be naive under corruption {1}")
	}
	if got := a.WiseSet(corrupted); got != set(0, 2) {
		t.Fatalf("WiseSet=%v, want {0,2}", got)
	}
	if got := a.NaiveSet(corrupted); got != set(3) {
		t.Fatalf("NaiveSet=%v, want {3}", got)
	}
	// The two wise parties alone contain no quorum of their own (they
	// need 3 parties), so the guild is empty: liveness for the wise in
	// this run depends on the honest naive party still following the
	// protocol.
	if got := a.Guild(corrupted); got != set() {
		t.Fatalf("Guild=%v, want empty", got)
	}
	// A corruption everyone anticipated yields a full guild.
	if got := a.Guild(set(3)); got != set(0, 1, 2) {
		t.Fatalf("Guild({3})=%v, want {0,1,2}", got)
	}
	// Corrupted parties are neither wise nor naive.
	if a.WiseSet(set(0)).Has(0) || a.NaiveSet(set(0)).Has(0) {
		t.Fatal("corrupted party classified")
	}
}

func TestAsymmetricB3Validation(t *testing.T) {
	// Threshold closed form: t_i + t_j + min ≥ n must be rejected.
	if _, err := NewAsymmetric(4, []FailProne{
		Threshold(1), Threshold(2), Threshold(1), Threshold(1),
	}); err == nil || !strings.Contains(err.Error(), "B³") {
		t.Fatalf("2+1+1 ≥ 4 accepted: %v", err)
	}
	// All parties at the symmetric optimum 3t < n pass.
	if _, err := NewAsymmetric(7, []FailProne{
		Threshold(2), Threshold(2), Threshold(2), Threshold(2),
		Threshold(2), Threshold(2), Threshold(2),
	}); err != nil {
		t.Fatal(err)
	}
	// Mixed pair: a generalized bet {0,1,2} plus threshold 1 lets
	// A={3}, B={0,1,2} cover P.
	if _, err := NewAsymmetric(4, []FailProne{
		Threshold(1), Threshold(1), Threshold(1), General(set(0, 1, 2)),
	}); err == nil || !strings.Contains(err.Error(), "B³") {
		t.Fatalf("covering pair accepted: %v", err)
	}
	// Generalized self-pair (Q³ of the party's own system): three copies
	// of sets covering P.
	if _, err := NewAsymmetric(3, []FailProne{
		General(set(0), set(1), set(2)), General(set(0)), General(set(0)),
	}); err == nil || !strings.Contains(err.Error(), "B³") {
		t.Fatalf("non-Q³ self system accepted: %v", err)
	}
	// The wise/naive running example is valid.
	wiseNaiveSystem(t)
}

func TestAsymmetricConstructionErrors(t *testing.T) {
	if _, err := NewAsymmetric(2, []FailProne{Threshold(0)}); err == nil {
		t.Fatal("system count mismatch accepted")
	}
	if _, err := NewAsymmetric(2, []FailProne{Threshold(2), Threshold(0)}); err == nil {
		t.Fatal("threshold ≥ n accepted")
	}
	if _, err := NewAsymmetric(2, []FailProne{General(), Threshold(0)}); err == nil {
		t.Fatal("empty fail-prone system accepted")
	}
	if _, err := NewAsymmetric(2, []FailProne{General(set(0, 1)), Threshold(0)}); err == nil {
		t.Fatal("full-set fail-prone accepted")
	}
	if _, err := NewAsymmetric(2, []FailProne{General(set(5)), Threshold(0)}); err == nil {
		t.Fatal("out-of-range fail-prone set accepted")
	}
}

// TestAsymmetricMatchesSymmetricWhenUniform checks that when every
// party adopts the shared structure's fail-prone family, quorum and
// honest-witness answers coincide with the symmetric backend for every
// observer and subset.
func TestAsymmetricMatchesSymmetricWhenUniform(t *testing.T) {
	st := adversary.Example1()
	sys, err := SystemFromStructure(st)
	if err != nil {
		t.Fatal(err)
	}
	systems := make([]FailProne, st.N())
	for i := range systems {
		systems[i] = sys
	}
	a, err := NewAsymmetric(st.N(), systems)
	if err != nil {
		t.Fatal(err)
	}
	sym := NewSymmetric(st)
	for v := uint64(0); v < 1<<uint(st.N()); v++ {
		s := adversary.Set(v)
		for obs := 0; obs < st.N(); obs++ {
			if a.IsQuorum(obs, s) != sym.IsQuorum(obs, s) {
				t.Fatalf("IsQuorum(%d,%v) diverges from symmetric", obs, s)
			}
			if a.HasHonest(obs, s) != sym.HasHonest(obs, s) {
				t.Fatalf("HasHonest(%d,%v) diverges from symmetric", obs, s)
			}
		}
	}
}

func TestAsymmetricMaximalization(t *testing.T) {
	a, err := NewAsymmetric(4, []FailProne{
		Threshold(1), Threshold(1), Threshold(1),
		General(set(0), set(0, 2), set(0), set(2)),
	})
	if err != nil {
		t.Fatal(err)
	}
	sys := a.System(3)
	if len(sys.MaxSets) != 1 || sys.MaxSets[0] != set(0, 2) {
		t.Fatalf("maximalization kept %v, want [{0,2}]", sys.MaxSets)
	}
}

func TestCompatibleWithAccess(t *testing.T) {
	a := wiseNaiveSystem(t)
	// Any-two-parties access (threshold t=1 dealing): all canonical
	// quorums ({1,3} and all 3-sets) have ≥ 2 members.
	if err := a.CompatibleWithAccess(func(s adversary.Set) bool { return s.Count() >= 2 }); err != nil {
		t.Fatal(err)
	}
	// Three-party access starves observer 3, whose minimal quorum {1,3}
	// has only two members.
	err := a.CompatibleWithAccess(func(s adversary.Set) bool { return s.Count() >= 3 })
	if err == nil || !strings.Contains(err.Error(), "party 3") {
		t.Fatalf("incompatible access accepted: %v", err)
	}
}

func TestAsymmetricObserverRangePanics(t *testing.T) {
	a := wiseNaiveSystem(t)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range observer did not panic")
		}
	}()
	a.IsQuorum(4, set(0))
}
