// Package trust abstracts the quorum logic of the protocols behind an
// observer-indexed interface, so the same protocol code runs under the
// paper's single shared adversary structure (symmetric trust) and under
// per-party fail-prone systems (asymmetric trust, Cachin–Tackmann,
// "Asymmetric Distributed Trust", OPODIS 2019 / arXiv 1906.09314).
//
// Every predicate takes the index of the *observer*: the party on whose
// behalf the question is asked. Symmetric backends ignore it — all
// parties share one structure — while asymmetric backends answer from
// the observer's own quorum system. Predicates are named for the
// protocol role they play, not for a fixed counting rule:
//
//   - IsQuorum: the echo-quorum rule (n−t in the threshold world). A
//     quorum vouching for a value pins it down: any two quorums of any
//     two (wise) observers intersect in a party that is honest in some
//     run the observers consider possible.
//   - HasHonest: the honest-witness rule (t+1). A set the observer's
//     trust assumption cannot fully corrupt contains at least one
//     honest party, so a value vouched for by such a set was vouched
//     for by someone honest.
//   - Blocks: the kernel rule — the set intersects every quorum of the
//     observer, so once it supports a value, no quorum can form without
//     touching it. Under symmetric trust and under canonical asymmetric
//     quorum systems, Blocks coincides with HasHonest; protocols use
//     Blocks where the *amplification* role is meant (e.g. Bracha READY
//     amplification) and HasHonest where the witness role is meant.
//   - IsStrong: the delivery-grade rule (2t+1). Symmetric backends use
//     the monotone strong rule of the structure; asymmetric backends
//     deliberately strengthen this to a full quorum of the observer
//     (see Asymmetric.IsStrong) because wise-party agreement rests on
//     quorum intersection, which strong-but-subquorum sets do not give.
package trust

import (
	"sync"

	"sintra/internal/adversary"
)

// Quorums is the trust backend the protocols consult for every
// quorum-style decision. Implementations must be safe for concurrent
// use: one backend instance is shared by all protocol instances of a
// node.
type Quorums interface {
	// N returns the number of parties.
	N() int
	// IsQuorum reports whether s is a quorum for the observer.
	IsQuorum(observer int, s adversary.Set) bool
	// HasHonest reports whether the observer's trust assumption
	// guarantees an honest member in s.
	HasHonest(observer int, s adversary.Set) bool
	// Blocks reports whether s intersects every quorum of the observer.
	Blocks(observer int, s adversary.Set) bool
	// IsStrong reports whether s satisfies the observer's delivery rule.
	IsStrong(observer int, s adversary.Set) bool
	// Validate checks the backend's internal consistency conditions.
	Validate() error
}

// Symmetric adapts a shared *adversary.Structure to the Quorums
// interface: the paper's original model, where one fail-prone system is
// common knowledge. The observer argument is ignored. Behavior matches
// the structure's predicates exactly; generalized (set-enumerating)
// structures additionally get a bounded memoization cache, since the
// protocols re-evaluate the same party sets once per message.
type Symmetric struct {
	st    *adversary.Structure
	cache *predCache // nil for threshold/hybrid structures (O(1) predicates)
}

// NewSymmetric wraps the structure in the symmetric trust backend.
func NewSymmetric(st *adversary.Structure) *Symmetric {
	s := &Symmetric{st: st}
	if !st.IsThreshold() && !st.Hybrid && len(st.MaxSets) >= cacheMinSets {
		s.cache = newPredCache()
	}
	return s
}

// Structure returns the wrapped adversary structure.
func (s *Symmetric) Structure() *adversary.Structure { return s.st }

// N returns the number of parties.
func (s *Symmetric) N() int { return s.st.N() }

func (s *Symmetric) inAdversary(set adversary.Set) bool {
	if s.cache == nil {
		return s.st.InAdversary(set)
	}
	return s.cache.lookup(cacheInAdversary, set, func() bool { return s.st.InAdversary(set) })
}

// IsQuorum reports the structure's n−t rule.
func (s *Symmetric) IsQuorum(_ int, set adversary.Set) bool {
	if s.cache == nil {
		return s.st.IsQuorum(set)
	}
	// Generalized: s is a quorum iff its complement is corruptible, so
	// one cached InAdversary entry serves both predicates.
	return s.inAdversary(set.Complement(s.st.N()))
}

// HasHonest reports the structure's t+1 rule.
func (s *Symmetric) HasHonest(_ int, set adversary.Set) bool { return !s.inAdversary(set) }

// Blocks coincides with HasHonest under symmetric trust: a set outside
// the adversary structure cannot fit inside any quorum's corruptible
// complement, hence intersects every quorum, and vice versa.
func (s *Symmetric) Blocks(_ int, set adversary.Set) bool { return !s.inAdversary(set) }

// IsStrong reports the structure's monotone 2t+1 rule.
func (s *Symmetric) IsStrong(_ int, set adversary.Set) bool {
	if s.cache == nil {
		return s.st.IsStrong(set)
	}
	return s.cache.lookup(cacheIsStrong, set, func() bool { return s.st.IsStrong(set) })
}

// Validate delegates to the structure's own validation.
func (s *Symmetric) Validate() error { return s.st.Validate() }

// predCache memoizes generalized-structure predicate results. The
// protocols evaluate the same (predicate, party-set) pairs once per
// received message, and generalized evaluation enumerates maximal sets
// (IsStrong is quadratic in |A*|); the cache turns steady-state
// evaluation into one map lookup. It is bounded: when full it resets
// wholesale rather than evicting — the working set of live protocol
// instances is tiny compared to the bound, so resets are rare and only
// cost re-evaluation. Small families skip the cache entirely: below
// cacheMinSets maximal sets, enumerating is cheaper than the lock plus
// map lookup (the paper's Example 2, |A*| = 16, evaluates in ~80ns; a
// 674-set weighted threshold takes tens of microseconds).
const (
	cacheMaxEntries = 1 << 13
	cacheMinSets    = 24
)

type predKind uint8

const (
	cacheInAdversary predKind = iota
	cacheIsStrong
)

type cacheKey struct {
	kind predKind
	set  adversary.Set
}

type predCache struct {
	mu sync.Mutex
	m  map[cacheKey]bool
}

func newPredCache() *predCache {
	return &predCache{m: make(map[cacheKey]bool)}
}

func (c *predCache) lookup(kind predKind, set adversary.Set, eval func() bool) bool {
	k := cacheKey{kind: kind, set: set}
	c.mu.Lock()
	if v, ok := c.m[k]; ok {
		c.mu.Unlock()
		return v
	}
	c.mu.Unlock()
	// Evaluate outside the lock: enumeration may be slow and eval is
	// deterministic, so concurrent duplicate work is harmless.
	v := eval()
	c.mu.Lock()
	if len(c.m) >= cacheMaxEntries {
		c.m = make(map[cacheKey]bool, cacheMaxEntries/4)
	}
	c.m[k] = v
	c.mu.Unlock()
	return v
}

// CoinGate returns the additional readiness predicate a coin combiner
// must apply under the given backend, or nil when the sharing scheme's
// access structure is already the right condition. Symmetric trust
// needs no gate: the dealer's access formula is compatible with the
// shared structure by construction. Asymmetric trust gates coin
// completion on one of the observer's own quorums, so a party only
// accepts a coin value backed by parties it trusts collectively —
// shares from a set the observer considers wholly corruptible must not
// finish its coin.
func CoinGate(q Quorums, observer int) func(adversary.Set) bool {
	switch q.(type) {
	case nil, *Symmetric:
		return nil
	default:
		return func(s adversary.Set) bool { return q.IsQuorum(observer, s) }
	}
}
