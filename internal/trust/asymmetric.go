package trust

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"sintra/internal/adversary"
)

// FailProne is one party's fail-prone system: the monotone family of
// party sets this party believes may jointly fail, given either as a
// threshold (any set of at most Thresh parties) or as the family's
// maximal sets. Exactly one representation is active per value.
type FailProne struct {
	// Thresh >= 0 selects the threshold representation; -1 selects
	// MaxSets.
	Thresh int
	// MaxSets lists the maximal fail-prone sets (Thresh == -1 only).
	MaxSets []adversary.Set
}

// Threshold builds the fail-prone system "any t parties may fail".
func Threshold(t int) FailProne { return FailProne{Thresh: t} }

// General builds a fail-prone system from a generating family of sets;
// NewAsymmetric maximalizes it.
func General(sets ...adversary.Set) FailProne {
	return FailProne{Thresh: -1, MaxSets: sets}
}

// SystemFromStructure reuses a shared structure's adversary family as
// one party's fail-prone system.
func SystemFromStructure(st *adversary.Structure) (FailProne, error) {
	if st.IsThreshold() {
		return Threshold(st.Thresh), nil
	}
	sets, err := st.MaximalSets()
	if err != nil {
		return FailProne{}, err
	}
	return General(sets...), nil
}

// Asymmetric implements per-party trust: party i brings its own
// fail-prone system F_i, and its quorum system is the canonical one
// induced by it, Q_i = {Q : Q ⊇ P ∖ F for some F ∈ F_i}. The predicates
// answer from the observer's own system:
//
//   - IsQuorum(i, S): the complement of S lies in F_i, i.e. S contains
//     the complement of a maximal fail-prone set of i.
//   - HasHonest(i, S) = Blocks(i, S): S is not contained in any set of
//     F_i. For canonical quorum systems the kernel rule (intersect every
//     quorum of i) and the honest-witness rule are the same predicate.
//   - IsStrong(i, S) = IsQuorum(i, S): the delivery rule is a full
//     quorum of readys. Unlike the symmetric 2t+1 rule, a
//     strong-but-subquorum set gives the observer no cross-observer
//     intersection guarantee, and the B³ property below only makes
//     *quorums* of two wise parties intersect outside the actual
//     corruption set. Bracha delivery therefore waits for IsQuorum.
//
// Construction validates the B³ property of the collection {F_i} (the
// asymmetric analogue of Q³):
//
//	∀ i, j, ∀ A ∈ F_i, B ∈ F_j, C ∈ F_i ∩ F_j:  A ∪ B ∪ C ≠ P.
//
// B³ is exactly consistency of the induced canonical quorum systems
// (two wise parties' quorums intersect in a party neither considers
// faulty) and, taking i = j, implies each party's own Q³, which gives
// availability: the honest parties form a quorum for every wise party.
//
// Whether a party actually enjoys these guarantees depends on the run:
// given the set of really corrupted parties, a party whose fail-prone
// system anticipated it (the set lies in F_i) is wise and keeps safety
// and liveness; a naive party guessed wrong and may lose either — but,
// by B³ among the wise, can never drag wise parties into disagreement.
type Asymmetric struct {
	n       int
	systems []FailProne
	caches  []*predCache // per observer; nil entries for threshold systems
}

// NewAsymmetric builds and validates an asymmetric trust backend from
// one fail-prone system per party.
func NewAsymmetric(n int, systems []FailProne) (*Asymmetric, error) {
	if n < 1 || n > adversary.MaxParties {
		return nil, fmt.Errorf("trust: n=%d out of range [1,%d]", n, adversary.MaxParties)
	}
	if len(systems) != n {
		return nil, fmt.Errorf("trust: %d fail-prone systems for %d parties", len(systems), n)
	}
	a := &Asymmetric{n: n, systems: make([]FailProne, n), caches: make([]*predCache, n)}
	full := adversary.FullSet(n)
	for i, sys := range systems {
		if sys.Thresh >= 0 {
			if sys.Thresh >= n {
				return nil, fmt.Errorf("trust: party %d threshold %d >= n=%d", i, sys.Thresh, n)
			}
			a.systems[i] = FailProne{Thresh: sys.Thresh}
			continue
		}
		if len(sys.MaxSets) == 0 {
			return nil, fmt.Errorf("trust: party %d has an empty fail-prone system", i)
		}
		for _, s := range sys.MaxSets {
			if !s.SubsetOf(full) {
				return nil, fmt.Errorf("trust: party %d fail-prone set %v exceeds party range", i, s)
			}
			if s == full {
				return nil, fmt.Errorf("trust: party %d considers the full party set fail-prone", i)
			}
		}
		a.systems[i] = FailProne{Thresh: -1, MaxSets: maximalizeSets(sys.MaxSets)}
		if len(a.systems[i].MaxSets) >= cacheMinSets {
			a.caches[i] = newPredCache()
		}
	}
	if err := a.Validate(); err != nil {
		return nil, err
	}
	return a, nil
}

// maximalizeSets drops duplicates and sets contained in other sets of
// the family, processing larger sets first so one pass suffices.
func maximalizeSets(sets []adversary.Set) []adversary.Set {
	sorted := append([]adversary.Set(nil), sets...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Count() > sorted[j].Count() })
	var out []adversary.Set
	for _, c := range sorted {
		contained := false
		for _, m := range out {
			if c.SubsetOf(m) {
				contained = true
				break
			}
		}
		if !contained {
			out = append(out, c)
		}
	}
	return out
}

// N returns the number of parties.
func (a *Asymmetric) N() int { return a.n }

// System returns party i's fail-prone system (maximalized).
func (a *Asymmetric) System(i int) FailProne { return a.systems[i] }

func (a *Asymmetric) checkObserver(observer int) {
	if observer < 0 || observer >= a.n {
		panic(fmt.Sprintf("trust: observer %d out of range [0,%d)", observer, a.n))
	}
}

// inFailProne reports s ∈ F_observer.
func (a *Asymmetric) inFailProne(observer int, s adversary.Set) bool {
	sys := a.systems[observer]
	if sys.Thresh >= 0 {
		return s.Count() <= sys.Thresh
	}
	scan := func() bool {
		for _, m := range sys.MaxSets {
			if s.SubsetOf(m) {
				return true
			}
		}
		return false
	}
	if c := a.caches[observer]; c != nil {
		return c.lookup(cacheInAdversary, s, scan)
	}
	return scan()
}

// IsQuorum reports whether s is one of the observer's canonical quorums.
func (a *Asymmetric) IsQuorum(observer int, s adversary.Set) bool {
	a.checkObserver(observer)
	return a.inFailProne(observer, s.Complement(a.n))
}

// HasHonest reports whether the observer's assumption guarantees an
// honest member in s.
func (a *Asymmetric) HasHonest(observer int, s adversary.Set) bool {
	a.checkObserver(observer)
	return !a.inFailProne(observer, s)
}

// Blocks reports whether s intersects every quorum of the observer,
// i.e. contains one of the kernel sets of the observer's quorum system.
// For canonical systems this coincides with HasHonest: s meets every
// set P∖F exactly when s fits inside no F.
func (a *Asymmetric) Blocks(observer int, s adversary.Set) bool {
	a.checkObserver(observer)
	return !a.inFailProne(observer, s)
}

// IsStrong is the observer's delivery rule: a full quorum (see the type
// comment for why asymmetric delivery cannot use a weaker set).
func (a *Asymmetric) IsStrong(observer int, s adversary.Set) bool {
	return a.IsQuorum(observer, s)
}

// Wise reports whether party i's trust assumption covers the actual
// corruption set: corrupted ∈ F_i. Wise parties keep both safety and
// liveness; naive parties may lose either.
func (a *Asymmetric) Wise(i int, corrupted adversary.Set) bool {
	a.checkObserver(i)
	return a.inFailProne(i, corrupted)
}

// WiseSet returns the uncorrupted parties that are wise with respect to
// the given actual corruption set.
func (a *Asymmetric) WiseSet(corrupted adversary.Set) adversary.Set {
	var out adversary.Set
	for i := 0; i < a.n; i++ {
		if !corrupted.Has(i) && a.inFailProne(i, corrupted) {
			out = out.Add(i)
		}
	}
	return out
}

// NaiveSet returns the uncorrupted parties whose assumption the actual
// corruption set escapes.
func (a *Asymmetric) NaiveSet(corrupted adversary.Set) adversary.Set {
	return adversary.FullSet(a.n).Minus(corrupted).Minus(a.WiseSet(corrupted))
}

// Guild returns the maximal guild for the corruption set: the largest
// set G of wise parties such that every member of G has one of its own
// quorums inside G. A non-empty guild is the asymmetric liveness
// condition — guild members can drive protocols to completion among
// themselves. Computed as the greatest fixpoint of removing members
// without an internal quorum.
func (a *Asymmetric) Guild(corrupted adversary.Set) adversary.Set {
	g := a.WiseSet(corrupted)
	for changed := true; changed; {
		changed = false
		for _, i := range g.Members() {
			if !a.IsQuorum(i, g) {
				g = g.Remove(i)
				changed = true
			}
		}
	}
	return g
}

// maxFailProne materializes party i's maximal fail-prone sets,
// enumerating the threshold representation. Used only by validation.
func (a *Asymmetric) maxFailProne(i int) []adversary.Set {
	sys := a.systems[i]
	if sys.Thresh < 0 {
		return sys.MaxSets
	}
	return thresholdSets(a.n, sys.Thresh)
}

// thresholdSets enumerates all subsets of [0,n) with exactly t members.
func thresholdSets(n, t int) []adversary.Set {
	var out []adversary.Set
	var rec func(next int, left int, cur adversary.Set)
	rec = func(next, left int, cur adversary.Set) {
		if left == 0 {
			out = append(out, cur)
			return
		}
		if n-next < left {
			return
		}
		rec(next+1, left-1, cur.Add(next))
		rec(next+1, left, cur)
	}
	rec(0, t, 0)
	return out
}

// validateEnumerationBound mirrors the adversary package's limit on
// exhaustive set enumeration: threshold-only systems validate in closed
// form at any n, but as soon as a generalized system is present the
// pairwise check enumerates and n must stay small.
const maxValidateParties = 24

// Validate checks the B³ consistency/availability condition of the
// collection of fail-prone systems (see the type comment). Threshold ×
// threshold pairs use the closed form t_i + t_j + min(t_i,t_j) < n; any
// pair involving a generalized system is checked by enumeration.
func (a *Asymmetric) Validate() error {
	if a.n < 1 {
		return errors.New("trust: empty asymmetric system")
	}
	hasGeneral := false
	for _, sys := range a.systems {
		if sys.Thresh < 0 {
			hasGeneral = true
		}
	}
	if hasGeneral && a.n > maxValidateParties {
		return fmt.Errorf("trust: generalized asymmetric systems support 1..%d parties, got %d", maxValidateParties, a.n)
	}
	for i := 0; i < a.n; i++ {
		for j := i; j < a.n; j++ {
			if err := a.checkPairB3(i, j); err != nil {
				return err
			}
		}
	}
	return nil
}

// checkPairB3 verifies B³ for the pair (i, j): no A ∈ F_i, B ∈ F_j and
// C in both downward closures may cover the party set. Any such C is
// contained in some A' ∩ B' with A' ∈ F_i*, B' ∈ F_j*, so iterating C
// over those intersections is exhaustive.
func (a *Asymmetric) checkPairB3(i, j int) error {
	ti, tj := a.systems[i].Thresh, a.systems[j].Thresh
	if ti >= 0 && tj >= 0 {
		m := ti
		if tj < m {
			m = tj
		}
		if ti+tj+m >= a.n {
			return fmt.Errorf("trust: B³ violated for parties %d,%d: thresholds %d+%d+min=%d ≥ n=%d", i, j, ti, tj, ti+tj+m, a.n)
		}
		return nil
	}
	full := adversary.FullSet(a.n)
	fi, fj := a.maxFailProne(i), a.maxFailProne(j)
	// C candidates: maximal intersections of one set from each system.
	var inter []adversary.Set
	for _, x := range fi {
		for _, y := range fj {
			inter = append(inter, x.Intersect(y))
		}
	}
	inter = maximalizeSets(inter)
	for _, x := range fi {
		for _, y := range fj {
			xy := x.Union(y)
			if xy == full {
				return fmt.Errorf("trust: B³ violated for parties %d,%d: fail-prone sets %v ∪ %v cover all parties", i, j, x, y)
			}
			for _, c := range inter {
				if xy.Union(c) == full {
					return fmt.Errorf("trust: B³ violated for parties %d,%d: %v ∪ %v ∪ %v covers all parties", i, j, x, y, c)
				}
			}
		}
	}
	return nil
}

// CompatibleWithAccess checks that every party's canonical quorums are
// qualified under the dealer's secret-sharing access structure (given
// as its monotone predicate over party sets). Gated coins (CoinGate)
// complete for an observer exactly when a quorum's shares arrive, so an
// unqualified quorum would starve that observer even in fault-free
// runs. Access predicates are monotone, so checking the minimal
// canonical quorums — complements of the maximal fail-prone sets — is
// exhaustive.
func (a *Asymmetric) CompatibleWithAccess(qualified func(adversary.Set) bool) error {
	full := adversary.FullSet(a.n)
	for i := 0; i < a.n; i++ {
		for _, f := range a.maxFailProne(i) {
			if q := full.Minus(f); !qualified(q) {
				return fmt.Errorf("trust: party %d quorum %v is not qualified under the sharing access structure", i, q)
			}
		}
	}
	return nil
}

// String summarizes the backend.
func (a *Asymmetric) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "asymmetric(n=%d;", a.n)
	for i, sys := range a.systems {
		if i > 0 {
			b.WriteByte(',')
		}
		if sys.Thresh >= 0 {
			fmt.Fprintf(&b, "t=%d", sys.Thresh)
		} else {
			fmt.Fprintf(&b, "|F*|=%d", len(sys.MaxSets))
		}
	}
	b.WriteByte(')')
	return b.String()
}
