package trust

import (
	"math/rand"
	"testing"

	"sintra/internal/adversary"
)

// TestSymmetricMatchesStructure checks that the symmetric backend (with
// its cache engaged) answers exactly like the wrapped structure for
// every predicate, over every subset of a generalized structure and a
// threshold one.
func TestSymmetricMatchesStructure(t *testing.T) {
	structs := map[string]*adversary.Structure{
		"threshold": adversary.MustThreshold(7, 2),
		"general":   adversary.Example1(),
	}
	for name, st := range structs {
		q := NewSymmetric(st)
		n := st.N()
		if q.N() != n {
			t.Fatalf("%s: N=%d, want %d", name, q.N(), n)
		}
		total := uint64(1) << uint(n)
		// Two passes so the second pass reads every answer from the cache.
		for pass := 0; pass < 2; pass++ {
			for v := uint64(0); v < total; v++ {
				s := adversary.Set(v)
				for obs := 0; obs < n; obs++ {
					if got, want := q.IsQuorum(obs, s), st.IsQuorum(s); got != want {
						t.Fatalf("%s pass %d: IsQuorum(%d,%v)=%v, structure says %v", name, pass, obs, s, got, want)
					}
					if got, want := q.HasHonest(obs, s), st.HasHonest(s); got != want {
						t.Fatalf("%s pass %d: HasHonest(%d,%v)=%v, structure says %v", name, pass, obs, s, got, want)
					}
					if got, want := q.Blocks(obs, s), st.HasHonest(s); got != want {
						t.Fatalf("%s pass %d: Blocks(%d,%v)=%v, want HasHonest=%v", name, pass, obs, s, got, want)
					}
					if got, want := q.IsStrong(obs, s), st.IsStrong(s); got != want {
						t.Fatalf("%s pass %d: IsStrong(%d,%v)=%v, structure says %v", name, pass, obs, s, got, want)
					}
				}
			}
		}
		if err := q.Validate(); err != nil {
			t.Fatalf("%s: Validate: %v", name, err)
		}
	}
}

// TestSymmetricHybrid checks the hybrid (TB/TC) path, which bypasses
// the cache.
func TestSymmetricHybrid(t *testing.T) {
	st, err := adversary.NewHybridThreshold(7, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	q := NewSymmetric(st)
	total := uint64(1) << 7
	for v := uint64(0); v < total; v++ {
		s := adversary.Set(v)
		if q.IsQuorum(0, s) != st.IsQuorum(s) || q.IsStrong(0, s) != st.IsStrong(s) || q.HasHonest(0, s) != st.HasHonest(s) {
			t.Fatalf("hybrid mismatch on %v", s)
		}
	}
}

// bigFamilyStructure returns a generalized structure whose maximal-set
// family is large enough to engage the predicate cache (a weighted
// threshold over 16 parties, |A*| = 674).
func bigFamilyStructure(t testing.TB) *adversary.Structure {
	t.Helper()
	w := make([]int, 16)
	for i := range w {
		w[i] = 1 + i%4
	}
	st, err := adversary.NewWeightedThreshold(w, 9)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestPredCacheBounded fills the cache past its bound and checks answers
// stay correct after the wholesale reset.
func TestPredCacheBounded(t *testing.T) {
	st := bigFamilyStructure(t) // n=16: 65536 subsets > cacheMaxEntries
	q := NewSymmetric(st)
	if q.cache == nil {
		t.Fatalf("structure with %d maximal sets did not get a cache", len(st.MaxSets))
	}
	rnd := rand.New(rand.NewSource(1))
	for k := 0; k < 2*cacheMaxEntries; k++ {
		s := adversary.Set(rnd.Uint64() & ((1 << 16) - 1))
		if got, want := q.IsStrong(0, s), st.IsStrong(s); got != want {
			t.Fatalf("IsStrong(%v)=%v after cache churn, want %v", s, got, want)
		}
		if got, want := q.IsQuorum(0, s), st.IsQuorum(s); got != want {
			t.Fatalf("IsQuorum(%v)=%v after cache churn, want %v", s, got, want)
		}
	}
	if got := len(q.cache.m); got > cacheMaxEntries {
		t.Fatalf("cache grew to %d entries, bound is %d", got, cacheMaxEntries)
	}
}

// TestCacheEngagement checks which structures get the memo cache: only
// generalized families large enough that enumeration beats a map hit.
func TestCacheEngagement(t *testing.T) {
	if q := NewSymmetric(adversary.MustThreshold(4, 1)); q.cache != nil {
		t.Fatal("threshold structure got a cache")
	}
	if q := NewSymmetric(adversary.Example2()); q.cache != nil {
		t.Fatalf("small family (|A*|=%d) got a cache", len(adversary.Example2().MaxSets))
	}
	if q := NewSymmetric(adversary.Example1()); q.cache == nil {
		t.Fatalf("family of %d maximal sets skipped the cache", len(adversary.Example1().MaxSets))
	}
}

func TestCoinGate(t *testing.T) {
	sym := NewSymmetric(adversary.MustThreshold(4, 1))
	if CoinGate(sym, 0) != nil {
		t.Fatal("symmetric backend must not gate the coin")
	}
	if CoinGate(nil, 0) != nil {
		t.Fatal("nil backend must not gate the coin")
	}
	asym, err := NewAsymmetric(4, []FailProne{Threshold(1), Threshold(1), Threshold(1), Threshold(1)})
	if err != nil {
		t.Fatal(err)
	}
	gate := CoinGate(asym, 2)
	if gate == nil {
		t.Fatal("asymmetric backend must gate the coin")
	}
	quorum := adversary.Set(0).Add(0).Add(1).Add(2)
	if !gate(quorum) {
		t.Fatalf("gate rejected quorum %v", quorum)
	}
	if gate(adversary.Set(0).Add(0).Add(1)) {
		t.Fatal("gate accepted a sub-quorum")
	}
}
