package trust

import (
	"reflect"
	"strings"
	"testing"

	"sintra/internal/adversary"
)

func TestSpecBuildSymmetricDefault(t *testing.T) {
	st := adversary.MustThreshold(4, 1)
	for _, raw := range []string{`{}`, `{"mode":"symmetric"}`} {
		sp, err := ParseSpec([]byte(raw))
		if err != nil {
			t.Fatalf("%s: %v", raw, err)
		}
		q, err := sp.Build(st)
		if err != nil {
			t.Fatalf("%s: %v", raw, err)
		}
		if _, ok := q.(*Symmetric); !ok {
			t.Fatalf("%s built %T", raw, q)
		}
	}
}

func TestSpecBuildAsymmetric(t *testing.T) {
	st := adversary.MustThreshold(4, 1)
	raw := `{"mode":"asymmetric","parties":[{"thresh":1},{"thresh":1},{"thresh":1},{"sets":[[0,2]]}]}`
	sp, err := ParseSpec([]byte(raw))
	if err != nil {
		t.Fatal(err)
	}
	q, err := sp.Build(st)
	if err != nil {
		t.Fatal(err)
	}
	a, ok := q.(*Asymmetric)
	if !ok {
		t.Fatalf("built %T", q)
	}
	if !a.IsQuorum(3, set(1, 3)) {
		t.Fatal("decoded backend lost party 3's fail-prone set")
	}
}

func TestSpecRejections(t *testing.T) {
	st := adversary.MustThreshold(4, 1)
	cases := map[string]string{
		"unknown field":  `{"mode":"asymmetric","bogus":1}`,
		"trailing data":  `{} {}`,
		"unknown mode":   `{"mode":"diagonal"}`,
		"symmetric+sets": `{"mode":"symmetric","parties":[{"thresh":1}]}`,
		"party count":    `{"mode":"asymmetric","parties":[{"thresh":1}]}`,
		"both reps":      `{"mode":"asymmetric","parties":[{"thresh":1,"sets":[[0]]},{"thresh":1},{"thresh":1},{"thresh":1}]}`,
		"neither rep":    `{"mode":"asymmetric","parties":[{},{"thresh":1},{"thresh":1},{"thresh":1}]}`,
		"thresh range":   `{"mode":"asymmetric","parties":[{"thresh":4},{"thresh":1},{"thresh":1},{"thresh":1}]}`,
		"member range":   `{"mode":"asymmetric","parties":[{"sets":[[7]]},{"thresh":1},{"thresh":1},{"thresh":1}]}`,
		"violates B3":    `{"mode":"asymmetric","parties":[{"thresh":2},{"thresh":2},{"thresh":2},{"thresh":2}]}`,
		"not valid json": `{"mode"`,
	}
	for name, raw := range cases {
		sp, err := ParseSpec([]byte(raw))
		if err != nil {
			continue // rejected at decode time: fine
		}
		if _, err := sp.Build(st); err == nil {
			t.Fatalf("%s: spec %s accepted", name, raw)
		}
	}
}

func TestSpecRoundTrip(t *testing.T) {
	raw := `{"mode":"asymmetric","parties":[{"thresh":1},{"thresh":1},{"thresh":1},{"sets":[[0,2]]}]}`
	sp, err := ParseSpec([]byte(raw))
	if err != nil {
		t.Fatal(err)
	}
	enc, err := sp.Encode()
	if err != nil {
		t.Fatal(err)
	}
	sp2, err := ParseSpec(enc)
	if err != nil {
		t.Fatalf("re-parse of %s: %v", enc, err)
	}
	if !reflect.DeepEqual(sp, sp2) {
		t.Fatalf("round trip changed the spec: %+v vs %+v", sp, sp2)
	}
}

// FuzzSpecDecode checks the decode path never panics, and that any spec
// that decodes and builds survives an encode/decode round trip to an
// equivalent backend.
func FuzzSpecDecode(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"mode":"symmetric"}`))
	f.Add([]byte(`{"mode":"asymmetric","parties":[{"thresh":1},{"thresh":1},{"thresh":1},{"sets":[[0,2]]}]}`))
	f.Add([]byte(`{"mode":"asymmetric","parties":[{"sets":[[0],[1]]},{"thresh":0},{"thresh":0},{"thresh":0}]}`))
	f.Add([]byte(`{"mode":"asymmetric","bogus":true}`))
	f.Add([]byte(`[1,2,3]`))
	st := adversary.MustThreshold(4, 1)
	f.Fuzz(func(t *testing.T, data []byte) {
		sp, err := ParseSpec(data)
		if err != nil {
			return
		}
		q, err := sp.Build(st)
		if err != nil {
			if err.Error() == "" {
				t.Fatal("empty build error")
			}
			return
		}
		enc, err := sp.Encode()
		if err != nil {
			t.Fatalf("valid spec failed to encode: %v", err)
		}
		sp2, err := ParseSpec(enc)
		if err != nil {
			t.Fatalf("encoded spec %s failed to parse: %v", enc, err)
		}
		q2, err := sp2.Build(st)
		if err != nil {
			t.Fatalf("round-tripped spec %s failed to build: %v", enc, err)
		}
		if !strings.EqualFold(kind(q), kind(q2)) {
			t.Fatalf("round trip changed backend: %s vs %s", kind(q), kind(q2))
		}
		for v := adversary.Set(0); v < 1<<4; v++ {
			for obs := 0; obs < 4; obs++ {
				if q.IsQuorum(obs, v) != q2.IsQuorum(obs, v) || q.HasHonest(obs, v) != q2.HasHonest(obs, v) {
					t.Fatalf("round trip changed predicates at observer %d set %v", obs, v)
				}
			}
		}
	})
}

func kind(q Quorums) string {
	switch q.(type) {
	case *Symmetric:
		return "symmetric"
	case *Asymmetric:
		return "asymmetric"
	default:
		return "unknown"
	}
}
