package trust

import (
	"math/rand"
	"testing"

	"sintra/internal/adversary"
)

// BenchmarkQuorumPredicates compares the per-message cost of the quorum
// predicates across backends: threshold (O(1) popcount), generalized
// uncached (maximal-set enumeration, what every message paid before the
// memo cache), generalized through the symmetric backend's cache, and
// asymmetric per-party systems. The party sets cycle through a fixed
// sample so the cached rows measure steady-state hits, as in a running
// protocol instance re-counting the same echo/ready sets.
func BenchmarkQuorumPredicates(b *testing.B) {
	const n = 16
	rnd := rand.New(rand.NewSource(42))
	sample := make([]adversary.Set, 256)
	for i := range sample {
		sample[i] = adversary.Set(rnd.Uint64() & ((1 << n) - 1))
	}
	run := func(b *testing.B, isQuorum func(s adversary.Set) bool, isStrong func(s adversary.Set) bool) {
		b.ReportAllocs()
		sink := false
		for i := 0; i < b.N; i++ {
			s := sample[i%len(sample)]
			sink = isQuorum(s) != isStrong(s)
		}
		_ = sink
	}

	threshold := adversary.MustThreshold(n, 5)
	b.Run("threshold", func(b *testing.B) {
		run(b, threshold.IsQuorum, threshold.IsStrong)
	})

	// Small family (the paper's Example 2, |A*| = 16): enumeration is
	// cheap and the backend deliberately skips the cache.
	general := adversary.Example2()
	b.Run("general-small", func(b *testing.B) {
		run(b, general.IsQuorum, general.IsStrong)
	})

	// Large family (674 maximal sets): first uncached — the cost every
	// message paid before memoization — then through the cache.
	big := bigFamilyStructure(b)
	b.Run("general-big-uncached", func(b *testing.B) {
		run(b, big.IsQuorum, big.IsStrong)
	})
	cached := NewSymmetric(big)
	b.Run("general-big-cached", func(b *testing.B) {
		run(b,
			func(s adversary.Set) bool { return cached.IsQuorum(0, s) },
			func(s adversary.Set) bool { return cached.IsStrong(0, s) })
	})

	sys, err := SystemFromStructure(general)
	if err != nil {
		b.Fatal(err)
	}
	systems := make([]FailProne, n)
	for i := range systems {
		systems[i] = sys
	}
	asym, err := NewAsymmetric(n, systems)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("asymmetric", func(b *testing.B) {
		run(b,
			func(s adversary.Set) bool { return asym.IsQuorum(3, s) },
			func(s adversary.Set) bool { return asym.IsStrong(3, s) })
	})
}
