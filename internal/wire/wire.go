// Package wire defines the message envelope exchanged between parties and
// the codec used by both the in-process simulator (internal/netsim) and the
// TCP transport (internal/transport).
//
// Envelopes are routed by (Protocol, Instance): every protocol execution —
// one reliable broadcast, one binary agreement, one atomic broadcast round —
// has a unique instance tag, so a single pair of channels multiplexes the
// entire stack, exactly as the paper's modular protocol architecture
// prescribes (§3).
package wire

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sync"
)

// Message is the envelope routed between parties. Payload bytes must be
// treated as immutable once sent.
type Message struct {
	// From is the sender's party index (or a client index >= n).
	From int
	// To is the destination party index.
	To int
	// Protocol names the protocol layer, e.g. "rbc", "aba", "abc".
	Protocol string
	// Instance identifies one execution of the protocol.
	Instance string
	// Type is the message kind within the protocol, e.g. "ECHO".
	Type string
	// Payload is the gob-encoded protocol-specific body.
	Payload []byte
}

// Size returns the approximate wire size of the message in bytes, used by
// the simulator's traffic metrics.
func (m *Message) Size() int {
	return 16 + len(m.Protocol) + len(m.Instance) + len(m.Type) + len(m.Payload)
}

// String renders a compact description for logs and tests.
func (m *Message) String() string {
	return fmt.Sprintf("%s/%s %s %d→%d (%dB)", m.Protocol, m.Instance, m.Type, m.From, m.To, len(m.Payload))
}

// Transport moves envelopes for one local party. Implementations are the
// simulator endpoint and the TCP transport.
type Transport interface {
	// Self returns the local party index.
	Self() int
	// N returns the number of servers (clients have indices >= N).
	N() int
	// Send enqueues a message for asynchronous delivery.
	Send(msg Message)
	// Recv blocks for the next inbound message; ok is false after Close.
	Recv() (msg Message, ok bool)
	// Close shuts the transport down and unblocks Recv.
	Close() error
}

// encodeBufs recycles the scratch buffers behind MarshalBody. Gob grows its
// output incrementally, so a fresh bytes.Buffer per body pays one allocation
// per doubling; reusing a grown buffer makes the steady state a single
// exact-size copy. Buffers that ballooned on an outlier body are dropped
// rather than pinned in the pool.
var encodeBufs = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// maxPooledBuf bounds the capacity of buffers returned to encodeBufs.
const maxPooledBuf = 1 << 20

// MarshalBody gob-encodes a protocol message body. The returned slice is
// freshly allocated and owned by the caller.
func MarshalBody(v any) ([]byte, error) {
	buf := encodeBufs.Get().(*bytes.Buffer)
	buf.Reset()
	err := gob.NewEncoder(buf).Encode(v)
	if err != nil {
		encodeBufs.Put(buf)
		return nil, fmt.Errorf("wire: marshal body: %w", err)
	}
	out := make([]byte, buf.Len())
	copy(out, buf.Bytes())
	if buf.Cap() <= maxPooledBuf {
		encodeBufs.Put(buf)
	}
	return out, nil
}

// MustMarshalBody is MarshalBody for bodies that cannot fail (fixed
// struct types); it panics on the programming error of an unencodable type.
func MustMarshalBody(v any) []byte {
	b, err := MarshalBody(v)
	if err != nil {
		panic(err)
	}
	return b
}

// UnmarshalBody decodes a body produced by MarshalBody. The input is
// attacker-controlled — a corrupted party chooses every payload byte — so
// decoding failures, including any panic inside the gob decoder, surface
// as errors and must never take down the replica.
func UnmarshalBody(data []byte, v any) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("wire: unmarshal body: decoder panic: %v", p)
		}
	}()
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(v); err != nil {
		return fmt.Errorf("wire: unmarshal body: %w", err)
	}
	return nil
}

// EncodeMessage encodes a full envelope into one transport frame.
func EncodeMessage(m *Message) ([]byte, error) {
	return MarshalBody(m)
}

// DecodeMessage decodes a transport frame produced by EncodeMessage. Like
// UnmarshalBody it is safe on arbitrary attacker-supplied bytes.
func DecodeMessage(data []byte) (Message, error) {
	var m Message
	err := UnmarshalBody(data, &m)
	return m, err
}
