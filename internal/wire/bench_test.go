package wire_test

import (
	"bytes"
	"testing"

	"sintra/internal/wire"
)

// shareBurst mirrors the shape of a coin/decryption share exchange body:
// a round tag plus a handful of group-element-sized byte strings.
type shareBurst struct {
	Round  int
	Shares [][]byte
}

func benchBody() *shareBurst {
	b := &shareBurst{Round: 7}
	for i := 0; i < 4; i++ {
		b.Shares = append(b.Shares, bytes.Repeat([]byte{byte(i + 1)}, 128))
	}
	return b
}

// BenchmarkMarshalBody tracks the allocation cost of body encoding on the
// hot send path; the pooled scratch buffer should keep allocs/op flat as
// bodies grow.
func BenchmarkMarshalBody(b *testing.B) {
	body := benchBody()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := wire.MarshalBody(body); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEncodeMessage covers the full envelope path the transport uses
// per outbound frame.
func BenchmarkEncodeMessage(b *testing.B) {
	m := &wire.Message{
		From:     2,
		To:       5,
		Protocol: "scabc",
		Instance: "epoch-1",
		Type:     "SHARES",
		Payload:  wire.MustMarshalBody(benchBody()),
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := wire.EncodeMessage(m); err != nil {
			b.Fatal(err)
		}
	}
}
