package wire_test

import (
	"strings"
	"testing"
	"testing/quick"

	"sintra/internal/wire"
)

func TestMarshalRoundTrip(t *testing.T) {
	type body struct {
		A int64
		B []byte
		C string
	}
	f := func(a int64, b []byte, c string) bool {
		data, err := wire.MarshalBody(body{A: a, B: b, C: c})
		if err != nil {
			return false
		}
		var out body
		if err := wire.UnmarshalBody(data, &out); err != nil {
			return false
		}
		return out.A == a && string(out.B) == string(b) && out.C == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMarshalErrors(t *testing.T) {
	if _, err := wire.MarshalBody(make(chan int)); err == nil {
		t.Fatal("channel marshalled")
	}
	var out struct{ X int }
	if err := wire.UnmarshalBody([]byte{0xFF, 0x01}, &out); err == nil {
		t.Fatal("garbage unmarshalled")
	}
}

func TestMustMarshalPanicsOnBadBody(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	wire.MustMarshalBody(make(chan int))
}

func TestMessageSizeAndString(t *testing.T) {
	m := wire.Message{
		From: 1, To: 2, Protocol: "aba", Instance: "svc/r1", Type: "BVAL",
		Payload: []byte{1, 2, 3},
	}
	if m.Size() <= len(m.Payload) {
		t.Fatal("Size ignores headers")
	}
	s := m.String()
	for _, part := range []string{"aba", "svc/r1", "BVAL", "1→2", "3B"} {
		if !strings.Contains(s, part) {
			t.Fatalf("String %q missing %q", s, part)
		}
	}
}
