package wire_test

import (
	"bytes"
	"encoding/binary"
	"sync"
	"testing"
	"time"

	"sintra/internal/adversary"
	"sintra/internal/engine"
	"sintra/internal/netsim"
	"sintra/internal/rbc"
	"sintra/internal/wire"
)

// recordingScheduler wraps a fair scheduler and snapshots every delivered
// envelope, so the fuzz corpus is seeded with real protocol traffic instead
// of hand-written bytes.
type recordingScheduler struct {
	inner netsim.Scheduler

	mu       sync.Mutex
	messages []wire.Message
}

func (s *recordingScheduler) Next(pending []wire.Message) int {
	idx := s.inner.Next(pending)
	if idx >= 0 && idx < len(pending) {
		s.mu.Lock()
		s.messages = append(s.messages, pending[idx])
		s.mu.Unlock()
	}
	return idx
}

func (s *recordingScheduler) recorded() []wire.Message {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]wire.Message(nil), s.messages...)
}

// liveTraffic runs a real four-party reliable broadcast on the simulator
// and returns every envelope the network delivered — SEND, ECHO, and READY
// messages with genuine gob payloads.
func liveTraffic(tb testing.TB) []wire.Message {
	tb.Helper()
	const n = 4
	st, err := adversary.NewThreshold(n, 1)
	if err != nil {
		tb.Fatal(err)
	}
	rec := &recordingScheduler{inner: netsim.NewRandomScheduler(42)}
	nw := netsim.New(n, 0, rec)
	defer nw.Stop()

	delivered := make(chan struct{}, n)
	instance := rbc.InstanceID(0, "fuzz-seed")
	routers := make([]*engine.Router, n)
	rbcs := make([]*rbc.RBC, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		r := engine.NewRouter(nw.Endpoint(i))
		routers[i] = r
		rbcs[i] = rbc.New(rbc.Config{
			Router:   r,
			Struct:   st,
			Instance: instance,
			Sender:   0,
			Deliver:  func([]byte) { delivered <- struct{}{} },
		})
		wg.Add(1)
		go func() {
			defer wg.Done()
			r.Run()
		}()
	}
	routers[0].DoSync(func() {
		if err := rbcs[0].Start([]byte("fuzz corpus payload")); err != nil {
			tb.Error(err)
		}
	})
	for i := 0; i < n; i++ {
		select {
		case <-delivered:
		case <-time.After(30 * time.Second):
			tb.Fatal("seed broadcast did not deliver")
		}
	}
	nw.Stop()
	wg.Wait()
	return rec.recorded()
}

// seedLimit caps the corpus so the seed phase stays fast; live traffic is
// deduplicated by message type first so every shape is represented.
const seedLimit = 64

// coalesced concatenates frames in the transport's coalesced-write shape:
// each frame preceded by its 4-byte big-endian length, several frames per
// blob. The decoders see exactly this byte layout if a buggy or Byzantine
// peer hands a whole burst where one frame is expected.
func coalesced(frames ...[]byte) []byte {
	var out []byte
	for _, fr := range frames {
		var lb [4]byte
		binary.BigEndian.PutUint32(lb[:], uint32(len(fr)))
		out = append(out, lb[:]...)
		out = append(out, fr...)
	}
	return out
}

// burstSeeds builds coalesced multi-frame blobs from live traffic: pairs
// and triples of real envelope frames, plus a burst with a truncated tail.
func burstSeeds(tb testing.TB, msgs []wire.Message) [][]byte {
	var frames [][]byte
	for i := range msgs {
		fr, err := wire.EncodeMessage(&msgs[i])
		if err != nil {
			tb.Fatal(err)
		}
		frames = append(frames, fr)
		if len(frames) == 3 {
			break
		}
	}
	if len(frames) < 3 {
		tb.Fatal("not enough live traffic for burst seeds")
	}
	pair := coalesced(frames[0], frames[1])
	triple := coalesced(frames[0], frames[1], frames[2])
	return [][]byte{pair, triple, triple[:len(triple)-len(frames[2])/2]}
}

func uniqueByType(msgs []wire.Message) []wire.Message {
	seen := map[string]int{}
	var out []wire.Message
	for _, m := range msgs {
		key := m.Protocol + "/" + m.Type
		if seen[key] >= seedLimit/8 {
			continue
		}
		seen[key]++
		out = append(out, m)
		if len(out) == seedLimit {
			break
		}
	}
	return out
}

// FuzzUnmarshalBody feeds arbitrary bytes to the body decoder through the
// same concrete target shapes the protocol stack uses. The decoder must
// never panic — a corrupted party chooses these bytes.
func FuzzUnmarshalBody(f *testing.F) {
	traffic := liveTraffic(f)
	for _, m := range uniqueByType(traffic) {
		f.Add(m.Payload)
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0x00, 0xff})
	f.Add(wire.MustMarshalBody(struct{ Payload []byte }{Payload: []byte("x")}))
	for _, blob := range burstSeeds(f, traffic) {
		f.Add(blob)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var full struct {
			Payload []byte
		}
		var digest struct {
			Digest [32]byte
		}
		var nested struct {
			Round int
			Votes map[int][]byte
		}
		// Each decode either succeeds or errors; panics fail the fuzz run.
		if wire.UnmarshalBody(data, &full) == nil {
			if _, err := wire.MarshalBody(&full); err != nil {
				t.Fatalf("re-marshal of decoded body failed: %v", err)
			}
		}
		_ = wire.UnmarshalBody(data, &digest)
		_ = wire.UnmarshalBody(data, &nested)
	})
}

// FuzzMessageDecode feeds arbitrary bytes to the transport frame decoder.
// Valid frames must round-trip exactly; everything else must error without
// panicking.
func FuzzMessageDecode(f *testing.F) {
	traffic := liveTraffic(f)
	for _, m := range uniqueByType(traffic) {
		m := m
		frame, err := wire.EncodeMessage(&m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame)
	}
	f.Add([]byte{})
	f.Add([]byte{0x01})
	for _, blob := range burstSeeds(f, traffic) {
		f.Add(blob)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := wire.DecodeMessage(data)
		if err != nil {
			return
		}
		frame, err := wire.EncodeMessage(&m)
		if err != nil {
			t.Fatalf("re-encode of decoded frame failed: %v", err)
		}
		m2, err := wire.DecodeMessage(frame)
		if err != nil {
			t.Fatalf("decode of re-encoded frame failed: %v", err)
		}
		if m2.From != m.From || m2.To != m.To || m2.Protocol != m.Protocol ||
			m2.Instance != m.Instance || m2.Type != m.Type || !bytes.Equal(m2.Payload, m.Payload) {
			t.Fatalf("round-trip changed the message: %s != %s", m2.String(), m.String())
		}
	})
}

// TestUnmarshalBodyRecoversDecoderPanic pins the panic guard: a crafted
// prefix that drives the gob decoder into a panic must surface as an error.
func TestUnmarshalBodyRecoversDecoderPanic(t *testing.T) {
	// Deeply malformed type descriptors are the classic gob panic vector;
	// whether this exact input panics or errors depends on the Go version,
	// but either way UnmarshalBody must return an error, not crash.
	inputs := [][]byte{
		{0x0f, 0xff, 0x87, 0x01, 0x04, 0x01, 0xff},
		{0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80},
	}
	for _, in := range inputs {
		var v struct{ X int }
		if err := wire.UnmarshalBody(in, &v); err == nil {
			t.Fatalf("garbage %x decoded successfully", in)
		}
	}
}
