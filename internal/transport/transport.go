// Package transport implements the real network transport: length-prefixed
// frames over TCP with per-link HMAC-SHA256 authentication, used to run a
// SINTRA deployment as separate processes (one per server) on one box or
// across machines.
//
// The paper's model assumes authenticated asynchronous point-to-point
// channels between servers (§2); the dealer's pairwise link keys provide
// the authentication. Server-to-server connections are mutually
// authenticated with a nonce handshake and per-frame MACs; client
// connections are unauthenticated at the transport layer — clients are
// untrusted in the model, and all client-visible guarantees come from the
// threshold cryptography above.
//
// Each direction uses its own connection (the dialer only writes, the
// acceptor only reads), which keeps reconnect logic trivial: a failed
// outbound connection is redialed with backoff on the next send.
package transport

import (
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"sintra/internal/obs"
	"sintra/internal/wire"
)

// maxFrame bounds a single frame; larger frames indicate corruption.
const maxFrame = 64 << 20

// redialBase is the initial pause between outbound connection attempts;
// redialMax caps the exponential growth. Both are variables so tests can
// compress time.
var (
	redialBase = 200 * time.Millisecond
	redialMax  = 5 * time.Second
)

// dialAttempts bounds how many times a send retries establishing a
// connection before dropping the message (the asynchronous model allows
// message loss to crashed peers; protocols retransmit by design).
const dialAttempts = 25

// defaultGiveUpAfter is how many consecutive failed dials at the
// backoff ceiling mark a peer as unreachable (Config.GiveUpAfter
// overrides).
const defaultGiveUpAfter = 5

// maxCoalesce caps how many queued messages one flush drains. A slow link
// accumulates a backlog while a write is in flight; draining it in one
// syscall amortizes the per-write cost, but an unbounded drain could pin an
// arbitrarily large assembly buffer, so bursts beyond the cap simply take
// another flush.
const maxCoalesce = 128

// maxPooledWriteBuf bounds the capacity of write buffers returned to
// writeBufs; outlier bursts fall back to the garbage collector.
const maxPooledWriteBuf = 1 << 20

// writeBufs recycles the per-flush frame assembly buffers across all links.
var writeBufs = sync.Pool{New: func() any { return new([]byte) }}

func getWriteBuf() *[]byte { return writeBufs.Get().(*[]byte) }

func putWriteBuf(b *[]byte) {
	if cap(*b) > maxPooledWriteBuf {
		return
	}
	*b = (*b)[:0]
	writeBufs.Put(b)
}

// redialBackoff returns the un-jittered backoff before redial attempt n
// (n >= 1): the base doubled per consecutive failure, capped at
// redialMax. Reaching the cap is also the give-up detector's signal
// that the peer has been down well past transient-blip territory.
func redialBackoff(attempt int) time.Duration {
	d := redialBase
	for i := 1; i < attempt && d < redialMax; i++ {
		d *= 2
	}
	if d > redialMax {
		d = redialMax
	}
	return d
}

// redialDelay returns the pause before redial attempt n (n >= 1):
// redialBackoff jittered into [d/2, d) so redialers across parties
// desynchronize. The jitter is a hash of (attempt, self, dest) rather
// than a random draw, keeping runs reproducible.
func redialDelay(attempt, self, dest int) time.Duration {
	d := redialBackoff(attempt)
	h := uint64(attempt)*0x9e3779b97f4a7c15 + uint64(self)*0xbf58476d1ce4e5b9 + uint64(dest)*0x94d049bb133111eb
	half := uint64(d / 2)
	if half == 0 {
		return d
	}
	return time.Duration(half + h%half)
}

// helloMagic starts every connection.
const helloMagic = "sintra1"

// hello is the first frame of a connection.
type hello struct {
	Magic string
	From  int
	Nonce []byte
	MAC   []byte // HMAC(linkKey, magic|from|to|nonce); empty for clients
}

// Config configures a transport endpoint.
type Config struct {
	// Self is this endpoint's index: 0..N-1 for servers, >= N for clients.
	Self int
	// N is the number of servers.
	N int
	// Addrs holds the listen addresses of all servers (length N).
	Addrs []string
	// ListenAddr is this server's bind address (servers only).
	ListenAddr string
	// LinkKeys[j] authenticates the link to server j (servers only).
	LinkKeys [][]byte
	// GiveUpAfter reports a peer as unreachable once this many
	// consecutive dials have failed *after* the redial backoff reached
	// its ceiling — i.e. the link has been down long past transient-blip
	// territory. Zero selects the default (5); negative disables the
	// report. Backoff itself never stops: the peer keeps being probed
	// and the streak resets on the first successful dial.
	GiveUpAfter int
	// OnPeerUnreachable, when set, is called (once per outage, from a
	// fresh goroutine) when a peer crosses the GiveUpAfter threshold,
	// with the peer index and the consecutive-failure count so far.
	// Operators hook alerting here; the "transport.redial.giveup"
	// counter records the same events.
	OnPeerUnreachable func(peer, failures int)
}

// Transport is a TCP implementation of wire.Transport.
type Transport struct {
	cfg Config

	listener net.Listener

	mu       sync.Mutex
	writers  map[int]*peerWriter // outbound connections by destination
	clients  map[int]*peerWriter // reply channels to connected clients
	accepted map[net.Conn]bool   // inbound connections, closed on shutdown

	inbox  chan wire.Message
	closed chan struct{}
	once   sync.Once
	wg     sync.WaitGroup

	mx *transportMetrics // nil when observability is off
}

// transportMetrics holds the TCP transport's instruments: per-protocol
// sent/received messages and bytes, outbound queue depth, and drops after
// exhausted redials.
type transportMetrics struct {
	sentMsgs   *obs.CounterVec
	sentBytes  *obs.CounterVec
	recvMsgs   *obs.CounterVec
	recvBytes  *obs.CounterVec
	queueDepth *obs.Gauge
	dropped    *obs.Counter
	redials    *obs.Counter
	giveups    *obs.Counter
	flushes    *obs.Counter
}

// SetObserver reports the transport's traffic through reg: counters
// "transport.sent.msgs.<protocol>" (and .bytes, and the recv twins),
// "transport.dropped", "transport.redials", "transport.flushes" (one per
// coalesced write, so sent.msgs/flushes is the mean batch per syscall), and
// the gauge "transport.queue.depth" summing all outbound queues. Call
// before the first Send; a nil registry turns observability off.
func (t *Transport) SetObserver(reg *obs.Registry) {
	if reg == nil {
		t.mx = nil
		return
	}
	t.mx = &transportMetrics{
		sentMsgs:   reg.CounterVec("transport.sent.msgs"),
		sentBytes:  reg.CounterVec("transport.sent.bytes"),
		recvMsgs:   reg.CounterVec("transport.recv.msgs"),
		recvBytes:  reg.CounterVec("transport.recv.bytes"),
		queueDepth: reg.Gauge("transport.queue.depth"),
		dropped:    reg.Counter("transport.dropped"),
		redials:    reg.Counter("transport.redials"),
		giveups:    reg.Counter("transport.redial.giveup"),
		flushes:    reg.Counter("transport.flushes"),
	}
}

// countSent/countRecv record one message (nil-safe).
func (m *transportMetrics) countSent(msg *wire.Message) {
	if m != nil {
		m.sentMsgs.With(msg.Protocol).Inc()
		m.sentBytes.With(msg.Protocol).Add(int64(msg.Size()))
	}
}

func (m *transportMetrics) countRecv(msg *wire.Message) {
	if m != nil {
		m.recvMsgs.With(msg.Protocol).Inc()
		m.recvBytes.With(msg.Protocol).Add(int64(msg.Size()))
	}
}

func (m *transportMetrics) queueAdd(d int64) {
	if m != nil {
		m.queueDepth.Add(d)
	}
}

func (m *transportMetrics) drop() {
	if m != nil {
		m.dropped.Inc()
	}
}

func (m *transportMetrics) redial() {
	if m != nil {
		m.redials.Inc()
	}
}

func (m *transportMetrics) giveup() {
	if m != nil {
		m.giveups.Inc()
	}
}

func (m *transportMetrics) flush() {
	if m != nil {
		m.flushes.Inc()
	}
}

var _ wire.Transport = (*Transport)(nil)

// NewServer starts a server endpoint: it listens on cfg.ListenAddr and
// lazily dials peers on first send.
func NewServer(cfg Config) (*Transport, error) {
	if cfg.Self < 0 || cfg.Self >= cfg.N {
		return nil, fmt.Errorf("transport: server index %d out of range", cfg.Self)
	}
	if len(cfg.Addrs) != cfg.N || len(cfg.LinkKeys) != cfg.N {
		return nil, errors.New("transport: need addresses and link keys for every server")
	}
	ln, err := net.Listen("tcp", cfg.ListenAddr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen: %w", err)
	}
	t := newTransport(cfg)
	t.listener = ln
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// NewClient starts a client endpoint with the given id (>= N). It holds no
// listener; servers reply over the client's own connections.
func NewClient(cfg Config) (*Transport, error) {
	if cfg.Self < cfg.N {
		return nil, fmt.Errorf("transport: client index %d must be >= n=%d", cfg.Self, cfg.N)
	}
	if len(cfg.Addrs) != cfg.N {
		return nil, errors.New("transport: need addresses for every server")
	}
	return newTransport(cfg), nil
}

func newTransport(cfg Config) *Transport {
	return &Transport{
		cfg:      cfg,
		writers:  make(map[int]*peerWriter),
		clients:  make(map[int]*peerWriter),
		accepted: make(map[net.Conn]bool),
		inbox:    make(chan wire.Message, 1024),
		closed:   make(chan struct{}),
	}
}

// Self returns the endpoint index.
func (t *Transport) Self() int { return t.cfg.Self }

// N returns the number of servers.
func (t *Transport) N() int { return t.cfg.N }

// Addr returns the actual listen address (servers only).
func (t *Transport) Addr() string {
	if t.listener == nil {
		return ""
	}
	return t.listener.Addr().String()
}

// Close shuts the endpoint down.
func (t *Transport) Close() error {
	t.once.Do(func() {
		close(t.closed)
		if t.listener != nil {
			t.listener.Close()
		}
		t.mu.Lock()
		for _, w := range t.writers {
			w.close()
		}
		for _, w := range t.clients {
			w.close()
		}
		for conn := range t.accepted {
			conn.Close()
		}
		t.mu.Unlock()
	})
	t.wg.Wait()
	return nil
}

// Recv blocks for the next inbound message.
func (t *Transport) Recv() (wire.Message, bool) {
	select {
	case m := <-t.inbox:
		return m, true
	case <-t.closed:
		// Drain anything already queued.
		select {
		case m := <-t.inbox:
			return m, true
		default:
			return wire.Message{}, false
		}
	}
}

// Send enqueues a message. Messages to unreachable peers are dropped after
// bounded retries (asynchronous model: protocols tolerate loss to faulty
// peers).
func (t *Transport) Send(m wire.Message) {
	m.From = t.cfg.Self
	t.mx.countSent(&m)
	if m.To == t.cfg.Self {
		// Loopback without touching the network.
		select {
		case t.inbox <- m:
		case <-t.closed:
		}
		return
	}
	w := t.writerFor(m.To)
	if w == nil {
		return
	}
	w.enqueue(m)
}

// writerFor returns (creating if needed) the outbound writer to dest.
func (t *Transport) writerFor(dest int) *peerWriter {
	t.mu.Lock()
	defer t.mu.Unlock()
	select {
	case <-t.closed:
		return nil
	default:
	}
	if dest >= t.cfg.N {
		// Reply to a client over its own connection, if still present.
		return t.clients[dest]
	}
	if w, ok := t.writers[dest]; ok {
		return w
	}
	w := newPeerWriter(t, dest)
	t.writers[dest] = w
	t.wg.Add(1)
	go func() {
		defer t.wg.Done()
		w.run()
	}()
	return w
}

// acceptLoop receives inbound connections.
func (t *Transport) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.listener.Accept()
		if err != nil {
			return
		}
		t.wg.Add(1)
		go func() {
			defer t.wg.Done()
			t.serveConn(conn)
		}()
	}
}

// serveConn authenticates a peer and pumps its frames into the inbox.
func (t *Transport) serveConn(conn net.Conn) {
	t.mu.Lock()
	select {
	case <-t.closed:
		t.mu.Unlock()
		conn.Close()
		return
	default:
	}
	t.accepted[conn] = true
	t.mu.Unlock()
	defer func() {
		t.mu.Lock()
		delete(t.accepted, conn)
		t.mu.Unlock()
		conn.Close()
	}()
	raw, err := readFrame(conn)
	if err != nil {
		return
	}
	var h hello
	if wire.UnmarshalBody(raw, &h) != nil || h.Magic != helloMagic {
		return
	}
	var session []byte
	switch {
	case h.From >= 0 && h.From < t.cfg.N:
		// Server peer: verify the hello MAC under the shared link key.
		key := t.cfg.LinkKeys[h.From]
		if len(key) == 0 || !hmac.Equal(h.MAC, helloMAC(key, h.From, t.cfg.Self, h.Nonce)) {
			return
		}
		session = sessionKey(key, h.Nonce)
	case h.From >= t.cfg.N:
		// Client: unauthenticated; remember the connection for replies.
		w := newClientWriter(conn, t.mx)
		t.mu.Lock()
		t.clients[h.From] = w
		t.mu.Unlock()
		defer func() {
			t.mu.Lock()
			if t.clients[h.From] == w {
				delete(t.clients, h.From)
			}
			t.mu.Unlock()
			w.close()
		}()
	default:
		return
	}

	var counter uint64
	for {
		raw, err := readFrame(conn)
		if err != nil {
			return
		}
		payload := raw
		if session != nil {
			if len(raw) < sha256.Size {
				return
			}
			payload = raw[:len(raw)-sha256.Size]
			mac := raw[len(raw)-sha256.Size:]
			if !hmac.Equal(mac, frameMAC(session, counter, payload)) {
				return
			}
		}
		counter++
		m, err := wire.DecodeMessage(payload)
		if err != nil {
			continue
		}
		m.From = h.From // the channel authenticates the sender
		t.mx.countRecv(&m)
		select {
		case t.inbox <- m:
		case <-t.closed:
			return
		}
	}
}

// peerWriter owns one outbound connection (dialing and redialing).
type peerWriter struct {
	t    *Transport
	dest int
	mx   *transportMetrics

	mu     sync.Mutex
	queue  []wire.Message
	cond   *sync.Cond
	closed bool

	// client-reply mode: write directly to an accepted connection.
	direct net.Conn
}

func newPeerWriter(t *Transport, dest int) *peerWriter {
	w := &peerWriter{t: t, dest: dest, mx: t.mx}
	w.cond = sync.NewCond(&w.mu)
	return w
}

func newClientWriter(conn net.Conn, mx *transportMetrics) *peerWriter {
	w := &peerWriter{direct: conn, mx: mx}
	w.cond = sync.NewCond(&w.mu)
	go w.runDirect()
	return w
}

func (w *peerWriter) enqueue(m wire.Message) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return
	}
	w.queue = append(w.queue, m)
	w.mx.queueAdd(1)
	w.cond.Signal()
}

func (w *peerWriter) close() {
	w.mu.Lock()
	w.closed = true
	w.cond.Broadcast()
	w.mu.Unlock()
	if w.direct != nil {
		w.direct.Close()
	}
}

// drain blocks until the queue is non-empty, then takes up to maxCoalesce
// messages in one swap. A writer that fell behind its queue — a slow link,
// a redial in progress — therefore flushes its whole backlog with a single
// write on the next pass, while an idle link still flushes every message
// the moment it arrives (the swap never waits for a batch to fill).
func (w *peerWriter) drain() ([]wire.Message, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	for len(w.queue) == 0 && !w.closed {
		w.cond.Wait()
	}
	if w.closed {
		return nil, false
	}
	batch := w.queue
	if len(batch) > maxCoalesce {
		batch = batch[:maxCoalesce:maxCoalesce]
		w.queue = w.queue[maxCoalesce:]
	} else {
		w.queue = nil
	}
	w.mx.queueAdd(-int64(len(batch)))
	return batch, true
}

// encodeBatch serializes a drained batch into per-message envelope frames.
// Bodies that fail to encode are skipped (a programming error on our own
// side, never attacker input).
func encodeBatch(batch []wire.Message) [][]byte {
	payloads := make([][]byte, 0, len(batch))
	for i := range batch {
		p, err := wire.EncodeMessage(&batch[i])
		if err != nil {
			continue
		}
		payloads = append(payloads, p)
	}
	return payloads
}

// appendFrame appends one length-prefixed frame carrying payload to dst and
// returns the extended buffer. With a non-nil session the frame gains the
// per-frame counter MAC, exactly as a standalone writeFrame would send it —
// the receive path cannot tell coalesced frames from individual ones.
func appendFrame(dst []byte, session []byte, counter uint64, payload []byte) []byte {
	flen := len(payload)
	if session != nil {
		flen += sha256.Size
	}
	var lb [4]byte
	binary.BigEndian.PutUint32(lb[:], uint32(flen))
	dst = append(dst, lb[:]...)
	dst = append(dst, payload...)
	if session != nil {
		dst = append(dst, frameMAC(session, counter, payload)...)
	}
	return dst
}

// runDirect serves replies to a connected client (no MAC): drain the
// backlog, assemble every frame into one pooled buffer, write once.
func (w *peerWriter) runDirect() {
	for {
		batch, ok := w.drain()
		if !ok {
			return
		}
		buf := getWriteBuf()
		out := (*buf)[:0]
		for _, p := range encodeBatch(batch) {
			out = appendFrame(out, nil, 0, p)
		}
		*buf = out
		_, err := w.direct.Write(out)
		w.mx.flush()
		putWriteBuf(buf)
		if err != nil {
			return
		}
	}
}

// run dials the destination server and writes queued frames, redialing on
// failure with capped exponential backoff. The failure streak spans
// batches — a peer that has been down for a while is probed gently even
// as new sends queue up — and resets on a successful dial. All frames of a
// drained batch are assembled into one pooled buffer and written with a
// single syscall; on a write error the whole batch is re-framed for the
// next connection, whose MAC counter restarts at zero.
func (w *peerWriter) run() {
	var conn net.Conn
	var session []byte
	var counter uint64
	failures := 0     // consecutive failed dials, across batches
	atCeiling := 0    // consecutive failed dials with backoff at its cap
	reported := false // give-up already reported for this outage
	giveUpAfter := w.t.cfg.GiveUpAfter
	if giveUpAfter == 0 {
		giveUpAfter = defaultGiveUpAfter
	}
	defer func() {
		if conn != nil {
			conn.Close()
		}
	}()
	for {
		batch, ok := w.drain()
		if !ok {
			return
		}
		payloads := encodeBatch(batch)
		if len(payloads) == 0 {
			continue
		}
		for attempt := 0; ; attempt++ {
			if conn == nil {
				w.mx.redial()
				conn, session, counter = w.dial()
				if conn == nil {
					failures++
					// Give-up detection: once the backoff has sat at
					// its ceiling for giveUpAfter consecutive attempts,
					// flag the peer as (presumed) permanently dead —
					// once per outage. Probing never stops; a
					// successful dial clears the outage.
					if redialBackoff(failures) >= redialMax {
						atCeiling++
						if !reported && giveUpAfter > 0 && atCeiling >= giveUpAfter {
							reported = true
							w.mx.giveup()
							if cb := w.t.cfg.OnPeerUnreachable; cb != nil {
								go cb(w.dest, failures)
							}
						}
					}
					if attempt >= dialAttempts {
						for range payloads {
							w.mx.drop()
						}
						break // drop the batch
					}
					select {
					case <-w.t.closed:
						return
					case <-time.After(redialDelay(failures, w.t.cfg.Self, w.dest)):
					}
					continue
				}
				failures, atCeiling, reported = 0, 0, false
			}
			buf := getWriteBuf()
			out := (*buf)[:0]
			next := counter
			for _, p := range payloads {
				out = appendFrame(out, session, next, p)
				next++
			}
			*buf = out
			_, err := conn.Write(out)
			putWriteBuf(buf)
			if err != nil {
				conn.Close()
				conn = nil
				continue
			}
			w.mx.flush()
			counter = next
			break
		}
	}
}

// dial establishes and authenticates an outbound connection.
func (w *peerWriter) dial() (net.Conn, []byte, uint64) {
	conn, err := net.DialTimeout("tcp", w.t.cfg.Addrs[w.dest], time.Second)
	if err != nil {
		return nil, nil, 0
	}
	nonce := make([]byte, 16)
	if _, err := rand.Read(nonce); err != nil {
		conn.Close()
		return nil, nil, 0
	}
	h := hello{Magic: helloMagic, From: w.t.cfg.Self, Nonce: nonce}
	var session []byte
	if w.t.cfg.Self < w.t.cfg.N {
		key := w.t.cfg.LinkKeys[w.dest]
		h.MAC = helloMAC(key, w.t.cfg.Self, w.dest, nonce)
		session = sessionKey(key, nonce)
	}
	raw, err := wire.MarshalBody(&h)
	if err != nil {
		conn.Close()
		return nil, nil, 0
	}
	if writeFrame(conn, raw) != nil {
		conn.Close()
		return nil, nil, 0
	}
	if w.t.cfg.Self >= w.t.cfg.N {
		// Clients receive replies over their own outbound connection.
		w.t.wg.Add(1)
		go func() {
			defer w.t.wg.Done()
			w.t.readReplies(conn, w.dest)
		}()
	}
	return conn, session, 0
}

// readReplies pumps a client's dialed connection into the inbox; the
// sender identity is the dialed server (channel-bound).
func (t *Transport) readReplies(conn net.Conn, server int) {
	for {
		raw, err := readFrame(conn)
		if err != nil {
			return
		}
		m, err := wire.DecodeMessage(raw)
		if err != nil {
			continue
		}
		m.From = server
		t.mx.countRecv(&m)
		select {
		case t.inbox <- m:
		case <-t.closed:
			return
		}
	}
}

// Frame helpers.

func readFrame(r io.Reader) ([]byte, error) {
	var lb [4]byte
	if _, err := io.ReadFull(r, lb[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(lb[:])
	if n > maxFrame {
		return nil, errors.New("transport: oversized frame")
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

func writeFrame(conn net.Conn, payload []byte) error {
	var lb [4]byte
	binary.BigEndian.PutUint32(lb[:], uint32(len(payload)))
	if _, err := conn.Write(lb[:]); err != nil {
		return err
	}
	_, err := conn.Write(payload)
	return err
}

func helloMAC(key []byte, from, to int, nonce []byte) []byte {
	mac := hmac.New(sha256.New, key)
	fmt.Fprintf(mac, "%s|%d|%d|", helloMagic, from, to)
	mac.Write(nonce)
	return mac.Sum(nil)
}

func sessionKey(key, nonce []byte) []byte {
	mac := hmac.New(sha256.New, key)
	mac.Write([]byte("session"))
	mac.Write(nonce)
	return mac.Sum(nil)
}

func frameMAC(session []byte, counter uint64, payload []byte) []byte {
	mac := hmac.New(sha256.New, session)
	var cb [8]byte
	binary.BigEndian.PutUint64(cb[:], counter)
	mac.Write(cb[:])
	mac.Write(payload)
	return mac.Sum(nil)
}
