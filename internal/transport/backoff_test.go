package transport

import (
	"net"
	"sync"
	"testing"
	"time"

	"sintra/internal/obs"
	"sintra/internal/wire"
)

func TestRedialDelayGrowsAndCaps(t *testing.T) {
	for attempt := 1; attempt <= 12; attempt++ {
		want := redialBase
		for i := 1; i < attempt && want < redialMax; i++ {
			want *= 2
		}
		if want > redialMax {
			want = redialMax
		}
		d := redialDelay(attempt, 0, 1)
		if d < want/2 || d >= want {
			t.Fatalf("attempt %d: delay %v outside [%v, %v)", attempt, d, want/2, want)
		}
	}
	// Late attempts saturate at the cap's jitter window.
	if d := redialDelay(1000, 0, 1); d < redialMax/2 || d >= redialMax {
		t.Fatalf("saturated delay %v outside [%v, %v)", d, redialMax/2, redialMax)
	}
}

func TestRedialDelayDeterministicJitter(t *testing.T) {
	if redialDelay(3, 0, 1) != redialDelay(3, 0, 1) {
		t.Fatal("same (attempt, self, dest) produced different delays")
	}
	// Different links must not all redial in lockstep: across a handful of
	// (self, dest) pairs at the same attempt, at least two delays differ.
	first := redialDelay(4, 0, 1)
	varied := false
	for self := 0; self < 4 && !varied; self++ {
		for dest := 0; dest < 4; dest++ {
			if redialDelay(4, self, dest) != first {
				varied = true
				break
			}
		}
	}
	if !varied {
		t.Fatal("jitter identical across all links")
	}
}

// TestRedialAttemptsUnderBackoff points a writer at a dead port with
// compressed backoff parameters and counts dial attempts: the message is
// dropped after exactly dialAttempts+1 dials, and the elapsed time shows
// the growing pauses actually happened.
func TestRedialAttemptsUnderBackoff(t *testing.T) {
	savedBase, savedMax := redialBase, redialMax
	redialBase, redialMax = time.Millisecond, 4*time.Millisecond
	defer func() { redialBase, redialMax = savedBase, savedMax }()

	// A listener that is immediately closed yields a port that refuses
	// connections fast.
	dead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := dead.Addr().String()
	dead.Close()

	keys := [][]byte{[]byte("k0"), []byte("k1")}
	tr, err := NewServer(Config{
		Self:       0,
		N:          2,
		Addrs:      []string{"127.0.0.1:0", deadAddr},
		ListenAddr: "127.0.0.1:0",
		LinkKeys:   keys,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	reg := obs.NewRegistry()
	tr.SetObserver(reg)

	start := time.Now()
	tr.Send(wire.Message{To: 1, Protocol: "p", Type: "T"})
	deadline := time.Now().Add(30 * time.Second)
	for reg.Snapshot().Counter("transport.dropped") == 0 {
		if time.Now().After(deadline) {
			t.Fatal("message to dead peer never dropped")
		}
		time.Sleep(5 * time.Millisecond)
	}
	elapsed := time.Since(start)

	if n := reg.Snapshot().Counter("transport.redials"); n != dialAttempts+1 {
		t.Fatalf("dial attempts = %d, want %d", n, dialAttempts+1)
	}
	// Lower bound: every pause is at least half its nominal delay, and all
	// but the first two pauses sit at the 4ms cap.
	if min := 20 * time.Millisecond; elapsed < min {
		t.Fatalf("dropped after %v — backoff pauses not applied (want >= %v)", elapsed, min)
	}
}

// TestRedialGiveUpReportsUnreachablePeer points a writer at a dead port
// with compressed backoff and a low give-up threshold: once the backoff
// has sat at its ceiling for GiveUpAfter consecutive failed dials, the
// "transport.redial.giveup" counter must tick and OnPeerUnreachable must
// fire — exactly once for the whole outage, no matter how many batches
// keep failing afterwards.
func TestRedialGiveUpReportsUnreachablePeer(t *testing.T) {
	savedBase, savedMax := redialBase, redialMax
	redialBase, redialMax = time.Millisecond, 4*time.Millisecond
	defer func() { redialBase, redialMax = savedBase, savedMax }()

	dead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := dead.Addr().String()
	dead.Close()

	var mu sync.Mutex
	type report struct{ peer, failures int }
	var reports []report
	keys := [][]byte{[]byte("k0"), []byte("k1")}
	tr, err := NewServer(Config{
		Self:        0,
		N:           2,
		Addrs:       []string{"127.0.0.1:0", deadAddr},
		ListenAddr:  "127.0.0.1:0",
		LinkKeys:    keys,
		GiveUpAfter: 2,
		OnPeerUnreachable: func(peer, failures int) {
			mu.Lock()
			reports = append(reports, report{peer, failures})
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	reg := obs.NewRegistry()
	tr.SetObserver(reg)

	tr.Send(wire.Message{To: 1, Protocol: "p", Type: "T"})
	deadline := time.Now().Add(30 * time.Second)
	for reg.Snapshot().Counter("transport.dropped") == 0 {
		if time.Now().After(deadline) {
			t.Fatal("message to dead peer never dropped")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The callback runs on its own goroutine; give it a moment to land.
	for time.Now().Before(deadline) {
		mu.Lock()
		n := len(reports)
		mu.Unlock()
		if n > 0 {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}

	if n := reg.Snapshot().Counter("transport.redial.giveup"); n != 1 {
		t.Fatalf("transport.redial.giveup = %d after first dropped batch, want 1", n)
	}
	mu.Lock()
	if len(reports) != 1 {
		t.Fatalf("OnPeerUnreachable fired %d times, want once per outage", len(reports))
	}
	if reports[0].peer != 1 {
		t.Fatalf("unreachable peer reported as %d, want 1", reports[0].peer)
	}
	// With base=1ms, max=4ms the ceiling is reached at the third failure,
	// so the threshold of 2 ceiling-level failures trips on the fourth.
	if reports[0].failures < 4 {
		t.Fatalf("reported after %d consecutive failures, want >= 4", reports[0].failures)
	}
	mu.Unlock()

	// A second batch against the same outage keeps probing (and dropping)
	// but must not re-report: the give-up latch holds until a dial succeeds.
	tr.Send(wire.Message{To: 1, Protocol: "p", Type: "T"})
	for reg.Snapshot().Counter("transport.dropped") < 2 {
		if time.Now().After(deadline) {
			t.Fatal("second message to dead peer never dropped")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if n := reg.Snapshot().Counter("transport.redial.giveup"); n != 1 {
		t.Fatalf("transport.redial.giveup = %d after second batch, want still 1", n)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(reports) != 1 {
		t.Fatalf("OnPeerUnreachable fired %d times across the outage, want 1", len(reports))
	}
}
