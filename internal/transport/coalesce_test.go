package transport

import (
	"bytes"
	"crypto/hmac"
	"crypto/sha256"
	"fmt"
	"sync"
	"testing"

	"sintra/internal/wire"
)

// TestAppendFrameRoundTrip pins the receive-path compatibility of write
// coalescing: a buffer of frames assembled by appendFrame must parse as a
// sequence of individually MAC'd frames, indistinguishable from the same
// frames sent by separate writeFrame calls.
func TestAppendFrameRoundTrip(t *testing.T) {
	session := bytes.Repeat([]byte{0x5a}, 32)
	payloads := [][]byte{
		[]byte("first"),
		{},
		bytes.Repeat([]byte{0xab}, 4096),
		[]byte("last"),
	}
	var out []byte
	for i, p := range payloads {
		out = appendFrame(out, session, uint64(i), p)
	}
	r := bytes.NewReader(out)
	for i, want := range payloads {
		raw, err := readFrame(r)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if len(raw) < sha256.Size {
			t.Fatalf("frame %d too short for a MAC: %d bytes", i, len(raw))
		}
		payload := raw[:len(raw)-sha256.Size]
		mac := raw[len(raw)-sha256.Size:]
		if !hmac.Equal(mac, frameMAC(session, uint64(i), payload)) {
			t.Fatalf("frame %d: MAC mismatch", i)
		}
		if !bytes.Equal(payload, want) {
			t.Fatalf("frame %d: payload %x, want %x", i, payload, want)
		}
	}
	if r.Len() != 0 {
		t.Fatalf("%d trailing bytes after all frames", r.Len())
	}
}

// TestAppendFrameNoMAC covers the client path: with a nil session the frame
// is the bare length-prefixed payload.
func TestAppendFrameNoMAC(t *testing.T) {
	out := appendFrame(nil, nil, 0, []byte("reply"))
	raw, err := readFrame(bytes.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, []byte("reply")) {
		t.Fatalf("payload %q, want %q", raw, "reply")
	}
}

// TestDrainCoalesces pins the batching contract of drain: everything queued
// comes out in one swap, in order, capped at maxCoalesce.
func TestDrainCoalesces(t *testing.T) {
	w := &peerWriter{}
	w.cond = sync.NewCond(&w.mu)
	total := maxCoalesce + 10
	for k := 0; k < total; k++ {
		w.enqueue(wire.Message{Type: fmt.Sprintf("m%d", k)})
	}
	batch, ok := w.drain()
	if !ok || len(batch) != maxCoalesce {
		t.Fatalf("first drain: %d messages (ok=%v), want %d", len(batch), ok, maxCoalesce)
	}
	rest, ok := w.drain()
	if !ok || len(rest) != total-maxCoalesce {
		t.Fatalf("second drain: %d messages (ok=%v), want %d", len(rest), ok, total-maxCoalesce)
	}
	for k, m := range append(batch, rest...) {
		if m.Type != fmt.Sprintf("m%d", k) {
			t.Fatalf("message %d out of order: %q", k, m.Type)
		}
	}
	w.close()
	if _, ok := w.drain(); ok {
		t.Fatal("drain succeeded on a closed writer")
	}
}
