package transport_test

import (
	"crypto/rand"
	"testing"
	"time"

	"sintra/internal/transport"
	"sintra/internal/wire"
)

// newPair starts n servers on loopback with fresh link keys and returns
// the transports.
func newCluster(t *testing.T, n int) []*transport.Transport {
	t.Helper()
	keys := make([][][]byte, n)
	for i := range keys {
		keys[i] = make([][]byte, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			k := make([]byte, 32)
			if _, err := rand.Read(k); err != nil {
				t.Fatal(err)
			}
			keys[i][j] = k
			keys[j][i] = k
		}
	}
	// First bind everyone on :0, then share the real addresses.
	trs := make([]*transport.Transport, n)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		tr, err := transport.NewServer(transport.Config{
			Self: i, N: n,
			Addrs:      make([]string, n), // filled after all listeners bind
			ListenAddr: "127.0.0.1:0",
			LinkKeys:   keys[i],
		})
		if err != nil {
			t.Fatal(err)
		}
		trs[i] = tr
		addrs[i] = tr.Addr()
	}
	// NOTE: Config.Addrs was captured by value inside each transport; we
	// rebuild the transports now that addresses are known.
	for _, tr := range trs {
		tr.Close()
	}
	for i := 0; i < n; i++ {
		tr, err := transport.NewServer(transport.Config{
			Self: i, N: n,
			Addrs:      addrs,
			ListenAddr: addrs[i],
			LinkKeys:   keys[i],
		})
		if err != nil {
			t.Fatal(err)
		}
		trs[i] = tr
	}
	t.Cleanup(func() {
		for _, tr := range trs {
			tr.Close()
		}
	})
	return trs
}

func recvWithTimeout(t *testing.T, tr *transport.Transport, timeout time.Duration) wire.Message {
	t.Helper()
	ch := make(chan wire.Message, 1)
	go func() {
		if m, ok := tr.Recv(); ok {
			ch <- m
		}
	}()
	select {
	case m := <-ch:
		return m
	case <-time.After(timeout):
		t.Fatal("timeout waiting for message")
		return wire.Message{}
	}
}

func TestServerToServer(t *testing.T) {
	trs := newCluster(t, 3)
	trs[0].Send(wire.Message{To: 1, Protocol: "p", Instance: "i", Type: "T", Payload: []byte("hello")})
	m := recvWithTimeout(t, trs[1], 10*time.Second)
	if m.From != 0 || string(m.Payload) != "hello" {
		t.Fatalf("got %+v", m)
	}
}

func TestLoopback(t *testing.T) {
	trs := newCluster(t, 2)
	trs[0].Send(wire.Message{To: 0, Protocol: "p", Type: "T"})
	m := recvWithTimeout(t, trs[0], 5*time.Second)
	if m.From != 0 || m.Protocol != "p" {
		t.Fatalf("got %+v", m)
	}
}

func TestSenderIdentityIsChannelBound(t *testing.T) {
	// A server cannot spoof another sender: From is overwritten by the
	// receiving side based on the authenticated channel.
	trs := newCluster(t, 3)
	trs[2].Send(wire.Message{From: 0, To: 1, Protocol: "p", Type: "T"})
	m := recvWithTimeout(t, trs[1], 10*time.Second)
	if m.From != 2 {
		t.Fatalf("spoofed From accepted: %d", m.From)
	}
}

func TestClientRoundTrip(t *testing.T) {
	trs := newCluster(t, 2)
	addrs := []string{trs[0].Addr(), trs[1].Addr()}
	client, err := transport.NewClient(transport.Config{Self: 7, N: 2, Addrs: addrs})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	client.Send(wire.Message{To: 0, Protocol: "req", Type: "Q", Payload: []byte("ping")})
	m := recvWithTimeout(t, trs[0], 10*time.Second)
	if m.From != 7 || string(m.Payload) != "ping" {
		t.Fatalf("got %+v", m)
	}
	// Server replies over the client's connection.
	trs[0].Send(wire.Message{To: 7, Protocol: "resp", Type: "A", Payload: []byte("pong")})
	r := recvWithTimeout(t, client, 10*time.Second)
	if r.From != 0 || string(r.Payload) != "pong" {
		t.Fatalf("got %+v", r)
	}
}

func TestWrongKeyRejected(t *testing.T) {
	trs := newCluster(t, 2)
	addrs := []string{trs[0].Addr(), trs[1].Addr()}
	badKeys := make([][]byte, 2)
	badKeys[0] = make([]byte, 32) // zero key: wrong
	badKeys[1] = make([]byte, 32)
	evil, err := transport.NewServer(transport.Config{
		Self: 1, N: 2, Addrs: addrs, ListenAddr: "127.0.0.1:0", LinkKeys: badKeys,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer evil.Close()
	evil.Send(wire.Message{To: 0, Protocol: "p", Type: "T", Payload: []byte("forged")})
	ch := make(chan wire.Message, 1)
	go func() {
		if m, ok := trs[0].Recv(); ok {
			ch <- m
		}
	}()
	select {
	case m := <-ch:
		t.Fatalf("message over unauthenticated link accepted: %+v", m)
	case <-time.After(500 * time.Millisecond):
	}
}

func TestManyMessagesInOrderPerLink(t *testing.T) {
	trs := newCluster(t, 2)
	const total = 200
	go func() {
		for k := 0; k < total; k++ {
			trs[0].Send(wire.Message{To: 1, Protocol: "p", Type: "T", Payload: []byte{byte(k)}})
		}
	}()
	for k := 0; k < total; k++ {
		m := recvWithTimeout(t, trs[1], 10*time.Second)
		if int(m.Payload[0]) != k {
			t.Fatalf("out of order: got %d want %d", m.Payload[0], k)
		}
	}
}

func TestCloseUnblocksRecv(t *testing.T) {
	trs := newCluster(t, 2)
	done := make(chan bool, 1)
	go func() {
		_, ok := trs[0].Recv()
		done <- ok
	}()
	time.Sleep(50 * time.Millisecond)
	trs[0].Close()
	select {
	case ok := <-done:
		if ok {
			t.Fatal("Recv returned message after close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Recv did not unblock")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := transport.NewServer(transport.Config{Self: 5, N: 2}); err == nil {
		t.Fatal("bad self accepted")
	}
	if _, err := transport.NewClient(transport.Config{Self: 0, N: 2, Addrs: []string{"a", "b"}}); err == nil {
		t.Fatal("client with server index accepted")
	}
	if _, err := transport.NewClient(transport.Config{Self: 5, N: 2, Addrs: []string{"a"}}); err == nil {
		t.Fatal("short addrs accepted")
	}
}

func TestReconnectAfterPeerRestart(t *testing.T) {
	// Build a two-server cluster with explicit keys so server 1 can be
	// restarted with identical material.
	key := make([]byte, 32)
	if _, err := rand.Read(key); err != nil {
		t.Fatal(err)
	}
	keys0 := [][]byte{nil, key}
	keys1 := [][]byte{key, nil}
	bind := func(self int, addrs []string, listen string, keys [][]byte) *transport.Transport {
		tr, err := transport.NewServer(transport.Config{
			Self: self, N: 2, Addrs: addrs, ListenAddr: listen, LinkKeys: keys,
		})
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	tr0 := bind(0, make([]string, 2), "127.0.0.1:0", keys0)
	tr1 := bind(1, make([]string, 2), "127.0.0.1:0", keys1)
	addrs := []string{tr0.Addr(), tr1.Addr()}
	tr0.Close()
	tr1.Close()
	tr0 = bind(0, addrs, addrs[0], keys0)
	defer tr0.Close()
	tr1 = bind(1, addrs, addrs[1], keys1)

	// Establish the link.
	tr0.Send(wire.Message{To: 1, Protocol: "p", Type: "A"})
	recvWithTimeout(t, tr1, 10*time.Second)

	// Restart server 1 on the same address with the same keys.
	tr1.Close()
	restarted := bind(1, addrs, addrs[1], keys1)
	defer restarted.Close()

	// Server 0's old outbound connection is dead; sends must redial.
	got := make(chan wire.Message, 16)
	go func() {
		for {
			m, ok := restarted.Recv()
			if !ok {
				return
			}
			got <- m
		}
	}()
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		tr0.Send(wire.Message{To: 1, Protocol: "p", Type: "B"})
		select {
		case m := <-got:
			if m.From != 0 || m.Type != "B" {
				t.Fatalf("got %+v", m)
			}
			return
		case <-time.After(300 * time.Millisecond):
		}
	}
	t.Fatal("no delivery after peer restart")
}
