package dleq

import (
	"crypto/rand"
	"io"
	"sort"

	"sintra/internal/group"
)

// BatchItem pairs one DLEQ statement and proof with its context string
// for batch verification.
type BatchItem struct {
	St      Statement
	P       *Proof
	Context string
}

// randomizerBits sizes the small random exponents of the batch check.
// Each invalid item survives the product test with probability at most
// 2^-randomizerBits (the test is linear in each δ over the prime-order
// group, so at most one of the 2^128 choices can cancel a non-identity
// error term), matching the ≥128-bit soundness of the proofs themselves.
const randomizerBits = 128

// BatchVerify checks k proofs with one random-linear-combination
// product test and returns the indexes of the invalid items (nil when
// every proof verifies). A batch accepts if and only if every item's
// statement is provable — the same guarantee per-item Verify gives —
// up to the 2^-128 soundness error of the randomized test:
//
//   - per item, the Fiat-Shamir challenge is recomputed over the
//     carried commitments (C = H(st, A1, A2, ctx)) — a cheap hash;
//   - the two verification equations g1^z = A1·h1^c and g2^z = A2·h2^c
//     of all items are folded, each raised to an independent 128-bit
//     random exponent, into a single product evaluated with one shared
//     multi-exponentiation (group.MultiExp), aggregating exponents for
//     repeated bases such as the generator and per-round coin bases.
//
// Over the Z_p* backend the commitments are only structurally checked
// (range), not membership-checked — a Jacobi symbol per commitment
// would cost a large slice of the batch's saving. This is sound because
// Z_p* for the safe prime p splits as {±1} × QR: a commitment smuggled
// into the order-2 component can only flip the sign of the folded
// product — a spurious failure that the binary split resolves with
// deterministic per-item Verify — while a false statement's error lives
// in the prime-order component, where signs cannot cancel it and the
// standard small-exponent argument bounds survival at 2^-128. Over
// P-256 there is no order-2 component at all: decompression already
// proves membership, so the folded test needs no sign-blindness.
// Statement elements are membership-checked as usual (here when
// untrusted, by the caller's IsElement checks when Trusted). See
// DESIGN.md for the full argument.
//
// On product failure the batch is binary-split and re-randomized to
// isolate the culprit(s), ending in deterministic per-item Verify at
// the leaves, so one Byzantine share cannot poison honest shares.
// Items whose proofs lack commitments (from pre-batching peers) are
// verified individually. If rnd fails, everything falls back to
// per-item Verify.
func BatchVerify(g group.Group, items []BatchItem, rnd io.Reader) []int {
	if rnd == nil {
		rnd = rand.Reader
	}
	var bad []int
	var cand []int // indexes eligible for the folded product test
	for i, it := range items {
		p := it.P
		if p == nil || !g.IsScalar(p.C) || !g.IsScalar(p.Z) {
			bad = append(bad, i)
			continue
		}
		if !it.St.Trusted {
			ok := true
			for _, e := range []*group.Point{it.St.G1, it.St.H1, it.St.G2, it.St.H2} {
				if !g.IsElement(e) {
					ok = false
					break
				}
			}
			if !ok {
				bad = append(bad, i)
				continue
			}
		}
		if p.A1 == nil || p.A2 == nil {
			// Legacy compact proof: no commitments to fold.
			if verifyTrusted(g, it) != nil {
				bad = append(bad, i)
			}
			continue
		}
		// The commitments were structurally validated when they were
		// decoded (length, range, on-curve) — the sign-blind folded
		// test tolerates Z_p* non-residues, so no Jacobi symbol is
		// spent here. Only the group tag and the challenge need
		// checking before folding.
		if p.A1.GroupID() != g.ID() || p.A2.GroupID() != g.ID() ||
			!challenge(g, it.St, p.A1, p.A2, it.Context).Equal(p.C) {
			bad = append(bad, i)
			continue
		}
		cand = append(cand, i)
	}
	bad = append(bad, splitVerify(g, items, cand, rnd)...)
	if len(bad) == 0 {
		return nil
	}
	sort.Ints(bad)
	return bad
}

// verifyTrusted runs the per-item path, skipping the membership checks
// BatchVerify has already performed.
func verifyTrusted(g group.Group, it BatchItem) error {
	st := it.St
	st.Trusted = true
	return Verify(g, st, it.P, it.Context)
}

// splitVerify checks the items at the given indexes with one folded
// product test, recursively halving (with fresh randomizers) on
// failure until per-item verification isolates the culprits.
func splitVerify(g group.Group, items []BatchItem, idx []int, rnd io.Reader) []int {
	switch len(idx) {
	case 0:
		return nil
	case 1:
		if verifyTrusted(g, items[idx[0]]) != nil {
			return idx
		}
		return nil
	}
	ok, err := foldedCheck(g, items, idx, rnd)
	if err != nil {
		// Randomness failure: deterministic per-item fallback.
		var bad []int
		for _, i := range idx {
			if verifyTrusted(g, items[i]) != nil {
				bad = append(bad, i)
			}
		}
		return bad
	}
	if ok {
		return nil
	}
	mid := len(idx) / 2
	bad := splitVerify(g, items, idx[:mid], rnd)
	return append(bad, splitVerify(g, items, idx[mid:], rnd)...)
}

// foldedCheck evaluates the random-linear-combination product for the
// items at the given indexes:
//
//	Π_j (A1_j^{δ_j} · h1_j^{c_j δ_j}) (A2_j^{δ'_j} · h2_j^{c_j δ'_j})
//	    · g1^{-Σ δ_j z_j} · g2^{-Σ δ'_j z_j}  ==  1
//
// with independent uniform randomizers δ, δ' of randomizerBits bits.
// Exponents are accumulated per base pointer, so shared bases — the
// generator (a stable pointer per Group), a common secondary base,
// repeated verification keys — each contribute a single term to the
// multi-exponentiation.
func foldedCheck(g group.Group, items []BatchItem, idx []int, rnd io.Reader) (bool, error) {
	// One read supplies every randomizer: 2 per item, 16 bytes each.
	buf := make([]byte, 2*len(idx)*randomizerBits/8)
	if _, err := io.ReadFull(rnd, buf); err != nil {
		return false, err
	}
	nextDelta := func() *group.Scalar {
		d := g.ScalarFromBytes(buf[:randomizerBits/8])
		buf = buf[randomizerBits/8:]
		return d
	}
	exps := make(map[*group.Point]*group.Scalar, 4*len(idx))
	add := func(base *group.Point, e *group.Scalar) {
		if acc, ok := exps[base]; ok {
			exps[base] = g.AddScalar(acc, e)
		} else {
			exps[base] = e
		}
	}
	for _, i := range idx {
		it, p := items[i], items[i].P
		d1, d2 := nextDelta(), nextDelta()
		add(p.A1, d1)
		add(p.A2, d2)
		add(it.St.H1, g.MulScalar(p.C, d1))
		add(it.St.H2, g.MulScalar(p.C, d2))
		add(it.St.G1, g.NegScalar(g.MulScalar(p.Z, d1)))
		add(it.St.G2, g.NegScalar(g.MulScalar(p.Z, d2)))
	}
	terms := make([]group.Term, 0, len(exps))
	for base, e := range exps {
		terms = append(terms, group.Term{Base: base, Exp: e})
	}
	return g.MultiExp(terms).Equal(g.Identity()), nil
}
