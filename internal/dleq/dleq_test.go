package dleq

import (
	"crypto/rand"
	"testing"

	"sintra/internal/group"
)

// testBackends returns one Z_p* group and the P-256 group, so every
// proof property is checked over both backend families. (The CI matrix
// additionally runs the whole suite with SINTRA_GROUP=p256, flipping
// the default the protocol tests use.)
func testBackends() []group.Group {
	return []group.Group{group.TestDefault(), group.P256()}
}

func setup(t *testing.T, g group.Group) (Statement, *group.Scalar) {
	t.Helper()
	x, err := g.RandomScalar(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	g2 := g.HashToPoint("second-generator", []byte("t"))
	st := Statement{
		G1: g.Generator(),
		H1: g.BaseExp(x),
		G2: g2,
		H2: g.Exp(g2, x),
	}
	return st, x
}

// nonMember produces a structurally valid wire encoding that is not a
// member of the prime-order group, when the backend admits one (the
// Z_p* backends do: half of [1, p-1] are non-residues). Returns nil for
// backends where structural validity implies membership (P-256).
func nonMember(t *testing.T, g group.Group) *group.Point {
	t.Helper()
	buf := make([]byte, 1+g.ElementLen())
	buf[0] = byte(g.ID())
	for v := byte(2); v < 120; v++ {
		buf[len(buf)-1] = v
		var p group.Point
		if err := p.UnmarshalBinary(buf); err != nil {
			continue
		}
		if !g.IsElement(&p) {
			return &p
		}
	}
	return nil
}

func TestProveVerify(t *testing.T) {
	for _, g := range testBackends() {
		t.Run(g.Name(), func(t *testing.T) {
			st, x := setup(t, g)
			p, err := Prove(g, st, x, "test", rand.Reader)
			if err != nil {
				t.Fatal(err)
			}
			if err := Verify(g, st, p, "test"); err != nil {
				t.Fatalf("valid proof rejected: %v", err)
			}
		})
	}
}

func TestVerifyRejectsWrongContext(t *testing.T) {
	for _, g := range testBackends() {
		t.Run(g.Name(), func(t *testing.T) {
			st, x := setup(t, g)
			p, _ := Prove(g, st, x, "ctx-a", rand.Reader)
			if err := Verify(g, st, p, "ctx-b"); err == nil {
				t.Fatal("proof accepted under wrong context")
			}
		})
	}
}

func TestVerifyRejectsWrongStatement(t *testing.T) {
	for _, g := range testBackends() {
		t.Run(g.Name(), func(t *testing.T) {
			st, x := setup(t, g)
			p, _ := Prove(g, st, x, "test", rand.Reader)
			bad := st
			bad.H2 = g.Mul(st.H2, g.Generator()) // shift H2: exponents now differ
			if err := Verify(g, bad, p, "test"); err == nil {
				t.Fatal("proof accepted for unequal logs")
			}
		})
	}
}

func TestVerifyRejectsWrongSecret(t *testing.T) {
	for _, g := range testBackends() {
		t.Run(g.Name(), func(t *testing.T) {
			st, x := setup(t, g)
			// Prove with a different exponent than the statement's.
			y := g.AddScalar(x, g.NewScalar(1))
			p, _ := Prove(g, st, y, "test", rand.Reader)
			if err := Verify(g, st, p, "test"); err == nil {
				t.Fatal("proof with wrong witness accepted")
			}
		})
	}
}

func TestVerifyRejectsMangledProof(t *testing.T) {
	for _, g := range testBackends() {
		t.Run(g.Name(), func(t *testing.T) {
			st, x := setup(t, g)
			p, _ := Prove(g, st, x, "test", rand.Reader)
			// A scalar of a different group: IsScalar must reject it.
			foreign := group.Test512().NewScalar(1)
			cases := []*Proof{
				nil,
				{C: nil, Z: p.Z},
				{C: p.C, Z: nil},
				{C: g.AddScalar(p.C, g.NewScalar(1)), Z: p.Z},
				{C: p.C, Z: g.AddScalar(p.Z, g.NewScalar(1))},
				{C: foreign, Z: p.Z},
				{C: p.C, Z: foreign},
			}
			for i, bad := range cases {
				if err := Verify(g, st, bad, "test"); err == nil {
					t.Fatalf("case %d: mangled proof accepted", i)
				}
			}
		})
	}
}

func TestVerifyRejectsNonGroupElements(t *testing.T) {
	for _, g := range testBackends() {
		t.Run(g.Name(), func(t *testing.T) {
			st, x := setup(t, g)
			p, _ := Prove(g, st, x, "test", rand.Reader)
			// An element of a different group is never accepted.
			bad := st
			bad.H1 = group.Test512().Generator()
			if err := Verify(g, bad, p, "test"); err == nil {
				t.Fatal("statement with foreign-group element accepted")
			}
			// A structurally valid non-member (Z_p* only).
			if nm := nonMember(t, g); nm != nil {
				bad.H1 = nm
				if err := Verify(g, bad, p, "test"); err == nil {
					t.Fatal("statement with non-element accepted")
				}
			}
		})
	}
}

func TestProofsAreBoundPerStatement(t *testing.T) {
	for _, g := range testBackends() {
		t.Run(g.Name(), func(t *testing.T) {
			st, x := setup(t, g)
			p, _ := Prove(g, st, x, "test", rand.Reader)
			// Same exponent but different base pair: proof must not transfer.
			g3 := g.HashToPoint("third-generator", []byte("t"))
			other := Statement{G1: st.G1, H1: st.H1, G2: g3, H2: g.Exp(g3, x)}
			if err := Verify(g, other, p, "test"); err == nil {
				t.Fatal("proof transferred across statements")
			}
		})
	}
}

// TestVerifyMatchesSlowOracle cross-checks the fast verification path
// (MulExp, cheap membership, optional Trusted skip) against the
// original implementation on valid and corrupted proofs.
func TestVerifyMatchesSlowOracle(t *testing.T) {
	for _, g := range testBackends() {
		t.Run(g.Name(), func(t *testing.T) {
			st, x := setup(t, g)
			g.Precompute(st.H1)
			valid, _ := Prove(g, st, x, "oracle", rand.Reader)
			mangled := &Proof{C: valid.C, Z: g.AddScalar(valid.Z, g.NewScalar(1))}
			zero := &Proof{C: g.NewScalar(0), Z: valid.Z}
			trusted := st
			trusted.Trusted = true
			for i, p := range []*Proof{valid, mangled, zero} {
				want := verifySlow(g, st, p, "oracle")
				if got := Verify(g, st, p, "oracle"); (got == nil) != (want == nil) {
					t.Fatalf("case %d: fast path %v, slow path %v", i, got, want)
				}
				if got := Verify(g, trusted, p, "oracle"); (got == nil) != (want == nil) {
					t.Fatalf("case %d (trusted): fast path %v, slow path %v", i, got, want)
				}
			}
		})
	}
}

// TestTrustedSkipsOnlyMembership makes sure Trusted does not weaken
// the algebraic check itself.
func TestTrustedSkipsOnlyMembership(t *testing.T) {
	for _, g := range testBackends() {
		t.Run(g.Name(), func(t *testing.T) {
			st, x := setup(t, g)
			st.Trusted = true
			p, _ := Prove(g, st, x, "t", rand.Reader)
			if err := Verify(g, st, p, "t"); err != nil {
				t.Fatalf("trusted valid proof rejected: %v", err)
			}
			bad := st
			bad.H2 = g.Mul(st.H2, g.Generator())
			if err := Verify(g, bad, p, "t"); err == nil {
				t.Fatal("trusted statement with unequal logs accepted")
			}
		})
	}
}

func BenchmarkProve(b *testing.B) {
	g := group.TestDefault()
	x, _ := g.RandomScalar(rand.Reader)
	g2 := g.HashToPoint("gen", []byte("b"))
	st := Statement{G1: g.Generator(), H1: g.BaseExp(x), G2: g2, H2: g.Exp(g2, x)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Prove(g, st, x, "bench", rand.Reader); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVerify(b *testing.B) {
	g := group.TestDefault()
	x, _ := g.RandomScalar(rand.Reader)
	g2 := g.HashToPoint("gen", []byte("b"))
	st := Statement{G1: g.Generator(), H1: g.BaseExp(x), G2: g2, H2: g.Exp(g2, x)}
	p, _ := Prove(g, st, x, "bench", rand.Reader)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := Verify(g, st, p, "bench"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDLEQVerify is the acceptance benchmark of the verification
// pipeline work (EXPERIMENTS.md): "legacy" is the pre-pipeline
// implementation, "precomp" the production configuration — a trusted
// statement whose H1 is a dealt verification key with a registered
// fixed-base table, exactly how internal/coin and internal/threnc
// call it. The per-backend sub-benchmarks feed the EXPERIMENTS.md
// modp2048-vs-p256 comparison at production parameters.
func BenchmarkDLEQVerify(b *testing.B) {
	for _, g := range []group.Group{group.TestDefault(), group.MODP2048(), group.P256()} {
		x, _ := g.RandomScalar(rand.Reader)
		g2 := g.HashToPoint("gen", []byte("b"))
		st := Statement{G1: g.Generator(), H1: g.BaseExp(x), G2: g2, H2: g.Exp(g2, x)}
		p, _ := Prove(g, st, x, "bench", rand.Reader)
		b.Run(g.Name()+"/legacy", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := verifySlow(g, st, p, "bench"); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(g.Name()+"/precomp", func(b *testing.B) {
			g.Precompute(st.H1)
			tst := st
			tst.Trusted = true
			if err := Verify(g, tst, p, "bench"); err != nil { // build tables untimed
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := Verify(g, tst, p, "bench"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
