package dleq

import (
	"crypto/rand"
	"math/big"
	"testing"

	"sintra/internal/group"
)

func setup(t *testing.T) (*group.Group, Statement, *big.Int) {
	t.Helper()
	g := group.Test256()
	x, err := g.RandomScalar(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	g2 := g.HashToElement("second-generator", []byte("t"))
	st := Statement{
		G1: g.G,
		H1: g.BaseExp(x),
		G2: g2,
		H2: g.Exp(g2, x),
	}
	return g, st, x
}

func TestProveVerify(t *testing.T) {
	g, st, x := setup(t)
	p, err := Prove(g, st, x, "test", rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(g, st, p, "test"); err != nil {
		t.Fatalf("valid proof rejected: %v", err)
	}
}

func TestVerifyRejectsWrongContext(t *testing.T) {
	g, st, x := setup(t)
	p, _ := Prove(g, st, x, "ctx-a", rand.Reader)
	if err := Verify(g, st, p, "ctx-b"); err == nil {
		t.Fatal("proof accepted under wrong context")
	}
}

func TestVerifyRejectsWrongStatement(t *testing.T) {
	g, st, x := setup(t)
	p, _ := Prove(g, st, x, "test", rand.Reader)
	bad := st
	bad.H2 = g.Mul(st.H2, g.G) // shift H2: exponents now differ
	if err := Verify(g, bad, p, "test"); err == nil {
		t.Fatal("proof accepted for unequal logs")
	}
}

func TestVerifyRejectsWrongSecret(t *testing.T) {
	g, st, x := setup(t)
	// Prove with a different exponent than the statement's.
	y := g.AddScalar(x, big.NewInt(1))
	p, _ := Prove(g, st, y, "test", rand.Reader)
	if err := Verify(g, st, p, "test"); err == nil {
		t.Fatal("proof with wrong witness accepted")
	}
}

func TestVerifyRejectsMangledProof(t *testing.T) {
	g, st, x := setup(t)
	p, _ := Prove(g, st, x, "test", rand.Reader)
	cases := []*Proof{
		nil,
		{C: nil, Z: p.Z},
		{C: p.C, Z: nil},
		{C: g.AddScalar(p.C, big.NewInt(1)), Z: p.Z},
		{C: p.C, Z: g.AddScalar(p.Z, big.NewInt(1))},
		{C: new(big.Int).Neg(big.NewInt(1)), Z: p.Z},
		{C: new(big.Int).Set(g.Q), Z: p.Z},
	}
	for i, bad := range cases {
		if err := Verify(g, st, bad, "test"); err == nil {
			t.Fatalf("case %d: mangled proof accepted", i)
		}
	}
}

func TestVerifyRejectsNonGroupElements(t *testing.T) {
	g, st, x := setup(t)
	p, _ := Prove(g, st, x, "test", rand.Reader)
	bad := st
	bad.H1 = big.NewInt(0)
	if err := Verify(g, bad, p, "test"); err == nil {
		t.Fatal("statement with non-element accepted")
	}
}

func TestProofsAreBoundPerStatement(t *testing.T) {
	g, st, x := setup(t)
	p, _ := Prove(g, st, x, "test", rand.Reader)
	// Same exponent but different base pair: proof must not transfer.
	g3 := g.HashToElement("third-generator", []byte("t"))
	other := Statement{G1: st.G1, H1: st.H1, G2: g3, H2: g.Exp(g3, x)}
	if err := Verify(g, other, p, "test"); err == nil {
		t.Fatal("proof transferred across statements")
	}
}

// TestVerifyMatchesSlowOracle cross-checks the fast verification path
// (MulExp, Jacobi membership, optional Trusted skip) against the
// original implementation on valid and corrupted proofs.
func TestVerifyMatchesSlowOracle(t *testing.T) {
	g, st, x := setup(t)
	g.Precompute(st.H1)
	valid, _ := Prove(g, st, x, "oracle", rand.Reader)
	mangled := &Proof{C: valid.C, Z: g.AddScalar(valid.Z, big.NewInt(1))}
	zero := &Proof{C: big.NewInt(0), Z: valid.Z}
	trusted := st
	trusted.Trusted = true
	for i, p := range []*Proof{valid, mangled, zero} {
		want := verifySlow(g, st, p, "oracle")
		if got := Verify(g, st, p, "oracle"); (got == nil) != (want == nil) {
			t.Fatalf("case %d: fast path %v, slow path %v", i, got, want)
		}
		if got := Verify(g, trusted, p, "oracle"); (got == nil) != (want == nil) {
			t.Fatalf("case %d (trusted): fast path %v, slow path %v", i, got, want)
		}
	}
}

// TestTrustedSkipsOnlyMembership makes sure Trusted does not weaken
// the algebraic check itself.
func TestTrustedSkipsOnlyMembership(t *testing.T) {
	g, st, x := setup(t)
	st.Trusted = true
	p, _ := Prove(g, st, x, "t", rand.Reader)
	if err := Verify(g, st, p, "t"); err != nil {
		t.Fatalf("trusted valid proof rejected: %v", err)
	}
	bad := st
	bad.H2 = g.Mul(st.H2, g.G)
	if err := Verify(g, bad, p, "t"); err == nil {
		t.Fatal("trusted statement with unequal logs accepted")
	}
}

func BenchmarkProve(b *testing.B) {
	g := group.Test256()
	x, _ := g.RandomScalar(rand.Reader)
	g2 := g.HashToElement("gen", []byte("b"))
	st := Statement{G1: g.G, H1: g.BaseExp(x), G2: g2, H2: g.Exp(g2, x)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Prove(g, st, x, "bench", rand.Reader); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVerify(b *testing.B) {
	g := group.Test256()
	x, _ := g.RandomScalar(rand.Reader)
	g2 := g.HashToElement("gen", []byte("b"))
	st := Statement{G1: g.G, H1: g.BaseExp(x), G2: g2, H2: g.Exp(g2, x)}
	p, _ := Prove(g, st, x, "bench", rand.Reader)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := Verify(g, st, p, "bench"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDLEQVerify is the acceptance benchmark of the verification
// pipeline work (EXPERIMENTS.md): "legacy" is the pre-pipeline
// implementation, "precomp" the production configuration — a trusted
// statement whose H1 is a dealt verification key with a registered
// fixed-base table, exactly how internal/coin and internal/threnc
// call it.
func BenchmarkDLEQVerify(b *testing.B) {
	g := group.Test256()
	x, _ := g.RandomScalar(rand.Reader)
	g2 := g.HashToElement("gen", []byte("b"))
	st := Statement{G1: g.G, H1: g.BaseExp(x), G2: g2, H2: g.Exp(g2, x)}
	p, _ := Prove(g, st, x, "bench", rand.Reader)
	b.Run("legacy", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := verifySlow(g, st, p, "bench"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("precomp", func(b *testing.B) {
		g.Precompute(st.H1)
		tst := st
		tst.Trusted = true
		if err := Verify(g, tst, p, "bench"); err != nil { // build tables untimed
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := Verify(g, tst, p, "bench"); err != nil {
				b.Fatal(err)
			}
		}
	})
}
