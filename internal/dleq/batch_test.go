package dleq

import (
	"crypto/rand"
	"fmt"
	"reflect"
	"testing"

	"sintra/internal/group"
)

// batchSetup builds k coin-style items: shared generator and shared
// secondary base, per-party verification keys and share values.
func batchSetup(t testing.TB, g group.Group, k int, trusted bool) ([]BatchItem, []*group.Scalar) {
	t.Helper()
	base := g.HashToPoint("batch-base", []byte("t"))
	items := make([]BatchItem, k)
	secrets := make([]*group.Scalar, k)
	for i := 0; i < k; i++ {
		x, err := g.RandomScalar(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		secrets[i] = x
		st := Statement{
			G1: g.Generator(), H1: g.BaseExp(x),
			G2: base, H2: g.Exp(base, x),
			Trusted: trusted,
		}
		ctx := fmt.Sprintf("batch|%d", i)
		p, err := Prove(g, st, x, ctx, rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		items[i] = BatchItem{St: st, P: p, Context: ctx}
	}
	return items, secrets
}

func TestBatchVerifyAllValid(t *testing.T) {
	for _, g := range testBackends() {
		t.Run(g.Name(), func(t *testing.T) {
			for _, k := range []int{0, 1, 2, 7, 16} {
				items, _ := batchSetup(t, g, k, false)
				if bad := BatchVerify(g, items, rand.Reader); bad != nil {
					t.Fatalf("k=%d: valid batch flagged %v", k, bad)
				}
			}
		})
	}
}

func TestBatchVerifyIsolatesCulprits(t *testing.T) {
	for _, g := range testBackends() {
		t.Run(g.Name(), func(t *testing.T) {
			for _, culprits := range [][]int{{0}, {6}, {3}, {0, 6}, {1, 2, 5}, {0, 1, 2, 3, 4, 5, 6}} {
				items, _ := batchSetup(t, g, 7, false)
				for _, c := range culprits {
					// A mutated share value: the proof no longer matches the
					// statement, exactly what a Byzantine sender produces.
					items[c].St.H2 = g.Mul(items[c].St.H2, g.Generator())
				}
				bad := BatchVerify(g, items, rand.Reader)
				if !reflect.DeepEqual(bad, culprits) {
					t.Fatalf("culprits %v: batch flagged %v", culprits, bad)
				}
			}
		})
	}
}

// TestBatchVerifyLegacyProofs strips the commitments from a subset of
// proofs — the shape of shares produced by pre-batching peers — and
// checks the fallback verifies them individually.
func TestBatchVerifyLegacyProofs(t *testing.T) {
	for _, g := range testBackends() {
		t.Run(g.Name(), func(t *testing.T) {
			items, _ := batchSetup(t, g, 5, false)
			items[1].P = &Proof{C: items[1].P.C, Z: items[1].P.Z}
			items[3].P = &Proof{C: items[3].P.C, Z: items[3].P.Z}
			if bad := BatchVerify(g, items, rand.Reader); bad != nil {
				t.Fatalf("legacy-mixed valid batch flagged %v", bad)
			}
			items[3].P = &Proof{C: items[3].P.C, Z: g.AddScalar(items[3].P.Z, g.NewScalar(1))}
			if bad := BatchVerify(g, items, rand.Reader); !reflect.DeepEqual(bad, []int{3}) {
				t.Fatalf("bad legacy proof: batch flagged %v", bad)
			}
		})
	}
}

func TestBatchVerifyRejectsMangled(t *testing.T) {
	for _, g := range testBackends() {
		t.Run(g.Name(), func(t *testing.T) {
			items, _ := batchSetup(t, g, 6, false)
			foreign := group.Test512()
			items[0].P = nil
			items[1].P = &Proof{C: foreign.NewScalar(1), Z: items[1].P.Z, A1: items[1].P.A1, A2: items[1].P.A2}
			items[2].P.A1 = foreign.Generator() // foreign-group commitment
			// Valid (C, Z) with forged commitments: the challenge recompute
			// catches the inconsistency even though Verify alone would accept.
			items[3].P.A1, items[3].P.A2 = items[3].P.A2, items[3].P.A1
			items[4].St.H1 = foreign.Generator() // foreign-group element
			bad := BatchVerify(g, items, rand.Reader)
			if !reflect.DeepEqual(bad, []int{0, 1, 2, 3, 4}) {
				t.Fatalf("mangled batch flagged %v", bad)
			}
		})
	}
}

// TestBatchVerifyNonMemberCommitment feeds a structurally valid
// non-member commitment (possible only over Z_p*: a wire value in the
// order-2 component) and checks that the sign-blind folded test plus
// binary split still classify every item exactly as per-item Verify
// does — the forged commitment fails its challenge recompute.
func TestBatchVerifyNonMemberCommitment(t *testing.T) {
	g := group.TestDefault()
	items, _ := batchSetup(t, g, 5, false)
	nm := nonMember(t, g)
	if nm == nil {
		t.Skip("backend has no structurally-valid non-members")
	}
	items[2].P.A1 = nm
	bad := BatchVerify(g, items, rand.Reader)
	if !reflect.DeepEqual(bad, []int{2}) {
		t.Fatalf("non-member commitment: batch flagged %v", bad)
	}
}

// TestBatchVerifyMatchesVerify cross-checks batch and per-item results
// over randomized corruption patterns of (C, Z, H2).
func TestBatchVerifyMatchesVerify(t *testing.T) {
	for _, g := range testBackends() {
		t.Run(g.Name(), func(t *testing.T) {
			for trial := 0; trial < 10; trial++ {
				items, _ := batchSetup(t, g, 8, trial%2 == 0)
				for i := range items {
					switch (trial + i) % 4 {
					case 1:
						items[i].P.Z = g.AddScalar(items[i].P.Z, g.NewScalar(1))
					case 2:
						items[i].St.H2 = g.Mul(items[i].St.H2, g.Generator())
					}
				}
				var want []int
				for i, it := range items {
					if Verify(g, it.St, it.P, it.Context) != nil {
						want = append(want, i)
					}
				}
				got := BatchVerify(g, items, rand.Reader)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("trial %d: batch flagged %v, per-item %v", trial, got, want)
				}
			}
		})
	}
}

// TestBatchVerifyTrustedStillChecksEquations mirrors the single-proof
// Trusted semantics: membership checks are skipped, the algebra is not.
func TestBatchVerifyTrustedStillChecksEquations(t *testing.T) {
	for _, g := range testBackends() {
		t.Run(g.Name(), func(t *testing.T) {
			items, _ := batchSetup(t, g, 4, true)
			items[2].St.H2 = g.Mul(items[2].St.H2, g.Generator())
			if bad := BatchVerify(g, items, rand.Reader); !reflect.DeepEqual(bad, []int{2}) {
				t.Fatalf("trusted batch flagged %v", bad)
			}
		})
	}
}

// BenchmarkDLEQBatchVerify is the acceptance benchmark of the batching
// work (EXPERIMENTS.md): per-share verification of a k=7 burst against
// one folded product check, in the production configuration (trusted
// statements, registered verification keys, shared coin base).
func BenchmarkDLEQBatchVerify(b *testing.B) {
	g := group.TestDefault()
	for _, k := range []int{4, 7, 16} {
		items, _ := batchSetup(b, g, k, true)
		for i := range items {
			g.Precompute(items[i].St.H1)
		}
		// Build every fixed-base table outside the timed loops.
		if bad := BatchVerify(g, items, rand.Reader); bad != nil {
			b.Fatal("valid batch rejected")
		}
		for _, it := range items {
			if err := Verify(g, it.St, it.P, it.Context); err != nil {
				b.Fatal(err)
			}
		}
		b.Run(fmt.Sprintf("k=%d/pershare", k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for _, it := range items {
					if err := Verify(g, it.St, it.P, it.Context); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
		b.Run(fmt.Sprintf("k=%d/batch", k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if bad := BatchVerify(g, items, rand.Reader); bad != nil {
					b.Fatal("valid batch rejected")
				}
			}
		})
	}
}
