// Package dleq implements non-interactive Chaum-Pedersen proofs of
// discrete-logarithm equality, made non-interactive with the Fiat-Shamir
// transform in the random-oracle model.
//
// A proof convinces a verifier that log_{g1}(h1) = log_{g2}(h2) without
// revealing the common exponent. These proofs provide the "validity proof"
// attached to coin shares in the threshold coin-tossing scheme and to
// decryption shares in the TDH2 threshold cryptosystem, making both schemes
// robust: invalid shares from corrupted servers are detected immediately
// (Cachin, DSN 2001, §2.1).
package dleq

import (
	"errors"
	"fmt"
	"io"
	"math/big"

	"sintra/internal/group"
)

// ErrInvalidProof is returned by Verify for proofs that do not check out.
var ErrInvalidProof = errors.New("dleq: invalid proof")

// Proof is a (challenge, response) Chaum-Pedersen proof, optionally
// carrying the prover's commitments for batch verification.
type Proof struct {
	// C is the Fiat-Shamir challenge.
	C *big.Int
	// Z is the prover's response.
	Z *big.Int
	// A1, A2 are the prover's commitments g1^w, g2^w. Verify
	// recomputes them from (C, Z) and ignores these fields, so the
	// compact form stays sufficient; BatchVerify needs them to fold
	// many proofs into one product check and falls back to per-proof
	// verification when they are absent (proofs from pre-batching
	// peers gob-decode with A1 = A2 = nil).
	A1, A2 *big.Int
}

// Statement captures the public values of a DLEQ claim:
// log_{G1}(H1) = log_{G2}(H2).
type Statement struct {
	G1, H1, G2, H2 *big.Int

	// Trusted asserts that all four elements are already known to lie
	// in the prime-order subgroup — dealt verification keys, locally
	// derived bases, or wire values the caller has validated itself.
	// Verify then skips its four membership checks, which otherwise
	// cost as much as the exponentiations. Soundness depends on the
	// assertion: never set Trusted for values taken from the network
	// without an explicit IsElement check.
	Trusted bool
}

// Prove generates a proof that h1 = g1^x and h2 = g2^x for the given
// secret exponent x. The context string binds the proof to its use site
// (protocol, instance, party) so proofs cannot be replayed elsewhere.
func Prove(g *group.Group, st Statement, x *big.Int, context string, rnd io.Reader) (*Proof, error) {
	w, err := g.RandomScalar(rnd)
	if err != nil {
		return nil, fmt.Errorf("dleq: %w", err)
	}
	a1 := g.Exp(st.G1, w)
	a2 := g.Exp(st.G2, w)
	c := challenge(g, st, a1, a2, context)
	// z = w + c*x mod q
	z := g.AddScalar(w, g.MulScalar(c, x))
	return &Proof{C: c, Z: z, A1: a1, A2: a2}, nil
}

// Verify checks a proof against the statement and context. Bases with
// precomputation tables registered in the group (the generator and
// dealt verification keys, see group.Precompute) take the fixed-base
// fast path; marking the statement Trusted additionally skips the
// four subgroup membership checks.
func Verify(g *group.Group, st Statement, p *Proof, context string) error {
	if p == nil || p.C == nil || p.Z == nil {
		return ErrInvalidProof
	}
	if p.C.Sign() < 0 || p.C.Cmp(g.Q) >= 0 || p.Z.Sign() < 0 || p.Z.Cmp(g.Q) >= 0 {
		return ErrInvalidProof
	}
	if !st.Trusted {
		for _, e := range []*big.Int{st.G1, st.H1, st.G2, st.H2} {
			if !g.IsElement(e) {
				return ErrInvalidProof
			}
		}
	}
	// a1 = g1^z / h1^c = g1^z · h1^(q-c), and likewise a2: subgroup
	// elements have order q, so division by h^c is multiplication by
	// h^(q-c) — one simultaneous double exponentiation, no inverse.
	negC := new(big.Int).Sub(g.Q, p.C)
	a1 := g.MulExp(st.G1, p.Z, st.H1, negC)
	a2 := g.MulExp(st.G2, p.Z, st.H2, negC)
	if challenge(g, st, a1, a2, context).Cmp(p.C) != 0 {
		return ErrInvalidProof
	}
	return nil
}

// verifySlow is the pre-pipeline verification path — membership checks
// by exponentiation, two divisions, four independent exponentiations —
// kept as the before/after baseline for BenchmarkDLEQVerify and as a
// cross-check oracle in tests.
func verifySlow(g *group.Group, st Statement, p *Proof, context string) error {
	if p == nil || p.C == nil || p.Z == nil {
		return ErrInvalidProof
	}
	if p.C.Sign() < 0 || p.C.Cmp(g.Q) >= 0 || p.Z.Sign() < 0 || p.Z.Cmp(g.Q) >= 0 {
		return ErrInvalidProof
	}
	one := big.NewInt(1)
	for _, e := range []*big.Int{st.G1, st.H1, st.G2, st.H2} {
		if e == nil || e.Sign() <= 0 || e.Cmp(g.P) >= 0 {
			return ErrInvalidProof
		}
		if new(big.Int).Exp(e, g.Q, g.P).Cmp(one) != 0 {
			return ErrInvalidProof
		}
	}
	a1 := g.Div(new(big.Int).Exp(st.G1, p.Z, g.P), new(big.Int).Exp(st.H1, p.C, g.P))
	a2 := g.Div(new(big.Int).Exp(st.G2, p.Z, g.P), new(big.Int).Exp(st.H2, p.C, g.P))
	if challenge(g, st, a1, a2, context).Cmp(p.C) != 0 {
		return ErrInvalidProof
	}
	return nil
}

func challenge(g *group.Group, st Statement, a1, a2 *big.Int, context string) *big.Int {
	return g.HashToScalar("sintra/dleq/"+context,
		g.EncodeElement(st.G1), g.EncodeElement(st.H1),
		g.EncodeElement(st.G2), g.EncodeElement(st.H2),
		g.EncodeElement(a1), g.EncodeElement(a2),
	)
}
