// Package dleq implements non-interactive Chaum-Pedersen proofs of
// discrete-logarithm equality, made non-interactive with the Fiat-Shamir
// transform in the random-oracle model.
//
// A proof convinces a verifier that log_{g1}(h1) = log_{g2}(h2) without
// revealing the common exponent. These proofs provide the "validity proof"
// attached to coin shares in the threshold coin-tossing scheme and to
// decryption shares in the TDH2 threshold cryptosystem, making both schemes
// robust: invalid shares from corrupted servers are detected immediately
// (Cachin, DSN 2001, §2.1).
package dleq

import (
	"errors"
	"fmt"
	"io"
	"math/big"

	"sintra/internal/group"
)

// ErrInvalidProof is returned by Verify for proofs that do not check out.
var ErrInvalidProof = errors.New("dleq: invalid proof")

// Proof is a compact (challenge, response) Chaum-Pedersen proof.
type Proof struct {
	// C is the Fiat-Shamir challenge.
	C *big.Int
	// Z is the prover's response.
	Z *big.Int
}

// Statement captures the public values of a DLEQ claim:
// log_{G1}(H1) = log_{G2}(H2).
type Statement struct {
	G1, H1, G2, H2 *big.Int
}

// Prove generates a proof that h1 = g1^x and h2 = g2^x for the given
// secret exponent x. The context string binds the proof to its use site
// (protocol, instance, party) so proofs cannot be replayed elsewhere.
func Prove(g *group.Group, st Statement, x *big.Int, context string, rnd io.Reader) (*Proof, error) {
	w, err := g.RandomScalar(rnd)
	if err != nil {
		return nil, fmt.Errorf("dleq: %w", err)
	}
	a1 := g.Exp(st.G1, w)
	a2 := g.Exp(st.G2, w)
	c := challenge(g, st, a1, a2, context)
	// z = w + c*x mod q
	z := g.AddScalar(w, g.MulScalar(c, x))
	return &Proof{C: c, Z: z}, nil
}

// Verify checks a proof against the statement and context.
func Verify(g *group.Group, st Statement, p *Proof, context string) error {
	if p == nil || p.C == nil || p.Z == nil {
		return ErrInvalidProof
	}
	if p.C.Sign() < 0 || p.C.Cmp(g.Q) >= 0 || p.Z.Sign() < 0 || p.Z.Cmp(g.Q) >= 0 {
		return ErrInvalidProof
	}
	for _, e := range []*big.Int{st.G1, st.H1, st.G2, st.H2} {
		if !g.IsElement(e) {
			return ErrInvalidProof
		}
	}
	// a1 = g1^z / h1^c ; a2 = g2^z / h2^c
	a1 := g.Div(g.Exp(st.G1, p.Z), g.Exp(st.H1, p.C))
	a2 := g.Div(g.Exp(st.G2, p.Z), g.Exp(st.H2, p.C))
	if challenge(g, st, a1, a2, context).Cmp(p.C) != 0 {
		return ErrInvalidProof
	}
	return nil
}

func challenge(g *group.Group, st Statement, a1, a2 *big.Int, context string) *big.Int {
	return g.HashToScalar("sintra/dleq/"+context,
		g.EncodeElement(st.G1), g.EncodeElement(st.H1),
		g.EncodeElement(st.G2), g.EncodeElement(st.H2),
		g.EncodeElement(a1), g.EncodeElement(a2),
	)
}
