// Package dleq implements non-interactive Chaum-Pedersen proofs of
// discrete-logarithm equality, made non-interactive with the Fiat-Shamir
// transform in the random-oracle model.
//
// A proof convinces a verifier that log_{g1}(h1) = log_{g2}(h2) without
// revealing the common exponent. These proofs provide the "validity proof"
// attached to coin shares in the threshold coin-tossing scheme and to
// decryption shares in the TDH2 threshold cryptosystem, making both schemes
// robust: invalid shares from corrupted servers are detected immediately
// (Cachin, DSN 2001, §2.1).
//
// The package is backend-agnostic: statements and proofs are built from
// opaque group.Point/group.Scalar values and verify identically over the
// Z_p* and P-256 backends.
package dleq

import (
	"errors"
	"fmt"
	"io"

	"sintra/internal/group"
)

// ErrInvalidProof is returned by Verify for proofs that do not check out.
var ErrInvalidProof = errors.New("dleq: invalid proof")

// Proof is a (challenge, response) Chaum-Pedersen proof, optionally
// carrying the prover's commitments for batch verification.
type Proof struct {
	// C is the Fiat-Shamir challenge.
	C *group.Scalar
	// Z is the prover's response.
	Z *group.Scalar
	// A1, A2 are the prover's commitments g1^w, g2^w. Verify
	// recomputes them from (C, Z) and ignores these fields, so the
	// compact form stays sufficient; BatchVerify needs them to fold
	// many proofs into one product check and falls back to per-proof
	// verification when they are absent (proofs from pre-batching
	// peers gob-decode with A1 = A2 = nil).
	A1, A2 *group.Point
}

// Statement captures the public values of a DLEQ claim:
// log_{G1}(H1) = log_{G2}(H2).
type Statement struct {
	G1, H1, G2, H2 *group.Point

	// Trusted asserts that all four elements are already known to lie
	// in the prime-order group — dealt verification keys, locally
	// derived bases, or wire values the caller has validated itself.
	// Verify then skips its four membership checks, which for the Z_p*
	// backend otherwise cost as much as the exponentiations. Soundness
	// depends on the assertion: never set Trusted for values taken from
	// the network without an explicit IsElement check.
	Trusted bool
}

// Prove generates a proof that h1 = g1^x and h2 = g2^x for the given
// secret exponent x. The context string binds the proof to its use site
// (protocol, instance, party) so proofs cannot be replayed elsewhere.
func Prove(g group.Group, st Statement, x *group.Scalar, context string, rnd io.Reader) (*Proof, error) {
	w, err := g.RandomScalar(rnd)
	if err != nil {
		return nil, fmt.Errorf("dleq: %w", err)
	}
	a1 := g.Exp(st.G1, w)
	a2 := g.Exp(st.G2, w)
	c := challenge(g, st, a1, a2, context)
	// z = w + c*x mod q
	z := g.AddScalar(w, g.MulScalar(c, x))
	return &Proof{C: c, Z: z, A1: a1, A2: a2}, nil
}

// Verify checks a proof against the statement and context. Bases with
// precomputation tables registered in the group (the generator and
// dealt verification keys, see Group.Precompute) take the fixed-base
// fast path; marking the statement Trusted additionally skips the
// four membership checks.
func Verify(g group.Group, st Statement, p *Proof, context string) error {
	if p == nil || !g.IsScalar(p.C) || !g.IsScalar(p.Z) {
		return ErrInvalidProof
	}
	if !st.Trusted {
		for _, e := range []*group.Point{st.G1, st.H1, st.G2, st.H2} {
			if !g.IsElement(e) {
				return ErrInvalidProof
			}
		}
	}
	// a1 = g1^z / h1^c = g1^z · h1^(-c), and likewise a2: one
	// simultaneous double exponentiation per equation, no inverse.
	negC := g.NegScalar(p.C)
	a1 := g.MulExp(st.G1, p.Z, st.H1, negC)
	a2 := g.MulExp(st.G2, p.Z, st.H2, negC)
	if !challenge(g, st, a1, a2, context).Equal(p.C) {
		return ErrInvalidProof
	}
	return nil
}

// verifySlow is the pre-pipeline verification path — strict re-decode
// membership checks, two divisions, four independent exponentiations —
// kept as the before/after baseline for BenchmarkDLEQVerify and as a
// cross-check oracle in tests.
func verifySlow(g group.Group, st Statement, p *Proof, context string) error {
	if p == nil || !g.IsScalar(p.C) || !g.IsScalar(p.Z) {
		return ErrInvalidProof
	}
	for _, e := range []*group.Point{st.G1, st.H1, st.G2, st.H2} {
		if e == nil {
			return ErrInvalidProof
		}
		if _, err := g.DecodeElement(g.EncodeElement(e)); err != nil {
			return ErrInvalidProof
		}
	}
	a1 := g.Div(g.Exp(st.G1, p.Z), g.Exp(st.H1, p.C))
	a2 := g.Div(g.Exp(st.G2, p.Z), g.Exp(st.H2, p.C))
	if !challenge(g, st, a1, a2, context).Equal(p.C) {
		return ErrInvalidProof
	}
	return nil
}

func challenge(g group.Group, st Statement, a1, a2 *group.Point, context string) *group.Scalar {
	return g.HashToScalar("sintra/dleq/"+context,
		g.EncodeElement(st.G1), g.EncodeElement(st.H1),
		g.EncodeElement(st.G2), g.EncodeElement(st.H2),
		g.EncodeElement(a1), g.EncodeElement(a2),
	)
}
