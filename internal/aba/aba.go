// Package aba implements randomized binary Byzantine agreement driven by
// the threshold coin — the paper's central primitive (§2, §3): agreement
// in a completely asynchronous network, optimal resilience (Q³ / n > 3t),
// and termination in an expected constant number of rounds, circumventing
// the FLP impossibility by randomization.
//
// The round structure is the signature-free binary agreement of
// Mostéfaoui, Moumen and Raynal (BV-broadcast + AUX exchange) combined
// with the Cachin–Kursawe–Shoup cryptographic common coin — the same
// composition as the paper's architecture (a protocol-level coin from
// threshold cryptography deciding the round outcome). Thresholds follow
// the generalized substitution rules of §4.2: BVAL relay fires on a set
// outside the adversary structure (t+1), bin-values admission on an
// IsStrong set (2t+1), and the AUX barrier on a quorum (n−t).
//
// Termination uses a DECIDED certificate exchange: a party that decides
// broadcasts DECIDED(b); receiving DECIDED(b) from a set outside the
// adversary structure is proof that an honest party decided b, so the
// receiver may adopt b, and a party halts once a full quorum has sent
// DECIDED — at that point every honest party is guaranteed to learn the
// decision without further help.
package aba

import (
	"crypto/rand"
	"fmt"

	"sintra/internal/adversary"
	"sintra/internal/coin"
	"sintra/internal/engine"
	"sintra/internal/obs"
	"sintra/internal/trust"
	"sintra/internal/wire"
)

// Protocol is the wire protocol name of binary agreement.
const Protocol = "aba"

// Message types.
const (
	typeStart   = "START"
	typeBval    = "BVAL"
	typeAux     = "AUX"
	typeCoin    = "COIN"
	typeDecided = "DECIDED"
)

type boolRoundBody struct {
	Round int
	Value bool
}

type coinBody struct {
	Round  int
	Shares []coin.Share
}

type decidedBody struct {
	Value bool
}

// Config wires one binary-agreement instance.
type Config struct {
	// Router is the party's protocol router.
	Router *engine.Router
	// Struct is the adversary structure.
	Struct *adversary.Structure
	// Trust optionally overrides the quorum backend for the BVAL, AUX,
	// and DECIDED rules and gates the round coins on this party's own
	// quorums; nil wraps Struct in the symmetric backend, preserving the
	// original behavior.
	Trust trust.Quorums
	// Instance is the instance identifier.
	Instance string
	// Coin is the threshold coin public key; CoinKey the party's shares.
	Coin *coin.Params
	// CoinKey is this party's coin key.
	CoinKey *coin.SecretKey
	// Decide is called exactly once with the decided value.
	Decide func(value bool)
	// OnTerminate is called once the instance may be garbage-collected
	// (optional).
	OnTerminate func()
}

// roundState holds the per-round protocol state.
type roundState struct {
	bvalSent [2]bool
	bvalRecv [2]adversary.Set
	bin      [2]bool

	auxSent  bool
	auxFrom  adversary.Set
	auxRecv  [2]adversary.Set
	barrier  bool // AUX barrier passed; vals frozen
	vals     [2]bool
	coinSent bool

	coinCombiner *coin.Combiner
	coinDone     bool
	coinValue    bool

	advanced bool // round outcome applied
}

// ABA is one binary-agreement instance; dispatch-goroutine only.
type ABA struct {
	cfg   Config
	trust trust.Quorums
	self  int

	started bool
	round   int
	est     bool
	rounds  map[int]*roundState

	decided     bool
	decision    bool
	decidedSent bool
	decidedFrom [2]adversary.Set
	terminated  bool

	span *obs.Span
}

// New creates and registers an instance (dispatch goroutine or pre-Run).
func New(cfg Config) *ABA {
	a := &ABA{
		cfg:    cfg,
		trust:  cfg.Trust,
		self:   cfg.Router.Self(),
		rounds: make(map[int]*roundState),
		span:   obs.StartSpan(cfg.Router.Observer(), cfg.Router.Self(), Protocol, cfg.Instance),
	}
	if a.trust == nil {
		a.trust = trust.NewSymmetric(cfg.Struct)
	}
	cfg.Router.RegisterSplit(Protocol, cfg.Instance, engine.SplitHandler{
		Verify:      a.verifyMsg,
		BatchVerify: a.batchVerify,
		Apply:       a.apply,
		VerifyTypes: []string{typeCoin},
	})
	return a
}

// coinVerdict is the Verify-stage result for COIN messages: the decoded
// round and the subset of shares whose DLEQ proofs checked out. It is
// computed on a worker goroutine from the immutable coin parameters only.
type coinVerdict struct {
	round  int
	shares []coin.Share
}

// verifyMsg is the parallel Verify stage: it checks COIN share proofs —
// the instance's dominant public-key cost — without touching state.
func (a *ABA) verifyMsg(from int, msgType string, payload []byte) any {
	if msgType != typeCoin {
		return nil
	}
	var body coinBody
	// Plain unmarshal, not Router.Decode: the nil-verdict fallback would
	// decode again and double-count router.malformed.
	if wire.UnmarshalBody(payload, &body) != nil || body.Round < 1 {
		return nil
	}
	name := a.coinName(body.Round)
	valid := make([]coin.Share, 0, len(body.Shares))
	for _, sh := range body.Shares {
		if a.cfg.Coin.VerifyShare(name, sh) == nil {
			valid = append(valid, sh)
		}
	}
	return &coinVerdict{round: body.Round, shares: valid}
}

// batchVerify is the coalescing Verify stage for COIN bursts: the
// shares of all drained messages fold into one DLEQ batch — a single
// random-linear-combination multi-exponentiation instead of one
// four-exponentiation proof check per share — with each round's coin
// base derived once. Messages that fail to decode keep a nil verdict
// and fall back to inline apply-time handling, exactly like verifyMsg.
func (a *ABA) batchVerify(msgs []*wire.Message) ([]any, int) {
	verdicts := make([]any, len(msgs))
	bodies := make([]*coinBody, len(msgs))
	bv := a.cfg.Coin.NewBatchVerifier()
	for i, m := range msgs {
		var body coinBody
		if wire.UnmarshalBody(m.Payload, &body) != nil || body.Round < 1 {
			continue
		}
		bodies[i] = &body
		name := a.coinName(body.Round)
		for _, sh := range body.Shares {
			bv.Add(name, sh)
		}
	}
	ok := bv.Verify()
	culprits, k := 0, 0
	for i, body := range bodies {
		if body == nil {
			continue
		}
		valid := make([]coin.Share, 0, len(body.Shares))
		for _, sh := range body.Shares {
			if ok[k] {
				valid = append(valid, sh)
			} else {
				culprits++
			}
			k++
		}
		verdicts[i] = &coinVerdict{round: body.Round, shares: valid}
	}
	return verdicts, culprits
}

// Start proposes the initial value. Safe from any goroutine (loopback).
func (a *ABA) Start(value bool) error {
	return a.cfg.Router.Loopback(Protocol, a.cfg.Instance, typeStart, decidedBody{Value: value})
}

// Decided reports the decision, if reached.
func (a *ABA) Decided() (bool, bool) { return a.decision, a.decided }

// Round returns the current round number (1-based; 0 before Start), a
// progress metric for the experiment harness.
func (a *ABA) Round() int { return a.round }

func (a *ABA) state(r int) *roundState {
	st, ok := a.rounds[r]
	if !ok {
		st = &roundState{}
		st.coinCombiner = coin.NewCombiner(a.cfg.Coin, a.coinName(r))
		st.coinCombiner.SetGate(trust.CoinGate(a.trust, a.self))
		a.rounds[r] = st
	}
	return st
}

func (a *ABA) coinName(r int) string {
	return fmt.Sprintf("aba|%s|r%d", a.cfg.Instance, r)
}

func b2i(v bool) int {
	if v {
		return 1
	}
	return 0
}

// Handle processes one protocol message without a pipeline verdict (the
// legacy single-stage entry point, kept for tests and direct callers).
func (a *ABA) Handle(from int, msgType string, payload []byte) {
	a.apply(from, msgType, payload, nil)
}

// apply is the serialized Apply stage. A non-nil verdict carries the
// Verify stage's result for COIN messages; a nil verdict means the shares
// were not pre-verified and are checked inline.
func (a *ABA) apply(from int, msgType string, payload []byte, verdict any) {
	if a.terminated {
		return
	}
	switch msgType {
	case typeStart:
		var body decidedBody
		if from != a.cfg.Router.Self() || !a.cfg.Router.Decode(payload, &body) {
			return
		}
		a.onStart(body.Value)
	case typeBval:
		var body boolRoundBody
		if !a.cfg.Router.Decode(payload, &body) || body.Round < 1 {
			return
		}
		a.onBval(from, body.Round, body.Value)
	case typeAux:
		var body boolRoundBody
		if !a.cfg.Router.Decode(payload, &body) || body.Round < 1 {
			return
		}
		a.onAux(from, body.Round, body.Value)
	case typeCoin:
		if v, ok := verdict.(*coinVerdict); ok {
			a.onCoinVerified(v.round, v.shares)
			return
		}
		var body coinBody
		if !a.cfg.Router.Decode(payload, &body) || body.Round < 1 {
			return
		}
		a.onCoin(body.Round, body.Shares)
	case typeDecided:
		var body decidedBody
		if !a.cfg.Router.Decode(payload, &body) {
			return
		}
		a.onDecided(from, body.Value)
	}
}

func (a *ABA) onStart(value bool) {
	if a.started {
		return
	}
	a.started = true
	a.round = 1
	a.est = value
	a.sendBval(1, value)
	// Fast peers may already have completed round 1 around us.
	a.tryAdvance(1)
}

func (a *ABA) sendBval(r int, v bool) {
	st := a.state(r)
	if st.bvalSent[b2i(v)] {
		return
	}
	st.bvalSent[b2i(v)] = true
	// The slot carries both round and value: BVAL for both values in one
	// round is legal, so only a (round, value) pair is a commitment.
	_ = a.cfg.Router.BroadcastJournaled(fmt.Sprintf("bval/%d/%d", r, b2i(v)),
		Protocol, a.cfg.Instance, typeBval, boolRoundBody{Round: r, Value: v})
}

func (a *ABA) onBval(from, r int, v bool) {
	st := a.state(r)
	if st.bvalRecv[b2i(v)].Has(from) {
		return
	}
	st.bvalRecv[b2i(v)] = st.bvalRecv[b2i(v)].Add(from)
	// Relay once the senders block every quorum (t+1 rule): some honest
	// party BVAL'd v, so it is safe and live to support it.
	if a.trust.Blocks(a.self, st.bvalRecv[b2i(v)]) {
		a.sendBval(r, v)
	}
	// Admit v to bin_values on a delivery-grade set (2t+1 rule): enough
	// honest support that every honest party will eventually admit v too.
	if !st.bin[b2i(v)] && a.trust.IsStrong(a.self, st.bvalRecv[b2i(v)]) {
		st.bin[b2i(v)] = true
		a.onBinValue(r, v)
	}
}

func (a *ABA) onBinValue(r int, v bool) {
	st := a.state(r)
	if !st.auxSent {
		st.auxSent = true
		_ = a.cfg.Router.BroadcastJournaled(fmt.Sprintf("aux/%d", r),
			Protocol, a.cfg.Instance, typeAux, boolRoundBody{Round: r, Value: v})
	}
	a.tryBarrier(r)
}

func (a *ABA) onAux(from, r int, v bool) {
	st := a.state(r)
	if st.auxFrom.Has(from) {
		return // one AUX per party per round
	}
	st.auxFrom = st.auxFrom.Add(from)
	st.auxRecv[b2i(v)] = st.auxRecv[b2i(v)].Add(from)
	a.tryBarrier(r)
}

// tryBarrier checks the AUX barrier: a quorum of AUX messages whose values
// all lie in bin_values. Values from outside bin_values are not counted
// (they may still join later once their BVAL support arrives).
func (a *ABA) tryBarrier(r int) {
	st := a.state(r)
	if st.barrier {
		return
	}
	var supported adversary.Set
	for _, v := range []bool{false, true} {
		if st.bin[b2i(v)] {
			supported = supported.Union(st.auxRecv[b2i(v)])
		}
	}
	if !a.trust.IsQuorum(a.self, supported) {
		return
	}
	st.barrier = true
	for _, v := range []bool{false, true} {
		st.vals[b2i(v)] = st.bin[b2i(v)] && st.auxRecv[b2i(v)] != adversary.EmptySet
	}
	// Release the coin only after the barrier: its value must be
	// unpredictable while votes are still free.
	if !st.coinSent {
		st.coinSent = true
		shares, err := a.cfg.Coin.ReleaseShares(a.cfg.CoinKey, a.coinName(r), rand.Reader)
		if err == nil {
			// Share values are deterministic but the DLEQ proofs are
			// randomized; journaling re-sends the exact recorded proof.
			_ = a.cfg.Router.BroadcastJournaled(fmt.Sprintf("coin/%d", r),
				Protocol, a.cfg.Instance, typeCoin, coinBody{Round: r, Shares: shares})
		}
	}
	a.tryAdvance(r)
}

func (a *ABA) onCoin(r int, shares []coin.Share) {
	st := a.state(r)
	if st.coinDone {
		return
	}
	for _, sh := range shares {
		_ = st.coinCombiner.Add(sh) // invalid shares are rejected inside
	}
	a.finishCoin(r, st)
}

// onCoinVerified consumes shares whose proofs the Verify stage already
// checked, skipping re-verification on the dispatch goroutine.
func (a *ABA) onCoinVerified(r int, shares []coin.Share) {
	st := a.state(r)
	if st.coinDone {
		return
	}
	for _, sh := range shares {
		st.coinCombiner.AddVerified(sh)
	}
	a.finishCoin(r, st)
}

func (a *ABA) finishCoin(r int, st *roundState) {
	if !st.coinCombiner.Ready() {
		return
	}
	value, err := st.coinCombiner.Value()
	if err != nil {
		return
	}
	st.coinDone = true
	st.coinValue = value.Bit()
	a.tryAdvance(r)
}

// tryAdvance applies the round outcome once both the AUX barrier and the
// coin are available for the current round.
func (a *ABA) tryAdvance(r int) {
	if r != a.round || !a.started {
		return
	}
	st := a.state(r)
	if st.advanced || !st.barrier || !st.coinDone {
		return
	}
	st.advanced = true

	zero, one := st.vals[0], st.vals[1]
	switch {
	case zero != one: // singleton vals = {b}
		b := one
		a.est = b
		if b == st.coinValue {
			a.decide(b)
		}
	default: // both values present
		a.est = st.coinValue
	}
	// Advance to the next round (decided parties keep participating until
	// the DECIDED quorum forms, so laggards never stall).
	delete(a.rounds, r-1) // keep the previous round for stragglers, GC older
	a.round = r + 1
	a.sendBval(a.round, a.est)
	// Process any barrier/coin state that already arrived for the new
	// round.
	a.tryAdvance(a.round)
}

func (a *ABA) decide(b bool) {
	if a.decided {
		return
	}
	a.decided = true
	a.decision = b
	a.span.End(obs.StageDecide, int64(a.round))
	if !a.decidedSent {
		a.decidedSent = true
		_ = a.cfg.Router.BroadcastJournaled("decided", Protocol, a.cfg.Instance, typeDecided, decidedBody{Value: b})
	}
	if a.cfg.Decide != nil {
		a.cfg.Decide(b)
	}
	a.checkTerminate()
}

func (a *ABA) onDecided(from int, v bool) {
	if a.decidedFrom[b2i(v)].Has(from) {
		return
	}
	a.decidedFrom[b2i(v)] = a.decidedFrom[b2i(v)].Add(from)
	// A DECIDED set outside the adversary structure contains an honest
	// decider; agreement makes adopting its value safe.
	if !a.decided && a.trust.HasHonest(a.self, a.decidedFrom[b2i(v)]) {
		a.decide(v)
	}
	a.checkTerminate()
}

// checkTerminate halts once a quorum has sent DECIDED for our decision:
// the honest parties among them guarantee every other honest party will
// adopt the decision without our further participation.
func (a *ABA) checkTerminate() {
	if a.terminated || !a.decided {
		return
	}
	if !a.trust.IsQuorum(a.self, a.decidedFrom[b2i(a.decision)]) {
		return
	}
	a.terminated = true
	a.rounds = nil
	a.cfg.Router.Unregister(Protocol, a.cfg.Instance)
	if a.cfg.OnTerminate != nil {
		a.cfg.OnTerminate()
	}
}
