package aba_test

import (
	"fmt"
	"testing"
	"time"

	"sintra/internal/aba"
	"sintra/internal/adversary"
	"sintra/internal/coin"
	"sintra/internal/netsim"
	"sintra/internal/testutil"
	"sintra/internal/wire"
)

type decision struct {
	party int
	value bool
}

// runAgreement spawns instances on the given parties with the given inputs
// and returns one decision per party.
func runAgreement(t *testing.T, c *testutil.Cluster, tag string, inputs map[int]bool) map[int]bool {
	t.Helper()
	ch := make(chan decision, len(inputs)*2)
	insts := make(map[int]*aba.ABA, len(inputs))
	for i := range inputs {
		i := i
		c.Routers[i].DoSync(func() {
			insts[i] = aba.New(aba.Config{
				Router:   c.Routers[i],
				Struct:   c.Struct,
				Instance: tag,
				Coin:     c.Pub.Coin,
				CoinKey:  c.Secrets[i].Coin,
				Decide:   func(v bool) { ch <- decision{party: i, value: v} },
			})
		})
	}
	for i, v := range inputs {
		if err := insts[i].Start(v); err != nil {
			t.Fatal(err)
		}
	}
	got := make(map[int]bool, len(inputs))
	deadline := time.After(60 * time.Second)
	for len(got) < len(inputs) {
		select {
		case d := <-ch:
			if _, dup := got[d.party]; dup {
				t.Fatalf("party %d decided twice", d.party)
			}
			got[d.party] = d.value
		case <-deadline:
			t.Fatalf("timeout: %d of %d decisions (tag %s)", len(got), len(inputs), tag)
		}
	}
	return got
}

func assertAgreement(t *testing.T, got map[int]bool) bool {
	t.Helper()
	var first bool
	var init bool
	for p, v := range got {
		if !init {
			first, init = v, true
			continue
		}
		if v != first {
			t.Fatalf("agreement violated: party %d decided %v, others %v", p, v, first)
		}
	}
	return first
}

func TestUnanimousValidity(t *testing.T) {
	st := adversary.MustThreshold(4, 1)
	c := testutil.NewCluster(t, st, testutil.Options{Seed: 2})
	for _, input := range []bool{false, true} {
		inputs := map[int]bool{0: input, 1: input, 2: input, 3: input}
		got := runAgreement(t, c, fmt.Sprintf("unanimous-%v", input), inputs)
		if v := assertAgreement(t, got); v != input {
			t.Fatalf("validity violated: all proposed %v, decided %v", input, v)
		}
	}
}

func TestSplitInputsAgree(t *testing.T) {
	st := adversary.MustThreshold(4, 1)
	c := testutil.NewCluster(t, st, testutil.Options{Seed: 3})
	for k := 0; k < 4; k++ {
		inputs := map[int]bool{}
		for i := 0; i < 4; i++ {
			inputs[i] = (i+k)%2 == 0
		}
		got := runAgreement(t, c, fmt.Sprintf("split-%d", k), inputs)
		assertAgreement(t, got)
	}
}

func TestCrashFaultTolerance(t *testing.T) {
	// Party 3 never starts; the remaining three must still terminate.
	st := adversary.MustThreshold(4, 1)
	c := testutil.NewCluster(t, st, testutil.Options{Seed: 5, Corrupted: []int{3}})
	inputs := map[int]bool{0: true, 1: false, 2: true}
	got := runAgreement(t, c, "crash", inputs)
	assertAgreement(t, got)
}

func TestManySequentialAgreements(t *testing.T) {
	st := adversary.MustThreshold(4, 1)
	c := testutil.NewCluster(t, st, testutil.Options{Seed: 7})
	ones := 0
	for k := 0; k < 8; k++ {
		inputs := map[int]bool{0: k%2 == 0, 1: k%3 == 0, 2: true, 3: false}
		got := runAgreement(t, c, fmt.Sprintf("seq-%d", k), inputs)
		if assertAgreement(t, got) {
			ones++
		}
	}
	t.Logf("decided 1 in %d of 8 agreements", ones)
}

func TestGeneralAdversaryStructureAgreement(t *testing.T) {
	// Example 1: all of class a (4 of 9 servers) is crashed; the honest
	// five must still reach agreement.
	st := adversary.Example1()
	c := testutil.NewCluster(t, st, testutil.Options{Seed: 11, Corrupted: []int{0, 1, 2, 3}})
	inputs := map[int]bool{4: true, 5: false, 6: true, 7: false, 8: true}
	got := runAgreement(t, c, "ex1", inputs)
	assertAgreement(t, got)
}

func TestExample2SiteAndOSFailure(t *testing.T) {
	// Example 2: one full site plus one full OS (7 of 16 servers) crashed;
	// any threshold scheme on 16 servers tolerates at most 5.
	st := adversary.Example2()
	var corrupted []int
	seen := map[int]bool{}
	for i := 0; i < 4; i++ {
		for _, p := range []int{adversary.Example2Party(0, i), adversary.Example2Party(i, 0)} {
			if !seen[p] {
				seen[p] = true
				corrupted = append(corrupted, p)
			}
		}
	}
	c := testutil.NewCluster(t, st, testutil.Options{Seed: 13, Corrupted: corrupted})
	inputs := map[int]bool{}
	for i := 0; i < 16; i++ {
		if !seen[i] {
			inputs[i] = i%2 == 0
		}
	}
	got := runAgreement(t, c, "ex2", inputs)
	assertAgreement(t, got)
}

func TestAdversarialSchedulerTermination(t *testing.T) {
	// Starve one honest party's traffic: the protocol must still
	// terminate (asynchronous liveness), and the starved party must still
	// decide the same value eventually.
	st := adversary.MustThreshold(4, 1)
	sched := netsim.NewDelayScheduler(17, func(m *wire.Message) bool {
		return m.From == 2 || m.To == 2
	})
	c := testutil.NewCluster(t, st, testutil.Options{Scheduler: sched})
	inputs := map[int]bool{0: true, 1: false, 2: true, 3: false}
	got := runAgreement(t, c, "starved", inputs)
	assertAgreement(t, got)
}

func TestByzantineDoubleVoter(t *testing.T) {
	// Party 0 is corrupted: it BVALs and AUXes both values in round 1 and
	// sends conflicting DECIDED claims. The three honest parties must
	// agree regardless.
	st := adversary.MustThreshold(4, 1)
	c := testutil.NewCluster(t, st, testutil.Options{Seed: 19, Corrupted: []int{0}})
	ep := c.Net.Endpoint(0)
	tag := "byz"
	sendAll := func(msgType string, body any) {
		for to := 1; to < 4; to++ {
			ep.Send(wire.Message{
				To: to, Protocol: aba.Protocol, Instance: tag,
				Type: msgType, Payload: wire.MustMarshalBody(body),
			})
		}
	}
	type boolRound struct {
		Round int
		Value bool
	}
	type decidedB struct {
		Value bool
	}
	sendAll("BVAL", boolRound{Round: 1, Value: true})
	sendAll("BVAL", boolRound{Round: 1, Value: false})
	sendAll("AUX", boolRound{Round: 1, Value: true})
	sendAll("DECIDED", decidedB{Value: true})

	inputs := map[int]bool{1: false, 2: false, 3: true}
	got := runAgreement(t, c, tag, inputs)
	assertAgreement(t, got)
}

func TestDecisionStableAcrossSeeds(t *testing.T) {
	// With unanimous input the decision must equal the input for every
	// scheduler seed (validity is deterministic, not probabilistic).
	st := adversary.MustThreshold(4, 1)
	for seed := int64(1); seed <= 5; seed++ {
		c := testutil.NewCluster(t, st, testutil.Options{Seed: seed})
		inputs := map[int]bool{0: true, 1: true, 2: true, 3: true}
		got := runAgreement(t, c, fmt.Sprintf("stable-%d", seed), inputs)
		if v := assertAgreement(t, got); !v {
			t.Fatalf("seed %d: validity violated", seed)
		}
		c.Stop()
	}
}

func TestByzantineCoinShareFlood(t *testing.T) {
	// Party 0 floods forged coin shares and oversized rounds; the DLEQ
	// proofs reject the shares and the honest parties agree regardless.
	st := adversary.MustThreshold(4, 1)
	c := testutil.NewCluster(t, st, testutil.Options{Seed: 41, Corrupted: []int{0}})
	ep := c.Net.Endpoint(0)
	tag := "coinflood"
	type coinB struct {
		Round  int
		Shares []coin.Share
	}
	g := c.Pub.Coin.Group()
	for r := 1; r <= 3; r++ {
		for to := 1; to < 4; to++ {
			forged := []coin.Share{{Party: 0, ID: 0, Value: g.Generator(), Proof: nil}}
			ep.Send(wire.Message{
				To: to, Protocol: aba.Protocol, Instance: tag,
				Type: "COIN", Payload: wire.MustMarshalBody(coinB{Round: r, Shares: forged}),
			})
		}
	}
	// Also flood BVALs for absurd rounds to probe state growth handling.
	type boolRound struct {
		Round int
		Value bool
	}
	for to := 1; to < 4; to++ {
		ep.Send(wire.Message{
			To: to, Protocol: aba.Protocol, Instance: tag,
			Type: "BVAL", Payload: wire.MustMarshalBody(boolRound{Round: 1 << 20, Value: true}),
		})
	}
	inputs := map[int]bool{1: true, 2: false, 3: false}
	got := runAgreement(t, c, tag, inputs)
	assertAgreement(t, got)
}

func TestAgreementWithForceCertScheme(t *testing.T) {
	// The agreement layer must be indifferent to the signature scheme the
	// surrounding deployment uses (coin only); exercised with ForceCert
	// clusters to cover the dealer path.
	st := adversary.MustThreshold(4, 1)
	c := testutil.NewCluster(t, st, testutil.Options{Seed: 43, ForceCert: true})
	inputs := map[int]bool{0: true, 1: true, 2: false, 3: false}
	assertAgreement(t, runAgreement(t, c, "fc", inputs))
}
