package scabc_test

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"sintra/internal/adversary"
	"sintra/internal/scabc"
	"sintra/internal/testutil"
)

type harness struct {
	c     *testutil.Cluster
	insts map[int]*scabc.SCABC

	mu      sync.Mutex
	logs    map[int][][]byte
	invalid map[int]int
	cond    *sync.Cond
}

func newHarness(t *testing.T, c *testutil.Cluster, parties []int) *harness {
	t.Helper()
	h := &harness{
		c:       c,
		insts:   make(map[int]*scabc.SCABC, len(parties)),
		logs:    make(map[int][][]byte, len(parties)),
		invalid: make(map[int]int, len(parties)),
	}
	h.cond = sync.NewCond(&h.mu)
	for _, i := range parties {
		i := i
		c.Routers[i].DoSync(func() {
			h.insts[i] = scabc.New(scabc.Config{
				Router:   c.Routers[i],
				Struct:   c.Struct,
				Instance: "notary",
				Identity: c.Pub.Identity,
				IDKey:    c.Secrets[i].Identity,
				Coin:     c.Pub.Coin,
				CoinKey:  c.Secrets[i].Coin,
				Scheme:   c.Pub.QuorumSig(),
				Key:      c.Secrets[i].SigQuorum,
				Enc:      c.Pub.Enc,
				EncKey:   c.Secrets[i].Enc,
				Deliver: func(seq int64, req []byte) {
					h.mu.Lock()
					defer h.mu.Unlock()
					if int64(len(h.logs[i])) != seq {
						t.Errorf("party %d: plaintext seq %d but log has %d", i, seq, len(h.logs[i]))
					}
					h.logs[i] = append(h.logs[i], req)
					h.cond.Broadcast()
				},
				OnInvalid: func(int64) {
					h.mu.Lock()
					defer h.mu.Unlock()
					h.invalid[i]++
					h.cond.Broadcast()
				},
			})
		})
	}
	return h
}

func (h *harness) wait(t *testing.T, parties []int, want int, timeout time.Duration) {
	t.Helper()
	done := make(chan struct{})
	go func() {
		defer close(done)
		h.mu.Lock()
		defer h.mu.Unlock()
		for {
			ok := true
			for _, p := range parties {
				if len(h.logs[p]) < want {
					ok = false
					break
				}
			}
			if ok {
				return
			}
			h.cond.Wait()
		}
	}()
	select {
	case <-done:
	case <-time.After(timeout):
		h.mu.Lock()
		counts := map[int]int{}
		for _, p := range parties {
			counts[p] = len(h.logs[p])
		}
		h.mu.Unlock()
		t.Fatalf("timeout: want %d, have %v", want, counts)
	}
}

func (h *harness) assertSameOrder(t *testing.T, parties []int) {
	t.Helper()
	h.mu.Lock()
	defer h.mu.Unlock()
	ref := h.logs[parties[0]]
	for _, p := range parties[1:] {
		log := h.logs[p]
		n := len(ref)
		if len(log) < n {
			n = len(log)
		}
		for k := 0; k < n; k++ {
			if !bytes.Equal(ref[k], log[k]) {
				t.Fatalf("order violated at %d between %d and %d", k, parties[0], p)
			}
		}
	}
}

func TestConfidentialOrderingEndToEnd(t *testing.T) {
	st := adversary.MustThreshold(4, 1)
	c := testutil.NewCluster(t, st, testutil.Options{Seed: 2})
	parties := []int{0, 1, 2, 3}
	h := newHarness(t, c, parties)
	const total = 4
	for k := 0; k < total; k++ {
		ct, err := scabc.Encrypt(c.Pub.Enc, "notary", []byte(fmt.Sprintf("secret-%d", k)))
		if err != nil {
			t.Fatal(err)
		}
		if err := h.insts[k%4].Submit(ct); err != nil {
			t.Fatal(err)
		}
	}
	h.wait(t, parties, total, 120*time.Second)
	h.assertSameOrder(t, parties)
	// All requests present.
	h.mu.Lock()
	defer h.mu.Unlock()
	seen := map[string]bool{}
	for _, p := range h.logs[0] {
		seen[string(p)] = true
	}
	for k := 0; k < total; k++ {
		if !seen[fmt.Sprintf("secret-%d", k)] {
			t.Fatalf("request %d missing", k)
		}
	}
}

func TestInvalidCiphertextSkippedDeterministically(t *testing.T) {
	st := adversary.MustThreshold(4, 1)
	c := testutil.NewCluster(t, st, testutil.Options{Seed: 3})
	parties := []int{0, 1, 2, 3}
	h := newHarness(t, c, parties)
	// Garbage bytes ordered through the channel must be skipped by all.
	if err := h.insts[0].Submit([]byte("not a ciphertext at all")); err != nil {
		t.Fatal(err)
	}
	good, err := scabc.Encrypt(c.Pub.Enc, "notary", []byte("valid request"))
	if err != nil {
		t.Fatal(err)
	}
	if err := h.insts[1].Submit(good); err != nil {
		t.Fatal(err)
	}
	h.wait(t, parties, 1, 90*time.Second)
	h.waitInvalid(t, parties, 1, 90*time.Second)
	h.assertSameOrder(t, parties)
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, p := range parties {
		if h.invalid[p] != 1 {
			t.Fatalf("party %d skipped %d ciphertexts, want 1", p, h.invalid[p])
		}
		if !bytes.Equal(h.logs[p][0], []byte("valid request")) {
			t.Fatalf("party %d delivered %q", p, h.logs[p][0])
		}
	}
}

// waitInvalid blocks until every listed party skipped at least want
// invalid ciphertexts.
func (h *harness) waitInvalid(t *testing.T, parties []int, want int, timeout time.Duration) {
	t.Helper()
	done := make(chan struct{})
	go func() {
		defer close(done)
		h.mu.Lock()
		defer h.mu.Unlock()
		for {
			ok := true
			for _, p := range parties {
				if h.invalid[p] < want {
					ok = false
					break
				}
			}
			if ok {
				return
			}
			h.cond.Wait()
		}
	}()
	select {
	case <-done:
	case <-time.After(timeout):
		t.Fatalf("timeout waiting for invalid skips")
	}
}

func TestWrongLabelRejected(t *testing.T) {
	// A ciphertext created for another service instance must be skipped:
	// the label is authenticated by the TDH2 proof.
	st := adversary.MustThreshold(4, 1)
	c := testutil.NewCluster(t, st, testutil.Options{Seed: 5})
	parties := []int{0, 1, 2, 3}
	h := newHarness(t, c, parties)
	alien, err := scabc.Encrypt(c.Pub.Enc, "other-service", []byte("replayed"))
	if err != nil {
		t.Fatal(err)
	}
	if err := h.insts[0].Submit(alien); err != nil {
		t.Fatal(err)
	}
	good, err := scabc.Encrypt(c.Pub.Enc, "notary", []byte("mine"))
	if err != nil {
		t.Fatal(err)
	}
	if err := h.insts[0].Submit(good); err != nil {
		t.Fatal(err)
	}
	h.wait(t, parties, 1, 90*time.Second)
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, p := range parties {
		if len(h.logs[p]) != 1 || !bytes.Equal(h.logs[p][0], []byte("mine")) {
			t.Fatalf("party %d log: %q", p, h.logs[p])
		}
	}
}

func TestProgressWithCrashedParty(t *testing.T) {
	st := adversary.MustThreshold(4, 1)
	c := testutil.NewCluster(t, st, testutil.Options{Seed: 7, Corrupted: []int{2}})
	parties := []int{0, 1, 3}
	h := newHarness(t, c, parties)
	ct, err := scabc.Encrypt(c.Pub.Enc, "notary", []byte("despite crash"))
	if err != nil {
		t.Fatal(err)
	}
	if err := h.insts[0].Submit(ct); err != nil {
		t.Fatal(err)
	}
	h.wait(t, parties, 1, 120*time.Second)
	h.assertSameOrder(t, parties)
}

func TestCiphertextsHideContentUntilOrdered(t *testing.T) {
	// Sanity property: two encryptions of the same request are unlinkable
	// ciphertext bytes (randomized encryption).
	st := adversary.MustThreshold(4, 1)
	c := testutil.NewCluster(t, st, testutil.Options{})
	ct1, _ := scabc.Encrypt(c.Pub.Enc, "notary", []byte("same"))
	ct2, _ := scabc.Encrypt(c.Pub.Enc, "notary", []byte("same"))
	if bytes.Equal(ct1, ct2) {
		t.Fatal("deterministic encryption leaks request equality")
	}
}

func TestPipelinedConfidentialRequests(t *testing.T) {
	// A burst of 10 encrypted requests from all parties: decryptions
	// complete out of order, but delivery must stay dense and identical.
	st := adversary.MustThreshold(4, 1)
	c := testutil.NewCluster(t, st, testutil.Options{Seed: 47})
	parties := []int{0, 1, 2, 3}
	h := newHarness(t, c, parties)
	const total = 10
	for k := 0; k < total; k++ {
		ct, err := scabc.Encrypt(c.Pub.Enc, "notary", []byte(fmt.Sprintf("burst-%02d", k)))
		if err != nil {
			t.Fatal(err)
		}
		if err := h.insts[k%4].Submit(ct); err != nil {
			t.Fatal(err)
		}
	}
	h.wait(t, parties, total, 180*time.Second)
	h.assertSameOrder(t, parties)
	h.mu.Lock()
	defer h.mu.Unlock()
	seen := map[string]bool{}
	for _, p := range h.logs[0] {
		if seen[string(p)] {
			t.Fatalf("duplicate delivery %q", p)
		}
		seen[string(p)] = true
	}
	if len(seen) != total {
		t.Fatalf("delivered %d distinct, want %d", len(seen), total)
	}
}
