// Package scabc implements secure causal atomic broadcast: atomic
// broadcast of threshold-encrypted requests, decrypted only after their
// position in the total order is fixed (paper §3, following Reiter &
// Birman's "secure causality"). A client encrypts its request under the
// service's single TDH2 public key with the service instance as label;
// the servers order the ciphertext with atomic broadcast, then exchange
// decryption shares and deliver the plaintext.
//
// Input causality holds because TDH2 is secure against adaptive
// chosen-ciphertext attacks: a corrupted server that sees a ciphertext in
// flight can neither read it nor construct a *related* ciphertext of its
// own, so it cannot front-run the request (the paper's notary scenario,
// §5.2). Invalid ciphertexts — including replays under a wrong label —
// are skipped deterministically by every honest party.
package scabc

import (
	"bytes"
	"crypto/rand"
	"fmt"
	"sync"
	"time"

	"sintra/internal/abc"
	"sintra/internal/adversary"
	"sintra/internal/coin"
	"sintra/internal/engine"
	"sintra/internal/identity"
	"sintra/internal/obs"
	"sintra/internal/threnc"
	"sintra/internal/thresig"
	"sintra/internal/trust"
	"sintra/internal/wire"
)

// Protocol is the wire protocol name of the decryption-share exchange.
const Protocol = "scabc"

// typeShares carries decryption shares for one sequence number.
const typeShares = "SHARES"

// maxPendingWindow bounds how far ahead of the delivery frontier share
// messages are buffered.
const maxPendingWindow = 4096

type sharesBody struct {
	Seq    int64
	Shares []threnc.Share
}

// Config wires one secure-causal-atomic-broadcast instance.
type Config struct {
	// Router is the party's protocol router.
	Router *engine.Router
	// Struct is the adversary structure.
	Struct *adversary.Structure
	// Trust optionally overrides the quorum backend for the whole
	// protocol stack below (atomic broadcast down to reliable
	// broadcast); nil wraps Struct in the symmetric backend.
	Trust trust.Quorums
	// Instance identifies the replicated service; it doubles as the
	// required ciphertext label.
	Instance string
	// Identity/IDKey sign the embedded atomic-broadcast proposals.
	Identity *identity.Registry
	IDKey    *identity.Key
	// Coin/CoinKey drive the embedded agreement protocols.
	Coin    *coin.Params
	CoinKey *coin.SecretKey
	// Scheme/Key are the quorum-rule threshold signatures for the
	// embedded consistent broadcasts.
	Scheme thresig.Scheme
	Key    *thresig.SecretKey
	// Enc is the service's TDH2 key; EncKey the party's decryption key.
	Enc    *threnc.Params
	EncKey *threnc.SecretKey
	// Deliver is called with dense sequence numbers and decrypted
	// requests, in the same order on every honest party.
	Deliver func(seq int64, request []byte)
	// OnInvalid is called (optionally) when an ordered ciphertext is
	// skipped as invalid.
	OnInvalid func(abcSeq int64)
	// BatchSize is passed to the embedded atomic broadcast.
	BatchSize int
	// MaxBatchSize is passed to the embedded atomic broadcast as the
	// adaptive batching ceiling; see abc.Config.MaxBatchSize.
	MaxBatchSize int
	// RetentionWindow is passed to the embedded atomic broadcast as the
	// delivered-digest dedup bound; see abc.Config.RetentionWindow.
	// Secure-causal mode relies on the deterministic retention prune for
	// bounded memory — full checkpoint state transfer is atomic-mode only
	// (the pending-decrypt pipeline is not settled at round boundaries).
	RetentionWindow int64
	// CodedThreshold is passed to the embedded atomic broadcast; see
	// abc.Config.CodedThreshold. Chunking, by contrast, is always off in
	// secure-causal mode: the decryption pipeline flushes by dense ABC
	// sequence numbers, and chunk frames would leave gaps.
	CodedThreshold int
}

// pending tracks one ordered ciphertext awaiting decryption.
type pending struct {
	ct       *threnc.Ciphertext
	combiner *threnc.Combiner
	early    []threnc.Share
	sent     bool
	plain    []byte
	done     bool
	invalid  bool
	ordered  time.Time // when the position was fixed (observer on only)
}

// SCABC is one secure-causal instance; dispatch-goroutine only.
type SCABC struct {
	cfg Config
	abc *abc.ABC

	byABCSeq map[int64]*pending
	nextABC  int64 // next ABC sequence to flush
	outSeq   int64 // next plaintext sequence to assign

	// cts publishes ordered, validated ciphertexts (ABC seq -> immutable
	// *threnc.Ciphertext) for the parallel Verify stage: share proofs can
	// only be checked against the ciphertext they decrypt, which becomes
	// known at apply time. Written on the dispatch goroutine, read by
	// verify workers.
	cts sync.Map

	span *obs.Span
	// decryptLat measures order-fixed to plaintext-delivered: the cost of
	// the decryption-share exchange on top of atomic broadcast.
	decryptLat *obs.Histogram
}

// New creates and registers an instance together with its embedded atomic
// broadcast (dispatch goroutine or pre-Run).
func New(cfg Config) *SCABC {
	s := &SCABC{
		cfg:      cfg,
		byABCSeq: make(map[int64]*pending),
		span:     obs.StartSpan(cfg.Router.Observer(), cfg.Router.Self(), Protocol, cfg.Instance),
	}
	if reg := s.span.Registry(); reg != nil {
		s.decryptLat = reg.Histogram(Protocol + ".latency.decrypt")
	}
	s.abc = abc.New(abc.Config{
		Router:          cfg.Router,
		Struct:          cfg.Struct,
		Trust:           cfg.Trust,
		Instance:        cfg.Instance + "/ord",
		Identity:        cfg.Identity,
		IDKey:           cfg.IDKey,
		Coin:            cfg.Coin,
		CoinKey:         cfg.CoinKey,
		Scheme:          cfg.Scheme,
		Key:             cfg.Key,
		BatchSize:       cfg.BatchSize,
		MaxBatchSize:    cfg.MaxBatchSize,
		RetentionWindow: cfg.RetentionWindow,
		CodedThreshold:  cfg.CodedThreshold,
		ChunkSize:       -1, // frames would break the dense-seq flush
		Deliver:         s.onOrdered,
	})
	cfg.Router.RegisterSplit(Protocol, cfg.Instance, engine.SplitHandler{
		Verify:      s.verifyMsg,
		BatchVerify: s.batchVerify,
		Apply:       s.apply,
		VerifyTypes: []string{typeShares},
	})
	return s
}

// Encrypt produces the ciphertext bytes a client submits to the service:
// a TDH2 encryption of the request, labelled with the instance name.
func Encrypt(enc *threnc.Params, instance string, request []byte) ([]byte, error) {
	ct, err := enc.Encrypt(request, []byte(instance), rand.Reader)
	if err != nil {
		return nil, err
	}
	return wire.MarshalBody(ct)
}

// Submit hands an encrypted request (from Encrypt) to the ordering layer.
// Safe from any goroutine.
func (s *SCABC) Submit(ciphertext []byte) error {
	return s.abc.Broadcast(ciphertext)
}

// Seq returns the number of plaintexts delivered so far.
func (s *SCABC) Seq() int64 { return s.outSeq }

// onOrdered runs when the embedded atomic broadcast fixes a ciphertext's
// position.
func (s *SCABC) onOrdered(seq int64, payload []byte) {
	p := s.pendingFor(seq)
	if s.decryptLat != nil {
		p.ordered = time.Now()
	}
	var ct threnc.Ciphertext
	if !s.cfg.Router.Decode(payload, &ct) ||
		!bytes.Equal(ct.Label, []byte(s.cfg.Instance)) ||
		s.cfg.Enc.VerifyCiphertext(&ct) != nil {
		p.invalid = true
		p.done = true
		s.span.Event(obs.StageDrop, seq, "invalid ciphertext")
		s.flush()
		return
	}
	p.ct = &ct
	combiner, err := threnc.NewCombiner(s.cfg.Enc, &ct)
	if err != nil {
		p.invalid = true
		p.done = true
		s.flush()
		return
	}
	p.combiner = combiner
	s.cts.Store(seq, p.ct)
	// Release our decryption shares only now — after the position is
	// fixed — and feed any early-arrived shares from faster parties.
	if !p.sent {
		p.sent = true
		shares, err := s.cfg.Enc.DecryptShares(s.cfg.EncKey, &ct, rand.Reader)
		if err == nil {
			_ = s.cfg.Router.BroadcastJournaled(fmt.Sprintf("shares/%d", seq),
				Protocol, s.cfg.Instance, typeShares, sharesBody{Seq: seq, Shares: shares})
		}
	}
	for _, sh := range p.early {
		_ = p.combiner.Add(sh)
	}
	p.early = nil
	s.tryDecrypt(seq)
}

func (s *SCABC) pendingFor(seq int64) *pending {
	p, ok := s.byABCSeq[seq]
	if !ok {
		p = &pending{}
		s.byABCSeq[seq] = p
	}
	return p
}

// sharesVerdict is the Verify-stage result for SHARES messages: the
// sequence number and the subset of decryption shares whose proofs
// checked out against the published ciphertext.
type sharesVerdict struct {
	seq    int64
	shares []threnc.Share
}

// verifyMsg is the parallel Verify stage: decryption-share proofs are
// checked against the ciphertext snapshot published when the position
// was fixed. A share arriving before its ciphertext is ordered locally
// defers (nil verdict) and is buffered by Apply as before.
func (s *SCABC) verifyMsg(from int, msgType string, payload []byte) any {
	if msgType != typeShares {
		return nil
	}
	var body sharesBody
	// Plain unmarshal, not Router.Decode: the nil-verdict fallback would
	// decode again and double-count router.malformed.
	if wire.UnmarshalBody(payload, &body) != nil {
		return nil
	}
	ctv, ok := s.cts.Load(body.Seq)
	if !ok {
		return nil
	}
	ct := ctv.(*threnc.Ciphertext)
	valid := make([]threnc.Share, 0, len(body.Shares))
	for _, sh := range body.Shares {
		if s.cfg.Enc.VerifyShare(ct, sh) == nil {
			valid = append(valid, sh)
		}
	}
	return &sharesVerdict{seq: body.Seq, shares: valid}
}

// batchVerify is the coalescing Verify stage for SHARES bursts: the
// decryption shares of all drained messages — possibly for several
// ordered ciphertexts — fold into one DLEQ batch, with each
// ciphertext's context digest computed once. Messages whose ciphertext
// is not ordered locally yet keep a nil verdict and are buffered by
// Apply as before.
func (s *SCABC) batchVerify(msgs []*wire.Message) ([]any, int) {
	verdicts := make([]any, len(msgs))
	bodies := make([]*sharesBody, len(msgs))
	cts := make([]*threnc.Ciphertext, len(msgs))
	bv := s.cfg.Enc.NewBatchVerifier()
	for i, m := range msgs {
		var body sharesBody
		if wire.UnmarshalBody(m.Payload, &body) != nil {
			continue
		}
		ctv, ok := s.cts.Load(body.Seq)
		if !ok {
			continue
		}
		bodies[i] = &body
		cts[i] = ctv.(*threnc.Ciphertext)
		for _, sh := range body.Shares {
			bv.Add(cts[i], sh)
		}
	}
	ok := bv.Verify()
	culprits, k := 0, 0
	for i, body := range bodies {
		if body == nil {
			continue
		}
		valid := make([]threnc.Share, 0, len(body.Shares))
		for _, sh := range body.Shares {
			if ok[k] {
				valid = append(valid, sh)
			} else {
				culprits++
			}
			k++
		}
		verdicts[i] = &sharesVerdict{seq: body.Seq, shares: valid}
	}
	return verdicts, culprits
}

// Handle processes decryption-share messages without a pipeline verdict
// (the legacy single-stage entry point, kept for tests and direct
// callers).
func (s *SCABC) Handle(from int, msgType string, payload []byte) {
	s.apply(from, msgType, payload, nil)
}

// apply is the serialized Apply stage; a non-nil verdict carries shares
// already checked against the ordered ciphertext.
func (s *SCABC) apply(from int, msgType string, payload []byte, verdict any) {
	if msgType != typeShares {
		return
	}
	if v, ok := verdict.(*sharesVerdict); ok {
		s.onSharesVerified(v.seq, v.shares)
		return
	}
	var body sharesBody
	if !s.cfg.Router.Decode(payload, &body) {
		return
	}
	if body.Seq < s.nextABC || body.Seq > s.nextABC+maxPendingWindow {
		return
	}
	p := s.pendingFor(body.Seq)
	if p.done {
		return
	}
	if p.combiner == nil {
		// Ciphertext not ordered locally yet; buffer a bounded number.
		if len(p.early) < 4*s.cfg.Router.N() {
			p.early = append(p.early, body.Shares...)
		}
		return
	}
	for _, sh := range body.Shares {
		_ = p.combiner.Add(sh) // invalid shares rejected inside
	}
	s.tryDecrypt(body.Seq)
}

// onSharesVerified consumes shares the Verify stage already checked.
// Because the ciphertext snapshot is published at apply time and applies
// are serialized, a verdict implies onOrdered already ran for this seq;
// the defensive combiner-nil path re-buffers (shares are then re-checked
// by Combiner.Add).
func (s *SCABC) onSharesVerified(seq int64, shares []threnc.Share) {
	if seq < s.nextABC || seq > s.nextABC+maxPendingWindow {
		return
	}
	p := s.pendingFor(seq)
	if p.done {
		return
	}
	if p.combiner == nil {
		if len(p.early) < 4*s.cfg.Router.N() {
			p.early = append(p.early, shares...)
		}
		return
	}
	for _, sh := range shares {
		p.combiner.AddVerified(sh)
	}
	s.tryDecrypt(seq)
}

func (s *SCABC) tryDecrypt(seq int64) {
	p := s.pendingFor(seq)
	if p.done || p.combiner == nil || !p.combiner.Ready() {
		return
	}
	plain, err := p.combiner.Decrypt()
	if err != nil {
		return
	}
	p.plain = plain
	p.done = true
	s.flush()
}

// flush delivers decrypted requests strictly in order.
func (s *SCABC) flush() {
	for {
		p, ok := s.byABCSeq[s.nextABC]
		if !ok || !p.done {
			return
		}
		if p.invalid {
			if s.cfg.OnInvalid != nil {
				s.cfg.OnInvalid(s.nextABC)
			}
		} else {
			seq := s.outSeq
			s.outSeq++
			s.span.Event(obs.StageDeliver, seq, "")
			if s.decryptLat != nil && !p.ordered.IsZero() {
				s.decryptLat.ObserveSince(p.ordered)
			}
			if s.cfg.Deliver != nil {
				s.cfg.Deliver(seq, p.plain)
			}
		}
		delete(s.byABCSeq, s.nextABC)
		s.cts.Delete(s.nextABC)
		s.nextABC++
	}
}

// String describes the instance (for logs).
func (s *SCABC) String() string {
	return fmt.Sprintf("scabc(%s)", s.cfg.Instance)
}
