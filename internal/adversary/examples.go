package adversary

import (
	"fmt"
	"sort"
)

// Classification assigns every party the value of one attribute (operating
// system, physical location, administrative domain, ...), following §4.3 of
// the paper: if the cost of corrupting a party varies with the attribute,
// the classification can be exploited so that all parties in one class may
// be corrupted simultaneously.
type Classification struct {
	// Values[i] is the attribute value of party i.
	Values []string
}

// NewClassification builds a classification from per-party values.
func NewClassification(values []string) *Classification {
	return &Classification{Values: append([]string(nil), values...)}
}

// N returns the number of classified parties.
func (c *Classification) N() int { return len(c.Values) }

// Parties returns the indices of the parties with the given value.
func (c *Classification) Parties(value string) []int {
	var out []int
	for i, v := range c.Values {
		if v == value {
			out = append(out, i)
		}
	}
	return out
}

// DistinctValues returns the sorted distinct attribute values.
func (c *Classification) DistinctValues() []string {
	seen := make(map[string]bool, len(c.Values))
	var out []string
	for _, v := range c.Values {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	sort.Strings(out)
	return out
}

// Chi returns the characteristic formula χ_v of the paper: satisfied iff
// the set contains at least one party of the given class.
func (c *Classification) Chi(value string) *Formula {
	return AnySubsetOf(c.Parties(value))
}

// ClassCoverage returns Θ_k(χ_v1, ..., χ_vm): the set must contain parties
// from at least k different classes.
func (c *Classification) ClassCoverage(k int) *Formula {
	values := c.DistinctValues()
	children := make([]*Formula, len(values))
	for i, v := range values {
		children[i] = c.Chi(v)
	}
	return Threshold(k, children...)
}

// Example1 constructs the paper's first worked example (§4.3, Example 1):
// nine servers with one attribute class = {a,b,c,d},
//
//	class(0..3)=a, class(4..5)=b, class(6..7)=c, class(8)=d,
//
// tolerating the corruption of at most two arbitrary servers or of all
// servers in any single class. The access structure is
//
//	Θ_3^9(S) ∧ Θ_2^4(χ_a, χ_b, χ_c, χ_d):
//
// secrets are reconstructed by coalitions of at least three servers that
// also cover at least two different classes.
func Example1() *Structure {
	c := Example1Classes()
	all := make([]int, 9)
	for i := range all {
		all[i] = i
	}
	access := And(ThresholdOf(3, all), c.ClassCoverage(2))
	// Here the adversary structure is exactly the complement of the
	// access structure: corruptible ⇔ not qualified.
	st, err := NewGeneralFromPredicate(9, func(s Set) bool { return !access.Eval(s) }, access)
	if err != nil {
		panic(fmt.Sprintf("adversary: Example1 construction: %v", err))
	}
	return st
}

// Example1Classes returns the attribute assignment of Example 1.
func Example1Classes() *Classification {
	return NewClassification([]string{"a", "a", "a", "a", "b", "b", "c", "c", "d"})
}

// GridParty maps a two-attribute coordinate to the party index used by
// TwoAttributeGrid: party = row*cols + col.
func GridParty(row, col, cols int) int { return row*cols + col }

// TwoAttributeGrid builds the paper's Example 2 family for a grid of
// rows×cols servers classified by two independent attributes (one server
// per combination, party index = row*cols + col).
//
// The adversary may simultaneously corrupt all servers with one attribute-1
// value AND all servers with one attribute-2 value, so the maximal
// adversary sets are A* = { row_r ∪ col_c : r, c } — any three such sets
// leave at least one grid cell uncovered, so Q³ holds whenever rows,
// cols >= 4.
//
// The compatible secret-sharing access structure is the paper's two-level
// scheme: for each row value v, the sub-secret x_v is shared k-out-of-cols
// among the servers of that row; the top-level row secret needs k of the
// x_v. Columns are treated symmetrically and both top-level secrets are
// required:
//
//	access = Θ_k(x_row1..) ∧ Θ_k(y_col1..)
//
// Note the access structure is strictly coarser than the complement of A*:
// that is fine (and validated) — corruptible sets are never qualified, and
// the honest remainder of any quorum is always qualified.
func TwoAttributeGrid(rows, cols, k int) (*Structure, error) {
	n := rows * cols
	xs := make([]*Formula, rows)
	for r := 0; r < rows; r++ {
		leaves := make([]*Formula, cols)
		for c := 0; c < cols; c++ {
			leaves[c] = Leaf(GridParty(r, c, cols))
		}
		xs[r] = Threshold(k, leaves...)
	}
	ys := make([]*Formula, cols)
	for c := 0; c < cols; c++ {
		leaves := make([]*Formula, rows)
		for r := 0; r < rows; r++ {
			leaves[r] = Leaf(GridParty(r, c, cols))
		}
		ys[c] = Threshold(k, leaves...)
	}
	access := And(Threshold(k, xs...), Threshold(k, ys...))

	maxSets := make([]Set, 0, rows*cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			var s Set
			for cc := 0; cc < cols; cc++ {
				s = s.Add(GridParty(r, cc, cols))
			}
			for rr := 0; rr < rows; rr++ {
				s = s.Add(GridParty(rr, c, cols))
			}
			maxSets = append(maxSets, s)
		}
	}
	return NewGeneral(n, maxSets, access)
}

// Example2 constructs the paper's second worked example (§4.3, Example 2):
// sixteen servers of a multi-national directory service, classified by
// location class₁ = {NewYork, Tokyo, Zurich, Haifa} and operating system
// class₂ = {AIX, WindowsNT, Linux, Solaris}, one server per combination
// (party index = 4*location + os). The system tolerates the simultaneous
// corruption of all servers at one location AND all servers running one
// operating system — up to seven servers — whereas any threshold scheme on
// sixteen servers tolerates at most five.
func Example2() *Structure {
	st, err := TwoAttributeGrid(4, 4, 2)
	if err != nil {
		panic(fmt.Sprintf("adversary: Example2 construction: %v", err))
	}
	return st
}

// Example2Locations and Example2Systems name the attribute values of
// Example 2 in party-index order (location-major).
var (
	Example2Locations = []string{"NewYork", "Tokyo", "Zurich", "Haifa"}
	Example2Systems   = []string{"AIX", "WindowsNT", "Linux", "Solaris"}
)

// Example2Party returns the party index of the server at the given
// location and operating system (both 0..3).
func Example2Party(location, system int) int { return GridParty(location, system, 4) }

// ClassifiedThreshold generalizes the paper's Example 1 construction to
// any attribute assignment: the adversary may corrupt at most t arbitrary
// servers OR all servers of any single class. The access structure is the
// paper's conjunction — coalitions of at least t+1 servers covering at
// least minClasses distinct classes:
//
//	access = Θ_{t+1}^n(S) ∧ Θ_{minClasses}(χ_v1, ..., χ_vm)
//
// Example 1 is ClassifiedThreshold(Example1Classes(), 2, 2). The returned
// structure is validated for sharing compatibility; whether it satisfies
// Q³ depends on the class sizes — check Q3() before dealing.
func ClassifiedThreshold(c *Classification, t, minClasses int) (*Structure, error) {
	n := c.N()
	if n < 1 {
		return nil, fmt.Errorf("adversary: empty classification")
	}
	values := c.DistinctValues()
	if minClasses < 1 || minClasses > len(values) {
		return nil, fmt.Errorf("adversary: minClasses %d out of range [1,%d]", minClasses, len(values))
	}
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	access := And(ThresholdOf(t+1, all), c.ClassCoverage(minClasses))
	return NewGeneralFromPredicate(n, func(s Set) bool { return !access.Eval(s) }, access)
}

// NewWeightedThreshold builds the weighted threshold structure the paper
// sketches in §4.3 ("traditional weighted thresholds ... can be obtained
// by allocating several logical parties to one physical party"): party i
// carries weight weights[i], and the adversary may corrupt any set of
// total weight at most maxWeight. The access structure is the complement
// (total weight >= maxWeight+1), built as an Or over the minimal
// qualified sets.
func NewWeightedThreshold(weights []int, maxWeight int) (*Structure, error) {
	n := len(weights)
	if n < 1 || n > maxEnumerateParties {
		return nil, fmt.Errorf("adversary: weighted thresholds support 1..%d parties, got %d", maxEnumerateParties, n)
	}
	total := 0
	for i, w := range weights {
		if w < 1 {
			return nil, fmt.Errorf("adversary: weight of party %d must be positive", i)
		}
		total += w
	}
	if maxWeight < 0 || maxWeight >= total {
		return nil, fmt.Errorf("adversary: maxWeight %d out of range [0,%d)", maxWeight, total)
	}
	weightOf := func(s Set) int {
		sum := 0
		for _, i := range s.Members() {
			sum += weights[i]
		}
		return sum
	}
	// Minimal qualified sets: weight > maxWeight, and removing any member
	// drops to <= maxWeight.
	var minterms []*Formula
	limit := uint64(1) << uint(n)
	for v := uint64(1); v < limit; v++ {
		s := Set(v)
		if weightOf(s) <= maxWeight {
			continue
		}
		minimal := true
		for _, i := range s.Members() {
			if weightOf(s.Remove(i)) > maxWeight {
				minimal = false
				break
			}
		}
		if !minimal {
			continue
		}
		leaves := make([]*Formula, 0, s.Count())
		for _, i := range s.Members() {
			leaves = append(leaves, Leaf(i))
		}
		minterms = append(minterms, And(leaves...))
	}
	if len(minterms) == 0 {
		return nil, fmt.Errorf("adversary: no qualified sets exist")
	}
	access := Or(minterms...)
	return NewGeneralFromPredicate(n, func(s Set) bool { return weightOf(s) <= maxWeight }, access)
}
