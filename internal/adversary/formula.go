package adversary

import (
	"errors"
	"fmt"
	"strings"
)

// Formula is a monotone Boolean formula over party indices, built from
// k-out-of-n threshold gates Θ_k^n (AND = Θ_n^n, OR = Θ_1^n) with party
// leaves. Formulas describe access structures and double as the blueprint
// for the Benaloh-Leichter linear secret sharing scheme in internal/sharing.
//
// A Formula is either a leaf (Party >= 0, Children nil) or a gate
// (Party == -1, K = gate threshold, Children = sub-formulas). The exported
// fields make the type serializable with encoding/gob for dealer configs.
type Formula struct {
	// Party is the leaf's party index, or -1 for a gate.
	Party int
	// K is the gate threshold: the gate is satisfied when at least K
	// children are satisfied. Unused on leaves.
	K int
	// Children are the gate inputs. Nil on leaves.
	Children []*Formula
}

// Leaf returns the formula that is satisfied iff party i is in the set.
func Leaf(i int) *Formula { return &Formula{Party: i} }

// Threshold returns the gate Θ_k over the given children.
func Threshold(k int, children ...*Formula) *Formula {
	return &Formula{Party: -1, K: k, Children: children}
}

// And returns the conjunction of the children (Θ_n^n).
func And(children ...*Formula) *Formula {
	return Threshold(len(children), children...)
}

// Or returns the disjunction of the children (Θ_1^n).
func Or(children ...*Formula) *Formula {
	return Threshold(1, children...)
}

// AnySubsetOf returns the formula Θ_1 over the listed parties — the
// characteristic function χ_c of the paper (§4.3): satisfied iff the set
// contains at least one party with the given attribute value.
func AnySubsetOf(parties []int) *Formula {
	children := make([]*Formula, len(parties))
	for i, p := range parties {
		children[i] = Leaf(p)
	}
	return Or(children...)
}

// ThresholdOf returns Θ_k over the listed parties.
func ThresholdOf(k int, parties []int) *Formula {
	children := make([]*Formula, len(parties))
	for i, p := range parties {
		children[i] = Leaf(p)
	}
	return Threshold(k, children...)
}

// IsLeaf reports whether f is a party leaf.
func (f *Formula) IsLeaf() bool { return f.Party >= 0 }

// Eval evaluates the formula on the given party set.
func (f *Formula) Eval(s Set) bool {
	if f.IsLeaf() {
		return s.Has(f.Party)
	}
	sat := 0
	for _, c := range f.Children {
		if c.Eval(s) {
			sat++
			if sat >= f.K {
				return true
			}
		}
	}
	return false
}

// Validate checks structural sanity: leaves in [0, n), gates with
// 1 <= K <= len(Children) and at least one child.
func (f *Formula) Validate(n int) error {
	if f == nil {
		return errors.New("adversary: nil formula")
	}
	if f.IsLeaf() {
		if f.Party >= n {
			return fmt.Errorf("adversary: leaf party %d out of range [0,%d)", f.Party, n)
		}
		if len(f.Children) != 0 {
			return errors.New("adversary: leaf with children")
		}
		return nil
	}
	if len(f.Children) == 0 {
		return errors.New("adversary: gate without children")
	}
	if f.K < 1 || f.K > len(f.Children) {
		return fmt.Errorf("adversary: gate threshold %d out of range [1,%d]", f.K, len(f.Children))
	}
	for _, c := range f.Children {
		if err := c.Validate(n); err != nil {
			return err
		}
	}
	return nil
}

// Leaves returns the number of leaves of the formula (the number of
// atomic shares the Benaloh-Leichter scheme will produce).
func (f *Formula) Leaves() int {
	if f.IsLeaf() {
		return 1
	}
	total := 0
	for _, c := range f.Children {
		total += c.Leaves()
	}
	return total
}

// String renders the formula, e.g. "T2(P0,P1,T1(P2,P3))".
func (f *Formula) String() string {
	if f.IsLeaf() {
		return fmt.Sprintf("P%d", f.Party)
	}
	parts := make([]string, len(f.Children))
	for i, c := range f.Children {
		parts[i] = c.String()
	}
	return fmt.Sprintf("T%d(%s)", f.K, strings.Join(parts, ","))
}
