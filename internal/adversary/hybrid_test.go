package adversary

import "testing"

func TestHybridThresholdPredicates(t *testing.T) {
	// n=6, tb=1, tc=1: feasible since 6 > 3·1 + 2·1 = 5.
	st, err := NewHybridThreshold(6, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Q3() {
		t.Fatal("6 > 3+2 must satisfy the hybrid feasibility condition")
	}
	// Corruptible (lying) sets: at most tb=1.
	if !st.InAdversary(SetOf(3)) || st.InAdversary(SetOf(3, 4)) {
		t.Fatal("InAdversary broken")
	}
	// Quorum: n - tb - tc = 4.
	if !st.IsQuorum(SetOf(0, 1, 2, 3)) || st.IsQuorum(SetOf(0, 1, 2)) {
		t.Fatal("IsQuorum broken")
	}
	// Honest rule: tb + 1 = 2 senders.
	if !st.HasHonest(SetOf(0, 1)) || st.HasHonest(SetOf(0)) {
		t.Fatal("HasHonest broken")
	}
	// Strong rule: 2tb + tc + 1 = 4 senders.
	if !st.IsStrong(SetOf(0, 1, 2, 3)) || st.IsStrong(SetOf(0, 1, 2)) {
		t.Fatal("IsStrong broken")
	}
	tol, err := st.MaxTolerated()
	if err != nil || tol != 2 {
		t.Fatalf("MaxTolerated = %d, %v", tol, err)
	}
	q, a, ok := st.SigSizes()
	if !ok || q != 4 || a != 2 {
		t.Fatalf("SigSizes = %d,%d,%v", q, a, ok)
	}
	if st.String() != "hybrid(n=6,byzantine=1,crash=1)" {
		t.Fatalf("String = %q", st.String())
	}
	if err := st.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestHybridDegeneratesToThreshold(t *testing.T) {
	// tc=0 must agree with the plain threshold structure everywhere.
	hy, err := NewHybridThreshold(7, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	th := MustThreshold(7, 2)
	for v := Set(0); v <= FullSet(7); v++ {
		if hy.InAdversary(v) != th.InAdversary(v) ||
			hy.IsQuorum(v) != th.IsQuorum(v) ||
			hy.IsStrong(v) != th.IsStrong(v) ||
			hy.HasHonest(v) != th.HasHonest(v) {
			t.Fatalf("hybrid(tb=2,tc=0) diverges from threshold at %v", v)
		}
	}
	if hy.Q3() != th.Q3() {
		t.Fatal("Q3 mismatch")
	}
}

func TestHybridFeasibilityBoundary(t *testing.T) {
	cases := []struct {
		n, tb, tc int
		ok        bool
	}{
		{6, 1, 1, true},  // 6 > 5
		{5, 1, 1, false}, // 5 > 5 fails
		{4, 1, 0, true},  // classic
		{8, 1, 2, true},  // 8 > 7
		{7, 1, 2, false}, // 7 > 7 fails
		{10, 2, 1, true}, // 10 > 8
		{10, 0, 4, true}, // crash-only: 10 > 8
		{9, 0, 4, true},  // 9 > 8
		{8, 0, 4, false}, // 8 > 8 fails
	}
	for _, c := range cases {
		st, err := NewHybridThreshold(c.n, c.tb, c.tc)
		if err != nil {
			t.Fatalf("NewHybridThreshold(%d,%d,%d): %v", c.n, c.tb, c.tc, err)
		}
		if st.Q3() != c.ok {
			t.Fatalf("hybrid(%d,%d,%d).Q3() = %v, want %v", c.n, c.tb, c.tc, st.Q3(), c.ok)
		}
	}
	if _, err := NewHybridThreshold(4, 2, 2); err == nil {
		t.Fatal("tb+tc >= n accepted")
	}
	if _, err := NewHybridThreshold(4, -1, 0); err == nil {
		t.Fatal("negative tb accepted")
	}
}

func TestHybridQuorumProperties(t *testing.T) {
	// The protocol-level facts, under the worst allowed fault mix:
	// quorums intersect in honest senders, and the correct servers form a
	// quorum and a strong set.
	st, err := NewHybridThreshold(6, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	n := st.N()
	// Worst case: 1 byzantine + 1 crashed.
	byz, crashed := SetOf(5), SetOf(4)
	correct := FullSet(n).Minus(byz).Minus(crashed)
	if !st.IsQuorum(correct) {
		t.Fatal("correct servers do not form a quorum")
	}
	if !st.IsStrong(correct) {
		t.Fatal("correct servers do not form a strong set")
	}
	// Any two quorums intersect in > tb senders (an honest-containing set
	// among SENDERS, since crashed servers never send).
	for v := Set(0); v <= FullSet(n); v++ {
		if !st.IsQuorum(v) {
			continue
		}
		for w := Set(0); w <= FullSet(n); w++ {
			if !st.IsQuorum(w) {
				continue
			}
			if st.InAdversary(v.Intersect(w)) {
				t.Fatalf("quorums %v and %v intersect only in liars", v, w)
			}
		}
	}
	// A strong set minus byzantine and crashed senders still has honest.
	for v := Set(0); v <= FullSet(n); v++ {
		if st.IsStrong(v) && st.InAdversary(v.Minus(byz).Minus(crashed)) {
			t.Fatalf("strong set %v collapses under the fault mix", v)
		}
	}
}
