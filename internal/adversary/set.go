// Package adversary implements the generalized adversary structures of
// Section 4 of Cachin, "Distributing Trust on the Internet" (DSN 2001).
//
// An adversary structure A is a monotone family of subsets of the parties
// P = {0, ..., n-1} that the adversary may corrupt simultaneously. It is
// described here by its complement, the *access structure*: a monotone
// Boolean formula of threshold gates that evaluates to true exactly on the
// party sets that are NOT corruptible. The classic threshold model
// ("at most t of n fail") is the special case Θ_{t+1}^n.
//
// The package provides the Q³ condition (no three sets of A cover P), the
// enumeration of maximal adversary sets A*, and the three generalized
// quorum predicates that replace the n−t / 2t+1 / t+1 counting rules of
// threshold protocols (paper §4.2):
//
//	IsQuorum(S)  — S ⊇ P∖T for some T ∈ A*   (the n−t rule)
//	IsCore(S)    — S ⊇ T∪U∪{i} for disjoint T,U ∈ A*, i ∉ T∪U (the 2t+1 rule)
//	HasHonest(S) — S ∉ A                      (the t+1 rule)
//
// All broadcast and agreement protocols in this repository count messages
// exclusively through these predicates, so a single code path serves both
// threshold and generalized deployments.
package adversary

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
)

// MaxParties bounds the number of parties a Set can hold (bitmask width).
const MaxParties = 64

// Set is a subset of the parties {0, ..., n-1}, represented as a bitmask.
type Set uint64

// EmptySet is the set with no members.
const EmptySet Set = 0

// SetOf builds a Set from explicit member indices.
func SetOf(members ...int) Set {
	var s Set
	for _, m := range members {
		s = s.Add(m)
	}
	return s
}

// FullSet returns the set {0, ..., n-1}.
func FullSet(n int) Set {
	if n <= 0 {
		return 0
	}
	if n >= MaxParties {
		return ^Set(0)
	}
	return Set(1)<<uint(n) - 1
}

// Add returns s with party i added.
func (s Set) Add(i int) Set { return s | Set(1)<<uint(i) }

// Remove returns s with party i removed.
func (s Set) Remove(i int) Set { return s &^ (Set(1) << uint(i)) }

// Has reports whether party i is a member of s.
func (s Set) Has(i int) bool { return s&(Set(1)<<uint(i)) != 0 }

// Count returns the cardinality of s.
func (s Set) Count() int { return bits.OnesCount64(uint64(s)) }

// Union returns s ∪ o.
func (s Set) Union(o Set) Set { return s | o }

// Intersect returns s ∩ o.
func (s Set) Intersect(o Set) Set { return s & o }

// Minus returns s ∖ o.
func (s Set) Minus(o Set) Set { return s &^ o }

// SubsetOf reports whether s ⊆ o.
func (s Set) SubsetOf(o Set) bool { return s&^o == 0 }

// Disjoint reports whether s ∩ o = ∅.
func (s Set) Disjoint(o Set) bool { return s&o == 0 }

// Complement returns {0,...,n-1} ∖ s.
func (s Set) Complement(n int) Set { return FullSet(n) &^ s }

// Members returns the sorted member indices of s.
func (s Set) Members() []int {
	out := make([]int, 0, s.Count())
	for v := uint64(s); v != 0; {
		i := bits.TrailingZeros64(v)
		out = append(out, i)
		v &^= 1 << uint(i)
	}
	return out
}

// String renders the set as "{0,3,5}".
func (s Set) String() string {
	m := s.Members()
	parts := make([]string, len(m))
	for i, v := range m {
		parts[i] = fmt.Sprint(v)
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// sortSetsByCountDesc orders sets by descending cardinality (stable on value).
func sortSetsByCountDesc(sets []Set) {
	sort.Slice(sets, func(i, j int) bool {
		ci, cj := sets[i].Count(), sets[j].Count()
		if ci != cj {
			return ci > cj
		}
		return sets[i] < sets[j]
	})
}
