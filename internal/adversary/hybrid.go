package adversary

import "fmt"

// Hybrid failure structures — the paper's §6 extension ("treat crash
// failures separately from corruptions ... crashes are more likely to
// occur than intrusions and they are much easier to handle"): the
// adversary may simultaneously corrupt up to TB servers in arbitrary
// (Byzantine) ways AND crash up to TC further servers. Crashed servers
// stop participating but never lie and never leak their secrets.
//
// The feasibility condition generalizes n > 3t to
//
//	n > 3·TB + 2·TC,
//
// and the counting rules become:
//
//	quorum (n−t rule):     n − TB − TC servers — reachable because at
//	                       most TB+TC servers stay silent, and any two
//	                       quorums share a correct server;
//	honest (t+1 rule):     TB + 1 senders — crashed servers never send,
//	                       so any TB+1 distinct senders include one
//	                       honest server;
//	strong (2t+1 rule):    2·TB + TC + 1 senders — removing every
//	                       corrupted and crashed sender still leaves an
//	                       honest-set (TB+1) behind.
//
// Secret sharing only needs protection against servers that can LEAK, so
// the access formula stays Θ_{TB+1}; reconstruction remains available
// because every quorum minus corrupted parties retains TB+1 members
// (implied by the feasibility condition).
//
// Construct with NewHybridThreshold; the structure plugs into every
// protocol unchanged, via the same four predicates.

// NewHybridThreshold builds the hybrid structure tolerating tb Byzantine
// corruptions plus tc crashes among n servers.
func NewHybridThreshold(n, tb, tc int) (*Structure, error) {
	if n < 1 || n > MaxParties {
		return nil, fmt.Errorf("adversary: n=%d out of range [1,%d]", n, MaxParties)
	}
	if tb < 0 || tc < 0 || tb+tc >= n {
		return nil, fmt.Errorf("adversary: hybrid thresholds tb=%d tc=%d out of range for n=%d", tb, tc, n)
	}
	parties := make([]int, n)
	for i := range parties {
		parties[i] = i
	}
	return &Structure{
		NParties: n,
		Thresh:   -1,
		Hybrid:   true,
		TB:       tb,
		TC:       tc,
		Access:   ThresholdOf(tb+1, parties),
	}, nil
}

// hybrid predicate implementations, dispatched from structure.go.

func (st *Structure) hybridInAdversary(s Set) bool {
	// "Corruptible" means able to act maliciously together: only the
	// Byzantine budget counts. (Crashes cannot collude — they are silent.)
	return s.Count() <= st.TB
}

func (st *Structure) hybridIsQuorum(s Set) bool {
	return s.Count() >= st.NParties-st.TB-st.TC
}

func (st *Structure) hybridIsStrong(s Set) bool {
	return s.Count() >= 2*st.TB+st.TC+1
}

func (st *Structure) hybridQ3() bool {
	return st.NParties > 3*st.TB+2*st.TC
}

// hybridValidate checks the hybrid fields.
func (st *Structure) hybridValidate() error {
	if st.TB < 0 || st.TC < 0 || st.TB+st.TC >= st.NParties {
		return fmt.Errorf("adversary: invalid hybrid thresholds tb=%d tc=%d n=%d", st.TB, st.TC, st.NParties)
	}
	return nil
}
