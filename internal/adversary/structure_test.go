package adversary

import (
	"testing"
	"testing/quick"
)

func TestThresholdPredicates(t *testing.T) {
	st := MustThreshold(4, 1)
	if !st.InAdversary(SetOf(2)) || st.InAdversary(SetOf(1, 2)) {
		t.Fatal("InAdversary broken")
	}
	if !st.IsQuorum(SetOf(0, 1, 2)) || st.IsQuorum(SetOf(0, 1)) {
		t.Fatal("IsQuorum broken")
	}
	if !st.IsCore(SetOf(0, 1, 2)) || st.IsCore(SetOf(0, 1)) {
		t.Fatal("IsCore broken")
	}
	if !st.HasHonest(SetOf(0, 1)) || st.HasHonest(SetOf(3)) {
		t.Fatal("HasHonest broken")
	}
	if !st.Q3() {
		t.Fatal("4 > 3*1 should satisfy Q3")
	}
	if MustThreshold(3, 1).Q3() {
		t.Fatal("3 > 3*1 is false; Q3 must fail")
	}
}

func TestNewThresholdValidation(t *testing.T) {
	if _, err := NewThreshold(0, 0); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := NewThreshold(4, 4); err == nil {
		t.Fatal("t=n accepted")
	}
	if _, err := NewThreshold(4, -1); err == nil {
		t.Fatal("t<0 accepted")
	}
	if _, err := NewThreshold(65, 1); err == nil {
		t.Fatal("n>64 accepted")
	}
}

func TestNewGeneralValidation(t *testing.T) {
	access := ThresholdOf(2, []int{0, 1, 2, 3})
	singletons := []Set{SetOf(0), SetOf(1), SetOf(2), SetOf(3)}
	if _, err := NewGeneral(4, singletons, access); err != nil {
		t.Fatal(err)
	}
	// Empty adversary family is rejected.
	if _, err := NewGeneral(4, nil, access); err == nil {
		t.Fatal("empty family accepted")
	}
	// Full set corruptible is rejected.
	if _, err := NewGeneral(4, []Set{FullSet(4)}, access); err == nil {
		t.Fatal("full set accepted as corruptible")
	}
	// Invalid formula is rejected.
	bad := Threshold(5, Leaf(0), Leaf(1)) // invalid K
	if _, err := NewGeneral(4, singletons, bad); err == nil {
		t.Fatal("invalid formula accepted")
	}
	// Secrecy violation: a corruptible pair that the access formula accepts.
	if _, err := NewGeneral(4, []Set{SetOf(0, 1)}, access); err == nil {
		t.Fatal("qualified corruptible set accepted")
	}
	// Liveness violation: honest remainder unqualified. With A* = {0},{1},{2},{3}
	// and access requiring parties 0 AND 1, corrupting {0} breaks liveness.
	if _, err := NewGeneral(4, singletons, And(Leaf(0), Leaf(1))); err == nil {
		t.Fatal("liveness-violating access formula accepted")
	}
	if _, err := NewGeneral(30, []Set{SetOf(0)}, ThresholdOf(2, []int{0, 1})); err == nil {
		t.Fatal("n above enumeration bound accepted")
	}
}

func TestMaximalize(t *testing.T) {
	access := ThresholdOf(3, []int{0, 1, 2, 3, 4, 5, 6})
	// Pass redundant generating sets; the constructor must maximalize.
	st, err := NewGeneral(7, []Set{SetOf(0), SetOf(0, 1), SetOf(1), SetOf(2, 3)}, access)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.MaxSets) != 2 {
		t.Fatalf("MaxSets = %v, want 2 maximal sets", st.MaxSets)
	}
	if !st.InAdversary(SetOf(0, 1)) || !st.InAdversary(SetOf(3)) || st.InAdversary(SetOf(0, 2)) {
		t.Fatal("membership after maximalization broken")
	}
}

func TestGeneralMatchesThreshold(t *testing.T) {
	// A general structure built from the t-subsets must agree with the
	// native threshold structure on every predicate, for every subset.
	n, tt := 7, 2
	th := MustThreshold(n, tt)
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	gen, err := NewGeneralFromPredicate(n, func(s Set) bool { return s.Count() <= tt }, ThresholdOf(tt+1, all))
	if err != nil {
		t.Fatal(err)
	}
	for v := Set(0); v <= FullSet(n); v++ {
		if th.InAdversary(v) != gen.InAdversary(v) {
			t.Fatalf("InAdversary mismatch on %v", v)
		}
		if th.IsQuorum(v) != gen.IsQuorum(v) {
			t.Fatalf("IsQuorum mismatch on %v", v)
		}
		if th.HasHonest(v) != gen.HasHonest(v) {
			t.Fatalf("HasHonest mismatch on %v", v)
		}
		if th.IsCore(v) != gen.IsCore(v) {
			t.Fatalf("IsCore mismatch on %v: th=%v gen=%v", v, th.IsCore(v), gen.IsCore(v))
		}
	}
	if !gen.Q3() {
		t.Fatal("Q3 mismatch")
	}
	max, err := gen.MaximalSets()
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range max {
		if m.Count() != tt {
			t.Fatalf("maximal set %v has wrong size", m)
		}
	}
}

// quorumIntersectionProperty verifies the structural facts the protocols
// rely on, for an arbitrary structure satisfying Q3:
//  1. two quorums intersect outside the adversary structure;
//  2. a quorum minus any corruptible set is still outside the structure;
//  3. the honest parties (complement of any corruptible set) form a quorum.
func quorumIntersectionProperty(t *testing.T, st *Structure) {
	t.Helper()
	n := st.N()
	max, err := st.MaximalSets()
	if err != nil {
		t.Fatal(err)
	}
	var quorums []Set
	for v := Set(0); v <= FullSet(n); v++ {
		if st.IsQuorum(v) {
			quorums = append(quorums, v)
		}
	}
	if len(quorums) == 0 {
		t.Fatal("no quorums")
	}
	for _, a := range max {
		if !st.IsQuorum(a.Complement(n)) {
			t.Fatalf("honest complement of %v is not a quorum", a)
		}
	}
	// Exhaustive pairwise checks are quadratic in the number of quorums;
	// restrict to minimal quorums (complements of maximal adversary sets)
	// which dominate all others.
	for _, a := range max {
		qa := a.Complement(n)
		for _, b := range max {
			qb := b.Complement(n)
			if !st.HasHonest(qa.Intersect(qb)) {
				t.Fatalf("quorums %v and %v intersect inside A", qa, qb)
			}
		}
		for _, c := range max {
			if st.InAdversary(qa.Minus(c)) {
				t.Fatalf("quorum %v minus corruptible %v is in A", qa, c)
			}
		}
	}
}

func TestQuorumPropertiesThreshold(t *testing.T) {
	quorumIntersectionProperty(t, MustThreshold(7, 2))
}

func TestQuorumPropertiesExample1(t *testing.T) {
	quorumIntersectionProperty(t, Example1())
}

func TestQuorumPropertiesExample2(t *testing.T) {
	quorumIntersectionProperty(t, Example2())
}

func TestExample1PaperClaims(t *testing.T) {
	st := Example1()
	if !st.Q3() {
		t.Fatal("Example 1 must satisfy Q3 (paper §4.3)")
	}
	// Tolerates any two arbitrary servers.
	if !st.InAdversary(SetOf(0, 8)) || !st.InAdversary(SetOf(4, 6)) {
		t.Fatal("two arbitrary servers must be corruptible")
	}
	// Tolerates all servers of one class, in particular class a = {0,1,2,3}.
	if !st.InAdversary(SetOf(0, 1, 2, 3)) {
		t.Fatal("whole class a must be corruptible")
	}
	if !st.InAdversary(SetOf(4, 5)) || !st.InAdversary(SetOf(6, 7)) || !st.InAdversary(SetOf(8)) {
		t.Fatal("whole classes b, c, d must be corruptible")
	}
	// But not three servers spanning two classes.
	if st.InAdversary(SetOf(0, 1, 4)) {
		t.Fatal("{0,1,4} spans two classes with size 3; not corruptible")
	}
	// Access: coalitions of size >= 3 covering >= 2 classes.
	if st.Access.Eval(SetOf(0, 1, 2)) {
		t.Fatal("3 servers of one class must not be qualified")
	}
	if !st.Access.Eval(SetOf(0, 1, 4)) {
		t.Fatal("3 servers covering 2 classes must be qualified")
	}
	// A*: {0,1,2,3} plus every pair not inside class a.
	max, err := st.MaximalSets()
	if err != nil {
		t.Fatal(err)
	}
	wantPairs := 0
	for i := 0; i < 9; i++ {
		for j := i + 1; j < 9; j++ {
			if i < 4 && j < 4 {
				continue // pairs inside class a are not maximal
			}
			wantPairs++
		}
	}
	if len(max) != wantPairs+1 {
		t.Fatalf("|A*| = %d, want %d", len(max), wantPairs+1)
	}
	tol, err := st.MaxTolerated()
	if err != nil {
		t.Fatal(err)
	}
	if tol != 4 {
		t.Fatalf("MaxTolerated = %d, want 4", tol)
	}
}

func TestExample2PaperClaims(t *testing.T) {
	st := Example2()
	if !st.Q3() {
		t.Fatal("Example 2 must satisfy Q3 (paper §4.3)")
	}
	// Simultaneous corruption of one full location and one full OS: seven
	// servers, e.g. location 0 plus OS 0.
	var siteAndOS Set
	for s := 0; s < 4; s++ {
		siteAndOS = siteAndOS.Add(Example2Party(0, s))
		siteAndOS = siteAndOS.Add(Example2Party(s, 0))
	}
	if siteAndOS.Count() != 7 {
		t.Fatalf("site+OS set has %d members, want 7", siteAndOS.Count())
	}
	if !st.InAdversary(siteAndOS) {
		t.Fatal("one location plus one OS (7 servers) must be corruptible")
	}
	tol, err := st.MaxTolerated()
	if err != nil {
		t.Fatal(err)
	}
	if tol != 7 {
		t.Fatalf("MaxTolerated = %d, want 7 (paper's headline)", tol)
	}
	// Any threshold solution on 16 servers tolerates at most five.
	if best := (16 - 1) / 3; best != 5 {
		t.Fatalf("threshold bound computed as %d, want 5", best)
	}
	// Eight arbitrary servers spanning the grid must NOT be corruptible.
	var diagonalish Set
	for i := 0; i < 4; i++ {
		diagonalish = diagonalish.Add(Example2Party(i, i))
		diagonalish = diagonalish.Add(Example2Party(i, (i+1)%4))
	}
	if st.InAdversary(diagonalish) {
		t.Fatal("8 spread-out servers should not be corruptible")
	}
}

func TestMaxToleratedThreshold(t *testing.T) {
	st := MustThreshold(16, 5)
	tol, err := st.MaxTolerated()
	if err != nil {
		t.Fatal(err)
	}
	if tol != 5 {
		t.Fatalf("MaxTolerated = %d, want 5", tol)
	}
}

func TestStructureValidate(t *testing.T) {
	if err := MustThreshold(4, 1).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := &Structure{NParties: 4, Thresh: -1}
	if err := bad.Validate(); err == nil {
		t.Fatal("missing formula accepted")
	}
}

func TestStructureString(t *testing.T) {
	if got := MustThreshold(4, 1).String(); got != "threshold(n=4,t=1)" {
		t.Fatalf("String = %q", got)
	}
	if got := Example1().String(); len(got) == 0 {
		t.Fatal("empty String for general structure")
	}
}

func TestClassification(t *testing.T) {
	c := Example1Classes()
	if c.N() != 9 {
		t.Fatal("N broken")
	}
	if got := c.Parties("a"); len(got) != 4 || got[0] != 0 || got[3] != 3 {
		t.Fatalf("Parties(a) = %v", got)
	}
	if got := c.DistinctValues(); len(got) != 4 || got[0] != "a" || got[3] != "d" {
		t.Fatalf("DistinctValues = %v", got)
	}
	chi := c.Chi("b")
	if chi.Eval(SetOf(0, 1)) || !chi.Eval(SetOf(5)) {
		t.Fatal("Chi broken")
	}
	cov := c.ClassCoverage(2)
	if cov.Eval(SetOf(0, 1, 2)) || !cov.Eval(SetOf(0, 8)) {
		t.Fatal("ClassCoverage broken")
	}
}

func TestMonotonicityOfPredicates(t *testing.T) {
	// Property: all three predicates are monotone in the set.
	for _, st := range []*Structure{MustThreshold(7, 2), Example1()} {
		st := st
		n := st.N()
		f := func(raw uint64, extra uint8) bool {
			s := Set(raw) & FullSet(n)
			bigger := s.Add(int(extra) % n)
			if st.IsQuorum(s) && !st.IsQuorum(bigger) {
				return false
			}
			if st.HasHonest(s) && !st.HasHonest(bigger) {
				return false
			}
			if st.IsCore(s) && !st.IsCore(bigger) {
				return false
			}
			// InAdversary is monotone the other way.
			if !st.InAdversary(s) && st.InAdversary(s.Minus(Set(1)<<uint(int(extra)%n))) && s.Has(int(extra)%n) {
				_ = s // removing members may enter A; that is allowed
			}
			return true
		}
		if err := quick.Check(f, nil); err != nil {
			t.Fatalf("%v: %v", st, err)
		}
	}
}

func BenchmarkPredicatesExample2(b *testing.B) {
	st := Example2()
	if _, err := st.MaximalSets(); err != nil {
		b.Fatal(err)
	}
	s := FullSet(16).Minus(SetOf(0, 1, 2, 3, 4, 8, 12))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.IsQuorum(s)
		st.HasHonest(s)
	}
}

func TestIsStrongThresholdMatches2t1(t *testing.T) {
	st := MustThreshold(7, 2)
	for v := Set(0); v <= FullSet(7); v++ {
		want := v.Count() >= 5
		if st.IsStrong(v) != want {
			t.Fatalf("IsStrong(%v) = %v, want %v", v, st.IsStrong(v), want)
		}
	}
}

func TestIsStrongProperties(t *testing.T) {
	// For every structure: (1) honest complement of any corruptible set is
	// strong; (2) a strong set minus any corruptible set is outside A.
	// Note IsCore does NOT imply IsStrong in general (e.g. in Example 1,
	// {0,1,2,4,5} contains two disjoint maximal pairs plus an extra party,
	// yet minus class a leaves {4,5} ∈ A) — which is exactly why the
	// protocols count through IsStrong rather than the paper's literal
	// S∪T∪{i} recipe.
	for _, st := range []*Structure{MustThreshold(7, 2), Example1(), Example2()} {
		n := st.N()
		max, err := st.MaximalSets()
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range max {
			if !st.IsStrong(c.Complement(n)) {
				t.Fatalf("%v: honest set P∖%v not strong", st, c)
			}
		}
		for v := Set(0); v <= FullSet(n) && n <= 9; v++ {
			if st.IsStrong(v) {
				for _, c := range max {
					if st.InAdversary(v.Minus(c)) {
						t.Fatalf("%v: strong %v minus %v in A", st, v, c)
					}
				}
			}
		}
	}
}

func TestIsStrongExample2NotVacuous(t *testing.T) {
	// The paper's literal S∪T∪{i} rule (IsCore) is vacuous for Example 2:
	// all maximal sets pairwise intersect. IsStrong must still accept the
	// honest survivors of any corruption.
	st := Example2()
	if st.IsCore(FullSet(16)) {
		t.Fatal("expected IsCore to be vacuous for Example 2")
	}
	var corrupted Set
	for i := 0; i < 4; i++ {
		corrupted = corrupted.Add(Example2Party(0, i)).Add(Example2Party(i, 0))
	}
	if !st.IsStrong(corrupted.Complement(16)) {
		t.Fatal("honest 3x3 subgrid should be strong")
	}
	if st.IsStrong(corrupted) {
		t.Fatal("the corrupted seven should not be strong")
	}
}

func TestClassifiedThresholdGeneralizesExample1(t *testing.T) {
	st, err := ClassifiedThreshold(Example1Classes(), 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	ref := Example1()
	for v := Set(0); v <= FullSet(9); v++ {
		if st.InAdversary(v) != ref.InAdversary(v) {
			t.Fatalf("mismatch with Example1 at %v", v)
		}
	}
	if !st.Q3() {
		t.Fatal("Q3 lost")
	}
}

func TestClassifiedThresholdCustom(t *testing.T) {
	// Twelve servers in four racks of three; tolerate one arbitrary server
	// or a whole rack.
	c := NewClassification([]string{
		"r1", "r1", "r1", "r2", "r2", "r2",
		"r3", "r3", "r3", "r4", "r4", "r4",
	})
	st, err := ClassifiedThreshold(c, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Q3() {
		t.Fatal("expected Q3 for 4 racks of 3")
	}
	if !st.InAdversary(SetOf(0, 1, 2)) {
		t.Fatal("whole rack should be corruptible")
	}
	if st.InAdversary(SetOf(0, 3)) {
		t.Fatal("two servers in different racks exceed the threshold")
	}
	tol, err := st.MaxTolerated()
	if err != nil || tol != 3 {
		t.Fatalf("MaxTolerated = %d, %v", tol, err)
	}
}

func TestClassifiedThresholdValidation(t *testing.T) {
	if _, err := ClassifiedThreshold(NewClassification(nil), 1, 1); err == nil {
		t.Fatal("empty classification accepted")
	}
	c := Example1Classes()
	if _, err := ClassifiedThreshold(c, 2, 9); err == nil {
		t.Fatal("minClasses beyond class count accepted")
	}
	if _, err := ClassifiedThreshold(c, 2, 0); err == nil {
		t.Fatal("minClasses 0 accepted")
	}
}

func TestWeightedThreshold(t *testing.T) {
	// Five servers; server 0 is a beefy dual-homed machine with weight 3,
	// the rest weight 1 (total 7). The adversary may corrupt weight <= 2:
	// any two small servers, but never the big one.
	st, err := NewWeightedThreshold([]int{3, 1, 1, 1, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if st.InAdversary(SetOf(0)) {
		t.Fatal("the weight-3 server must not be corruptible")
	}
	if !st.InAdversary(SetOf(1, 2)) || st.InAdversary(SetOf(1, 2, 3)) {
		t.Fatal("weight accounting broken")
	}
	// Q3: three corruptible sets have weight <= 6 < 7 but could still
	// cover the four small parties... {1,2},{3,4},{1,3} cover {1,2,3,4};
	// party 0 remains uncovered, so Q3 holds.
	if !st.Q3() {
		t.Fatal("expected Q3")
	}
	// Access = weight >= 3: the big server alone, or three small ones.
	if !st.Access.Eval(SetOf(0)) || !st.Access.Eval(SetOf(1, 2, 3)) || st.Access.Eval(SetOf(1, 2)) {
		t.Fatal("weighted access broken")
	}
}

func TestWeightedThresholdEqualWeightsMatchesThreshold(t *testing.T) {
	st, err := NewWeightedThreshold([]int{1, 1, 1, 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	th := MustThreshold(4, 1)
	for v := Set(0); v <= FullSet(4); v++ {
		if st.InAdversary(v) != th.InAdversary(v) || st.IsQuorum(v) != th.IsQuorum(v) {
			t.Fatalf("diverges from threshold at %v", v)
		}
	}
}

func TestWeightedThresholdValidation(t *testing.T) {
	if _, err := NewWeightedThreshold(nil, 1); err == nil {
		t.Fatal("empty weights accepted")
	}
	if _, err := NewWeightedThreshold([]int{0, 1}, 1); err == nil {
		t.Fatal("zero weight accepted")
	}
	if _, err := NewWeightedThreshold([]int{1, 1}, 2); err == nil {
		t.Fatal("maxWeight >= total accepted")
	}
}
