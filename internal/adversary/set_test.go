package adversary

import (
	"testing"
	"testing/quick"
)

func TestSetBasics(t *testing.T) {
	s := SetOf(0, 3, 5)
	if !s.Has(0) || !s.Has(3) || !s.Has(5) || s.Has(1) {
		t.Fatal("membership broken")
	}
	if s.Count() != 3 {
		t.Fatalf("Count = %d, want 3", s.Count())
	}
	if got := s.String(); got != "{0,3,5}" {
		t.Fatalf("String = %q", got)
	}
	if s.Remove(3).Has(3) {
		t.Fatal("Remove broken")
	}
	if s.Add(7) != SetOf(0, 3, 5, 7) {
		t.Fatal("Add broken")
	}
}

func TestSetAlgebra(t *testing.T) {
	a := SetOf(0, 1, 2)
	b := SetOf(2, 3)
	if a.Union(b) != SetOf(0, 1, 2, 3) {
		t.Fatal("Union broken")
	}
	if a.Intersect(b) != SetOf(2) {
		t.Fatal("Intersect broken")
	}
	if a.Minus(b) != SetOf(0, 1) {
		t.Fatal("Minus broken")
	}
	if !SetOf(0, 1).SubsetOf(a) || a.SubsetOf(b) {
		t.Fatal("SubsetOf broken")
	}
	if !SetOf(0, 1).Disjoint(SetOf(2, 3)) || a.Disjoint(b) {
		t.Fatal("Disjoint broken")
	}
	if a.Complement(5) != SetOf(3, 4) {
		t.Fatal("Complement broken")
	}
	if FullSet(4) != SetOf(0, 1, 2, 3) {
		t.Fatal("FullSet broken")
	}
	if FullSet(0) != EmptySet {
		t.Fatal("FullSet(0) not empty")
	}
}

func TestSetMembersRoundTrip(t *testing.T) {
	f := func(raw uint64) bool {
		s := Set(raw)
		back := SetOf(s.Members()...)
		return back == s && len(s.Members()) == s.Count()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSetAlgebraProperties(t *testing.T) {
	// De Morgan-ish identities on the bitmask algebra, over random sets.
	n := 16
	full := FullSet(n)
	f := func(ra, rb uint64) bool {
		a := Set(ra) & full
		b := Set(rb) & full
		if a.Union(b).Complement(n) != a.Complement(n).Intersect(b.Complement(n)) {
			return false
		}
		if a.Minus(b) != a.Intersect(b.Complement(n)) {
			return false
		}
		return a.Union(b).Count()+a.Intersect(b).Count() == a.Count()+b.Count()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFormulaEval(t *testing.T) {
	// (P0 AND P1) OR P2
	f := Or(And(Leaf(0), Leaf(1)), Leaf(2))
	cases := []struct {
		s    Set
		want bool
	}{
		{EmptySet, false},
		{SetOf(0), false},
		{SetOf(0, 1), true},
		{SetOf(2), true},
		{SetOf(1, 2), true},
	}
	for _, c := range cases {
		if got := f.Eval(c.s); got != c.want {
			t.Fatalf("Eval(%v) = %v, want %v", c.s, got, c.want)
		}
	}
}

func TestFormulaThresholdGate(t *testing.T) {
	f := ThresholdOf(2, []int{0, 1, 2, 3})
	if f.Eval(SetOf(1)) || !f.Eval(SetOf(1, 3)) || !f.Eval(SetOf(0, 1, 2)) {
		t.Fatal("threshold gate broken")
	}
	if f.Leaves() != 4 {
		t.Fatal("Leaves broken")
	}
}

func TestFormulaValidate(t *testing.T) {
	if err := Leaf(3).Validate(4); err != nil {
		t.Fatal(err)
	}
	if err := Leaf(4).Validate(4); err == nil {
		t.Fatal("out-of-range leaf accepted")
	}
	if err := Threshold(0, Leaf(0)).Validate(4); err == nil {
		t.Fatal("K=0 accepted")
	}
	if err := Threshold(3, Leaf(0), Leaf(1)).Validate(4); err == nil {
		t.Fatal("K>len accepted")
	}
	if err := (&Formula{Party: -1}).Validate(4); err == nil {
		t.Fatal("gate without children accepted")
	}
	var nilF *Formula
	if err := nilF.Validate(4); err == nil {
		t.Fatal("nil formula accepted")
	}
}

func TestFormulaMonotone(t *testing.T) {
	// Property: adding parties never turns a satisfied formula unsatisfied.
	f := And(ThresholdOf(3, []int{0, 1, 2, 3, 4, 5}), Or(Leaf(0), Leaf(5)))
	check := func(raw uint64, extra int) bool {
		s := Set(raw) & FullSet(6)
		bigger := s.Add(extra % 6)
		if f.Eval(s) && !f.Eval(bigger) {
			return false
		}
		return true
	}
	if err := quick.Check(func(raw uint64, extra uint8) bool {
		return check(raw, int(extra))
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFormulaString(t *testing.T) {
	f := Threshold(2, Leaf(0), Leaf(1), And(Leaf(2), Leaf(3)))
	if got := f.String(); got != "T2(P0,P1,T2(P2,P3))" {
		t.Fatalf("String = %q", got)
	}
}
