package adversary

import (
	"testing"
)

// propertyStructures are the structures the exhaustive predicate
// properties run over: thresholds at and off the Q³ boundary, both
// worked generalized examples (plus a weighted threshold whose maximal
// family is irregular), and hybrid structures at the feasibility edge.
func propertyStructures(t *testing.T) map[string]*Structure {
	t.Helper()
	weighted, err := NewWeightedThreshold([]int{1, 2, 1, 3, 1, 2, 1}, 3)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*Structure{
		"threshold(4,1)":  MustThreshold(4, 1),
		"threshold(7,2)":  MustThreshold(7, 2),
		"threshold(10,3)": MustThreshold(10, 3),
		"threshold(5,0)":  MustThreshold(5, 0),
		"example1":        Example1(),
		"weighted":        weighted,
	}
}

func mustHybrid(t *testing.T, n, tb, tc int) *Structure {
	t.Helper()
	st, err := NewHybridThreshold(n, tb, tc)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestPredicateDuality checks the defining dualities over every subset
// of every structure family:
//
//   - IsQuorum(S) ⟺ InAdversary(P ∖ S): a quorum is exactly a set whose
//     complement the adversary can corrupt, so the two predicates are
//     mirror images through complementation.
//   - HasHonest(S) ⟺ ¬InAdversary(S): a set is guaranteed an honest
//     member iff the adversary cannot corrupt all of it.
//   - Blocking: HasHonest(S) iff S intersects the complement of every
//     maximal adversary set — i.e. S meets every quorum's honest core.
//
// Hybrid structures are excluded by design: crashes widen the silent
// set without joining the adversary, so their quorum rule is strictly
// stronger than the complementation dual (see TestHybridPredicateEdges).
func TestPredicateDuality(t *testing.T) {
	for name, st := range propertyStructures(t) {
		t.Run(name, func(t *testing.T) {
			n := st.N()
			full := FullSet(n)
			maxSets, err := st.MaximalSets()
			if err != nil {
				t.Fatal(err)
			}
			for s := Set(0); s <= full; s++ {
				if st.IsQuorum(s) != st.InAdversary(full.Minus(s)) {
					t.Fatalf("%s: IsQuorum/InAdversary duality broken at %v", name, s.Members())
				}
				if st.HasHonest(s) != !st.InAdversary(s) {
					t.Fatalf("%s: HasHonest/InAdversary duality broken at %v", name, s.Members())
				}
				// S has a guaranteed honest member iff no maximal
				// corruptible set covers it.
				covered := false
				for _, a := range maxSets {
					if s.SubsetOf(a) {
						covered = true
						break
					}
				}
				if st.HasHonest(s) != !covered {
					t.Fatalf("%s: HasHonest disagrees with maximal-set cover at %v", name, s.Members())
				}
			}
		})
	}
}

// TestPredicateBoundaries pins the exact threshold boundary sizes: the
// largest rejected and smallest accepted cardinality of every predicate
// on a threshold structure, where the substitution rules of §4.2 have
// closed forms (quorum: n−t; honest witness: t+1; strong/core: 2t+1).
func TestPredicateBoundaries(t *testing.T) {
	cases := []struct{ n, tt int }{{4, 1}, {7, 2}, {10, 3}, {13, 4}, {5, 0}}
	for _, c := range cases {
		st := MustThreshold(c.n, c.tt)
		full := FullSet(c.n)
		prefix := func(k int) Set {
			s := Set(0)
			for i := 0; i < k; i++ {
				s = s.Add(i)
			}
			return s
		}
		// Quorum: first accepted at n−t.
		if q := c.n - c.tt; st.IsQuorum(prefix(q-1)) || !st.IsQuorum(prefix(q)) {
			t.Fatalf("(%d,%d): quorum boundary not at %d", c.n, c.tt, q)
		}
		// Honest witness: first accepted at t+1.
		if st.HasHonest(prefix(c.tt)) || !st.HasHonest(prefix(c.tt+1)) {
			t.Fatalf("(%d,%d): honest-witness boundary not at %d", c.n, c.tt, c.tt+1)
		}
		// Strong (and core): first accepted at 2t+1.
		if k := 2*c.tt + 1; k <= c.n {
			if st.IsStrong(prefix(k-1)) && c.tt > 0 {
				t.Fatalf("(%d,%d): IsStrong accepts %d parties", c.n, c.tt, k-1)
			}
			if !st.IsStrong(prefix(k)) {
				t.Fatalf("(%d,%d): IsStrong rejects %d parties", c.n, c.tt, k)
			}
			if st.IsCore(prefix(k-1)) && c.tt > 0 || !st.IsCore(prefix(k)) {
				t.Fatalf("(%d,%d): core boundary not at %d", c.n, c.tt, k)
			}
		}
		// The full set always satisfies everything; the empty set never
		// is a quorum unless t covers everyone's absence.
		if !st.IsQuorum(full) || !st.HasHonest(full) || !st.IsStrong(full) {
			t.Fatalf("(%d,%d): full set rejected", c.n, c.tt)
		}
		if st.IsQuorum(0) != (c.tt >= c.n) {
			t.Fatalf("(%d,%d): empty set quorum status wrong", c.n, c.tt)
		}
	}
}

// TestGeneralizedFromThresholdPredicateEquality rebuilds small threshold
// structures through the generalized maximal-set representation and
// checks every predicate agrees on every subset — the generalized code
// path and the threshold fast path must be extensionally identical.
func TestGeneralizedFromThresholdPredicateEquality(t *testing.T) {
	for _, c := range []struct{ n, tt int }{{4, 1}, {6, 1}, {7, 2}} {
		thr := MustThreshold(c.n, c.tt)
		gen, err := NewGeneralFromPredicate(c.n, func(s Set) bool {
			return s.Count() <= c.tt
		}, thr.Access)
		if err != nil {
			t.Fatal(err)
		}
		if gen.IsThreshold() {
			t.Fatalf("(%d,%d): generalized rebuild took the threshold fast path", c.n, c.tt)
		}
		full := FullSet(c.n)
		for s := Set(0); s <= full; s++ {
			if thr.InAdversary(s) != gen.InAdversary(s) ||
				thr.IsQuorum(s) != gen.IsQuorum(s) ||
				thr.HasHonest(s) != gen.HasHonest(s) ||
				thr.IsStrong(s) != gen.IsStrong(s) {
				t.Fatalf("(%d,%d): generalized disagrees with threshold at %v", c.n, c.tt, s.Members())
			}
		}
	}
}

// TestHybridPredicateEdges checks the hybrid (§6) two-sided boundary:
// only the Byzantine budget TB counts as corruptible (crashed servers
// are silent, never malicious), so the honest-witness rule needs TB+1
// senders, while the quorum rule must subtract BOTH budgets (n−TB−TC
// reachable parties) and the strong rule needs 2·TB+TC+1. The quorum/
// adversary complementation duality of the plain families is therefore
// deliberately broken by exactly the crash budget. The degenerate TC=0
// hybrid agrees with the plain threshold structure on every subset.
func TestHybridPredicateEdges(t *testing.T) {
	st := mustHybrid(t, 9, 2, 1)
	prefix := func(k int) Set {
		s := Set(0)
		for i := 0; i < k; i++ {
			s = s.Add(i)
		}
		return s
	}
	// Corruptible = up to TB Byzantine parties; the crash budget never
	// joins the adversary.
	if !st.InAdversary(prefix(2)) || st.InAdversary(prefix(3)) {
		t.Fatal("hybrid(9,2,1): corruptible boundary not at TB=2")
	}
	if st.HasHonest(prefix(2)) || !st.HasHonest(prefix(3)) {
		t.Fatal("hybrid(9,2,1): honest-witness boundary not at TB+1=3")
	}
	if st.IsQuorum(prefix(5)) || !st.IsQuorum(prefix(6)) {
		t.Fatal("hybrid(9,2,1): quorum boundary not at n-TB-TC=6")
	}
	if st.IsStrong(prefix(5)) || !st.IsStrong(prefix(6)) {
		t.Fatal("hybrid(9,2,1): strong boundary not at 2TB+TC+1=6")
	}
	// The duality gap: a 6-set is a quorum, yet its 3-party complement
	// is NOT corruptible — the crash budget accounts for the difference.
	if st.InAdversary(FullSet(9).Minus(prefix(6))) {
		t.Fatal("hybrid(9,2,1): 3-party complement should exceed the Byzantine budget")
	}

	// TC=0 degenerates to the plain threshold on every subset.
	deg := mustHybrid(t, 7, 2, 0)
	thr := MustThreshold(7, 2)
	full := FullSet(7)
	for s := Set(0); s <= full; s++ {
		if deg.InAdversary(s) != thr.InAdversary(s) ||
			deg.IsQuorum(s) != thr.IsQuorum(s) ||
			deg.HasHonest(s) != thr.HasHonest(s) ||
			deg.IsStrong(s) != thr.IsStrong(s) {
			t.Fatalf("hybrid(7,2,0) disagrees with threshold(7,2) at %v", s.Members())
		}
	}
}

// TestPredicateMonotonicityGeneralized checks upward closure of the
// accepting predicates (and downward closure of InAdversary) on the
// generalized examples by single-element perturbation of every subset.
func TestPredicateMonotonicityGeneralized(t *testing.T) {
	for _, st := range []*Structure{Example1(), Example2()} {
		n := st.N()
		full := FullSet(n)
		// Example 2 has 2^16 subsets; stride keeps the sweep fast while
		// still covering every residue pattern.
		stride := Set(1)
		if n > 12 {
			stride = 7
		}
		for s := Set(0); s <= full; s += stride {
			for i := 0; i < n; i++ {
				if s.Has(i) {
					continue
				}
				grown := s.Add(i)
				if st.IsQuorum(s) && !st.IsQuorum(grown) {
					t.Fatalf("n=%d: IsQuorum not monotone at %v + %d", n, s.Members(), i)
				}
				if st.HasHonest(s) && !st.HasHonest(grown) {
					t.Fatalf("n=%d: HasHonest not monotone at %v + %d", n, s.Members(), i)
				}
				if st.InAdversary(grown) && !st.InAdversary(s) {
					t.Fatalf("n=%d: InAdversary not downward closed at %v + %d", n, s.Members(), i)
				}
			}
		}
	}
}
