package adversary

import (
	"errors"
	"fmt"
)

// maxEnumerateParties bounds exhaustive subset enumeration; above this,
// only threshold structures (which never enumerate) are supported.
const maxEnumerateParties = 24

// Structure describes which party subsets the adversary may corrupt,
// together with the secret-sharing access structure the dealer uses.
//
// The two are distinct monotone families. The adversary structure A is
// downward-closed (subsets of corruptible sets are corruptible) and is
// represented by its maximal sets A* (paper §4.1). The access structure is
// upward-closed and is represented by a monotone threshold-gate Formula; it
// is the blueprint for the Benaloh-Leichter linear secret sharing scheme
// (§4.2). They must be compatible:
//
//  1. secrecy   — no corruptible set is qualified: ∀S ∈ A, ¬Access(S);
//  2. liveness  — a quorum minus any corruptible set is still qualified:
//     ∀S, C ∈ A, Access(P ∖ (S ∪ C)).
//
// In the paper's Example 2 the access structure is strictly coarser than
// the complement of A, which is why both are carried explicitly.
//
// A Structure with Thresh >= 0 is the classic threshold structure and gets
// O(1) predicate evaluation; Thresh == -1 marks a generalized structure.
// Fields are exported for serialization but are read-only after construction.
type Structure struct {
	// NParties is n, the total number of servers.
	NParties int
	// Thresh is t for threshold structures, -1 for generalized ones.
	Thresh int
	// MaxSets lists the maximal adversary sets A* (generalized only).
	MaxSets []Set
	// Access is the monotone secret-sharing access formula.
	Access *Formula
	// Hybrid marks a hybrid failure structure (§6): TB Byzantine
	// corruptions plus TC crashes (see hybrid.go). Hybrid structures have
	// Thresh == -1 and nil MaxSets.
	Hybrid bool
	TB, TC int
}

// NewThreshold builds the classic t-of-n adversary structure. The access
// formula is Θ_{t+1}^n over all parties.
func NewThreshold(n, t int) (*Structure, error) {
	if n < 1 || n > MaxParties {
		return nil, fmt.Errorf("adversary: n=%d out of range [1,%d]", n, MaxParties)
	}
	if t < 0 || t >= n {
		return nil, fmt.Errorf("adversary: t=%d out of range [0,%d)", t, n)
	}
	parties := make([]int, n)
	for i := range parties {
		parties[i] = i
	}
	return &Structure{
		NParties: n,
		Thresh:   t,
		Access:   ThresholdOf(t+1, parties),
	}, nil
}

// MustThreshold is NewThreshold that panics on invalid parameters; intended
// for tests and package-level examples.
func MustThreshold(n, t int) *Structure {
	s, err := NewThreshold(n, t)
	if err != nil {
		panic(err)
	}
	return s
}

// NewGeneral builds a generalized adversary structure from the maximal
// corruptible sets and a compatible access formula, validating the two
// compatibility conditions above. The maxSets slice is maximalized (sets
// contained in others are dropped), so callers may pass any generating
// family of A.
func NewGeneral(n int, maxSets []Set, access *Formula) (*Structure, error) {
	if n < 1 || n > maxEnumerateParties {
		return nil, fmt.Errorf("adversary: general structures support 1..%d parties, got %d", maxEnumerateParties, n)
	}
	if err := access.Validate(n); err != nil {
		return nil, err
	}
	if len(maxSets) == 0 {
		return nil, errors.New("adversary: no adversary sets given")
	}
	full := FullSet(n)
	for _, s := range maxSets {
		if !s.SubsetOf(full) {
			return nil, fmt.Errorf("adversary: set %v exceeds party range", s)
		}
		if s == full {
			return nil, errors.New("adversary: full party set cannot be corruptible")
		}
	}
	st := &Structure{
		NParties: n,
		Thresh:   -1,
		MaxSets:  maximalize(maxSets),
		Access:   access,
	}
	if err := st.checkCompatible(); err != nil {
		return nil, err
	}
	return st, nil
}

// NewGeneralFromPredicate builds a generalized structure by exhaustively
// enumerating the sets for which corruptible returns true. Handy for
// structures given as a Boolean condition (the paper's g functions).
func NewGeneralFromPredicate(n int, corruptible func(Set) bool, access *Formula) (*Structure, error) {
	if n < 1 || n > maxEnumerateParties {
		return nil, fmt.Errorf("adversary: general structures support 1..%d parties, got %d", maxEnumerateParties, n)
	}
	var sets []Set
	total := uint64(1) << uint(n)
	for v := uint64(0); v < total; v++ {
		if corruptible(Set(v)) {
			sets = append(sets, Set(v))
		}
	}
	return NewGeneral(n, sets, access)
}

// maximalize drops sets contained in other sets of the family.
func maximalize(sets []Set) []Set {
	sorted := append([]Set(nil), sets...)
	sortSetsByCountDesc(sorted)
	var out []Set
	for _, c := range sorted {
		contained := false
		for _, m := range out {
			if c.SubsetOf(m) {
				contained = true
				break
			}
		}
		if !contained {
			out = append(out, c)
		}
	}
	return out
}

// checkCompatible enforces the secrecy and liveness conditions between the
// adversary structure and the access formula.
func (st *Structure) checkCompatible() error {
	full := FullSet(st.NParties)
	if !st.Access.Eval(full) {
		return errors.New("adversary: access formula rejects the full party set")
	}
	for _, s := range st.MaxSets {
		if st.Access.Eval(s) {
			return fmt.Errorf("adversary: corruptible set %v is qualified (secrecy violated)", s)
		}
	}
	for _, s := range st.MaxSets {
		for _, c := range st.MaxSets {
			rest := full.Minus(s.Union(c))
			if !st.Access.Eval(rest) {
				return fmt.Errorf("adversary: honest remainder %v after corrupting %v during reconstruction by quorum P∖%v is unqualified (liveness violated)", rest, c, s)
			}
		}
	}
	return nil
}

// N returns the number of parties.
func (st *Structure) N() int { return st.NParties }

// IsThreshold reports whether the structure is a plain threshold structure.
func (st *Structure) IsThreshold() bool { return st.Thresh >= 0 }

// InAdversary reports whether the adversary may corrupt all of s (s ∈ A).
func (st *Structure) InAdversary(s Set) bool {
	if st.IsThreshold() {
		return s.Count() <= st.Thresh
	}
	if st.Hybrid {
		return st.hybridInAdversary(s)
	}
	for _, m := range st.MaxSets {
		if s.SubsetOf(m) {
			return true
		}
	}
	return false
}

// HasHonest is the generalized t+1 rule: any set outside the adversary
// structure is guaranteed to contain at least one honest party.
func (st *Structure) HasHonest(s Set) bool { return !st.InAdversary(s) }

// IsQuorum is the generalized n−t rule: s is a quorum iff its complement
// is corruptible, i.e. s ⊇ P∖T for some T ∈ A. Under Q³, any two quorums
// intersect in a set containing an honest party, and the honest parties
// alone always form a quorum.
func (st *Structure) IsQuorum(s Set) bool {
	if st.IsThreshold() {
		return s.Count() >= st.NParties-st.Thresh
	}
	if st.Hybrid {
		return st.hybridIsQuorum(s)
	}
	return st.InAdversary(s.Complement(st.NParties))
}

// IsCore is the generalized 2t+1 rule of the paper (§4.2): s contains
// T ∪ U ∪ {i} for disjoint T, U ∈ A* and i ∉ T ∪ U. Such a set keeps at
// least one honest member after removing any single corruptible set.
func (st *Structure) IsCore(s Set) bool {
	if st.IsThreshold() {
		return s.Count() >= 2*st.Thresh+1
	}
	if st.Hybrid {
		return st.hybridIsStrong(s)
	}
	for i, a := range st.MaxSets {
		if !a.SubsetOf(s) {
			continue
		}
		for j, b := range st.MaxSets {
			if i == j || !a.Disjoint(b) || !b.SubsetOf(s) {
				continue
			}
			if s.Minus(a.Union(b)) != EmptySet {
				return true
			}
		}
	}
	return false
}

// IsStrong is the monotone closure of the 2t+1 rule that the broadcast
// protocols actually rely on: s remains outside the adversary structure
// after removing ANY corruptible set, i.e. ∀C ∈ A: s ∖ C ∉ A. For
// threshold structures this is exactly |s| >= 2t+1. Neither IsCore nor
// IsStrong implies the other in general: the paper's literal S∪T∪{i}
// recipe (§4.2) is vacuous when all maximal sets pairwise intersect (the
// paper's Example 2) and fails the honest-after-removal property in
// Example 1 (e.g. {0,1,2,4,5}), so the protocols count through IsStrong.
// Under Q³ the set of honest parties always satisfies IsStrong, which is
// what guarantees liveness.
func (st *Structure) IsStrong(s Set) bool {
	if st.IsThreshold() {
		return s.Count() >= 2*st.Thresh+1
	}
	if st.Hybrid {
		return st.hybridIsStrong(s)
	}
	for _, c := range st.MaxSets {
		if st.InAdversary(s.Minus(c)) {
			return false
		}
	}
	return true
}

// Q3 reports whether the structure satisfies the Q³ condition: no three
// sets of A cover the full party set. Q³ is necessary and sufficient for
// asynchronous Byzantine agreement with a generalized adversary; n > 3t is
// the threshold special case.
func (st *Structure) Q3() bool {
	if st.IsThreshold() {
		return st.NParties > 3*st.Thresh
	}
	if st.Hybrid {
		return st.hybridQ3()
	}
	full := FullSet(st.NParties)
	biggest := maxCount(st.MaxSets)
	for i, a := range st.MaxSets {
		for j := i; j < len(st.MaxSets); j++ {
			ab := a.Union(st.MaxSets[j])
			if ab.Count()+biggest < st.NParties {
				continue // even the largest third set cannot cover P
			}
			for k := j; k < len(st.MaxSets); k++ {
				if ab.Union(st.MaxSets[k]) == full {
					return false
				}
			}
		}
	}
	return true
}

func maxCount(sets []Set) int {
	best := 0
	for _, s := range sets {
		if c := s.Count(); c > best {
			best = c
		}
	}
	return best
}

// MaximalSets returns the maximal adversary structure A*. For threshold
// structures the family is combinatorially large, so enumeration is only
// supported up to maxEnumerateParties parties.
func (st *Structure) MaximalSets() ([]Set, error) {
	if st.Hybrid {
		// Maximal LYING coalitions are the TB-subsets; enumerate like the
		// threshold case.
		tmp := &Structure{NParties: st.NParties, Thresh: st.TB}
		return tmp.MaximalSets()
	}
	if !st.IsThreshold() {
		return st.MaxSets, nil
	}
	if st.NParties > maxEnumerateParties {
		return nil, fmt.Errorf("adversary: maximal-set enumeration limited to %d parties", maxEnumerateParties)
	}
	var out []Set
	total := uint64(1) << uint(st.NParties)
	for v := uint64(0); v < total; v++ {
		if Set(v).Count() == st.Thresh {
			out = append(out, Set(v))
		}
	}
	return out, nil
}

// MaxTolerated returns the size of the largest corruptible set — the head-
// line tolerance number of the structure (e.g. 7 for the paper's Example 2
// versus 5 for any threshold structure on 16 servers).
func (st *Structure) MaxTolerated() (int, error) {
	if st.IsThreshold() {
		return st.Thresh, nil
	}
	if st.Hybrid {
		return st.TB + st.TC, nil
	}
	return maxCount(st.MaxSets), nil
}

// SigSizes reports count-based signature thresholds when the structure's
// rules are pure counts: the quorum-rule size (n−t) and the honest-rule
// size (t+1). ok is false for generalized structures, which use the
// certificate scheme instead.
func (st *Structure) SigSizes() (quorum, answer int, ok bool) {
	switch {
	case st.IsThreshold():
		return st.NParties - st.Thresh, st.Thresh + 1, true
	case st.Hybrid:
		return st.NParties - st.TB - st.TC, st.TB + 1, true
	default:
		return 0, 0, false
	}
}

// Validate performs a full sanity check of the structure.
func (st *Structure) Validate() error {
	if st.NParties < 1 || st.NParties > MaxParties {
		return fmt.Errorf("adversary: bad party count %d", st.NParties)
	}
	if st.Access == nil {
		return errors.New("adversary: missing access formula")
	}
	if err := st.Access.Validate(st.NParties); err != nil {
		return err
	}
	if st.IsThreshold() {
		if st.Thresh >= st.NParties {
			return fmt.Errorf("adversary: threshold %d >= n=%d", st.Thresh, st.NParties)
		}
		return nil
	}
	if st.Hybrid {
		return st.hybridValidate()
	}
	if len(st.MaxSets) == 0 {
		return errors.New("adversary: general structure without maximal sets")
	}
	return st.checkCompatible()
}

// String summarizes the structure.
func (st *Structure) String() string {
	if st.IsThreshold() {
		return fmt.Sprintf("threshold(n=%d,t=%d)", st.NParties, st.Thresh)
	}
	if st.Hybrid {
		return fmt.Sprintf("hybrid(n=%d,byzantine=%d,crash=%d)", st.NParties, st.TB, st.TC)
	}
	return fmt.Sprintf("general(n=%d,|A*|=%d,access=%s)", st.NParties, len(st.MaxSets), st.Access)
}
