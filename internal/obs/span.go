package obs

import "time"

// Span tracks one protocol-instance lifecycle: StartSpan counts and
// traces the instance's birth, End counts, traces, and records the
// instance latency under "<protocol>.latency.<stage>". A nil *Span (from
// a nil registry) is a no-op, so protocol code calls it unconditionally.
type Span struct {
	reg      *Registry
	protocol string
	instance string
	party    int
	start    time.Time
	ended    bool
}

// StartSpan opens a lifecycle span, counting "<protocol>.instances" and
// emitting a StageStart trace event. It returns nil for a nil registry.
func StartSpan(reg *Registry, party int, protocol, instance string) *Span {
	if reg == nil {
		return nil
	}
	reg.Counter(protocol + ".instances").Inc()
	if reg.Tracing() {
		reg.Trace(Event{Party: party, Protocol: protocol, Instance: instance,
			Stage: StageStart, Seq: -1})
	}
	return &Span{reg: reg, protocol: protocol, instance: instance,
		party: party, start: time.Now()}
}

// Registry returns the span's registry (nil for a nil span).
func (s *Span) Registry() *Registry {
	if s == nil {
		return nil
	}
	return s.reg
}

// Event counts "<protocol>.<stage>" and traces a mid-life event without
// closing the span — per-payload deliveries of a long-lived ordering
// instance, for example.
func (s *Span) Event(stage string, seq int64, note string) {
	if s == nil {
		return
	}
	s.reg.Counter(s.protocol + "." + stage).Inc()
	if s.reg.Tracing() {
		s.reg.Trace(Event{Party: s.party, Protocol: s.protocol,
			Instance: s.instance, Stage: stage, Seq: seq, Note: note})
	}
}

// End closes the span at the given terminal stage (StageDeliver,
// StageDecide), recording the instance latency. Calls after the first
// are ignored.
func (s *Span) End(stage string, seq int64) {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	s.reg.Counter(s.protocol + "." + stage).Inc()
	s.reg.Histogram(s.protocol + ".latency." + stage).ObserveSince(s.start)
	if s.reg.Tracing() {
		s.reg.Trace(Event{Party: s.party, Protocol: s.protocol,
			Instance: s.instance, Stage: stage, Seq: seq})
	}
}
