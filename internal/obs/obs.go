// Package obs is the observability layer of the protocol stack: atomic
// counters, gauges, and fixed-bucket log-scale latency histograms behind
// a Registry, plus a pluggable Tracer emitting structured protocol-stage
// events.
//
// The package is designed for the dispatch hot path of internal/engine:
//
//   - Every instrument is lock-free after creation (plain atomics).
//   - Every method is nil-safe: a nil *Registry, *Counter, *Gauge, or
//     *Histogram is the no-op default, so instrumented code needs no
//     conditionals and pays only an inlined nil check when observability
//     is off. BenchmarkRouterDispatch in internal/engine guards this.
//   - Histograms use fixed power-of-two buckets indexed by bit length, so
//     Observe is one atomic add with no allocation and no search.
//
// Instruments are named by dotted paths ("router.dispatch.latency",
// "net.msgs.rbc"); Snapshot copies the whole registry for reporting. The
// layer is generic over the deployment's adversary structure: nothing
// here assumes thresholds, parties, or a particular transport.
package obs

import (
	"fmt"
	"io"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter. The zero value is
// ready to use; a nil *Counter is a no-op.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 for nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous level (queue depth, buffered messages) that
// also tracks its high-water mark. A nil *Gauge is a no-op.
type Gauge struct {
	v   atomic.Int64
	max atomic.Int64
}

// Set records the current level.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
	g.bumpMax(v)
}

// Add moves the level by d.
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.bumpMax(g.v.Add(d))
}

func (g *Gauge) bumpMax(v int64) {
	for {
		m := g.max.Load()
		if v <= m || g.max.CompareAndSwap(m, v) {
			return
		}
	}
}

// Value returns the current level (0 for nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Max returns the high-water mark (0 for nil).
func (g *Gauge) Max() int64 {
	if g == nil {
		return 0
	}
	return g.max.Load()
}

// histBuckets is the number of histogram buckets: bucket 0 counts zero
// (and negative) observations, bucket i counts values whose bit length is
// i, i.e. values in [2^(i-1), 2^i). 63 buckets cover the full int64
// range; for nanosecond latencies bucket 35 is already ~34 s.
const histBuckets = 64

// Histogram is a fixed log-scale latency histogram. Observations are
// dimensionless int64s; by convention the stack records nanoseconds. The
// zero value is ready to use; a nil *Histogram is a no-op.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// bucketOf maps a value to its bucket index.
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v)) // in [1, 63] for positive int64
}

// BucketUpper returns the exclusive upper bound of bucket i.
func BucketUpper(i int) int64 {
	if i <= 0 {
		return 1
	}
	if i >= 63 {
		return 1<<63 - 1
	}
	return 1 << i
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bucketOf(v)].Add(1)
	for {
		m := h.max.Load()
		if v <= m || h.max.CompareAndSwap(m, v) {
			break
		}
	}
}

// ObserveSince records the nanoseconds elapsed since start.
func (h *Histogram) ObserveSince(start time.Time) {
	if h != nil {
		h.Observe(time.Since(start).Nanoseconds())
	}
}

// Snapshot copies the histogram state (zero value for nil).
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
		Max:   h.max.Load(),
	}
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n != 0 {
			s.Buckets = append(s.Buckets, Bucket{Upper: BucketUpper(i), Count: n})
		}
	}
	return s
}

// Bucket is one populated histogram bucket: Count observations below
// Upper (and above the previous bucket's bound).
type Bucket struct {
	Upper int64
	Count int64
}

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	Count   int64
	Sum     int64
	Max     int64
	Buckets []Bucket
}

// Mean returns the mean observation (0 when empty).
func (s HistogramSnapshot) Mean() int64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / s.Count
}

// Quantile returns an upper bound for the q-quantile (q in [0,1]) from
// the log-scale buckets: the bound of the first bucket at which the
// cumulative count reaches q·Count. The true quantile lies within a
// factor of two below the returned bound.
func (s HistogramSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	want := int64(q * float64(s.Count))
	if want >= s.Count {
		return s.Max
	}
	var cum int64
	for _, b := range s.Buckets {
		cum += b.Count
		if cum > want {
			if b.Upper > s.Max {
				return s.Max
			}
			return b.Upper
		}
	}
	return s.Max
}

// Registry holds a deployment's instruments by name. Instruments are
// created on first use and live for the registry's lifetime; the returned
// pointers are safe to retain and use from any goroutine. A nil *Registry
// is the no-op default: it hands out nil instruments and drops trace
// events, keeping instrumented hot paths at effectively zero overhead.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	tracer   atomic.Pointer[tracerBox]
}

// tracerBox wraps the interface so it can live in an atomic.Pointer.
type tracerBox struct{ t Tracer }

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns (creating if needed) the named counter; nil for a nil
// registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge; nil for a nil
// registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the named histogram; nil for a
// nil registry.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// SetTracer installs (or, with nil, removes) the event tracer.
func (r *Registry) SetTracer(t Tracer) {
	if r == nil {
		return
	}
	if t == nil {
		r.tracer.Store(nil)
		return
	}
	r.tracer.Store(&tracerBox{t: t})
}

// Tracing reports whether a tracer is installed, so callers can skip
// building events entirely on the common no-tracer path.
func (r *Registry) Tracing() bool {
	return r != nil && r.tracer.Load() != nil
}

// Trace emits one event to the installed tracer, stamping Time if unset.
// It is a cheap no-op without a tracer (or on a nil registry).
func (r *Registry) Trace(ev Event) {
	if r == nil {
		return
	}
	box := r.tracer.Load()
	if box == nil {
		return
	}
	if ev.Time.IsZero() {
		ev.Time = time.Now()
	}
	box.t.Trace(ev)
}

// Snapshot copies every instrument's current value (empty for nil).
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]GaugeValue{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = GaugeValue{Value: g.Value(), Max: g.Max()}
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.Snapshot()
	}
	return s
}

// GaugeValue is a gauge's snapshot: current level and high-water mark.
type GaugeValue struct {
	Value int64
	Max   int64
}

// Snapshot is a point-in-time copy of a registry — the metrics API
// consumed by SimulatedDeployment, cmd/sintra-node, and the experiment
// harness. Its fields marshal cleanly to JSON for expvar.
type Snapshot struct {
	Counters   map[string]int64
	Gauges     map[string]GaugeValue
	Histograms map[string]HistogramSnapshot
}

// Counter returns a counter by name (0 when absent).
func (s Snapshot) Counter(name string) int64 { return s.Counters[name] }

// CountersWithPrefix returns every counter under "prefix." keyed by the
// remainder of its name — e.g. per-protocol message counts under
// "net.msgs.".
func (s Snapshot) CountersWithPrefix(prefix string) map[string]int64 {
	out := make(map[string]int64)
	for name, v := range s.Counters {
		if len(name) > len(prefix) && name[:len(prefix)] == prefix {
			out[name[len(prefix):]] = v
		}
	}
	return out
}

// WriteText renders the snapshot as sorted "name value" lines — the
// periodic dump format of cmd/sintra-node.
func (s Snapshot) WriteText(w io.Writer) {
	names := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(w, "counter %-46s %d\n", name, s.Counters[name])
	}
	names = names[:0]
	for name := range s.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		g := s.Gauges[name]
		fmt.Fprintf(w, "gauge   %-46s %d (max %d)\n", name, g.Value, g.Max)
	}
	names = names[:0]
	for name := range s.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := s.Histograms[name]
		fmt.Fprintf(w, "hist    %-46s n=%d mean=%v p50<%v p99<%v max=%v\n",
			name, h.Count,
			time.Duration(h.Mean()), time.Duration(h.Quantile(0.50)),
			time.Duration(h.Quantile(0.99)), time.Duration(h.Max))
	}
}

// CounterVec hands out counters sharing a dotted prefix, caching them by
// label so hot paths avoid the registry lock after first use. A nil
// *CounterVec is a no-op.
type CounterVec struct {
	reg    *Registry
	prefix string

	mu      sync.Mutex
	byLabel map[string]*Counter
}

// CounterVec returns a labeled counter family named "prefix.<label>";
// nil for a nil registry.
func (r *Registry) CounterVec(prefix string) *CounterVec {
	if r == nil {
		return nil
	}
	return &CounterVec{reg: r, prefix: prefix, byLabel: make(map[string]*Counter)}
}

// With returns the counter for one label.
func (v *CounterVec) With(label string) *Counter {
	if v == nil {
		return nil
	}
	v.mu.Lock()
	c, ok := v.byLabel[label]
	if !ok {
		c = v.reg.Counter(v.prefix + "." + label)
		v.byLabel[label] = c
	}
	v.mu.Unlock()
	return c
}
