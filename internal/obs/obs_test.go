package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilInstrumentsAreNoOps(t *testing.T) {
	// The zero-overhead contract: every instrument method must be callable
	// through nil without panicking, and report zeros.
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter has a value")
	}
	var g *Gauge
	g.Set(3)
	g.Add(-1)
	if g.Value() != 0 || g.Max() != 0 {
		t.Fatal("nil gauge has a value")
	}
	var h *Histogram
	h.Observe(7)
	h.ObserveSince(time.Now())
	if s := h.Snapshot(); s.Count != 0 {
		t.Fatal("nil histogram has observations")
	}

	var r *Registry
	if r.Counter("x") != nil || r.Gauge("x") != nil || r.Histogram("x") != nil {
		t.Fatal("nil registry handed out instruments")
	}
	r.SetTracer(NewCollectTracer())
	if r.Tracing() {
		t.Fatal("nil registry claims to trace")
	}
	r.Trace(Event{})
	if s := r.Snapshot(); len(s.Counters) != 0 {
		t.Fatal("nil registry snapshot non-empty")
	}
	if r.CounterVec("net").With("rbc") != nil {
		t.Fatal("nil registry handed out a vec counter")
	}

	var sp *Span
	sp.Event(StageDeliver, 1, "")
	sp.End(StageDeliver, 1)
	if sp.Registry() != nil {
		t.Fatal("nil span has a registry")
	}
	if StartSpan(nil, 0, "rbc", "i") != nil {
		t.Fatal("StartSpan(nil) must return nil")
	}
}

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a.b")
	c.Inc()
	c.Add(2)
	if c.Value() != 3 {
		t.Fatalf("counter = %d, want 3", c.Value())
	}
	if r.Counter("a.b") != c {
		t.Fatal("same name must return the same counter")
	}

	g := r.Gauge("depth")
	g.Set(4)
	g.Add(3)
	g.Add(-5)
	if g.Value() != 2 {
		t.Fatalf("gauge = %d, want 2", g.Value())
	}
	if g.Max() != 7 {
		t.Fatalf("gauge max = %d, want 7", g.Max())
	}
}

func TestHistogramBuckets(t *testing.T) {
	// bucketOf: 0 and negatives land in bucket 0; positives by bit length.
	cases := []struct {
		v      int64
		bucket int
	}{
		{-5, 0}, {0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1023, 10}, {1024, 11},
	}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.bucket {
			t.Fatalf("bucketOf(%d) = %d, want %d", c.v, got, c.bucket)
		}
	}
	// Every value must fall strictly below its bucket's upper bound.
	for _, c := range cases {
		if c.v > 0 && c.v >= BucketUpper(bucketOf(c.v)) {
			t.Fatalf("value %d not below BucketUpper(%d) = %d",
				c.v, bucketOf(c.v), BucketUpper(bucketOf(c.v)))
		}
	}
}

func TestHistogramSnapshotStats(t *testing.T) {
	var h Histogram
	for _, v := range []int64{1, 2, 3, 100, 1000} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 5 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.Sum != 1106 {
		t.Fatalf("sum = %d", s.Sum)
	}
	if s.Max != 1000 {
		t.Fatalf("max = %d", s.Max)
	}
	if s.Mean() != 1106/5 {
		t.Fatalf("mean = %d", s.Mean())
	}
	// The quantile is an upper bound within a factor of two of the true
	// value, and never exceeds the observed max.
	if q := s.Quantile(0.5); q < 3 || q > 8 {
		t.Fatalf("p50 = %d, want a bound in [3,8] for median 3", q)
	}
	if q := s.Quantile(0.99); q > s.Max {
		t.Fatalf("p99 = %d exceeds max %d", q, s.Max)
	}
	if q := s.Quantile(1.0); q != s.Max {
		t.Fatalf("p100 = %d, want max %d", q, s.Max)
	}
	if (HistogramSnapshot{}).Quantile(0.5) != 0 || (HistogramSnapshot{}).Mean() != 0 {
		t.Fatal("empty snapshot must report zeros")
	}
}

func TestConcurrentInstruments(t *testing.T) {
	// Exercised under -race in CI: concurrent writers on every instrument
	// type plus snapshots in flight.
	r := NewRegistry()
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			c := r.Counter("hits")
			g := r.Gauge("depth")
			h := r.Histogram("lat")
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(seed + int64(i))
				if i%100 == 0 {
					r.Snapshot()
				}
			}
		}(int64(w))
	}
	wg.Wait()
	s := r.Snapshot()
	if got := s.Counter("hits"); got != workers*perWorker {
		t.Fatalf("hits = %d, want %d", got, workers*perWorker)
	}
	if hs := s.Histograms["lat"]; hs.Count != workers*perWorker {
		t.Fatalf("lat count = %d, want %d", hs.Count, workers*perWorker)
	}
	if g := s.Gauges["depth"]; g.Value != 0 {
		t.Fatalf("depth = %d, want 0 after balanced adds", g.Value)
	}
}

func TestRegistryTracer(t *testing.T) {
	r := NewRegistry()
	if r.Tracing() {
		t.Fatal("fresh registry must not trace")
	}
	r.Trace(Event{Protocol: "rbc"}) // dropped, no tracer

	col := NewCollectTracer()
	r.SetTracer(col)
	if !r.Tracing() {
		t.Fatal("tracer not installed")
	}
	r.Trace(Event{Party: 2, Protocol: "rbc", Instance: "i", Stage: StageDeliver, Seq: 4})
	evs := col.Events()
	if len(evs) != 1 {
		t.Fatalf("collected %d events, want 1", len(evs))
	}
	if evs[0].Time.IsZero() {
		t.Fatal("Trace must stamp the time")
	}
	if !strings.Contains(evs[0].String(), "rbc/i deliver seq=4") {
		t.Fatalf("event renders as %q", evs[0].String())
	}

	r.SetTracer(nil)
	if r.Tracing() {
		t.Fatal("tracer not removed")
	}
	r.Trace(Event{Protocol: "rbc"})
	if len(col.Events()) != 1 {
		t.Fatal("removed tracer still receives events")
	}
}

func TestMultiTracer(t *testing.T) {
	a, b := NewCollectTracer(), NewCollectTracer()
	if MultiTracer() != nil || MultiTracer(nil, nil) != nil {
		t.Fatal("empty MultiTracer must be nil")
	}
	if MultiTracer(a) != Tracer(a) {
		t.Fatal("single MultiTracer must unwrap")
	}
	m := MultiTracer(a, nil, b)
	m.Trace(Event{Protocol: "x"})
	if len(a.Events()) != 1 || len(b.Events()) != 1 {
		t.Fatal("fan-out missed a tracer")
	}
}

func TestCounterVec(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("net.msgs")
	v.With("rbc").Add(3)
	v.With("aba").Inc()
	v.With("rbc").Inc()
	s := r.Snapshot()
	per := s.CountersWithPrefix("net.msgs.")
	if per["rbc"] != 4 || per["aba"] != 1 {
		t.Fatalf("per-protocol counts = %v", per)
	}
	if s.Counter("net.msgs.rbc") != 4 {
		t.Fatal("vec counters must live in the registry namespace")
	}
}

func TestSpanLifecycle(t *testing.T) {
	r := NewRegistry()
	col := NewCollectTracer()
	r.SetTracer(col)

	sp := StartSpan(r, 1, "rbc", "inst")
	if sp.Registry() != r {
		t.Fatal("span lost its registry")
	}
	sp.Event(StageDeliver, 0, "payload")
	sp.End(StageDeliver, -1)
	sp.End(StageDeliver, -1) // idempotent

	s := r.Snapshot()
	if s.Counter("rbc.instances") != 1 {
		t.Fatalf("instances = %d", s.Counter("rbc.instances"))
	}
	if s.Counter("rbc.deliver") != 2 { // one Event + one End
		t.Fatalf("deliver = %d", s.Counter("rbc.deliver"))
	}
	if h := s.Histograms["rbc.latency.deliver"]; h.Count != 1 {
		t.Fatalf("latency observations = %d, want 1 (End must be once-only)", h.Count)
	}
	stages := make([]string, 0, 3)
	for _, ev := range col.Events() {
		stages = append(stages, ev.Stage)
	}
	want := []string{StageStart, StageDeliver, StageDeliver}
	if len(stages) != len(want) {
		t.Fatalf("stages = %v, want %v", stages, want)
	}
	for i := range want {
		if stages[i] != want[i] {
			t.Fatalf("stages = %v, want %v", stages, want)
		}
	}
}

func TestSnapshotWriteText(t *testing.T) {
	r := NewRegistry()
	r.Counter("router.dispatched").Add(9)
	r.Gauge("router.tasks.depth").Set(2)
	r.Histogram("router.dispatch.latency").Observe(1500)
	var b strings.Builder
	r.Snapshot().WriteText(&b)
	out := b.String()
	for _, want := range []string{
		"counter router.dispatched",
		"gauge   router.tasks.depth",
		"hist    router.dispatch.latency",
		"n=1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("WriteText output missing %q:\n%s", want, out)
		}
	}
}
