package obs

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Protocol stages traced by the stack. Each protocol emits the subset
// that exists in its lifecycle: every instance emits StageStart; one-shot
// broadcasts emit StageDeliver once; agreements emit StageDecide once;
// ordering layers emit StageDeliver per ordered payload.
const (
	// StageStart marks an instance beginning to participate.
	StageStart = "start"
	// StageDeliver marks a payload delivery.
	StageDeliver = "deliver"
	// StageDecide marks an agreement decision.
	StageDecide = "decide"
	// StageDrop marks a discarded message or payload (buffer overflow,
	// invalid ciphertext, bad signature share).
	StageDrop = "drop"
)

// Event is one structured protocol-stage event.
type Event struct {
	// Time is the emission time (stamped by Registry.Trace if zero).
	Time time.Time
	// Party is the emitting party index (-1 for clients/unknown).
	Party int
	// Protocol is the protocol layer ("rbc", "aba", "abc", ...).
	Protocol string
	// Instance identifies the protocol execution.
	Instance string
	// Stage is one of the Stage* constants.
	Stage string
	// Seq is a sequence number where the layer has one (-1 otherwise).
	Seq int64
	// Note carries optional free-form detail.
	Note string
}

// String renders the event on one line.
func (e Event) String() string {
	s := fmt.Sprintf("%s party=%d %s/%s %s", e.Time.Format("15:04:05.000000"),
		e.Party, e.Protocol, e.Instance, e.Stage)
	if e.Seq >= 0 {
		s += fmt.Sprintf(" seq=%d", e.Seq)
	}
	if e.Note != "" {
		s += " " + e.Note
	}
	return s
}

// Tracer consumes protocol-stage events. Implementations must be safe
// for concurrent use: every party of an in-process deployment shares one
// tracer.
type Tracer interface {
	Trace(Event)
}

// LogTracer writes events as text lines.
type LogTracer struct {
	mu sync.Mutex
	w  io.Writer
}

// NewLogTracer builds a tracer writing to w.
func NewLogTracer(w io.Writer) *LogTracer { return &LogTracer{w: w} }

// Trace writes one line.
func (t *LogTracer) Trace(ev Event) {
	t.mu.Lock()
	defer t.mu.Unlock()
	fmt.Fprintln(t.w, ev.String())
}

// CollectTracer retains events in memory — the assertion hook for tests
// and experiments.
type CollectTracer struct {
	mu     sync.Mutex
	events []Event
}

// NewCollectTracer builds an empty collector.
func NewCollectTracer() *CollectTracer { return &CollectTracer{} }

// Trace appends the event.
func (t *CollectTracer) Trace(ev Event) {
	t.mu.Lock()
	t.events = append(t.events, ev)
	t.mu.Unlock()
}

// Events copies the collected events.
func (t *CollectTracer) Events() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Event(nil), t.events...)
}

// multiTracer fans events out to several tracers.
type multiTracer []Tracer

func (m multiTracer) Trace(ev Event) {
	for _, t := range m {
		t.Trace(ev)
	}
}

// MultiTracer combines tracers; nils are skipped. It returns nil when
// nothing remains.
func MultiTracer(ts ...Tracer) Tracer {
	var out multiTracer
	for _, t := range ts {
		if t != nil {
			out = append(out, t)
		}
	}
	switch len(out) {
	case 0:
		return nil
	case 1:
		return out[0]
	default:
		return out
	}
}
