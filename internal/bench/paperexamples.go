package bench

import (
	"crypto/rand"
	"fmt"
	"sync/atomic"
	"time"

	"sintra/internal/abc"
	"sintra/internal/adversary"
	"sintra/internal/group"
	"sintra/internal/sharing"
)

// ExampleResult is the outcome of experiments E1 / E2 — the paper's §4.3
// worked examples, checked structurally and exercised live.
type ExampleResult struct {
	Name string
	N    int
	// Structural checks.
	Q3           bool
	MaxTolerated int
	ThresholdMax int // what the best threshold scheme on N servers takes
	// Secret sharing checks (the paper's LSSS construction).
	CorruptibleUnqualified bool // no corruptible set can reconstruct
	SurvivorsQualified     bool // honest remainder always reconstructs
	// Live run: the claimed worst-case corruption is crashed and the
	// atomic broadcast still delivers.
	Crashed       []int
	LiveDelivered int
	LiveLatency   time.Duration
}

// RunExample1 reproduces the paper's Example 1 claims: Q³ holds, secrets
// need ≥3 servers over ≥2 classes, and the system survives the corruption
// of the whole class a (4 of 9 servers).
func RunExample1(ops int) (ExampleResult, error) {
	st := adversary.Example1()
	crashed := []int{0, 1, 2, 3} // all of class a
	return runExample("example1", st, crashed, ops)
}

// RunExample2 reproduces the paper's Example 2 claims: Q³ holds, the
// structure tolerates one full location plus one full operating system
// (7 of 16 servers) where any threshold scheme tolerates 5.
func RunExample2(ops int) (ExampleResult, error) {
	st := adversary.Example2()
	var crashed []int
	seen := map[int]bool{}
	for i := 0; i < 4; i++ {
		for _, p := range []int{adversary.Example2Party(0, i), adversary.Example2Party(i, 0)} {
			if !seen[p] {
				seen[p] = true
				crashed = append(crashed, p)
			}
		}
	}
	return runExample("example2", st, crashed, ops)
}

func runExample(name string, st *adversary.Structure, crashed []int, ops int) (ExampleResult, error) {
	res := ExampleResult{
		Name:         name,
		N:            st.N(),
		Q3:           st.Q3(),
		ThresholdMax: (st.N() - 1) / 3,
		Crashed:      crashed,
	}
	var err error
	if res.MaxTolerated, err = st.MaxTolerated(); err != nil {
		return res, err
	}

	// Secret sharing checks over the example's own LSSS.
	g := group.Test256()
	scheme, err := sharing.ForStructure(g, st)
	if err != nil {
		return res, err
	}
	secret, err := g.RandomScalar(rand.Reader)
	if err != nil {
		return res, err
	}
	shares, err := scheme.Deal(secret, rand.Reader)
	if err != nil {
		return res, err
	}
	values := make(map[int]*group.Scalar, len(shares))
	for _, sh := range shares {
		values[sh.ID] = sh.Value
	}
	maxSets, err := st.MaximalSets()
	if err != nil {
		return res, err
	}
	res.CorruptibleUnqualified = true
	res.SurvivorsQualified = true
	for _, bad := range maxSets {
		if _, err := scheme.Reconstruct(bad, values); err == nil {
			res.CorruptibleUnqualified = false
		}
		honest := bad.Complement(st.N())
		got, err := scheme.Reconstruct(honest, values)
		if err != nil || !got.Equal(secret) {
			res.SurvivorsQualified = false
		}
	}

	// Live run with the claimed corruption crashed.
	c, err := newCluster(st, nil, crashed)
	if err != nil {
		return res, err
	}
	defer c.stop()
	var delivered atomic.Int64
	insts := make(map[int]*abc.ABC)
	for _, i := range c.alive() {
		i := i
		c.routers[i].DoSync(func() {
			insts[i] = abc.New(abc.Config{
				Router: c.routers[i], Struct: st, Instance: "ex",
				Identity: c.pub.Identity, IDKey: c.secrets[i].Identity,
				Coin: c.pub.Coin, CoinKey: c.secrets[i].Coin,
				Scheme: c.pub.QuorumSig(), Key: c.secrets[i].SigQuorum,
				Deliver: func(int64, []byte) { delivered.Add(1) },
			})
		})
	}
	alive := c.alive()
	start := time.Now()
	for op := 0; op < ops; op++ {
		sender := insts[alive[op%len(alive)]]
		if err := sender.Broadcast([]byte(fmt.Sprintf("op-%d", op))); err != nil {
			return res, err
		}
		if err := waitCount(func() int { return int(delivered.Load()) }, (op+1)*len(alive), defaultTimeout); err != nil {
			return res, err
		}
	}
	res.LiveDelivered = ops
	res.LiveLatency = time.Since(start) / time.Duration(ops)
	return res, nil
}
