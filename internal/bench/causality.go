package bench

import (
	"bytes"
	"sync"
	"sync/atomic"
	"time"

	"sintra/internal/abc"
	"sintra/internal/adversary"
	"sintra/internal/netsim"
	"sintra/internal/scabc"
	"sintra/internal/wire"
)

// CausalityResult is experiment P5: does a network-level adversary (a
// corrupted server sees at least this much) learn a request's content
// BEFORE the request is ordered? The paper's input-causality argument
// says plain atomic broadcast leaks and secure causal atomic broadcast
// does not (§3, §5.2).
type CausalityResult struct {
	// PlainLeaks: the document bytes appeared verbatim in network traffic
	// before the first delivery under plain atomic broadcast.
	PlainLeaks bool
	// CausalLeaks: same observation under secure causal atomic broadcast
	// (must be false — the ciphertext reveals nothing).
	CausalLeaks bool
}

// snoopScheduler wraps a fair scheduler and records whether the secret
// pattern occurs in any scheduled message before markDelivered is set.
type snoopScheduler struct {
	inner   netsim.Scheduler
	pattern []byte

	mu        sync.Mutex
	leaked    bool
	stopWatch bool
}

func (s *snoopScheduler) Next(pending []wire.Message) int {
	i := s.inner.Next(pending)
	s.mu.Lock()
	if !s.stopWatch {
		for j := range pending {
			if bytes.Contains(pending[j].Payload, s.pattern) {
				s.leaked = true
				break
			}
		}
	}
	s.mu.Unlock()
	return i
}

func (s *snoopScheduler) stop() {
	s.mu.Lock()
	s.stopWatch = true
	s.mu.Unlock()
}

func (s *snoopScheduler) sawPattern() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.leaked
}

// RunCausality runs the leak observation under both modes.
func RunCausality() (CausalityResult, error) {
	secret := []byte("SECRET-PATENT-CLAIM-0xC0FFEE")
	var res CausalityResult

	st := adversary.MustThreshold(4, 1)

	// Plain atomic broadcast.
	{
		snoop := &snoopScheduler{inner: netsim.NewRandomScheduler(3), pattern: secret}
		c, err := newCluster(st, snoop, nil)
		if err != nil {
			return res, err
		}
		var delivered atomic.Int64
		insts := make(map[int]*abc.ABC)
		for _, i := range c.alive() {
			i := i
			c.routers[i].DoSync(func() {
				insts[i] = abc.New(abc.Config{
					Router: c.routers[i], Struct: st, Instance: "leak",
					Identity: c.pub.Identity, IDKey: c.secrets[i].Identity,
					Coin: c.pub.Coin, CoinKey: c.secrets[i].Coin,
					Scheme: c.pub.QuorumSig(), Key: c.secrets[i].SigQuorum,
					Deliver: func(int64, []byte) { delivered.Add(1) },
				})
			})
		}
		if err := insts[0].Broadcast(secret); err != nil {
			c.stop()
			return res, err
		}
		if err := waitCount(func() int { return int(delivered.Load()) }, 4, defaultTimeout); err != nil {
			c.stop()
			return res, err
		}
		snoop.stop()
		res.PlainLeaks = snoop.sawPattern()
		c.stop()
	}

	// Secure causal atomic broadcast.
	{
		snoop := &snoopScheduler{inner: netsim.NewRandomScheduler(3), pattern: secret}
		c, err := newCluster(st, snoop, nil)
		if err != nil {
			return res, err
		}
		var delivered atomic.Int64
		var got []byte
		var gotMu sync.Mutex
		insts := make(map[int]*scabc.SCABC)
		for _, i := range c.alive() {
			i := i
			c.routers[i].DoSync(func() {
				insts[i] = scabc.New(scabc.Config{
					Router: c.routers[i], Struct: st, Instance: "leak",
					Identity: c.pub.Identity, IDKey: c.secrets[i].Identity,
					Coin: c.pub.Coin, CoinKey: c.secrets[i].Coin,
					Scheme: c.pub.QuorumSig(), Key: c.secrets[i].SigQuorum,
					Enc: c.pub.Enc, EncKey: c.secrets[i].Enc,
					Deliver: func(_ int64, req []byte) {
						gotMu.Lock()
						got = append([]byte(nil), req...)
						gotMu.Unlock()
						delivered.Add(1)
					},
				})
			})
		}
		ct, err := scabc.Encrypt(c.pub.Enc, "leak", secret)
		if err != nil {
			c.stop()
			return res, err
		}
		if err := insts[0].Submit(ct); err != nil {
			c.stop()
			return res, err
		}
		if err := waitCount(func() int { return int(delivered.Load()) }, 4, defaultTimeout); err != nil {
			c.stop()
			return res, err
		}
		// Note: decryption shares circulate only after ordering; the snoop
		// watched the whole run, but the leak question is answered by
		// whether the pattern appeared at all among CIPHERTEXT traffic
		// before ordering. To keep the observation honest we stop watching
		// at first delivery on the plain run and watch ordering-phase
		// traffic only here, by construction of the protocol: the
		// plaintext appears on no wire at any time (only inside TDH2
		// payloads and never re-broadcast in clear).
		snoop.stop()
		res.CausalLeaks = snoop.sawPattern()
		gotMu.Lock()
		ok := bytes.Equal(got, secret)
		gotMu.Unlock()
		c.stop()
		if !ok {
			return res, errDeliveredWrongPlaintext
		}
	}
	_ = time.Now
	return res, nil
}

var errDeliveredWrongPlaintext = errBench("secure causal broadcast delivered wrong plaintext")

type errBench string

func (e errBench) Error() string { return string(e) }
