package bench

import (
	"fmt"
	"io"
	"math/rand"
	"sync/atomic"
	"time"

	"sintra/internal/adversary"
	"sintra/internal/rbc"
)

// CodedRow is one measurement of experiment CD: reliable broadcast of a
// B-byte payload to n parties, with fragment dispersal on or off.
type CodedRow struct {
	Mode       string
	N, T       int
	Payload    int
	Ops        int
	LatencyPer time.Duration
	// BytesPerParty is network egress divided by n·ops: the per-party
	// bandwidth cost of one broadcast. Plain RBC echoes the full payload
	// n ways (quadratic aggregate); coded dissemination ships one B/k
	// fragment per party (linear, plus Merkle branches).
	BytesPerParty float64
	MsgsPerOp     float64
}

// RunCodedSweep measures reliable-broadcast cost across payload sizes and
// system sizes, once per mode: "on" disperses fragments above a 1-byte
// threshold (every broadcast coded), "off" always ships full payloads.
// The identical seeded schedule makes rows comparable pairwise.
func RunCodedSweep(ns, payloads []int, modes []string, ops int) ([]CodedRow, error) {
	var rows []CodedRow
	for _, mode := range modes {
		var threshold int
		switch mode {
		case "on":
			threshold = 1
		case "off":
			threshold = -1
		default:
			return nil, fmt.Errorf("bench: unknown coded mode %q (want on or off)", mode)
		}
		for _, n := range ns {
			t := (n - 1) / 3
			st, err := adversary.NewThreshold(n, t)
			if err != nil {
				return nil, err
			}
			for _, payload := range payloads {
				row, err := runCodedOnce(st, mode, threshold, payload, ops)
				if err != nil {
					return nil, fmt.Errorf("bench: coded sweep %s n=%d B=%d: %w", mode, n, payload, err)
				}
				rows = append(rows, row)
			}
		}
	}
	return rows, nil
}

func runCodedOnce(st *adversary.Structure, mode string, threshold, payload, ops int) (CodedRow, error) {
	c, err := newCluster(st, nil, nil)
	if err != nil {
		return CodedRow{}, err
	}
	defer c.stop()

	msg := make([]byte, payload)
	rand.New(rand.NewSource(int64(payload))).Read(msg)
	n := st.N()
	var delivered atomic.Int64

	startMsgs, startBytes := c.net.Stats().Total()
	start := time.Now()
	for op := 0; op < ops; op++ {
		tag := fmt.Sprintf("cd%d", op)
		var sender *rbc.RBC
		for _, i := range c.alive() {
			i := i
			c.routers[i].DoSync(func() {
				inst := rbc.New(rbc.Config{
					Router: c.routers[i], Struct: st,
					Instance: rbc.InstanceID(0, tag), Sender: 0,
					CodedThreshold: threshold,
					Deliver:        func([]byte) { delivered.Add(1) },
				})
				if i == 0 {
					sender = inst
				}
			})
		}
		if err := sender.Start(msg); err != nil {
			return CodedRow{}, err
		}
		if err := waitCount(func() int { return int(delivered.Load()) }, (op+1)*n, defaultTimeout); err != nil {
			return CodedRow{}, err
		}
	}
	elapsed := time.Since(start)
	endMsgs, endBytes := c.net.Stats().Total()
	t, err := st.MaxTolerated()
	if err != nil {
		return CodedRow{}, err
	}
	return CodedRow{
		Mode:          mode,
		N:             n,
		T:             t,
		Payload:       payload,
		Ops:           ops,
		LatencyPer:    elapsed / time.Duration(ops),
		BytesPerParty: float64(endBytes-startBytes) / float64(n*ops),
		MsgsPerOp:     float64(endMsgs-startMsgs) / float64(ops),
	}, nil
}

// PrintCodedSweep renders the CD table and, for every (n, payload) pair
// measured in both modes, the coded-to-plain bandwidth ratio — the
// quadratic-to-linear crossover the dispersal exists for.
func PrintCodedSweep(w io.Writer, rows []CodedRow) {
	fmt.Fprintf(w, "Coded dissemination (CD): reliable broadcast cost, fragments vs full payloads\n")
	fmt.Fprintf(w, "%-6s %3s %3s %9s %12s %15s %9s\n",
		"mode", "n", "t", "payload", "latency/op", "bytes/party/op", "msgs/op")
	type key struct{ n, payload int }
	on := make(map[key]*CodedRow)
	off := make(map[key]*CodedRow)
	for i := range rows {
		r := &rows[i]
		fmt.Fprintf(w, "%-6s %3d %3d %9d %12s %15.0f %9.1f\n",
			r.Mode, r.N, r.T, r.Payload, r.LatencyPer.Round(time.Microsecond),
			r.BytesPerParty, r.MsgsPerOp)
		switch r.Mode {
		case "on":
			on[key{r.N, r.Payload}] = r
		case "off":
			off[key{r.N, r.Payload}] = r
		}
	}
	for i := range rows {
		r := &rows[i]
		if r.Mode != "on" {
			continue
		}
		k := key{r.N, r.Payload}
		if p, ok := off[k]; ok && p.BytesPerParty > 0 {
			ratio := r.BytesPerParty / p.BytesPerParty
			verdict := "coded wins"
			if ratio >= 1 {
				verdict = "plain wins (overhead-dominated)"
			}
			fmt.Fprintf(w, "n=%-3d B=%-8d coded/plain bandwidth ratio %.2f — %s\n",
				r.N, r.Payload, ratio, verdict)
		}
	}
}
