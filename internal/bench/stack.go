package bench

import (
	"fmt"
	"sync/atomic"
	"time"

	"sintra/internal/aba"
	"sintra/internal/abc"
	"sintra/internal/adversary"
	"sintra/internal/cbc"
	"sintra/internal/mvba"
	"sintra/internal/rbc"
	"sintra/internal/scabc"
)

// StackRow is one measurement of experiment S3 (the §3 protocol-stack
// layer diagram): the cost of delivering one payload at one layer.
type StackRow struct {
	Layer      string
	N, T, Ops  int
	MsgsPer    float64
	BytesPerOp float64
	LatencyPer time.Duration
	// LayerP50/LayerP99 are percentiles of the layer's own latency
	// histogram (instance start to deliver/decide, aggregated over all
	// parties), from the observability registry.
	LayerP50 time.Duration
	LayerP99 time.Duration
	// DispatchP99 is the 99th percentile of single-message dispatch time
	// in the router, across all parties.
	DispatchP99 time.Duration
}

// StackLayers lists the measured layers, bottom to top.
var StackLayers = []string{"rbc", "cbc", "aba", "mvba", "abc", "scabc"}

// layerHist names the latency histogram that characterizes each layer:
// deliver for the broadcasts, decide for the agreements, submit-to-order
// for atomic broadcast, order-to-plaintext for its secure causal variant.
var layerHist = map[string]string{
	"rbc":   "rbc.latency.deliver",
	"cbc":   "cbc.latency.deliver",
	"aba":   "aba.latency.decide",
	"mvba":  "mvba.latency.decide",
	"abc":   "abc.latency.order",
	"scabc": "scabc.latency.decrypt",
}

// RunStack measures message/byte/latency cost per delivered payload for
// every layer of the broadcast stack, at each system size in ns.
// The payload is 256 bytes; ops operations are averaged per layer.
func RunStack(ns []int, ops int) ([]StackRow, error) {
	var rows []StackRow
	for _, n := range ns {
		t := (n - 1) / 3
		st, err := adversary.NewThreshold(n, t)
		if err != nil {
			return nil, err
		}
		for _, layer := range StackLayers {
			row, err := runStackLayer(st, layer, ops)
			if err != nil {
				return nil, fmt.Errorf("layer %s n=%d: %w", layer, n, err)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// RunLayer measures one layer at one threshold system size — the entry
// point of the repository-root benchmarks.
func RunLayer(n int, layer string, ops int) (StackRow, error) {
	st, err := adversary.NewThreshold(n, (n-1)/3)
	if err != nil {
		return StackRow{}, err
	}
	return runStackLayer(st, layer, ops)
}

// runStackLayer measures one layer on a fresh cluster.
func runStackLayer(st *adversary.Structure, layer string, ops int) (StackRow, error) {
	c, err := newCluster(st, nil, nil)
	if err != nil {
		return StackRow{}, err
	}
	defer c.stop()

	payload := make([]byte, 256)
	for i := range payload {
		payload[i] = byte(i)
	}
	n := st.N()
	var delivered atomic.Int64

	start := time.Now()
	switch layer {
	case "rbc":
		for op := 0; op < ops; op++ {
			tag := fmt.Sprintf("op%d", op)
			var insts []*rbc.RBC
			for _, i := range c.alive() {
				i := i
				c.routers[i].DoSync(func() {
					inst := rbc.New(rbc.Config{
						Router: c.routers[i], Struct: st,
						Instance: rbc.InstanceID(0, tag), Sender: 0,
						Deliver: func([]byte) { delivered.Add(1) },
					})
					if i == 0 {
						insts = append(insts, inst)
					}
				})
			}
			if err := insts[0].Start(payload); err != nil {
				return StackRow{}, err
			}
			if err := waitCount(func() int { return int(delivered.Load()) }, (op+1)*n, defaultTimeout); err != nil {
				return StackRow{}, err
			}
		}
	case "cbc":
		for op := 0; op < ops; op++ {
			tag := fmt.Sprintf("op%d", op)
			var sender *cbc.CBC
			for _, i := range c.alive() {
				i := i
				c.routers[i].DoSync(func() {
					inst := cbc.New(cbc.Config{
						Router: c.routers[i], Struct: st,
						Instance: cbc.InstanceID(0, tag), Sender: 0,
						Scheme: c.pub.QuorumSig(), Key: c.secrets[i].SigQuorum,
						Deliver: func([]byte, []byte) { delivered.Add(1) },
					})
					if i == 0 {
						sender = inst
					}
				})
			}
			if err := sender.Start(payload); err != nil {
				return StackRow{}, err
			}
			if err := waitCount(func() int { return int(delivered.Load()) }, (op+1)*n, defaultTimeout); err != nil {
				return StackRow{}, err
			}
		}
	case "aba":
		for op := 0; op < ops; op++ {
			tag := fmt.Sprintf("op%d", op)
			insts := make(map[int]*aba.ABA, n)
			for _, i := range c.alive() {
				i := i
				c.routers[i].DoSync(func() {
					insts[i] = aba.New(aba.Config{
						Router: c.routers[i], Struct: st, Instance: tag,
						Coin: c.pub.Coin, CoinKey: c.secrets[i].Coin,
						Decide: func(bool) { delivered.Add(1) },
					})
				})
			}
			for i, inst := range insts {
				if err := inst.Start(i%2 == 0); err != nil {
					return StackRow{}, err
				}
			}
			if err := waitCount(func() int { return int(delivered.Load()) }, (op+1)*n, defaultTimeout); err != nil {
				return StackRow{}, err
			}
		}
	case "mvba":
		for op := 0; op < ops; op++ {
			tag := fmt.Sprintf("op%d", op)
			insts := make(map[int]*mvba.MVBA, n)
			for _, i := range c.alive() {
				i := i
				c.routers[i].DoSync(func() {
					insts[i] = mvba.New(mvba.Config{
						Router: c.routers[i], Struct: st, Instance: tag,
						Coin: c.pub.Coin, CoinKey: c.secrets[i].Coin,
						Scheme: c.pub.QuorumSig(), Key: c.secrets[i].SigQuorum,
						Decide: func([]byte) { delivered.Add(1) },
					})
				})
			}
			for i, inst := range insts {
				if err := inst.Start(append(payload, byte(i))); err != nil {
					return StackRow{}, err
				}
			}
			if err := waitCount(func() int { return int(delivered.Load()) }, (op+1)*n, defaultTimeout); err != nil {
				return StackRow{}, err
			}
		}
	case "abc":
		insts := make(map[int]*abc.ABC, n)
		for _, i := range c.alive() {
			i := i
			c.routers[i].DoSync(func() {
				insts[i] = abc.New(abc.Config{
					Router: c.routers[i], Struct: st, Instance: "bench",
					Identity: c.pub.Identity, IDKey: c.secrets[i].Identity,
					Coin: c.pub.Coin, CoinKey: c.secrets[i].Coin,
					Scheme: c.pub.QuorumSig(), Key: c.secrets[i].SigQuorum,
					Deliver: func(int64, []byte) { delivered.Add(1) },
				})
			})
		}
		for op := 0; op < ops; op++ {
			if err := insts[0].Broadcast(append(payload, byte(op))); err != nil {
				return StackRow{}, err
			}
			if err := waitCount(func() int { return int(delivered.Load()) }, (op+1)*n, defaultTimeout); err != nil {
				return StackRow{}, err
			}
		}
	case "scabc":
		insts := make(map[int]*scabc.SCABC, n)
		for _, i := range c.alive() {
			i := i
			c.routers[i].DoSync(func() {
				insts[i] = scabc.New(scabc.Config{
					Router: c.routers[i], Struct: st, Instance: "bench",
					Identity: c.pub.Identity, IDKey: c.secrets[i].Identity,
					Coin: c.pub.Coin, CoinKey: c.secrets[i].Coin,
					Scheme: c.pub.QuorumSig(), Key: c.secrets[i].SigQuorum,
					Enc: c.pub.Enc, EncKey: c.secrets[i].Enc,
					Deliver: func(int64, []byte) { delivered.Add(1) },
				})
			})
		}
		for op := 0; op < ops; op++ {
			ct, err := scabc.Encrypt(c.pub.Enc, "bench", append(payload, byte(op)))
			if err != nil {
				return StackRow{}, err
			}
			if err := insts[0].Submit(ct); err != nil {
				return StackRow{}, err
			}
			if err := waitCount(func() int { return int(delivered.Load()) }, (op+1)*n, defaultTimeout); err != nil {
				return StackRow{}, err
			}
		}
	default:
		return StackRow{}, fmt.Errorf("bench: unknown layer %q", layer)
	}
	elapsed := time.Since(start)

	msgs, bytes := c.net.Stats().Total()
	snap := c.reg.Snapshot()
	lh := snap.Histograms[layerHist[layer]]
	dh := snap.Histograms["router.dispatch.latency"]
	return StackRow{
		Layer:       layer,
		N:           n,
		T:           st.Thresh,
		Ops:         ops,
		MsgsPer:     float64(msgs) / float64(ops),
		BytesPerOp:  float64(bytes) / float64(ops),
		LatencyPer:  elapsed / time.Duration(ops),
		LayerP50:    time.Duration(lh.Quantile(0.50)),
		LayerP99:    time.Duration(lh.Quantile(0.99)),
		DispatchP99: time.Duration(dh.Quantile(0.99)),
	}, nil
}
