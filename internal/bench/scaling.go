package bench

import (
	"fmt"
	"runtime"
	"time"

	"sintra/internal/adversary"
)

// ScalingRow is one measurement of the S3 stack rerun at a fixed
// GOMAXPROCS value: how much the verification pipeline buys as cores are
// added (cf. the paper's observation that public-key operations dominate
// the protocols' cost, §6).
type ScalingRow struct {
	Layer      string
	CPUs       int
	LatencyPer time.Duration
	// Scaling is baseline latency / this latency, where the baseline is
	// the first CPU count measured for the layer (1.00 for the baseline
	// row; >1 means faster).
	Scaling float64
}

// RunStackScaling reruns the S3 protocol-stack experiment once per CPU
// count, setting GOMAXPROCS before each sweep so both the Go scheduler
// and the routers' verification pools (sized from GOMAXPROCS at router
// construction) see the configured parallelism. The previous GOMAXPROCS
// value is restored on return.
func RunStackScaling(n int, cpus []int, ops int) ([]ScalingRow, error) {
	if len(cpus) == 0 {
		return nil, fmt.Errorf("bench: no CPU counts given")
	}
	st, err := adversary.NewThreshold(n, (n-1)/3)
	if err != nil {
		return nil, err
	}
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	baseline := make(map[string]time.Duration, len(StackLayers))
	var rows []ScalingRow
	for _, c := range cpus {
		if c < 1 {
			return nil, fmt.Errorf("bench: bad CPU count %d", c)
		}
		runtime.GOMAXPROCS(c)
		for _, layer := range StackLayers {
			row, err := runStackLayer(st, layer, ops)
			if err != nil {
				return nil, fmt.Errorf("layer %s cpus=%d: %w", layer, c, err)
			}
			scale := 1.0
			if b, ok := baseline[layer]; ok {
				scale = float64(b) / float64(row.LatencyPer)
			} else {
				baseline[layer] = row.LatencyPer
			}
			rows = append(rows, ScalingRow{
				Layer:      layer,
				CPUs:       c,
				LatencyPer: row.LatencyPer,
				Scaling:    scale,
			})
		}
	}
	return rows, nil
}
