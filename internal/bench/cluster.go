// Package bench is the experiment harness: it regenerates every table and
// figure of the paper from the implementation (see DESIGN.md §3 for the
// experiment index). The cmd/sintra-bench command prints the paper-style
// tables; the repository-root benchmarks reuse the same runners.
package bench

import (
	"fmt"
	"sync"
	"time"

	"sintra/internal/adversary"
	"sintra/internal/deal"
	"sintra/internal/engine"
	"sintra/internal/faultsim"
	"sintra/internal/group"
	"sintra/internal/netsim"
	"sintra/internal/obs"
	"sintra/internal/wire"
)

// defaultTimeout bounds each measured operation.
const defaultTimeout = 120 * time.Second

// benchGroup is the discrete-log group backend every dealt cluster uses.
// SetGroupName threads the sintra-bench -group flag here; the default
// follows the SINTRA_GROUP environment variable (test256 otherwise), so
// the harness and the test matrix agree. Bench runners execute
// sequentially, so a package variable is safe — the same convention as
// verifyBatchOverride.
var benchGroup = group.TestDefault()

// SetGroupName selects the group backend for all subsequent experiment
// runs (modp2048 | p256 | test256 | test512).
func SetGroupName(name string) error {
	g, err := group.ByName(name)
	if err != nil {
		return err
	}
	benchGroup = g
	return nil
}

// GroupName reports the backend experiments currently run over — the
// group tag of the printed tables.
func GroupName() string { return benchGroup.Name() }

// cluster is a dealt set of parties over the simulated network (the
// non-testing twin of internal/testutil).
type cluster struct {
	st      *adversary.Structure
	net     *netsim.Network
	routers []*engine.Router
	pub     *deal.Public
	secrets []*deal.PartySecret
	// reg aggregates metrics across every party: per-layer latency
	// histograms for the report's percentile columns.
	reg *obs.Registry

	stopOnce sync.Once
	wg       sync.WaitGroup
}

// newCluster deals keys and starts routers for every non-crashed party.
func newCluster(st *adversary.Structure, sched netsim.Scheduler, crashed []int) (*cluster, error) {
	return newClusterForceCert(st, sched, crashed, false)
}

// newClusterForceCert additionally selects the certificate signature
// scheme even for threshold structures (ablations).
func newClusterForceCert(st *adversary.Structure, sched netsim.Scheduler, crashed []int, forceCert bool) (*cluster, error) {
	return newClusterFull(st, sched, crashed, forceCert, nil)
}

// newClusterByzantine starts every party but routes the listed parties'
// traffic through faultsim attack behaviors — active corruption instead of
// the silence of a crash.
func newClusterByzantine(st *adversary.Structure, sched netsim.Scheduler, byz map[int][]faultsim.Behavior) (*cluster, error) {
	return newClusterFull(st, sched, nil, false, byz)
}

func newClusterFull(st *adversary.Structure, sched netsim.Scheduler, crashed []int, forceCert bool, byz map[int][]faultsim.Behavior) (*cluster, error) {
	pub, secrets, err := deal.New(deal.Options{
		Group:     benchGroup,
		Structure: st,
		RSAPrimes: deal.TestPrimes256(),
		ForceCert: forceCert,
	})
	if err != nil {
		return nil, err
	}
	if sched == nil {
		sched = netsim.NewRandomScheduler(1)
	}
	c := &cluster{
		st:      st,
		net:     netsim.New(st.N(), 2, sched),
		pub:     pub,
		secrets: secrets,
		reg:     obs.NewRegistry(),
	}
	c.net.SetObserver(c.reg)
	down := make(map[int]bool, len(crashed))
	for _, i := range crashed {
		down[i] = true
	}
	c.routers = make([]*engine.Router, st.N())
	for i := 0; i < st.N(); i++ {
		if down[i] {
			continue
		}
		var tr wire.Transport = c.net.Endpoint(i)
		if bs := byz[i]; len(bs) > 0 {
			p := faultsim.Wrap(tr, int64(1000003*(i+1)), bs...)
			p.SetObserver(c.reg)
			tr = p
		}
		r := engine.NewRouter(tr)
		r.SetObserver(c.reg)
		if verifyBatchOverride != 0 {
			r.SetVerifyBatch(verifyBatchOverride)
		}
		if verifyWorkersOverride != 0 {
			r.SetVerifyWorkers(verifyWorkersOverride)
		}
		c.routers[i] = r
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			r.Run()
		}()
	}
	return c, nil
}

// alive returns the indices of running parties.
func (c *cluster) alive() []int {
	var out []int
	for i, r := range c.routers {
		if r != nil {
			out = append(out, i)
		}
	}
	return out
}

func (c *cluster) stop() {
	c.stopOnce.Do(func() {
		c.net.Stop()
		c.wg.Wait()
	})
}

// waitCount blocks until the counter function (called under no lock; it
// must be thread safe) reaches want, or the timeout expires.
func waitCount(counter func() int, want int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for counter() < want {
		if time.Now().After(deadline) {
			return fmt.Errorf("bench: timeout: %d of %d events", counter(), want)
		}
		time.Sleep(200 * time.Microsecond)
	}
	return nil
}
