package bench

import (
	"fmt"
	"sync/atomic"
	"time"

	"sintra/internal/abc"
	"sintra/internal/adversary"
	"sintra/internal/faultsim"
	"sintra/internal/netsim"
)

// ToleranceRow is one point of the resilience sweep: atomic broadcast on
// n=3t+1 servers with a growing number of faulty parties. Crash faults are
// silent; Byzantine faults run the honest code over an equivocating
// transport (faultsim) — the active corruption of the paper's model. Up to
// t faults of either kind the protocol must keep delivering; at t+1
// crashes no quorum exists and progress must stop — the optimal-resilience
// boundary (n > 3t) the paper proves tight.
type ToleranceRow struct {
	N         int
	T         int
	Fault     string // "crash" or "byzantine"
	Faulty    int
	Delivered int
	Live      bool
	Elapsed   time.Duration
}

// RunToleranceSweep sweeps crash counts 0..t+1 and equivocating-Byzantine
// counts 1..t on an (n, t) deployment, attempting ops requests each time;
// beyond-threshold runs are observed for the window and must deliver
// nothing. The paired columns show the protocols absorb active lying at
// the same resilience — and nearly the same cost — as silence.
func RunToleranceSweep(n, t, ops int, window time.Duration) ([]ToleranceRow, error) {
	st, err := adversary.NewThreshold(n, t)
	if err != nil {
		return nil, err
	}
	var rows []ToleranceRow
	for crashed := 0; crashed <= t+1; crashed++ {
		row, err := runTolerancePoint(st, "crash", crashed, ops, window)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	for corrupted := 1; corrupted <= t; corrupted++ {
		row, err := runTolerancePoint(st, "byzantine", corrupted, ops, window)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// runTolerancePoint measures one (fault kind, fault count) configuration.
// Faulty parties are taken from the top of the index range so party 0, the
// broadcaster, stays honest; deliveries are counted at honest parties only
// (a Byzantine party's own view is corrupted by its lying transport).
func runTolerancePoint(st *adversary.Structure, fault string, faulty, ops int, window time.Duration) (ToleranceRow, error) {
	n, t := st.N(), st.Thresh
	var c *cluster
	var err error
	honest := make(map[int]bool, n)
	for i := 0; i < n; i++ {
		honest[i] = true
	}
	switch fault {
	case "crash":
		var down []int
		for i := 0; i < faulty; i++ {
			down = append(down, n-1-i)
			honest[n-1-i] = false
		}
		c, err = newCluster(st, netsim.NewRandomScheduler(int64(29+faulty)), down)
	case "byzantine":
		byz := make(map[int][]faultsim.Behavior, faulty)
		for i := 0; i < faulty; i++ {
			byz[n-1-i] = []faultsim.Behavior{faultsim.Equivocate()}
			honest[n-1-i] = false
		}
		c, err = newClusterByzantine(st, netsim.NewRandomScheduler(int64(59+faulty)), byz)
	default:
		return ToleranceRow{}, fmt.Errorf("bench: unknown fault kind %q", fault)
	}
	if err != nil {
		return ToleranceRow{}, err
	}
	defer c.stop()

	var delivered atomic.Int64
	insts := make(map[int]*abc.ABC)
	for _, i := range c.alive() {
		i := i
		countHere := honest[i]
		c.routers[i].DoSync(func() {
			insts[i] = abc.New(abc.Config{
				Router: c.routers[i], Struct: st, Instance: "tol",
				Identity: c.pub.Identity, IDKey: c.secrets[i].Identity,
				Coin: c.pub.Coin, CoinKey: c.secrets[i].Coin,
				Scheme: c.pub.QuorumSig(), Key: c.secrets[i].SigQuorum,
				Deliver: func(int64, []byte) {
					if countHere {
						delivered.Add(1)
					}
				},
			})
		})
	}
	nHonest := 0
	for _, i := range c.alive() {
		if honest[i] {
			nHonest++
		}
	}
	start := time.Now()
	for k := 0; k < ops; k++ {
		_ = insts[0].Broadcast([]byte(fmt.Sprintf("t-%d", k)))
	}
	row := ToleranceRow{N: n, T: t, Fault: fault, Faulty: faulty}
	if faulty <= t {
		// Every honest party must deliver everything.
		err := waitCount(func() int { return int(delivered.Load()) }, nHonest*ops, defaultTimeout)
		row.Live = err == nil
		row.Delivered = int(delivered.Load()) / nHonest
	} else {
		// Beyond the bound: observe for the window; no delivery may happen
		// (no quorum of proposals can form).
		time.Sleep(window)
		row.Delivered = int(delivered.Load()) / nHonest
		row.Live = row.Delivered > 0
	}
	row.Elapsed = time.Since(start)
	return row, nil
}

// PrintToleranceSweep renders the resilience-boundary table.
func PrintToleranceSweep(wr interface{ Write([]byte) (int, error) }, rows []ToleranceRow) {
	fmt.Fprintf(wr, "T1 — resilience boundary (n > 3t is optimal and tight)\n")
	fmt.Fprintf(wr, "%4s %3s %11s %7s %11s %7s %10s\n", "n", "t", "fault", "faulty", "delivered", "live", "elapsed")
	for _, r := range rows {
		fmt.Fprintf(wr, "%4d %3d %11s %7d %11d %7v %10s\n",
			r.N, r.T, r.Fault, r.Faulty, r.Delivered, r.Live, r.Elapsed.Round(time.Millisecond))
	}
	fmt.Fprintf(wr, "up to t faults — crash-silent or actively equivocating — full progress;\n")
	fmt.Fprintf(wr, "t+1 crashes: no quorum, no progress\n")
}
