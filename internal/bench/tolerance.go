package bench

import (
	"fmt"
	"sync/atomic"
	"time"

	"sintra/internal/abc"
	"sintra/internal/adversary"
	"sintra/internal/netsim"
)

// ToleranceRow is one point of the resilience sweep: atomic broadcast on
// n=3t+1 servers with a growing number of crashed parties. Up to t crashes
// the protocol must keep delivering; at t+1 crashes no quorum exists and
// progress must stop — the optimal-resilience boundary (n > 3t) the paper
// proves tight.
type ToleranceRow struct {
	N         int
	T         int
	Crashed   int
	Delivered int
	Live      bool
	Elapsed   time.Duration
}

// RunToleranceSweep sweeps crash counts 0..t+1 on an (n, t) deployment,
// attempting ops requests each time; beyond-threshold runs are observed
// for the window and must deliver nothing.
func RunToleranceSweep(n, t, ops int, window time.Duration) ([]ToleranceRow, error) {
	st, err := adversary.NewThreshold(n, t)
	if err != nil {
		return nil, err
	}
	var rows []ToleranceRow
	for crashed := 0; crashed <= t+1; crashed++ {
		var down []int
		for i := 0; i < crashed; i++ {
			down = append(down, n-1-i) // crash from the top
		}
		c, err := newCluster(st, netsim.NewRandomScheduler(int64(29+crashed)), down)
		if err != nil {
			return nil, err
		}
		var delivered atomic.Int64
		insts := make(map[int]*abc.ABC)
		for _, i := range c.alive() {
			i := i
			c.routers[i].DoSync(func() {
				insts[i] = abc.New(abc.Config{
					Router: c.routers[i], Struct: st, Instance: "tol",
					Identity: c.pub.Identity, IDKey: c.secrets[i].Identity,
					Coin: c.pub.Coin, CoinKey: c.secrets[i].Coin,
					Scheme: c.pub.QuorumSig(), Key: c.secrets[i].SigQuorum,
					Deliver: func(int64, []byte) { delivered.Add(1) },
				})
			})
		}
		alive := len(c.alive())
		start := time.Now()
		for k := 0; k < ops; k++ {
			_ = insts[c.alive()[0]].Broadcast([]byte(fmt.Sprintf("t-%d", k)))
		}
		row := ToleranceRow{N: n, T: t, Crashed: crashed}
		if crashed <= t {
			// Must deliver everything.
			err := waitCount(func() int { return int(delivered.Load()) }, alive*ops, defaultTimeout)
			row.Live = err == nil
			row.Delivered = int(delivered.Load()) / alive
		} else {
			// Beyond the bound: observe for the window; no delivery may
			// happen (no quorum of proposals can form).
			time.Sleep(window)
			row.Delivered = int(delivered.Load()) / alive
			row.Live = row.Delivered > 0
		}
		row.Elapsed = time.Since(start)
		c.stop()
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintToleranceSweep renders the resilience-boundary table.
func PrintToleranceSweep(wr interface{ Write([]byte) (int, error) }, rows []ToleranceRow) {
	fmt.Fprintf(wr, "T1 — resilience boundary (n > 3t is optimal and tight)\n")
	fmt.Fprintf(wr, "%4s %3s %9s %11s %7s\n", "n", "t", "crashed", "delivered", "live")
	for _, r := range rows {
		fmt.Fprintf(wr, "%4d %3d %9d %11d %7v\n", r.N, r.T, r.Crashed, r.Delivered, r.Live)
	}
	fmt.Fprintf(wr, "up to t crashes: full progress; t+1 crashes: no quorum, no progress\n")
}
