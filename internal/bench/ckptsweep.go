package bench

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"sync"
	"time"

	"sintra"
)

// ckptMachine is the sweep's Snapshotter service: a constant-size hash
// chain, so checkpointing cost is protocol overhead (snapshot, shares,
// certificate, GC), not application serialization.
type ckptMachine struct {
	mu    sync.Mutex
	state [32]byte
}

func (m *ckptMachine) Apply(seq int64, request []byte) []byte {
	m.mu.Lock()
	defer m.mu.Unlock()
	h := sha256.New()
	h.Write(m.state[:])
	var sb [8]byte
	binary.BigEndian.PutUint64(sb[:], uint64(seq))
	h.Write(sb[:])
	h.Write(request)
	copy(m.state[:], h.Sum(nil))
	return append([]byte(nil), m.state[:]...)
}

func (m *ckptMachine) Snapshot() []byte {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]byte(nil), m.state[:]...)
}

func (m *ckptMachine) Restore(snapshot []byte) error {
	if len(snapshot) != 32 {
		return fmt.Errorf("bad snapshot length %d", len(snapshot))
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	copy(m.state[:], snapshot)
	return nil
}

// CkptRow is one end-to-end measurement of the full service stack with
// checkpointing on (certify + GC every interval) or off.
type CkptRow struct {
	Mode        string
	N, Requests int
	LatencyAll  time.Duration
	// StableSeq is the final stable checkpoint; Freed counts pruned
	// delivered-digest entries summed over replicas; DeliveredMax is the
	// dedup set's high-water mark (all zero with checkpointing off).
	StableSeq    int64
	Freed        int64
	DeliveredMax int64
}

// ckptSweepInterval keeps checkpoints frequent relative to the short
// request load so the "on" rows actually exercise certify + GC.
const ckptSweepInterval = 16

// RunCheckpointSweep orders the same request load through the full
// replicated-service stack once per mode — "on" checkpoints every 16
// deliveries, "off" disables the subsystem — under the identical seeded
// schedule, measuring what the checkpoint protocol costs end to end.
func RunCheckpointSweep(n, requests int, modes []string) ([]CkptRow, error) {
	st, err := sintra.NewThresholdStructure(n, (n-1)/3)
	if err != nil {
		return nil, err
	}
	var rows []CkptRow
	for _, mode := range modes {
		var interval int64
		var name string
		switch mode {
		case "on":
			interval = ckptSweepInterval
			name = "checkpointed"
		case "off":
			interval = -1
			name = "no-checkpoint"
		default:
			return nil, fmt.Errorf("bench: unknown ckpt mode %q (want on or off)", mode)
		}
		row, err := runCheckpointOnce(st, name, requests, interval)
		if err != nil {
			return nil, fmt.Errorf("bench: ckpt sweep %s: %w", name, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func runCheckpointOnce(st *sintra.Structure, mode string, requests int, interval int64) (CkptRow, error) {
	dep, err := sintra.NewDeployment(st,
		func() sintra.StateMachine { return &ckptMachine{} },
		sintra.WithSeed(23),
		sintra.WithCheckpointInterval(interval),
	)
	if err != nil {
		return CkptRow{}, err
	}
	defer dep.Stop()
	client, err := dep.NewClient()
	if err != nil {
		return CkptRow{}, err
	}
	start := time.Now()
	for k := 0; k < requests; k++ {
		if _, err := client.Invoke(fmt.Appendf(nil, "ckpt-%03d", k), defaultTimeout); err != nil {
			return CkptRow{}, err
		}
	}
	elapsed := time.Since(start)
	snap := dep.Metrics()
	return CkptRow{
		Mode:         mode,
		N:            st.N(),
		Requests:     requests,
		LatencyAll:   elapsed,
		StableSeq:    snap.Gauges["checkpoint.stable.seq"].Value,
		Freed:        snap.Counter("checkpoint.gc.freed"),
		DeliveredMax: snap.Gauges["abc.delivered.size"].Max,
	}, nil
}

// PrintCheckpointSweep renders the sweep and, when both modes ran, the
// relative cost of checkpointing (the acceptance target is < 5%).
func PrintCheckpointSweep(w io.Writer, rows []CkptRow) {
	fmt.Fprintf(w, "Checkpoint/GC cost (full service stack, interval %d)\n", ckptSweepInterval)
	fmt.Fprintf(w, "%-14s %3s %9s %12s %11s %8s %14s\n",
		"mode", "n", "requests", "total", "stable.seq", "freed", "delivered.max")
	var on, off *CkptRow
	for i := range rows {
		r := &rows[i]
		fmt.Fprintf(w, "%-14s %3d %9d %12s %11d %8d %14d\n",
			r.Mode, r.N, r.Requests, r.LatencyAll.Round(time.Millisecond),
			r.StableSeq, r.Freed, r.DeliveredMax)
		switch r.Mode {
		case "checkpointed":
			on = r
		case "no-checkpoint":
			off = r
		}
	}
	if on != nil && off != nil && off.LatencyAll > 0 {
		pct := 100 * (float64(on.LatencyAll) - float64(off.LatencyAll)) / float64(off.LatencyAll)
		fmt.Fprintf(w, "checkpoint overhead: %+.1f%% end-to-end\n", pct)
	}
}
