package bench

import (
	"fmt"
	"io"
	"time"

	"sintra/internal/adversary"
	"sintra/internal/trust"
)

// QuorumRow is one row of the quorum-predicate cost table: the average
// latency of one IsQuorum evaluation under a trust backend, measured on
// the dispatch-goroutine hot path every protocol message pays.
type QuorumRow struct {
	Backend string
	N       int
	Sets    int // maximal adversary/fail-prone sets (0: threshold)
	Cached  bool
	PerOp   time.Duration
}

// quorumOps is the per-backend evaluation count; predicate evaluation is
// nanoseconds-to-microseconds, so a large fixed count gives stable
// averages without a benchmark harness.
const quorumOps = 1 << 12

func timePredicate(n int, eval func(s adversary.Set) bool) time.Duration {
	// Sweep a mix of below-quorum and above-quorum sets so both the
	// accept and reject paths are exercised.
	sets := make([]adversary.Set, 0, n)
	s := adversary.Set(0)
	for i := 0; i < n; i++ {
		s = s.Add(i)
		sets = append(sets, s)
	}
	start := time.Now()
	sink := false
	for i := 0; i < quorumOps; i++ {
		sink = sink != eval(sets[i%len(sets)])
	}
	elapsed := time.Since(start)
	_ = sink
	return elapsed / quorumOps
}

// RunQuorumPredicates measures IsQuorum cost across the trust backends:
// a plain threshold structure, the paper's Example 2 generalized
// structure (small family, memo cache deliberately disengaged), a large
// weighted-threshold family with and without the memo cache, and an
// asymmetric backend built from per-party fail-prone systems.
func RunQuorumPredicates() ([]QuorumRow, error) {
	var rows []QuorumRow

	thr := adversary.MustThreshold(16, 5)
	rows = append(rows, QuorumRow{
		Backend: "threshold", N: thr.N(),
		PerOp: timePredicate(thr.N(), func(s adversary.Set) bool {
			return thr.IsQuorum(s)
		}),
	})

	ex2 := adversary.Example2()
	symSmall := trust.NewSymmetric(ex2)
	rows = append(rows, QuorumRow{
		Backend: "generalized (Example 2)", N: ex2.N(), Sets: len(ex2.MaxSets),
		PerOp: timePredicate(ex2.N(), func(s adversary.Set) bool {
			return symSmall.IsQuorum(0, s)
		}),
	})

	// A weighted threshold over 16 parties produces a maximal-set family
	// large enough (hundreds of sets) that enumeration dominates and the
	// memo cache engages.
	weights := make([]int, 16)
	for i := range weights {
		weights[i] = 1 + i%4
	}
	big, err := adversary.NewWeightedThreshold(weights, 9)
	if err != nil {
		return nil, err
	}
	rows = append(rows, QuorumRow{
		Backend: "generalized (weighted, uncached)", N: big.N(), Sets: len(big.MaxSets),
		PerOp: timePredicate(big.N(), func(s adversary.Set) bool {
			return big.IsQuorum(s)
		}),
	})
	symBig := trust.NewSymmetric(big)
	rows = append(rows, QuorumRow{
		Backend: "generalized (weighted, cached)", N: big.N(), Sets: len(big.MaxSets), Cached: true,
		PerOp: timePredicate(big.N(), func(s adversary.Set) bool {
			return symBig.IsQuorum(0, s)
		}),
	})

	systems := make([]trust.FailProne, ex2.N())
	for i := range systems {
		systems[i] = trust.General(ex2.MaxSets...)
	}
	asym, err := trust.NewAsymmetric(ex2.N(), systems)
	if err != nil {
		return nil, err
	}
	rows = append(rows, QuorumRow{
		Backend: "asymmetric (uniform Example 2)", N: ex2.N(), Sets: len(ex2.MaxSets),
		PerOp: timePredicate(ex2.N(), func(s adversary.Set) bool {
			return asym.IsQuorum(3, s)
		}),
	})
	return rows, nil
}

// PrintQuorumPredicates renders the quorum-predicate cost table.
func PrintQuorumPredicates(w io.Writer, rows []QuorumRow) {
	fmt.Fprintln(w, "QP — quorum-predicate cost per IsQuorum evaluation")
	fmt.Fprintf(w, "%-34s %4s %6s %7s %12s\n", "backend", "n", "sets", "cache", "per-op")
	for _, r := range rows {
		sets := "-"
		if r.Sets > 0 {
			sets = fmt.Sprintf("%d", r.Sets)
		}
		cache := "off"
		if r.Cached {
			cache = "on"
		}
		fmt.Fprintf(w, "%-34s %4d %6s %7s %12v\n", r.Backend, r.N, sets, cache, r.PerOp)
	}
}
