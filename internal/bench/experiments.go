package bench

import (
	"fmt"
	"sync/atomic"
	"time"

	"sintra/internal/aba"
	"sintra/internal/abc"
	"sintra/internal/adversary"
	"sintra/internal/baseline"
	"sintra/internal/netsim"
	"sintra/internal/wire"
)

// ABARow is one measurement of experiment A8: binary-agreement round
// counts at one system size (paper claim: expected CONSTANT rounds,
// independent of n).
type ABARow struct {
	N          int
	T          int
	Trials     int
	MeanRounds float64
	MaxRounds  int
	MeanMsgs   float64
}

// RunABARounds measures the rounds binary agreement needs with split
// inputs (the hard case) over `trials` independent agreements per size.
func RunABARounds(ns []int, trials int) ([]ABARow, error) {
	var rows []ABARow
	for _, n := range ns {
		t := (n - 1) / 3
		st, err := adversary.NewThreshold(n, t)
		if err != nil {
			return nil, err
		}
		c, err := newCluster(st, netsim.NewRandomScheduler(7), nil)
		if err != nil {
			return nil, err
		}
		totalRounds, maxRounds := 0, 0
		var totalMsgs float64
		for trial := 0; trial < trials; trial++ {
			tag := fmt.Sprintf("trial%d", trial)
			var decided atomic.Int64
			var rounds atomic.Int64
			insts := make(map[int]*aba.ABA, n)
			for _, i := range c.alive() {
				i := i
				c.routers[i].DoSync(func() {
					var inst *aba.ABA
					inst = aba.New(aba.Config{
						Router: c.routers[i], Struct: st, Instance: tag,
						Coin: c.pub.Coin, CoinKey: c.secrets[i].Coin,
						Decide: func(bool) {
							// Round() is safe here: Decide runs on the
							// dispatch goroutine.
							if r := int64(inst.Round()); r > rounds.Load() {
								rounds.Store(r)
							}
							decided.Add(1)
						},
					})
					insts[i] = inst
				})
			}
			before, _ := c.net.Stats().Total()
			for i, inst := range insts {
				if err := inst.Start(i%2 == 0); err != nil {
					return nil, err
				}
			}
			if err := waitCount(func() int { return int(decided.Load()) }, n, defaultTimeout); err != nil {
				return nil, err
			}
			after, _ := c.net.Stats().Total()
			r := int(rounds.Load())
			totalRounds += r
			if r > maxRounds {
				maxRounds = r
			}
			totalMsgs += float64(after - before)
		}
		c.stop()
		rows = append(rows, ABARow{
			N: n, T: t, Trials: trials,
			MeanRounds: float64(totalRounds) / float64(trials),
			MaxRounds:  maxRounds,
			MeanMsgs:   totalMsgs / float64(trials),
		})
	}
	return rows, nil
}

// F1Result is experiment F1 (Figure 1): the liveness of the
// failure-detector baseline versus the randomized stack under their
// respective worst-case network adversaries.
type F1Result struct {
	Window time.Duration
	// Baseline under the leader-stalking scheduler.
	BaselineDelivered int64
	BaselineViews     int64
	// Our atomic broadcast under a scheduler that starves one party.
	OursDelivered int64
	// Our atomic broadcast under the fair scheduler, for reference.
	OursFairDelivered int64
}

// RunF1 runs the liveness comparison for the given observation window.
func RunF1(window time.Duration) (F1Result, error) {
	res := F1Result{Window: window}
	st := adversary.MustThreshold(4, 1)

	// Part 1: the deterministic baseline under the paper's §2.2 attack.
	{
		sched := baseline.NewLeaderStalker(st, netsim.NewRandomScheduler(3))
		c, err := newCluster(st, sched, nil)
		if err != nil {
			return res, err
		}
		nodes := make([]*baseline.Node, 0, 4)
		for _, i := range c.alive() {
			nodes = append(nodes, baseline.New(baseline.Config{
				Router: c.routers[i], Struct: st, Instance: "f1",
				Timeout: 20 * time.Millisecond,
			}))
		}
		_ = nodes[1].Submit([]byte("will it ever arrive"))
		time.Sleep(window)
		for _, nd := range nodes {
			d, v := nd.Stats()
			res.BaselineDelivered += d
			if v > res.BaselineViews {
				res.BaselineViews = v
			}
		}
		for _, nd := range nodes {
			nd.Stop()
		}
		c.stop()
	}

	// Part 2: the randomized stack under an adversary that starves one
	// party's traffic completely (a strictly stronger single-target attack
	// than delaying a leader: there is no leader to protect).
	run := func(sched netsim.Scheduler) (int64, error) {
		c, err := newCluster(st, sched, nil)
		if err != nil {
			return 0, err
		}
		defer c.stop()
		var delivered atomic.Int64
		insts := make(map[int]*abc.ABC, 4)
		for _, i := range c.alive() {
			i := i
			c.routers[i].DoSync(func() {
				insts[i] = abc.New(abc.Config{
					Router: c.routers[i], Struct: st, Instance: "f1",
					Identity: c.pub.Identity, IDKey: c.secrets[i].Identity,
					Coin: c.pub.Coin, CoinKey: c.secrets[i].Coin,
					Scheme: c.pub.QuorumSig(), Key: c.secrets[i].SigQuorum,
					Deliver: func(int64, []byte) { delivered.Add(1) },
				})
			})
		}
		deadline := time.Now().Add(window)
		for k := 0; time.Now().Before(deadline); k++ {
			if err := insts[1].Broadcast([]byte(fmt.Sprintf("req-%d", k))); err != nil {
				return 0, err
			}
			target := int64(4 * (k + 1))
			for delivered.Load() < target && time.Now().Before(deadline) {
				time.Sleep(200 * time.Microsecond)
			}
		}
		return delivered.Load() / 4, nil
	}
	var err error
	starver := netsim.NewDelayScheduler(5, func(m *wire.Message) bool { return m.To == 0 || m.From == 0 })
	if res.OursDelivered, err = run(starver); err != nil {
		return res, err
	}
	if res.OursFairDelivered, err = run(netsim.NewRandomScheduler(9)); err != nil {
		return res, err
	}
	return res, nil
}
