package bench

import (
	"fmt"
	"io"
	"strings"
)

// Figure1Row is one qualitative row of the paper's Figure 1 comparison.
type Figure1Row struct {
	Reference string
	Timing    string
	Servers   string
	BA        string
	Remark    string
}

// Figure1Table reproduces the paper's Figure 1, with this repository as
// the last row (the paper's "this paper" row).
func Figure1Table() []Figure1Row {
	return []Figure1Row{
		{"RB94 [33]", "async.", "static", "yes (1)", "crash-failures only"},
		{"Rampart [32]", "async.", "dynamic", "no", "FD for liveness and safety"},
		{"Total alg. [27]", "prob. async.", "static", "no", "needs causal order on links"},
		{"CL99 [11]", "async.", "static", "no", "FD for liveness"},
		{"Fleet [26]", "async.", "static", "yes (2)", "no state machine replication"},
		{"SecureRing [22]", "async.", "static", "yes (3)", `"Byzantine" FD`},
		{"DGG00 [15]", "async.", "static", "yes (3)", `"Byzantine" FD`},
		{"this repo", "async.", "static", "yes (4)", "general adversaries (Q3)"},
	}
}

// PrintFigure1 renders the qualitative table plus the measured liveness
// comparison.
func PrintFigure1(w io.Writer, res F1Result) {
	fmt.Fprintln(w, "Figure 1 — systems for secure state machine replication")
	fmt.Fprintf(w, "%-16s %-13s %-8s %-8s %s\n", "Reference", "Timing", "Servers", "BA?", "Remark")
	for _, r := range Figure1Table() {
		fmt.Fprintf(w, "%-16s %-13s %-8s %-8s %s\n", r.Reference, r.Timing, r.Servers, r.BA, r.Remark)
	}
	fmt.Fprintf(w, "\nliveness under the §2.2 scheduler attack (window %v):\n", res.Window)
	fmt.Fprintf(w, "%-34s %-12s %s\n", "protocol / adversary", "delivered", "note")
	fmt.Fprintf(w, "%-34s %-12d %s\n", "FD baseline / leader stalker", res.BaselineDelivered,
		fmt.Sprintf("%d view changes, zero progress", res.BaselineViews))
	fmt.Fprintf(w, "%-34s %-12d %s\n", "randomized ABC / party starved", res.OursDelivered,
		"terminates under any scheduler")
	fmt.Fprintf(w, "%-34s %-12d %s\n", "randomized ABC / fair network", res.OursFairDelivered, "reference")
}

// PrintStack renders the protocol-stack cost table (experiment S3). The
// percentile columns come from the observability registry: p50/p99 of
// the layer's own latency histogram, and p99 of single-message dispatch
// in the router.
func PrintStack(w io.Writer, rows []StackRow) {
	fmt.Fprintf(w, "S3 — cost per delivered payload, by protocol layer (256 B payloads, group=%s)\n", GroupName())
	fmt.Fprintf(w, "%-7s %4s %3s %12s %14s %12s %10s %10s %12s\n",
		"layer", "n", "t", "msgs/op", "bytes/op", "latency/op", "p50", "p99", "dispatch-p99")
	for _, r := range rows {
		fmt.Fprintf(w, "%-7s %4d %3d %12.1f %14.0f %12v %10v %10v %12v\n",
			r.Layer, r.N, r.T, r.MsgsPer, r.BytesPerOp, r.LatencyPer.Round(10*1000),
			r.LayerP50.Round(10*1000), r.LayerP99.Round(10*1000), r.DispatchP99.Round(1000))
	}
}

// PrintABARounds renders the expected-constant-rounds table (experiment A8).
func PrintABARounds(w io.Writer, rows []ABARow) {
	fmt.Fprintf(w, "A8 — randomized binary agreement, split inputs (group=%s)\n", GroupName())
	fmt.Fprintf(w, "%4s %3s %7s %12s %11s %12s\n", "n", "t", "trials", "mean rounds", "max rounds", "mean msgs")
	for _, r := range rows {
		fmt.Fprintf(w, "%4d %3d %7d %12.2f %11d %12.1f\n",
			r.N, r.T, r.Trials, r.MeanRounds, r.MaxRounds, r.MeanMsgs)
	}
	fmt.Fprintln(w, "paper claim: expected constant rounds, independent of n")
}

// PrintExample renders an E1/E2 result.
func PrintExample(w io.Writer, res ExampleResult) {
	fmt.Fprintf(w, "%s — n=%d servers\n", res.Name, res.N)
	fmt.Fprintf(w, "  Q3 condition:                        %v\n", res.Q3)
	fmt.Fprintf(w, "  largest tolerated corruption:        %d servers\n", res.MaxTolerated)
	fmt.Fprintf(w, "  best threshold scheme on %d servers: t = %d\n", res.N, res.ThresholdMax)
	fmt.Fprintf(w, "  corruptible sets cannot reconstruct: %v\n", res.CorruptibleUnqualified)
	fmt.Fprintf(w, "  honest survivors always reconstruct: %v\n", res.SurvivorsQualified)
	fmt.Fprintf(w, "  live run with servers %v crashed (%d of %d):\n", res.Crashed, len(res.Crashed), res.N)
	fmt.Fprintf(w, "    atomic broadcast delivered %d/%d requests, %v per request\n",
		res.LiveDelivered, res.LiveDelivered, res.LiveLatency.Round(10*1000))
}

// PrintCausality renders the P5 result.
func PrintCausality(w io.Writer, res CausalityResult) {
	fmt.Fprintln(w, "P5 — input causality (notary front-running, §5.2)")
	fmt.Fprintf(w, "  request content visible on the wire before ordering:\n")
	fmt.Fprintf(w, "    plain atomic broadcast:         %v  (corrupted server could front-run)\n", res.PlainLeaks)
	fmt.Fprintf(w, "    secure causal atomic broadcast: %v  (TDH2 keeps it sealed until ordered)\n", res.CausalLeaks)
}

// Separator prints a section break.
func Separator(w io.Writer) {
	fmt.Fprintln(w, strings.Repeat("-", 72))
}

// PrintBatchAblation renders the batching ablation.
func PrintBatchAblation(w io.Writer, rows []BatchRow) {
	fmt.Fprintf(w, "AB1 — batching ablation (atomic broadcast, n=4, group=%s)\n", GroupName())
	fmt.Fprintf(w, "%10s %9s %7s %12s %12s\n", "batch", "requests", "rounds", "msgs/req", "total time")
	for _, r := range rows {
		fmt.Fprintf(w, "%10d %9d %7d %12.1f %12v\n",
			r.BatchSize, r.Requests, r.Rounds, r.MsgsPerReq, r.LatencyAll.Round(10*1000))
	}
	fmt.Fprintln(w, "larger batches amortize one agreement over many requests (§6 optimizations)")
}

// PrintBatchVerifySweep renders the batch-verification sweep: the same
// atomic-broadcast load with coalesced share verification on and off.
func PrintBatchVerifySweep(w io.Writer, rows []BatchVerifyRow) {
	if len(rows) == 0 {
		return
	}
	fmt.Fprintf(w, "AB3 — batch-verification sweep (atomic broadcast, n=%d, group=%s)\n", rows[0].N, GroupName())
	fmt.Fprintf(w, "%-10s %9s %12s %9s %13s %11s\n", "mode", "requests", "total time", "batches", "batched msgs", "mean batch")
	for _, r := range rows {
		mean := 0.0
		if r.Batches > 0 {
			mean = float64(r.BatchedMsgs) / float64(r.Batches)
		}
		fmt.Fprintf(w, "%-10s %9d %12v %9d %13d %11.1f\n",
			r.Mode, r.Requests, r.LatencyAll.Round(10*1000), r.Batches, r.BatchedMsgs, mean)
	}
	fmt.Fprintln(w, "one random-linear-combination multi-exp checks a whole share burst; culprits isolated by binary split")
}

// PrintSigSchemeAblation renders the signature-scheme ablation.
func PrintSigSchemeAblation(w io.Writer, rows []SigSchemeRow) {
	fmt.Fprintln(w, "AB2 — threshold-signature ablation (same atomic-broadcast workload)")
	fmt.Fprintf(w, "%-14s %4s %9s %12s %14s %12s\n", "scheme", "n", "requests", "msgs/req", "bytes/req", "total time")
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s %4d %9d %12.1f %14.0f %12v\n",
			r.Scheme, r.N, r.Requests, r.MsgsPerReq, r.BytesPer, r.LatencyAll.Round(10*1000))
	}
	fmt.Fprintln(w, "Shoup RSA: constant-size signatures, heavy arithmetic; certificates: linear size, cheap ops")
}

// PrintStackScaling renders the GOMAXPROCS scaling table: the S3 stack
// rerun per CPU count, with speedup relative to the first count.
func PrintStackScaling(w io.Writer, n int, rows []ScalingRow) {
	fmt.Fprintf(w, "S3 scaling — latency per delivered payload vs GOMAXPROCS (n=%d, group=%s)\n", n, GroupName())
	fmt.Fprintf(w, "%-7s %5s %12s %9s\n", "layer", "cpus", "latency/op", "scaling")
	for _, r := range rows {
		fmt.Fprintf(w, "%-7s %5d %12v %8.2fx\n",
			r.Layer, r.CPUs, r.LatencyPer.Round(10*1000), r.Scaling)
	}
	fmt.Fprintln(w, "scaling = first-row latency / row latency, per layer; the verify")
	fmt.Fprintln(w, "pool moves signature/proof checks off the dispatch goroutine, so")
	fmt.Fprintln(w, "headroom appears only when cpus > 1")
}
