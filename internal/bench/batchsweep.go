package bench

import (
	"fmt"
	"sync/atomic"
	"time"

	"sintra/internal/abc"
	"sintra/internal/adversary"
	"sintra/internal/netsim"
)

// verifyBatchOverride threads the router's verify-coalescing knob into
// newClusterFull: 0 keeps the engine default, negative disables batch
// verification. Bench runners execute sequentially, so a package variable
// is safe; RunBatchVerifySweep restores it before returning.
var verifyBatchOverride int

// verifyWorkersOverride likewise sizes the routers' verify pools (0 keeps
// the engine default). The batch sweep pins it to one worker per router:
// coalescing pays off exactly when verification cannot fan out over spare
// cores, so the sweep models the CPU-bound deployment where the backlog
// the batcher drains actually forms.
var verifyWorkersOverride int

// BatchVerifyRow is one end-to-end measurement of atomic broadcast with
// share-burst batch verification on (coalesced multi-exponentiation) or
// off (every share proof checked individually).
type BatchVerifyRow struct {
	Mode        string
	N, Requests int
	LatencyAll  time.Duration
	// Batches/BatchedMsgs sum the engine.verify.batch counters over all
	// parties: coalesced BatchVerify calls and the messages they covered
	// (both zero with batching off).
	Batches     int64
	BatchedMsgs int64
}

// RunBatchVerifySweep orders the same request load once per mode — "on"
// engages the engine's coalescing batch-verification stage, "off" forces
// the per-share fallback — and reports end-to-end time plus how much
// coalescing actually happened. Every run uses the identical seeded
// schedule, so the difference is the verification strategy alone.
func RunBatchVerifySweep(n, requests int, modes []string) ([]BatchVerifyRow, error) {
	st, err := adversary.NewThreshold(n, (n-1)/3)
	if err != nil {
		return nil, err
	}
	verifyWorkersOverride = 1
	defer func() { verifyBatchOverride, verifyWorkersOverride = 0, 0 }()
	var rows []BatchVerifyRow
	for _, mode := range modes {
		var name string
		switch mode {
		case "on":
			verifyBatchOverride = 0
			name = "batched"
		case "off":
			verifyBatchOverride = -1
			name = "per-share"
		default:
			return nil, fmt.Errorf("bench: unknown batch mode %q (want on or off)", mode)
		}
		row, err := runBatchVerifyOnce(st, name, requests)
		if err != nil {
			return nil, fmt.Errorf("bench: batch sweep %s: %w", name, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func runBatchVerifyOnce(st *adversary.Structure, mode string, requests int) (BatchVerifyRow, error) {
	n := st.N()
	c, err := newCluster(st, netsim.NewRandomScheduler(23), nil)
	if err != nil {
		return BatchVerifyRow{}, err
	}
	defer c.stop()
	var delivered atomic.Int64
	insts := make(map[int]*abc.ABC, n)
	for _, i := range c.alive() {
		i := i
		c.routers[i].DoSync(func() {
			insts[i] = abc.New(abc.Config{
				Router: c.routers[i], Struct: st, Instance: "batchsweep",
				Identity: c.pub.Identity, IDKey: c.secrets[i].Identity,
				Coin: c.pub.Coin, CoinKey: c.secrets[i].Coin,
				Scheme: c.pub.QuorumSig(), Key: c.secrets[i].SigQuorum,
				Deliver: func(int64, []byte) { delivered.Add(1) },
			})
		})
	}
	start := time.Now()
	// The whole load lands up front, spread over the parties, so share
	// bursts pile up in the verify queues — the shape coalescing targets.
	for k := 0; k < requests; k++ {
		if err := insts[k%n].Broadcast([]byte(fmt.Sprintf("req-%03d", k))); err != nil {
			return BatchVerifyRow{}, err
		}
	}
	if err := waitCount(func() int { return int(delivered.Load()) }, n*requests, defaultTimeout); err != nil {
		return BatchVerifyRow{}, err
	}
	elapsed := time.Since(start)
	snap := c.reg.Snapshot()
	return BatchVerifyRow{
		Mode:        mode,
		N:           n,
		Requests:    requests,
		LatencyAll:  elapsed,
		Batches:     snap.Counter("engine.verify.batch.batches"),
		BatchedMsgs: snap.Counter("engine.verify.batch.messages"),
	}, nil
}
