package bench

import (
	"fmt"
	"io"
	"os"
	"time"

	"sintra"
)

// WALRow is one end-to-end measurement of the full service stack with the
// durability journal on (every protocol-critical message fsynced before
// transmission, group-committed) or off.
type WALRow struct {
	Mode        string
	N, Requests int
	LatencyAll  time.Duration
	// Records counts journaled outbound messages; Bytes is the final
	// on-disk WAL footprint after checkpoint-driven truncation (both
	// zero with the journal off).
	Records int64
	Bytes   int64
}

// walSweepInterval matches the checkpoint sweep so journal truncation is
// exercised several times within the short request load.
const walSweepInterval = 16

// RunWALSweep orders the same request load through the full
// replicated-service stack once per mode — "on" journals to a throwaway
// data directory with real group-commit fsync at the default interval,
// "off" runs memoryless, and a duration (e.g. "500us", "5ms") journals
// with that group-commit cap — under the identical seeded schedule,
// measuring what durability costs end to end and how the fsync batch
// window trades latency for it.
func RunWALSweep(n, requests int, modes []string) ([]WALRow, error) {
	st, err := sintra.NewThresholdStructure(n, (n-1)/3)
	if err != nil {
		return nil, err
	}
	var rows []WALRow
	for _, mode := range modes {
		switch mode {
		case "on", "off":
		default:
			if _, err := time.ParseDuration(mode); err != nil {
				return nil, fmt.Errorf("bench: unknown wal mode %q (want on, off, or a sync interval like 5ms)", mode)
			}
		}
		row, err := runWALOnce(st, mode, requests)
		if err != nil {
			return nil, fmt.Errorf("bench: wal sweep %s: %w", mode, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func runWALOnce(st *sintra.Structure, mode string, requests int) (WALRow, error) {
	opts := []sintra.SimOption{
		sintra.WithSeed(23),
		sintra.WithCheckpointInterval(walSweepInterval),
	}
	name := "no-wal"
	if mode != "off" {
		dir, err := os.MkdirTemp("", "sintra-walsweep-*")
		if err != nil {
			return WALRow{}, err
		}
		defer os.RemoveAll(dir)
		opts = append(opts, sintra.WithDataDir(dir))
		name = "journaled"
		if mode != "on" {
			d, err := time.ParseDuration(mode)
			if err != nil {
				return WALRow{}, err
			}
			opts = append(opts, sintra.WithWALSyncInterval(d))
			name = "sync=" + mode
		}
	}
	dep, err := sintra.NewDeployment(st,
		func() sintra.StateMachine { return &ckptMachine{} }, opts...)
	if err != nil {
		return WALRow{}, err
	}
	defer dep.Stop()
	client, err := dep.NewClient()
	if err != nil {
		return WALRow{}, err
	}
	start := time.Now()
	for k := 0; k < requests; k++ {
		if _, err := client.Invoke(fmt.Appendf(nil, "wal-%03d", k), defaultTimeout); err != nil {
			return WALRow{}, err
		}
	}
	elapsed := time.Since(start)
	snap := dep.Metrics()
	return WALRow{
		Mode:       name,
		N:          st.N(),
		Requests:   requests,
		LatencyAll: elapsed,
		Records:    snap.Counter("wal.records"),
		Bytes:      snap.Gauges["wal.size.bytes"].Value,
	}, nil
}

// PrintWALSweep renders the sweep and, when both modes ran, the relative
// end-to-end cost of journal-before-send durability.
func PrintWALSweep(w io.Writer, rows []WALRow) {
	fmt.Fprintf(w, "Write-ahead log cost (full service stack, checkpoint interval %d)\n", walSweepInterval)
	fmt.Fprintf(w, "%-12s %3s %9s %12s %12s %12s\n",
		"mode", "n", "requests", "total", "wal.records", "wal.bytes")
	var on, off *WALRow
	for i := range rows {
		r := &rows[i]
		fmt.Fprintf(w, "%-12s %3d %9d %12s %12d %12d\n",
			r.Mode, r.N, r.Requests, r.LatencyAll.Round(time.Millisecond),
			r.Records, r.Bytes)
		switch r.Mode {
		case "journaled":
			on = r
		case "no-wal":
			off = r
		}
	}
	if on != nil && off != nil && off.LatencyAll > 0 {
		pct := 100 * (float64(on.LatencyAll) - float64(off.LatencyAll)) / float64(off.LatencyAll)
		fmt.Fprintf(w, "durability overhead: %+.1f%% end-to-end\n", pct)
	}
}
