package bench

import (
	"fmt"
	"sync/atomic"
	"time"

	"sintra/internal/abc"
	"sintra/internal/adversary"
	"sintra/internal/netsim"
)

// BatchRow is one measurement of the batching ablation: atomic-broadcast
// throughput as a function of the proposal batch size.
type BatchRow struct {
	BatchSize  int
	Requests   int
	Rounds     int64
	MsgsPerReq float64
	LatencyAll time.Duration
}

// RunBatchAblation orders the same request load (n=4) with different
// proposal batch sizes. Larger batches amortize the per-round agreement
// over more requests — the knob the paper's "optimizations" discussion
// (§6) points at.
func RunBatchAblation(batchSizes []int, requests int) ([]BatchRow, error) {
	var rows []BatchRow
	st := adversary.MustThreshold(4, 1)
	for _, bs := range batchSizes {
		c, err := newCluster(st, netsim.NewRandomScheduler(17), nil)
		if err != nil {
			return nil, err
		}
		var delivered atomic.Int64
		insts := make(map[int]*abc.ABC, 4)
		for _, i := range c.alive() {
			i := i
			c.routers[i].DoSync(func() {
				insts[i] = abc.New(abc.Config{
					Router: c.routers[i], Struct: st, Instance: "batch",
					Identity: c.pub.Identity, IDKey: c.secrets[i].Identity,
					Coin: c.pub.Coin, CoinKey: c.secrets[i].Coin,
					Scheme: c.pub.QuorumSig(), Key: c.secrets[i].SigQuorum,
					BatchSize: bs,
					Deliver:   func(int64, []byte) { delivered.Add(1) },
				})
			})
		}
		start := time.Now()
		// Submit the whole load up front, spread over the parties, so
		// batching has something to batch.
		for k := 0; k < requests; k++ {
			if err := insts[k%4].Broadcast([]byte(fmt.Sprintf("req-%03d", k))); err != nil {
				c.stop()
				return nil, err
			}
		}
		if err := waitCount(func() int { return int(delivered.Load()) }, 4*requests, defaultTimeout); err != nil {
			c.stop()
			return nil, err
		}
		elapsed := time.Since(start)
		msgs, _ := c.net.Stats().Total()
		var rounds int64
		c.routers[0].DoSync(func() { rounds = insts[0].Round() - 1 })
		c.stop()
		rows = append(rows, BatchRow{
			BatchSize:  bs,
			Requests:   requests,
			Rounds:     rounds,
			MsgsPerReq: float64(msgs) / float64(requests),
			LatencyAll: elapsed,
		})
	}
	return rows, nil
}

// SigSchemeRow is one measurement of the signature-scheme ablation:
// Shoup threshold RSA (constant-size signatures, heavy arithmetic) versus
// the Ed25519 certificate scheme (linear-size, cheap), both driving the
// same atomic broadcast.
type SigSchemeRow struct {
	Scheme     string
	N          int
	Requests   int
	MsgsPerReq float64
	BytesPer   float64
	LatencyAll time.Duration
}

// RunSigSchemeAblation compares the two threshold-signature realizations
// (DESIGN.md substitution 2) on the same atomic-broadcast workload.
func RunSigSchemeAblation(n, requests int) ([]SigSchemeRow, error) {
	st, err := adversary.NewThreshold(n, (n-1)/3)
	if err != nil {
		return nil, err
	}
	var rows []SigSchemeRow
	for _, scheme := range []string{"shoup-rsa", "ed25519-cert"} {
		c, err := newClusterForceCert(st, netsim.NewRandomScheduler(19), nil, scheme == "ed25519-cert")
		if err != nil {
			return nil, err
		}
		var delivered atomic.Int64
		insts := make(map[int]*abc.ABC, n)
		for _, i := range c.alive() {
			i := i
			c.routers[i].DoSync(func() {
				insts[i] = abc.New(abc.Config{
					Router: c.routers[i], Struct: st, Instance: "sig",
					Identity: c.pub.Identity, IDKey: c.secrets[i].Identity,
					Coin: c.pub.Coin, CoinKey: c.secrets[i].Coin,
					Scheme: c.pub.QuorumSig(), Key: c.secrets[i].SigQuorum,
					Deliver: func(int64, []byte) { delivered.Add(1) },
				})
			})
		}
		start := time.Now()
		for k := 0; k < requests; k++ {
			if err := insts[k%n].Broadcast([]byte(fmt.Sprintf("req-%03d", k))); err != nil {
				c.stop()
				return nil, err
			}
			if err := waitCount(func() int { return int(delivered.Load()) }, n*(k+1), defaultTimeout); err != nil {
				c.stop()
				return nil, err
			}
		}
		elapsed := time.Since(start)
		msgs, bytes := c.net.Stats().Total()
		c.stop()
		rows = append(rows, SigSchemeRow{
			Scheme:     scheme,
			N:          n,
			Requests:   requests,
			MsgsPerReq: float64(msgs) / float64(requests),
			BytesPer:   float64(bytes) / float64(requests),
			LatencyAll: elapsed,
		})
	}
	return rows, nil
}
