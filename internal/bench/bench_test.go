package bench

import (
	"bytes"
	"testing"
	"time"
)

// The experiment harness is exercised heavily by cmd/sintra-bench and the
// root benchmarks; these smoke tests keep it correct under `go test` and
// assert the headline claims on minimal parameters.

func TestRunLayerSmoke(t *testing.T) {
	for _, layer := range []string{"rbc", "cbc"} {
		row, err := RunLayer(4, layer, 1)
		if err != nil {
			t.Fatalf("%s: %v", layer, err)
		}
		if row.MsgsPer <= 0 || row.BytesPerOp <= 0 {
			t.Fatalf("%s: empty metrics %+v", layer, row)
		}
	}
	if _, err := RunLayer(4, "bogus", 1); err == nil {
		t.Fatal("unknown layer accepted")
	}
}

func TestRunABARoundsSmoke(t *testing.T) {
	rows, err := RunABARounds([]int{4}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].MeanRounds < 1 {
		t.Fatalf("rounds = %v", rows[0].MeanRounds)
	}
}

func TestRunF1ReproducesLivenessGap(t *testing.T) {
	res, err := RunF1(400 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if res.BaselineDelivered != 0 {
		t.Fatalf("baseline delivered %d under the stalker", res.BaselineDelivered)
	}
	if res.BaselineViews < 2 {
		t.Fatalf("baseline made only %d view changes", res.BaselineViews)
	}
	if res.OursDelivered == 0 {
		t.Fatal("randomized stack made no progress")
	}
}

func TestRunExamplesReproduceClaims(t *testing.T) {
	e1, err := RunExample1(1)
	if err != nil {
		t.Fatal(err)
	}
	if !e1.Q3 || e1.MaxTolerated != 4 || !e1.CorruptibleUnqualified || !e1.SurvivorsQualified {
		t.Fatalf("example1: %+v", e1)
	}
	e2, err := RunExample2(1)
	if err != nil {
		t.Fatal(err)
	}
	if !e2.Q3 || e2.MaxTolerated != 7 || e2.ThresholdMax != 5 || !e2.SurvivorsQualified {
		t.Fatalf("example2: %+v", e2)
	}
}

func TestRunCausalityDirection(t *testing.T) {
	res, err := RunCausality()
	if err != nil {
		t.Fatal(err)
	}
	if !res.PlainLeaks || res.CausalLeaks {
		t.Fatalf("causality inverted: %+v", res)
	}
}

func TestBatchAblationMonotone(t *testing.T) {
	// Batch 1 forces one agreement per handful of requests; batch 16 can
	// order the whole load in very few rounds. Expect a clear reduction
	// (the margin absorbs scheduler noise).
	rows, err := RunBatchAblation([]int{1, 16}, 16)
	if err != nil {
		t.Fatal(err)
	}
	if rows[1].MsgsPerReq >= rows[0].MsgsPerReq*0.9 {
		t.Fatalf("batching did not reduce msgs/req: batch16=%v vs batch1=%v", rows[1].MsgsPerReq, rows[0].MsgsPerReq)
	}
	if rows[1].Rounds > rows[0].Rounds {
		t.Fatalf("bigger batches used more rounds: %d vs %d", rows[1].Rounds, rows[0].Rounds)
	}
}

func TestPrinters(t *testing.T) {
	var buf bytes.Buffer
	PrintFigure1(&buf, F1Result{Window: time.Second})
	PrintStack(&buf, []StackRow{{Layer: "rbc", N: 4}})
	PrintABARounds(&buf, []ABARow{{N: 4}})
	PrintExample(&buf, ExampleResult{Name: "x"})
	PrintCausality(&buf, CausalityResult{PlainLeaks: true})
	PrintBatchAblation(&buf, []BatchRow{{BatchSize: 1}})
	PrintSigSchemeAblation(&buf, []SigSchemeRow{{Scheme: "rsa"}})
	Separator(&buf)
	if buf.Len() == 0 {
		t.Fatal("printers produced nothing")
	}
	if len(Figure1Table()) != 8 {
		t.Fatal("Figure 1 must list the paper's seven systems plus this repo")
	}
}

func TestToleranceBoundary(t *testing.T) {
	rows, err := RunToleranceSweep(4, 1, 1, 500*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	sawByzantine := false
	for _, r := range rows {
		if r.Faulty <= r.T && !r.Live {
			t.Fatalf("stalled with %d <= t %s faults", r.Faulty, r.Fault)
		}
		if r.Faulty > r.T && r.Live {
			t.Fatalf("progressed with %d > t crashes — the n>3t bound should be tight", r.Faulty)
		}
		if r.Fault == "byzantine" {
			sawByzantine = true
		}
	}
	if !sawByzantine {
		t.Fatal("sweep has no byzantine rows — active corruption must be measured too")
	}
	PrintToleranceSweep(bytes.NewBuffer(nil), rows)
}
