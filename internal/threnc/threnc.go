// Package threnc implements the TDH2 threshold cryptosystem of Shoup and
// Gennaro (EUROCRYPT '98): a threshold public-key encryption scheme secure
// against adaptive chosen-ciphertext attacks in the random-oracle model.
//
// The paper's architecture needs exactly this primitive for secure causal
// atomic broadcast (§3, §5.2): client requests are encrypted under the
// service's single public key and decrypted by the servers only after the
// ciphertext has been ordered, so that corrupted servers can neither read
// nor meaningfully replay a request before it is scheduled. CCA2 security
// is essential — without it the adversary could submit a related ciphertext
// and violate input causality (the notary front-running attack).
//
// The implementation is hybrid: TDH2 transports a KEM key h^r whose hash
// keys an AES-GCM payload encryption; the ciphertext carries a Fiat-Shamir
// proof of knowledge (the û/ē/f̄ components of TDH2) binding it to its
// label, and decryption shares carry DLEQ validity proofs (robustness).
// Key shares are dealt with the linear secret sharing scheme of the
// deployment's adversary structure, so generalized Q³ structures are
// supported exactly as the paper's §4.2 prescribes.
package threnc

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"

	"sintra/internal/adversary"
	"sintra/internal/dleq"
	"sintra/internal/group"
	"sintra/internal/sharing"
)

// Errors reported by the cryptosystem.
var (
	// ErrInvalidCiphertext is returned for ciphertexts whose consistency
	// proof fails (chosen-ciphertext rejection).
	ErrInvalidCiphertext = errors.New("threnc: invalid ciphertext")
	// ErrInvalidShare is returned for decryption shares that fail to verify.
	ErrInvalidShare = errors.New("threnc: invalid decryption share")
	// ErrNotReady is returned when decrypting before a qualified share set
	// is available.
	ErrNotReady = errors.New("threnc: not enough verified decryption shares")
	// ErrWrongParty is returned when a share is presented for an ID the
	// sender does not own.
	ErrWrongParty = errors.New("threnc: share id not owned by sender")
)

// Params is the public key material, identical on every party and client.
type Params struct {
	// GroupName selects the group parameters.
	GroupName string
	// Structure is the deployment's adversary structure.
	Structure *adversary.Structure
	// PubKey is h = g^x.
	PubKey *group.Point
	// VerifyKeys holds g^{x_id} for every share ID of the access formula.
	VerifyKeys []*group.Point

	g      group.Group
	gbar   *group.Point
	scheme *sharing.Scheme
}

// SecretKey is a party's shares of the decryption exponent.
type SecretKey struct {
	// Party is the owner's index.
	Party int
	// Shares are the owner's atomic key shares.
	Shares []sharing.Share
}

// Ciphertext is a TDH2 ciphertext.
type Ciphertext struct {
	// Payload is the AES-GCM encryption of the message.
	Payload []byte
	// Label is the public label bound to the ciphertext.
	Label []byte
	// U is g^r, Ubar is ḡ^r.
	U, Ubar *group.Point
	// Proof shows log_g U = log_ḡ Ubar, bound to Payload and Label.
	Proof *dleq.Proof
}

// Share is a decryption share with its validity proof.
type Share struct {
	// Party is the sender.
	Party int
	// ID is the key-share ID.
	ID int
	// Value is U^{x_ID}.
	Value *group.Point
	// Proof shows log_g VerifyKeys[ID] = log_U Value.
	Proof *dleq.Proof
}

// Deal generates a fresh key pair for the structure, returning the public
// parameters and each party's secret key.
func Deal(g group.Group, st *adversary.Structure, rnd io.Reader) (*Params, []*SecretKey, error) {
	scheme, err := sharing.ForStructure(g, st)
	if err != nil {
		return nil, nil, fmt.Errorf("threnc: %w", err)
	}
	x, err := g.RandomScalar(rnd)
	if err != nil {
		return nil, nil, fmt.Errorf("threnc: %w", err)
	}
	shares, err := scheme.Deal(x, rnd)
	if err != nil {
		return nil, nil, fmt.Errorf("threnc: %w", err)
	}
	p := &Params{
		GroupName:  g.Name(),
		Structure:  st,
		PubKey:     g.BaseExp(x),
		VerifyKeys: scheme.VerificationKeys(shares),
		g:          g,
		gbar:       gbarOf(g),
		scheme:     scheme,
	}
	keys := make([]*SecretKey, st.N())
	for i := range keys {
		keys[i] = &SecretKey{Party: i}
	}
	for _, sh := range shares {
		keys[sh.Party].Shares = append(keys[sh.Party].Shares, sh)
	}
	return p, keys, nil
}

// Init rebuilds the runtime caches after deserialization.
func (p *Params) Init() error {
	g, err := group.ByName(p.GroupName)
	if err != nil {
		return err
	}
	scheme, err := sharing.ForStructure(g, p.Structure)
	if err != nil {
		return err
	}
	if len(p.VerifyKeys) != scheme.NumShares() {
		return errors.New("threnc: verification key count mismatch")
	}
	p.g = g
	p.gbar = gbarOf(g)
	p.scheme = scheme
	p.Precompute()
	return nil
}

// Precompute registers fixed-base exponentiation tables for the bases
// every TDH2 operation exponentiates: the second generator ḡ (ciphertext
// consistency checks), the public key (encryption), and the dealt
// verification keys (decryption-share DLEQ checks). Init calls this;
// Deal-created params may call it explicitly.
func (p *Params) Precompute() {
	p.g.Precompute(p.gbar)
	p.g.Precompute(p.PubKey)
	for _, vk := range p.VerifyKeys {
		p.g.Precompute(vk)
	}
}

// Group returns the group of the dealing.
func (p *Params) Group() group.Group { return p.g }

// gbarOf derives the second, independent generator ḡ.
func gbarOf(g group.Group) *group.Point {
	return g.HashToPoint("sintra/threnc/gbar", []byte(g.Name()))
}

// ctxDigest binds proofs to the full public ciphertext content.
func ctxDigest(payload, label []byte) string {
	h := sha256.New()
	h.Write([]byte("sintra/threnc/ctx"))
	var lb [8]byte
	for _, part := range [][]byte{payload, label} {
		for i := 0; i < 8; i++ {
			lb[i] = byte(uint64(len(part)) >> (8 * (7 - i)))
		}
		h.Write(lb[:])
		h.Write(part)
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

// kdf derives the AES key from the KEM element.
func (p *Params) kdf(hr *group.Point) []byte {
	h := sha256.New()
	h.Write([]byte("sintra/threnc/kdf"))
	h.Write(p.g.EncodeElement(hr))
	return h.Sum(nil)
}

// seal encrypts m under the KEM-derived key. The key is unique per
// encryption (fresh r), so a fixed nonce is safe.
func seal(key, plaintext []byte) ([]byte, error) {
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return nil, err
	}
	return gcm.Seal(nil, make([]byte, gcm.NonceSize()), plaintext, nil), nil
}

func open(key, ciphertext []byte) ([]byte, error) {
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return nil, err
	}
	return gcm.Open(nil, make([]byte, gcm.NonceSize()), ciphertext, nil)
}

// Encrypt produces a TDH2 ciphertext of the message under the label.
func (p *Params) Encrypt(message, label []byte, rnd io.Reader) (*Ciphertext, error) {
	r, err := p.g.RandomScalar(rnd)
	if err != nil {
		return nil, fmt.Errorf("threnc: %w", err)
	}
	u := p.g.BaseExp(r)
	ubar := p.g.Exp(p.gbar, r)
	payload, err := seal(p.kdf(p.g.Exp(p.PubKey, r))[:32], message)
	if err != nil {
		return nil, fmt.Errorf("threnc: %w", err)
	}
	st := dleq.Statement{G1: p.g.Generator(), H1: u, G2: p.gbar, H2: ubar}
	proof, err := dleq.Prove(p.g, st, r, "tdh2|"+ctxDigest(payload, label), rnd)
	if err != nil {
		return nil, fmt.Errorf("threnc: %w", err)
	}
	return &Ciphertext{
		Payload: payload,
		Label:   append([]byte(nil), label...),
		U:       u,
		Ubar:    ubar,
		Proof:   proof,
	}, nil
}

// VerifyCiphertext checks the ciphertext's consistency proof. Every party
// must reject invalid ciphertexts before producing decryption shares —
// this check is what makes the scheme CCA2 secure.
func (p *Params) VerifyCiphertext(ct *Ciphertext) error {
	if ct == nil || ct.U == nil || ct.Ubar == nil {
		return ErrInvalidCiphertext
	}
	if !p.g.IsElement(ct.U) || !p.g.IsElement(ct.Ubar) {
		return ErrInvalidCiphertext
	}
	// U and Ubar were just membership-checked and the generators are
	// local, so the statement is trusted: Verify skips re-checking.
	st := dleq.Statement{G1: p.g.Generator(), H1: ct.U, G2: p.gbar, H2: ct.Ubar, Trusted: true}
	if err := dleq.Verify(p.g, st, ct.Proof, "tdh2|"+ctxDigest(ct.Payload, ct.Label)); err != nil {
		return ErrInvalidCiphertext
	}
	return nil
}

func shareContext(ct *Ciphertext, id int) string {
	return fmt.Sprintf("tdh2share|%s|%d", ctxDigest(ct.Payload, ct.Label), id)
}

// DecryptShares produces the owner's decryption shares for a ciphertext,
// verifying the ciphertext first.
func (p *Params) DecryptShares(sk *SecretKey, ct *Ciphertext, rnd io.Reader) ([]Share, error) {
	if err := p.VerifyCiphertext(ct); err != nil {
		return nil, err
	}
	out := make([]Share, 0, len(sk.Shares))
	for _, sh := range sk.Shares {
		value := p.g.Exp(ct.U, sh.Value)
		st := dleq.Statement{
			G1: p.g.Generator(), H1: p.VerifyKeys[sh.ID],
			G2: ct.U, H2: value,
		}
		proof, err := dleq.Prove(p.g, st, sh.Value, shareContext(ct, sh.ID), rnd)
		if err != nil {
			return nil, fmt.Errorf("threnc: %w", err)
		}
		out = append(out, Share{Party: sk.Party, ID: sh.ID, Value: value, Proof: proof})
	}
	return out, nil
}

// VerifyShare checks one decryption share against a ciphertext.
func (p *Params) VerifyShare(ct *Ciphertext, sh Share) error {
	if sh.ID < 0 || sh.ID >= len(p.VerifyKeys) {
		return ErrInvalidShare
	}
	owner, err := p.scheme.PartyOf(sh.ID)
	if err != nil || owner != sh.Party {
		return ErrWrongParty
	}
	// The share value is the only statement element not already
	// validated: the verification key is dealt, and ct.U passed
	// VerifyCiphertext before any share of it is checked.
	if !p.g.IsElement(sh.Value) {
		return ErrInvalidShare
	}
	st := dleq.Statement{
		G1: p.g.Generator(), H1: p.VerifyKeys[sh.ID],
		G2: ct.U, H2: sh.Value,
		Trusted: true,
	}
	if err := dleq.Verify(p.g, st, sh.Proof, shareContext(ct, sh.ID)); err != nil {
		return ErrInvalidShare
	}
	return nil
}

// Combiner accumulates verified decryption shares for one ciphertext.
type Combiner struct {
	params  *Params
	ct      *Ciphertext
	values  map[int]*group.Point
	parties adversary.Set
}

// NewCombiner starts collecting shares for a (pre-verified) ciphertext.
func NewCombiner(p *Params, ct *Ciphertext) (*Combiner, error) {
	if err := p.VerifyCiphertext(ct); err != nil {
		return nil, err
	}
	return &Combiner{params: p, ct: ct, values: make(map[int]*group.Point)}, nil
}

// Add verifies and stores a decryption share; invalid shares are rejected
// and duplicates ignored.
func (c *Combiner) Add(sh Share) error {
	if _, ok := c.values[sh.ID]; ok {
		return nil
	}
	if err := c.params.VerifyShare(c.ct, sh); err != nil {
		return err
	}
	c.values[sh.ID] = sh.Value
	c.parties = c.parties.Add(sh.Party)
	return nil
}

// AddVerified stores a decryption share the caller has already checked
// with VerifyShare — the engine's parallel Verify stage does exactly
// that — skipping re-verification. Duplicates are ignored.
func (c *Combiner) AddVerified(sh Share) {
	if _, ok := c.values[sh.ID]; ok {
		return
	}
	c.values[sh.ID] = sh.Value
	c.parties = c.parties.Add(sh.Party)
}

func (c *Combiner) partiesWithAllShares() adversary.Set {
	var out adversary.Set
	for _, party := range c.parties.Members() {
		complete := true
		for _, id := range c.params.scheme.SharesOf(party) {
			if _, ok := c.values[id]; !ok {
				complete = false
				break
			}
		}
		if complete {
			out = out.Add(party)
		}
	}
	return out
}

// Ready reports whether a qualified set of shares has been collected.
func (c *Combiner) Ready() bool {
	return c.params.scheme.Qualified(c.partiesWithAllShares())
}

// Decrypt reconstructs h^r in the exponent and opens the payload.
func (c *Combiner) Decrypt() ([]byte, error) {
	parties := c.partiesWithAllShares()
	if !c.params.scheme.Qualified(parties) {
		return nil, ErrNotReady
	}
	hr, err := c.params.scheme.ReconstructExponent(parties, c.values)
	if err != nil {
		return nil, fmt.Errorf("threnc: %w", err)
	}
	plain, err := open(c.params.kdf(hr)[:32], c.ct.Payload)
	if err != nil {
		return nil, fmt.Errorf("threnc: open payload: %w", err)
	}
	return plain, nil
}
