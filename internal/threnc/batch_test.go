package threnc

import (
	"crypto/rand"
	"reflect"
	"testing"

	"sintra/internal/adversary"
)

func batchCiphertext(t testing.TB, p *Params, label string) *Ciphertext {
	t.Helper()
	ct, err := p.Encrypt([]byte("batch plaintext"), []byte(label), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.VerifyCiphertext(ct); err != nil {
		t.Fatal(err)
	}
	return ct
}

func sharesFor(t testing.TB, p *Params, keys []*SecretKey, ct *Ciphertext, parties []int) []Share {
	t.Helper()
	var out []Share
	for _, i := range parties {
		shares, err := p.DecryptShares(keys[i], ct, rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, shares...)
	}
	return out
}

func TestThrencBatchVerifyAllValid(t *testing.T) {
	st := adversary.MustThreshold(4, 1)
	p, keys := dealTest(t, st)
	ct := batchCiphertext(t, p, "label-1")
	shares := sharesFor(t, p, keys, ct, []int{0, 1, 2, 3})
	if bad := p.BatchVerifyShares(ct, shares); bad != nil {
		t.Fatalf("valid batch flagged %v", bad)
	}
}

func TestThrencBatchMatchesVerifyShare(t *testing.T) {
	st := adversary.MustThreshold(4, 1)
	p, keys := dealTest(t, st)
	ct := batchCiphertext(t, p, "label-1")
	shares := sharesFor(t, p, keys, ct, []int{0, 1, 2, 3})
	// The proof equations fail while every structural check passes.
	shares[1].Value = p.g.Exp(shares[1].Value, p.g.NewScalar(2))
	// Wrong claimed owner.
	shares[3].Party = 0
	var want []int
	for i, sh := range shares {
		if p.VerifyShare(ct, sh) != nil {
			want = append(want, i)
		}
	}
	if !reflect.DeepEqual(want, []int{1, 3}) {
		t.Fatalf("per-share rejected %v, corruption expected [1 3]", want)
	}
	got := p.BatchVerifyShares(ct, shares)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("batch flagged %v, per-share %v", got, want)
	}
}

// TestThrencBatchAcrossCiphertexts drives one BatchVerifier over shares
// of two ciphertexts — the shape of the share exchange draining a
// backlog spanning sequence numbers.
func TestThrencBatchAcrossCiphertexts(t *testing.T) {
	st := adversary.MustThreshold(4, 1)
	p, keys := dealTest(t, st)
	ct1 := batchCiphertext(t, p, "label-1")
	ct2 := batchCiphertext(t, p, "label-2")
	bv := p.NewBatchVerifier()
	var want []bool
	for _, ct := range []*Ciphertext{ct1, ct2} {
		shares := sharesFor(t, p, keys, ct, []int{0, 1, 2, 3})
		shares[2].Proof.Z = p.g.AddScalar(shares[2].Proof.Z, p.g.NewScalar(1))
		for i, sh := range shares {
			bv.Add(ct, sh)
			want = append(want, i != 2)
		}
	}
	// A share of ct1 presented against ct2 must fail even though its
	// proof is internally valid.
	cross := sharesFor(t, p, keys, ct1, []int{0})
	bv.Add(ct2, cross[0])
	want = append(want, false)
	if got := bv.Verify(); !reflect.DeepEqual(got, want) {
		t.Fatalf("batch verdicts %v, want %v", got, want)
	}
}
