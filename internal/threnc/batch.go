package threnc

import (
	"fmt"

	"sintra/internal/dleq"
)

// BatchVerifier collects decryption shares — possibly for several
// ciphertexts at once, as when the share exchange drains a backlog
// spanning sequence numbers — and checks them together with one folded
// DLEQ batch (see dleq.BatchVerify for the soundness argument). The
// ciphertext context digest, a hash over the full payload, is computed
// once per ciphertext instead of once per share, and ct.U's exponents
// aggregate on one pointer for same-ciphertext shares.
//
// Every ciphertext passed to Add must already have passed
// VerifyCiphertext — the same precondition VerifyShare documents — so
// its U component is a known group element. Add performs the remaining
// structural checks (share ID range, sender ownership, membership of
// the share value); Verify runs the batch and reports per-share
// validity. A BatchVerifier is for one use by one goroutine.
type BatchVerifier struct {
	p       *Params
	digests map[*Ciphertext]string
	items   []dleq.BatchItem
	// slot maps add order to batch item index; -1 marks shares that
	// failed the structural checks and skip the batch.
	slot []int
}

// NewBatchVerifier starts an empty batch over the key material.
func (p *Params) NewBatchVerifier() *BatchVerifier {
	return &BatchVerifier{p: p, digests: make(map[*Ciphertext]string)}
}

// Add queues one decryption share of the (pre-verified) ciphertext.
func (b *BatchVerifier) Add(ct *Ciphertext, sh Share) {
	p := b.p
	ok := sh.ID >= 0 && sh.ID < len(p.VerifyKeys)
	if ok {
		owner, err := p.scheme.PartyOf(sh.ID)
		ok = err == nil && owner == sh.Party && p.g.IsElement(sh.Value)
	}
	if !ok {
		b.slot = append(b.slot, -1)
		return
	}
	digest, cached := b.digests[ct]
	if !cached {
		digest = ctxDigest(ct.Payload, ct.Label)
		b.digests[ct] = digest
	}
	b.slot = append(b.slot, len(b.items))
	b.items = append(b.items, dleq.BatchItem{
		St: dleq.Statement{
			G1: p.g.Generator(), H1: p.VerifyKeys[sh.ID],
			G2: ct.U, H2: sh.Value,
			Trusted: true,
		},
		P:       sh.Proof,
		Context: fmt.Sprintf("tdh2share|%s|%d", digest, sh.ID),
	})
}

// Verify checks every added share; out[i] reports whether the i-th Add
// verified. Byzantine shares are isolated by the batch's binary split,
// so they never taint honest shares.
func (b *BatchVerifier) Verify() []bool {
	bad := dleq.BatchVerify(b.p.g, b.items, nil)
	badSet := make(map[int]bool, len(bad))
	for _, i := range bad {
		badSet[i] = true
	}
	out := make([]bool, len(b.slot))
	for i, s := range b.slot {
		out[i] = s >= 0 && !badSet[s]
	}
	return out
}

// BatchVerifyShares checks the decryption shares of one (pre-verified)
// ciphertext together and returns the indexes of the invalid ones (nil
// when all verify) — equivalent to calling VerifyShare on each, at
// batch cost.
func (p *Params) BatchVerifyShares(ct *Ciphertext, shares []Share) []int {
	bv := p.NewBatchVerifier()
	for _, sh := range shares {
		bv.Add(ct, sh)
	}
	var bad []int
	for i, ok := range bv.Verify() {
		if !ok {
			bad = append(bad, i)
		}
	}
	return bad
}
