package threnc

import (
	"bytes"
	"crypto/rand"
	"encoding/gob"
	"testing"
	"testing/quick"

	"sintra/internal/adversary"
	"sintra/internal/group"
)

func dealTest(t testing.TB, st *adversary.Structure) (*Params, []*SecretKey) {
	t.Helper()
	p, keys, err := Deal(group.TestDefault(), st, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	return p, keys
}

func decryptWith(t testing.TB, p *Params, keys []*SecretKey, ct *Ciphertext, parties []int) ([]byte, error) {
	t.Helper()
	c, err := NewCombiner(p, ct)
	if err != nil {
		return nil, err
	}
	for _, i := range parties {
		shares, err := p.DecryptShares(keys[i], ct, rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		for _, sh := range shares {
			if err := c.Add(sh); err != nil {
				t.Fatal(err)
			}
		}
	}
	return c.Decrypt()
}

func TestEncryptDecryptRoundTrip(t *testing.T) {
	st := adversary.MustThreshold(4, 1)
	p, keys := dealTest(t, st)
	msg := []byte("a confidential notary request")
	ct, err := p.Encrypt(msg, []byte("label-1"), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.VerifyCiphertext(ct); err != nil {
		t.Fatal(err)
	}
	got, err := decryptWith(t, p, keys, ct, []int{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("decrypted %q, want %q", got, msg)
	}
	// A different qualified subset produces the same plaintext.
	got2, err := decryptWith(t, p, keys, ct, []int{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got2, msg) {
		t.Fatal("subset disagreement")
	}
}

func TestDecryptBelowThresholdFails(t *testing.T) {
	st := adversary.MustThreshold(4, 1)
	p, keys := dealTest(t, st)
	ct, _ := p.Encrypt([]byte("m"), nil, rand.Reader)
	if _, err := decryptWith(t, p, keys, ct, []int{1}); err == nil {
		t.Fatal("single share decrypted a 2-of-4 ciphertext")
	}
}

func TestCiphertextIntegrity(t *testing.T) {
	st := adversary.MustThreshold(4, 1)
	p, _ := dealTest(t, st)
	ct, _ := p.Encrypt([]byte("m"), []byte("L"), rand.Reader)

	// Mauled payload must be rejected (CCA2: proof binds payload).
	bad := *ct
	bad.Payload = append([]byte(nil), ct.Payload...)
	bad.Payload[0] ^= 1
	if err := p.VerifyCiphertext(&bad); err == nil {
		t.Fatal("mauled payload accepted")
	}
	// Changed label must be rejected.
	bad = *ct
	bad.Label = []byte("other")
	if err := p.VerifyCiphertext(&bad); err == nil {
		t.Fatal("relabelled ciphertext accepted")
	}
	// Replaced U must be rejected.
	bad = *ct
	bad.U = p.Group().Mul(ct.U, p.Group().Generator())
	if err := p.VerifyCiphertext(&bad); err == nil {
		t.Fatal("modified U accepted")
	}
	// Nil and non-group values rejected.
	if err := p.VerifyCiphertext(nil); err == nil {
		t.Fatal("nil ciphertext accepted")
	}
	bad = *ct
	bad.Ubar = nil
	if err := p.VerifyCiphertext(&bad); err == nil {
		t.Fatal("nil Ubar accepted")
	}
}

func TestDecryptSharesRejectInvalidCiphertext(t *testing.T) {
	st := adversary.MustThreshold(4, 1)
	p, keys := dealTest(t, st)
	ct, _ := p.Encrypt([]byte("m"), nil, rand.Reader)
	bad := *ct
	bad.Payload = append([]byte(nil), ct.Payload...)
	bad.Payload[0] ^= 1
	if _, err := p.DecryptShares(keys[0], &bad, rand.Reader); err == nil {
		t.Fatal("shares produced for invalid ciphertext")
	}
	if _, err := NewCombiner(p, &bad); err == nil {
		t.Fatal("combiner accepted invalid ciphertext")
	}
}

func TestShareForgeryRejected(t *testing.T) {
	st := adversary.MustThreshold(4, 1)
	p, keys := dealTest(t, st)
	ct, _ := p.Encrypt([]byte("m"), nil, rand.Reader)
	ct2, _ := p.Encrypt([]byte("m2"), nil, rand.Reader)
	shares, err := p.DecryptShares(keys[0], ct, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	good := shares[0]
	// Tampered value.
	bad := good
	bad.Value = p.Group().Mul(good.Value, p.Group().Generator())
	if err := p.VerifyShare(ct, bad); err == nil {
		t.Fatal("tampered share accepted")
	}
	// Replay against another ciphertext.
	if err := p.VerifyShare(ct2, good); err == nil {
		t.Fatal("share replayed across ciphertexts")
	}
	// Wrong party claim.
	bad = good
	bad.Party = 2
	if err := p.VerifyShare(ct, bad); err == nil {
		t.Fatal("share accepted for wrong party")
	}
	bad = good
	bad.ID = 99
	if err := p.VerifyShare(ct, bad); err == nil {
		t.Fatal("out-of-range id accepted")
	}
}

func TestCombinerRobustToBadShares(t *testing.T) {
	st := adversary.MustThreshold(4, 1)
	p, keys := dealTest(t, st)
	msg := []byte("robustness")
	ct, _ := p.Encrypt(msg, nil, rand.Reader)
	c, err := NewCombiner(p, ct)
	if err != nil {
		t.Fatal(err)
	}
	// A corrupted party submits garbage; Add rejects it and progress
	// continues with honest shares.
	garbage := Share{Party: 3, ID: 3, Value: p.Group().Generator(), Proof: nil}
	if err := c.Add(garbage); err == nil {
		t.Fatal("garbage share accepted")
	}
	for _, i := range []int{0, 1} {
		shares, _ := p.DecryptShares(keys[i], ct, rand.Reader)
		for _, sh := range shares {
			if err := c.Add(sh); err != nil {
				t.Fatal(err)
			}
		}
	}
	got, err := c.Decrypt()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("wrong plaintext")
	}
}

func TestGeneralStructureDecryption(t *testing.T) {
	st := adversary.Example2()
	p, keys := dealTest(t, st)
	msg := []byte("multi-site secret")
	ct, _ := p.Encrypt(msg, []byte("dir"), rand.Reader)
	// Survivors of site-0 + OS-0 corruption can decrypt.
	var corrupted adversary.Set
	for i := 0; i < 4; i++ {
		corrupted = corrupted.Add(adversary.Example2Party(0, i))
		corrupted = corrupted.Add(adversary.Example2Party(i, 0))
	}
	got, err := decryptWith(t, p, keys, ct, corrupted.Complement(16).Members())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("wrong plaintext")
	}
	// The corrupted seven cannot.
	if _, err := decryptWith(t, p, keys, ct, corrupted.Members()); err == nil {
		t.Fatal("corruptible coalition decrypted")
	}
}

func TestLabelIsAuthenticatedButPublic(t *testing.T) {
	st := adversary.MustThreshold(4, 1)
	p, keys := dealTest(t, st)
	ct, _ := p.Encrypt([]byte("m"), []byte("instance-42"), rand.Reader)
	if !bytes.Equal(ct.Label, []byte("instance-42")) {
		t.Fatal("label not carried")
	}
	if _, err := decryptWith(t, p, keys, ct, []int{0, 1}); err != nil {
		t.Fatal(err)
	}
}

func TestParamsGobRoundTrip(t *testing.T) {
	st := adversary.Example1()
	p, keys := dealTest(t, st)
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(p); err != nil {
		t.Fatal(err)
	}
	var back Params
	if err := gob.NewDecoder(&buf).Decode(&back); err != nil {
		t.Fatal(err)
	}
	if err := back.Init(); err != nil {
		t.Fatal(err)
	}
	msg := []byte("round trip")
	ct, err := back.Encrypt(msg, nil, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decryptWith(t, &back, keys, ct, []int{0, 4, 6})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("wrong plaintext after gob round trip")
	}
}

func TestCiphertextsAreRandomized(t *testing.T) {
	st := adversary.MustThreshold(4, 1)
	p, _ := dealTest(t, st)
	ct1, _ := p.Encrypt([]byte("same"), nil, rand.Reader)
	ct2, _ := p.Encrypt([]byte("same"), nil, rand.Reader)
	if ct1.U.Equal(ct2.U) || bytes.Equal(ct1.Payload, ct2.Payload) {
		t.Fatal("encryption is deterministic")
	}
}

func TestInitValidation(t *testing.T) {
	st := adversary.MustThreshold(4, 1)
	p, _ := dealTest(t, st)
	bad := &Params{GroupName: "nope", Structure: st, PubKey: p.PubKey, VerifyKeys: p.VerifyKeys}
	if err := bad.Init(); err == nil {
		t.Fatal("unknown group accepted")
	}
	bad = &Params{GroupName: p.GroupName, Structure: st, PubKey: p.PubKey, VerifyKeys: p.VerifyKeys[:1]}
	if err := bad.Init(); err == nil {
		t.Fatal("key count mismatch accepted")
	}
}

func TestEmptyMessage(t *testing.T) {
	st := adversary.MustThreshold(4, 1)
	p, keys := dealTest(t, st)
	ct, err := p.Encrypt(nil, nil, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decryptWith(t, p, keys, ct, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatal("expected empty plaintext")
	}
}

func BenchmarkEncrypt(b *testing.B) {
	p, _ := dealTest(b, adversary.MustThreshold(4, 1))
	msg := bytes.Repeat([]byte{0x42}, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Encrypt(msg, nil, rand.Reader); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecryptShare(b *testing.B) {
	p, keys := dealTest(b, adversary.MustThreshold(4, 1))
	ct, _ := p.Encrypt([]byte("bench"), nil, rand.Reader)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.DecryptShares(keys[0], ct, rand.Reader); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCombineDecrypt(b *testing.B) {
	p, keys := dealTest(b, adversary.MustThreshold(4, 1))
	msg := []byte("bench")
	ct, _ := p.Encrypt(msg, nil, rand.Reader)
	var shares []Share
	for _, i := range []int{0, 1} {
		sh, _ := p.DecryptShares(keys[i], ct, rand.Reader)
		shares = append(shares, sh...)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := NewCombiner(p, ct)
		if err != nil {
			b.Fatal(err)
		}
		for _, sh := range shares {
			if err := c.Add(sh); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := c.Decrypt(); err != nil {
			b.Fatal(err)
		}
	}
}

func TestQuickEncryptDecryptAnyMessage(t *testing.T) {
	st := adversary.MustThreshold(4, 1)
	p, keys := dealTest(t, st)
	f := func(msg, label []byte) bool {
		ct, err := p.Encrypt(msg, label, rand.Reader)
		if err != nil || p.VerifyCiphertext(ct) != nil {
			return false
		}
		got, err := decryptWith(t, p, keys, ct, []int{1, 3})
		if err != nil {
			return false
		}
		return bytes.Equal(got, msg)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCiphertextMauling(t *testing.T) {
	// Property: flipping any payload byte breaks the consistency proof.
	st := adversary.MustThreshold(4, 1)
	p, _ := dealTest(t, st)
	ct, err := p.Encrypt([]byte("a fixed message to maul"), []byte("L"), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	f := func(idx uint16, b byte) bool {
		bad := *ct
		bad.Payload = append([]byte(nil), ct.Payload...)
		i := int(idx) % len(bad.Payload)
		if bad.Payload[i] == b {
			b ^= 0xFF
		}
		bad.Payload[i] = b
		return p.VerifyCiphertext(&bad) != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
