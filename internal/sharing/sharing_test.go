package sharing

import (
	"crypto/rand"
	mrand "math/rand"
	"sync"
	"testing"
	"testing/quick"

	"sintra/internal/adversary"
	"sintra/internal/group"
)

// randScalar derives a deterministic scalar from a seeded source, for
// the property-based tests.
func randScalar(g group.Group, rng *mrand.Rand) *group.Scalar {
	buf := make([]byte, g.ScalarLen()+16)
	rng.Read(buf)
	return g.ScalarFromBytes(buf)
}

func dealRandom(t *testing.T, s *Scheme) (*group.Scalar, []Share) {
	t.Helper()
	secret, err := s.Group().RandomScalar(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	shares, err := s.Deal(secret, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	return secret, shares
}

func valueMap(shares []Share) map[int]*group.Scalar {
	m := make(map[int]*group.Scalar, len(shares))
	for _, sh := range shares {
		m[sh.ID] = sh.Value
	}
	return m
}

func TestThresholdRoundTrip(t *testing.T) {
	g := group.TestDefault()
	s, err := NewThresholdScheme(g, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumShares() != 5 {
		t.Fatalf("NumShares = %d", s.NumShares())
	}
	secret, shares := dealRandom(t, s)
	// Every 3-subset reconstructs; every 2-subset is unqualified.
	vm := valueMap(shares)
	for _, parties := range []adversary.Set{
		adversary.SetOf(0, 1, 2),
		adversary.SetOf(2, 3, 4),
		adversary.SetOf(0, 2, 4),
		adversary.SetOf(0, 1, 2, 3, 4),
	} {
		got, err := s.Reconstruct(parties, vm)
		if err != nil {
			t.Fatalf("Reconstruct(%v): %v", parties, err)
		}
		if !got.Equal(secret) {
			t.Fatalf("Reconstruct(%v) wrong secret", parties)
		}
	}
	if _, err := s.Reconstruct(adversary.SetOf(1, 3), vm); err == nil {
		t.Fatal("unqualified set reconstructed")
	}
}

func TestSharesOfThreshold(t *testing.T) {
	g := group.TestDefault()
	s, _ := NewThresholdScheme(g, 4, 1)
	for p := 0; p < 4; p++ {
		ids := s.SharesOf(p)
		if len(ids) != 1 || ids[0] != p {
			t.Fatalf("SharesOf(%d) = %v", p, ids)
		}
		owner, err := s.PartyOf(ids[0])
		if err != nil || owner != p {
			t.Fatalf("PartyOf(%d) = %d, %v", ids[0], owner, err)
		}
	}
	if _, err := s.PartyOf(99); err == nil {
		t.Fatal("out-of-range share id accepted")
	}
}

func TestDealRejectsBadSecret(t *testing.T) {
	g := group.TestDefault()
	s, _ := NewThresholdScheme(g, 4, 1)
	if _, err := s.Deal(nil, rand.Reader); err == nil {
		t.Fatal("nil secret accepted")
	}
	foreign := group.Test512()
	if foreign.ID() == g.ID() {
		t.Fatal("test expects distinct groups")
	}
	if _, err := s.Deal(foreign.NewScalar(1), rand.Reader); err == nil {
		t.Fatal("foreign-group secret accepted")
	}
}

func TestNestedFormulaRoundTrip(t *testing.T) {
	g := group.TestDefault()
	// (P0 AND P1) OR Θ2(P2,P3,P4)
	access := adversary.Or(
		adversary.And(adversary.Leaf(0), adversary.Leaf(1)),
		adversary.ThresholdOf(2, []int{2, 3, 4}),
	)
	s, err := NewScheme(g, 5, access)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumShares() != 5 {
		t.Fatalf("NumShares = %d, want 5", s.NumShares())
	}
	secret, shares := dealRandom(t, s)
	vm := valueMap(shares)
	for _, parties := range []adversary.Set{
		adversary.SetOf(0, 1),
		adversary.SetOf(2, 4),
		adversary.SetOf(3, 4),
		adversary.SetOf(0, 1, 2, 3, 4),
	} {
		got, err := s.Reconstruct(parties, vm)
		if err != nil {
			t.Fatalf("Reconstruct(%v): %v", parties, err)
		}
		if !got.Equal(secret) {
			t.Fatalf("Reconstruct(%v) wrong secret", parties)
		}
	}
	for _, parties := range []adversary.Set{
		adversary.SetOf(0),
		adversary.SetOf(0, 2),
		adversary.SetOf(1, 3),
	} {
		if _, err := s.Reconstruct(parties, vm); err == nil {
			t.Fatalf("unqualified %v reconstructed", parties)
		}
	}
}

func TestExample1SchemeAllQualifiedSets(t *testing.T) {
	g := group.TestDefault()
	st := adversary.Example1()
	s, err := ForStructure(g, st)
	if err != nil {
		t.Fatal(err)
	}
	secret, shares := dealRandom(t, s)
	vm := valueMap(shares)
	// Exhaustively check agreement between formula and reconstruction for
	// all 2^9 subsets.
	for v := adversary.Set(0); v <= adversary.FullSet(9); v++ {
		got, err := s.Reconstruct(v, vm)
		if s.Qualified(v) {
			if err != nil {
				t.Fatalf("qualified %v failed: %v", v, err)
			}
			if !got.Equal(secret) {
				t.Fatalf("qualified %v reconstructed wrong secret", v)
			}
		} else if err == nil {
			t.Fatalf("unqualified %v reconstructed", v)
		}
	}
}

func TestExample2SchemePaperSets(t *testing.T) {
	g := group.TestDefault()
	st := adversary.Example2()
	s, err := ForStructure(g, st)
	if err != nil {
		t.Fatal(err)
	}
	secret, shares := dealRandom(t, s)
	vm := valueMap(shares)
	// Honest survivors of a site+OS corruption must reconstruct.
	var corrupted adversary.Set
	for i := 0; i < 4; i++ {
		corrupted = corrupted.Add(adversary.Example2Party(0, i))
		corrupted = corrupted.Add(adversary.Example2Party(i, 0))
	}
	honest := corrupted.Complement(16)
	got, err := s.Reconstruct(honest, vm)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(secret) {
		t.Fatal("honest survivors reconstructed wrong secret")
	}
	// The corrupted seven must not reconstruct.
	if _, err := s.Reconstruct(corrupted, vm); err == nil {
		t.Fatal("site+OS coalition reconstructed the secret")
	}
	// Minimal qualified set: a 2x2 subgrid.
	sub := adversary.SetOf(
		adversary.Example2Party(1, 1), adversary.Example2Party(1, 2),
		adversary.Example2Party(2, 1), adversary.Example2Party(2, 2),
	)
	got, err = s.Reconstruct(sub, vm)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(secret) {
		t.Fatal("2x2 subgrid reconstructed wrong secret")
	}
}

func TestReconstructExponent(t *testing.T) {
	g := group.TestDefault()
	st := adversary.Example1()
	s, err := ForStructure(g, st)
	if err != nil {
		t.Fatal(err)
	}
	secret, shares := dealRandom(t, s)
	// Exponentiate a second base by each share, as the coin does.
	base := g.HashToPoint("coin-base", []byte("x"))
	elems := make(map[int]*group.Point, len(shares))
	for _, sh := range shares {
		elems[sh.ID] = g.Exp(base, sh.Value)
	}
	want := g.Exp(base, secret)
	for _, parties := range []adversary.Set{
		adversary.SetOf(0, 4, 6),
		adversary.SetOf(4, 5, 6, 7, 8),
		adversary.FullSet(9),
	} {
		got, err := s.ReconstructExponent(parties, elems)
		if err != nil {
			t.Fatalf("ReconstructExponent(%v): %v", parties, err)
		}
		if !got.Equal(want) {
			t.Fatalf("ReconstructExponent(%v) wrong value", parties)
		}
	}
	if _, err := s.ReconstructExponent(adversary.SetOf(0, 1, 2, 3), elems); err == nil {
		t.Fatal("unqualified exponent reconstruction succeeded")
	}
}

func TestReconstructMissingShare(t *testing.T) {
	g := group.TestDefault()
	s, _ := NewThresholdScheme(g, 4, 1)
	secret, shares := dealRandom(t, s)
	_ = secret
	vm := valueMap(shares)
	delete(vm, 1)
	if _, err := s.Reconstruct(adversary.SetOf(0, 1), vm); err == nil {
		t.Fatal("missing planned share not detected")
	}
	// A set avoiding the missing share still works.
	if _, err := s.Reconstruct(adversary.SetOf(0, 2), vm); err != nil {
		t.Fatal(err)
	}
}

func TestVerificationKeys(t *testing.T) {
	g := group.TestDefault()
	s, _ := NewThresholdScheme(g, 4, 1)
	secret, shares := dealRandom(t, s)
	vks := s.VerificationKeys(shares)
	if len(vks) != len(shares) {
		t.Fatal("wrong number of verification keys")
	}
	for i, sh := range shares {
		if !vks[i].Equal(g.BaseExp(sh.Value)) {
			t.Fatal("verification key mismatch")
		}
	}
	// In-exponent reconstruction of the verification keys gives g^secret.
	elems := make(map[int]*group.Point)
	for i := range vks {
		elems[i] = vks[i]
	}
	got, err := s.ReconstructExponent(adversary.SetOf(1, 2), elems)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(g.BaseExp(secret)) {
		t.Fatal("verification keys do not reconstruct g^secret")
	}
}

func TestLinearityProperty(t *testing.T) {
	// Property: sharing is linear — shares of s1 plus shares of s2
	// reconstruct to s1+s2, using the same scheme and leaf order.
	g := group.TestDefault()
	st := adversary.Example1()
	s, err := ForStructure(g, st)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		rng := mrand.New(mrand.NewSource(seed))
		s1 := randScalar(g, rng)
		s2 := randScalar(g, rng)
		sh1, err := s.Deal(s1, rand.Reader)
		if err != nil {
			return false
		}
		sh2, err := s.Deal(s2, rand.Reader)
		if err != nil {
			return false
		}
		sum := make(map[int]*group.Scalar, len(sh1))
		for i := range sh1 {
			sum[sh1[i].ID] = g.AddScalar(sh1[i].Value, sh2[i].Value)
		}
		got, err := s.Reconstruct(adversary.SetOf(0, 5, 7), sum)
		if err != nil {
			return false
		}
		return got.Equal(g.AddScalar(s1, s2))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicPlan(t *testing.T) {
	// Two calls with the same party set must produce identical plans, so
	// distributed parties agree on recombination without communication.
	g := group.TestDefault()
	st := adversary.Example2()
	s, err := ForStructure(g, st)
	if err != nil {
		t.Fatal(err)
	}
	parties := adversary.SetOf(5, 6, 9, 10, 13, 14)
	p1, err := s.Coefficients(parties)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := s.Coefficients(parties)
	if err != nil {
		t.Fatal(err)
	}
	if len(p1) != len(p2) {
		t.Fatal("plan size differs")
	}
	for id, c := range p1 {
		if p2[id] == nil || !p2[id].Equal(c) {
			t.Fatal("plan not deterministic")
		}
	}
	// The plan only selects shares of the given parties.
	for id := range p1 {
		owner, err := s.PartyOf(id)
		if err != nil {
			t.Fatal(err)
		}
		if !parties.Has(owner) {
			t.Fatalf("plan selected share %d of absent party %d", id, owner)
		}
	}
}

func BenchmarkDealExample2(b *testing.B) {
	g := group.TestDefault()
	s, err := ForStructure(g, adversary.Example2())
	if err != nil {
		b.Fatal(err)
	}
	secret, _ := g.RandomScalar(rand.Reader)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Deal(secret, rand.Reader); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReconstructThreshold(b *testing.B) {
	g := group.TestDefault()
	s, _ := NewThresholdScheme(g, 16, 5)
	secret, _ := g.RandomScalar(rand.Reader)
	shares, _ := s.Deal(secret, rand.Reader)
	vm := valueMap(shares)
	parties := adversary.SetOf(0, 1, 2, 3, 4, 5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Reconstruct(parties, vm); err != nil {
			b.Fatal(err)
		}
	}
}

// randomFormula builds a random monotone formula over n parties with the
// given depth budget, driven by a deterministic source.
func randomFormula(rng *mrand.Rand, n, depth int) *adversary.Formula {
	if depth == 0 || rng.Intn(3) == 0 {
		return adversary.Leaf(rng.Intn(n))
	}
	kids := 2 + rng.Intn(3)
	children := make([]*adversary.Formula, kids)
	for i := range children {
		children[i] = randomFormula(rng, n, depth-1)
	}
	k := 1 + rng.Intn(kids)
	return adversary.Threshold(k, children...)
}

// TestQuickRandomFormulas checks, for random monotone access formulas,
// that reconstruction succeeds exactly on qualified sets and always
// yields the dealt secret — the defining property of the Benaloh-Leichter
// construction.
func TestQuickRandomFormulas(t *testing.T) {
	g := group.TestDefault()
	const n = 6
	f := func(seed int64) bool {
		rng := mrand.New(mrand.NewSource(seed))
		access := randomFormula(rng, n, 3)
		if !access.Eval(adversary.FullSet(n)) {
			return true // degenerate (cannot happen for monotone gates) — skip
		}
		s, err := NewScheme(g, n, access)
		if err != nil {
			return false
		}
		secret := randScalar(g, rng)
		shares, err := s.Deal(secret, rand.Reader)
		if err != nil {
			return false
		}
		vm := valueMap(shares)
		for v := adversary.Set(0); v <= adversary.FullSet(n); v++ {
			got, err := s.Reconstruct(v, vm)
			if s.Qualified(v) {
				if err != nil || !got.Equal(secret) {
					return false
				}
			} else if err == nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// TestCoefficientsCachedAndCopied checks the recombination-plan cache:
// repeated qualified sets reuse the cached plan internally, while the
// exported Coefficients hands out independent copies that callers may
// mutate freely.
func TestCoefficientsCachedAndCopied(t *testing.T) {
	g := group.TestDefault()
	s, err := NewThresholdScheme(g, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	set := adversary.SetOf(0, 1)
	p1, err := s.Coefficients(set)
	if err != nil {
		t.Fatal(err)
	}
	cached, err := s.plan(set)
	if err != nil {
		t.Fatal(err)
	}
	// Rebind entries of the exported copy; the cached plan (and future
	// copies) must be unaffected. Scalars themselves are immutable.
	for id := range p1 {
		p1[id] = g.AddScalar(p1[id], g.NewScalar(7))
	}
	p2, err := s.Coefficients(set)
	if err != nil {
		t.Fatal(err)
	}
	for id, c := range p2 {
		if c.Equal(p1[id]) {
			t.Fatal("cached plan was mutated through the exported copy")
		}
		if !c.Equal(cached[id]) {
			t.Fatal("second Coefficients call diverges from cached plan")
		}
	}
	if _, err := s.Coefficients(adversary.SetOf(3)); err == nil {
		t.Fatal("unqualified set accepted")
	}
}

// TestPlanCacheConcurrent hammers the plan cache from many goroutines
// (the verify-pool sharing pattern) under the race detector.
func TestPlanCacheConcurrent(t *testing.T) {
	g := group.TestDefault()
	s, err := NewThresholdScheme(g, 7, 2)
	if err != nil {
		t.Fatal(err)
	}
	secret := g.NewScalar(1234)
	shares, err := s.Deal(secret, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	values := make(map[int]*group.Scalar)
	for _, sh := range shares {
		values[sh.ID] = sh.Value
	}
	sets := []adversary.Set{
		adversary.SetOf(0, 1, 2), adversary.SetOf(1, 2, 3),
		adversary.SetOf(4, 5, 6), adversary.SetOf(0, 3, 6),
	}
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 16; i++ {
				for _, set := range sets {
					got, err := s.Reconstruct(set, values)
					if err != nil {
						panic(err)
					}
					if !got.Equal(secret) {
						panic("reconstruction diverged under concurrency")
					}
				}
			}
		}()
	}
	wg.Wait()
}

// BenchmarkLagrangeCached shows the recombination-plan cache: "cold"
// recomputes the formula walk and Lagrange inversion every time (the
// pre-pipeline behavior), "warm" is a cache hit (the steady state of a
// run, where the same quorum recurs for every coin flip).
func BenchmarkLagrangeCached(b *testing.B) {
	g := group.TestDefault()
	s, err := NewThresholdScheme(g, 16, 5)
	if err != nil {
		b.Fatal(err)
	}
	set := adversary.SetOf(0, 2, 4, 6, 8, 10)
	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := s.computePlan(set); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		if _, err := s.plan(set); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.plan(set); err != nil {
				b.Fatal(err)
			}
		}
	})
}
